// Package mhmgo is the public API of MetaHipMer-Go, a from-scratch Go
// reproduction of "Extreme Scale De Novo Metagenome Assembly" (Georganas et
// al., SC18). It assembles metagenomic short-read data with the paper's
// iterative de Bruijn graph pipeline and metagenome-aware scaffolder, running
// SPMD-style on a virtual PGAS machine whose communication is metered by a
// cost model (see DESIGN.md for the substitutions relative to the paper's
// Cray/UPC environment).
//
// Quick start:
//
//	comm := mhmgo.SimulateCommunity(mhmgo.DefaultCommunityConfig())
//	reads := mhmgo.SimulateReads(comm, mhmgo.DefaultReadConfig())
//	result, err := mhmgo.Assemble(reads, mhmgo.DefaultConfig(8))
//	// result.FinalSequences() are the assembled scaffolds.
package mhmgo

import (
	"mhmgo/internal/core"
	"mhmgo/internal/eval"
	"mhmgo/internal/hmm"
	"mhmgo/internal/seq"
	"mhmgo/internal/sim"
)

// Re-exported core types. Config controls the pipeline, Result is the
// assembly outcome; see the internal/core documentation for field details.
type (
	// Config is the assembly pipeline configuration.
	Config = core.Config
	// Result is the outcome of an assembly.
	Result = core.Result
	// Read is a sequencing read.
	Read = seq.Read
	// Library describes one paired-end library of a (possibly
	// multi-library) assembly; see Config.Libraries.
	Library = seq.Library
	// Community is a simulated metagenome with known reference genomes.
	Community = sim.Community
	// CommunityConfig controls community simulation.
	CommunityConfig = sim.CommunityConfig
	// ReadConfig controls read simulation.
	ReadConfig = sim.ReadConfig
	// LibraryConfig describes one simulated library within a multi-library
	// ReadConfig.
	LibraryConfig = sim.LibraryConfig
	// SampleConfig describes one sample of a multi-sample co-assembly
	// simulation; see ReadConfig.Samples.
	SampleConfig = sim.SampleConfig
	// SampleAbundance is the per-sample abundance report recovered from a
	// co-assembly by read localization.
	SampleAbundance = eval.SampleAbundance
	// GenomeAbundance is one genome's abundance estimate within one sample.
	GenomeAbundance = eval.GenomeAbundance
	// QualityReport is a metaQUAST-style evaluation of an assembly against
	// the simulated references.
	QualityReport = eval.Report
	// RRNAProfile is a profile model of a conserved ribosomal region.
	RRNAProfile = hmm.Profile
)

// DefaultConfig returns the standard MetaHipMer pipeline configuration for a
// virtual machine with the given number of ranks.
func DefaultConfig(ranks int) Config { return core.DefaultConfig(ranks) }

// Assemble runs the full pipeline (iterative contig generation plus
// scaffolding) over interleaved paired-end reads.
func Assemble(reads []Read, cfg Config) (*Result, error) { return core.Assemble(reads, cfg) }

// DefaultCommunityConfig returns a small synthetic community configuration.
func DefaultCommunityConfig() CommunityConfig { return sim.DefaultCommunityConfig() }

// DefaultReadConfig returns a typical Illumina-like read simulation
// configuration.
func DefaultReadConfig() ReadConfig { return sim.DefaultReadConfig() }

// TwoLibraryReadConfig returns the paper-style two-library configuration: a
// short-insert (300 bp) paired-end library plus a long-insert (1500 bp)
// jumping library. Assemble the resulting reads with a Config whose
// Libraries list matches (same order and geometry) to get round-based
// multi-library scaffolding; see TUTORIAL.md.
func TwoLibraryReadConfig(coverage float64, seed int64) ReadConfig {
	return sim.TwoLibraryReadConfig(coverage, seed)
}

// TimeSeriesSamples returns n sample configurations modelling repeated
// sampling of one environment: an undrifted baseline plus log-normally
// drifted later samples. Attach the list to ReadConfig.Samples.
func TimeSeriesSamples(n int, sigma float64) []SampleConfig {
	return sim.TimeSeriesSamples(n, sigma)
}

// ContaminationSamples returns n sample configurations each carrying its own
// private contaminant genome drawing the given fraction of that sample's
// reads.
func ContaminationSamples(n int, fraction float64) []SampleConfig {
	return sim.ContaminationSamples(n, fraction)
}

// CoassemblyScenario builds the canonical co-assembly demonstration: a
// community whose rarest organism no single sample can assemble, plus a
// multi-sample ReadConfig whose pooled reads can. See examples/coassembly.
func CoassemblyScenario(samples int, seed int64) (*Community, ReadConfig) {
	return sim.CoassemblyScenario(samples, seed)
}

// SimulateCommunity generates a deterministic synthetic metagenome.
func SimulateCommunity(cfg CommunityConfig) *Community { return sim.GenerateCommunity(cfg) }

// SimulateReads generates paired-end reads from a community.
func SimulateReads(c *Community, cfg ReadConfig) []Read { return sim.SimulateReads(c, cfg) }

// BuildRRNAProfile builds a ribosomal-region profile from example marker
// sequences (e.g. a community's planted marker); pass it via
// Config.RRNAProfile to enable the rRNA scaffolding rule.
func BuildRRNAProfile(examples [][]byte, conservation float64) *RRNAProfile {
	return hmm.BuildProfile(examples, conservation)
}

// Evaluate scores an assembly against the community it was simulated from,
// producing the paper's Table I metrics.
func Evaluate(name string, assembly [][]byte, comm *Community) QualityReport {
	return eval.Evaluate(name, assembly, comm, eval.DefaultOptions())
}

// SampleAbundances recovers per-sample abundance estimates from a
// co-assembly by localizing every read onto the assembled sequences and
// counting, per sample, how many land on sequences attributed to each
// reference genome. sampleNames labels SampleIDs in order ("sampleN" beyond
// the list); comm may be nil to skip the per-genome rollup on
// reference-free inputs.
func SampleAbundances(assembly [][]byte, reads []Read, sampleNames []string, comm *Community) []SampleAbundance {
	return eval.AbundanceReport(assembly, reads, sampleNames, comm, eval.DefaultOptions())
}

// FormatAbundanceTable renders per-sample abundance estimates as a table:
// one row per sample, one column per genome.
func FormatAbundanceTable(samples []SampleAbundance) string {
	return eval.FormatAbundanceTable(samples)
}
