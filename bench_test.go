// Repository-level benchmarks: one benchmark per table and figure of the
// paper's evaluation section. Each benchmark runs the corresponding
// experiment at the quick scale and reports the headline quantity as a
// custom metric, so `go test -bench=. -benchmem` regenerates every result.
// Run `go run ./cmd/mhmbench` for the full formatted tables at the default
// scale.
package mhmgo_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"mhmgo"
	"mhmgo/internal/dht"
	"mhmgo/internal/experiments"
	"mhmgo/internal/pgas"
	"mhmgo/internal/sim"
)

func benchScale() experiments.Scale { return experiments.QuickScale() }

// BenchmarkTable1QualityMG64 regenerates Table I: comparative assembly
// quality of MetaHipMer vs the baseline proxies on the MG64-like community.
func BenchmarkTable1QualityMG64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table1Quality(benchScale())
		if len(res.Reports) == 0 {
			b.Fatal("no reports produced")
		}
		for _, rep := range res.Reports {
			if rep.Assembler == "MetaHipMer" {
				b.ReportMetric(rep.GenomeFraction*100, "genome_fraction_%")
				b.ReportMetric(float64(rep.Misassemblies), "misassemblies")
				b.ReportMetric(float64(rep.RRNACount), "rRNAs")
			}
		}
	}
}

// BenchmarkFig3ReadLocalization regenerates Figure 3: the impact of read
// localization on the k-mer analysis and alignment stages.
func BenchmarkFig3ReadLocalization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig3ReadLocalization(benchScale())
		if len(res.Rows) == 0 {
			b.Fatal("no rows produced")
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.AlignmentSpeedup, "align_speedup_x")
	}
}

// BenchmarkFig4StrongScaling regenerates Figure 4: strong scaling of the
// pipeline on the Wetlands-like subset.
func BenchmarkFig4StrongScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig4StrongScaling(benchScale())
		if len(res.Rows) < 2 {
			b.Fatal("insufficient scaling rows")
		}
		b.ReportMetric(res.Rows[len(res.Rows)-1].Efficiency*100, "efficiency_%")
	}
}

// BenchmarkFig5StageBreakdown regenerates Figure 5: the per-stage runtime
// fraction as concurrency grows (same runs as Figure 4).
func BenchmarkFig5StageBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig4StrongScaling(benchScale())
		if len(res.Rows) == 0 {
			b.Fatal("no rows produced")
		}
		last := res.Rows[len(res.Rows)-1]
		var alignFrac, total float64
		for _, st := range last.Stages {
			total += st.Seconds
		}
		for _, st := range last.Stages {
			if st.Name == "alignment" && total > 0 {
				alignFrac = st.Seconds / total
			}
		}
		b.ReportMetric(alignFrac*100, "alignment_fraction_%")
	}
}

// BenchmarkRayMetaComparison regenerates the Section IV-C comparison between
// MetaHipMer and Ray Meta at two machine sizes.
func BenchmarkRayMetaComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RayMetaComparison(benchScale())
		if len(res.Rows) == 0 {
			b.Fatal("no rows produced")
		}
		b.ReportMetric(res.Rows[len(res.Rows)-1].SpeedupOverRay, "speedup_over_raymeta_x")
	}
}

// BenchmarkTable2WeakScaling regenerates Table II: weak scaling rate in
// kilobases assembled per second per node over the MGSim series.
func BenchmarkTable2WeakScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table2WeakScaling(benchScale())
		if len(res.Rows) == 0 {
			b.Fatal("no rows produced")
		}
		b.ReportMetric(res.Efficiency*100, "weak_scaling_efficiency_%")
	}
}

// BenchmarkGrandChallengeFullVsSubset regenerates the grand-challenge
// comparison: assembly size and read-mapping fraction of the full dataset vs
// a subset of lanes.
func BenchmarkGrandChallengeFullVsSubset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.GrandChallengeFullVsSubset(benchScale())
		b.ReportMetric(res.LengthRatio, "full_vs_subset_length_x")
		b.ReportMetric(res.FullMapFraction*100, "full_map_%")
		b.ReportMetric(res.SubsetMapFraction*100, "subset_map_%")
	}
}

// BenchmarkFig6NGA50PerGenome regenerates Figure 6: per-genome NGA50 of
// MetaHipMer vs the MetaSPAdes proxy.
func BenchmarkFig6NGA50PerGenome(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig6NGA50PerGenome(benchScale())
		if len(res.Rows) == 0 {
			b.Fatal("no rows produced")
		}
		b.ReportMetric(float64(res.Rows[0].MetaHipMerNGA50), "best_genome_NGA50")
	}
}

// BenchmarkAblationOptimizations regenerates the ablation table for the
// design choices called out in DESIGN.md.
func BenchmarkAblationOptimizations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Ablations(benchScale())
		if len(res.Rows) == 0 {
			b.Fatal("no ablation rows")
		}
		for _, row := range res.Rows {
			if row.Feature == "message aggregation" && row.On > 0 {
				b.ReportMetric(row.Off/row.On, "aggregation_speedup_x")
			}
		}
	}
}

// BenchmarkDHTHotRankPipeline measures the distributed hash table under the
// worst-case skew of Section II-A at pipeline altitude: every rank directs a
// mixed workload (aggregated Updater traffic, remote atomics, one-sided
// reads — the mix the assembler's stages actually produce) at a single hot
// owner rank. stripes=1 reproduces the historical one-lock-per-rank layout;
// striped is the current default. internal/dht has the isolated
// single-operation variants (BenchmarkDHTContention, BenchmarkDHTUpdaterFlush,
// BenchmarkDHTFrozenReads) and the speedup assertion
// (TestStripingContentionSpeedup); the gap widens with physical core count.
func BenchmarkDHTHotRankPipeline(b *testing.B) {
	intHash := func(k int) uint64 {
		x := uint64(k) * 0x9e3779b97f4a7c15
		x ^= x >> 32
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 29
		return x
	}
	for _, cfg := range []struct {
		name    string
		stripes int
	}{{"stripes=1", 1}, {"striped", 0}} {
		b.Run(cfg.name, func(b *testing.B) {
			const ranks = 8
			if runtime.GOMAXPROCS(0) < ranks {
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(ranks))
			}
			m := pgas.NewMachine(pgas.Config{Ranks: ranks})
			dm := dht.NewMap[int, int](m, intHash, 16, dht.WithStripes(cfg.stripes))
			var keys []int
			for k := 0; len(keys) < 1024; k++ {
				if dm.Owner(k) == 0 {
					keys = append(keys, k)
				}
			}
			add := func(e, v int, ok bool) int { return e + v }
			b.ResetTimer()
			m.Run(func(r *pgas.Rank) {
				u := dm.NewUpdater(r, add, 256, true)
				for i := r.ID(); i < b.N; i += ranks {
					key := keys[i&1023]
					switch i % 3 {
					case 0:
						u.Update(key, 1)
					case 1:
						dht.Mutate(dm, r, key, func(v int, found bool) (int, bool, int) {
							return v + 1, true, 0
						})
					default:
						dm.Get(r, key)
					}
				}
				u.Flush()
			})
		})
	}
}

// BenchmarkEndToEndPipeline measures a single end-to-end assembly through the
// public API (not tied to a specific paper table; useful for profiling).
func BenchmarkEndToEndPipeline(b *testing.B) {
	commCfg := mhmgo.DefaultCommunityConfig()
	commCfg.NumGenomes = 4
	commCfg.MeanGenomeLen = 3000
	comm := mhmgo.SimulateCommunity(commCfg)
	readCfg := mhmgo.DefaultReadConfig()
	readCfg.Coverage = 10
	reads := mhmgo.SimulateReads(comm, readCfg)
	cfg := mhmgo.DefaultConfig(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mhmgo.Assemble(reads, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistributedOwnership compares the distributed-ownership pipeline
// (PR 3) against the gather-to-all baseline it replaced, at P=64: identical
// assembly by construction, but the baseline materializes every gathered
// collection on every rank. It reports the worst rank's peak resident
// collective bytes and the simulated seconds for both modes, and writes the
// comparison to BENCH_dist.json so the perf trajectory has a machine-readable
// data point per CI run.
func BenchmarkDistributedOwnership(b *testing.B) {
	commCfg := mhmgo.CommunityConfig{
		NumGenomes:     24,
		MeanGenomeLen:  2000,
		LenVariation:   0.2,
		AbundanceSigma: 0.3,
		RRNALen:        150,
		Seed:           71,
	}
	comm := mhmgo.SimulateCommunity(commCfg)
	reads := mhmgo.SimulateReads(comm, mhmgo.ReadConfig{
		ReadLen: 80, InsertSize: 220, InsertStd: 15,
		ErrorRate: 0.005, Coverage: 8, Seed: 72,
	})
	const ranks = 64
	run := func(gatherToAll bool) *mhmgo.Result {
		cfg := mhmgo.DefaultConfig(ranks)
		cfg.InsertSize, cfg.InsertStd = 220, 15
		cfg.GatherToAll = gatherToAll
		res, err := mhmgo.Assemble(reads, cfg)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		distRes := run(false)
		gatherRes := run(true)
		distPeak := float64(distRes.Stats.PeakResidentBytes)
		gatherPeak := float64(gatherRes.Stats.PeakResidentBytes)
		b.ReportMetric(distPeak, "dist_peak_resident_B")
		b.ReportMetric(gatherPeak, "gather_peak_resident_B")
		b.ReportMetric(gatherPeak/distPeak, "peak_reduction_x")
		b.ReportMetric(distRes.SimSeconds, "dist_sim_s")
		b.ReportMetric(gatherRes.SimSeconds, "gather_sim_s")
		report := map[string]any{
			"ranks":                  ranks,
			"reads":                  len(reads),
			"scaffolds":              len(distRes.Scaffolds),
			"dist_peak_resident_b":   distRes.Stats.PeakResidentBytes,
			"gather_peak_resident_b": gatherRes.Stats.PeakResidentBytes,
			"peak_reduction_x":       gatherPeak / distPeak,
			"dist_sim_seconds":       distRes.SimSeconds,
			"gather_sim_seconds":     gatherRes.SimSeconds,
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_dist.json", append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWallclockScaling measures the cost of SIMULATING large machines,
// not the simulated machines themselves: it sweeps the virtual rank count P
// under the pooled scheduler on a fixed workload and records host wall-clock
// per P, host reads processed per second per core, and the largest P that
// finished inside the per-point time budget. The pre-scheduler engine fell
// over well before P=4096 (a goroutine per rank, O(P) scratch per collective
// call per rank); this benchmark is the regression guard for that capability.
// Writes BENCH_wallclock.json so CI keeps a machine-readable trajectory.
func BenchmarkWallclockScaling(b *testing.B) {
	// Per-point budget: a point that blows this is recorded as infeasible and
	// ends the sweep, instead of stalling CI.
	const pointBudget = 10 * time.Minute
	comm := sim.WetlandsLikeCommunity(4, 0.3, 7)
	reads := sim.SimulateReads(comm, sim.ReadConfig{
		ReadLen: 100, InsertSize: 280, InsertStd: 25, ErrorRate: 0.01, Coverage: 4, Seed: 9,
	})
	cores := runtime.GOMAXPROCS(0)
	type point struct {
		Ranks           int     `json:"ranks"`
		Nodes           int     `json:"nodes"`
		WallSeconds     float64 `json:"wall_seconds"`
		SimSeconds      float64 `json:"sim_seconds"`
		ReadsPerSecCore float64 `json:"reads_per_sec_per_core"`
		Scaffolds       int     `json:"scaffolds"`
	}
	for i := 0; i < b.N; i++ {
		var points []point
		maxFeasible := 0
		for _, ranks := range []int{64, 256, 1024, 4096} {
			cfg := mhmgo.DefaultConfig(ranks)
			cfg.RanksPerNode = 16
			// One k iteration per point: the sweep probes scheduler overhead
			// versus P, which is iteration-count independent.
			cfg.KMin, cfg.KMax = 21, 21
			start := time.Now()
			res, err := mhmgo.Assemble(reads, cfg)
			wall := time.Since(start)
			if err != nil {
				b.Fatal(err)
			}
			points = append(points, point{
				Ranks:           ranks,
				Nodes:           ranks / cfg.RanksPerNode,
				WallSeconds:     wall.Seconds(),
				SimSeconds:      res.SimSeconds,
				ReadsPerSecCore: float64(len(reads)) / wall.Seconds() / float64(cores),
				Scaffolds:       len(res.FinalSequences()),
			})
			if wall > pointBudget {
				break
			}
			maxFeasible = ranks
		}
		last := points[len(points)-1]
		b.ReportMetric(float64(maxFeasible), "max_feasible_ranks")
		b.ReportMetric(last.WallSeconds, "wall_s_at_largest_P")
		b.ReportMetric(last.ReadsPerSecCore, "reads_per_sec_per_core")
		report := map[string]any{
			"reads":              len(reads),
			"cores":              cores,
			"workers":            cores,
			"max_feasible_ranks": maxFeasible,
			"points":             points,
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_wallclock.json", append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoassembly measures what pooling samples buys: for 1, 2 and 4
// samples of the CoassemblyScenario community it assembles the pooled read
// set and each sample alone, and reports the rare genome's reference
// coverage for the co-assembly versus the best single sample, plus the
// co-assembly N50. The comparison is written to BENCH_coassembly.json so
// each CI run records the recovery margin.
func BenchmarkCoassembly(b *testing.B) {
	type point struct {
		Samples        int     `json:"samples"`
		Reads          int     `json:"reads"`
		CoRareFraction float64 `json:"co_rare_fraction"`
		BestSingleRare float64 `json:"best_single_rare_fraction"`
		Margin         float64 `json:"margin"`
		CoN50          int     `json:"co_n50"`
		CoSimSeconds   float64 `json:"co_sim_seconds"`
	}
	cfg := mhmgo.DefaultConfig(4)
	cfg.KMin, cfg.KMax, cfg.KStep = 21, 33, 12
	cfg.InsertSize, cfg.InsertStd = 280, 25
	for i := 0; i < b.N; i++ {
		var points []point
		for _, n := range []int{1, 2, 4} {
			comm, rc := mhmgo.CoassemblyScenario(n, 42)
			reads := mhmgo.SimulateReads(comm, rc)
			rare := ""
			for _, g := range comm.Genomes {
				if rare == "" || g.Abundance < comm.GenomeByName(rare).Abundance {
					rare = g.Name
				}
			}
			rareFrac := func(rd []mhmgo.Read) (float64, int, float64) {
				res, err := mhmgo.Assemble(rd, cfg)
				if err != nil {
					b.Fatal(err)
				}
				rep := mhmgo.Evaluate("co", res.FinalSequences(), comm)
				for _, g := range rep.PerGenome {
					if g.Name == rare {
						return g.GenomeFraction, rep.N50, res.SimSeconds
					}
				}
				return 0, rep.N50, res.SimSeconds
			}
			coFrac, coN50, coSim := rareFrac(reads)
			perSample := make([][]mhmgo.Read, n)
			for _, r := range reads {
				perSample[r.SampleID] = append(perSample[r.SampleID], r)
			}
			best := 0.0
			for _, sub := range perSample {
				if f, _, _ := rareFrac(sub); f > best {
					best = f
				}
			}
			points = append(points, point{
				Samples: n, Reads: len(reads),
				CoRareFraction: coFrac, BestSingleRare: best, Margin: coFrac - best,
				CoN50: coN50, CoSimSeconds: coSim,
			})
		}
		last := points[len(points)-1]
		b.ReportMetric(last.CoRareFraction, "co_rare_fraction")
		b.ReportMetric(last.BestSingleRare, "best_single_rare_fraction")
		b.ReportMetric(last.Margin, "recovery_margin")
		b.ReportMetric(float64(last.CoN50), "co_N50")
		report := map[string]any{
			"ranks":  4,
			"points": points,
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_coassembly.json", append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiLibraryScaffolding compares round-based multi-library
// scaffolding (a 300 bp paired-end plus a 1500 bp jumping library, one round
// per library in ascending insert order) against the legacy single-library
// treatment of the same reads, which applies the short-insert geometry to
// every pair. It reports scaffold N50 and simulated seconds for both and
// writes the comparison to BENCH_multilib.json so the workload has a
// machine-readable data point per CI run.
func BenchmarkMultiLibraryScaffolding(b *testing.B) {
	commCfg := mhmgo.DefaultCommunityConfig()
	commCfg.NumGenomes = 4
	commCfg.MeanGenomeLen = 12000
	comm := mhmgo.SimulateCommunity(commCfg)
	readCfg := mhmgo.TwoLibraryReadConfig(16, 5)
	reads := mhmgo.SimulateReads(comm, readCfg)
	norm := readCfg.Normalized()

	const ranks = 8
	multiCfg := mhmgo.DefaultConfig(ranks)
	for _, lib := range norm.Libraries {
		multiCfg.Libraries = append(multiCfg.Libraries, mhmgo.Library{
			Name: lib.Name, ReadLen: lib.ReadLen,
			InsertSize: lib.InsertSize, InsertStd: lib.InsertStd,
		})
	}
	singleCfg := mhmgo.DefaultConfig(ranks)
	singleCfg.InsertSize = norm.Libraries[0].InsertSize
	singleCfg.InsertStd = norm.Libraries[0].InsertStd

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		multiRes, err := mhmgo.Assemble(reads, multiCfg)
		if err != nil {
			b.Fatal(err)
		}
		singleRes, err := mhmgo.Assemble(reads, singleCfg)
		if err != nil {
			b.Fatal(err)
		}
		multiRep := mhmgo.Evaluate("multilib", multiRes.FinalSequences(), comm)
		singleRep := mhmgo.Evaluate("singlelib", singleRes.FinalSequences(), comm)
		b.ReportMetric(float64(multiRep.N50), "multi_N50")
		b.ReportMetric(float64(singleRep.N50), "single_N50")
		b.ReportMetric(multiRes.SimSeconds, "multi_sim_s")
		b.ReportMetric(singleRes.SimSeconds, "single_sim_s")
		report := map[string]any{
			"ranks":                  ranks,
			"reads":                  len(reads),
			"libraries":              len(multiCfg.Libraries),
			"rounds":                 len(multiRes.ScaffoldRounds),
			"multi_n50":              multiRep.N50,
			"single_n50":             singleRep.N50,
			"multi_genome_fraction":  multiRep.GenomeFraction,
			"single_genome_fraction": singleRep.GenomeFraction,
			"multi_sim_seconds":      multiRes.SimSeconds,
			"single_sim_seconds":     singleRes.SimSeconds,
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_multilib.json", append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}
