package mhmgo_test

import (
	"testing"

	"mhmgo"
)

// TestPublicAPIEndToEnd exercises the facade exactly as the README's
// quickstart does.
func TestPublicAPIEndToEnd(t *testing.T) {
	commCfg := mhmgo.DefaultCommunityConfig()
	commCfg.NumGenomes = 3
	commCfg.MeanGenomeLen = 4000
	comm := mhmgo.SimulateCommunity(commCfg)

	readCfg := mhmgo.DefaultReadConfig()
	readCfg.Coverage = 12
	reads := mhmgo.SimulateReads(comm, readCfg)
	if len(reads) == 0 {
		t.Fatal("no reads simulated")
	}

	cfg := mhmgo.DefaultConfig(4)
	cfg.RRNAProfile = mhmgo.BuildRRNAProfile([][]byte{comm.RRNAMarker}, 0.9)
	result, err := mhmgo.Assemble(reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(result.FinalSequences()) == 0 {
		t.Fatal("no assembled sequences")
	}

	report := mhmgo.Evaluate("quickstart", result.FinalSequences(), comm)
	if report.GenomeFraction < 0.8 {
		t.Errorf("genome fraction %v too low for an easy community", report.GenomeFraction)
	}
	if report.TotalLen == 0 || report.N50 == 0 {
		t.Errorf("report not populated: %+v", report)
	}
}
