// Command mhmeval is the metaQUAST-lite evaluator: it scores an assembly
// FASTA against the reference genomes it was simulated from, reporting the
// paper's Table I metrics (length classes, misassemblies, genome fraction,
// per-genome NGA50).
package main

import (
	"flag"
	"fmt"
	"log"

	"mhmgo/internal/eval"
	"mhmgo/internal/fastx"
	"mhmgo/internal/sim"
)

func main() {
	var (
		asmPath = flag.String("assembly", "", "assembly FASTA (required)")
		refPath = flag.String("refs", "", "reference genomes FASTA (required)")
		name    = flag.String("name", "assembly", "assembler name for the report")
		perGen  = flag.Bool("per-genome", false, "print per-genome NGA50 and genome fraction")
	)
	flag.Parse()
	if *asmPath == "" || *refPath == "" {
		flag.Usage()
		log.Fatal("mhmeval: -assembly and -refs are required")
	}

	asmRecs, err := fastx.ReadFile(*asmPath)
	if err != nil {
		log.Fatalf("mhmeval: %v", err)
	}
	refRecs, err := fastx.ReadFile(*refPath)
	if err != nil {
		log.Fatalf("mhmeval: %v", err)
	}

	comm := &sim.Community{}
	for _, rec := range refRecs {
		comm.Genomes = append(comm.Genomes, sim.Genome{Name: rec.ID, Seq: rec.Seq})
	}
	var assembly [][]byte
	for _, rec := range asmRecs {
		assembly = append(assembly, rec.Seq)
	}

	opts := eval.DefaultOptions()
	rep := eval.Evaluate(*name, assembly, comm, opts)
	fmt.Print(eval.FormatTable([]eval.Report{rep}, opts.LengthThresholds))
	fmt.Printf("sequences: %d, unaligned: %d, total length: %d, N50: %d\n",
		rep.NumSeqs, rep.UnalignedSeqs, rep.TotalLen, rep.N50)
	if *perGen {
		fmt.Println("per-genome results:")
		for _, g := range rep.PerGenome {
			fmt.Printf("  %-20s len=%-8d fraction=%.3f NGA50=%d\n", g.Name, g.Length, g.GenomeFraction, g.NGA50)
		}
	}
}
