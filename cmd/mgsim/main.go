// Command mgsim is the MGSim synthetic metagenome generator: it simulates a
// community of genomes with log-normal abundances, planted conserved rRNA
// regions, repeats and strains, and produces paired-end reads with errors.
// The reference genomes are written alongside the reads so assemblies can be
// evaluated with mhmeval.
//
// Multi-library simulation: -libraries takes a comma-separated list of
// insert[:std[:share]] specs, e.g. "-libraries 300:30:0.75,1500:150:0.25".
// Each library is written to its own FASTQ file (the -reads-out name with a
// .libN suffix before the extension) so the files can be fed straight into
// mhm's per-library -reads list.
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"
	"strconv"
	"strings"

	"mhmgo/internal/fastx"
	"mhmgo/internal/seq"
	"mhmgo/internal/sim"
)

// parseLibraries parses the -libraries spec: a comma-separated list of
// insert[:std[:share]] entries.
func parseLibraries(s string) ([]sim.LibraryConfig, error) {
	if s == "" {
		return nil, nil
	}
	var libs []sim.LibraryConfig
	for i, entry := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(entry), ":")
		if len(fields) > 3 {
			return nil, fmt.Errorf("library %q: want insert[:std[:share]]", entry)
		}
		lib := sim.LibraryConfig{Name: fmt.Sprintf("lib%d", i)}
		ins, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("library %q: bad insert size: %v", entry, err)
		}
		lib.InsertSize = ins
		if len(fields) > 1 {
			if lib.InsertStd, err = strconv.Atoi(fields[1]); err != nil {
				return nil, fmt.Errorf("library %q: bad insert std: %v", entry, err)
			}
		}
		if len(fields) > 2 {
			if lib.CoverageShare, err = strconv.ParseFloat(fields[2], 64); err != nil {
				return nil, fmt.Errorf("library %q: bad coverage share: %v", entry, err)
			}
		}
		libs = append(libs, lib)
	}
	return libs, nil
}

// libFileName inserts ".libN" before the file-name extension of path (a dot
// in a directory component is not an extension).
func libFileName(path string, i int) string {
	ext := filepath.Ext(filepath.Base(path))
	if ext != "" {
		return fmt.Sprintf("%s.lib%d%s", strings.TrimSuffix(path, ext), i, ext)
	}
	return fmt.Sprintf("%s.lib%d", path, i)
}

func main() {
	var (
		genomes   = flag.Int("genomes", 16, "number of genomes in the community")
		genomeLen = flag.Int("genome-len", 10000, "mean genome length")
		sigma     = flag.Float64("abundance-sigma", 1.2, "log-normal abundance sigma")
		coverage  = flag.Float64("coverage", 15, "mean read coverage")
		readLen   = flag.Int("read-len", 100, "read length")
		insert    = flag.Int("insert", seq.DefaultInsertSize, "insert size (single-library mode)")
		libraries = flag.String("libraries", "", "multi-library spec: insert[:std[:share]],... (overrides -insert)")
		errRate   = flag.Float64("error-rate", 0.01, "per-base error rate")
		seed      = flag.Int64("seed", 1, "random seed")
		readsOut  = flag.String("reads-out", "reads.fastq", "output FASTQ for reads")
		refOut    = flag.String("ref-out", "refs.fasta", "output FASTA for reference genomes")
	)
	flag.Parse()

	libs, err := parseLibraries(*libraries)
	if err != nil {
		log.Fatalf("mgsim: -libraries: %v", err)
	}

	comm := sim.GenerateCommunity(sim.CommunityConfig{
		NumGenomes:     *genomes,
		MeanGenomeLen:  *genomeLen,
		AbundanceSigma: *sigma,
		Seed:           *seed,
	})
	readCfg := sim.ReadConfig{
		ReadLen:    *readLen,
		InsertSize: *insert,
		ErrorRate:  *errRate,
		Coverage:   *coverage,
		Libraries:  libs,
		Seed:       *seed + 1,
	}
	reads := sim.SimulateReads(comm, readCfg)

	if len(libs) > 0 {
		// One FASTQ per library, ready for mhm's per-library -reads list.
		norm := readCfg.Normalized()
		for i, lib := range norm.Libraries {
			var libReads []seq.Read
			for _, r := range reads {
				if int(r.LibID) == i {
					libReads = append(libReads, r)
				}
			}
			name := libFileName(*readsOut, i)
			if err := fastx.WriteReadsFASTQ(name, libReads); err != nil {
				log.Fatalf("mgsim: %v", err)
			}
			fmt.Printf("library %d (%s, insert %d±%d, share %.2f): %d reads -> %s\n",
				i, lib.Name, lib.InsertSize, lib.InsertStd, lib.CoverageShare, len(libReads), name)
		}
	} else if err := fastx.WriteReadsFASTQ(*readsOut, reads); err != nil {
		log.Fatalf("mgsim: %v", err)
	}
	names := make([]string, len(comm.Genomes))
	seqs := make([][]byte, len(comm.Genomes))
	for i, g := range comm.Genomes {
		names[i] = fmt.Sprintf("%s abundance=%.4f", g.Name, g.Abundance)
		seqs[i] = g.Seq
	}
	if err := fastx.WriteContigsFASTA(*refOut, names, seqs); err != nil {
		log.Fatalf("mgsim: %v", err)
	}
	fmt.Printf("simulated %d genomes (%d bases) and %d reads\n", len(comm.Genomes), comm.TotalBases(), len(reads))
	if len(libs) == 0 {
		fmt.Printf("reads: %s, references: %s\n", *readsOut, *refOut)
	} else {
		fmt.Printf("references: %s\n", *refOut)
	}
}
