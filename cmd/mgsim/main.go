// Command mgsim is the MGSim synthetic metagenome generator: it simulates a
// community of genomes with log-normal abundances, planted conserved rRNA
// regions, repeats and strains, and produces paired-end reads with errors.
// The reference genomes are written alongside the reads so assemblies can be
// evaluated with mhmeval.
package main

import (
	"flag"
	"fmt"
	"log"

	"mhmgo/internal/fastx"
	"mhmgo/internal/sim"
)

func main() {
	var (
		genomes   = flag.Int("genomes", 16, "number of genomes in the community")
		genomeLen = flag.Int("genome-len", 10000, "mean genome length")
		sigma     = flag.Float64("abundance-sigma", 1.2, "log-normal abundance sigma")
		coverage  = flag.Float64("coverage", 15, "mean read coverage")
		readLen   = flag.Int("read-len", 100, "read length")
		insert    = flag.Int("insert", 280, "insert size")
		errRate   = flag.Float64("error-rate", 0.01, "per-base error rate")
		seed      = flag.Int64("seed", 1, "random seed")
		readsOut  = flag.String("reads-out", "reads.fastq", "output FASTQ for reads")
		refOut    = flag.String("ref-out", "refs.fasta", "output FASTA for reference genomes")
	)
	flag.Parse()

	comm := sim.GenerateCommunity(sim.CommunityConfig{
		NumGenomes:     *genomes,
		MeanGenomeLen:  *genomeLen,
		AbundanceSigma: *sigma,
		Seed:           *seed,
	})
	reads := sim.SimulateReads(comm, sim.ReadConfig{
		ReadLen:    *readLen,
		InsertSize: *insert,
		ErrorRate:  *errRate,
		Coverage:   *coverage,
		Seed:       *seed + 1,
	})

	if err := fastx.WriteReadsFASTQ(*readsOut, reads); err != nil {
		log.Fatalf("mgsim: %v", err)
	}
	names := make([]string, len(comm.Genomes))
	seqs := make([][]byte, len(comm.Genomes))
	for i, g := range comm.Genomes {
		names[i] = fmt.Sprintf("%s abundance=%.4f", g.Name, g.Abundance)
		seqs[i] = g.Seq
	}
	if err := fastx.WriteContigsFASTA(*refOut, names, seqs); err != nil {
		log.Fatalf("mgsim: %v", err)
	}
	fmt.Printf("simulated %d genomes (%d bases) and %d reads\n", len(comm.Genomes), comm.TotalBases(), len(reads))
	fmt.Printf("reads: %s, references: %s\n", *readsOut, *refOut)
}
