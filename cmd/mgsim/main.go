// Command mgsim is the MGSim synthetic metagenome generator: it simulates a
// community of genomes with log-normal abundances, planted conserved rRNA
// regions, repeats and strains, and produces paired-end reads with errors.
// The reference genomes are written alongside the reads so assemblies can be
// evaluated with mhmeval.
//
// Multi-library simulation: -libraries takes a comma-separated list of
// insert[:std[:share]] specs, e.g. "-libraries 300:30:0.75,1500:150:0.25".
// Each library is written to its own FASTQ file (the -reads-out name with a
// .libN suffix before the extension) so the files can be fed straight into
// mhm's per-library -reads list.
//
// Multi-sample simulation: -samples takes a comma-separated list of
// name[:share] entries, e.g. "-samples t0,t1,t2:0.5". Every sample sequences
// the same community through its own abundance view: -sample-drift applies
// log-normal abundance drift to every sample after the first (a time-series
// baseline plus drifted follow-ups) and -sample-contamination plants a
// sample-private contaminant into each sample. Each sample is written to its
// own FASTQ file (a .sN suffix before the extension, composing with the
// per-library .libN suffix) ready for mhm's -sample-reads list.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"path/filepath"
	"strconv"
	"strings"

	"mhmgo/internal/fastx"
	"mhmgo/internal/seq"
	"mhmgo/internal/sim"
)

// parseLibraries parses the -libraries spec: a comma-separated list of
// insert[:std[:share]] entries.
func parseLibraries(s string) ([]sim.LibraryConfig, error) {
	if s == "" {
		return nil, nil
	}
	var libs []sim.LibraryConfig
	for i, entry := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(entry), ":")
		if len(fields) > 3 {
			return nil, fmt.Errorf("library %q: want insert[:std[:share]]", entry)
		}
		lib := sim.LibraryConfig{Name: fmt.Sprintf("lib%d", i)}
		ins, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("library %q: bad insert size: %v", entry, err)
		}
		lib.InsertSize = ins
		if len(fields) > 1 {
			if lib.InsertStd, err = strconv.Atoi(fields[1]); err != nil {
				return nil, fmt.Errorf("library %q: bad insert std: %v", entry, err)
			}
		}
		if len(fields) > 2 {
			if lib.CoverageShare, err = strconv.ParseFloat(fields[2], 64); err != nil {
				return nil, fmt.Errorf("library %q: bad coverage share: %v", entry, err)
			}
		}
		libs = append(libs, lib)
	}
	return libs, nil
}

// parseSamples parses the -samples spec: a comma-separated list of
// name[:share] entries. drift and contamination apply the -sample-drift and
// -sample-contamination flags: drift skips the first sample (the time-series
// baseline), contamination applies to every sample.
func parseSamples(s string, drift, contamination float64) ([]sim.SampleConfig, error) {
	if s == "" {
		return nil, nil
	}
	if drift < 0 {
		return nil, fmt.Errorf("-sample-drift must be >= 0 (got %v)", drift)
	}
	if contamination < 0 || contamination > 0.9 {
		return nil, fmt.Errorf("-sample-contamination must be in [0, 0.9] (got %v)", contamination)
	}
	seen := map[string]bool{}
	var samples []sim.SampleConfig
	for i, entry := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(entry), ":")
		if len(fields) > 2 {
			return nil, fmt.Errorf("sample %q: want name[:share]", entry)
		}
		sc := sim.SampleConfig{Name: strings.TrimSpace(fields[0])}
		if sc.Name == "" {
			return nil, fmt.Errorf("sample %d has an empty name", i)
		}
		if seen[sc.Name] {
			return nil, fmt.Errorf("duplicate sample name %q", sc.Name)
		}
		seen[sc.Name] = true
		if len(fields) > 1 {
			share, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, fmt.Errorf("sample %q: bad coverage share: %v", entry, err)
			}
			if math.IsNaN(share) || math.IsInf(share, 0) || share < 0 {
				return nil, fmt.Errorf("sample %q: coverage share must be a finite value >= 0 (got %v)", entry, share)
			}
			sc.CoverageShare = share
		}
		if i > 0 {
			sc.AbundanceSigma = drift
		}
		sc.ContaminantFraction = contamination
		samples = append(samples, sc)
	}
	if len(samples) > 256 {
		return nil, fmt.Errorf("%d samples exceed the 256 the one-byte sample tag can address", len(samples))
	}
	return samples, nil
}

// libFileName inserts ".libN" before the file-name extension of path (a dot
// in a directory component is not an extension).
func libFileName(path string, i int) string {
	ext := filepath.Ext(filepath.Base(path))
	if ext != "" {
		return fmt.Sprintf("%s.lib%d%s", strings.TrimSuffix(path, ext), i, ext)
	}
	return fmt.Sprintf("%s.lib%d", path, i)
}

// sampleFileName inserts ".sN" before the file-name extension of path; it
// composes with libFileName ("reads.s0.lib1.fastq").
func sampleFileName(path string, i int) string {
	ext := filepath.Ext(filepath.Base(path))
	if ext != "" {
		return fmt.Sprintf("%s.s%d%s", strings.TrimSuffix(path, ext), i, ext)
	}
	return fmt.Sprintf("%s.s%d", path, i)
}

func main() {
	var (
		genomes   = flag.Int("genomes", 16, "number of genomes in the community")
		genomeLen = flag.Int("genome-len", 10000, "mean genome length")
		sigma     = flag.Float64("abundance-sigma", 1.2, "log-normal abundance sigma")
		coverage  = flag.Float64("coverage", 15, "mean read coverage")
		readLen   = flag.Int("read-len", 100, "read length")
		insert    = flag.Int("insert", seq.DefaultInsertSize, "insert size (single-library mode)")
		libraries = flag.String("libraries", "", "multi-library spec: insert[:std[:share]],... (overrides -insert)")
		samplesIn = flag.String("samples", "", "multi-sample spec: name[:share],... (one sample's reads per output file)")
		drift     = flag.Float64("sample-drift", 0, "log-normal abundance drift sigma applied to every sample after the first")
		contam    = flag.Float64("sample-contamination", 0, "fraction of each sample's reads drawn from a sample-private contaminant")
		errRate   = flag.Float64("error-rate", 0.01, "per-base error rate")
		seed      = flag.Int64("seed", 1, "random seed")
		readsOut  = flag.String("reads-out", "reads.fastq", "output FASTQ for reads")
		refOut    = flag.String("ref-out", "refs.fasta", "output FASTA for reference genomes")
	)
	flag.Parse()

	libs, err := parseLibraries(*libraries)
	if err != nil {
		log.Fatalf("mgsim: -libraries: %v", err)
	}
	samples, err := parseSamples(*samplesIn, *drift, *contam)
	if err != nil {
		log.Fatalf("mgsim: -samples: %v", err)
	}
	if *samplesIn == "" && (*drift != 0 || *contam != 0) {
		log.Fatalf("mgsim: -sample-drift and -sample-contamination require -samples")
	}

	comm := sim.GenerateCommunity(sim.CommunityConfig{
		NumGenomes:     *genomes,
		MeanGenomeLen:  *genomeLen,
		AbundanceSigma: *sigma,
		Seed:           *seed,
	})
	readCfg := sim.ReadConfig{
		ReadLen:    *readLen,
		InsertSize: *insert,
		ErrorRate:  *errRate,
		Coverage:   *coverage,
		Libraries:  libs,
		Samples:    samples,
		Seed:       *seed + 1,
	}
	reads := sim.SimulateReads(comm, readCfg)

	// writeBlock emits the reads passing the filter to one FASTQ file.
	writeBlock := func(name string, keep func(seq.Read) bool) int {
		var block []seq.Read
		for _, r := range reads {
			if keep(r) {
				block = append(block, r)
			}
		}
		if err := fastx.WriteReadsFASTQ(name, block); err != nil {
			log.Fatalf("mgsim: %v", err)
		}
		return len(block)
	}
	norm := readCfg.Normalized()
	switch {
	case len(samples) > 0:
		// One FASTQ per sample (per library when -libraries is also set),
		// ready for mhm's -sample-reads list.
		for si, s := range norm.Samples {
			si, s := si, s
			base := sampleFileName(*readsOut, si)
			if len(libs) == 0 {
				n := writeBlock(base, func(r seq.Read) bool { return int(r.SampleID) == si })
				fmt.Printf("sample %d (%s, share %.2f): %d reads -> %s\n", si, s.Name, s.CoverageShare, n, base)
				continue
			}
			for li, lib := range norm.Libraries {
				li := li
				name := libFileName(base, li)
				n := writeBlock(name, func(r seq.Read) bool { return int(r.SampleID) == si && int(r.LibID) == li })
				fmt.Printf("sample %d (%s) library %d (%s, insert %d±%d): %d reads -> %s\n",
					si, s.Name, li, lib.Name, lib.InsertSize, lib.InsertStd, n, name)
			}
		}
	case len(libs) > 0:
		// One FASTQ per library, ready for mhm's per-library -reads list.
		for i, lib := range norm.Libraries {
			i := i
			name := libFileName(*readsOut, i)
			n := writeBlock(name, func(r seq.Read) bool { return int(r.LibID) == i })
			fmt.Printf("library %d (%s, insert %d±%d, share %.2f): %d reads -> %s\n",
				i, lib.Name, lib.InsertSize, lib.InsertStd, lib.CoverageShare, n, name)
		}
	default:
		if err := fastx.WriteReadsFASTQ(*readsOut, reads); err != nil {
			log.Fatalf("mgsim: %v", err)
		}
	}
	names := make([]string, len(comm.Genomes))
	seqs := make([][]byte, len(comm.Genomes))
	for i, g := range comm.Genomes {
		names[i] = fmt.Sprintf("%s abundance=%.4f", g.Name, g.Abundance)
		seqs[i] = g.Seq
	}
	if err := fastx.WriteContigsFASTA(*refOut, names, seqs); err != nil {
		log.Fatalf("mgsim: %v", err)
	}
	fmt.Printf("simulated %d genomes (%d bases) and %d reads\n", len(comm.Genomes), comm.TotalBases(), len(reads))
	if len(libs) == 0 && len(samples) == 0 {
		fmt.Printf("reads: %s, references: %s\n", *readsOut, *refOut)
	} else {
		fmt.Printf("references: %s\n", *refOut)
	}
}
