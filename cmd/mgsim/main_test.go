package main

import (
	"fmt"
	"strings"
	"testing"
)

func TestParseSamples(t *testing.T) {
	big := make([]string, 257)
	for i := range big {
		big[i] = fmt.Sprintf("s%d", i)
	}
	cases := []struct {
		name          string
		spec          string
		drift, contam float64
		wantNames     []string
		wantShares    []float64
		wantErr       string // substring of the error, "" = valid
	}{
		{"empty spec", "", 0, 0, nil, nil, ""},
		{"two plain samples", "t0,t1", 0, 0, []string{"t0", "t1"}, []float64{0, 0}, ""},
		{"explicit shares", "t0:0.75,t1:0.25", 0, 0, []string{"t0", "t1"}, []float64{0.75, 0.25}, ""},
		{"whitespace trimmed", " t0 , t1 ", 0, 0, []string{"t0", "t1"}, []float64{0, 0}, ""},
		{"drift and contamination in range", "t0,t1", 0.4, 0.05, []string{"t0", "t1"}, []float64{0, 0}, ""},
		{"empty name", "t0,,t1", 0, 0, nil, nil, "empty name"},
		{"share with empty name", ":0.5", 0, 0, nil, nil, "empty name"},
		{"duplicate names", "t0,t0", 0, 0, nil, nil, `duplicate sample name "t0"`},
		{"too many fields", "t0:0.5:9", 0, 0, nil, nil, "want name[:share]"},
		{"bad share", "t0:x", 0, 0, nil, nil, "bad coverage share"},
		{"NaN share", "t0:NaN", 0, 0, nil, nil, "finite value"},
		{"infinite share", "t0:+Inf", 0, 0, nil, nil, "finite value"},
		{"negative share", "t0:-0.5", 0, 0, nil, nil, "finite value >= 0"},
		{"negative drift", "t0,t1", -0.1, 0, nil, nil, "-sample-drift must be >= 0"},
		{"negative contamination", "t0,t1", 0, -0.1, nil, nil, "-sample-contamination must be in [0, 0.9]"},
		{"contamination above cap", "t0,t1", 0, 0.95, nil, nil, "-sample-contamination must be in [0, 0.9]"},
		{"too many samples", strings.Join(big, ","), 0, 0, nil, nil, "exceed the 256"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseSamples(tc.spec, tc.drift, tc.contam)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("parseSamples(%q, %v, %v) = nil error, want error containing %q", tc.spec, tc.drift, tc.contam, tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("parseSamples(%q, %v, %v) = %q, want it to contain %q", tc.spec, tc.drift, tc.contam, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseSamples(%q, %v, %v) error = %v, want nil", tc.spec, tc.drift, tc.contam, err)
			}
			if len(got) != len(tc.wantNames) {
				t.Fatalf("parseSamples(%q) yielded %d samples, want %d", tc.spec, len(got), len(tc.wantNames))
			}
			for i, sc := range got {
				if sc.Name != tc.wantNames[i] {
					t.Errorf("sample %d name = %q, want %q", i, sc.Name, tc.wantNames[i])
				}
				if sc.CoverageShare != tc.wantShares[i] {
					t.Errorf("sample %d share = %v, want %v", i, sc.CoverageShare, tc.wantShares[i])
				}
				// -sample-drift models a time series: the first sample is the
				// undrifted baseline, every later one drifts.
				wantSigma := tc.drift
				if i == 0 {
					wantSigma = 0
				}
				if sc.AbundanceSigma != wantSigma {
					t.Errorf("sample %d sigma = %v, want %v", i, sc.AbundanceSigma, wantSigma)
				}
				if sc.ContaminantFraction != tc.contam {
					t.Errorf("sample %d contaminant fraction = %v, want %v", i, sc.ContaminantFraction, tc.contam)
				}
			}
		})
	}
}

func TestOutputFileNames(t *testing.T) {
	cases := []struct {
		name string
		got  string
		want string
	}{
		{"sample suffix before extension", sampleFileName("reads.fastq", 0), "reads.s0.fastq"},
		{"sample suffix without extension", sampleFileName("reads", 3), "reads.s3"},
		{"library suffix before extension", libFileName("reads.fastq", 1), "reads.lib1.fastq"},
		{"library suffix without extension", libFileName("reads", 2), "reads.lib2"},
		{"dotted directory is not an extension", sampleFileName("out.d/reads", 1), "out.d/reads.s1"},
		{"sample then library composes", libFileName(sampleFileName("reads.fastq", 0), 1), "reads.s0.lib1.fastq"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.got != tc.want {
				t.Fatalf("got %q, want %q", tc.got, tc.want)
			}
		})
	}
}
