// Command mhmbench regenerates the tables and figures of the paper's
// evaluation section on the simulated substrate. Each experiment prints a
// table whose shape can be compared against the paper (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"mhmgo/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment: table1|fig3|fig4|fig5|raymeta|table2|grand|fig6|ablation|all")
		quick = flag.Bool("quick", false, "use the minimal quick scale")
	)
	flag.Parse()

	scale := experiments.DefaultScale()
	if *quick {
		scale = experiments.QuickScale()
	}

	run := func(name string, f func() string) {
		fmt.Printf("==== %s ====\n", name)
		fmt.Println(f())
	}

	selected := strings.ToLower(*exp)
	matched := false
	want := func(name string) bool {
		if selected == "all" || selected == name {
			matched = true
			return true
		}
		// fig5 is produced by the same runs as fig4.
		if name == "fig4" && selected == "fig5" {
			matched = true
			return true
		}
		return false
	}

	if want("table1") {
		run("Table I: assembly quality", func() string { return experiments.Table1Quality(scale).Format() })
	}
	if want("fig3") {
		run("Figure 3: read localization", func() string { return experiments.Fig3ReadLocalization(scale).Format() })
	}
	if want("fig4") {
		run("Figures 4 & 5: strong scaling and stage breakdown", func() string { return experiments.Fig4StrongScaling(scale).Format() })
	}
	if want("raymeta") {
		run("Ray Meta comparison", func() string { return experiments.RayMetaComparison(scale).Format() })
	}
	if want("table2") {
		run("Table II: weak scaling", func() string { return experiments.Table2WeakScaling(scale).Format() })
	}
	if want("grand") {
		run("Grand challenge: full vs subset", func() string { return experiments.GrandChallengeFullVsSubset(scale).Format() })
	}
	if want("fig6") {
		run("Figure 6: per-genome NGA50", func() string { return experiments.Fig6NGA50PerGenome(scale).Format() })
	}
	if want("ablation") {
		run("Ablations", func() string { return experiments.Ablations(scale).Format() })
	}
	if !matched {
		log.Fatalf("mhmbench: unknown experiment %q", *exp)
	}
}
