// Command mhm is the end-to-end MetaHipMer-Go assembler: it reads FASTQ
// (interleaved paired-end) reads, runs the full pipeline on a virtual PGAS
// machine, and writes the resulting scaffolds as FASTA.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mhmgo/internal/core"
	"mhmgo/internal/fastx"
	"mhmgo/internal/pgas"
)

func main() {
	var (
		in           = flag.String("reads", "", "interleaved paired-end FASTQ/FASTA file (required)")
		out          = flag.String("out", "scaffolds.fasta", "output FASTA file")
		ranks        = flag.Int("ranks", 8, "virtual PGAS ranks")
		ranksPerNode = flag.Int("ranks-per-node", 4, "ranks per virtual node")
		kmin         = flag.Int("kmin", 21, "smallest k-mer size")
		kmax         = flag.Int("kmax", 33, "largest k-mer size")
		kstep        = flag.Int("kstep", 12, "k-mer size step")
		insert       = flag.Int("insert", 280, "library insert size")
		noScaffold   = flag.Bool("no-scaffold", false, "stop after contig generation")
		minContig    = flag.Int("min-contig", 0, "drop contigs shorter than this")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	reads, err := fastx.ReadReadsFile(*in)
	if err != nil {
		log.Fatalf("mhm: reading %s: %v", *in, err)
	}
	log.Printf("mhm: %d reads loaded", len(reads))

	cfg := core.DefaultConfig(*ranks)
	cfg.RanksPerNode = *ranksPerNode
	cfg.KMin, cfg.KMax, cfg.KStep = *kmin, *kmax, *kstep
	cfg.InsertSize = *insert
	cfg.InsertStd = *insert / 10
	cfg.Scaffolding = !*noScaffold
	cfg.MinContigLen = *minContig

	res, err := core.Assemble(reads, cfg)
	if err != nil {
		log.Fatalf("mhm: %v", err)
	}

	seqs := res.FinalSequences()
	names := make([]string, len(seqs))
	for i := range seqs {
		names[i] = fmt.Sprintf("scaffold_%06d", i)
	}
	if err := fastx.WriteContigsFASTA(*out, names, seqs); err != nil {
		log.Fatalf("mhm: writing %s: %v", *out, err)
	}

	fmt.Printf("assembly finished: %s\n", res.ScaffoldStats.String())
	fmt.Printf("contigs: %s\n", res.ContigStats.String())
	fmt.Printf("aligned read fraction: %.3f\n", res.AlignedReadFrac)
	fmt.Printf("simulated parallel time: %.3fs on %d ranks (%d virtual nodes); wall time %.3fs\n",
		res.SimSeconds, *ranks, (*ranks+*ranksPerNode-1)/(*ranksPerNode), res.WallSeconds)
	fmt.Println("stage breakdown (simulated seconds):")
	for _, st := range pgas.SortStages(res.Stages) {
		fmt.Printf("  %-16s %.4f\n", st.Name, st.Seconds)
	}
	s := res.Stats
	fmt.Printf("communication: %d msgs (%d off-node), %.1f MB sent, %.1f MB received, %.1f MB off-node\n",
		s.Messages, s.OffNodeMessages,
		float64(s.BytesSent)/1e6, float64(s.BytesReceived)/1e6, float64(s.OffNodeBytes)/1e6)
	fmt.Printf("peak resident collective payload (worst rank): %.1f KB\n",
		float64(s.PeakResidentBytes)/1e3)
	fmt.Printf("wrote %d sequences to %s\n", len(seqs), *out)
}
