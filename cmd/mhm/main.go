// Command mhm is the end-to-end MetaHipMer-Go assembler: it reads FASTQ
// (interleaved paired-end) reads — one file per library — runs the full
// pipeline on a virtual PGAS machine, and writes the resulting scaffolds as
// FASTA.
//
// Multi-library assembly: pass a comma-separated file list to -reads and a
// matching comma-separated insert-size list to -insert (optionally
// -insert-std). Each file is one library; its reads are tagged with the
// file's position, and scaffolding runs one round per library in ascending
// insert-size order:
//
//	mhm -reads pe300.fastq,mp1500.fastq -insert 300,1500 -out scaffolds.fasta
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"mhmgo/internal/core"
	"mhmgo/internal/fastx"
	"mhmgo/internal/pgas"
	"mhmgo/internal/seq"
)

// validateMachineShape checks the -ranks/-ranks-per-node pair. Every rank
// must exist (ranks >= 1) and the ranks must tile whole virtual nodes: a
// ranks-per-node that does not divide ranks would leave a ragged final node,
// which the cost model's on/off-node distinction does not support.
func validateMachineShape(ranks, ranksPerNode int) error {
	if ranks < 1 {
		return fmt.Errorf("-ranks must be >= 1 (got %d)", ranks)
	}
	if ranksPerNode < 1 {
		return fmt.Errorf("-ranks-per-node must be >= 1 (got %d)", ranksPerNode)
	}
	if ranks%ranksPerNode != 0 {
		return fmt.Errorf("-ranks-per-node (%d) must divide -ranks (%d); choose a node size that tiles the machine", ranksPerNode, ranks)
	}
	return nil
}

// validateProfileFlags checks the -cpuprofile/-memprofile pair. Both are
// optional, but pointing them at the same file would have the heap profile
// truncate the CPU profile at exit.
func validateProfileFlags(cpuProfile, memProfile string) error {
	if cpuProfile != "" && cpuProfile == memProfile {
		return fmt.Errorf("-cpuprofile and -memprofile must name different files (both %q)", cpuProfile)
	}
	return nil
}

// parseIntList parses a comma-separated integer list ("300,1500").
func parseIntList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q in list %q", p, s)
		}
		out[i] = v
	}
	return out, nil
}

func main() {
	var (
		in           = flag.String("reads", "", "interleaved paired-end FASTQ/FASTA file(s), comma-separated, one per library (required)")
		out          = flag.String("out", "scaffolds.fasta", "output FASTA file")
		ranks        = flag.Int("ranks", 8, "virtual PGAS ranks")
		ranksPerNode = flag.Int("ranks-per-node", 4, "ranks per virtual node")
		workers      = flag.Int("workers", 0, "OS worker threads driving the simulated ranks (0 = GOMAXPROCS); affects wall time only, never results")
		kmin         = flag.Int("kmin", 21, "smallest k-mer size")
		kmax         = flag.Int("kmax", 33, "largest k-mer size")
		kstep        = flag.Int("kstep", 12, "k-mer size step")
		insert       = flag.String("insert", "", fmt.Sprintf("library insert size(s), comma-separated, one per -reads file (default %d)", seq.DefaultInsertSize))
		insertStd    = flag.String("insert-std", "", "library insert std(s), comma-separated (default insert/10)")
		noScaffold   = flag.Bool("no-scaffold", false, "stop after contig generation")
		minContig    = flag.Int("min-contig", 0, "drop contigs shorter than this")
		ckptDir      = flag.String("checkpoint", "", "write per-stage checkpoints with a content-hashed manifest into this directory")
		resumeDir    = flag.String("resume", "", "resume from the last completed stage checkpointed in this directory")
		failAfter    = flag.String("fail-after-stage", "", "fault injection: kill the run after this stage completes (exit 3)")
		failAtIt     = flag.Int("fail-at-iteration", 0, "fault injection: k-iteration index -fail-after-stage fires at")
		cpuProfile   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile   = flag.String("memprofile", "", "write a pprof heap profile (taken after the run) to this file")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := validateMachineShape(*ranks, *ranksPerNode); err != nil {
		log.Fatalf("mhm: %v", err)
	}
	if err := validateProfileFlags(*cpuProfile, *memProfile); err != nil {
		log.Fatalf("mhm: %v", err)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("mhm: -cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("mhm: -cpuprofile: %v", err)
		}
		// Stopped explicitly on every exit path that follows a completed (or
		// fault-killed) run; log.Fatalf paths lose the profile, which is fine
		// for flag/input errors that happen before any interesting work.
		defer pprof.StopCPUProfile()
	}
	writeMemProfile := func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			log.Printf("mhm: -memprofile: %v", err)
			return
		}
		defer f.Close()
		runtime.GC() // materialize the final live heap before snapshotting
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Printf("mhm: -memprofile: %v", err)
		}
	}

	files := strings.Split(*in, ",")
	inserts, err := parseIntList(*insert)
	if err != nil {
		log.Fatalf("mhm: -insert: %v", err)
	}
	stds, err := parseIntList(*insertStd)
	if err != nil {
		log.Fatalf("mhm: -insert-std: %v", err)
	}
	if len(inserts) > 0 && len(inserts) != len(files) {
		log.Fatalf("mhm: %d -insert values for %d -reads files", len(inserts), len(files))
	}
	if len(stds) > 0 && len(stds) != len(files) {
		log.Fatalf("mhm: %d -insert-std values for %d -reads files", len(stds), len(files))
	}

	// One library per input file: reads are tagged with the file's index so
	// the scaffolder can partition alignments per library.
	var reads []seq.Read
	libs := make([]seq.Library, len(files))
	for i, f := range files {
		f = strings.TrimSpace(f)
		block, err := fastx.ReadReadsFile(f)
		if err != nil {
			log.Fatalf("mhm: reading %s: %v", f, err)
		}
		// Pairing is positional (mates at global indices 2i and 2i+1), so an
		// odd-length block would misalign every later library's pairs; drop
		// the trailing unpaired read of any non-final file.
		if len(block)%2 != 0 && i != len(files)-1 {
			log.Printf("mhm: warning: %s holds %d reads (odd) — dropping the trailing unpaired read to keep later libraries paired", f, len(block))
			block = block[:len(block)-1]
		}
		lib := seq.Library{Name: f, InsertSize: seq.DefaultInsertSize, InsertStd: seq.DefaultInsertStd}
		if len(inserts) > 0 {
			lib.InsertSize = inserts[i]
			lib.InsertStd = lib.InsertSize / 10
		}
		if len(stds) > 0 {
			lib.InsertStd = stds[i]
		}
		libs[i] = lib
		for j := range block {
			block[j].LibID = uint8(i)
		}
		reads = append(reads, block...)
		log.Printf("mhm: %s: %d reads loaded (library %d, insert %d±%d)",
			f, len(block), i, lib.InsertSize, lib.InsertStd)
	}

	cfg := core.DefaultConfig(*ranks)
	cfg.RanksPerNode = *ranksPerNode
	cfg.Workers = *workers
	cfg.KMin, cfg.KMax, cfg.KStep = *kmin, *kmax, *kstep
	cfg.Libraries = libs
	cfg.InsertSize, cfg.InsertStd = libs[0].InsertSize, libs[0].InsertStd
	cfg.Scaffolding = !*noScaffold
	cfg.MinContigLen = *minContig
	cfg.CheckpointDir = *ckptDir
	cfg.ResumeFrom = *resumeDir
	cfg.FailAfterStage = *failAfter
	cfg.FailAtIteration = *failAtIt

	res, err := core.Assemble(reads, cfg)
	if err != nil {
		if errors.Is(err, core.ErrFaultInjected) {
			log.Printf("mhm: %v", err)
			if *ckptDir != "" {
				log.Printf("mhm: checkpoints up to the kill point are in %s; rerun with -resume %s to continue", *ckptDir, *ckptDir)
			}
			// os.Exit skips deferred calls, so flush the profiles by hand —
			// a profile of the partial run is exactly what a fault-injection
			// investigation wants.
			if *cpuProfile != "" {
				pprof.StopCPUProfile()
			}
			writeMemProfile()
			os.Exit(3)
		}
		log.Fatalf("mhm: %v", err)
	}
	if res.ManifestHead != "" {
		fmt.Printf("manifest head: %s\n", res.ManifestHead)
	}

	seqs := res.FinalSequences()
	names := make([]string, len(seqs))
	for i := range seqs {
		names[i] = fmt.Sprintf("scaffold_%06d", i)
	}
	if err := fastx.WriteContigsFASTA(*out, names, seqs); err != nil {
		log.Fatalf("mhm: writing %s: %v", *out, err)
	}

	fmt.Printf("assembly finished: %s\n", res.ScaffoldStats.String())
	fmt.Printf("contigs: %s\n", res.ContigStats.String())
	fmt.Printf("aligned read fraction: %.3f\n", res.AlignedReadFrac)
	for _, rs := range res.ScaffoldRounds {
		fmt.Printf("scaffolding round %-20s insert=%d contigs_in=%d scaffolds=%d links=%d\n",
			rs.Library, rs.InsertSize, rs.InputContigs, rs.Scaffolds, rs.AcceptedLinks)
	}
	fmt.Printf("simulated parallel time: %.3fs on %d ranks (%d virtual nodes); wall time %.3fs\n",
		res.SimSeconds, *ranks, (*ranks+*ranksPerNode-1)/(*ranksPerNode), res.WallSeconds)
	fmt.Println("stage breakdown (simulated seconds):")
	for _, st := range pgas.SortStages(res.Stages) {
		fmt.Printf("  %-16s %.4f\n", st.Name, st.Seconds)
	}
	s := res.Stats
	fmt.Printf("communication: %d msgs (%d off-node), %.1f MB sent, %.1f MB received, %.1f MB off-node\n",
		s.Messages, s.OffNodeMessages,
		float64(s.BytesSent)/1e6, float64(s.BytesReceived)/1e6, float64(s.OffNodeBytes)/1e6)
	fmt.Printf("peak resident collective payload (worst rank): %.1f KB\n",
		float64(s.PeakResidentBytes)/1e3)
	fmt.Printf("wrote %d sequences to %s\n", len(seqs), *out)
	writeMemProfile()
}
