// Command mhm is the end-to-end MetaHipMer-Go assembler: it reads FASTQ
// (interleaved paired-end) reads — one file per library — runs the full
// pipeline on a virtual PGAS machine, and writes the resulting scaffolds as
// FASTA.
//
// Multi-library assembly: pass a comma-separated file list to -reads and a
// matching comma-separated insert-size list to -insert (optionally
// -insert-std). Each file is one library; its reads are tagged with the
// file's position, and scaffolding runs one round per library in ascending
// insert-size order:
//
//	mhm -reads pe300.fastq,mp1500.fastq -insert 300,1500 -out scaffolds.fasta
//
// Multi-sample co-assembly: pass -sample-reads a semicolon-separated list of
// name=files entries (each sample's comma-separated per-library file list;
// every sample must list the same number of libraries). The union of all
// samples' reads is co-assembled into one set of scaffolds, every read keeps
// its sample tag, and the run reports how many of each sample's reads
// localize back onto the co-assembly:
//
//	mhm -sample-reads 't0=t0.fastq;t1=t1.fastq' -insert 280 -out scaffolds.fasta
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"mhmgo/internal/core"
	"mhmgo/internal/eval"
	"mhmgo/internal/fastx"
	"mhmgo/internal/pgas"
	"mhmgo/internal/seq"
)

// validateMachineShape checks the -ranks/-ranks-per-node pair. Every rank
// must exist (ranks >= 1) and the ranks must tile whole virtual nodes: a
// ranks-per-node that does not divide ranks would leave a ragged final node,
// which the cost model's on/off-node distinction does not support.
func validateMachineShape(ranks, ranksPerNode int) error {
	if ranks < 1 {
		return fmt.Errorf("-ranks must be >= 1 (got %d)", ranks)
	}
	if ranksPerNode < 1 {
		return fmt.Errorf("-ranks-per-node must be >= 1 (got %d)", ranksPerNode)
	}
	if ranks%ranksPerNode != 0 {
		return fmt.Errorf("-ranks-per-node (%d) must divide -ranks (%d); choose a node size that tiles the machine", ranksPerNode, ranks)
	}
	return nil
}

// validateProfileFlags checks the -cpuprofile/-memprofile pair. Both are
// optional, but pointing them at the same file would have the heap profile
// truncate the CPU profile at exit.
func validateProfileFlags(cpuProfile, memProfile string) error {
	if cpuProfile != "" && cpuProfile == memProfile {
		return fmt.Errorf("-cpuprofile and -memprofile must name different files (both %q)", cpuProfile)
	}
	return nil
}

// parseIntList parses a comma-separated integer list ("300,1500").
func parseIntList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q in list %q", p, s)
		}
		out[i] = v
	}
	return out, nil
}

// sampleReadsSpec is one sample's parsed -sample-reads entry: the sample's
// name and its per-library FASTQ files in library order.
type sampleReadsSpec struct {
	Name  string
	Files []string
}

// parseSampleReads parses the -sample-reads spec: a semicolon-separated list
// of name=file[,file...] entries, one per sample. Every sample must list the
// same number of files — file i of each sample is library i, so a ragged
// list would silently mispair libraries across samples.
func parseSampleReads(s string) ([]sampleReadsSpec, error) {
	if s == "" {
		return nil, nil
	}
	seen := map[string]bool{}
	var specs []sampleReadsSpec
	for i, entry := range strings.Split(s, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			return nil, fmt.Errorf("sample entry %d is empty; want name=file[,file...]", i)
		}
		name, fileList, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("sample entry %q: want name=file[,file...]", entry)
		}
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("sample entry %q has an empty name", entry)
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate sample name %q", name)
		}
		seen[name] = true
		var files []string
		for _, f := range strings.Split(fileList, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				return nil, fmt.Errorf("sample %q lists an empty file name", name)
			}
			files = append(files, f)
		}
		if len(specs) > 0 && len(files) != len(specs[0].Files) {
			return nil, fmt.Errorf("sample %q lists %d libraries but sample %q lists %d; every sample must provide the same libraries",
				name, len(files), specs[0].Name, len(specs[0].Files))
		}
		specs = append(specs, sampleReadsSpec{Name: name, Files: files})
	}
	if len(specs) > 256 {
		return nil, fmt.Errorf("%d samples exceed the 256 the one-byte sample tag can address", len(specs))
	}
	if len(specs[0].Files) > 256 {
		return nil, fmt.Errorf("%d libraries per sample exceed the 256 the one-byte library tag can address", len(specs[0].Files))
	}
	return specs, nil
}

func main() {
	var (
		in           = flag.String("reads", "", "interleaved paired-end FASTQ/FASTA file(s), comma-separated, one per library (required unless -sample-reads)")
		sampleIn     = flag.String("sample-reads", "", "multi-sample co-assembly input: name=file[,file...] entries separated by ';', one per sample")
		out          = flag.String("out", "scaffolds.fasta", "output FASTA file")
		ranks        = flag.Int("ranks", 8, "virtual PGAS ranks")
		ranksPerNode = flag.Int("ranks-per-node", 4, "ranks per virtual node")
		workers      = flag.Int("workers", 0, "OS worker threads driving the simulated ranks (0 = GOMAXPROCS); affects wall time only, never results")
		kmin         = flag.Int("kmin", 21, "smallest k-mer size")
		kmax         = flag.Int("kmax", 33, "largest k-mer size")
		kstep        = flag.Int("kstep", 12, "k-mer size step")
		insert       = flag.String("insert", "", fmt.Sprintf("library insert size(s), comma-separated, one per -reads file (default %d)", seq.DefaultInsertSize))
		insertStd    = flag.String("insert-std", "", "library insert std(s), comma-separated (default insert/10)")
		noScaffold   = flag.Bool("no-scaffold", false, "stop after contig generation")
		minContig    = flag.Int("min-contig", 0, "drop contigs shorter than this")
		ckptDir      = flag.String("checkpoint", "", "write per-stage checkpoints with a content-hashed manifest into this directory")
		resumeDir    = flag.String("resume", "", "resume from the last completed stage checkpointed in this directory")
		failAfter    = flag.String("fail-after-stage", "", "fault injection: kill the run after this stage completes (exit 3)")
		failAtIt     = flag.Int("fail-at-iteration", 0, "fault injection: k-iteration index -fail-after-stage fires at")
		cpuProfile   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile   = flag.String("memprofile", "", "write a pprof heap profile (taken after the run) to this file")
	)
	flag.Parse()
	sampleSpecs, err := parseSampleReads(*sampleIn)
	if err != nil {
		log.Fatalf("mhm: -sample-reads: %v", err)
	}
	if *in != "" && len(sampleSpecs) > 0 {
		log.Fatalf("mhm: -reads and -sample-reads are mutually exclusive; list every sample's files in -sample-reads")
	}
	if *in == "" && len(sampleSpecs) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if err := validateMachineShape(*ranks, *ranksPerNode); err != nil {
		log.Fatalf("mhm: %v", err)
	}
	if err := validateProfileFlags(*cpuProfile, *memProfile); err != nil {
		log.Fatalf("mhm: %v", err)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("mhm: -cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("mhm: -cpuprofile: %v", err)
		}
		// Stopped explicitly on every exit path that follows a completed (or
		// fault-killed) run; log.Fatalf paths lose the profile, which is fine
		// for flag/input errors that happen before any interesting work.
		defer pprof.StopCPUProfile()
	}
	writeMemProfile := func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			log.Printf("mhm: -memprofile: %v", err)
			return
		}
		defer f.Close()
		runtime.GC() // materialize the final live heap before snapshotting
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Printf("mhm: -memprofile: %v", err)
		}
	}

	// Flatten the inputs to one (path, sample, library) entry per file. With
	// -reads every file is one library of the single implicit sample; with
	// -sample-reads file i of each sample is library i, and the union of all
	// samples' reads is co-assembled with per-read sample tags.
	type inputFile struct {
		path   string
		sample uint8
		lib    uint8
	}
	var inputs []inputFile
	if len(sampleSpecs) > 0 {
		for si, sp := range sampleSpecs {
			for li, f := range sp.Files {
				inputs = append(inputs, inputFile{path: f, sample: uint8(si), lib: uint8(li)})
			}
		}
	} else {
		for i, f := range strings.Split(*in, ",") {
			if i > 255 {
				log.Fatalf("mhm: %d -reads files exceed the 256 the one-byte library tag can address", i+1)
			}
			inputs = append(inputs, inputFile{path: strings.TrimSpace(f), lib: uint8(i)})
		}
	}
	numLibs := len(inputs)
	if len(sampleSpecs) > 0 {
		numLibs = len(sampleSpecs[0].Files)
	}
	inserts, err := parseIntList(*insert)
	if err != nil {
		log.Fatalf("mhm: -insert: %v", err)
	}
	stds, err := parseIntList(*insertStd)
	if err != nil {
		log.Fatalf("mhm: -insert-std: %v", err)
	}
	if len(inserts) > 0 && len(inserts) != numLibs {
		log.Fatalf("mhm: %d -insert values for %d libraries", len(inserts), numLibs)
	}
	if len(stds) > 0 && len(stds) != numLibs {
		log.Fatalf("mhm: %d -insert-std values for %d libraries", len(stds), numLibs)
	}

	// One library per library index: in -reads mode a library is named after
	// its file; in -sample-reads mode library i spans one file per sample, so
	// it gets a positional name.
	libs := make([]seq.Library, numLibs)
	for li := range libs {
		lib := seq.Library{InsertSize: seq.DefaultInsertSize, InsertStd: seq.DefaultInsertStd}
		if len(sampleSpecs) > 0 {
			lib.Name = fmt.Sprintf("lib%d", li)
		} else {
			lib.Name = inputs[li].path
		}
		if len(inserts) > 0 {
			lib.InsertSize = inserts[li]
			lib.InsertStd = lib.InsertSize / 10
		}
		if len(stds) > 0 {
			lib.InsertStd = stds[li]
		}
		libs[li] = lib
	}

	var reads []seq.Read
	for i, inf := range inputs {
		block, err := fastx.ReadReadsFile(inf.path)
		if err != nil {
			log.Fatalf("mhm: reading %s: %v", inf.path, err)
		}
		// Pairing is positional (mates at global indices 2i and 2i+1), so an
		// odd-length block would misalign every later block's pairs; drop the
		// trailing unpaired read of any non-final file.
		if len(block)%2 != 0 && i != len(inputs)-1 {
			log.Printf("mhm: warning: %s holds %d reads (odd) — dropping the trailing unpaired read to keep later blocks paired", inf.path, len(block))
			block = block[:len(block)-1]
		}
		for j := range block {
			block[j].LibID = inf.lib
			block[j].SampleID = inf.sample
		}
		reads = append(reads, block...)
		if len(sampleSpecs) > 0 {
			log.Printf("mhm: %s: %d reads loaded (sample %s, library %d, insert %d±%d)",
				inf.path, len(block), sampleSpecs[inf.sample].Name, inf.lib,
				libs[inf.lib].InsertSize, libs[inf.lib].InsertStd)
		} else {
			log.Printf("mhm: %s: %d reads loaded (library %d, insert %d±%d)",
				inf.path, len(block), inf.lib, libs[inf.lib].InsertSize, libs[inf.lib].InsertStd)
		}
	}

	cfg := core.DefaultConfig(*ranks)
	cfg.RanksPerNode = *ranksPerNode
	cfg.Workers = *workers
	cfg.KMin, cfg.KMax, cfg.KStep = *kmin, *kmax, *kstep
	cfg.Libraries = libs
	cfg.InsertSize, cfg.InsertStd = libs[0].InsertSize, libs[0].InsertStd
	cfg.Scaffolding = !*noScaffold
	cfg.MinContigLen = *minContig
	cfg.CheckpointDir = *ckptDir
	cfg.ResumeFrom = *resumeDir
	cfg.FailAfterStage = *failAfter
	cfg.FailAtIteration = *failAtIt

	res, err := core.Assemble(reads, cfg)
	if err != nil {
		if errors.Is(err, core.ErrFaultInjected) {
			log.Printf("mhm: %v", err)
			if *ckptDir != "" {
				log.Printf("mhm: checkpoints up to the kill point are in %s; rerun with -resume %s to continue", *ckptDir, *ckptDir)
			}
			// os.Exit skips deferred calls, so flush the profiles by hand —
			// a profile of the partial run is exactly what a fault-injection
			// investigation wants.
			if *cpuProfile != "" {
				pprof.StopCPUProfile()
			}
			writeMemProfile()
			os.Exit(3)
		}
		log.Fatalf("mhm: %v", err)
	}
	if res.ManifestHead != "" {
		fmt.Printf("manifest head: %s\n", res.ManifestHead)
	}

	seqs := res.FinalSequences()
	names := make([]string, len(seqs))
	for i := range seqs {
		names[i] = fmt.Sprintf("scaffold_%06d", i)
	}
	if err := fastx.WriteContigsFASTA(*out, names, seqs); err != nil {
		log.Fatalf("mhm: writing %s: %v", *out, err)
	}

	fmt.Printf("assembly finished: %s\n", res.ScaffoldStats.String())
	fmt.Printf("contigs: %s\n", res.ContigStats.String())
	fmt.Printf("aligned read fraction: %.3f\n", res.AlignedReadFrac)
	for _, rs := range res.ScaffoldRounds {
		fmt.Printf("scaffolding round %-20s insert=%d contigs_in=%d scaffolds=%d links=%d\n",
			rs.Library, rs.InsertSize, rs.InputContigs, rs.Scaffolds, rs.AcceptedLinks)
	}
	fmt.Printf("simulated parallel time: %.3fs on %d ranks (%d virtual nodes); wall time %.3fs\n",
		res.SimSeconds, *ranks, (*ranks+*ranksPerNode-1)/(*ranksPerNode), res.WallSeconds)
	fmt.Println("stage breakdown (simulated seconds):")
	for _, st := range pgas.SortStages(res.Stages) {
		fmt.Printf("  %-16s %.4f\n", st.Name, st.Seconds)
	}
	s := res.Stats
	fmt.Printf("communication: %d msgs (%d off-node), %.1f MB sent, %.1f MB received, %.1f MB off-node\n",
		s.Messages, s.OffNodeMessages,
		float64(s.BytesSent)/1e6, float64(s.BytesReceived)/1e6, float64(s.OffNodeBytes)/1e6)
	fmt.Printf("peak resident collective payload (worst rank): %.1f KB\n",
		float64(s.PeakResidentBytes)/1e3)
	if len(sampleSpecs) > 0 {
		// Co-assembly: report how much of each sample the pooled assembly
		// explains by localizing every read back onto the scaffolds.
		sampleNames := make([]string, len(sampleSpecs))
		for i, sp := range sampleSpecs {
			sampleNames[i] = sp.Name
		}
		fmt.Println("per-sample read localization:")
		for _, sa := range eval.AbundanceReport(seqs, reads, sampleNames, nil, eval.DefaultOptions()) {
			frac := 0.0
			if sa.Reads > 0 {
				frac = float64(sa.Localized) / float64(sa.Reads)
			}
			fmt.Printf("  %-12s %d/%d reads localized (%.1f%%)\n", sa.Sample, sa.Localized, sa.Reads, 100*frac)
		}
	}
	fmt.Printf("wrote %d sequences to %s\n", len(seqs), *out)
	writeMemProfile()
}
