package main

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func TestValidateMachineShape(t *testing.T) {
	cases := []struct {
		name         string
		ranks        int
		ranksPerNode int
		wantErr      string // substring of the error, "" = valid
	}{
		{"single rank", 1, 1, ""},
		{"default shape", 8, 4, ""},
		{"one node", 8, 8, ""},
		{"large P", 4096, 16, ""},
		{"zero ranks", 0, 4, "-ranks must be >= 1"},
		{"negative ranks", -3, 4, "-ranks must be >= 1"},
		{"zero ranks per node", 8, 0, "-ranks-per-node must be >= 1"},
		{"negative ranks per node", 8, -1, "-ranks-per-node must be >= 1"},
		{"ragged final node", 8, 3, "must divide"},
		{"rpn larger than ranks", 4, 8, "must divide"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateMachineShape(tc.ranks, tc.ranksPerNode)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateMachineShape(%d, %d) = %v, want nil", tc.ranks, tc.ranksPerNode, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validateMachineShape(%d, %d) = nil, want error containing %q", tc.ranks, tc.ranksPerNode, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validateMachineShape(%d, %d) = %q, want it to contain %q", tc.ranks, tc.ranksPerNode, err, tc.wantErr)
			}
		})
	}
}

func TestParseSampleReads(t *testing.T) {
	big := make([]string, 257)
	for i := range big {
		big[i] = fmt.Sprintf("s%d=f%d.fastq", i, i)
	}
	manyLibs := make([]string, 257)
	for i := range manyLibs {
		manyLibs[i] = fmt.Sprintf("f%d.fastq", i)
	}
	cases := []struct {
		name    string
		spec    string
		want    []sampleReadsSpec
		wantErr string // substring of the error, "" = valid
	}{
		{"empty spec", "", nil, ""},
		{"one sample one library", "t0=a.fastq",
			[]sampleReadsSpec{{Name: "t0", Files: []string{"a.fastq"}}}, ""},
		{"two samples", "t0=a.fastq;t1=b.fastq",
			[]sampleReadsSpec{{Name: "t0", Files: []string{"a.fastq"}}, {Name: "t1", Files: []string{"b.fastq"}}}, ""},
		{"two libraries per sample", "t0=pe.fastq,mp.fastq;t1=pe2.fastq,mp2.fastq",
			[]sampleReadsSpec{
				{Name: "t0", Files: []string{"pe.fastq", "mp.fastq"}},
				{Name: "t1", Files: []string{"pe2.fastq", "mp2.fastq"}}}, ""},
		{"whitespace trimmed", " t0 = a.fastq ; t1 = b.fastq ",
			[]sampleReadsSpec{{Name: "t0", Files: []string{"a.fastq"}}, {Name: "t1", Files: []string{"b.fastq"}}}, ""},
		{"equals inside a path", "t0=dir=odd/a.fastq",
			[]sampleReadsSpec{{Name: "t0", Files: []string{"dir=odd/a.fastq"}}}, ""},
		{"missing equals", "t0", nil, "want name=file"},
		{"empty entry", "t0=a.fastq;;t1=b.fastq", nil, "entry 1 is empty"},
		{"empty name", "=a.fastq", nil, "empty name"},
		{"blank name", "  =a.fastq", nil, "empty name"},
		{"duplicate name", "t0=a.fastq;t0=b.fastq", nil, `duplicate sample name "t0"`},
		{"empty file", "t0=a.fastq,", nil, "empty file name"},
		{"only empty file", "t0=", nil, "empty file name"},
		{"ragged library counts", "t0=a.fastq,b.fastq;t1=c.fastq", nil, "every sample must provide the same libraries"},
		{"too many samples", strings.Join(big, ";"), nil, "exceed the 256"},
		{"too many libraries", "t0=" + strings.Join(manyLibs, ","), nil, "exceed the 256"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseSampleReads(tc.spec)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("parseSampleReads(%q) error = %v, want nil", tc.spec, err)
				}
				if !reflect.DeepEqual(got, tc.want) {
					t.Fatalf("parseSampleReads(%q) = %+v, want %+v", tc.spec, got, tc.want)
				}
				return
			}
			if err == nil {
				t.Fatalf("parseSampleReads(%q) = nil error, want error containing %q", tc.spec, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("parseSampleReads(%q) = %q, want it to contain %q", tc.spec, err, tc.wantErr)
			}
		})
	}
}

func TestValidateProfileFlags(t *testing.T) {
	cases := []struct {
		name     string
		cpu, mem string
		wantErr  string // substring of the error, "" = valid
	}{
		{"both empty", "", "", ""},
		{"cpu only", "cpu.pprof", "", ""},
		{"mem only", "", "mem.pprof", ""},
		{"both distinct", "cpu.pprof", "mem.pprof", ""},
		{"same file", "run.pprof", "run.pprof", "must name different files"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateProfileFlags(tc.cpu, tc.mem)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateProfileFlags(%q, %q) = %v, want nil", tc.cpu, tc.mem, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validateProfileFlags(%q, %q) = nil, want error containing %q", tc.cpu, tc.mem, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validateProfileFlags(%q, %q) = %q, want it to contain %q", tc.cpu, tc.mem, err, tc.wantErr)
			}
		})
	}
}
