package main

import (
	"strings"
	"testing"
)

func TestValidateMachineShape(t *testing.T) {
	cases := []struct {
		name         string
		ranks        int
		ranksPerNode int
		wantErr      string // substring of the error, "" = valid
	}{
		{"single rank", 1, 1, ""},
		{"default shape", 8, 4, ""},
		{"one node", 8, 8, ""},
		{"large P", 4096, 16, ""},
		{"zero ranks", 0, 4, "-ranks must be >= 1"},
		{"negative ranks", -3, 4, "-ranks must be >= 1"},
		{"zero ranks per node", 8, 0, "-ranks-per-node must be >= 1"},
		{"negative ranks per node", 8, -1, "-ranks-per-node must be >= 1"},
		{"ragged final node", 8, 3, "must divide"},
		{"rpn larger than ranks", 4, 8, "must divide"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateMachineShape(tc.ranks, tc.ranksPerNode)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateMachineShape(%d, %d) = %v, want nil", tc.ranks, tc.ranksPerNode, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validateMachineShape(%d, %d) = nil, want error containing %q", tc.ranks, tc.ranksPerNode, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validateMachineShape(%d, %d) = %q, want it to contain %q", tc.ranks, tc.ranksPerNode, err, tc.wantErr)
			}
		})
	}
}

func TestValidateProfileFlags(t *testing.T) {
	cases := []struct {
		name     string
		cpu, mem string
		wantErr  string // substring of the error, "" = valid
	}{
		{"both empty", "", "", ""},
		{"cpu only", "cpu.pprof", "", ""},
		{"mem only", "", "mem.pprof", ""},
		{"both distinct", "cpu.pprof", "mem.pprof", ""},
		{"same file", "run.pprof", "run.pprof", "must name different files"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateProfileFlags(tc.cpu, tc.mem)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateProfileFlags(%q, %q) = %v, want nil", tc.cpu, tc.mem, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validateProfileFlags(%q, %q) = nil, want error containing %q", tc.cpu, tc.mem, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validateProfileFlags(%q, %q) = %q, want it to contain %q", tc.cpu, tc.mem, err, tc.wantErr)
			}
		})
	}
}
