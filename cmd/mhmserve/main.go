// Command mhmserve runs the assembly-as-a-service job server: a long-lived
// HTTP endpoint that accepts concurrent assembly jobs (inline reads or
// simulated communities), schedules them onto a shared worker-slot budget
// with priority admission control, streams per-stage progress, and serves
// results and per-job metrics.
//
//	mhmserve -addr :8642 -workers 8 -max-queue 64
//
// See the API table in internal/serve (POST /v1/jobs, GET /v1/jobs/{id},
// GET /v1/jobs/{id}/events, GET /v1/jobs/{id}/fasta, GET /v1/metrics.csv,
// GET /v1/healthz) and TUTORIAL.md for a walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mhmgo/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8642", "listen address")
		workers      = flag.Int("workers", 0, "server-wide worker-slot budget (default GOMAXPROCS)")
		maxQueue     = flag.Int("max-queue", 0, "admission queue capacity (default 64)")
		queueTimeout = flag.Duration("queue-timeout", 0, "queue-wait budget before a job times out (default 60s)")
	)
	flag.Parse()

	s := serve.New(serve.Options{
		TotalWorkers: *workers,
		MaxQueue:     *maxQueue,
		QueueTimeout: *queueTimeout,
	})
	hs := &http.Server{Addr: *addr, Handler: s}

	// On SIGINT/SIGTERM: stop accepting connections, cancel every queued and
	// running job (their machines abort at the next barrier), then exit.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("mhmserve: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		s.Close()
	}()

	log.Printf("mhmserve: listening on %s", *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("mhmserve: %v", err)
	}
}
