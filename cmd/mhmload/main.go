// Command mhmload load-tests an mhmserve endpoint: it sweeps tenant counts,
// has every tenant submit a stream of small simulated assemblies, and
// reports throughput (jobs/sec), submit-to-done latency percentiles, and
// the admission rejection rate per sweep as BENCH_serve.json.
//
//	mhmload -url http://localhost:8642 -tenants 1,4,16 -jobs 3 -out BENCH_serve.json
//
// With no -url, mhmload starts an in-process server on a loopback port and
// drives it over real HTTP, so a single command produces the benchmark.
// The exit status is non-zero if any job failed, which makes the command
// double as a smoke check in CI.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mhmgo/internal/serve"
)

// tenantResult is one tenant's tally within a sweep.
type tenantResult struct {
	latencies []time.Duration
	queueMS   []float64
	rejected  int
	failed    []string
}

// sweepReport is the per-tenant-count record of BENCH_serve.json.
type sweepReport struct {
	Tenants     int     `json:"tenants"`
	JobsPerTen  int     `json:"jobs_per_tenant"`
	Completed   int     `json:"completed"`
	Rejected    int     `json:"rejected_submits"`
	Failed      int     `json:"failed"`
	WallSeconds float64 `json:"wall_seconds"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
	// Submit-to-done latency percentiles (milliseconds).
	LatencyP50MS float64 `json:"latency_p50_ms"`
	LatencyP90MS float64 `json:"latency_p90_ms"`
	LatencyP99MS float64 `json:"latency_p99_ms"`
	// Queue-wait share of the latency, from the server's own metrics.
	QueueP50MS float64 `json:"queue_p50_ms"`
	QueueP99MS float64 `json:"queue_p99_ms"`
	// RejectionRate is rejected submits over total submit attempts.
	RejectionRate float64 `json:"rejection_rate"`
}

type benchReport struct {
	Benchmark string        `json:"benchmark"`
	Workers   int           `json:"server_workers"`
	JobRanks  int           `json:"job_ranks"`
	JobSpec   serve.SimSpec `json:"job_sim"`
	Sweeps    []sweepReport `json:"sweeps"`
}

func main() {
	var (
		url      = flag.String("url", "", "server base URL (empty: start an in-process server)")
		tenants  = flag.String("tenants", "1,4,16", "comma-separated tenant counts to sweep")
		jobs     = flag.Int("jobs", 3, "jobs each tenant submits (sequentially)")
		ranks    = flag.Int("ranks", 4, "virtual ranks per job")
		workers  = flag.Int("workers", 1, "worker slots each job requests")
		genomes  = flag.Int("genomes", 2, "simulated community size per job")
		glen     = flag.Int("genome-len", 2000, "simulated mean genome length")
		coverage = flag.Float64("coverage", 12, "simulated fold coverage")
		srvWork  = flag.Int("server-workers", 0, "in-process server worker budget (default GOMAXPROCS); ignored with -url")
		out      = flag.String("out", "BENCH_serve.json", "output report path")
	)
	flag.Parse()

	counts, err := parseCounts(*tenants)
	if err != nil {
		log.Fatalf("mhmload: -tenants: %v", err)
	}

	base := *url
	serverWorkers := *srvWork
	if base == "" {
		s := serve.New(serve.Options{TotalWorkers: *srvWork})
		defer s.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("mhmload: %v", err)
		}
		hs := &http.Server{Handler: s}
		go hs.Serve(ln)
		defer hs.Close()
		base = "http://" + ln.Addr().String()
		serverWorkers = s.Stats().TotalWorkers
		log.Printf("mhmload: in-process server on %s (%d workers)", base, serverWorkers)
	} else if st, err := fetchStats(base); err == nil {
		serverWorkers = st.TotalWorkers
	}

	sim := serve.SimSpec{Genomes: *genomes, GenomeLen: *glen, Coverage: *coverage}
	report := benchReport{
		Benchmark: "serve-load",
		Workers:   serverWorkers,
		JobRanks:  *ranks,
		JobSpec:   sim,
		Sweeps:    make([]sweepReport, 0, len(counts)),
	}

	anyFailed := false
	for _, n := range counts {
		sw := runSweep(base, n, *jobs, *ranks, *workers, sim)
		if sw.Failed > 0 {
			anyFailed = true
		}
		log.Printf("mhmload: tenants=%d completed=%d failed=%d rejected=%d %.2f jobs/sec p50=%.0fms p99=%.0fms",
			sw.Tenants, sw.Completed, sw.Failed, sw.Rejected, sw.JobsPerSec, sw.LatencyP50MS, sw.LatencyP99MS)
		report.Sweeps = append(report.Sweeps, sw)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatalf("mhmload: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatalf("mhmload: %v", err)
	}
	log.Printf("mhmload: wrote %s", *out)
	if anyFailed {
		log.Fatalf("mhmload: some jobs failed")
	}
}

func parseCounts(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid tenant count %q", part)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

// runSweep drives n concurrent tenants, each submitting its jobs
// sequentially (submit, follow the event stream to a terminal state,
// repeat), and aggregates the sweep's tallies.
func runSweep(base string, n, jobs, ranks, workers int, sim serve.SimSpec) sweepReport {
	results := make([]tenantResult, n)
	start := time.Now()
	var wg sync.WaitGroup
	for tenant := 0; tenant < n; tenant++ {
		wg.Add(1)
		go func(tenant int) {
			defer wg.Done()
			res := &results[tenant]
			for job := 0; job < jobs; job++ {
				// Distinct seeds keep co-tenant jobs from being identical.
				jobSim := sim
				jobSim.Seed = int64(1000*n + 10*tenant + job)
				spec := serve.JobSpec{
					ID:      fmt.Sprintf("load-n%d-t%d-j%d", n, tenant, job),
					Workers: workers,
					Ranks:   ranks,
					Sim:     &jobSim,
				}
				runJob(base, spec, res)
			}
		}(tenant)
	}
	wg.Wait()
	wall := time.Since(start)

	sw := sweepReport{Tenants: n, JobsPerTen: jobs, WallSeconds: wall.Seconds()}
	var lats []time.Duration
	var queueMS []float64
	submits := 0
	for _, res := range results {
		sw.Completed += len(res.latencies)
		sw.Rejected += res.rejected
		sw.Failed += len(res.failed)
		submits += len(res.latencies) + res.rejected + len(res.failed)
		lats = append(lats, res.latencies...)
		queueMS = append(queueMS, res.queueMS...)
		for _, msg := range res.failed {
			log.Printf("mhmload: FAILED %s", msg)
		}
	}
	if sw.WallSeconds > 0 {
		sw.JobsPerSec = float64(sw.Completed) / sw.WallSeconds
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	sw.LatencyP50MS = percentileMS(lats, 0.50)
	sw.LatencyP90MS = percentileMS(lats, 0.90)
	sw.LatencyP99MS = percentileMS(lats, 0.99)
	sort.Float64s(queueMS)
	sw.QueueP50MS = percentileF(queueMS, 0.50)
	sw.QueueP99MS = percentileF(queueMS, 0.99)
	if submits > 0 {
		sw.RejectionRate = float64(sw.Rejected) / float64(submits)
	}
	return sw
}

// runJob submits one job and follows its event stream until it terminates.
// A 429 counts as a rejection; the tenant honors Retry-After and resubmits.
func runJob(base string, spec serve.JobSpec, res *tenantResult) {
	body, _ := json.Marshal(spec)
	submitted := time.Now()
	for {
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			res.failed = append(res.failed, fmt.Sprintf("%s: submit: %v", spec.ID, err))
			return
		}
		msg, _ := readAll(resp)
		if resp.StatusCode == http.StatusTooManyRequests {
			res.rejected++
			after, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
			if after < 1 {
				after = 1
			}
			time.Sleep(time.Duration(after) * time.Second)
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			res.failed = append(res.failed, fmt.Sprintf("%s: submit status %d: %s", spec.ID, resp.StatusCode, msg))
			return
		}
		break
	}

	state, err := followEvents(base, spec.ID)
	if err != nil {
		res.failed = append(res.failed, fmt.Sprintf("%s: events: %v", spec.ID, err))
		return
	}
	if state != serve.StateDone {
		res.failed = append(res.failed, fmt.Sprintf("%s: terminal state %s", spec.ID, state))
		return
	}
	res.latencies = append(res.latencies, time.Since(submitted))
	if m, err := fetchMetrics(base, spec.ID); err == nil {
		res.queueMS = append(res.queueMS, m.QueueMS)
	}
}

// followEvents streams the job's NDJSON events until the server closes the
// stream at a terminal state, and returns that state.
func followEvents(base, id string) (string, error) {
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events?format=ndjson")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %d", resp.StatusCode)
	}
	last := ""
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		ev, err := serve.DecodeEvent(sc.Bytes())
		if err != nil {
			return "", err
		}
		if ev.Type == "state" {
			last = ev.State
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	if last == "" {
		return "", fmt.Errorf("stream closed without a state event")
	}
	return last, nil
}

func fetchMetrics(base, id string) (serve.JobMetrics, error) {
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		return serve.JobMetrics{}, err
	}
	data, err := readAll(resp)
	if err != nil {
		return serve.JobMetrics{}, err
	}
	var snap struct {
		Metrics serve.JobMetrics `json:"metrics"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		return serve.JobMetrics{}, err
	}
	return snap.Metrics, nil
}

func fetchStats(base string) (serve.Stats, error) {
	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		return serve.Stats{}, err
	}
	data, err := readAll(resp)
	if err != nil {
		return serve.Stats{}, err
	}
	var st serve.Stats
	err = json.Unmarshal(data, &st)
	return st, err
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

func percentileMS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}

func percentileF(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
