package cgraph

import (
	"strings"
	"testing"

	"mhmgo/internal/dbg"
	"mhmgo/internal/dist"
	"mhmgo/internal/pgas"
	"mhmgo/internal/seq"
)

// refineOut is a Result plus the refined contigs emitted to rank 0.
type refineOut struct {
	Result
	Contigs []dbg.Contig
}

// runRefine distributes the given contigs, executes Refine on a fresh
// machine, and emits the refined set for inspection.
func runRefine(t *testing.T, contigs []dbg.Contig, ranks int, opts Options) refineOut {
	t.Helper()
	m := pgas.NewMachine(pgas.Config{Ranks: ranks})
	var res refineOut
	m.Run(func(r *pgas.Rank) {
		lo, hi := r.BlockRange(len(contigs))
		cs := dbg.DistributeContigs(r, contigs[lo:hi], dist.Distributed)
		got := Refine(r, cs, opts)
		all := dbg.EmitContigs(r, got.Set)
		if r.ID() == 0 {
			res = refineOut{Result: got, Contigs: all}
		}
	})
	return res
}

// mkContigs assigns dense IDs to a set of sequences with depths.
func mkContigs(seqs []string, depths []float64) []dbg.Contig {
	out := make([]dbg.Contig, len(seqs))
	for i := range seqs {
		d := 10.0
		if depths != nil {
			d = depths[i]
		}
		out[i] = dbg.Contig{ID: i, Seq: []byte(seqs[i]), Depth: d}
	}
	return out
}

func TestJunctionKey(t *testing.T) {
	c := dbg.Contig{Seq: []byte("ACGTTGCA")}
	k := 5
	left, ok := junctionKey(c, k, 'L')
	if !ok {
		t.Fatal("left junction missing")
	}
	wantL, _ := seq.MustKmer("ACGT").Canonical()
	if left != wantL {
		t.Errorf("left junction = %s, want %s", left.String(), wantL.String())
	}
	right, ok := junctionKey(c, k, 'R')
	if !ok {
		t.Fatal("right junction missing")
	}
	wantR, _ := seq.MustKmer("TGCA").Canonical()
	if right != wantR {
		t.Errorf("right junction = %s, want %s", right.String(), wantR.String())
	}
	if _, ok := junctionKey(dbg.Contig{Seq: []byte("AC")}, 5, 'L'); ok {
		t.Error("short contig should have no junction")
	}
}

func TestBubbleMergingKeepsDeeperArm(t *testing.T) {
	// Two "arms" with identical junctions (identical first and last k-1
	// bases) but one internal difference; the deeper arm must survive.
	k := 5
	arm1 := "ACGTT" + "A" + "GGCAT"
	arm2 := "ACGTT" + "C" + "GGCAT"
	contigs := mkContigs([]string{arm1, arm2, "TTTTTTTTTTTTTTTTTTTTTTTTT"}, []float64{30, 5, 20})
	opts := DefaultOptions(k)
	opts.RemoveHair = false
	opts.Prune = false
	opts.Compact = false
	res := runRefine(t, contigs, 3, opts)
	if res.BubblesMerged != 1 {
		t.Fatalf("BubblesMerged = %d, want 1", res.BubblesMerged)
	}
	var kept []string
	for _, c := range res.Contigs {
		kept = append(kept, string(c.Seq))
	}
	joined := strings.Join(kept, ",")
	if !strings.Contains(joined, arm1) {
		t.Errorf("deep arm removed: %v", kept)
	}
	if strings.Contains(joined, arm2) {
		t.Errorf("shallow arm kept: %v", kept)
	}
}

func TestHairRemoval(t *testing.T) {
	k := 5
	// A long "trunk", a short dead-end tip sharing the trunk's right
	// junction, and a deeper continuation from the same junction.
	trunk := "ACGGTTCAGGCATTCCAAGGTCAT"                  // ends with GTCAT
	tip := "GTCAT" + "AC"                                // short, dangling, shallow
	continuation := "GTCAT" + "GGAACCTTGGAACCGGTTACGGAT" // deep continuation
	contigs := mkContigs([]string{trunk, tip, continuation}, []float64{40, 3, 38})
	opts := DefaultOptions(k)
	opts.MergeBubbles = false
	opts.Prune = false
	opts.Compact = false
	res := runRefine(t, contigs, 2, opts)
	if res.HairRemoved != 1 {
		t.Fatalf("HairRemoved = %d, want 1", res.HairRemoved)
	}
	for _, c := range res.Contigs {
		if string(c.Seq) == tip {
			t.Error("tip survived hair removal")
		}
	}
	if len(res.Contigs) != 2 {
		t.Errorf("survivors = %d, want 2", len(res.Contigs))
	}
}

func TestHairRemovalSparesIsolatedContigs(t *testing.T) {
	// A short isolated contig (both ends dead) is a legitimate low-coverage
	// fragment, not hair, and must not be removed.
	k := 5
	contigs := mkContigs([]string{"ACGGTTCA", "TTGGCCAATTGGAACCTTAACCGGTT"}, []float64{2, 50})
	opts := DefaultOptions(k)
	opts.MergeBubbles = false
	opts.Prune = false
	opts.Compact = false
	res := runRefine(t, contigs, 2, opts)
	if res.HairRemoved != 0 {
		t.Errorf("HairRemoved = %d, want 0", res.HairRemoved)
	}
	if len(res.Contigs) != 2 {
		t.Errorf("survivors = %d, want 2", len(res.Contigs))
	}
}

func TestIterativePruning(t *testing.T) {
	k := 5
	// A deep trunk with a very shallow short branch hanging off a shared
	// junction on both of the branch's ends (so it is not hair but is weak).
	// Junctions are (k-1)=4-mers: TCAT on the left, CATG on the right.
	trunk1 := "ACGGTTCAGGCATTCCAAGGTCAT"
	branch := "TCAT" + "AC" + "CATG" // 10 bases <= 2k, connected on both sides
	trunk2 := "CATG" + "GAACCTTGGAACCGGTTACGGAT"
	altPath := "TCAT" + "GGTTACGGTTAACCGG" + "CATG" // the real continuation
	contigs := mkContigs([]string{trunk1, branch, trunk2, altPath}, []float64{50, 1, 48, 47})
	opts := DefaultOptions(k)
	opts.MergeBubbles = false
	opts.RemoveHair = false
	opts.Compact = false
	res := runRefine(t, contigs, 4, opts)
	if res.Pruned < 1 {
		t.Fatalf("Pruned = %d, want >= 1", res.Pruned)
	}
	if res.PruneRounds < 1 {
		t.Error("pruning should run at least one round")
	}
	for _, c := range res.Contigs {
		if string(c.Seq) == branch {
			t.Error("weak branch survived pruning")
		}
	}
}

func TestPruningConvergesWithoutRemovals(t *testing.T) {
	k := 5
	contigs := mkContigs([]string{"ACGGTTCAGGCATTCCAAGGTCATAAGGTTCCGGAACCGGTT"}, []float64{30})
	opts := DefaultOptions(k)
	opts.MergeBubbles = false
	opts.RemoveHair = false
	opts.Compact = false
	res := runRefine(t, contigs, 2, opts)
	if res.Pruned != 0 {
		t.Errorf("Pruned = %d, want 0", res.Pruned)
	}
	if len(res.Contigs) != 1 {
		t.Errorf("survivors = %d, want 1", len(res.Contigs))
	}
}

func TestCompactionMergesChain(t *testing.T) {
	k := 5
	// Three contigs that overlap by k-1 = 4 bases pairwise and are otherwise
	// unconnected: compaction must merge them into one contig.
	a := "ACGGTTCAGGCA"
	b := "GGCA" + "TTCCAAGGT"
	c := "AGGT" + "CATGGAACCTTGG"
	contigs := mkContigs([]string{a, b, c}, []float64{10, 12, 14})
	opts := DefaultOptions(k)
	opts.MergeBubbles = false
	opts.RemoveHair = false
	opts.Prune = false
	res := runRefine(t, contigs, 3, opts)
	if len(res.Contigs) != 1 {
		t.Fatalf("compaction produced %d contigs, want 1: %v", len(res.Contigs), contigSeqs(res.Contigs))
	}
	want := "ACGGTTCAGGCATTCCAAGGTCATGGAACCTTGG"
	got := string(res.Contigs[0].Seq)
	if got != want && got != seq.ReverseComplementString(want) {
		t.Errorf("compacted contig = %q, want %q", got, want)
	}
	if res.Compacted < 2 {
		t.Errorf("Compacted = %d, want >= 2 links", res.Compacted)
	}
	// Depth must be a weighted mean within the input range.
	if res.Contigs[0].Depth < 10 || res.Contigs[0].Depth > 14 {
		t.Errorf("compacted depth = %v", res.Contigs[0].Depth)
	}
}

func TestCompactionRespectsAmbiguousJunctions(t *testing.T) {
	k := 5
	// Junction GCAT (4-mer) has three attachments: no compaction through it.
	a := "ACGGTTCAGGCAT"
	b := "GCAT" + "TCCAAGGTCAT"
	c := "GCAT" + "AAGGCCTTAAGG"
	contigs := mkContigs([]string{a, b, c}, nil)
	opts := DefaultOptions(k)
	opts.MergeBubbles = false
	opts.RemoveHair = false
	opts.Prune = false
	res := runRefine(t, contigs, 2, opts)
	if len(res.Contigs) != 3 {
		t.Errorf("ambiguous junction was compacted: %d contigs", len(res.Contigs))
	}
	if res.Compacted != 0 {
		t.Errorf("Compacted = %d, want 0", res.Compacted)
	}
}

func contigSeqs(cs []dbg.Contig) []string {
	var out []string
	for _, c := range cs {
		out = append(out, string(c.Seq))
	}
	return out
}

func TestRefineRankIndependence(t *testing.T) {
	k := 5
	contigs := mkContigs([]string{
		"ACGGTTCAGGCA",
		"AGGCA" + "TTCCAAGGT",
		"AAGGT" + "CATGGAACCTTGG",
		"ACGTT" + "A" + "GGCTT",
		"ACGTT" + "C" + "GGCTT",
		"GGCTT" + "AC",
	}, []float64{10, 12, 14, 30, 5, 2})
	opts := DefaultOptions(k)
	base := runRefine(t, contigs, 1, opts)
	for _, ranks := range []int{2, 4, 7} {
		got := runRefine(t, contigs, ranks, opts)
		if len(got.Contigs) != len(base.Contigs) {
			t.Fatalf("ranks=%d: %d contigs vs %d", ranks, len(got.Contigs), len(base.Contigs))
		}
		for i := range got.Contigs {
			if string(got.Contigs[i].Seq) != string(base.Contigs[i].Seq) {
				t.Errorf("ranks=%d: contig %d differs", ranks, i)
			}
		}
	}
}

func TestDefaultOptions(t *testing.T) {
	opts := DefaultOptions(21)
	if opts.HairMaxLen != 42 || !opts.Prune || !opts.MergeBubbles || !opts.Compact {
		t.Errorf("unexpected defaults: %+v", opts)
	}
}
