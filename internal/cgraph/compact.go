package cgraph

import (
	"mhmgo/internal/dbg"
	"mhmgo/internal/pgas"
	"mhmgo/internal/seq"
)

// orientedContig identifies a contig (by global ID) together with the
// orientation it is being read in during a chain walk.
type orientedContig struct {
	id      int
	flipped bool
}

// orientedSeq returns the contig sequence in walk orientation.
func orientedSeq(c dbg.Contig, flipped bool) []byte {
	if !flipped {
		return c.Seq
	}
	return seq.ReverseComplement(c.Seq)
}

// compact merges chains of surviving contigs that are connected through
// junctions touched by exactly two contig ends (i.e. the connection is
// unambiguous after bubble merging, hair removal and pruning). Each rank
// walks only the chains that start at contigs it owns, following the chain
// through a survivors-only junction index and fetching remote chain members
// through the cached contig reader; no rank materializes the survivor set.
// Each chain is emitted exactly once, in canonical orientation, by the rank
// owning its starting contig, and the emitted chains are redistributed into
// a fresh contig set (content-routed, deduplicated, ExScan-renumbered).
func (g *graph) compact(r *pgas.Rank, opts Options) (*dbg.ContigSet, int) {
	j := opts.K - 1
	aliveShard := g.alive.shards[r.ID()]

	if j < 1 {
		// Degenerate k: no junctions to merge through; just keep survivors.
		var keep []dbg.Contig
		g.cs.ForEachLocal(r, func(i int, c dbg.Contig) {
			if aliveShard[i] {
				keep = append(keep, c)
			}
		})
		return dbg.DistributeContigs(r, keep, g.cs.Mode()), 0
	}

	// Index the junctions of the survivors only, so chain walks need no
	// liveness checks.
	sidx := buildJunctionIndex(r, g.cs, opts.K, opts.Aggregate, func(i int) bool { return aliveShard[i] })
	sreader := sidx.NewCachedReader(r, 1<<16, true)

	// simplePartner returns the unique other contig end attached to the
	// oriented contig's outgoing junction, or ok=false if the junction is
	// ambiguous or a dead end. c must be the contig identified by o.id.
	simplePartner := func(o orientedContig, c dbg.Contig) (orientedContig, dbg.Contig, bool) {
		end := byte('R')
		if o.flipped {
			end = 'L'
		}
		key, ok := junctionKey(c, opts.K, end)
		if !ok {
			return orientedContig{}, dbg.Contig{}, false
		}
		refs, _ := sreader.Get(key)
		if len(refs) != 2 {
			return orientedContig{}, dbg.Contig{}, false
		}
		var other endRef
		found := false
		for _, rf := range refs {
			if rf.ContigID != o.id {
				other = rf
				found = true
			}
		}
		if !found {
			// Both ends belong to the same contig (a self-loop); stop.
			return orientedContig{}, dbg.Contig{}, false
		}
		// Orient the partner so that its (k-1)-prefix matches our suffix.
		suffix := orientedSeq(c, o.flipped)
		suffix = suffix[len(suffix)-j:]
		oc := g.creader.Get(other.ContigID)
		for _, flipped := range []bool{false, true} {
			s := orientedSeq(oc, flipped)
			if len(s) >= j && string(s[:j]) == string(suffix) {
				return orientedContig{id: other.ContigID, flipped: flipped}, oc, true
			}
		}
		return orientedContig{}, dbg.Contig{}, false
	}

	// isChainStart reports whether no unambiguous predecessor exists for the
	// oriented contig (walking would not arrive here from a simple junction).
	isChainStart := func(o orientedContig, c dbg.Contig) bool {
		rev := orientedContig{id: o.id, flipped: !o.flipped}
		_, _, ok := simplePartner(rev, c)
		return !ok
	}

	var localOut []dbg.Contig
	mergedCount := 0
	g.cs.ForEachLocal(r, func(i int, c dbg.Contig) {
		if !aliveShard[i] {
			return
		}
		for _, flipped := range []bool{false, true} {
			start := orientedContig{id: c.ID, flipped: flipped}
			if !isChainStart(start, c) {
				continue
			}
			// Walk the chain, fetching remote members through the cache.
			cur, cc := start, c
			merged := append([]byte(nil), orientedSeq(cc, cur.flipped)...)
			depthWeight := cc.Depth * float64(len(cc.Seq))
			totalLen := len(cc.Seq)
			visited := map[int]bool{cur.id: true}
			links := 0
			for {
				next, nc, ok := simplePartner(cur, cc)
				if !ok || visited[next.id] {
					break
				}
				ns := orientedSeq(nc, next.flipped)
				merged = append(merged, ns[j:]...)
				depthWeight += nc.Depth * float64(len(nc.Seq))
				totalLen += len(nc.Seq)
				visited[next.id] = true
				links++
				cur, cc = next, nc
				r.Compute(1)
			}
			// Emit each chain once, in canonical orientation.
			rc := seq.ReverseComplement(merged)
			if string(merged) > string(rc) {
				continue
			}
			localOut = append(localOut, dbg.Contig{
				Seq:   merged,
				Depth: depthWeight / float64(totalLen),
			})
			mergedCount += links
		}
	})
	r.Barrier()

	// Redistribute the compacted chains: content-routed so the same
	// palindromic chain emitted from both ends (possibly on two different
	// ranks) collides on one owner and is deduplicated there, then
	// ExScan-renumbered. No gather, no world sort.
	out := dbg.DistributeContigs(r, localOut, g.cs.Mode())
	totalMerged := pgas.AllReduce(r, mergedCount, pgas.ReduceSum)
	return out, totalMerged
}
