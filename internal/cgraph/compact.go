package cgraph

import (
	"sort"

	"mhmgo/internal/dbg"
	"mhmgo/internal/pgas"
	"mhmgo/internal/seq"
)

// oriented identifies a contig together with the orientation it is being
// read in during a chain walk.
type orientedContig struct {
	idx     int
	flipped bool
}

// orientedSeq returns the contig sequence in walk orientation.
func orientedSeq(c dbg.Contig, flipped bool) []byte {
	if !flipped {
		return c.Seq
	}
	return seq.ReverseComplement(c.Seq)
}

// compact merges chains of surviving contigs that are connected through
// junctions touched by exactly two contig ends (i.e. the connection is
// unambiguous after bubble merging, hair removal and pruning). The walk over
// the bubble-contig graph mirrors the paper's traversal of the contracted
// contig graph; each chain is emitted exactly once, in canonical
// orientation, by the rank owning its starting contig.
func (g *graph) compact(r *pgas.Rank, survivors []dbg.Contig, opts Options) ([]dbg.Contig, int) {
	j := opts.K - 1
	if j < 1 || len(survivors) == 0 {
		return survivors, 0
	}

	// Index junctions over the survivors only. The contig graph is small, so
	// every rank builds the same index; the distributed junction index built
	// earlier already paid the communication cost of assembling it.
	type ref struct {
		idx int
		end byte
	}
	index := make(map[seq.Kmer][]ref)
	for i, c := range survivors {
		for _, end := range []byte{'L', 'R'} {
			if key, ok := junctionKey(c, opts.K, end); ok {
				index[key] = append(index[key], ref{idx: i, end: end})
			}
		}
	}
	r.Compute(float64(2 * len(survivors)))

	// simplePartner returns the unique other contig end attached to the
	// oriented contig's outgoing junction, or ok=false if the junction is
	// ambiguous or a dead end.
	simplePartner := func(o orientedContig) (orientedContig, bool) {
		c := survivors[o.idx]
		end := byte('R')
		if o.flipped {
			end = 'L'
		}
		key, ok := junctionKey(c, opts.K, end)
		if !ok {
			return orientedContig{}, false
		}
		refs := index[key]
		if len(refs) != 2 {
			return orientedContig{}, false
		}
		var other ref
		found := false
		for _, rf := range refs {
			if rf.idx != o.idx {
				other = rf
				found = true
			}
		}
		if !found {
			// Both ends belong to the same contig (a self-loop); stop.
			return orientedContig{}, false
		}
		// Orient the partner so that its (k-1)-prefix matches our suffix.
		suffix := orientedSeq(c, o.flipped)
		suffix = suffix[len(suffix)-j:]
		oc := survivors[other.idx]
		for _, flipped := range []bool{false, true} {
			s := orientedSeq(oc, flipped)
			if len(s) >= j && string(s[:j]) == string(suffix) {
				return orientedContig{idx: other.idx, flipped: flipped}, true
			}
		}
		return orientedContig{}, false
	}

	// isChainStart reports whether no unambiguous predecessor exists for the
	// oriented contig (walking would not arrive here from a simple junction).
	isChainStart := func(o orientedContig) bool {
		rev := orientedContig{idx: o.idx, flipped: !o.flipped}
		back, ok := simplePartner(rev)
		if !ok {
			return true
		}
		// The predecessor must also agree that we are its unique successor;
		// simplePartner is symmetric by construction, so a valid partner
		// means this is not a start.
		_ = back
		return false
	}

	lo, hi := r.BlockRange(len(survivors))
	var localOut []dbg.Contig
	mergedCount := 0
	for i := lo; i < hi; i++ {
		for _, flipped := range []bool{false, true} {
			start := orientedContig{idx: i, flipped: flipped}
			if !isChainStart(start) {
				continue
			}
			// Walk the chain.
			cur := start
			merged := append([]byte(nil), orientedSeq(survivors[cur.idx], cur.flipped)...)
			depthWeight := survivors[cur.idx].Depth * float64(len(survivors[cur.idx].Seq))
			totalLen := len(survivors[cur.idx].Seq)
			visited := map[int]bool{cur.idx: true}
			links := 0
			for {
				next, ok := simplePartner(cur)
				if !ok || visited[next.idx] {
					break
				}
				ns := orientedSeq(survivors[next.idx], next.flipped)
				merged = append(merged, ns[j:]...)
				depthWeight += survivors[next.idx].Depth * float64(len(survivors[next.idx].Seq))
				totalLen += len(survivors[next.idx].Seq)
				visited[next.idx] = true
				links++
				cur = next
				r.Compute(1)
			}
			// Emit each chain once, in canonical orientation.
			rc := seq.ReverseComplement(merged)
			if string(merged) > string(rc) {
				continue
			}
			localOut = append(localOut, dbg.Contig{
				Seq:   merged,
				Depth: depthWeight / float64(totalLen),
			})
			mergedCount += links
		}
	}
	r.Barrier()

	// Gather the compacted contigs from all ranks and deduplicate (the same
	// palindromic chain may be emitted from both ends).
	all := pgas.GatherVFunc(r, localOut, func(c dbg.Contig) int { return 16 + len(c.Seq) })
	var out []dbg.Contig
	for _, cs := range all {
		out = append(out, cs...)
	}
	sort.Slice(out, func(a, b int) bool {
		if len(out[a].Seq) != len(out[b].Seq) {
			return len(out[a].Seq) > len(out[b].Seq)
		}
		return string(out[a].Seq) < string(out[b].Seq)
	})
	dedup := out[:0]
	var prev string
	for i, c := range out {
		s := string(c.Seq)
		if i > 0 && s == prev {
			continue
		}
		prev = s
		dedup = append(dedup, c)
	}
	totalMerged := pgas.AllReduce(r, mergedCount, pgas.ReduceSum)
	return dedup, totalMerged
}
