// Package cgraph implements the contig-graph refinement stages of iterative
// contig generation (Sections II-D and II-E of the paper): bubble merging,
// hair (dead-end tip) removal, iterative depth-based graph pruning
// (Algorithm 2), and compaction of unambiguous contig chains using a
// speculative traversal guarded by atomic "used" flags.
//
// The bubble-contig graph is orders of magnitude smaller than the k-mer de
// Bruijn graph: its vertices are whole contigs and its edges are shared
// junction (k-1)-mers. The junction index is built in a distributed hash
// table with the aggregated update-only phase, and the per-contig
// neighbourhood queries use one-sided reads.
package cgraph

import (
	"sort"

	"mhmgo/internal/dbg"
	"mhmgo/internal/dht"
	"mhmgo/internal/pgas"
	"mhmgo/internal/seq"
)

// Options controls contig-graph refinement.
type Options struct {
	// K is the k-mer length the contigs were assembled with.
	K int
	// RemoveHair enables removal of dead-end tips shorter than HairMaxLen
	// (default 2k).
	RemoveHair bool
	HairMaxLen int
	// MergeBubbles enables merging of equal-length bubble arms (keeping the
	// deeper arm). BubbleLenTolerance is the allowed relative length
	// difference between the two arms of a bubble (0 = identical lengths).
	MergeBubbles       bool
	BubbleLenTolerance float64
	// Prune enables Algorithm 2 (iterative depth-based pruning) with the
	// geometric threshold growth factor Alpha and the relative-depth factor
	// Beta.
	Prune          bool
	PruneAlpha     float64
	PruneBeta      float64
	MaxPruneRounds int
	// Compact merges chains of contigs connected by unambiguous junctions.
	Compact bool
	// Aggregate controls DHT update aggregation (for ablations).
	Aggregate bool
}

// DefaultOptions returns the refinement configuration used by the pipeline.
func DefaultOptions(k int) Options {
	return Options{
		K:                  k,
		RemoveHair:         true,
		HairMaxLen:         2 * k,
		MergeBubbles:       true,
		BubbleLenTolerance: 0.02,
		Prune:              true,
		PruneAlpha:         0.2,
		PruneBeta:          0.5,
		MaxPruneRounds:     20,
		Compact:            true,
		Aggregate:          true,
	}
}

// Result reports what refinement did.
type Result struct {
	Contigs       []dbg.Contig
	HairRemoved   int
	BubblesMerged int
	Pruned        int
	PruneRounds   int
	Compacted     int
}

// endRef records that a contig endpoint touches a junction.
type endRef struct {
	ContigID int
	// End is 'L' if the junction is the contig's (k-1)-prefix, 'R' if it is
	// the (k-1)-suffix, in the contig's stored orientation.
	End byte
}

// junctionKey returns the canonical (k-1)-mer key of a contig endpoint, or
// ok=false for contigs shorter than k-1.
func junctionKey(c dbg.Contig, k int, end byte) (seq.Kmer, bool) {
	j := k - 1
	if len(c.Seq) < j {
		return seq.Kmer{}, false
	}
	var s []byte
	if end == 'L' {
		s = c.Seq[:j]
	} else {
		s = c.Seq[len(c.Seq)-j:]
	}
	km, err := seq.KmerFromBytes(s, j)
	if err != nil {
		return seq.Kmer{}, false
	}
	canon, _ := km.Canonical()
	return canon, true
}

func kmerHash(k seq.Kmer) uint64 { return k.Hash() }

// graph is the in-memory view each rank builds of the bubble-contig graph.
type graph struct {
	k        int
	contigs  []dbg.Contig
	alive    []bool
	junction *dht.Map[seq.Kmer, []endRef]
}

// buildJunctionIndex stores every contig endpoint in the distributed
// junction index (Global Update-Only phase with aggregation).
func buildJunctionIndex(r *pgas.Rank, contigs []dbg.Contig, k int, aggregate bool) *dht.Map[seq.Kmer, []endRef] {
	idx := dht.NewMapCollective[seq.Kmer, []endRef](r, kmerHash, 32)
	combine := func(existing, update []endRef, found bool) []endRef {
		return append(existing, update...)
	}
	u := idx.NewUpdater(r, combine, 256, aggregate)
	lo, hi := r.BlockRange(len(contigs))
	for i := lo; i < hi; i++ {
		c := contigs[i]
		for _, end := range []byte{'L', 'R'} {
			if key, ok := junctionKey(c, k, end); ok {
				u.Update(key, []endRef{{ContigID: c.ID, End: end}})
			}
		}
		r.Compute(2)
	}
	u.Flush()
	r.Barrier()
	// All refinement passes only read the junction index: freeze it so the
	// CachedReader traversals below are lock-free (use case 3).
	idx.Freeze()
	return idx
}

// neighborsOf returns the other contig IDs attached to the two junctions of
// contig c, split by which of c's ends they touch.
func (g *graph) neighborsOf(r *pgas.Rank, reader *dht.CachedReader[seq.Kmer, []endRef], c dbg.Contig) (left, right []endRef) {
	collect := func(end byte) []endRef {
		key, ok := junctionKey(c, g.k, end)
		if !ok {
			return nil
		}
		refs, _ := reader.Get(key)
		var out []endRef
		for _, ref := range refs {
			if ref.ContigID == c.ID {
				continue
			}
			if ref.ContigID < len(g.alive) && !g.alive[ref.ContigID] {
				continue
			}
			out = append(out, ref)
		}
		return out
	}
	return collect('L'), collect('R')
}

// meanNeighborDepth returns the mean depth over a set of neighbour refs.
func (g *graph) meanNeighborDepth(refs []endRef) float64 {
	if len(refs) == 0 {
		return 0
	}
	var sum float64
	for _, ref := range refs {
		sum += g.contigs[ref.ContigID].Depth
	}
	return sum / float64(len(refs))
}

// Refine runs the configured refinement passes over the (globally
// replicated) contig set. Collective: every rank must call it with the same
// contig slice; every rank returns the same Result.
func Refine(r *pgas.Rank, contigs []dbg.Contig, opts Options) Result {
	if opts.HairMaxLen <= 0 {
		opts.HairMaxLen = 2 * opts.K
	}
	if opts.PruneAlpha <= 0 {
		opts.PruneAlpha = 0.2
	}
	if opts.PruneBeta <= 0 {
		opts.PruneBeta = 0.5
	}
	if opts.MaxPruneRounds <= 0 {
		opts.MaxPruneRounds = 20
	}

	g := &graph{k: opts.K, contigs: contigs, alive: make([]bool, maxID(contigs)+1)}
	for _, c := range contigs {
		g.alive[c.ID] = true
	}
	g.junction = buildJunctionIndex(r, contigs, opts.K, opts.Aggregate)

	var res Result

	if opts.MergeBubbles {
		res.BubblesMerged = g.mergeBubbles(r, opts)
	}
	if opts.RemoveHair {
		res.HairRemoved = g.removeHair(r, opts)
	}
	if opts.Prune {
		res.Pruned, res.PruneRounds = g.prune(r, opts)
	}

	survivors := make([]dbg.Contig, 0, len(contigs))
	for _, c := range contigs {
		if g.alive[c.ID] {
			survivors = append(survivors, c)
		}
	}
	if opts.Compact {
		compacted, merged := g.compact(r, survivors, opts)
		res.Compacted = merged
		survivors = compacted
	}
	// Re-assign dense IDs sorted by length for determinism downstream.
	sort.Slice(survivors, func(i, j int) bool {
		if len(survivors[i].Seq) != len(survivors[j].Seq) {
			return len(survivors[i].Seq) > len(survivors[j].Seq)
		}
		return string(survivors[i].Seq) < string(survivors[j].Seq)
	})
	for i := range survivors {
		survivors[i].ID = i
	}
	res.Contigs = survivors
	r.Barrier()
	return res
}

func maxID(contigs []dbg.Contig) int {
	m := 0
	for _, c := range contigs {
		if c.ID > m {
			m = c.ID
		}
	}
	return m
}

// broadcastRemovals merges per-rank removal lists and applies them to the
// alive mask on every rank, returning the global number of removals.
func (g *graph) broadcastRemovals(r *pgas.Rank, local []int) int {
	all := pgas.GatherV(r, local, 8)
	n := 0
	for _, ids := range all {
		for _, id := range ids {
			if g.alive[id] {
				g.alive[id] = false
				n++
			}
		}
	}
	return n
}

// mergeBubbles finds pairs of alive contigs that share both junctions and
// have nearly equal lengths (SNP bubbles) and removes the shallower arm.
func (g *graph) mergeBubbles(r *pgas.Rank, opts Options) int {
	reader := g.junction.NewCachedReader(r, 1<<16, true)
	var removals []int
	lo, hi := r.BlockRange(len(g.contigs))
	for i := lo; i < hi; i++ {
		c := g.contigs[i]
		if !g.alive[c.ID] {
			continue
		}
		keyL, okL := junctionKey(c, g.k, 'L')
		keyR, okR := junctionKey(c, g.k, 'R')
		if !okL || !okR {
			continue
		}
		refsL, _ := reader.Get(keyL)
		refsR, _ := reader.Get(keyR)
		// Candidate bubble partners touch both of c's junctions.
		onRight := make(map[int]bool)
		for _, ref := range refsR {
			onRight[ref.ContigID] = true
		}
		for _, ref := range refsL {
			other := ref.ContigID
			if other == c.ID || !onRight[other] || other >= len(g.alive) || !g.alive[other] {
				continue
			}
			oc := g.contigs[findByID(g.contigs, other)]
			if !similarLength(len(c.Seq), len(oc.Seq), opts.BubbleLenTolerance) {
				continue
			}
			// Remove the shallower arm; break ties by ID so exactly one of
			// the pair is removed regardless of which rank sees it.
			loser := c.ID
			if c.Depth > oc.Depth || (c.Depth == oc.Depth && c.ID < other) {
				loser = other
			}
			removals = append(removals, loser)
		}
		r.Compute(float64(len(refsL) + len(refsR)))
	}
	r.Barrier()
	return g.broadcastRemovals(r, removals)
}

func similarLength(a, b int, tol float64) bool {
	if a == b {
		return true
	}
	big, small := a, b
	if small > big {
		big, small = small, big
	}
	return float64(big-small) <= tol*float64(big)
}

func findByID(contigs []dbg.Contig, id int) int {
	// Contig IDs are dense and usually equal to the index, but search
	// defensively in case callers pass a filtered slice.
	if id < len(contigs) && contigs[id].ID == id {
		return id
	}
	for i := range contigs {
		if contigs[i].ID == id {
			return i
		}
	}
	return 0
}

// removeHair removes dead-end tips: contigs shorter than HairMaxLen that are
// attached to the rest of the graph at exactly one end and dangle freely at
// the other, where the attachment point has an alternative continuation.
func (g *graph) removeHair(r *pgas.Rank, opts Options) int {
	reader := g.junction.NewCachedReader(r, 1<<16, true)
	var removals []int
	lo, hi := r.BlockRange(len(g.contigs))
	for i := lo; i < hi; i++ {
		c := g.contigs[i]
		if !g.alive[c.ID] || len(c.Seq) >= opts.HairMaxLen {
			continue
		}
		left, right := g.neighborsOf(r, reader, c)
		attachedEnds := 0
		var attachedRefs []endRef
		if len(left) > 0 {
			attachedEnds++
			attachedRefs = left
		}
		if len(right) > 0 {
			attachedEnds++
			attachedRefs = right
		}
		if attachedEnds != 1 {
			continue
		}
		// The tip must be the minority continuation: some sibling at the
		// attachment junction is deeper than the tip.
		deeperSibling := false
		for _, ref := range attachedRefs {
			if g.contigs[findByID(g.contigs, ref.ContigID)].Depth > c.Depth {
				deeperSibling = true
				break
			}
		}
		if deeperSibling {
			removals = append(removals, c.ID)
		}
	}
	r.Barrier()
	return g.broadcastRemovals(r, removals)
}

// prune implements Algorithm 2: iteratively remove short contigs whose depth
// is at most min(tau, beta * neighbour depth), growing tau geometrically
// until a round removes nothing on any rank.
func (g *graph) prune(r *pgas.Rank, opts Options) (removedTotal, rounds int) {
	reader := g.junction.NewCachedReader(r, 1<<16, true)
	maxDepth := 0.0
	for _, c := range g.contigs {
		if c.Depth > maxDepth {
			maxDepth = c.Depth
		}
	}
	maxDepth = r.AllReduceFloat64(maxDepth, pgas.ReduceMax)
	tau := 1.0
	for round := 0; round < opts.MaxPruneRounds && tau < maxDepth; round++ {
		var removals []int
		lo, hi := r.BlockRange(len(g.contigs))
		for i := lo; i < hi; i++ {
			c := g.contigs[i]
			if !g.alive[c.ID] || len(c.Seq) > 2*opts.K {
				continue
			}
			left, right := g.neighborsOf(r, reader, c)
			neighborDepth := g.meanNeighborDepth(append(append([]endRef(nil), left...), right...))
			if neighborDepth == 0 {
				continue
			}
			limit := tau
			if b := opts.PruneBeta * neighborDepth; b < limit {
				limit = b
			}
			if c.Depth <= limit {
				removals = append(removals, c.ID)
			}
		}
		r.Barrier()
		removed := g.broadcastRemovals(r, removals)
		removedTotal += removed
		rounds++
		prunedFlag := 0.0
		if removed > 0 {
			prunedFlag = 1
		}
		// Convergence detection: all-reduce the pruned flag with max.
		if r.AllReduceFloat64(prunedFlag, pgas.ReduceMax) == 0 {
			break
		}
		tau *= 1 + opts.PruneAlpha
	}
	return removedTotal, rounds
}
