// Package cgraph implements the contig-graph refinement stages of iterative
// contig generation (Sections II-D and II-E of the paper): bubble merging,
// hair (dead-end tip) removal, iterative depth-based graph pruning
// (Algorithm 2), and compaction of unambiguous contig chains.
//
// The bubble-contig graph is orders of magnitude smaller than the k-mer de
// Bruijn graph: its vertices are whole contigs and its edges are shared
// junction (k-1)-mers. Since PR 3 the contigs themselves stay distributed
// (dist.Set partitioned by content hash): every refinement pass scans only
// the calling rank's shard, neighbour contigs are fetched through a cached
// one-sided read, liveness is tracked in per-owner shards, and removal
// proposals are routed to the owners instead of being broadcast to the
// world. The junction index is built in a distributed hash table with the
// aggregated update-only phase, exactly as before.
package cgraph

import (
	"mhmgo/internal/dbg"
	"mhmgo/internal/dht"
	"mhmgo/internal/dist"
	"mhmgo/internal/pgas"
	"mhmgo/internal/seq"
)

// Options controls contig-graph refinement.
type Options struct {
	// K is the k-mer length the contigs were assembled with.
	K int
	// RemoveHair enables removal of dead-end tips shorter than HairMaxLen
	// (default 2k).
	RemoveHair bool
	HairMaxLen int
	// MergeBubbles enables merging of equal-length bubble arms (keeping the
	// deeper arm). BubbleLenTolerance is the allowed relative length
	// difference between the two arms of a bubble (0 = identical lengths).
	MergeBubbles       bool
	BubbleLenTolerance float64
	// Prune enables Algorithm 2 (iterative depth-based pruning) with the
	// geometric threshold growth factor Alpha and the relative-depth factor
	// Beta.
	Prune          bool
	PruneAlpha     float64
	PruneBeta      float64
	MaxPruneRounds int
	// Compact merges chains of contigs connected by unambiguous junctions.
	Compact bool
	// Aggregate controls DHT update aggregation (for ablations).
	Aggregate bool
}

// DefaultOptions returns the refinement configuration used by the pipeline.
func DefaultOptions(k int) Options {
	return Options{
		K:                  k,
		RemoveHair:         true,
		HairMaxLen:         2 * k,
		MergeBubbles:       true,
		BubbleLenTolerance: 0.02,
		Prune:              true,
		PruneAlpha:         0.2,
		PruneBeta:          0.5,
		MaxPruneRounds:     20,
		Compact:            true,
		Aggregate:          true,
	}
}

// Result reports what refinement did. Set is the refined distributed contig
// set (the input set is consumed: filtered in place, or released when
// compaction built a new one).
type Result struct {
	Set           *dbg.ContigSet
	HairRemoved   int
	BubblesMerged int
	Pruned        int
	PruneRounds   int
	Compacted     int
}

// removalWireSize is the wire bytes of one removal proposal (a contig ID)
// routed to the contig's owner.
const removalWireSize = 8

// endRef records that a contig endpoint touches a junction.
type endRef struct {
	ContigID int
	// End is 'L' if the junction is the contig's (k-1)-prefix, 'R' if it is
	// the (k-1)-suffix, in the contig's stored orientation.
	End byte
}

// junctionKey returns the canonical (k-1)-mer key of a contig endpoint, or
// ok=false for contigs shorter than k-1.
func junctionKey(c dbg.Contig, k int, end byte) (seq.Kmer, bool) {
	j := k - 1
	if len(c.Seq) < j {
		return seq.Kmer{}, false
	}
	var s []byte
	if end == 'L' {
		s = c.Seq[:j]
	} else {
		s = c.Seq[len(c.Seq)-j:]
	}
	km, err := seq.KmerFromBytes(s, j)
	if err != nil {
		return seq.Kmer{}, false
	}
	canon, _ := km.Canonical()
	return canon, true
}

func kmerHash(k seq.Kmer) uint64 { return k.Hash() }

// aliveMask tracks contig liveness in per-owner shards: each rank mutates
// only the flags of the contigs it owns, and reading a remote flag is
// charged as a one-byte one-sided get (free in Replicated mode, where the
// legacy pipeline kept the mask on every rank).
type aliveMask struct {
	shards [][]bool
}

func newAliveMask(r *pgas.Rank, cs *dbg.ContigSet) *aliveMask {
	var a *aliveMask
	if r.ID() == 0 {
		a = &aliveMask{shards: make([][]bool, r.NRanks())}
	}
	a = pgas.Broadcast(r, a)
	shard := make([]bool, cs.Len(r))
	for i := range shard {
		shard[i] = true
	}
	a.shards[r.ID()] = shard
	r.Barrier()
	return a
}

// get reads a contig's liveness. It costs one compute op, not a message: a
// real implementation stores the tombstone inside the junction refs and the
// contig record itself, so liveness always rides along with a fetch that is
// already charged (the junction lookup or the neighbour contig get) instead
// of paying a dedicated one-byte message.
func (a *aliveMask) get(r *pgas.Rank, cs *dbg.ContigSet, id int) bool {
	owner, idx := cs.Locate(id)
	r.Compute(1)
	return a.shards[owner][idx]
}

// graph is the per-rank view of the distributed bubble-contig graph.
type graph struct {
	k        int
	cs       *dbg.ContigSet
	alive    *aliveMask
	junction *dht.Map[seq.Kmer, []endRef]
	// creader caches remote contig fetches; contig records are immutable
	// during refinement, so the cache never goes stale.
	creader *dist.Reader[dbg.Contig]
}

// buildJunctionIndex stores the endpoints of the local contigs selected by
// keep (nil keeps all) in a distributed junction index (Global Update-Only
// phase with aggregation), frozen for lock-free reads.
func buildJunctionIndex(r *pgas.Rank, cs *dbg.ContigSet, k int, aggregate bool, keep func(i int) bool) *dht.Map[seq.Kmer, []endRef] {
	idx := dht.NewMapCollective[seq.Kmer, []endRef](r, kmerHash, 32)
	combine := func(existing, update []endRef, found bool) []endRef {
		return append(existing, update...)
	}
	u := idx.NewUpdater(r, combine, 256, aggregate)
	cs.ForEachLocal(r, func(i int, c dbg.Contig) {
		if keep != nil && !keep(i) {
			return
		}
		for _, end := range []byte{'L', 'R'} {
			if key, ok := junctionKey(c, k, end); ok {
				u.Update(key, []endRef{{ContigID: c.ID, End: end}})
			}
		}
		r.Compute(2)
	})
	u.Flush()
	r.Barrier()
	// Refinement and compaction only read the junction index: freeze it so
	// the CachedReader traversals are lock-free (use case 3).
	idx.Freeze()
	return idx
}

// neighborsOf returns the other contig refs attached to the two junctions of
// contig c, split by which of c's ends they touch. Dead neighbours are
// filtered through the alive mask.
func (g *graph) neighborsOf(r *pgas.Rank, reader *dht.CachedReader[seq.Kmer, []endRef], c dbg.Contig) (left, right []endRef) {
	collect := func(end byte) []endRef {
		key, ok := junctionKey(c, g.k, end)
		if !ok {
			return nil
		}
		refs, _ := reader.Get(key)
		var out []endRef
		for _, ref := range refs {
			if ref.ContigID == c.ID {
				continue
			}
			if !g.alive.get(r, g.cs, ref.ContigID) {
				continue
			}
			out = append(out, ref)
		}
		return out
	}
	return collect('L'), collect('R')
}

// meanNeighborDepth returns the mean depth over a set of neighbour refs,
// fetching the neighbour contigs through the cached reader.
func (g *graph) meanNeighborDepth(refs []endRef) float64 {
	if len(refs) == 0 {
		return 0
	}
	var sum float64
	for _, ref := range refs {
		sum += g.creader.Get(ref.ContigID).Depth
	}
	return sum / float64(len(refs))
}

// applyRemovals routes removal proposals to the owners of the proposed
// contigs, who mark them dead, and returns the global number of contigs that
// actually died (a proposal for an already-dead contig is a no-op, so the
// same bubble proposed by both arms' owners counts once).
func (g *graph) applyRemovals(r *pgas.Rank, proposals []int) int {
	mine := dist.Exchange(r, proposals,
		func(id int) int { owner, _ := g.cs.Locate(id); return owner },
		func(int) int { return removalWireSize }, g.cs.Mode())
	n := 0
	shard := g.alive.shards[r.ID()]
	for _, id := range mine {
		_, idx := g.cs.Locate(id)
		if shard[idx] {
			shard[idx] = false
			n++
		}
	}
	r.Compute(float64(len(mine)))
	total := pgas.AllReduce(r, n, pgas.ReduceSum)
	r.Barrier()
	return total
}

// Refine runs the configured refinement passes over the distributed contig
// set. Collective: every rank passes the shared set; every rank returns the
// same counts, and Result.Set is the refined (filtered or compacted,
// renumbered) set.
func Refine(r *pgas.Rank, cs *dbg.ContigSet, opts Options) Result {
	if opts.HairMaxLen <= 0 {
		opts.HairMaxLen = 2 * opts.K
	}
	if opts.PruneAlpha <= 0 {
		opts.PruneAlpha = 0.2
	}
	if opts.PruneBeta <= 0 {
		opts.PruneBeta = 0.5
	}
	if opts.MaxPruneRounds <= 0 {
		opts.MaxPruneRounds = 20
	}

	g := &graph{
		k:       opts.K,
		cs:      cs,
		alive:   newAliveMask(r, cs),
		creader: cs.NewReader(r, 1<<16),
	}
	g.junction = buildJunctionIndex(r, cs, opts.K, opts.Aggregate, nil)

	var res Result

	if opts.MergeBubbles {
		res.BubblesMerged = g.mergeBubbles(r, opts)
	}
	if opts.RemoveHair {
		res.HairRemoved = g.removeHair(r, opts)
	}
	if opts.Prune {
		res.Pruned, res.PruneRounds = g.prune(r, opts)
	}

	if opts.Compact {
		compacted, merged := g.compact(r, opts)
		res.Compacted = merged
		res.Set = compacted
		// The input set's contigs were folded into the compacted set.
		cs.Release(r)
	} else {
		aliveShard := g.alive.shards[r.ID()]
		i := -1
		cs.FilterLocal(r, func(dbg.Contig) bool { i++; return aliveShard[i] })
		dbg.RenumberContigs(r, cs)
		res.Set = cs
	}
	r.Barrier()
	return res
}

// proposeLoser decides which arm of a bubble dies: the shallower one, with
// the deterministic content ordering breaking depth ties. The rule depends
// only on the two contigs' content, so both owners propose the same loser at
// any rank count.
func proposeLoser(c, oc dbg.Contig) int {
	switch {
	case c.Depth > oc.Depth:
		return oc.ID
	case oc.Depth > c.Depth:
		return c.ID
	case dbg.ContigLess(c, oc):
		return oc.ID
	default:
		return c.ID
	}
}

// mergeBubbles finds pairs of alive contigs that share both junctions and
// have nearly equal lengths (SNP bubbles) and removes the shallower arm.
func (g *graph) mergeBubbles(r *pgas.Rank, opts Options) int {
	reader := g.junction.NewCachedReader(r, 1<<16, true)
	var removals []int
	aliveShard := g.alive.shards[r.ID()]
	g.cs.ForEachLocal(r, func(i int, c dbg.Contig) {
		if !aliveShard[i] {
			return
		}
		keyL, okL := junctionKey(c, g.k, 'L')
		keyR, okR := junctionKey(c, g.k, 'R')
		if !okL || !okR {
			return
		}
		refsL, _ := reader.Get(keyL)
		refsR, _ := reader.Get(keyR)
		// Candidate bubble partners touch both of c's junctions.
		onRight := make(map[int]bool)
		for _, ref := range refsR {
			onRight[ref.ContigID] = true
		}
		for _, ref := range refsL {
			other := ref.ContigID
			if other == c.ID || !onRight[other] || !g.alive.get(r, g.cs, other) {
				continue
			}
			oc := g.creader.Get(other)
			if !similarLength(len(c.Seq), len(oc.Seq), opts.BubbleLenTolerance) {
				continue
			}
			removals = append(removals, proposeLoser(c, oc))
		}
		r.Compute(float64(len(refsL) + len(refsR)))
	})
	r.Barrier()
	return g.applyRemovals(r, removals)
}

func similarLength(a, b int, tol float64) bool {
	if a == b {
		return true
	}
	big, small := a, b
	if small > big {
		big, small = small, big
	}
	return float64(big-small) <= tol*float64(big)
}

// removeHair removes dead-end tips: contigs shorter than HairMaxLen that are
// attached to the rest of the graph at exactly one end and dangle freely at
// the other, where the attachment point has an alternative continuation.
func (g *graph) removeHair(r *pgas.Rank, opts Options) int {
	reader := g.junction.NewCachedReader(r, 1<<16, true)
	var removals []int
	aliveShard := g.alive.shards[r.ID()]
	g.cs.ForEachLocal(r, func(i int, c dbg.Contig) {
		if !aliveShard[i] || len(c.Seq) >= opts.HairMaxLen {
			return
		}
		left, right := g.neighborsOf(r, reader, c)
		attachedEnds := 0
		var attachedRefs []endRef
		if len(left) > 0 {
			attachedEnds++
			attachedRefs = left
		}
		if len(right) > 0 {
			attachedEnds++
			attachedRefs = right
		}
		if attachedEnds != 1 {
			return
		}
		// The tip must be the minority continuation: some sibling at the
		// attachment junction is deeper than the tip. Every sibling is
		// inspected (no early exit): the refs arrive in flush order, which
		// varies run to run, and a short-circuit would make the charged
		// fetch count — and so simulated seconds — nondeterministic.
		deeperSibling := false
		for _, ref := range attachedRefs {
			if g.creader.Get(ref.ContigID).Depth > c.Depth {
				deeperSibling = true
			}
		}
		if deeperSibling {
			removals = append(removals, c.ID)
		}
	})
	r.Barrier()
	return g.applyRemovals(r, removals)
}

// prune implements Algorithm 2: iteratively remove short contigs whose depth
// is at most min(tau, beta * neighbour depth), growing tau geometrically
// until a round removes nothing on any rank.
func (g *graph) prune(r *pgas.Rank, opts Options) (removedTotal, rounds int) {
	reader := g.junction.NewCachedReader(r, 1<<16, true)
	maxDepth := 0.0
	g.cs.ForEachLocal(r, func(_ int, c dbg.Contig) {
		if c.Depth > maxDepth {
			maxDepth = c.Depth
		}
	})
	maxDepth = r.AllReduceFloat64(maxDepth, pgas.ReduceMax)
	tau := 1.0
	aliveShard := g.alive.shards[r.ID()]
	for round := 0; round < opts.MaxPruneRounds && tau < maxDepth; round++ {
		var removals []int
		g.cs.ForEachLocal(r, func(i int, c dbg.Contig) {
			if !aliveShard[i] || len(c.Seq) > 2*opts.K {
				return
			}
			left, right := g.neighborsOf(r, reader, c)
			neighborDepth := g.meanNeighborDepth(append(append([]endRef(nil), left...), right...))
			if neighborDepth == 0 {
				return
			}
			limit := tau
			if b := opts.PruneBeta * neighborDepth; b < limit {
				limit = b
			}
			if c.Depth <= limit {
				removals = append(removals, c.ID)
			}
		})
		r.Barrier()
		removed := g.applyRemovals(r, removals)
		removedTotal += removed
		rounds++
		if removed == 0 {
			// Convergence: applyRemovals already all-reduced the count, so
			// every rank agrees.
			break
		}
		tau *= 1 + opts.PruneAlpha
	}
	return removedTotal, rounds
}
