package cgraph

import (
	"testing"

	"mhmgo/internal/pgas"
)

// TestWireSizes pins the removal-proposal wire size (a contig ID) against
// the reflective lower bound.
func TestWireSizes(t *testing.T) {
	if min := pgas.WireSizeOf(int(1 << 60)); removalWireSize < min {
		t.Errorf("removalWireSize = %d < encoded size %d", removalWireSize, min)
	}
}
