package localasm

import (
	"testing"

	"mhmgo/internal/pgas"
)

// TestWireSizes pins the recruitment and extension record wire sizes against
// the reflective lower bound.
func TestWireSizes(t *testing.T) {
	rc := recruit{ContigID: 9, Seq: []byte("ACGTACGTACGT")}
	if got, min := rc.WireSize(), pgas.WireSizeOf(rc); got < min {
		t.Errorf("recruit.WireSize() = %d < encoded size %d", got, min)
	}
	e := extRecord{ID: 9, Seq: []byte("ACGTACGTACGTTTTT")}
	if got, min := e.WireSize(), pgas.WireSizeOf(e); got < min {
		t.Errorf("extRecord.WireSize() = %d < encoded size %d", got, min)
	}
}
