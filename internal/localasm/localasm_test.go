package localasm

import (
	"strings"
	"testing"

	"mhmgo/internal/aligner"
	"mhmgo/internal/dbg"
	"mhmgo/internal/dist"
	"mhmgo/internal/pgas"
	"mhmgo/internal/seq"
)

// genome returns a synthetic genome with no long repeats.
func genome() string {
	return "ACGTTGCAAGCTTACGGATCCGTAAACTGGTCCATTGGCAACGGTATTCCAGGAATTCACAGGCTTAAGCCTGAATCGTAGGCATCAGTTGACCAATTCGGA"
}

// pairedReads tiles the genome with interleaved forward/reverse read pairs.
func pairedReads(g string, readLen, frag, step int) []seq.Read {
	var reads []seq.Read
	for start := 0; start+frag <= len(g); start += step {
		fwd := g[start : start+readLen]
		rev := seq.ReverseComplementString(g[start+frag-readLen : start+frag])
		reads = append(reads,
			seq.Read{ID: "p/1", Seq: []byte(fwd)},
			seq.Read{ID: "p/2", Seq: []byte(rev)},
		)
	}
	return reads
}

// asmOut is the scalar Result plus the extended contigs emitted to rank 0
// (sorted by descending length, then sequence).
type asmOut struct {
	Result
	Contigs []dbg.Contig
}

func runLocalAssembly(t *testing.T, contigs []dbg.Contig, reads []seq.Read, ranks int, opts Options) asmOut {
	t.Helper()
	m := pgas.NewMachine(pgas.Config{Ranks: ranks})
	aopts := aligner.DefaultOptions(15)
	var res asmOut
	m.Run(func(r *pgas.Rank) {
		lo, hi := r.BlockRange(len(contigs))
		cs := dbg.DistributeContigs(r, contigs[lo:hi], dist.Distributed)
		idx := aligner.BuildIndex(r, cs, aopts)
		plo, phi := r.PairBlockRange(len(reads))
		aligns, _ := aligner.AlignReads(r, idx, reads[plo:phi], plo, aopts)
		got := Run(r, cs, reads[plo:phi], plo, aligns, opts)
		all := dbg.EmitContigs(r, cs)
		if r.ID() == 0 {
			res = asmOut{Result: got, Contigs: all}
		}
	})
	return res
}

func TestExtendsTruncatedContig(t *testing.T) {
	g := genome()
	// The contig covers only the middle of the genome; reads cover all of it,
	// so mer-walking should extend the contig toward both genome ends.
	contig := dbg.Contig{ID: 0, Seq: []byte(g[30:70]), Depth: 20}
	reads := pairedReads(g, 30, 60, 2)
	opts := DefaultOptions(21)
	opts.MinSupport = 2
	res := runLocalAssembly(t, []dbg.Contig{contig}, reads, 3, opts)
	if res.ExtendedBases == 0 || res.ContigsTouched != 1 {
		t.Fatalf("no extension happened: %+v", res)
	}
	ext := string(res.Contigs[0].Seq)
	if len(ext) <= 40 {
		t.Fatalf("contig not extended: %d bases", len(ext))
	}
	// The extended contig must remain a substring of the genome (or its
	// reverse complement): mer-walking must not invent sequence.
	if !strings.Contains(g, ext) && !strings.Contains(g, seq.ReverseComplementString(ext)) {
		t.Errorf("extended contig is not a substring of the genome:\n%s", ext)
	}
}

func TestNoReadsMeansNoExtension(t *testing.T) {
	contig := dbg.Contig{ID: 0, Seq: []byte(genome()[10:60]), Depth: 20}
	opts := DefaultOptions(21)
	res := runLocalAssembly(t, []dbg.Contig{contig}, nil, 2, opts)
	if res.ExtendedBases != 0 || res.ContigsTouched != 0 {
		t.Errorf("extension without reads: %+v", res)
	}
	if string(res.Contigs[0].Seq) != genome()[10:60] {
		t.Error("contig modified without reads")
	}
}

func TestWorkStealingMatchesStatic(t *testing.T) {
	g := genome()
	contigs := []dbg.Contig{
		{ID: 0, Seq: []byte(g[20:60]), Depth: 20},
		{ID: 1, Seq: []byte(seq.ReverseComplementString(g[40:90])), Depth: 20},
	}
	reads := pairedReads(g, 30, 60, 2)
	dynamic := DefaultOptions(21)
	static := DefaultOptions(21)
	static.WorkStealing = false
	resDyn := runLocalAssembly(t, contigs, reads, 4, dynamic)
	resStat := runLocalAssembly(t, contigs, reads, 4, static)
	if resDyn.ExtendedBases != resStat.ExtendedBases {
		t.Errorf("work stealing changed the result: %d vs %d extended bases",
			resDyn.ExtendedBases, resStat.ExtendedBases)
	}
	for i := range contigs {
		if string(resDyn.Contigs[i].Seq) != string(resStat.Contigs[i].Seq) {
			t.Errorf("contig %d differs between schedulers", i)
		}
	}
	if resDyn.Steals == 0 {
		t.Error("dynamic scheduler should record at least one steal")
	}
	if resStat.Steals != 0 {
		t.Error("static scheduler should record zero steals")
	}
}

func TestRankIndependence(t *testing.T) {
	g := genome()
	contigs := []dbg.Contig{{ID: 0, Seq: []byte(g[25:75]), Depth: 20}}
	reads := pairedReads(g, 30, 60, 3)
	opts := DefaultOptions(21)
	base := runLocalAssembly(t, contigs, reads, 1, opts)
	for _, ranks := range []int{2, 5} {
		got := runLocalAssembly(t, contigs, reads, ranks, opts)
		if string(got.Contigs[0].Seq) != string(base.Contigs[0].Seq) {
			t.Errorf("ranks=%d: extension differs from single-rank run", ranks)
		}
	}
}

func TestWalkStopsAtFork(t *testing.T) {
	// Reads diverge after a shared prefix: the walk must stop at (or shortly
	// after) the fork rather than picking a branch arbitrarily when both
	// branches are well supported at every mer size.
	prefix := "ACGTTGCAAGCTTACGGATCCGTAAACTGG"
	branchA := prefix + "AAACCCGGGTTTACGATC"
	branchB := prefix + "TTTGGGCCCAAATGCTAG"
	var reads [][]byte
	for i := 0; i < 5; i++ {
		reads = append(reads, []byte(branchA), []byte(branchB))
	}
	opts := DefaultOptions(15)
	opts.MinMer = 9
	opts.MaxMer = 17
	table := buildMerTable(reads, opts.MinMer, opts.MaxMer)
	added := walk([]byte(prefix[:25]), table, opts)
	// The walk may reach the fork point but must not run deep into either
	// branch (the branches diverge right after the prefix).
	if len(added) > len(prefix)-25+4 {
		t.Errorf("walk continued %d bases past its start despite the fork", len(added))
	}
}

func TestWalkRespectsMaxExtension(t *testing.T) {
	g := strings.Repeat("ACGTTGCAAGCTTACGGATC", 20)
	var reads [][]byte
	for start := 0; start+40 <= len(g); start += 3 {
		reads = append(reads, []byte(g[start:start+40]))
	}
	opts := DefaultOptions(15)
	opts.MaxExtension = 10
	table := buildMerTable(reads, opts.MinMer, opts.MaxMer)
	added := walk([]byte(g[:30]), table, opts)
	if len(added) > 10 {
		t.Errorf("walk exceeded MaxExtension: %d", len(added))
	}
}

func TestDefaultOptionsSane(t *testing.T) {
	opts := DefaultOptions(31)
	if opts.MinMer >= opts.MaxMer || opts.MaxExtension <= 0 || !opts.WorkStealing {
		t.Errorf("bad defaults: %+v", opts)
	}
}
