// Package localasm implements the local assembly stage of iterative contig
// generation (Section II-G of the paper): contigs are extended by
// "mer-walking" through the reads that align to them (or whose mates are
// projected onto them), with a dynamically adjusted mer size — upshifted at
// forks, downshifted at dead ends — and a work-sharing scheduler to balance
// the highly variable per-contig cost.
//
// Since PR 3 the contigs stay distributed: recruited reads are routed to the
// contig's owner rank with one aggregated exchange (instead of a replicated
// read pool), extension results are routed back to the owner only (instead
// of being gathered onto every rank), and the work-sharing scheduler claims
// interleaved blocks of the global ID space deterministically — each claim
// still charges a global-counter atomic, and working on a non-owned contig
// still pays the one-sided fetches of the contig and its recruited reads, so
// the cost model sees exactly what dynamic stealing would cost, while
// simulated seconds stay reproducible run to run.
package localasm

import (
	"sort"

	"mhmgo/internal/aligner"
	"mhmgo/internal/dbg"
	"mhmgo/internal/dist"
	"mhmgo/internal/pgas"
	"mhmgo/internal/seq"
)

// Options controls local assembly.
type Options struct {
	// K is the base mer size used for walking (usually the pipeline's k).
	K int
	// ShiftStep is how much the mer size is shifted up or down (L in the
	// paper) when a fork or dead end is hit.
	ShiftStep int
	// MinMer and MaxMer bound the dynamic mer size.
	MinMer, MaxMer int
	// MaxExtension bounds how many bases a contig end may be extended.
	MaxExtension int
	// MinSupport is the number of read observations required to accept an
	// extension base (lower than the global k-mer analysis threshold, as the
	// paper allows uncontested extensions of lower quality).
	MinSupport int
	// EndWindow recruits reads aligned within this many bases of a contig
	// end (plus projected mates).
	EndWindow int
	// Libraries, when non-empty, widens the recruitment window per library:
	// a read from library L is recruited within EndWindow +
	// (L.InsertSize - minInsert)/2 of a contig end, where minInsert is the
	// smallest insert size across the libraries. A long-insert read whose
	// mate lies far beyond the contig end is still useful for extension and
	// gap closing, so its recruitment radius scales with the library's
	// geometry; with zero or one library the window is exactly EndWindow
	// (the legacy behavior).
	Libraries []seq.Library
	// WorkStealing enables the dynamic work-stealing scheduler; when false
	// contigs are statically block-partitioned (ablation mode).
	WorkStealing bool
	// BlockSize is the number of contigs claimed per steal.
	BlockSize int
}

// DefaultOptions returns the local assembly defaults for mer size k.
func DefaultOptions(k int) Options {
	return Options{
		K:            k,
		ShiftStep:    4,
		MinMer:       k - 8,
		MaxMer:       k + 12,
		MaxExtension: 300,
		MinSupport:   2,
		EndWindow:    200,
		WorkStealing: true,
		BlockSize:    4,
	}
}

// Result reports the outcome of local assembly. The extended contigs are
// written back into the distributed contig set in place (each owner updates
// its own shard); only the scalar summaries are all-reduced.
type Result struct {
	ExtendedBases  int
	ContigsTouched int
	Steals         int
}

// recruit is one read sequence shipped to the owner of the contig it may
// extend.
type recruit struct {
	ContigID int
	Seq      []byte
}

// WireSize returns the wire bytes of one recruit record.
func (rc recruit) WireSize() int { return 8 + len(rc.Seq) }

// extRecord is one extension result routed back to the contig's owner.
type extRecord struct {
	ID  int
	Seq []byte
}

// WireSize returns the wire bytes of one extension record.
func (e extRecord) WireSize() int { return 8 + len(e.Seq) }

// Run extends the distributed contigs using the reads aligned to them.
// Collective: every rank passes its local reads and the alignments computed
// for them; extensions are applied in place to the set's shards, and the
// scalar Result is identical on every rank.
//
// Reads must be distributed in whole pairs (use pgas.PairBlockRange) so that
// a read's mate is available on the same rank for recruitment.
func Run(r *pgas.Rank, cs *dbg.ContigSet, reads []seq.Read, readOffset int, alignments []aligner.Alignment, opts Options) Result {
	if opts.K <= 0 {
		opts.K = 31
	}
	if opts.ShiftStep <= 0 {
		opts.ShiftStep = 4
	}
	if opts.MinMer <= 4 {
		opts.MinMer = 5
	}
	if opts.MaxMer <= opts.MinMer {
		opts.MaxMer = opts.MinMer + 8
	}
	if opts.MaxExtension <= 0 {
		opts.MaxExtension = 300
	}
	if opts.MinSupport <= 0 {
		opts.MinSupport = 2
	}
	if opts.BlockSize <= 0 {
		opts.BlockSize = 4
	}
	creader := cs.NewReader(r, 1<<16)

	// Step 1: recruitment. A read is useful for a contig if it aligns near
	// one of the contig's ends; its mate is also recruited since it may
	// extend past the end. Recruits are routed to the contig's owner rank
	// with one aggregated exchange (use case 4, "Local Reads & Writes") —
	// the owner-routed replacement of the old replicated read pool.
	// Per-library recruitment radius: EndWindow plus half the library's
	// insert-size excess over the shortest library (zero for single-library
	// inputs, so legacy behavior is bit-preserved).
	libWindow := libraryWindows(opts)
	var recs []recruit
	for _, a := range alignments {
		w := opts.EndWindow
		if int(a.LibID) < len(libWindow) {
			w = libWindow[a.LibID]
		}
		// The contig length rides along in the alignment record (set at
		// extension time), so end-proximity needs no remote fetch.
		nearStart := a.ContigPos <= w
		nearEnd := a.ContigPos+a.AlignLen >= a.ContigLen-w
		if !nearStart && !nearEnd {
			continue
		}
		li := a.ReadIdx - readOffset
		if li < 0 || li >= len(reads) {
			continue
		}
		recs = append(recs, recruit{ContigID: a.ContigID, Seq: reads[li].Seq})
		// Recruit the mate: reads are interleaved pairs in *global* order
		// (global indices 2i and 2i+1 are mates).
		mateLocal := (a.ReadIdx ^ 1) - readOffset
		if mateLocal >= 0 && mateLocal < len(reads) {
			recs = append(recs, recruit{ContigID: a.ContigID, Seq: reads[mateLocal].Seq})
		}
		r.Compute(1)
	}
	mine := dist.Exchange(r, recs,
		func(rc recruit) int { owner, _ := cs.Locate(rc.ContigID); return owner },
		recruit.WireSize, cs.Mode())

	// Bundle the recruits per owned contig and publish the per-rank bundles
	// so the work-sharing scheduler can fetch a non-owned contig's reads
	// (charged as a one-sided get).
	myBundle := make(map[int][][]byte, len(mine))
	for _, rc := range mine {
		myBundle[rc.ContigID] = append(myBundle[rc.ContigID], rc.Seq)
	}
	r.Compute(float64(len(mine)))
	var bundles []map[int][][]byte
	if r.ID() == 0 {
		bundles = make([]map[int][][]byte, r.NRanks())
	}
	bundles = pgas.Broadcast(r, bundles)
	bundles[r.ID()] = myBundle
	r.Barrier()

	// Step 2: walk the contigs. With work sharing enabled, ranks claim
	// interleaved blocks of the dense global ID space — every claim charges
	// the global counter's atomic cost, and processing a non-owned contig
	// pays the one-sided fetches of the contig and its bundle. The
	// interleaved schedule is deterministic, so simulated seconds are
	// reproducible run to run; the charged costs match what the racy
	// counter-based scheduler paid.
	n := cs.GlobalLen(r)
	counterHandle := -1
	if opts.WorkStealing {
		var h int
		if r.ID() == 0 {
			h = r.Machine().NewAtomic(0)
		}
		counterHandle = pgas.Broadcast(r, h)
	} else {
		r.Barrier()
	}

	var exts []extRecord
	extendedBases := 0
	touched := 0
	steals := 0

	processContig := func(id int) {
		owner, idx := cs.Locate(id)
		var c dbg.Contig
		var rds [][]byte
		if owner == r.ID() {
			c = cs.Local(r)[idx]
			rds = myBundle[id]
			r.Compute(1)
		} else {
			c = creader.Get(id)
			rds = bundles[owner][id]
			if len(rds) > 0 {
				if cs.Mode() == dist.Replicated {
					r.Compute(1)
				} else {
					total := 0
					for _, rd := range rds {
						total += len(rd)
					}
					r.ChargeGet(owner, total, 1)
				}
			}
		}
		if len(rds) == 0 {
			return
		}
		// Sort for determinism: the exchange accumulates read batches in
		// source-rank order, but the walk must not depend on any arrival
		// order at all. Sort a copy — the bundle is shared.
		rds = append([][]byte(nil), rds...)
		sort.Slice(rds, func(i, j int) bool { return string(rds[i]) < string(rds[j]) })
		newSeq, added := extendContig(r, c.Seq, rds, opts)
		if added > 0 {
			exts = append(exts, extRecord{ID: id, Seq: newSeq})
			extendedBases += added
			touched++
		}
	}

	if opts.WorkStealing {
		for start := r.ID() * opts.BlockSize; start < n; start += r.NRanks() * opts.BlockSize {
			// One remote atomic per claimed block, exactly as the dynamic
			// counter would charge.
			r.AtomicFetchAdd(counterHandle, int64(opts.BlockSize))
			steals++
			end := start + opts.BlockSize
			if end > n {
				end = n
			}
			for id := start; id < end; id++ {
				processContig(id)
			}
		}
	} else {
		cs.ForEachLocal(r, func(_ int, c dbg.Contig) { processContig(c.ID) })
	}
	r.Barrier()

	// Step 3: route the extensions to the contigs' owners only — no rank
	// materializes the full extension set — and apply them owner-side.
	got := dist.Exchange(r, exts,
		func(e extRecord) int { owner, _ := cs.Locate(e.ID); return owner },
		extRecord.WireSize, cs.Mode())
	sort.Slice(got, func(i, j int) bool { return got[i].ID < got[j].ID })
	for _, e := range got {
		_, idx := cs.Locate(e.ID)
		c := cs.Local(r)[idx]
		c.Seq = e.Seq
		cs.SetLocal(r, idx, c)
	}
	r.Barrier()

	var res Result
	res.ExtendedBases = pgas.AllReduce(r, extendedBases, pgas.ReduceSum)
	res.ContigsTouched = pgas.AllReduce(r, touched, pgas.ReduceSum)
	res.Steals = pgas.AllReduce(r, steals, pgas.ReduceSum)
	r.Barrier()
	return res
}

// libraryWindows returns the per-library recruitment window (indexed by
// LibID), or nil when no library list was provided (every read then uses
// opts.EndWindow).
func libraryWindows(opts Options) []int {
	if len(opts.Libraries) == 0 {
		return nil
	}
	minInsert := opts.Libraries[0].InsertSize
	for _, lib := range opts.Libraries[1:] {
		if lib.InsertSize < minInsert {
			minInsert = lib.InsertSize
		}
	}
	out := make([]int, len(opts.Libraries))
	for i, lib := range opts.Libraries {
		extra := (lib.InsertSize - minInsert) / 2
		if extra < 0 {
			extra = 0
		}
		out[i] = opts.EndWindow + extra
	}
	return out
}

// extendContig mer-walks both ends of a contig using the recruited reads and
// returns the (possibly longer) sequence and the number of bases added.
func extendContig(r *pgas.Rank, contigSeq []byte, reads [][]byte, opts Options) ([]byte, int) {
	table := buildMerTable(reads, opts.MinMer, opts.MaxMer)
	r.Compute(float64(len(reads) * 8))

	// Extend to the right.
	right := walk(contigSeq, table, opts)
	// Extend to the left: walk the reverse complement's right end.
	rc := seq.ReverseComplement(contigSeq)
	left := walk(rc, table, opts)

	if len(right) == 0 && len(left) == 0 {
		return contigSeq, 0
	}
	newSeq := make([]byte, 0, len(contigSeq)+len(left)+len(right))
	newSeq = append(newSeq, seq.ReverseComplement(left)...)
	newSeq = append(newSeq, contigSeq...)
	newSeq = append(newSeq, right...)
	return newSeq, len(left) + len(right)
}

// merTable counts, for every observed mer of every size in [minMer, maxMer],
// how many times each base follows it in the recruited reads (both strands).
type merTable map[string]*[4]int

func buildMerTable(reads [][]byte, minMer, maxMer int) merTable {
	t := make(merTable)
	add := func(s []byte) {
		for m := minMer; m <= maxMer; m += 1 {
			for i := 0; i+m < len(s); i++ {
				code, ok := seq.CharToBase(s[i+m])
				if !ok {
					continue
				}
				window := s[i : i+m]
				if !seq.ValidBases(window) {
					continue
				}
				key := string(window)
				counts, exists := t[key]
				if !exists {
					counts = &[4]int{}
					t[key] = counts
				}
				counts[code]++
			}
		}
	}
	for _, rd := range reads {
		add(rd)
		add(seq.ReverseComplement(rd))
	}
	return t
}

// walkState classifies one extension attempt.
type walkState int

const (
	stateExtend walkState = iota
	stateFork
	stateDeadEnd
)

// nextBase inspects the mer table for the unique supported continuation of
// the current mer.
func nextBase(t merTable, mer []byte, minSupport int) (byte, walkState) {
	counts, ok := t[string(mer)]
	if !ok {
		return 0, stateDeadEnd
	}
	best, second, bestCode := 0, 0, -1
	total := 0
	for code, c := range counts {
		total += c
		if c > best {
			second = best
			best = c
			bestCode = code
		} else if c > second {
			second = c
		}
	}
	if total == 0 || best < minSupport {
		return 0, stateDeadEnd
	}
	if second >= minSupport {
		return 0, stateFork
	}
	return byte(bestCode), stateExtend
}

// walk extends the right end of s by mer-walking with dynamic mer-size
// shifting: upshift on forks, downshift on dead ends; terminate on a fork
// after a downshift, a dead end after an upshift, or the extension cap.
func walk(s []byte, t merTable, opts Options) []byte {
	cur := append([]byte(nil), s...)
	var added []byte
	m := opts.K
	if m > opts.MaxMer {
		m = opts.MaxMer
	}
	if m < opts.MinMer {
		m = opts.MinMer
	}
	lastShift := 0 // +1 upshift, -1 downshift, 0 none
	for len(added) < opts.MaxExtension {
		if len(cur) < m {
			break
		}
		mer := cur[len(cur)-m:]
		code, state := nextBase(t, mer, opts.MinSupport)
		switch state {
		case stateExtend:
			base := seq.BaseToChar(code)
			cur = append(cur, base)
			added = append(added, base)
			lastShift = 0
		case stateFork:
			if lastShift == -1 || m+opts.ShiftStep > opts.MaxMer {
				return added
			}
			m += opts.ShiftStep
			lastShift = 1
		case stateDeadEnd:
			if lastShift == 1 || m-opts.ShiftStep < opts.MinMer {
				return added
			}
			m -= opts.ShiftStep
			lastShift = -1
		}
	}
	return added
}
