// Package localasm implements the local assembly stage of iterative contig
// generation (Section II-G of the paper): contigs are extended by
// "mer-walking" through the reads that align to them (or whose mates are
// projected onto them), with a dynamically adjusted mer size — upshifted at
// forks, downshifted at dead ends — and dynamic work stealing over a global
// atomic counter to balance the highly variable per-contig cost.
package localasm

import (
	"sort"

	"mhmgo/internal/aligner"
	"mhmgo/internal/dbg"
	"mhmgo/internal/dht"
	"mhmgo/internal/pgas"
	"mhmgo/internal/seq"
)

// Options controls local assembly.
type Options struct {
	// K is the base mer size used for walking (usually the pipeline's k).
	K int
	// ShiftStep is how much the mer size is shifted up or down (L in the
	// paper) when a fork or dead end is hit.
	ShiftStep int
	// MinMer and MaxMer bound the dynamic mer size.
	MinMer, MaxMer int
	// MaxExtension bounds how many bases a contig end may be extended.
	MaxExtension int
	// MinSupport is the number of read observations required to accept an
	// extension base (lower than the global k-mer analysis threshold, as the
	// paper allows uncontested extensions of lower quality).
	MinSupport int
	// EndWindow recruits reads aligned within this many bases of a contig
	// end (plus projected mates).
	EndWindow int
	// WorkStealing enables the dynamic work-stealing scheduler; when false
	// contigs are statically block-partitioned (ablation mode).
	WorkStealing bool
	// BlockSize is the number of contigs claimed per steal.
	BlockSize int
}

// DefaultOptions returns the local assembly defaults for mer size k.
func DefaultOptions(k int) Options {
	return Options{
		K:            k,
		ShiftStep:    4,
		MinMer:       k - 8,
		MaxMer:       k + 12,
		MaxExtension: 300,
		MinSupport:   2,
		EndWindow:    200,
		WorkStealing: true,
		BlockSize:    4,
	}
}

// Result reports the outcome of local assembly.
type Result struct {
	Contigs        []dbg.Contig
	ExtendedBases  int
	ContigsTouched int
	Steals         int
}

func intHash(k int) uint64 {
	x := uint64(k)*0x9e3779b97f4a7c15 + 0x7f4a7c15
	x ^= x >> 31
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 29
	return x
}

// Run extends the contigs using the reads aligned to them. Collective: every
// rank passes its local reads and the alignments computed for them; the full
// (replicated) contig set and the full result are returned on every rank.
//
// Reads must be distributed in whole pairs (use pgas.PairBlockRange) so that
// a read's mate is available on the same rank for recruitment.
func Run(r *pgas.Rank, contigs []dbg.Contig, reads []seq.Read, readOffset int, alignments []aligner.Alignment, opts Options) Result {
	if opts.K <= 0 {
		opts.K = 31
	}
	if opts.ShiftStep <= 0 {
		opts.ShiftStep = 4
	}
	if opts.MinMer <= 4 {
		opts.MinMer = 5
	}
	if opts.MaxMer <= opts.MinMer {
		opts.MaxMer = opts.MinMer + 8
	}
	if opts.MaxExtension <= 0 {
		opts.MaxExtension = 300
	}
	if opts.MinSupport <= 0 {
		opts.MinSupport = 2
	}
	if opts.BlockSize <= 0 {
		opts.BlockSize = 4
	}
	// Step 1: recruit reads for each contig into a global hash table keyed by
	// contig ID ("each thread reads a portion of the reads file and stores
	// the reads into a global hash table"). A read is useful for a contig if
	// it aligns near one of the contig's ends; its mate is also recruited
	// since it may extend past the end.
	byID := make(map[int]int, len(contigs))
	for i, c := range contigs {
		byID[c.ID] = i
	}
	readPool := dht.NewMapCollective[int, [][]byte](r, intHash, 240)
	poolCombine := func(existing, update [][]byte, found bool) [][]byte {
		return append(existing, update...)
	}
	pool := readPool.NewUpdater(r, poolCombine, 64, true)
	for _, a := range alignments {
		ci, ok := byID[a.ContigID]
		if !ok {
			continue
		}
		c := contigs[ci]
		nearStart := a.ContigPos <= opts.EndWindow
		nearEnd := a.ContigPos+a.AlignLen >= len(c.Seq)-opts.EndWindow
		if !nearStart && !nearEnd {
			continue
		}
		li := a.ReadIdx - readOffset
		if li < 0 || li >= len(reads) {
			continue
		}
		pool.Update(a.ContigID, [][]byte{reads[li].Seq})
		// Recruit the mate: reads are interleaved pairs in *global* order
		// (global indices 2i and 2i+1 are mates).
		mateLocal := (a.ReadIdx ^ 1) - readOffset
		if mateLocal >= 0 && mateLocal < len(reads) {
			pool.Update(a.ContigID, [][]byte{reads[mateLocal].Seq})
		}
		r.Compute(1)
	}
	pool.Flush()
	r.Barrier()
	// Recruitment is complete; the mer-walks below only read the pool.
	readPool.Freeze()

	// Step 2: walk the contigs. The recruited reads live in the global
	// address space, so any rank can process any contig; the dynamic
	// work-stealing counter hands out blocks of contigs so that the
	// embarrassingly parallel mer-walks stay load balanced.
	counterHandle := -1
	if opts.WorkStealing {
		var h int
		if r.ID() == 0 {
			h = r.Machine().NewAtomic(0)
		}
		counterHandle = pgas.Broadcast(r, h)
	} else {
		r.Barrier()
	}

	extended := make(map[int][]byte) // contig index -> new sequence
	extendedBases := 0
	touched := 0
	steals := 0

	processContig := func(idx int) {
		c := contigs[idx]
		rds, ok := readPool.Get(r, c.ID)
		if !ok || len(rds) == 0 {
			return
		}
		// Sort for determinism: the DHT accumulates read batches in rank
		// arrival order, which is timing-dependent. Sort a copy — the pool is
		// frozen and the stored slice is the shared immutable snapshot.
		rds = append([][]byte(nil), rds...)
		sort.Slice(rds, func(i, j int) bool { return string(rds[i]) < string(rds[j]) })
		newSeq, added := extendContig(r, c.Seq, rds, opts)
		if added > 0 {
			extended[idx] = newSeq
			extendedBases += added
			touched++
		}
	}

	if opts.WorkStealing {
		for {
			start := int(r.AtomicFetchAdd(counterHandle, int64(opts.BlockSize)))
			if start >= len(contigs) {
				break
			}
			steals++
			end := start + opts.BlockSize
			if end > len(contigs) {
				end = len(contigs)
			}
			for idx := start; idx < end; idx++ {
				processContig(idx)
			}
		}
	} else {
		lo, hi := r.BlockRange(len(contigs))
		for idx := lo; idx < hi; idx++ {
			processContig(idx)
		}
	}
	r.Barrier()

	// Step 3: merge the extensions from all ranks.
	type extRecord struct {
		Idx int
		Seq []byte
	}
	var localExts []extRecord
	for idx, s := range extended {
		localExts = append(localExts, extRecord{Idx: idx, Seq: s})
	}
	sort.Slice(localExts, func(i, j int) bool { return localExts[i].Idx < localExts[j].Idx })
	all := pgas.GatherVFunc(r, localExts, func(e extRecord) int { return 8 + len(e.Seq) })
	out := make([]dbg.Contig, len(contigs))
	copy(out, contigs)
	for _, exts := range all {
		for _, e := range exts {
			out[e.Idx].Seq = e.Seq
		}
	}
	res := Result{Contigs: out}
	res.ExtendedBases = pgas.AllReduce(r, extendedBases, pgas.ReduceSum)
	res.ContigsTouched = pgas.AllReduce(r, touched, pgas.ReduceSum)
	res.Steals = pgas.AllReduce(r, steals, pgas.ReduceSum)
	r.Barrier()
	return res
}

// extendContig mer-walks both ends of a contig using the recruited reads and
// returns the (possibly longer) sequence and the number of bases added.
func extendContig(r *pgas.Rank, contigSeq []byte, reads [][]byte, opts Options) ([]byte, int) {
	table := buildMerTable(reads, opts.MinMer, opts.MaxMer)
	r.Compute(float64(len(reads) * 8))

	// Extend to the right.
	right := walk(contigSeq, table, opts)
	// Extend to the left: walk the reverse complement's right end.
	rc := seq.ReverseComplement(contigSeq)
	left := walk(rc, table, opts)

	if len(right) == 0 && len(left) == 0 {
		return contigSeq, 0
	}
	newSeq := make([]byte, 0, len(contigSeq)+len(left)+len(right))
	newSeq = append(newSeq, seq.ReverseComplement(left)...)
	newSeq = append(newSeq, contigSeq...)
	newSeq = append(newSeq, right...)
	return newSeq, len(left) + len(right)
}

// merTable counts, for every observed mer of every size in [minMer, maxMer],
// how many times each base follows it in the recruited reads (both strands).
type merTable map[string]*[4]int

func buildMerTable(reads [][]byte, minMer, maxMer int) merTable {
	t := make(merTable)
	add := func(s []byte) {
		for m := minMer; m <= maxMer; m += 1 {
			for i := 0; i+m < len(s); i++ {
				code, ok := seq.CharToBase(s[i+m])
				if !ok {
					continue
				}
				window := s[i : i+m]
				if !seq.ValidBases(window) {
					continue
				}
				key := string(window)
				counts, exists := t[key]
				if !exists {
					counts = &[4]int{}
					t[key] = counts
				}
				counts[code]++
			}
		}
	}
	for _, rd := range reads {
		add(rd)
		add(seq.ReverseComplement(rd))
	}
	return t
}

// walkState classifies one extension attempt.
type walkState int

const (
	stateExtend walkState = iota
	stateFork
	stateDeadEnd
)

// nextBase inspects the mer table for the unique supported continuation of
// the current mer.
func nextBase(t merTable, mer []byte, minSupport int) (byte, walkState) {
	counts, ok := t[string(mer)]
	if !ok {
		return 0, stateDeadEnd
	}
	best, second, bestCode := 0, 0, -1
	total := 0
	for code, c := range counts {
		total += c
		if c > best {
			second = best
			best = c
			bestCode = code
		} else if c > second {
			second = c
		}
	}
	if total == 0 || best < minSupport {
		return 0, stateDeadEnd
	}
	if second >= minSupport {
		return 0, stateFork
	}
	return byte(bestCode), stateExtend
}

// walk extends the right end of s by mer-walking with dynamic mer-size
// shifting: upshift on forks, downshift on dead ends; terminate on a fork
// after a downshift, a dead end after an upshift, or the extension cap.
func walk(s []byte, t merTable, opts Options) []byte {
	cur := append([]byte(nil), s...)
	var added []byte
	m := opts.K
	if m > opts.MaxMer {
		m = opts.MaxMer
	}
	if m < opts.MinMer {
		m = opts.MinMer
	}
	lastShift := 0 // +1 upshift, -1 downshift, 0 none
	for len(added) < opts.MaxExtension {
		if len(cur) < m {
			break
		}
		mer := cur[len(cur)-m:]
		code, state := nextBase(t, mer, opts.MinSupport)
		switch state {
		case stateExtend:
			base := seq.BaseToChar(code)
			cur = append(cur, base)
			added = append(added, base)
			lastShift = 0
		case stateFork:
			if lastShift == -1 || m+opts.ShiftStep > opts.MaxMer {
				return added
			}
			m += opts.ShiftStep
			lastShift = 1
		case stateDeadEnd:
			if lastShift == 1 || m-opts.ShiftStep < opts.MinMer {
				return added
			}
			m -= opts.ShiftStep
			lastShift = -1
		}
	}
	return added
}
