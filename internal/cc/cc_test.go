package cc

import (
	"math/rand"
	"testing"

	"mhmgo/internal/pgas"
)

func TestComponentsSimple(t *testing.T) {
	// Two triangles and an isolated vertex.
	edges := []Edge{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}}
	labels := Components(7, edges)
	if labels[0] != 0 || labels[1] != 0 || labels[2] != 0 {
		t.Errorf("first component labels wrong: %v", labels)
	}
	if labels[3] != 3 || labels[4] != 3 || labels[5] != 3 {
		t.Errorf("second component labels wrong: %v", labels)
	}
	if labels[6] != 6 {
		t.Errorf("isolated vertex label wrong: %v", labels)
	}
	if NumComponents(labels) != 3 {
		t.Errorf("NumComponents = %d, want 3", NumComponents(labels))
	}
	groups := GroupByComponent(labels)
	if len(groups[0]) != 3 || len(groups[3]) != 3 || len(groups[6]) != 1 {
		t.Errorf("GroupByComponent wrong: %v", groups)
	}
}

func TestComponentsIgnoresOutOfRangeEdges(t *testing.T) {
	labels := Components(3, []Edge{{0, 1}, {1, 99}, {-1, 2}})
	if labels[0] != 0 || labels[1] != 0 || labels[2] != 2 {
		t.Errorf("labels = %v", labels)
	}
}

func TestComponentsEmpty(t *testing.T) {
	if got := Components(0, nil); len(got) != 0 {
		t.Errorf("empty graph labels = %v", got)
	}
	labels := Components(4, nil)
	for v, l := range labels {
		if l != v {
			t.Errorf("vertex %d labelled %d with no edges", v, l)
		}
	}
}

func TestComponentsChain(t *testing.T) {
	// A long path must collapse to one component labelled 0.
	n := 1000
	edges := make([]Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, Edge{i, i + 1})
	}
	labels := Components(n, edges)
	for v, l := range labels {
		if l != 0 {
			t.Fatalf("vertex %d labelled %d in a single chain", v, l)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	n := 2000
	var edges []Edge
	// Random sparse graph: ~1.2 edges per vertex so several components form.
	for i := 0; i < n*12/10; i++ {
		edges = append(edges, Edge{r.Intn(n), r.Intn(n)})
	}
	want := Components(n, edges)

	m := pgas.NewMachine(pgas.Config{Ranks: 8, RanksPerNode: 4})
	parent := NewParents(n)
	var results [8][]int
	m.Run(func(rk *pgas.Rank) {
		lo, hi := rk.BlockRange(len(edges))
		results[rk.ID()] = Parallel(rk, n, edges[lo:hi], parent)
	})
	for rank := 0; rank < 8; rank++ {
		got := results[rank]
		if len(got) != n {
			t.Fatalf("rank %d returned %d labels", rank, len(got))
		}
		for v := 0; v < n; v++ {
			if got[v] != want[v] {
				t.Fatalf("rank %d: vertex %d labelled %d, sequential says %d", rank, v, got[v], want[v])
			}
		}
	}
}

func TestParallelAllocatesParentsWhenNil(t *testing.T) {
	n := 50
	edges := []Edge{{0, 1}, {2, 3}, {3, 4}, {10, 20}}
	m := pgas.NewMachine(pgas.Config{Ranks: 4})
	var got []int
	m.Run(func(rk *pgas.Rank) {
		lo, hi := rk.BlockRange(len(edges))
		labels := Parallel(rk, n, edges[lo:hi], nil)
		if rk.ID() == 0 {
			got = labels
		}
	})
	want := Components(n, edges)
	for v := range want {
		if got[v] != want[v] {
			t.Errorf("vertex %d: %d vs %d", v, got[v], want[v])
		}
	}
}

func TestParallelSingleRank(t *testing.T) {
	n := 10
	edges := []Edge{{0, 9}, {1, 2}}
	m := pgas.NewMachine(pgas.Config{Ranks: 1})
	m.Run(func(rk *pgas.Rank) {
		labels := Parallel(rk, n, edges, nil)
		if labels[9] != 0 || labels[2] != 1 {
			t.Errorf("labels = %v", labels)
		}
	})
}

func BenchmarkComponents(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	n := 10000
	edges := make([]Edge, n)
	for i := range edges {
		edges[i] = Edge{r.Intn(n), r.Intn(n)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Components(n, edges)
	}
}
