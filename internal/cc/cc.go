// Package cc implements connected-component labelling for the contig graph,
// both a sequential union-find reference and a parallel lock-free variant in
// the spirit of the Shiloach–Vishkin algorithm the paper uses to partition
// the scaffolding traversal.
package cc

import (
	"sync/atomic"

	"mhmgo/internal/pgas"
)

// Edge is an undirected edge between two vertices identified by dense
// integer ids.
type Edge struct {
	U, V int
}

// Components labels the vertices 0..n-1 of an undirected graph with
// component representatives using a sequential union-find with path
// compression and union by size. The returned slice maps each vertex to the
// smallest vertex id in its component.
func Components(n int, edges []Edge) []int {
	parent := make([]int, n)
	size := make([]int, n)
	for i := range parent {
		parent[i] = i
		size[i] = 1
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			continue
		}
		ru, rv := find(e.U), find(e.V)
		if ru == rv {
			continue
		}
		if size[ru] < size[rv] {
			ru, rv = rv, ru
		}
		parent[rv] = ru
		size[ru] += size[rv]
	}
	// Canonicalize to the smallest member id per component.
	minRep := make(map[int]int)
	for v := 0; v < n; v++ {
		r := find(v)
		if cur, ok := minRep[r]; !ok || v < cur {
			minRep[r] = v
		}
	}
	labels := make([]int, n)
	for v := 0; v < n; v++ {
		labels[v] = minRep[find(v)]
	}
	return labels
}

// GroupByComponent converts a label slice into a map from representative to
// the member vertices of that component.
func GroupByComponent(labels []int) map[int][]int {
	groups := make(map[int][]int)
	for v, rep := range labels {
		groups[rep] = append(groups[rep], v)
	}
	return groups
}

// Parallel computes connected components with a lock-free, CAS-based
// union-find (a Shiloach–Vishkin-style hooking + pointer-jumping scheme).
// It is a collective operation: every rank must call it with its own slice
// of locally-held edges; every rank returns the same label slice mapping
// each vertex to the smallest vertex id in its component.
//
// parent must be a shared []int64 of length n created before the SPMD
// region (e.g. by the coordinator) and initialized via InitParents, or nil
// in which case rank 0 allocates it and broadcasts it.
func Parallel(r *pgas.Rank, n int, localEdges []Edge, parent []int64) []int {
	if parent == nil {
		if r.ID() == 0 {
			parent = NewParents(n)
		}
		parent = pgas.Broadcast(r, parent)
	}
	r.Barrier()

	find := func(x int) int {
		for {
			p := atomic.LoadInt64(&parent[x])
			if int(p) == x {
				return x
			}
			gp := atomic.LoadInt64(&parent[p])
			// Path halving.
			atomic.CompareAndSwapInt64(&parent[x], p, gp)
			x = int(gp)
		}
	}

	// Hooking phase: each rank processes its local edges, repeatedly trying
	// to hook the larger root under the smaller one with CAS. The compute
	// charge is a fixed three ops per edge (two finds plus one hook): the
	// number of CAS retries depends on real goroutine interleaving, and
	// charging it would make simulated seconds nondeterministic even though
	// the resulting labels are not.
	for _, e := range localEdges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			continue
		}
		r.Compute(3)
		for {
			ru, rv := find(e.U), find(e.V)
			if ru == rv {
				break
			}
			if ru > rv {
				ru, rv = rv, ru
			}
			// Hook the larger root under the smaller.
			if atomic.CompareAndSwapInt64(&parent[rv], int64(rv), int64(ru)) {
				break
			}
		}
	}
	r.Compute(float64(len(localEdges)))
	r.Barrier()

	// Pointer-jumping phase: everyone compresses a block of vertices.
	lo, hi := r.BlockRange(n)
	for v := lo; v < hi; v++ {
		root := find(v)
		atomic.StoreInt64(&parent[v], int64(root))
	}
	r.Compute(float64(hi - lo))
	r.Barrier()

	labels := make([]int, n)
	for v := 0; v < n; v++ {
		labels[v] = int(atomic.LoadInt64(&parent[v]))
	}
	return labels
}

// NewParents allocates and initializes a shared parent array for Parallel.
func NewParents(n int) []int64 {
	p := make([]int64, n)
	for i := range p {
		p[i] = int64(i)
	}
	return p
}

// NumComponents returns the number of distinct components in a label slice.
func NumComponents(labels []int) int {
	seen := make(map[int]struct{})
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}
