package dbg

import (
	"math/rand"
	"strings"
	"testing"

	"mhmgo/internal/kmeranalysis"
	"mhmgo/internal/pgas"
	"mhmgo/internal/seq"
)

// walkFixtureGraph builds a single-rank graph over reads covering a random
// genome, returning the machine, graph and the sorted vertex list.
func walkFixtureGraph(t testing.TB, genomeLen, k int) (*pgas.Machine, *Graph, []seq.Kmer) {
	r := rand.New(rand.NewSource(51))
	var sb strings.Builder
	for i := 0; i < genomeLen; i++ {
		sb.WriteByte(seq.BaseToChar(byte(r.Intn(4))))
	}
	reads := coverWithReads(sb.String(), 60, 5, 3)
	m := pgas.NewMachine(pgas.Config{Ranks: 1})
	opts := kmeranalysis.DefaultOptions(k)
	opts.UseBloom = false
	var g *Graph
	var vertices []seq.Kmer
	m.Run(func(rk *pgas.Rank) {
		res := kmeranalysis.Run(rk, reads, opts, nil)
		g = Build(rk, res.Counts, k, DefaultThresholds())
		g.Entries.ForEachLocal(rk, func(km seq.Kmer, _ Entry) {
			vertices = append(vertices, km)
		})
	})
	if len(vertices) == 0 {
		t.Fatal("fixture graph has no vertices")
	}
	return m, g, vertices
}

// TestWalkPackedMatchesASCII walks every vertex of a fixture graph in both
// orientations with the packed and the ASCII kernels and requires identical
// sequences and depth counts.
func TestWalkPackedMatchesASCII(t *testing.T) {
	m, g, vertices := walkFixtureGraph(t, 600, 21)
	ws := NewWalkScratch()
	m.Run(func(rk *pgas.Rank) {
		maxSteps := g.Entries.Len() + 1
		for _, km := range vertices {
			for _, forward := range []bool{true, false} {
				n := g.WalkKernel(rk, km, forward, maxSteps, ws)
				wantSeq, wantCounts := g.WalkKernelASCII(rk, km, forward, maxSteps)
				if got := string(ws.Unpack(nil)); got != string(wantSeq) || n != len(wantSeq) {
					t.Fatalf("walk from %s forward=%v:\n got %s (n=%d)\nwant %s",
						km.String(), forward, got, n, wantSeq)
				}
				gotCounts := ws.Counts()
				if len(gotCounts) != len(wantCounts) {
					t.Fatalf("walk from %s: %d counts, want %d", km.String(), len(gotCounts), len(wantCounts))
				}
				for i := range gotCounts {
					if gotCounts[i] != wantCounts[i] {
						t.Fatalf("walk from %s: count[%d] = %d, want %d",
							km.String(), i, gotCounts[i], wantCounts[i])
					}
				}
				// The packed emit-once predicate must agree with the ASCII one.
				if got, want := ws.seq.GreaterThanRC(), greaterThanRC(wantSeq); got != want {
					t.Fatalf("walk from %s: GreaterThanRC = %v, ASCII greaterThanRC = %v",
						km.String(), got, want)
				}
			}
		}
	})
}

// BenchmarkKernelDBGWalk measures one walk per op from a fixed set of start
// vertices. The packed variant walks into a warm scratch and must be
// allocation-free; the ASCII baseline allocates and grows a byte slice per
// walk, whether or not the path would be emitted.
func BenchmarkKernelDBGWalk(b *testing.B) {
	m, g, vertices := walkFixtureGraph(b, 600, 21)
	maxSteps := 0
	b.Run("packed", func(b *testing.B) {
		ws := NewWalkScratch()
		m.Run(func(rk *pgas.Rank) {
			if maxSteps == 0 {
				maxSteps = g.Entries.Len() + 1
			}
			g.WalkKernel(rk, vertices[0], true, maxSteps, ws) // warm the buffers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.WalkKernel(rk, vertices[i%len(vertices)], i%2 == 0, maxSteps, ws)
			}
			b.StopTimer()
			allocs := testing.AllocsPerRun(100, func() {
				g.WalkKernel(rk, vertices[0], true, maxSteps, ws)
			})
			if allocs != 0 {
				b.Fatalf("packed walk with warm scratch: %v allocs/op, want 0", allocs)
			}
		})
	})
	b.Run("ascii", func(b *testing.B) {
		m.Run(func(rk *pgas.Rank) {
			if maxSteps == 0 {
				maxSteps = g.Entries.Len() + 1
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.WalkKernelASCII(rk, vertices[i%len(vertices)], i%2 == 0, maxSteps)
			}
		})
	})
}
