package dbg

import (
	"testing"

	"mhmgo/internal/pgas"
)

// TestWireSizes pins the contig wire size against the reflective lower
// bound used by the routing and gather cost accounting.
func TestWireSizes(t *testing.T) {
	c := Contig{ID: 12, Seq: []byte("ACGTTGCAAGCTTACG"), Depth: 18.5}
	if got, min := c.WireSize(), pgas.WireSizeOf(c); got < min {
		t.Errorf("Contig.WireSize() = %d < encoded size %d", got, min)
	}
}
