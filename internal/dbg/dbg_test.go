package dbg

import (
	"strings"
	"testing"

	"mhmgo/internal/dist"
	"mhmgo/internal/kmeranalysis"
	"mhmgo/internal/pgas"
	"mhmgo/internal/seq"
	"mhmgo/internal/sim"
)

// buildFromReads runs k-mer analysis and graph construction over the reads
// on a machine with the given rank count, returning the contigs.
func buildFromReads(t *testing.T, reads []seq.Read, k, ranks int, topts ThresholdOptions) []Contig {
	t.Helper()
	m := pgas.NewMachine(pgas.Config{Ranks: ranks})
	opts := kmeranalysis.DefaultOptions(k)
	opts.UseBloom = false
	opts.MinCount = 2
	var contigs []Contig
	m.Run(func(r *pgas.Rank) {
		lo, hi := r.BlockRange(len(reads))
		res := kmeranalysis.Run(r, reads[lo:hi], opts, nil)
		g := Build(r, res.Counts, k, topts)
		local := Traverse(r, g, TraverseOptions{})
		cs := DistributeContigs(r, local, dist.Distributed)
		if all := EmitContigs(r, cs); r.ID() == 0 {
			contigs = all
		}
	})
	return contigs
}

func coverWithReads(genome string, readLen, step, copies int) []seq.Read {
	var reads []seq.Read
	for c := 0; c < copies; c++ {
		for start := 0; start+readLen <= len(genome); start += step {
			reads = append(reads, seq.Read{ID: "r", Seq: []byte(genome[start : start+readLen])})
		}
		// Also cover the tail.
		if len(genome) > readLen {
			reads = append(reads, seq.Read{ID: "t", Seq: []byte(genome[len(genome)-readLen:])})
		}
	}
	return reads
}

func TestThresholdOptions(t *testing.T) {
	topts := ThresholdOptions{TBase: 2, ErrorRate: 0.01}
	if got := topts.THQFor(10); got != 2 {
		t.Errorf("THQFor(10) = %d, want tbase 2", got)
	}
	if got := topts.THQFor(10000); got != 100 {
		t.Errorf("THQFor(10000) = %d, want 100", got)
	}
	global := ThresholdOptions{GlobalTHQ: 5, TBase: 2, ErrorRate: 0.01}
	if got := global.THQFor(10000); got != 5 {
		t.Errorf("global THQFor = %d, want 5", got)
	}
	def := DefaultThresholds()
	if def.TBase == 0 || def.ErrorRate <= 0 {
		t.Error("defaults should be non-zero")
	}
}

func TestSingleGenomeAssemblesToOneContig(t *testing.T) {
	// An error-free, well-covered random-ish sequence with no repeats of
	// length >= k should assemble into a single contig equal to the genome.
	genome := "ACGTTGCAAGCTTACGGATCCGTAAACTGGTCCATTGGCAACGGTATTCCAGGAATTCACAGGCTTAAGCCTGAATCGTA"
	reads := coverWithReads(genome, 30, 3, 3)
	contigs := buildFromReads(t, reads, 15, 4, DefaultThresholds())
	if len(contigs) != 1 {
		t.Fatalf("got %d contigs, want 1: %+v", len(contigs), summarize(contigs))
	}
	got := string(contigs[0].Seq)
	want := genome
	if got != want && got != seq.ReverseComplementString(want) {
		t.Errorf("assembled contig does not match genome:\n got %s\nwant %s", got, want)
	}
	if contigs[0].Depth < 2 {
		t.Errorf("contig depth %v too low", contigs[0].Depth)
	}
}

func summarize(contigs []Contig) []string {
	var out []string
	for _, c := range contigs {
		out = append(out, string(c.Seq))
	}
	return out
}

func TestAssemblyIndependentOfRankCount(t *testing.T) {
	genome := "ACGTTGCAAGCTTACGGATCCGTAAACTGGTCCATTGGCAACGGTATTCCAGGAATTCACAGGCTTAAGCCTGAATCGTAGGCATCAGTT"
	reads := coverWithReads(genome, 32, 4, 3)
	base := buildFromReads(t, reads, 17, 1, DefaultThresholds())
	for _, ranks := range []int{2, 5, 8} {
		got := buildFromReads(t, reads, 17, ranks, DefaultThresholds())
		if len(got) != len(base) {
			t.Fatalf("ranks=%d: %d contigs vs %d with 1 rank", ranks, len(got), len(base))
		}
		for i := range got {
			if string(got[i].Seq) != string(base[i].Seq) {
				t.Errorf("ranks=%d: contig %d differs", ranks, i)
			}
		}
	}
}

func TestForkSplitsContigs(t *testing.T) {
	// Two genomes share a long identical core but diverge on both sides:
	// the shared core plus the four unique arms should appear as separate
	// contigs because the junctions are forks.
	core := "GGATCCGTAAACTGGTCCATTGGCAACGGTATTCCA"
	g1 := "ACGTTGCAAGCTTAC" + core + "TTACGCATGACCGGT"
	g2 := "TTGGCCAATTGGCAT" + core + "AACCGTTGCAATCCG"
	reads := append(coverWithReads(g1, 25, 2, 3), coverWithReads(g2, 25, 2, 3)...)
	contigs := buildFromReads(t, reads, 13, 4, DefaultThresholds())
	if len(contigs) < 3 {
		t.Fatalf("expected the shared core to split the assembly, got %d contigs", len(contigs))
	}
	// The core must be present (possibly extended by k-1 bases on each side).
	foundCore := false
	for _, c := range contigs {
		s := string(c.Seq)
		rc := seq.ReverseComplementString(s)
		if strings.Contains(s, core[2:len(core)-2]) || strings.Contains(rc, core[2:len(core)-2]) {
			foundCore = true
		}
	}
	if !foundCore {
		t.Error("shared core not represented in any contig")
	}
}

func TestDepthDependentThresholdHelpsHighCoverage(t *testing.T) {
	// A high-coverage genome with sequencing errors: with a strict global
	// threshold the erroneous extensions fragment the assembly; the
	// depth-dependent threshold should tolerate them and produce longer
	// contigs.
	comm := sim.GenerateCommunity(sim.CommunityConfig{
		NumGenomes: 1, MeanGenomeLen: 4000, RRNALen: 200, Seed: 21, StrainFraction: 0,
	})
	reads := sim.SimulateReads(comm, sim.ReadConfig{
		ReadLen: 80, InsertSize: 200, ErrorRate: 0.02, Coverage: 150, Seed: 22,
	})

	k := 21
	metaTopts := ThresholdOptions{TBase: 2, ErrorRate: 0.025, MinCount: 1}
	globalTopts := ThresholdOptions{GlobalTHQ: 1, MinCount: 1}

	meta := ComputeStats(buildFromReads(t, reads, k, 4, metaTopts))
	global := ComputeStats(buildFromReads(t, reads, k, 4, globalTopts))

	if meta.N50 <= global.N50 {
		t.Errorf("depth-dependent threshold should give longer contigs on high-coverage data: N50 %d vs %d",
			meta.N50, global.N50)
	}
}

func TestTraverseMinContigLen(t *testing.T) {
	genome := "ACGTTGCAAGCTTACGGATCCGTAAACTGGTCCATTGGCA"
	reads := coverWithReads(genome, 20, 2, 3)
	m := pgas.NewMachine(pgas.Config{Ranks: 2})
	opts := kmeranalysis.DefaultOptions(11)
	opts.UseBloom = false
	var all, filtered []Contig
	m.Run(func(r *pgas.Rank) {
		lo, hi := r.BlockRange(len(reads))
		res := kmeranalysis.Run(r, reads[lo:hi], opts, nil)
		g := Build(r, res.Counts, 11, DefaultThresholds())
		a := EmitContigs(r, DistributeContigs(r, Traverse(r, g, TraverseOptions{}), dist.Distributed))
		f := EmitContigs(r, DistributeContigs(r, Traverse(r, g, TraverseOptions{MinContigLen: 10000}), dist.Distributed))
		if r.ID() == 0 {
			all, filtered = a, f
		}
	})
	if len(all) == 0 {
		t.Fatal("no contigs at all")
	}
	if len(filtered) != 0 {
		t.Errorf("MinContigLen filter kept %d contigs", len(filtered))
	}
}

func TestComputeStats(t *testing.T) {
	contigs := []Contig{
		{Seq: make([]byte, 100)},
		{Seq: make([]byte, 50)},
		{Seq: make([]byte, 10)},
	}
	s := ComputeStats(contigs)
	if s.Count != 3 || s.TotalBases != 160 || s.MaxLen != 100 {
		t.Errorf("stats = %+v", s)
	}
	if s.N50 != 100 {
		t.Errorf("N50 = %d, want 100", s.N50)
	}
	if !strings.Contains(s.String(), "N50=100") {
		t.Errorf("String() = %q", s.String())
	}
	empty := ComputeStats(nil)
	if empty.Count != 0 || empty.N50 != 0 {
		t.Errorf("empty stats = %+v", empty)
	}
}

func TestCanonicalSeq(t *testing.T) {
	s := []byte("TTGC")
	c := CanonicalSeq(s)
	rc := seq.ReverseComplement(s)
	if string(c) != string(s) && string(c) != string(rc) {
		t.Error("canonical sequence must be the sequence or its reverse complement")
	}
	if string(CanonicalSeq(s)) != string(CanonicalSeq(rc)) {
		t.Error("canonical sequence must be orientation-invariant")
	}
}

func TestDistributeContigsDeduplicatesAndAssignsIDs(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 3})
	var got []Contig
	var ids []int
	m.Run(func(r *pgas.Rank) {
		var local []Contig
		// Every rank emits the same palindrome-ish duplicate plus a unique contig.
		local = append(local, Contig{Seq: []byte("AACCGGTT")})
		local = append(local, Contig{Seq: []byte(strings.Repeat("ACGT", r.ID()+3))})
		cs := DistributeContigs(r, local, dist.Distributed)
		// Shard IDs must be dense, in rank order, and unique across ranks.
		var localIDs []int
		cs.ForEachLocal(r, func(i int, c Contig) { localIDs = append(localIDs, c.ID) })
		gathered := pgas.GatherV(r, localIDs, 8)
		all := EmitContigs(r, cs)
		if r.ID() == 0 {
			got = all
			for _, batch := range gathered {
				ids = append(ids, batch...)
			}
		}
	})
	if len(got) != 4 {
		t.Fatalf("got %d contigs, want 4 (3 unique + 1 deduplicated)", len(got))
	}
	for i, c := range got {
		if c.ID != i {
			t.Errorf("contig %d has ID %d", i, c.ID)
		}
		if i > 0 && len(got[i-1].Seq) < len(c.Seq) {
			t.Error("contigs not sorted by descending length")
		}
	}
	// The ExScan renumbering hands out exactly 0..3, in rank order.
	if len(ids) != 4 {
		t.Fatalf("shards hold %d contigs, want 4", len(ids))
	}
	for i, id := range ids {
		if id != i {
			t.Errorf("shard IDs not dense in rank order: %v", ids)
			break
		}
	}
}
