// Package dbg implements the de Bruijn graph construction and traversal
// stage of the pipeline (Section II-C of the paper).
//
// The graph is stored implicitly in a distributed hash table: each vertex is
// a canonical k-mer and its value is a two-letter extension code giving the
// unique base that precedes and follows it in the read set (or a fork /
// dead-end marker). Contigs are maximal paths of k-mers whose consecutive
// extensions agree in both directions ("UU contigs").
//
// The key metagenome-specific change relative to HipMer is the
// depth-dependent high-quality-extension threshold: a k-mer with depth d is
// extended if at most thq = max(tbase, e*d) observations contradict its most
// common extension, instead of a single global threshold. This prevents
// high-coverage genomes from fragmenting without sacrificing low-coverage
// ones, and it is what the Table I ablation exercises.
package dbg

import (
	"fmt"
	"hash/fnv"
	"sort"

	"mhmgo/internal/dht"
	"mhmgo/internal/dist"
	"mhmgo/internal/pgas"
	"mhmgo/internal/seq"
)

// Entry is the value stored for each canonical k-mer vertex of the graph.
type Entry struct {
	// Count is the k-mer's depth (number of occurrences in the reads).
	Count uint32
	// Ext holds the classified left/right extension characters in the
	// canonical orientation ('A','C','G','T', 'F' fork, 'X' none).
	Ext seq.ExtPair
}

// Contig is a confidently assembled sequence produced by graph traversal.
type Contig struct {
	// ID is a dense identifier assigned after traversal (unique across ranks).
	ID int
	// Seq is the contig sequence.
	Seq []byte
	// Depth is the mean depth of the contig's k-mers.
	Depth float64
}

// Len returns the contig length in bases.
func (c Contig) Len() int { return len(c.Seq) }

// WireSize returns the wire bytes charged when a contig is routed or
// gathered: the ID and depth words plus the sequence itself.
func (c Contig) WireSize() int { return 16 + len(c.Seq) }

// CanonicalSeq returns the lexicographically smaller of the contig sequence
// and its reverse complement; two contigs representing the same genomic
// locus in opposite orientations share a canonical sequence.
func CanonicalSeq(s []byte) []byte {
	rc := seq.ReverseComplement(s)
	if string(rc) < string(s) {
		return rc
	}
	return s
}

// greaterThanRC reports whether s sorts strictly after its reverse complement,
// without materializing it. Equivalent to
// string(s) > string(seq.ReverseComplement(s)) — the walk orientation check in
// Traverse only needs the comparison, not the complemented sequence, and the
// in-place form avoids an O(len) allocation per walked path.
func greaterThanRC(s []byte) bool {
	for i := range s {
		c := seq.ComplementChar(s[len(s)-1-i])
		if s[i] != c {
			return s[i] > c
		}
	}
	return false
}

// ThresholdOptions selects how the high-quality extension threshold is
// computed when classifying extensions.
type ThresholdOptions struct {
	// TBase is the hard lower limit of the threshold (tbase in the paper).
	TBase uint32
	// ErrorRate is the single-parameter sequencing error model (e in the
	// paper); the depth-dependent threshold is max(TBase, ErrorRate*depth).
	ErrorRate float64
	// GlobalTHQ, when > 0, disables the depth-dependent rule and uses this
	// fixed threshold for every k-mer (the HipMer behaviour, kept for the
	// baseline and the ablation study).
	GlobalTHQ uint32
	// MinCount is the minimum extension support for a call.
	MinCount uint32
}

// DefaultThresholds returns the MetaHipMer defaults.
func DefaultThresholds() ThresholdOptions {
	return ThresholdOptions{TBase: 2, ErrorRate: 0.015, MinCount: 1}
}

// THQFor returns the high-quality-extension threshold for a k-mer of the
// given depth.
func (t ThresholdOptions) THQFor(depth uint32) uint32 {
	if t.GlobalTHQ > 0 {
		return t.GlobalTHQ
	}
	dyn := uint32(t.ErrorRate * float64(depth))
	if dyn < t.TBase {
		return t.TBase
	}
	return dyn
}

// Graph is the distributed de Bruijn graph.
type Graph struct {
	K       int
	Entries *dht.Map[seq.Kmer, Entry]
}

func kmerHash(k seq.Kmer) uint64 { return k.Hash() }

// NewGraph creates an empty graph for k-mers of length k.
func NewGraph(m *pgas.Machine, k int) *Graph {
	return &Graph{K: k, Entries: dht.NewMap[seq.Kmer, Entry](m, kmerHash, 24)}
}

// Build classifies the k-mer counts into graph entries. It is collective:
// each rank classifies the counts it owns (the entries land on the same
// owner, so the phase is purely local). Returns the same graph on all ranks.
func Build(r *pgas.Rank, counts *dht.Map[seq.Kmer, seq.KmerCount], k int, topts ThresholdOptions) *Graph {
	var g *Graph
	if r.ID() == 0 {
		g = NewGraph(r.Machine(), k)
	}
	g = pgas.Broadcast(r, g)
	if topts.MinCount == 0 {
		topts.MinCount = 1
	}
	counts.ForEachLocal(r, func(km seq.Kmer, kc seq.KmerCount) {
		thq := topts.THQFor(kc.Count)
		e := Entry{Count: kc.Count}
		e.Ext.Left = kc.Left.Classify(topts.MinCount, thq)
		e.Ext.Right = kc.Right.Classify(topts.MinCount, thq)
		g.Entries.SetLocal(r, km, e)
	})
	r.Barrier()
	return g
}

// oriented is a k-mer as observed during a walk: the canonical key plus the
// strand we are reading it on (true = canonical orientation).
type oriented struct {
	key     seq.Kmer
	forward bool
}

// observedKmer returns the k-mer as read on the walk's strand.
func (o oriented) observedKmer() seq.Kmer {
	if o.forward {
		return o.key
	}
	return o.key.ReverseComplement()
}

// observedExt returns the extension pair as seen on the walk's strand.
func observedExt(e Entry, forward bool) seq.ExtPair {
	if forward {
		return e.Ext
	}
	return e.Ext.Swap()
}

// lookup fetches the entry of the canonical form of km, returning the
// oriented view and whether it exists. reader may be nil, in which case the
// graph is accessed directly.
func (g *Graph) lookup(r *pgas.Rank, km seq.Kmer) (oriented, Entry, bool) {
	canon, wasRC := km.Canonical()
	e, ok := g.Entries.Get(r, canon)
	return oriented{key: canon, forward: !wasRC}, e, ok
}

// successor returns the next oriented k-mer of a walk, or ok=false if the
// walk must stop (no extension, fork, missing vertex, or mutual-agreement
// failure).
func (g *Graph) successor(r *pgas.Rank, cur oriented, e Entry) (oriented, Entry, byte, bool) {
	ext := observedExt(e, cur.forward)
	if !seq.IsBaseExt(ext.Right) {
		return oriented{}, Entry{}, 0, false
	}
	code, _ := seq.CharToBase(ext.Right)
	obs := cur.observedKmer()
	nextObs := obs.AppendBase(code)
	next, ne, ok := g.lookup(r, nextObs)
	if !ok {
		return oriented{}, Entry{}, 0, false
	}
	// Mutual agreement: the successor's left extension must point back at
	// the first base of the current observed k-mer.
	nextExt := observedExt(ne, next.forward)
	if !seq.IsBaseExt(nextExt.Left) {
		return oriented{}, Entry{}, 0, false
	}
	backCode, _ := seq.CharToBase(nextExt.Left)
	if backCode != obs.FirstBase() {
		return oriented{}, Entry{}, 0, false
	}
	return next, ne, code, true
}

// isPathStart reports whether the oriented k-mer has no valid predecessor,
// i.e. a contig starts here when walking in this orientation.
func (g *Graph) isPathStart(r *pgas.Rank, cur oriented, e Entry) bool {
	ext := observedExt(e, cur.forward)
	if !seq.IsBaseExt(ext.Left) {
		return true
	}
	code, _ := seq.CharToBase(ext.Left)
	obs := cur.observedKmer()
	prevObs := obs.PrependBase(code)
	prev, pe, ok := g.lookup(r, prevObs)
	if !ok {
		return true
	}
	prevExt := observedExt(pe, prev.forward)
	if !seq.IsBaseExt(prevExt.Right) {
		return true
	}
	fwdCode, _ := seq.CharToBase(prevExt.Right)
	return fwdCode != obs.LastBase()
}

// TraverseOptions controls contig generation.
type TraverseOptions struct {
	// MinContigLen drops contigs shorter than this many bases (0 keeps all).
	MinContigLen int
	// MaxSteps bounds a single walk as a safeguard against cycles; 0 means
	// the total number of graph vertices.
	MaxSteps int
}

// Traverse generates contigs from the graph. Collective: every rank walks
// the paths that start at k-mers it owns and returns only the contigs it
// emitted; use DistributeContigs to build the owner-distributed set. Contigs
// are emitted in canonical orientation exactly once.
//
// The walks start in sorted k-mer order, not map-iteration order: each walk
// charges a different amount of simulated work, and folding the same charges
// into the clock in a run-to-run-varying order would drift the simulated
// seconds by floating-point rounding.
func Traverse(r *pgas.Rank, g *Graph, opts TraverseOptions) []Contig {
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = g.Entries.Len() + 1
	}
	type vertex struct {
		km seq.Kmer
		e  Entry
	}
	var local []vertex
	g.Entries.ForEachLocal(r, func(km seq.Kmer, e Entry) {
		local = append(local, vertex{km: km, e: e})
	})
	sort.Slice(local, func(i, j int) bool { return local[i].km.Less(local[j].km) })
	var out []Contig
	ws := NewWalkScratch()
	for _, v := range local {
		km, e := v.km, v.e
		for _, forward := range []bool{true, false} {
			cur := oriented{key: km, forward: forward}
			if !g.isPathStart(r, cur, e) {
				continue
			}
			g.walk(r, cur, e, maxSteps, ws)
			n := ws.seq.Len()
			if n < g.K || (opts.MinContigLen > 0 && n < opts.MinContigLen) {
				continue
			}
			// Emit each path once: only from the end whose sequence is the
			// canonical orientation (ties broken towards emitting). The
			// comparison runs on the packed form; ASCII is materialized only
			// for the paths that survive it.
			if ws.seq.GreaterThanRC() {
				continue
			}
			contigSeq := ws.seq.AppendUnpack(make([]byte, 0, n))
			out = append(out, Contig{Seq: contigSeq, Depth: seq.MeanDepthFromCounts(ws.counts)})
		}
	}
	r.Barrier()
	return out
}

// WalkScratch holds the reusable walk buffers: the packed path sequence and
// the per-vertex depth counts. One scratch serves a whole Traverse — a walk
// appends 2-bit codes into it and unpacks to ASCII only for the paths that
// are actually emitted, so walking is allocation-free in steady state (the
// walked-from-both-ends and too-short paths that used to build and discard a
// byte slice each now cost nothing).
type WalkScratch struct {
	seq    seq.Packed
	counts []uint32
}

// NewWalkScratch returns an empty scratch ready for walking.
func NewWalkScratch() *WalkScratch { return &WalkScratch{} }

// walk extends a path from the starting oriented k-mer until it hits a fork,
// dead end, missing vertex or the step bound, filling the scratch buffers.
func (g *Graph) walk(r *pgas.Rank, start oriented, e Entry, maxSteps int, ws *WalkScratch) {
	ws.seq.Reset()
	ws.counts = ws.counts[:0]
	obs := start.observedKmer()
	ws.seq.AppendKmer(obs)
	ws.counts = append(ws.counts, e.Count)
	cur, ce := start, e
	for steps := 0; steps < maxSteps; steps++ {
		next, ne, code, ok := g.successor(r, cur, ce)
		if !ok {
			break
		}
		if next.key == start.key {
			// Cycle closed; stop without repeating the start.
			break
		}
		ws.seq.AppendCode(code)
		ws.counts = append(ws.counts, ne.Count)
		cur, ce = next, ne
		r.Compute(1)
	}
}

// walkASCII is the historical walk — one ASCII byte appended per step into a
// freshly allocated slice — kept as the baseline the packed walk is
// benchmarked and equivalence-tested against.
func (g *Graph) walkASCII(r *pgas.Rank, start oriented, e Entry, maxSteps int) ([]byte, []uint32) {
	obs := start.observedKmer()
	contigSeq := append([]byte(nil), obs.Bytes()...)
	counts := []uint32{e.Count}
	cur, ce := start, e
	for steps := 0; steps < maxSteps; steps++ {
		next, ne, code, ok := g.successor(r, cur, ce)
		if !ok {
			break
		}
		if next.key == start.key {
			break
		}
		contigSeq = append(contigSeq, seq.BaseToChar(code))
		counts = append(counts, ne.Count)
		cur, ce = next, ne
		r.Compute(1)
	}
	return contigSeq, counts
}

// WalkKernel exposes one graph walk for the repository-level per-kernel
// benchmarks and the packed-vs-ASCII equivalence tests: it walks from the
// canonical k-mer km in the given orientation into the scratch and returns
// the walked length in bases (0 if km is not a vertex). Traverse reaches the
// same code with its path-start and emit-once filters around it.
func (g *Graph) WalkKernel(r *pgas.Rank, km seq.Kmer, forward bool, maxSteps int, ws *WalkScratch) int {
	e, ok := g.Entries.Get(r, km)
	if !ok {
		return 0
	}
	g.walk(r, oriented{key: km, forward: forward}, e, maxSteps, ws)
	return ws.seq.Len()
}

// WalkKernelASCII is the ASCII-baseline counterpart of WalkKernel.
func (g *Graph) WalkKernelASCII(r *pgas.Rank, km seq.Kmer, forward bool, maxSteps int) ([]byte, []uint32) {
	e, ok := g.Entries.Get(r, km)
	if !ok {
		return nil, nil
	}
	return g.walkASCII(r, oriented{key: km, forward: forward}, e, maxSteps)
}

// Unpack exposes the scratch's walked sequence as ASCII, appended to dst.
func (ws *WalkScratch) Unpack(dst []byte) []byte { return ws.seq.AppendUnpack(dst) }

// Counts returns the scratch's per-vertex depth counts for the last walk.
func (ws *WalkScratch) Counts() []uint32 { return ws.counts }

// ContigSet is the distributed contig collection the pipeline passes between
// stages: contigs partitioned by content over the ranks, with dense global
// IDs assigned by an exclusive prefix scan.
type ContigSet = dist.Set[Contig]

// ContigOwner is the owner function of the distributed contig set: a
// well-mixed content hash, so exact duplicates (palindromic paths emitted
// from both ends, possibly on different ranks) always collide on the same
// owner and owner-local dedup is global dedup. Contigs are emitted in
// canonical orientation, so duplicates are byte-identical.
func ContigOwner(c Contig) int {
	h := fnv.New64a()
	h.Write(c.Seq)
	// Mask to a non-negative int before the modulo the Set applies.
	return int(h.Sum64() & (1<<63 - 1))
}

// ContigLess is the deterministic contig ordering used within each shard
// (descending length, then sequence). It depends only on content, never on
// IDs, so shard order — and everything downstream of it — is independent of
// the rank count.
func ContigLess(a, b Contig) bool {
	if len(a.Seq) != len(b.Seq) {
		return len(a.Seq) > len(b.Seq)
	}
	return string(a.Seq) < string(b.Seq)
}

// DistributeContigs builds the distributed contig set from the contigs each
// rank emitted, in two owner-routed exchanges and with no gather anywhere:
//
//  1. Contigs are routed to their content-hash owner, where exact duplicates
//     (always byte-identical, since contigs are emitted in canonical
//     orientation) collide and are deduplicated after a local sort.
//  2. The deduplicated shards — already size-sorted — are striped round-robin
//     over the ranks by local size rank, so every rank ends up owning an
//     even cross-section of large and small contigs. Ownership byte balance
//     matters downstream: read localization ships every read pair to its
//     contig's owner, so a byte-skewed ownership becomes a load-skewed
//     machine.
//
// The final shards are sorted and densely renumbered with an exclusive
// prefix scan. This replaces the old gather-to-all +
// sort-the-world-on-every-rank GatherContigs. Collective.
func DistributeContigs(r *pgas.Rank, local []Contig, mode dist.Mode) *ContigSet {
	home := dist.New(r, local, ContigOwner, Contig.WireSize, mode)
	home.SortLocal(r, ContigLess)
	home.DedupLocal(r, func(a, b Contig) bool { return string(a.Seq) == string(b.Seq) })
	deduped := append([]Contig(nil), home.Local(r)...)
	home.Release(r)
	s := dist.NewIndexed(r, deduped,
		func(src, i int, _ Contig) int { return i + src },
		Contig.WireSize, mode)
	s.SortLocal(r, ContigLess)
	s.Renumber(r, func(i, id int) { s.Local(r)[i].ID = id })
	return s
}

// RenumberContigs re-assigns dense global IDs after a set's shards changed
// (filtering, compaction), storing the new ID into each contig. Collective.
func RenumberContigs(r *pgas.Rank, s *ContigSet) int {
	return s.Renumber(r, func(i, id int) { s.Local(r)[i].ID = id })
}

// EmitContigs materializes the final contig list on rank 0 (nil elsewhere):
// shards are emitted in rank order, then sorted into the deterministic
// global order (descending length, then sequence) and given dense IDs, so
// the output is identical at any rank count. Collective.
func EmitContigs(r *pgas.Rank, s *ContigSet) []Contig {
	out := s.Emit(r)
	if out == nil {
		return nil
	}
	sort.Slice(out, func(i, j int) bool { return ContigLess(out[i], out[j]) })
	for i := range out {
		out[i].ID = i
	}
	r.Compute(float64(len(out)))
	return out
}

// Stats summarizes a contig set.
type Stats struct {
	Count      int
	TotalBases int
	MaxLen     int
	N50        int
}

// ComputeStats returns summary statistics of a contig set.
func ComputeStats(contigs []Contig) Stats {
	var s Stats
	s.Count = len(contigs)
	lengths := make([]int, 0, len(contigs))
	for _, c := range contigs {
		s.TotalBases += c.Len()
		if c.Len() > s.MaxLen {
			s.MaxLen = c.Len()
		}
		lengths = append(lengths, c.Len())
	}
	sort.Sort(sort.Reverse(sort.IntSlice(lengths)))
	half := s.TotalBases / 2
	acc := 0
	for _, l := range lengths {
		acc += l
		if acc >= half {
			s.N50 = l
			break
		}
	}
	return s
}

// String renders the stats in a single line.
func (s Stats) String() string {
	return fmt.Sprintf("contigs=%d bases=%d max=%d N50=%d", s.Count, s.TotalBases, s.MaxLen, s.N50)
}
