package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Sentinel errors of resume validation. Each failure mode is distinct so a
// refused resume tells the operator exactly what diverged.
var (
	// ErrBadManifest marks a manifest that is missing, unreadable or not the
	// JSON document this version writes.
	ErrBadManifest = errors.New("checkpoint: manifest missing or malformed")
	// ErrBadChain marks a manifest whose step hash chain does not verify:
	// a step record was altered, reordered or truncated after it was written.
	ErrBadChain = errors.New("checkpoint: manifest hash chain broken")
	// ErrConfigMismatch marks a resume attempted with a configuration whose
	// content hash differs from the one the checkpoint was written under.
	ErrConfigMismatch = errors.New("checkpoint: config hash mismatch")
	// ErrInputMismatch marks a resume attempted with input reads whose
	// content hash differs from the checkpointed run's input.
	ErrInputMismatch = errors.New("checkpoint: input reads hash mismatch")
	// ErrRankMismatch marks a resume attempted at a different rank count:
	// shard ownership is per-rank, so P must match exactly.
	ErrRankMismatch = errors.New("checkpoint: rank count mismatch")
	// ErrMissingShard marks a step whose per-rank shard file is absent.
	ErrMissingShard = errors.New("checkpoint: missing shard file")
	// ErrCorruptShard marks a shard file whose bytes do not hash to the
	// value the manifest recorded, or that fails structural decoding.
	ErrCorruptShard = errors.New("checkpoint: corrupt shard file")
)

const (
	// Version identifies the checkpoint format; a manifest written by a
	// different version is refused.
	Version = 1
	// ManifestFile is the manifest's file name inside a checkpoint directory.
	ManifestFile = "MANIFEST.json"
	// shardMagic opens every shard file.
	shardMagic = "MHMCKPT1"
)

// Step records one completed pipeline stage in the manifest: which stage of
// which k-iteration it was, the content hash of every rank's shard, and the
// chain fields. EntryHash = H(PrevHash ‖ step metadata ‖ StateHash), with
// the first step's PrevHash equal to the manifest root hash, so the head
// hash commits to the entire history of the run — inputs, config, rank
// count and every intermediate state.
type Step struct {
	Seq         int      `json:"seq"`
	Iteration   int      `json:"iteration"`
	Stage       string   `json:"stage"`
	K           int      `json:"k"`
	ShardHashes []string `json:"shard_hashes"`
	StateHash   string   `json:"state_hash"`
	PrevHash    string   `json:"prev_hash"`
	EntryHash   string   `json:"entry_hash"`
}

// Manifest is the content-hashed provenance record of a checkpointed run.
type Manifest struct {
	Version    int    `json:"version"`
	ConfigHash string `json:"config_hash"`
	InputHash  string `json:"input_hash"`
	Ranks      int    `json:"ranks"`
	Steps      []Step `json:"steps"`
}

// HashBytes returns the hex SHA-256 of b.
func HashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// New returns an empty manifest rooted in the given run identity.
func New(configHash, inputHash string, ranks int) *Manifest {
	return &Manifest{Version: Version, ConfigHash: configHash, InputHash: inputHash, Ranks: ranks}
}

// rootHash commits to the run identity: the chain anchor of the first step.
func (m *Manifest) rootHash() string {
	h := sha256.New()
	fmt.Fprintf(h, "mhm-manifest-v%d|config=%s|input=%s|ranks=%d", m.Version, m.ConfigHash, m.InputHash, m.Ranks)
	return hex.EncodeToString(h.Sum(nil))
}

// Head returns the chain head: the last step's entry hash, or the root hash
// of a run that has completed no steps yet. Two runs with equal heads
// executed the identical pipeline prefix over identical inputs.
func (m *Manifest) Head() string {
	if len(m.Steps) == 0 {
		return m.rootHash()
	}
	return m.Steps[len(m.Steps)-1].EntryHash
}

// stateHash folds the per-rank shard hashes into one step state hash.
func stateHash(shardHashes []string) string {
	h := sha256.New()
	for _, sh := range shardHashes {
		io.WriteString(h, sh)
		io.WriteString(h, "\n")
	}
	return hex.EncodeToString(h.Sum(nil))
}

// entryHash chains one step onto its predecessor.
func entryHash(prev string, s *Step) string {
	h := sha256.New()
	fmt.Fprintf(h, "step|%d|%d|%s|%d|%s|%s", s.Seq, s.Iteration, s.Stage, s.K, prev, s.StateHash)
	return hex.EncodeToString(h.Sum(nil))
}

// AppendStep appends a completed step, computing its chain fields, and
// returns the appended record.
func (m *Manifest) AppendStep(iteration int, stage string, k int, shardHashes []string) Step {
	s := Step{
		Seq:         len(m.Steps),
		Iteration:   iteration,
		Stage:       stage,
		K:           k,
		ShardHashes: append([]string(nil), shardHashes...),
		PrevHash:    m.Head(),
	}
	s.StateHash = stateHash(s.ShardHashes)
	s.EntryHash = entryHash(s.PrevHash, &s)
	m.Steps = append(m.Steps, s)
	return s
}

// Verify recomputes the hash chain and returns ErrBadChain (with detail) on
// the first step whose recorded fields do not reproduce it.
func (m *Manifest) Verify() error {
	if m.Version != Version {
		return fmt.Errorf("%w: version %d, this build writes version %d", ErrBadManifest, m.Version, Version)
	}
	prev := m.rootHash()
	for i := range m.Steps {
		s := &m.Steps[i]
		if s.Seq != i {
			return fmt.Errorf("%w: step %d records seq %d", ErrBadChain, i, s.Seq)
		}
		if s.PrevHash != prev {
			return fmt.Errorf("%w: step %d prev hash does not match its predecessor", ErrBadChain, i)
		}
		if s.StateHash != stateHash(s.ShardHashes) {
			return fmt.Errorf("%w: step %d state hash does not match its shard hashes", ErrBadChain, i)
		}
		if s.EntryHash != entryHash(prev, s) {
			return fmt.Errorf("%w: step %d entry hash does not verify", ErrBadChain, i)
		}
		if len(s.ShardHashes) != m.Ranks {
			return fmt.Errorf("%w: step %d has %d shard hashes for %d ranks", ErrBadChain, i, len(s.ShardHashes), m.Ranks)
		}
		prev = s.EntryHash
	}
	return nil
}

// ValidateFor verifies the chain and then checks the manifest against the
// identity of the run attempting to resume. Each mismatch returns its own
// sentinel error.
func (m *Manifest) ValidateFor(configHash, inputHash string, ranks int) error {
	if err := m.Verify(); err != nil {
		return err
	}
	if m.ConfigHash != configHash {
		return fmt.Errorf("%w: checkpoint was written under config %.12s…, resume attempted with %.12s…",
			ErrConfigMismatch, m.ConfigHash, configHash)
	}
	if m.InputHash != inputHash {
		return fmt.Errorf("%w: checkpoint was written over input %.12s…, resume attempted with %.12s…",
			ErrInputMismatch, m.InputHash, inputHash)
	}
	if m.Ranks != ranks {
		return fmt.Errorf("%w: checkpoint was written at P=%d, resume attempted at P=%d",
			ErrRankMismatch, m.Ranks, ranks)
	}
	return nil
}

// Parse decodes a manifest from JSON bytes (no chain verification; call
// Verify or ValidateFor). It never panics on malformed input.
func Parse(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadManifest, err)
	}
	return &m, nil
}

// Load reads and parses the manifest of a checkpoint directory.
func Load(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadManifest, err)
	}
	return Parse(data)
}

// Save writes the manifest atomically (temp file + rename), so a kill during
// the write can never leave a torn manifest — the directory holds either the
// previous manifest or the new one.
func (m *Manifest) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return writeAtomic(filepath.Join(dir, ManifestFile), data)
}

// ShardPath returns the shard file path of (step seq, stage, rank) inside a
// checkpoint directory.
func ShardPath(dir string, seq int, stage string, rank int) string {
	return filepath.Join(dir, fmt.Sprintf("step-%04d-%s", seq, stage), fmt.Sprintf("rank-%04d.ckpt", rank))
}

// WriteShard writes payload as a shard file (magic header + payload),
// atomically, creating the step directory as needed, and returns the content
// hash of the complete file — the value the manifest records for this shard.
func WriteShard(path string, payload []byte) (hash string, err error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return "", err
	}
	data := make([]byte, 0, len(shardMagic)+len(payload))
	data = append(data, shardMagic...)
	data = append(data, payload...)
	if err := writeAtomic(path, data); err != nil {
		return "", err
	}
	return HashBytes(data), nil
}

// ReadShard reads a shard file back and returns its payload. A missing file
// is ErrMissingShard; bytes that do not hash to wantHash, or that lack the
// format magic, are ErrCorruptShard.
func ReadShard(path, wantHash string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrMissingShard, path)
		}
		return nil, fmt.Errorf("%w: %s: %v", ErrMissingShard, path, err)
	}
	if HashBytes(data) != wantHash {
		return nil, fmt.Errorf("%w: %s does not match its manifest hash", ErrCorruptShard, path)
	}
	if len(data) < len(shardMagic) || string(data[:len(shardMagic)]) != shardMagic {
		return nil, fmt.Errorf("%w: %s lacks the shard magic", ErrCorruptShard, path)
	}
	return data[len(shardMagic):], nil
}

// writeAtomic writes data to path via a temp file and rename.
func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
