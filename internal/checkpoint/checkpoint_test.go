package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mhmgo/internal/aligner"
	"mhmgo/internal/dbg"
	"mhmgo/internal/pgas"
	"mhmgo/internal/scaffold"
	"mhmgo/internal/seq"
)

func TestManifestChain(t *testing.T) {
	m := New("cfg-hash", "input-hash", 3)
	root := m.Head()
	if root == "" {
		t.Fatal("empty head on fresh manifest")
	}
	s1 := m.AppendStep(0, "kmer_analysis", 21, []string{"a", "b", "c"})
	if s1.PrevHash != root {
		t.Errorf("first step prev %q != root %q", s1.PrevHash, root)
	}
	s2 := m.AppendStep(0, "dbg_traversal", 21, []string{"d", "e", "f"})
	if s2.PrevHash != s1.EntryHash {
		t.Error("second step does not chain onto the first")
	}
	if m.Head() != s2.EntryHash {
		t.Error("head is not the last entry hash")
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify on a well-formed chain: %v", err)
	}
	if err := m.ValidateFor("cfg-hash", "input-hash", 3); err != nil {
		t.Fatalf("ValidateFor with matching identity: %v", err)
	}

	// An identically rebuilt manifest reaches the identical head.
	m2 := New("cfg-hash", "input-hash", 3)
	m2.AppendStep(0, "kmer_analysis", 21, []string{"a", "b", "c"})
	m2.AppendStep(0, "dbg_traversal", 21, []string{"d", "e", "f"})
	if m2.Head() != m.Head() {
		t.Error("identical histories produced different heads")
	}

	// Any change to the identity or history changes the head.
	m3 := New("cfg-hash2", "input-hash", 3)
	if m3.Head() == root {
		t.Error("different config hash produced the same root")
	}
}

func TestManifestValidateForMismatches(t *testing.T) {
	m := New("cfg", "input", 3)
	m.AppendStep(0, "kmer_analysis", 21, []string{"a", "b", "c"})
	cases := []struct {
		name                  string
		cfgHash, inHash       string
		ranks                 int
		want                  error
	}{
		{"config", "other", "input", 3, ErrConfigMismatch},
		{"input", "cfg", "other", 3, ErrInputMismatch},
		{"ranks", "cfg", "input", 4, ErrRankMismatch},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := m.ValidateFor(tc.cfgHash, tc.inHash, tc.ranks)
			if !errors.Is(err, tc.want) {
				t.Errorf("ValidateFor = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestManifestVerifyDetectsTampering(t *testing.T) {
	fresh := func() *Manifest {
		m := New("cfg", "input", 2)
		m.AppendStep(0, "kmer_analysis", 21, []string{"a", "b"})
		m.AppendStep(0, "dbg_traversal", 21, []string{"c", "d"})
		return m
	}
	cases := []struct {
		name   string
		tamper func(m *Manifest)
	}{
		{"shard hash edited", func(m *Manifest) { m.Steps[0].ShardHashes[0] = "x" }},
		{"step dropped", func(m *Manifest) { m.Steps = m.Steps[1:] }},
		{"steps swapped", func(m *Manifest) { m.Steps[0], m.Steps[1] = m.Steps[1], m.Steps[0] }},
		{"iteration edited", func(m *Manifest) { m.Steps[1].Iteration = 5 }},
		{"stage renamed", func(m *Manifest) { m.Steps[1].Stage = "scaffolding" }},
		{"shard count vs ranks", func(m *Manifest) { m.Ranks = 3 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := fresh()
			tc.tamper(m)
			if err := m.Verify(); !errors.Is(err, ErrBadChain) && !errors.Is(err, ErrBadManifest) {
				t.Errorf("Verify after tampering = %v, want chain/manifest error", err)
			}
		})
	}
}

func TestManifestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	m := New("cfg", "input", 2)
	m.AppendStep(0, "kmer_analysis", 21, []string{"a", "b"})
	if err := m.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Verify(); err != nil {
		t.Fatalf("loaded manifest does not verify: %v", err)
	}
	if got.Head() != m.Head() {
		t.Error("head changed across save/load")
	}

	if _, err := Load(t.TempDir()); !errors.Is(err, ErrBadManifest) {
		t.Errorf("Load from empty dir = %v, want ErrBadManifest", err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestFile), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); !errors.Is(err, ErrBadManifest) {
		t.Errorf("Load of malformed JSON = %v, want ErrBadManifest", err)
	}
}

func TestShardReadWrite(t *testing.T) {
	dir := t.TempDir()
	path := ShardPath(dir, 0, "kmer_analysis", 1)
	payload := []byte("some shard payload")
	hash, err := WriteShard(path, payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadShard(path, hash)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Errorf("ReadShard = %q, want %q", got, payload)
	}

	if _, err := ReadShard(ShardPath(dir, 0, "kmer_analysis", 2), hash); !errors.Is(err, ErrMissingShard) {
		t.Errorf("missing shard = %v, want ErrMissingShard", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadShard(path, hash); !errors.Is(err, ErrCorruptShard) {
		t.Errorf("corrupted shard = %v, want ErrCorruptShard", err)
	}
}

// TestCodecRoundTrip pins the typed codecs: every record decodes back to
// itself, and the encoded size is never below the pgas reflective lower
// bound, so checkpoint bytes can stand in for wire bytes in cost arguments.
func TestCodecRoundTrip(t *testing.T) {
	rd := seq.Read{ID: "pair1/1", Seq: []byte("ACGTACGTA"), Qual: []byte("IIIIIIIII"), LibID: 2, SampleID: 3}
	var e1 Enc
	e1.Read(rd)
	if got, min := len(e1.Bytes()), pgas.WireSizeOf(rd); got < min {
		t.Errorf("encoded read %d bytes < reflective bound %d", got, min)
	}
	d := NewDec(e1.Bytes())
	rd2, err := d.Read()
	if err != nil {
		t.Fatal(err)
	}
	if rd2.ID != rd.ID || string(rd2.Seq) != string(rd.Seq) || string(rd2.Qual) != string(rd.Qual) || rd2.LibID != rd.LibID || rd2.SampleID != rd.SampleID {
		t.Errorf("read round trip: got %+v want %+v", rd2, rd)
	}
	if err := d.Done(); err != nil {
		t.Error(err)
	}

	c := dbg.Contig{ID: 7, Seq: []byte("ACGTTT"), Depth: 3.25}
	var e2 Enc
	e2.Contig(c)
	if got, min := len(e2.Bytes()), pgas.WireSizeOf(c); got < min {
		t.Errorf("encoded contig %d bytes < reflective bound %d", got, min)
	}
	c2, err := NewDec(e2.Bytes()).Contig()
	if err != nil {
		t.Fatal(err)
	}
	if c2.ID != c.ID || string(c2.Seq) != string(c.Seq) || c2.Depth != c.Depth {
		t.Errorf("contig round trip: got %+v want %+v", c2, c)
	}

	a := aligner.Alignment{ReadIdx: 12, ReadID: "pair1/1", LibID: 1, ContigID: 3,
		ContigLen: 500, ContigPos: -4, Reverse: true, Matches: 70, Mismatch: 2, AlignLen: 72}
	var e3 Enc
	e3.Alignment(a)
	if got, min := len(e3.Bytes()), pgas.WireSizeOf(a); got < min {
		t.Errorf("encoded alignment %d bytes < reflective bound %d", got, min)
	}
	a2, err := NewDec(e3.Bytes()).Alignment()
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a {
		t.Errorf("alignment round trip: got %+v want %+v", a2, a)
	}

	s := scaffold.Scaffold{ID: 2, Seq: []byte("ACGTNNNACGT"), ContigIDs: []int{4, 9}, Gaps: 1, GapsClosed: 1}
	var e4 Enc
	e4.Scaffold(s)
	if got, min := len(e4.Bytes()), pgas.WireSizeOf(s); got < min {
		t.Errorf("encoded scaffold %d bytes < reflective bound %d", got, min)
	}
	s2, err := NewDec(e4.Bytes()).Scaffold()
	if err != nil {
		t.Fatal(err)
	}
	if s2.ID != s.ID || string(s2.Seq) != string(s.Seq) || len(s2.ContigIDs) != 2 ||
		s2.ContigIDs[0] != 4 || s2.ContigIDs[1] != 9 || s2.Gaps != 1 || s2.GapsClosed != 1 {
		t.Errorf("scaffold round trip: got %+v want %+v", s2, s)
	}

	kc := seq.KmerCount{Kmer: seq.MustKmer("ACGTACGTACGTACGTACGTA"), Count: 9,
		Left: seq.ExtCounts{1, 0, 2, 0}, Right: seq.ExtCounts{0, 5, 0, 1}}
	var e5 Enc
	e5.KmerCount(kc)
	if got := len(e5.Bytes()); got != KmerCountBytes {
		t.Errorf("encoded k-mer count %d bytes, want fixed %d", got, KmerCountBytes)
	}
	if got, min := len(e5.Bytes()), pgas.WireSizeOf(kc); got < min {
		t.Errorf("encoded k-mer count %d bytes < reflective bound %d", got, min)
	}
	kc2, err := NewDec(e5.Bytes()).KmerCount()
	if err != nil {
		t.Fatal(err)
	}
	if kc2 != kc {
		t.Errorf("k-mer count round trip: got %+v want %+v", kc2, kc)
	}
}

// TestDecRejectsMalformed pins decode-side validation: truncation, bad bool
// bytes, implausible counts and dirty k-mer packing all error out.
func TestDecRejectsMalformed(t *testing.T) {
	var e Enc
	e.Str("hello")
	enc := e.Bytes()
	for cut := 0; cut < len(enc); cut++ {
		if _, err := NewDec(enc[:cut]).Str(); err == nil {
			t.Errorf("Str decoded successfully from %d of %d bytes", cut, len(enc))
		}
	}

	var eb Enc
	eb.U8(2)
	if _, err := NewDec(eb.Bytes()).Bool(); err == nil {
		t.Error("bool byte 2 accepted")
	}

	var ec Enc
	ec.Int(1 << 40) // plausible-looking huge element count
	if _, err := NewDec(ec.Bytes()).Count(8); err == nil {
		t.Error("implausible count accepted")
	}
	var en Enc
	en.Int(-1)
	if _, err := NewDec(en.Bytes()).Count(8); err == nil {
		t.Error("negative count accepted")
	}

	// A k-mer with bits set outside the masked region can never be produced
	// by the encoder and must be rejected.
	kc := seq.KmerCount{Kmer: seq.Kmer{Hi: ^uint64(0), Lo: ^uint64(0), K: 21}, Count: 1}
	var ek Enc
	ek.KmerCount(kc)
	if _, err := NewDec(ek.Bytes()).KmerCount(); err == nil {
		t.Error("k-mer with dirty packing bits accepted")
	}
	kc.Kmer = seq.Kmer{K: 200}
	var ek2 Enc
	ek2.KmerCount(kc)
	if _, err := NewDec(ek2.Bytes()).KmerCount(); err == nil {
		t.Error("k-mer length 200 accepted")
	}

	// Trailing garbage is caught by Done.
	var et Enc
	et.U8(1)
	d := NewDec(et.Bytes())
	if err := d.Done(); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("Done with trailing bytes = %v", err)
	}
}

// TestDecodedSlicesDoNotAlias pins the capped-slice guarantee: appending to
// one decoded blob must not overwrite the next record's bytes.
func TestDecodedSlicesDoNotAlias(t *testing.T) {
	var e Enc
	e.Blob([]byte("AAAA"))
	e.Blob([]byte("CCCC"))
	d := NewDec(e.Bytes())
	b1, err := d.Blob()
	if err != nil {
		t.Fatal(err)
	}
	b1 = append(b1, 'X', 'X', 'X', 'X')
	_ = b1
	b2, err := d.Blob()
	if err != nil {
		t.Fatal(err)
	}
	if string(b2) != "CCCC" {
		t.Errorf("append on earlier decoded slice corrupted later record: %q", b2)
	}
}
