package checkpoint

import (
	"encoding/json"
	"testing"

	"mhmgo/internal/aligner"
	"mhmgo/internal/dbg"
	"mhmgo/internal/scaffold"
	"mhmgo/internal/seq"
)

func mustRead() seq.Read {
	return seq.Read{ID: "pair1/1", Seq: []byte("ACGTACGTA"), Qual: []byte("IIIIIIIII"), LibID: 1, SampleID: 2}
}

func mustAlignment() aligner.Alignment {
	return aligner.Alignment{ReadIdx: 12, ReadID: "pair1/1", LibID: 1, ContigID: 3,
		ContigLen: 500, ContigPos: -4, Reverse: true, Matches: 70, Mismatch: 2, AlignLen: 72}
}

func mustContig() dbg.Contig {
	return dbg.Contig{ID: 7, Seq: []byte("ACGTTT"), Depth: 3.25}
}

func mustScaffold() scaffold.Scaffold {
	return scaffold.Scaffold{ID: 2, Seq: []byte("ACGTNNNACGT"), ContigIDs: []int{4, 9}, Gaps: 1, GapsClosed: 1}
}

func mustKmerCount() seq.KmerCount {
	return seq.KmerCount{Kmer: seq.MustKmer("ACGTACGTACGTACGTACGTA"), Count: 9,
		Left: seq.ExtCounts{1, 0, 2, 0}, Right: seq.ExtCounts{0, 5, 0, 1}}
}

// FuzzManifestParse feeds arbitrary bytes through manifest parsing and chain
// verification: both must reject malformed input with an error — never panic
// — and a manifest that parses and verifies must survive a JSON round trip
// with its head intact.
func FuzzManifestParse(f *testing.F) {
	m := New("cfg-hash", "input-hash", 3)
	m.AppendStep(0, "kmer_analysis", 21, []string{"a", "b", "c"})
	m.AppendStep(0, "dbg_traversal", 21, []string{"d", "e", "f"})
	seed, err := json.Marshal(m)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"ranks":2,"steps":[{"seq":0}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Parse(data)
		if err != nil {
			return
		}
		if verr := got.Verify(); verr != nil {
			return
		}
		// A parsed and verified manifest must round-trip with a stable head.
		out, err := json.Marshal(got)
		if err != nil {
			t.Fatalf("marshal of verified manifest: %v", err)
		}
		again, err := Parse(out)
		if err != nil {
			t.Fatalf("reparse of verified manifest: %v", err)
		}
		if again.Head() != got.Head() {
			t.Fatalf("head changed across JSON round trip: %s vs %s", again.Head(), got.Head())
		}
	})
}

// FuzzDecRecords drives the typed record decoders over arbitrary bytes: they
// must either return an error or produce a value whose re-encoding is
// byte-identical to what was consumed (the format is canonical).
func FuzzDecRecords(f *testing.F) {
	var seedRead Enc
	seedRead.Read(mustRead())
	f.Add(uint8(0), seedRead.Bytes())
	var seedAln Enc
	seedAln.Alignment(mustAlignment())
	f.Add(uint8(1), seedAln.Bytes())
	var seedContig Enc
	seedContig.Contig(mustContig())
	f.Add(uint8(2), seedContig.Bytes())
	var seedScaf Enc
	seedScaf.Scaffold(mustScaffold())
	f.Add(uint8(3), seedScaf.Bytes())
	var seedKC Enc
	seedKC.KmerCount(mustKmerCount())
	f.Add(uint8(4), seedKC.Bytes())

	f.Fuzz(func(t *testing.T, kind uint8, data []byte) {
		d := NewDec(data)
		var re Enc
		var err error
		switch kind % 5 {
		case 0:
			var v = d
			r, e := v.Read()
			if e == nil {
				re.Read(r)
			}
			err = e
		case 1:
			a, e := d.Alignment()
			if e == nil {
				re.Alignment(a)
			}
			err = e
		case 2:
			c, e := d.Contig()
			if e == nil {
				re.Contig(c)
			}
			err = e
		case 3:
			s, e := d.Scaffold()
			if e == nil {
				re.Scaffold(s)
			}
			err = e
		case 4:
			kc, e := d.KmerCount()
			if e == nil {
				re.KmerCount(kc)
			}
			err = e
		}
		if err != nil {
			return
		}
		consumed := len(data) - d.Remaining()
		if got := re.Bytes(); string(got) != string(data[:consumed]) {
			t.Fatalf("kind %d: re-encode differs from consumed bytes (%d vs %d bytes)",
				kind%5, len(got), consumed)
		}
	})
}
