package checkpoint

import (
	"fmt"

	"mhmgo/internal/aligner"
	"mhmgo/internal/dbg"
	"mhmgo/internal/scaffold"
	"mhmgo/internal/seq"
)

// Typed encoders/decoders for the pipeline record types a checkpoint shard
// carries. Field order is part of the format; every decoder validates the
// structural invariants of its type (k-mer length bounds, quality length,
// masked packing bits) so a corrupted shard is rejected instead of smuggling
// an impossible value into the resumed pipeline.

// Read encodes a sequencing read.
func (e *Enc) Read(r seq.Read) {
	e.Str(r.ID)
	e.Blob(r.Seq)
	e.Blob(r.Qual)
	e.U8(r.LibID)
	e.U8(r.SampleID)
}

// Read decodes a sequencing read.
func (d *Dec) Read() (seq.Read, error) {
	var r seq.Read
	var err error
	if r.ID, err = d.Str(); err != nil {
		return r, err
	}
	if r.Seq, err = d.Blob(); err != nil {
		return r, err
	}
	if r.Qual, err = d.Blob(); err != nil {
		return r, err
	}
	if r.LibID, err = d.U8(); err != nil {
		return r, err
	}
	if r.SampleID, err = d.U8(); err != nil {
		return r, err
	}
	if err = r.Validate(); err != nil {
		return r, fmt.Errorf("checkpoint: %w", err)
	}
	return r, nil
}

// Contig encodes a contig.
func (e *Enc) Contig(c dbg.Contig) {
	e.Int(c.ID)
	e.Blob(c.Seq)
	e.F64(c.Depth)
}

// Contig decodes a contig.
func (d *Dec) Contig() (dbg.Contig, error) {
	var c dbg.Contig
	var err error
	if c.ID, err = d.Int(); err != nil {
		return c, err
	}
	if c.Seq, err = d.Blob(); err != nil {
		return c, err
	}
	if c.Depth, err = d.F64(); err != nil {
		return c, err
	}
	if len(c.Seq) == 0 {
		return c, fmt.Errorf("checkpoint: contig %d has empty sequence", c.ID)
	}
	return c, nil
}

// Alignment encodes a read-to-contig alignment.
func (e *Enc) Alignment(a aligner.Alignment) {
	e.Int(a.ReadIdx)
	e.Str(a.ReadID)
	e.U8(a.LibID)
	e.Int(a.ContigID)
	e.Int(a.ContigLen)
	e.Int(a.ContigPos)
	e.Bool(a.Reverse)
	e.Int(a.Matches)
	e.Int(a.Mismatch)
	e.Int(a.AlignLen)
}

// Alignment decodes a read-to-contig alignment.
func (d *Dec) Alignment() (aligner.Alignment, error) {
	var a aligner.Alignment
	var err error
	if a.ReadIdx, err = d.Int(); err != nil {
		return a, err
	}
	if a.ReadID, err = d.Str(); err != nil {
		return a, err
	}
	if a.LibID, err = d.U8(); err != nil {
		return a, err
	}
	if a.ContigID, err = d.Int(); err != nil {
		return a, err
	}
	if a.ContigLen, err = d.Int(); err != nil {
		return a, err
	}
	if a.ContigPos, err = d.Int(); err != nil {
		return a, err
	}
	if a.Reverse, err = d.Bool(); err != nil {
		return a, err
	}
	if a.Matches, err = d.Int(); err != nil {
		return a, err
	}
	if a.Mismatch, err = d.Int(); err != nil {
		return a, err
	}
	if a.AlignLen, err = d.Int(); err != nil {
		return a, err
	}
	return a, nil
}

// Scaffold encodes a scaffold.
func (e *Enc) Scaffold(s scaffold.Scaffold) {
	e.Int(s.ID)
	e.Blob(s.Seq)
	e.Int(len(s.ContigIDs))
	for _, id := range s.ContigIDs {
		e.Int(id)
	}
	e.Int(s.Gaps)
	e.Int(s.GapsClosed)
}

// Scaffold decodes a scaffold.
func (d *Dec) Scaffold() (scaffold.Scaffold, error) {
	var s scaffold.Scaffold
	var err error
	if s.ID, err = d.Int(); err != nil {
		return s, err
	}
	if s.Seq, err = d.Blob(); err != nil {
		return s, err
	}
	n, err := d.Count(8)
	if err != nil {
		return s, err
	}
	if n > 0 {
		s.ContigIDs = make([]int, n)
		for i := range s.ContigIDs {
			if s.ContigIDs[i], err = d.Int(); err != nil {
				return s, err
			}
		}
	}
	if s.Gaps, err = d.Int(); err != nil {
		return s, err
	}
	if s.GapsClosed, err = d.Int(); err != nil {
		return s, err
	}
	return s, nil
}

// KmerCount encodes one k-mer analysis record (the packed canonical k-mer,
// its count and the per-side extension observations).
func (e *Enc) KmerCount(kc seq.KmerCount) {
	e.U64(kc.Kmer.Hi)
	e.U64(kc.Kmer.Lo)
	e.U8(kc.Kmer.K)
	e.U32(kc.Count)
	for _, v := range kc.Left {
		e.U32(v)
	}
	for _, v := range kc.Right {
		e.U32(v)
	}
}

// KmerCountBytes is the fixed encoded size of one KmerCount record.
const KmerCountBytes = 8 + 8 + 1 + 4 + 4*4 + 4*4

// KmerCount decodes one k-mer analysis record, rejecting k-mers whose length
// is out of range or whose packing carries bits outside the masked region —
// such a value could never have been produced by the encoder.
func (d *Dec) KmerCount() (seq.KmerCount, error) {
	var kc seq.KmerCount
	var err error
	if kc.Kmer.Hi, err = d.U64(); err != nil {
		return kc, err
	}
	if kc.Kmer.Lo, err = d.U64(); err != nil {
		return kc, err
	}
	if kc.Kmer.K, err = d.U8(); err != nil {
		return kc, err
	}
	if kc.Count, err = d.U32(); err != nil {
		return kc, err
	}
	for i := range kc.Left {
		if kc.Left[i], err = d.U32(); err != nil {
			return kc, err
		}
	}
	for i := range kc.Right {
		if kc.Right[i], err = d.U32(); err != nil {
			return kc, err
		}
	}
	k := int(kc.Kmer.K)
	if k < 1 || k > seq.MaxK {
		return kc, fmt.Errorf("checkpoint: k-mer length %d out of range [1,%d]", k, seq.MaxK)
	}
	if rt, err := seq.KmerFromBytes(kc.Kmer.Bytes(), k); err != nil || rt != kc.Kmer {
		return kc, fmt.Errorf("checkpoint: k-mer packing carries bits outside the k=%d mask", k)
	}
	return kc, nil
}
