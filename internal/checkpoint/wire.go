// Package checkpoint implements per-stage checkpoint serialization and the
// content-hashed run manifest for the assembler's checkpoint/restart support
// (the robustness pillar: HipMer/MetaHipMer production runs survive
// multi-hour assemblies by checkpointing between pipeline stages).
//
// The package has three parts:
//
//   - A compact little-endian binary codec (Enc/Dec) with typed encoders for
//     the pipeline's record types (reads, contigs, alignments, scaffolds,
//     k-mer counts). Every decode path is bounds-checked and returns an
//     error — corrupted or truncated checkpoint bytes must never panic and
//     never silently resume.
//   - Shard files: one file per (step, rank), written atomically
//     (temp + rename) under a magic header, read back only against the
//     content hash the manifest recorded for them.
//   - The manifest: a JSON document whose steps form a Merkle-style hash
//     chain rooted in the content hashes of the run's configuration and
//     input reads, so a resume can refuse to continue from state that was
//     produced by a different run.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Enc is an append-only encoder for the checkpoint wire format. The zero
// value is ready to use. All integers are little-endian; variable-length
// payloads are length-prefixed with an int64.
type Enc struct {
	buf []byte
}

// Bytes returns the encoded buffer.
func (e *Enc) Bytes() []byte { return e.buf }

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.buf = append(e.buf, v) }

// U32 appends a little-endian uint32.
func (e *Enc) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Enc) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends a little-endian int64.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as int64.
func (e *Enc) Int(v int) { e.I64(int64(v)) }

// F64 appends the IEEE-754 bit pattern of a float64, preserving the exact
// bits (checkpointed clocks must restore bit-identically).
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends a bool as one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Blob appends a length-prefixed byte slice.
func (e *Enc) Blob(b []byte) {
	e.Int(len(b))
	e.buf = append(e.buf, b...)
}

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) {
	e.Int(len(s))
	e.buf = append(e.buf, s...)
}

// Dec decodes the checkpoint wire format. Every method returns an error on
// truncated or malformed input instead of panicking, and length prefixes are
// validated against the remaining bytes before any allocation, so a decoder
// fed hostile input can neither crash nor balloon memory.
type Dec struct {
	buf []byte
	off int
}

// NewDec returns a decoder over b.
func NewDec(b []byte) *Dec { return &Dec{buf: b} }

// Remaining returns the number of undecoded bytes.
func (d *Dec) Remaining() int { return len(d.buf) - d.off }

// Done returns an error unless the buffer was consumed exactly.
func (d *Dec) Done() error {
	if n := d.Remaining(); n != 0 {
		return fmt.Errorf("checkpoint: %d trailing bytes after decode", n)
	}
	return nil
}

func (d *Dec) take(n int) ([]byte, error) {
	if n < 0 || n > d.Remaining() {
		return nil, fmt.Errorf("checkpoint: truncated input: need %d bytes, have %d", n, d.Remaining())
	}
	// The full slice expression caps the result at its own bytes: decoded
	// slices alias the input buffer, and without the cap a later append on
	// one decoded field could silently overwrite its neighbours.
	b := d.buf[d.off : d.off+n : d.off+n]
	d.off += n
	return b, nil
}

// U8 decodes one byte.
func (d *Dec) U8() (uint8, error) {
	b, err := d.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// U32 decodes a little-endian uint32.
func (d *Dec) U32() (uint32, error) {
	b, err := d.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

// U64 decodes a little-endian uint64.
func (d *Dec) U64() (uint64, error) {
	b, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// I64 decodes a little-endian int64.
func (d *Dec) I64() (int64, error) {
	v, err := d.U64()
	return int64(v), err
}

// Int decodes an int64 into an int.
func (d *Dec) Int() (int, error) {
	v, err := d.I64()
	if err != nil {
		return 0, err
	}
	if int64(int(v)) != v {
		return 0, fmt.Errorf("checkpoint: integer %d overflows int", v)
	}
	return int(v), nil
}

// F64 decodes a float64 from its bit pattern.
func (d *Dec) F64() (float64, error) {
	v, err := d.U64()
	return math.Float64frombits(v), err
}

// Bool decodes a bool; any byte other than 0 or 1 is an error.
func (d *Dec) Bool() (bool, error) {
	v, err := d.U8()
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("checkpoint: invalid bool byte %#x", v)
	}
}

// Blob decodes a length-prefixed byte slice. The returned slice aliases the
// decoder's buffer.
func (d *Dec) Blob() ([]byte, error) {
	n, err := d.Int()
	if err != nil {
		return nil, err
	}
	return d.take(n)
}

// Str decodes a length-prefixed string.
func (d *Dec) Str() (string, error) {
	b, err := d.Blob()
	return string(b), err
}

// Count decodes an element count that precedes a homogeneous sequence whose
// elements occupy at least minBytes bytes each. Validating the count against
// the remaining input caps the slice a caller may pre-allocate at the size
// of the data actually present, so a corrupted length prefix cannot request
// an enormous allocation.
func (d *Dec) Count(minBytes int) (int, error) {
	n, err := d.Int()
	if err != nil {
		return 0, err
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n < 0 || n > d.Remaining()/minBytes {
		return 0, fmt.Errorf("checkpoint: implausible element count %d (%d bytes remaining)", n, d.Remaining())
	}
	return n, nil
}
