package kmeranalysis

import (
	"testing"

	"mhmgo/internal/histo"
	"mhmgo/internal/pgas"
	"mhmgo/internal/seq"
)

// TestWireSizes pins the observation and heavy-hitter wire sizes against the
// reflective lower bound.
func TestWireSizes(t *testing.T) {
	km, _ := seq.KmerFromBytes([]byte("ACGTTGCAAGCTTACGGATCC"), 21)
	o := Observation{Kmer: km, Left: 1, Right: 2, HasLeft: true, HasRight: true, WasRC: true}
	if min := pgas.WireSizeOf(o); observationWireSize < min {
		t.Errorf("observationWireSize = %d < encoded size %d", observationWireSize, min)
	}
	it := histo.Item[seq.Kmer]{Key: km, Count: 1 << 40}
	if min := pgas.WireSizeOf(it); heavyHitterWireSize < min {
		t.Errorf("heavyHitterWireSize = %d < encoded size %d", heavyHitterWireSize, min)
	}
}
