package kmeranalysis

import (
	"math/rand"
	"testing"

	"mhmgo/internal/seq"
)

// randRead builds a read with occasional ambiguous bases and a quality
// string spanning the phred range around the default threshold.
func randRead(r *rand.Rand, n int, withN bool) seq.Read {
	s := make([]byte, n)
	q := make([]byte, n)
	for i := range s {
		s[i] = seq.BaseToChar(byte(r.Intn(4)))
		q[i] = byte(33 + r.Intn(40))
	}
	if withN && n > 0 {
		s[r.Intn(n)] = 'N'
	}
	return seq.Read{ID: "kernel", Seq: s, Qual: q}
}

// TestAppendObservationsMatchesByteLoop drives the rolling extraction and
// the historical byte-loop extraction over random reads — including reads
// with ambiguous bases, reads shorter than k, and reads without quality
// strings — and requires identical observation streams.
func TestAppendObservationsMatchesByteLoop(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	var codes []byte
	for trial := 0; trial < 1500; trial++ {
		opts := DefaultOptions(11 + r.Intn(40))
		read := randRead(r, r.Intn(220), trial%3 == 0)
		if trial%5 == 0 {
			read.Qual = nil
		}
		var got []Observation
		got, codes = AppendObservations(got, codes, read, opts)
		want := AppendObservationsByteLoop(nil, read, opts)
		if len(got) != len(want) {
			t.Fatalf("trial %d (k=%d, len=%d): %d observations, want %d",
				trial, opts.K, len(read.Seq), len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d (k=%d): observation %d = %+v, want %+v",
					trial, opts.K, i, got[i], want[i])
			}
		}
	}
}

// BenchmarkKernelKmerExtract measures observation extraction for one
// 150-base read per op. The rolling variant reuses the caller's observation
// and codes buffers and must be allocation-free once warm; the byte-loop
// baseline allocates a k-mer iterator per read and re-decodes every
// neighbour base from ASCII.
func BenchmarkKernelKmerExtract(b *testing.B) {
	r := rand.New(rand.NewSource(62))
	read := randRead(r, 150, false)
	opts := DefaultOptions(21)
	b.Run("packed", func(b *testing.B) {
		var dst []Observation
		var codes []byte
		dst, codes = AppendObservations(dst, codes, read, opts) // warm the buffers
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst, codes = AppendObservations(dst[:0], codes, read, opts)
		}
		b.StopTimer()
		allocs := testing.AllocsPerRun(100, func() {
			dst, codes = AppendObservations(dst[:0], codes, read, opts)
		})
		if allocs != 0 {
			b.Fatalf("rolling extraction with warm buffers: %v allocs/op, want 0", allocs)
		}
	})
	b.Run("ascii", func(b *testing.B) {
		var dst []Observation
		dst = AppendObservationsByteLoop(dst, read, opts)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst = AppendObservationsByteLoop(dst[:0], read, opts)
		}
	})
}
