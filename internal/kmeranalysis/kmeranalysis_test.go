package kmeranalysis

import (
	"strings"
	"testing"

	"mhmgo/internal/pgas"
	"mhmgo/internal/seq"
	"mhmgo/internal/sim"
)

// readsFromSequence converts one long sequence into overlapping error-free
// reads of the given length and step.
func readsFromSequence(s string, readLen, step int) []seq.Read {
	var reads []seq.Read
	for start := 0; start+readLen <= len(s); start += step {
		reads = append(reads, seq.Read{
			ID:  "r",
			Seq: []byte(s[start : start+readLen]),
		})
	}
	return reads
}

func splitReads(reads []seq.Read, rank, nranks int) []seq.Read {
	lo, hi := pgas.BlockRange(len(reads), nranks, rank)
	return reads[lo:hi]
}

func TestRunCountsKmersExactly(t *testing.T) {
	// A single sequence read with 3x coverage: every interior k-mer should be
	// counted three times and retained.
	genome := "ACGTTGCAAGCTTACGGATCCGTAAACTGGT"
	reads := readsFromSequence(strings.Repeat(genome, 1), len(genome), 1)
	reads = append(reads, reads[0].Clone(), reads[0].Clone())

	m := pgas.NewMachine(pgas.Config{Ranks: 2})
	opts := DefaultOptions(7)
	opts.UseBloom = false
	opts.MinCount = 2
	var results [2]Result
	m.Run(func(r *pgas.Rank) {
		results[r.ID()] = Run(r, splitReads(reads, r.ID(), 2), opts, nil)
	})
	res := results[0]
	// Expected counts: canonical occurrences in one genome copy times the
	// three copies of the read (palindromic regions legitimately count both
	// orientations).
	wantCounts := make(map[string]uint32)
	for _, km := range seq.CanonicalKmersOf([]byte(genome), 7) {
		wantCounts[km.String()] += 3
	}
	if res.DistinctKmers != len(wantCounts) {
		t.Errorf("DistinctKmers = %d, want %d", res.DistinctKmers, len(wantCounts))
	}
	snap := res.Counts.Snapshot()
	for km := range snap {
		want, ok := wantCounts[km.String()]
		if !ok {
			t.Errorf("unexpected k-mer %s", km.String())
			continue
		}
		if snap[km].Count != want {
			t.Errorf("k-mer %s count = %d, want %d", km.String(), snap[km].Count, want)
		}
	}
	if res.TotalKmers != int64(3*(len(genome)-7+1)) {
		t.Errorf("TotalKmers = %d", res.TotalKmers)
	}
}

func TestRunDropsSingletons(t *testing.T) {
	genome := "ACGTTGCAAGCTTACGGATCCGTAAACTGGTACCGTTAAGGCCTTAACCGGTT"
	// Two copies of the genome reads plus one error read seen only once.
	reads := readsFromSequence(genome, 25, 5)
	reads = append(reads, cloneAll(reads)...)
	errRead := seq.Read{ID: "err", Seq: []byte("TGCATAGGTCCAGCTTCAAGGACTG")}
	reads = append(reads, errRead)

	// Error-only singleton k-mers: appear exactly once in the error read and
	// never in the genome (canonically).
	genomeKmers := map[string]bool{}
	for _, km := range seq.CanonicalKmersOf([]byte(genome), 11) {
		genomeKmers[km.String()] = true
	}
	errCounts := map[string]int{}
	for _, km := range seq.CanonicalKmersOf(errRead.Seq, 11) {
		errCounts[km.String()]++
	}
	var errOnly []seq.Kmer
	for _, km := range seq.CanonicalKmersOf(errRead.Seq, 11) {
		s := km.String()
		if errCounts[s] == 1 && !genomeKmers[s] {
			errOnly = append(errOnly, km)
		}
	}
	if len(errOnly) == 0 {
		t.Fatal("test setup: no error-only singleton k-mers")
	}

	for _, useBloom := range []bool{false, true} {
		m := pgas.NewMachine(pgas.Config{Ranks: 4})
		opts := DefaultOptions(11)
		opts.UseBloom = useBloom
		opts.MinCount = 2
		var res Result
		m.Run(func(r *pgas.Rank) {
			got := Run(r, splitReads(reads, r.ID(), 4), opts, nil)
			if r.ID() == 0 {
				res = got
			}
		})
		for _, km := range errOnly {
			if _, ok := res.Counts.Lookup(km); ok {
				t.Errorf("useBloom=%v: singleton error k-mer %s was retained", useBloom, km.String())
			}
		}
		if res.DistinctKmers == 0 {
			t.Errorf("useBloom=%v: no k-mers retained", useBloom)
		}
	}
}

func cloneAll(reads []seq.Read) []seq.Read {
	out := make([]seq.Read, len(reads))
	for i, r := range reads {
		out[i] = r.Clone()
	}
	return out
}

func TestBloomReducesNoiseKmers(t *testing.T) {
	// With sequencing errors, the bloom prefilter should keep the retained
	// k-mer set essentially identical to the unfiltered run (both apply the
	// MinCount threshold) while never reporting fewer genuine k-mers.
	comm := sim.GenerateCommunity(sim.CommunityConfig{NumGenomes: 2, MeanGenomeLen: 5000, Seed: 5})
	reads := sim.SimulateReads(comm, sim.ReadConfig{ReadLen: 80, InsertSize: 200, ErrorRate: 0.02, Coverage: 12, Seed: 6})

	run := func(useBloom bool) Result {
		m := pgas.NewMachine(pgas.Config{Ranks: 4})
		opts := DefaultOptions(21)
		opts.UseBloom = useBloom
		var res Result
		m.Run(func(r *pgas.Rank) {
			got := Run(r, splitReads(reads, r.ID(), 4), opts, nil)
			if r.ID() == 0 {
				res = got
			}
		})
		return res
	}
	with := run(true)
	without := run(false)
	if with.DistinctKmers == 0 || without.DistinctKmers == 0 {
		t.Fatal("no k-mers retained")
	}
	ratio := float64(with.DistinctKmers) / float64(without.DistinctKmers)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("bloom filter changed retained k-mers too much: %d vs %d", with.DistinctKmers, without.DistinctKmers)
	}
}

func TestHeavyHitterDetection(t *testing.T) {
	// A k-mer embedded in a hugely abundant repeat should surface as a heavy
	// hitter candidate.
	repeat := "ACGTTGCAAGCTTACGGATCC"
	var reads []seq.Read
	for i := 0; i < 500; i++ {
		reads = append(reads, seq.Read{ID: "rep", Seq: []byte(repeat)})
	}
	// Background reads.
	comm := sim.GenerateCommunity(sim.CommunityConfig{NumGenomes: 1, MeanGenomeLen: 3000, Seed: 9})
	reads = append(reads, sim.SimulateReads(comm, sim.ReadConfig{ReadLen: 60, InsertSize: 150, ErrorRate: 0, Coverage: 3, Seed: 10})...)

	m := pgas.NewMachine(pgas.Config{Ranks: 3})
	opts := DefaultOptions(15)
	opts.HeavyHitterCapacity = 16
	var res Result
	m.Run(func(r *pgas.Rank) {
		got := Run(r, splitReads(reads, r.ID(), 3), opts, nil)
		if r.ID() == 0 {
			res = got
		}
	})
	if len(res.HeavyHitters) == 0 {
		t.Fatal("no heavy hitters reported")
	}
	top := res.HeavyHitters[0]
	if top.Count < 200 {
		t.Errorf("top heavy hitter count %d, want hundreds", top.Count)
	}
	// The top heavy hitter must be one of the repeat's k-mers.
	repeatKmers := map[string]bool{}
	for _, km := range seq.CanonicalKmersOf([]byte(repeat), 15) {
		repeatKmers[km.String()] = true
	}
	if !repeatKmers[top.Key.String()] {
		t.Errorf("top heavy hitter %s is not a repeat k-mer", top.Key.String())
	}
}

func TestExtensionsRecorded(t *testing.T) {
	// In an error-free high-coverage sequence, interior k-mers must have
	// unique extensions recorded on both sides.
	genome := "ACGTTGCAAGCTTACGGATCCGTAAACTGGT"
	var reads []seq.Read
	for i := 0; i < 5; i++ {
		reads = append(reads, seq.Read{ID: "g", Seq: []byte(genome)})
	}
	m := pgas.NewMachine(pgas.Config{Ranks: 2})
	opts := DefaultOptions(9)
	opts.UseBloom = false
	var res Result
	m.Run(func(r *pgas.Rank) {
		got := Run(r, splitReads(reads, r.ID(), 2), opts, nil)
		if r.ID() == 0 {
			res = got
		}
	})
	snap := res.Counts.Snapshot()
	interior := 0
	for _, kc := range snap {
		if kc.Left.Total() > 0 && kc.Right.Total() > 0 {
			interior++
			_, bestL, secondL := kc.Left.Best()
			if secondL != 0 {
				t.Errorf("error-free data should have unique left extensions, got %v", kc.Left)
			}
			if bestL == 0 {
				t.Error("interior k-mer with zero best extension count")
			}
		}
	}
	if interior == 0 {
		t.Fatal("no interior k-mers found")
	}
}

func TestQualityFilteringSkipsLowQualityExtensions(t *testing.T) {
	genome := "ACGTTGCAAGCTTACGGATCC"
	lowQual := make([]byte, len(genome))
	for i := range lowQual {
		lowQual[i] = '!' // phred 0
	}
	reads := []seq.Read{
		{ID: "a", Seq: []byte(genome), Qual: lowQual},
		{ID: "b", Seq: []byte(genome), Qual: lowQual},
	}
	m := pgas.NewMachine(pgas.Config{Ranks: 1})
	opts := DefaultOptions(9)
	opts.UseBloom = false
	opts.QualThreshold = 10
	var res Result
	m.Run(func(r *pgas.Rank) {
		res = Run(r, reads, opts, nil)
	})
	for _, kc := range res.Counts.Snapshot() {
		if kc.Left.Total() != 0 || kc.Right.Total() != 0 {
			t.Fatalf("low-quality extensions should be ignored, got %+v", kc)
		}
	}
}

func TestMergeContigKmers(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 2})
	counts := NewCountsMap(m)
	contig := []byte("ACGTTGCAAGCTTACGGATCCGTAAACTGG")
	m.Run(func(r *pgas.Rank) {
		var local [][]byte
		if r.ID() == 0 {
			local = [][]byte{contig}
		}
		MergeContigKmers(r, counts, local, 11, 3)
	})
	snap := counts.Snapshot()
	wantKmers := seq.CanonicalKmersOf(contig, 11)
	distinct := map[string]bool{}
	for _, km := range wantKmers {
		distinct[km.String()] = true
	}
	if len(snap) != len(distinct) {
		t.Fatalf("merged %d k-mers, want %d", len(snap), len(distinct))
	}
	for km, kc := range snap {
		if kc.Count < 3 {
			t.Errorf("contig k-mer %s count %d, want >= 3", km.String(), kc.Count)
		}
	}
	// Merging again on top of existing entries must not lose anything.
	m.Run(func(r *pgas.Rank) {
		var local [][]byte
		if r.ID() == 1 {
			local = [][]byte{contig}
		}
		MergeContigKmers(r, counts, local, 11, 3)
	})
	snap2 := counts.Snapshot()
	if len(snap2) != len(snap) {
		t.Errorf("re-merge changed distinct count: %d vs %d", len(snap2), len(snap))
	}
	for km, kc := range snap2 {
		if kc.Count < 6 {
			t.Errorf("re-merged k-mer %s count %d, want >= 6", km.String(), kc.Count)
		}
	}
	// Contigs shorter than k are ignored without error.
	m.Run(func(r *pgas.Rank) {
		MergeContigKmers(r, counts, [][]byte{[]byte("ACG")}, 11, 3)
	})
}

func TestUnaggregatedMatchesAggregatedContent(t *testing.T) {
	comm := sim.GenerateCommunity(sim.CommunityConfig{NumGenomes: 2, MeanGenomeLen: 3000, Seed: 12})
	reads := sim.SimulateReads(comm, sim.ReadConfig{ReadLen: 70, InsertSize: 180, ErrorRate: 0.005, Coverage: 8, Seed: 13})

	run := func(aggregate bool) (Result, float64) {
		m := pgas.NewMachine(pgas.Config{Ranks: 4, RanksPerNode: 1})
		opts := DefaultOptions(17)
		opts.Aggregate = aggregate
		opts.UseBloom = false
		var res Result
		r0 := m.Run(func(r *pgas.Rank) {
			got := Run(r, splitReads(reads, r.ID(), 4), opts, nil)
			if r.ID() == 0 {
				res = got
			}
		})
		return res, r0.SimSeconds
	}
	agg, aggTime := run(true)
	raw, rawTime := run(false)
	if agg.DistinctKmers != raw.DistinctKmers {
		t.Errorf("aggregation changed results: %d vs %d distinct k-mers", agg.DistinctKmers, raw.DistinctKmers)
	}
	if aggTime >= rawTime {
		t.Errorf("aggregated run (%v) should be faster than unaggregated (%v)", aggTime, rawTime)
	}
}
