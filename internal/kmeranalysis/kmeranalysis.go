// Package kmeranalysis implements the first stage of the MetaHipMer
// pipeline (Section II-B of the paper): parallel k-mer analysis.
//
// Input reads are split into overlapping k-mers; every k-mer occurrence is
// routed to its owner rank together with the bases observed immediately
// before and after it. Owners accumulate a distributed histogram of counts
// and extension observations ("Local Reads & Writes" phase on top of an
// aggregated all-to-all exchange), use a Bloom filter to keep erroneous
// singleton k-mers out of the hash table, and run a Misra–Gries heavy-hitter
// summary to identify the extremely abundant k-mers that metagenomes produce.
package kmeranalysis

import (
	"sort"

	"mhmgo/internal/bloom"
	"mhmgo/internal/dht"
	"mhmgo/internal/histo"
	"mhmgo/internal/pgas"
	"mhmgo/internal/seq"
)

// Options controls a k-mer analysis pass.
type Options struct {
	// K is the k-mer length (must be <= seq.MaxK).
	K int
	// MinCount is the minimum number of occurrences (epsilon in the paper,
	// typically 2 or 3) for a k-mer to be retained.
	MinCount uint32
	// UseBloom enables the Bloom-filter prefilter that keeps k-mers seen
	// only once out of the counting table.
	UseBloom bool
	// BloomFPRate is the target false positive rate of the prefilter.
	BloomFPRate float64
	// HeavyHitterCapacity is the number of Misra–Gries candidate slots per
	// rank; 0 disables heavy-hitter tracking.
	HeavyHitterCapacity int
	// BatchSize is the per-destination aggregation batch size; Aggregate
	// false disables batching (one message per k-mer, for ablations).
	BatchSize int
	Aggregate bool
	// StreamChunk bounds how many observations a rank routes per exchange
	// round: the observation stream is processed in passes (as the real
	// system does for memory), so no rank ever materializes its full
	// inbound observation stream at once. 0 selects the default.
	StreamChunk int
	// QualThreshold ignores extension observations whose base quality is
	// below this Phred score (0 disables quality filtering).
	QualThreshold int
	// TableStripes is the number of lock stripes per rank partition of the
	// counts table (rounded up to a power of two); 0 selects
	// dht.DefaultStripes. Stripe count 1 reproduces the historical
	// one-lock-per-rank table for contention ablations.
	TableStripes int
}

// DefaultOptions returns the options used by the pipeline.
func DefaultOptions(k int) Options {
	return Options{
		K:                   k,
		MinCount:            2,
		UseBloom:            true,
		BloomFPRate:         0.01,
		HeavyHitterCapacity: 64,
		BatchSize:           1024,
		Aggregate:           true,
		StreamChunk:         1024,
		QualThreshold:       5,
	}
}

// Result is the outcome of a k-mer analysis pass.
type Result struct {
	// Counts maps each retained canonical k-mer to its count and extension
	// observations.
	Counts *dht.Map[seq.Kmer, seq.KmerCount]
	// HeavyHitters lists the most frequent k-mers discovered by the
	// streaming summary (merged across ranks), most frequent first.
	HeavyHitters []histo.Item[seq.Kmer]
	// TotalKmers is the total number of k-mer occurrences processed.
	TotalKmers int64
	// DistinctKmers is the number of distinct canonical k-mers retained.
	DistinctKmers int
}

// Observation is one k-mer occurrence shipped to its owner rank. It is
// exported (with AppendObservations) for the repository-level per-kernel
// benchmarks; the pipeline produces and consumes it internally.
type Observation struct {
	Kmer     seq.Kmer
	Left     byte
	Right    byte
	HasLeft  bool
	HasRight bool
	WasRC    bool
}

// observationWireSize is the wire bytes of one routed observation: the
// packed k-mer (two words plus k), the two extension bases and three flags.
const observationWireSize = 22

// heavyHitterWireSize is the wire bytes of one heavy-hitter summary entry:
// the packed k-mer (two words plus k) and its count.
const heavyHitterWireSize = 25

// kmerHash adapts seq.Kmer.Hash for the dht package.
func kmerHash(k seq.Kmer) uint64 { return k.Hash() }

// NewCountsMap creates the distributed k-mer counts table.
func NewCountsMap(m *pgas.Machine, opts ...dht.Option) *dht.Map[seq.Kmer, seq.KmerCount] {
	return dht.NewMap[seq.Kmer, seq.KmerCount](m, kmerHash, 40, opts...)
}

// Run performs k-mer analysis over the calling rank's block of reads. It is
// a collective operation; every rank must call it with its own reads. The
// returned Result is identical on every rank (the Counts map is shared; the
// scalar fields are all-reduced).
func Run(r *pgas.Rank, reads []seq.Read, opts Options, counts *dht.Map[seq.Kmer, seq.KmerCount]) Result {
	if opts.K <= 0 || opts.K > seq.MaxK {
		opts.K = 31
	}
	if opts.MinCount == 0 {
		opts.MinCount = 2
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 1024
	}
	if counts == nil {
		counts = dht.NewMapCollective[seq.Kmer, seq.KmerCount](r, kmerHash, 40,
			dht.WithStripes(opts.TableStripes))
	}

	// Phase 1: extract observations from local reads and route them to the
	// owners of their canonical k-mers with one aggregated exchange.
	var local []Observation
	var codes []byte
	var totalLocal int64
	var hh *histo.HeavyHitters[seq.Kmer]
	if opts.HeavyHitterCapacity > 0 {
		hh = histo.NewHeavyHitters[seq.Kmer](opts.HeavyHitterCapacity)
	}
	for _, read := range reads {
		// Append-style extraction grows one per-rank buffer instead of
		// allocating (and then copying) a fresh observation slice per read,
		// and reuses one codes scratch across the whole read set.
		start := len(local)
		local, codes = AppendObservations(local, codes, read, opts)
		obs := local[start:]
		totalLocal += int64(len(obs))
		if hh != nil {
			for _, o := range obs {
				hh.Add(o.Kmer, 1)
			}
		}
		r.Compute(float64(len(read.Seq)))
	}

	// Phases 1b+2, streamed: the observations are routed to their owners and
	// folded into the purely local table (use case 4) in bounded chunks —
	// every rank participates in the same number of exchange rounds, and
	// each round's inbound payload is released once folded, so no rank ever
	// materializes its full observation stream.
	// The Bloom prefilter is sized by the rank's expected INBOUND stream
	// (the global observation count over the ranks): after read
	// localization the outbound counts are skewed, but the k-mer hash keeps
	// the inbound side balanced, and an undersized filter would leak
	// erroneous singletons into the table.
	totalObs := pgas.AllReduce(r, totalLocal, pgas.ReduceSum)
	var filter *bloom.Filter
	if opts.UseBloom {
		expected := uint64(totalObs) / uint64(r.NRanks())
		if expected < 1024 {
			expected = 1024
		}
		fp := opts.BloomFPRate
		if fp <= 0 {
			fp = 0.01
		}
		filter = bloom.NewWithEstimates(expected, fp)
	}
	chunk := opts.StreamChunk
	if chunk <= 0 {
		chunk = 4096
	}
	rounds := pgas.AllReduce(r, (len(local)+chunk-1)/chunk, pgas.ReduceMax)
	for ci := 0; ci < rounds; ci++ {
		lo := min(ci*chunk, len(local))
		hi := min(lo+chunk, len(local))
		part := local[lo:hi]
		if !opts.Aggregate {
			// Unaggregated ablation: each observation is charged as its own
			// message, then routed the same way (the data movement is
			// identical, only the message count differs).
			for _, o := range part {
				dest := counts.Owner(o.Kmer)
				if dest != r.ID() {
					r.ChargeSend(dest, observationWireSize, 1)
				}
			}
		}
		routed := dht.Route(r, part, func(o Observation) int { return counts.Owner(o.Kmer) }, observationWireSize)
		for _, o := range routed {
			insert := true
			bonus := uint32(0)
			if filter != nil {
				h := o.Kmer.Hash()
				if _, exists := counts.Get(r, o.Kmer); !exists {
					if !filter.TestAndAdd(h) {
						// First sighting: remember it in the filter only.
						insert = false
					} else {
						// Second sighting: credit the occurrence the filter absorbed.
						bonus = 1
					}
				}
			}
			if !insert {
				continue
			}
			o := o
			counts.UpdateLocal(r, o.Kmer, func(cur seq.KmerCount, found bool) seq.KmerCount {
				if !found {
					cur = seq.KmerCount{Kmer: o.Kmer}
					cur.Count += bonus
				}
				cur.Observe(o.Left, o.Right, o.HasLeft, o.HasRight, o.WasRC)
				return cur
			})
		}
		// This round's observations are folded into the counts table; the
		// transient exchange payload is no longer resident.
		r.ReleaseResident(len(routed) * observationWireSize)
	}
	r.Barrier()

	// Phase 3: drop k-mers below the minimum count from the local shard.
	var toDelete []seq.Kmer
	counts.ForEachLocal(r, func(km seq.Kmer, kc seq.KmerCount) {
		if kc.Count < opts.MinCount {
			toDelete = append(toDelete, km)
		}
	})
	for _, km := range toDelete {
		counts.Delete(r, km)
	}
	r.Barrier()

	// Phase 4: merge scalar statistics and heavy hitters across ranks.
	res := Result{Counts: counts}
	res.TotalKmers = totalObs
	res.DistinctKmers = pgas.AllReduce(r, counts.LocalLen(r.ID()), pgas.ReduceSum)
	if hh != nil {
		// Misra-Gries summaries merge associatively, so the per-rank
		// summaries are combined with a tree reduction (log2 P rounds of one
		// capacity-bounded summary each) instead of gathering P*capacity
		// candidates onto every rank — this stage used to be the last
		// gather-to-all in the pipeline. The contributions are sorted
		// deterministically (count, then k-mer) so the fold — and with it
		// the merged candidate set when evictions tie — is identical run to
		// run.
		items := hh.Items()
		sort.Slice(items, func(i, j int) bool {
			if items[i].Count != items[j].Count {
				return items[i].Count > items[j].Count
			}
			return items[i].Key.Less(items[j].Key)
		})
		res.HeavyHitters = pgas.ReduceAll(r, items, opts.HeavyHitterCapacity*heavyHitterWireSize,
			func(contribs [][]histo.Item[seq.Kmer]) []histo.Item[seq.Kmer] {
				merged := histo.NewHeavyHitters[seq.Kmer](opts.HeavyHitterCapacity)
				for _, batch := range contribs {
					for _, it := range batch {
						merged.Add(it.Key, it.Count)
					}
				}
				out := merged.Items()
				sort.Slice(out, func(i, j int) bool {
					if out[i].Count != out[j].Count {
						return out[i].Count > out[j].Count
					}
					return out[i].Key.Less(out[j].Key)
				})
				return out
			})
	}
	r.Barrier()
	return res
}

// AppendObservations splits one read into canonical k-mer observations and
// appends them to dst, returning the extended slices. The append form (same
// discipline as seq.AppendCanonicalKmers) lets the caller accumulate a whole
// read set into one per-rank buffer with no per-read allocation; codes is a
// reusable scratch the read's bases are decoded into.
//
// The extraction rolls two packed windows: each base character is decoded
// to its 2-bit code exactly once into codes, the forward k-mer is
// maintained by shifting that code in (seq.Kmer.AppendBase) while its
// reverse complement is maintained by prepending the complement code — so
// canonicalization is a 128-bit compare instead of the O(k)
// ReverseComplement rebuild Kmer.Canonical performs per window. The
// byte-loop version this replaces additionally re-decoded every neighbour
// character from ASCII.
func AppendObservations(dst []Observation, codes []byte, read seq.Read, opts Options) ([]Observation, []byte) {
	k := opts.K
	n := len(read.Seq)
	if n < k {
		return dst, codes
	}
	if cap(codes) < n {
		codes = make([]byte, n)
	} else {
		codes = codes[:n]
	}
	for i, c := range read.Seq {
		code, valid := seq.CharToBase(c)
		if !valid {
			code = 0xFF
		}
		codes[i] = code
	}
	out := dst
	km := seq.Kmer{K: uint8(k)}
	rcKm := seq.Kmer{K: uint8(k)}
	valid := 0
	for i := 0; i < n; i++ {
		code := codes[i]
		if code == 0xFF {
			valid = 0
			continue
		}
		km = km.AppendBase(code)
		rcKm = rcKm.PrependBase(seq.ComplementCode(code))
		valid++
		if valid < k {
			continue
		}
		off := i - k + 1
		var o Observation
		if rcKm.Less(km) {
			o.Kmer, o.WasRC = rcKm, true
		} else {
			o.Kmer, o.WasRC = km, false
		}
		if off > 0 {
			if lc := codes[off-1]; lc != 0xFF && qualOK(read, off-1, opts.QualThreshold) {
				o.Left = lc
				o.HasLeft = true
			}
		}
		if i+1 < n {
			if rc := codes[i+1]; rc != 0xFF && qualOK(read, i+1, opts.QualThreshold) {
				o.Right = rc
				o.HasRight = true
			}
		}
		out = append(out, o)
	}
	return out, codes
}

// AppendObservationsByteLoop is the historical extraction — a fresh k-mer
// iterator per read and an ASCII decode per neighbour lookup — kept as the
// baseline AppendObservations is benchmarked and equivalence-tested against.
func AppendObservationsByteLoop(dst []Observation, read seq.Read, opts Options) []Observation {
	k := opts.K
	if len(read.Seq) < k {
		return dst
	}
	out := dst
	it := seq.NewKmerIter(read.Seq, k)
	for {
		km, off, ok := it.Next()
		if !ok {
			break
		}
		var o Observation
		canon, wasRC := km.Canonical()
		o.Kmer = canon
		o.WasRC = wasRC
		if off > 0 {
			if code, valid := seq.CharToBase(read.Seq[off-1]); valid && qualOK(read, off-1, opts.QualThreshold) {
				o.Left = code
				o.HasLeft = true
			}
		}
		if off+k < len(read.Seq) {
			if code, valid := seq.CharToBase(read.Seq[off+k]); valid && qualOK(read, off+k, opts.QualThreshold) {
				o.Right = code
				o.HasRight = true
			}
		}
		out = append(out, o)
	}
	return out
}

// qualOK reports whether the base at position i passes the quality filter.
func qualOK(read seq.Read, i int, threshold int) bool {
	if threshold <= 0 || len(read.Qual) <= i {
		return true
	}
	return int(read.Qual[i])-33 >= threshold
}

// MergeContigKmers implements the k-mer set merge of Section II-H: the
// (k)-mers of the previous iteration's contigs are inserted into the counts
// table as error-free k-mers with unique high-quality extensions, using the
// aggregated update-only phase. pseudoCount is the count credited to each
// contig k-mer (it only needs to clear MinCount).
func MergeContigKmers(r *pgas.Rank, counts *dht.Map[seq.Kmer, seq.KmerCount], contigSeqs [][]byte, k int, pseudoCount uint32) {
	if pseudoCount == 0 {
		pseudoCount = 2
	}
	combine := func(existing, update seq.KmerCount, found bool) seq.KmerCount {
		if !found {
			return update
		}
		// The contig k-mer only reinforces what is already there.
		existing.Count += update.Count
		existing.Left.Merge(update.Left)
		existing.Right.Merge(update.Right)
		return existing
	}
	u := counts.NewUpdater(r, combine, 1024, true)
	for _, cs := range contigSeqs {
		if len(cs) < k {
			continue
		}
		it := seq.NewKmerIter(cs, k)
		for {
			km, off, ok := it.Next()
			if !ok {
				break
			}
			canon, wasRC := km.Canonical()
			kc := seq.KmerCount{Kmer: canon, Count: pseudoCount}
			var left, right byte
			var hasLeft, hasRight bool
			if off > 0 {
				if code, valid := seq.CharToBase(cs[off-1]); valid {
					left, hasLeft = code, true
				}
			}
			if off+k < len(cs) {
				if code, valid := seq.CharToBase(cs[off+k]); valid {
					right, hasRight = code, true
				}
			}
			// Credit the extensions with the pseudo count so they dominate
			// noise when classified.
			if wasRC {
				hasLeft, hasRight = hasRight, hasLeft
				left, right = seq.ComplementCode(right), seq.ComplementCode(left)
			}
			if hasLeft {
				kc.Left.AddN(left, pseudoCount)
			}
			if hasRight {
				kc.Right.AddN(right, pseudoCount)
			}
			u.Update(canon, kc)
		}
		r.Compute(float64(len(cs)))
	}
	u.Flush()
	r.Barrier()
}
