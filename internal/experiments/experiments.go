// Package experiments regenerates every table and figure of the paper's
// evaluation section on the simulated substrate. Each experiment is a
// function that runs the necessary assemblies and returns a printable
// result; cmd/mhmbench and the repository-level benchmarks are thin wrappers
// around these functions.
//
// The datasets are scaled-down analogues of the paper's (see DESIGN.md);
// absolute numbers therefore differ from the paper, but the qualitative
// shapes — which assembler wins which metric, how efficiency degrades with
// scale, where the optimizations matter — are the reproduction targets and
// are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"mhmgo/internal/aligner"
	"mhmgo/internal/baseline"
	"mhmgo/internal/core"
	"mhmgo/internal/dbg"
	"mhmgo/internal/dist"
	"mhmgo/internal/eval"
	"mhmgo/internal/hmm"
	"mhmgo/internal/pgas"
	"mhmgo/internal/seq"
	"mhmgo/internal/sim"
)

// Scale controls how large the experiment datasets are. The default Scale
// keeps every experiment in the seconds range on a laptop.
type Scale struct {
	// Genomes is the community size for the quality experiments.
	Genomes int
	// GenomeLen is the mean genome length.
	GenomeLen int
	// Coverage is the mean read coverage.
	Coverage float64
	// Ranks/RanksPerNode describe the default virtual machine.
	Ranks        int
	RanksPerNode int
	// NodeCounts is the virtual node sweep for the scaling figures.
	NodeCounts []int
	// Seed makes the experiments deterministic.
	Seed int64
}

// DefaultScale returns the default experiment scale. The node sweep starts
// at 2 nodes because the paper's baselines are themselves multi-node runs
// (32 nodes for the strong-scaling study): comparing a single node (no
// network at all) against multi-node runs would conflate parallel speedup
// with the appearance of off-node traffic.
func DefaultScale() Scale {
	return Scale{
		Genomes:      24,
		GenomeLen:    3000,
		Coverage:     12,
		Ranks:        8,
		RanksPerNode: 4,
		NodeCounts:   []int{2, 4, 8, 16},
		Seed:         1,
	}
}

// QuickScale returns a minimal scale for smoke tests and benchmarks.
func QuickScale() Scale {
	return Scale{
		Genomes:      5,
		GenomeLen:    2500,
		Coverage:     12,
		Ranks:        4,
		RanksPerNode: 2,
		NodeCounts:   []int{2, 4},
		Seed:         1,
	}
}

func (s Scale) withDefaults() Scale {
	d := DefaultScale()
	if s.Genomes <= 0 {
		s.Genomes = d.Genomes
	}
	if s.GenomeLen <= 0 {
		s.GenomeLen = d.GenomeLen
	}
	if s.Coverage <= 0 {
		s.Coverage = d.Coverage
	}
	if s.Ranks <= 0 {
		s.Ranks = d.Ranks
	}
	if s.RanksPerNode <= 0 {
		s.RanksPerNode = d.RanksPerNode
	}
	if len(s.NodeCounts) == 0 {
		s.NodeCounts = d.NodeCounts
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// mg64Dataset builds the MG64-like community and reads for the quality
// experiments.
func mg64Dataset(s Scale) (*sim.Community, []seq.Read, *hmm.Profile) {
	comm := sim.GenerateCommunity(sim.CommunityConfig{
		NumGenomes:     s.Genomes,
		MeanGenomeLen:  s.GenomeLen,
		LenVariation:   0.4,
		AbundanceSigma: 1.2,
		RRNALen:        250,
		RRNACopies:     1,
		RRNADivergence: 0.03,
		RepeatLen:      200,
		RepeatCopies:   minInt(6, s.Genomes/4),
		StrainFraction: 0.08,
		StrainSNPRate:  0.01,
		Seed:           s.Seed,
	})
	reads := sim.SimulateReads(comm, sim.ReadConfig{
		ReadLen:    100,
		InsertSize: 280,
		InsertStd:  25,
		ErrorRate:  0.01,
		Coverage:   s.Coverage,
		Seed:       s.Seed + 1,
	})
	profile := hmm.BuildProfile([][]byte{comm.RRNAMarker}, 0.9)
	return comm, reads, profile
}

// wetlandsDataset builds the Wetlands-like dataset used by the scaling
// experiments: a skewed community where some genomes end up at low coverage.
func wetlandsDataset(s Scale, organisms int, coverage float64, seed int64) (*sim.Community, []seq.Read) {
	comm := sim.WetlandsLikeCommunity(organisms, float64(s.GenomeLen)/8000.0, seed)
	reads := sim.SimulateReads(comm, sim.ReadConfig{
		ReadLen:    100,
		InsertSize: 280,
		InsertStd:  25,
		ErrorRate:  0.01,
		Coverage:   coverage,
		Seed:       seed + 1,
	})
	return comm, reads
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// Table I: comparative assembly quality on the MG64-like dataset.
// ---------------------------------------------------------------------------

// Table1Result holds one evaluation report per assembler.
type Table1Result struct {
	Thresholds []int
	Reports    []eval.Report
}

// Format renders the result like the paper's Table I.
func (t Table1Result) Format() string {
	return "Table I — comparative assembly quality (MG64-like synthetic community)\n" +
		eval.FormatTable(t.Reports, t.Thresholds)
}

// Table1Quality runs every comparison assembler on the MG64-like dataset and
// evaluates the assemblies against the known references.
func Table1Quality(s Scale) Table1Result {
	s = s.withDefaults()
	comm, reads, profile := mg64Dataset(s)
	eopts := eval.DefaultOptions()
	eopts.LengthThresholds = []int{s.GenomeLen / 4, s.GenomeLen / 2, s.GenomeLen}
	eopts.RRNAProfile = profile

	var out Table1Result
	out.Thresholds = eopts.LengthThresholds
	for _, a := range baseline.All() {
		res, err := baseline.Run(a, reads, baseline.RunOptions{
			Ranks:        s.Ranks,
			RanksPerNode: s.RanksPerNode,
			InsertSize:   280,
			RRNAProfile:  profile,
		})
		if err != nil {
			continue
		}
		rep := eval.Evaluate(a.Name, res.FinalSequences(), comm, eopts)
		rep.RuntimeSimSecs = res.SimSeconds
		rep.RuntimeWallSecs = res.WallSeconds
		out.Reports = append(out.Reports, rep)
	}
	return out
}

// ---------------------------------------------------------------------------
// Figure 3: impact of read localization on k-mer analysis and alignment.
// ---------------------------------------------------------------------------

// Fig3Row is one node count of the read-localization study.
type Fig3Row struct {
	Nodes            int
	KmerAnalysisOn   float64
	KmerAnalysisOff  float64
	AlignmentOn      float64
	AlignmentOff     float64
	AlignmentSpeedup float64
}

// Fig3Result is the full read-localization study.
type Fig3Result struct {
	Rows []Fig3Row
}

// Format renders the study as a table.
func (f Fig3Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 3 — impact of read localization (simulated seconds per stage)\n")
	b.WriteString("Nodes  kmer(on)   kmer(off)  align(on)  align(off)  align speedup\n")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-6d %-10.4f %-10.4f %-10.4f %-11.4f %.2fx\n",
			r.Nodes, r.KmerAnalysisOn, r.KmerAnalysisOff, r.AlignmentOn, r.AlignmentOff, r.AlignmentSpeedup)
	}
	return b.String()
}

// Fig3ReadLocalization measures the k-mer analysis and alignment stage times
// with and without the read-localization optimization across node counts.
func Fig3ReadLocalization(s Scale) Fig3Result {
	s = s.withDefaults()
	_, reads, profile := mg64Dataset(s)
	var out Fig3Result
	for _, nodes := range s.NodeCounts {
		ranks := nodes * s.RanksPerNode
		run := func(localize bool) map[string]float64 {
			cfg := core.DefaultConfig(ranks)
			cfg.RanksPerNode = s.RanksPerNode
			cfg.ReadLocalization = localize
			cfg.RRNAProfile = profile
			cfg.Scaffolding = false
			res, err := core.Assemble(reads, cfg)
			if err != nil {
				return nil
			}
			stages := map[string]float64{}
			for _, st := range res.Stages {
				stages[st.Name] = st.Seconds
			}
			return stages
		}
		on := run(true)
		off := run(false)
		if on == nil || off == nil {
			continue
		}
		row := Fig3Row{
			Nodes:           nodes,
			KmerAnalysisOn:  on[core.StageKmerAnalysis],
			KmerAnalysisOff: off[core.StageKmerAnalysis],
			AlignmentOn:     on[core.StageAlignment],
			AlignmentOff:    off[core.StageAlignment],
		}
		if row.AlignmentOn > 0 {
			row.AlignmentSpeedup = row.AlignmentOff / row.AlignmentOn
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// ---------------------------------------------------------------------------
// Figures 4 and 5: strong scaling and per-stage breakdown on the
// Wetlands-like subset.
// ---------------------------------------------------------------------------

// StrongScalingRow is one node count of the strong-scaling study.
type StrongScalingRow struct {
	Nodes      int
	Ranks      int
	SimSeconds float64
	Speedup    float64
	Efficiency float64
	Stages     []pgas.StageTime
}

// StrongScalingResult is the Figure 4 / Figure 5 study.
type StrongScalingResult struct {
	Rows []StrongScalingRow
}

// Format renders Figure 4 (scaling) and Figure 5 (stage fractions).
func (r StrongScalingResult) Format() string {
	var b strings.Builder
	b.WriteString("Figure 4 — strong scaling on the Wetlands-like subset\n")
	b.WriteString("Nodes  Ranks  SimSeconds  Speedup  Efficiency\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-6d %-6d %-11.4f %-8.2f %.2f\n",
			row.Nodes, row.Ranks, row.SimSeconds, row.Speedup, row.Efficiency)
	}
	b.WriteString("\nFigure 5 — runtime fraction per stage\n")
	for _, row := range r.Rows {
		total := 0.0
		for _, st := range row.Stages {
			total += st.Seconds
		}
		fmt.Fprintf(&b, "nodes=%d:", row.Nodes)
		for _, st := range pgas.SortStages(row.Stages) {
			if total > 0 {
				fmt.Fprintf(&b, " %s=%.0f%%", st.Name, 100*st.Seconds/total)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig4StrongScaling runs the pipeline on a fixed Wetlands-like dataset over
// a sweep of virtual node counts.
func Fig4StrongScaling(s Scale) StrongScalingResult {
	s = s.withDefaults()
	_, reads := wetlandsDataset(s, s.Genomes*2, s.Coverage, s.Seed+10)
	var out StrongScalingResult
	for _, nodes := range s.NodeCounts {
		ranks := nodes * s.RanksPerNode
		cfg := core.DefaultConfig(ranks)
		cfg.RanksPerNode = s.RanksPerNode
		res, err := core.Assemble(reads, cfg)
		if err != nil {
			continue
		}
		out.Rows = append(out.Rows, StrongScalingRow{
			Nodes:      nodes,
			Ranks:      ranks,
			SimSeconds: res.SimSeconds,
			Stages:     res.Stages,
		})
	}
	if len(out.Rows) > 0 {
		base := out.Rows[0]
		for i := range out.Rows {
			r := &out.Rows[i]
			if r.SimSeconds > 0 {
				r.Speedup = base.SimSeconds / r.SimSeconds
				r.Efficiency = r.Speedup * float64(base.Nodes) / float64(r.Nodes)
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Ray Meta comparison (Section IV-C text).
// ---------------------------------------------------------------------------

// RayMetaRow is one node count of the Ray Meta comparison.
type RayMetaRow struct {
	Nodes          int
	MetaHipMerSecs float64
	RayMetaSecs    float64
	SpeedupOverRay float64
}

// RayMetaResult compares MetaHipMer and the Ray Meta proxy at two scales.
type RayMetaResult struct {
	Rows          []RayMetaRow
	MetaHipMerEff float64
	RayMetaEff    float64
}

// Format renders the comparison.
func (r RayMetaResult) Format() string {
	var b strings.Builder
	b.WriteString("Ray Meta comparison — MG64-like dataset\n")
	b.WriteString("Nodes  MetaHipMer(s)  RayMeta(s)  MetaHipMer speedup over RayMeta\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-6d %-14.4f %-11.4f %.1fx\n", row.Nodes, row.MetaHipMerSecs, row.RayMetaSecs, row.SpeedupOverRay)
	}
	fmt.Fprintf(&b, "parallel efficiency (small->large): MetaHipMer %.0f%%, RayMeta %.0f%%\n",
		100*r.MetaHipMerEff, 100*r.RayMetaEff)
	return b.String()
}

// RayMetaComparison reproduces the paper's 16-vs-64-node comparison (scaled
// down) between MetaHipMer and the Ray Meta proxy.
func RayMetaComparison(s Scale) RayMetaResult {
	s = s.withDefaults()
	_, reads, profile := mg64Dataset(s)
	nodes := []int{s.NodeCounts[0], s.NodeCounts[len(s.NodeCounts)-1]}
	if nodes[0] == nodes[1] && nodes[0] > 1 {
		nodes[0] = nodes[1] / 2
	}
	var out RayMetaResult
	for _, n := range nodes {
		ranks := n * s.RanksPerNode
		opts := baseline.RunOptions{Ranks: ranks, RanksPerNode: s.RanksPerNode, InsertSize: 280, RRNAProfile: profile}
		mhm, err1 := baseline.Run(baseline.MetaHipMer(), reads, opts)
		ray, err2 := baseline.Run(baseline.RayMeta(), reads, opts)
		if err1 != nil || err2 != nil {
			continue
		}
		row := RayMetaRow{Nodes: n, MetaHipMerSecs: mhm.SimSeconds, RayMetaSecs: ray.SimSeconds}
		if row.MetaHipMerSecs > 0 {
			row.SpeedupOverRay = row.RayMetaSecs / row.MetaHipMerSecs
		}
		out.Rows = append(out.Rows, row)
	}
	if len(out.Rows) == 2 {
		scale := float64(out.Rows[1].Nodes) / float64(out.Rows[0].Nodes)
		if out.Rows[1].MetaHipMerSecs > 0 {
			out.MetaHipMerEff = out.Rows[0].MetaHipMerSecs / out.Rows[1].MetaHipMerSecs / scale
		}
		if out.Rows[1].RayMetaSecs > 0 {
			out.RayMetaEff = out.Rows[0].RayMetaSecs / out.Rows[1].RayMetaSecs / scale
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Table II: weak scaling with the MGSim series.
// ---------------------------------------------------------------------------

// WeakScalingRow is one point of the weak-scaling series.
type WeakScalingRow struct {
	Nodes          int
	Taxa           int
	ReadPairs      int
	SimSeconds     float64
	KBasesPerSecPN float64
}

// WeakScalingResult is the Table II reproduction.
type WeakScalingResult struct {
	Rows       []WeakScalingRow
	Efficiency float64
}

// Format renders Table II.
func (w WeakScalingResult) Format() string {
	var b strings.Builder
	b.WriteString("Table II — weak scaling (MGSim series)\n")
	b.WriteString("Nodes  Taxa  ReadPairs  SimSeconds  KBases/sec/node\n")
	for _, r := range w.Rows {
		fmt.Fprintf(&b, "%-6d %-5d %-10d %-11.4f %.2f\n", r.Nodes, r.Taxa, r.ReadPairs, r.SimSeconds, r.KBasesPerSecPN)
	}
	fmt.Fprintf(&b, "weak scaling efficiency (first->last): %.0f%%\n", 100*w.Efficiency)
	return b.String()
}

// Table2WeakScaling grows the dataset proportionally with the node count and
// reports the assembly rate per node, as in the paper's Table II.
func Table2WeakScaling(s Scale) WeakScalingResult {
	s = s.withDefaults()
	// Read pairs per taxon chosen so that coverage stays constant as the
	// community grows with the node count (the definition of weak scaling).
	pairsPerTaxon := s.GenomeLen * int(s.Coverage) / 200
	series := sim.WeakScalingSeries(128/maxInt(1, s.NodeCounts[0]), pairsPerTaxon)
	var out WeakScalingResult
	for _, p := range series {
		comm := sim.GenerateCommunity(sim.CommunityConfig{
			NumGenomes:     p.Taxa,
			MeanGenomeLen:  s.GenomeLen,
			LenVariation:   0.3,
			AbundanceSigma: 1.0,
			RRNALen:        250,
			RRNADivergence: 0.03,
			StrainFraction: 0,
			Seed:           s.Seed + 20,
		})
		reads := sim.SimulateReads(comm, sim.ReadConfig{
			ReadLen: 100, InsertSize: 280, InsertStd: 25, ErrorRate: 0.01,
			TotalPairs: p.ReadPairs, Seed: s.Seed + 21,
		})
		ranks := p.Nodes * s.RanksPerNode
		cfg := core.DefaultConfig(ranks)
		cfg.RanksPerNode = s.RanksPerNode
		res, err := core.Assemble(reads, cfg)
		if err != nil {
			continue
		}
		assembledKBases := float64(res.ContigStats.TotalBases) / 1000.0
		row := WeakScalingRow{
			Nodes: p.Nodes, Taxa: p.Taxa, ReadPairs: len(reads) / 2,
			SimSeconds: res.SimSeconds,
		}
		if res.SimSeconds > 0 {
			row.KBasesPerSecPN = assembledKBases / res.SimSeconds / float64(p.Nodes)
		}
		out.Rows = append(out.Rows, row)
	}
	if len(out.Rows) > 1 && out.Rows[0].KBasesPerSecPN > 0 {
		out.Efficiency = out.Rows[len(out.Rows)-1].KBasesPerSecPN / out.Rows[0].KBasesPerSecPN
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// Grand challenge: full Wetlands-like assembly vs a subset of lanes.
// ---------------------------------------------------------------------------

// GrandChallengeResult compares assembling the full dataset against a subset.
type GrandChallengeResult struct {
	SubsetAssemblyBases int
	FullAssemblyBases   int
	LengthRatio         float64
	SubsetMapFraction   float64
	FullMapFraction     float64
}

// Format renders the grand-challenge comparison.
func (g GrandChallengeResult) Format() string {
	return fmt.Sprintf("Grand challenge — full vs subset assembly (Wetlands-like)\n"+
		"subset assembly: %d bases, %.1f%% of all reads map back\n"+
		"full assembly:   %d bases (%.1fx larger), %.1f%% of all reads map back\n",
		g.SubsetAssemblyBases, 100*g.SubsetMapFraction,
		g.FullAssemblyBases, g.LengthRatio, 100*g.FullMapFraction)
}

// GrandChallengeFullVsSubset assembles a skewed community from a subset of
// the reads (a few "lanes") and from the full read set, then measures how
// much larger the full assembly is and what fraction of all reads map back
// to each assembly — the paper's 18x / 42%-vs-7.6% comparison.
func GrandChallengeFullVsSubset(s Scale) GrandChallengeResult {
	s = s.withDefaults()
	// A very uneven community: with only a subset of the reads most genomes
	// are below the assembly coverage threshold.
	comm, fullReads := wetlandsDataset(s, s.Genomes*3, s.Coverage, s.Seed+30)
	subsetReads := fullReads[:len(fullReads)/7/2*2] // ~3 of 21 lanes

	cfg := core.DefaultConfig(s.Ranks)
	cfg.RanksPerNode = s.RanksPerNode
	var out GrandChallengeResult
	subRes, err1 := core.Assemble(subsetReads, cfg)
	fullRes, err2 := core.Assemble(fullReads, cfg)
	if err1 != nil || err2 != nil {
		return out
	}
	out.SubsetAssemblyBases = totalBases(subRes.FinalSequences())
	out.FullAssemblyBases = totalBases(fullRes.FinalSequences())
	if out.SubsetAssemblyBases > 0 {
		out.LengthRatio = float64(out.FullAssemblyBases) / float64(out.SubsetAssemblyBases)
	}
	out.SubsetMapFraction = mapBackFraction(fullReads, subRes, s)
	out.FullMapFraction = mapBackFraction(fullReads, fullRes, s)
	_ = comm
	return out
}

func totalBases(seqs [][]byte) int {
	n := 0
	for _, s := range seqs {
		n += len(s)
	}
	return n
}

// mapBackFraction measures the fraction of all reads that align to the
// assembly, using the distributed aligner on a small machine.
func mapBackFraction(reads []seq.Read, res *core.Result, s Scale) float64 {
	contigs := make([]dbg.Contig, 0, len(res.FinalSequences()))
	for i, sq := range res.FinalSequences() {
		contigs = append(contigs, dbg.Contig{ID: i, Seq: sq})
	}
	if len(contigs) == 0 {
		return 0
	}
	m := pgas.NewMachine(pgas.Config{Ranks: s.Ranks, RanksPerNode: s.RanksPerNode})
	var aligned int64
	m.Run(func(r *pgas.Rank) {
		opts := aligner.DefaultOptions(21)
		clo, chi := r.BlockRange(len(contigs))
		cs := dbg.DistributeContigs(r, contigs[clo:chi], dist.Distributed)
		idx := aligner.BuildIndex(r, cs, opts)
		lo, hi := r.PairBlockRange(len(reads))
		got, _ := aligner.AlignReads(r, idx, reads[lo:hi], lo, opts)
		total := pgas.AllReduce(r, int64(len(got)), pgas.ReduceSum)
		if r.ID() == 0 {
			aligned = total
		}
	})
	return float64(aligned) / float64(len(reads))
}

// ---------------------------------------------------------------------------
// Figure 6: per-genome NGA50, MetaHipMer vs MetaSPAdes.
// ---------------------------------------------------------------------------

// Fig6Row is one genome's NGA50 under both assemblers.
type Fig6Row struct {
	Genome          string
	MetaHipMerNGA50 int
	MetaSPAdesNGA50 int
}

// Fig6Result is the per-genome NGA50 comparison.
type Fig6Result struct {
	Rows []Fig6Row
}

// Format renders the comparison sorted by MetaHipMer NGA50.
func (f Fig6Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 6 — per-genome NGA50, MetaHipMer vs MetaSPAdes proxy\n")
	b.WriteString("Genome       MetaHipMer  MetaSPAdes\n")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-12s %-11d %d\n", r.Genome, r.MetaHipMerNGA50, r.MetaSPAdesNGA50)
	}
	return b.String()
}

// Fig6NGA50PerGenome evaluates MetaHipMer and the MetaSPAdes proxy per
// genome of the MG64-like community.
func Fig6NGA50PerGenome(s Scale) Fig6Result {
	s = s.withDefaults()
	comm, reads, profile := mg64Dataset(s)
	eopts := eval.DefaultOptions()
	run := func(a baseline.Assembler) map[string]int {
		res, err := baseline.Run(a, reads, baseline.RunOptions{
			Ranks: s.Ranks, RanksPerNode: s.RanksPerNode, InsertSize: 280, RRNAProfile: profile,
		})
		if err != nil {
			return nil
		}
		rep := eval.Evaluate(a.Name, res.FinalSequences(), comm, eopts)
		out := map[string]int{}
		for _, g := range rep.PerGenome {
			out[g.Name] = g.NGA50
		}
		return out
	}
	mhm := run(baseline.MetaHipMer())
	spades := run(baseline.MetaSPAdes())
	var out Fig6Result
	for _, g := range comm.Genomes {
		out.Rows = append(out.Rows, Fig6Row{Genome: g.Name, MetaHipMerNGA50: mhm[g.Name], MetaSPAdesNGA50: spades[g.Name]})
	}
	sort.Slice(out.Rows, func(i, j int) bool { return out.Rows[i].MetaHipMerNGA50 > out.Rows[j].MetaHipMerNGA50 })
	return out
}

// ---------------------------------------------------------------------------
// Ablation study over the design choices listed in DESIGN.md.
// ---------------------------------------------------------------------------

// AblationRow compares a metric with a feature on vs off.
type AblationRow struct {
	Feature string
	Metric  string
	On      float64
	Off     float64
}

// AblationResult is the ablation study.
type AblationResult struct {
	Rows []AblationRow
}

// Format renders the ablations.
func (a AblationResult) Format() string {
	var b strings.Builder
	b.WriteString("Ablations — effect of individual design choices\n")
	b.WriteString("Feature                     Metric                 On         Off\n")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%-27s %-22s %-10.4f %-10.4f\n", r.Feature, r.Metric, r.On, r.Off)
	}
	return b.String()
}

// Ablations toggles the major optimizations one at a time and reports their
// effect on simulated runtime (and genome fraction for the threshold rule).
func Ablations(s Scale) AblationResult {
	s = s.withDefaults()
	comm, reads, profile := mg64Dataset(s)
	eopts := eval.DefaultOptions()

	base := core.DefaultConfig(s.Ranks)
	base.RanksPerNode = s.RanksPerNode
	base.RRNAProfile = profile

	runTime := func(mod func(*core.Config)) float64 {
		cfg := base
		mod(&cfg)
		res, err := core.Assemble(reads, cfg)
		if err != nil {
			return 0
		}
		return res.SimSeconds
	}
	runFrac := func(mod func(*core.Config)) float64 {
		cfg := base
		mod(&cfg)
		res, err := core.Assemble(reads, cfg)
		if err != nil {
			return 0
		}
		return eval.Evaluate("abl", res.FinalSequences(), comm, eopts).GenomeFraction
	}

	var out AblationResult
	out.Rows = append(out.Rows, AblationRow{
		Feature: "message aggregation", Metric: "sim seconds",
		On:  runTime(func(c *core.Config) { c.Aggregate = true }),
		Off: runTime(func(c *core.Config) { c.Aggregate = false }),
	})
	out.Rows = append(out.Rows, AblationRow{
		Feature: "software cache", Metric: "sim seconds",
		On:  runTime(func(c *core.Config) { c.SoftwareCache = true }),
		Off: runTime(func(c *core.Config) { c.SoftwareCache = false }),
	})
	out.Rows = append(out.Rows, AblationRow{
		Feature: "read localization", Metric: "sim seconds",
		On:  runTime(func(c *core.Config) { c.ReadLocalization = true }),
		Off: runTime(func(c *core.Config) { c.ReadLocalization = false }),
	})
	out.Rows = append(out.Rows, AblationRow{
		Feature: "depth-dependent thq", Metric: "genome fraction",
		On:  runFrac(func(c *core.Config) { c.GlobalTHQ = 0 }),
		Off: runFrac(func(c *core.Config) { c.GlobalTHQ = 1 }),
	})
	out.Rows = append(out.Rows, AblationRow{
		Feature: "local assembly", Metric: "genome fraction",
		On:  runFrac(func(c *core.Config) { c.LocalAssembly = true }),
		Off: runFrac(func(c *core.Config) { c.LocalAssembly = false }),
	})
	return out
}
