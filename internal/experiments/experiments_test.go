package experiments

import (
	"strings"
	"testing"
)

// tinyScale keeps the experiment smoke tests fast.
func tinyScale() Scale {
	return Scale{
		Genomes:      5,
		GenomeLen:    2200,
		Coverage:     14,
		Ranks:        4,
		RanksPerNode: 2,
		NodeCounts:   []int{2, 4},
		Seed:         3,
	}
}

func TestScaleDefaults(t *testing.T) {
	s := (Scale{}).withDefaults()
	if s.Genomes == 0 || s.Ranks == 0 || len(s.NodeCounts) == 0 {
		t.Errorf("defaults not applied: %+v", s)
	}
	if DefaultScale().Genomes <= QuickScale().Genomes {
		t.Error("default scale should be larger than quick scale")
	}
}

func TestTable1QualitySmoke(t *testing.T) {
	res := Table1Quality(tinyScale())
	if len(res.Reports) != 5 {
		t.Fatalf("expected 5 assembler reports, got %d", len(res.Reports))
	}
	var mhmFrac float64
	for _, rep := range res.Reports {
		if rep.NumSeqs == 0 {
			t.Errorf("%s produced no sequences", rep.Assembler)
		}
		if rep.Assembler == "MetaHipMer" {
			mhmFrac = rep.GenomeFraction
		}
	}
	if mhmFrac < 0.5 {
		t.Errorf("MetaHipMer genome fraction %v too low even at tiny scale", mhmFrac)
	}
	if !strings.Contains(res.Format(), "MetaHipMer") {
		t.Error("formatted table missing MetaHipMer row")
	}
}

func TestFig4StrongScalingSmoke(t *testing.T) {
	res := Fig4StrongScaling(tinyScale())
	if len(res.Rows) != 2 {
		t.Fatalf("expected 2 scaling rows, got %d", len(res.Rows))
	}
	if res.Rows[0].Efficiency != 1 {
		t.Errorf("baseline efficiency should be 1, got %v", res.Rows[0].Efficiency)
	}
	if res.Rows[1].SimSeconds >= res.Rows[0].SimSeconds {
		t.Errorf("more nodes should reduce simulated time: %+v", res.Rows)
	}
	out := res.Format()
	if !strings.Contains(out, "Figure 4") || !strings.Contains(out, "Figure 5") {
		t.Error("format missing figure sections")
	}
}

func TestFig3ReadLocalizationSmoke(t *testing.T) {
	res := Fig3ReadLocalization(tinyScale())
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		if row.AlignmentOn <= 0 || row.AlignmentOff <= 0 {
			t.Errorf("alignment stage times missing: %+v", row)
		}
	}
	if !strings.Contains(res.Format(), "speedup") {
		t.Error("format missing speedup column")
	}
}

func TestTable2WeakScalingSmoke(t *testing.T) {
	res := Table2WeakScaling(tinyScale())
	if len(res.Rows) != 4 {
		t.Fatalf("expected 4 weak-scaling points, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.KBasesPerSecPN <= 0 {
			t.Errorf("assembly rate missing for %+v", row)
		}
	}
	if res.Efficiency <= 0 {
		t.Error("weak scaling efficiency not computed")
	}
}

func TestGrandChallengeSmoke(t *testing.T) {
	res := GrandChallengeFullVsSubset(tinyScale())
	if res.FullAssemblyBases <= res.SubsetAssemblyBases {
		t.Errorf("full assembly (%d) should be larger than the subset assembly (%d)",
			res.FullAssemblyBases, res.SubsetAssemblyBases)
	}
	if res.FullMapFraction <= res.SubsetMapFraction {
		t.Errorf("more reads should map to the full assembly: %.3f vs %.3f",
			res.FullMapFraction, res.SubsetMapFraction)
	}
	if !strings.Contains(res.Format(), "Grand challenge") {
		t.Error("format missing header")
	}
}

func TestFig6AndRayMetaSmoke(t *testing.T) {
	s := tinyScale()
	fig6 := Fig6NGA50PerGenome(s)
	if len(fig6.Rows) != s.Genomes {
		t.Fatalf("expected %d genomes in Fig6, got %d", s.Genomes, len(fig6.Rows))
	}
	anyNonZero := false
	for _, r := range fig6.Rows {
		if r.MetaHipMerNGA50 > 0 {
			anyNonZero = true
		}
	}
	if !anyNonZero {
		t.Error("all NGA50 values are zero")
	}

	ray := RayMetaComparison(s)
	if len(ray.Rows) == 0 {
		t.Fatal("no Ray Meta comparison rows")
	}
	for _, row := range ray.Rows {
		if row.SpeedupOverRay <= 1 {
			t.Errorf("MetaHipMer should beat the Ray Meta proxy at %d nodes: %+v", row.Nodes, row)
		}
	}
}

func TestAblationsSmoke(t *testing.T) {
	res := Ablations(tinyScale())
	if len(res.Rows) < 4 {
		t.Fatalf("expected several ablation rows, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Feature == "message aggregation" && row.Off <= row.On {
			t.Errorf("disabling aggregation should cost time: %+v", row)
		}
	}
	if !strings.Contains(res.Format(), "Ablations") {
		t.Error("format missing header")
	}
}
