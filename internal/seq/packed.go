package seq

import "math/bits"

// Packed is a DNA sequence packed two bits per base, 32 bases per uint64
// word: base i occupies bits [2*(i%32), 2*(i%32)+2) of word i/32, so the
// first base sits in the least significant bits of the first word. Unused
// high bits of the last word are always zero — WordAt and MismatchCount rely
// on that to treat past-the-end bases as zero padding.
//
// Packed is the word-at-a-time representation behind the three hot kernels:
// the aligner's extend compares 32 bases per XOR+popcount step
// (MismatchCount), de Bruijn walks append 2-bit codes and unpack to ASCII
// once per emitted contig, and k-mer extraction rolls a packed window
// instead of re-reading bytes. A Packed value with retained capacity (Reset
// keeps the word buffer) is allocation-free in steady state.
type Packed struct {
	w []uint64
	n int
}

// lowBaseMask returns the mask selecting the low n bases of a word (n in
// [0, 32]; n == 32 selects the whole word).
func lowBaseMask(n int) uint64 {
	if n >= 32 {
		return ^uint64(0)
	}
	return (uint64(1) << (2 * uint(n))) - 1
}

// strictBaseCodes maps an ASCII character to its 2-bit code, accepting only
// upper-case ACGT (0xFF otherwise). The strictness is semantic, not
// cosmetic: packed comparison (MismatchCount) equals byte-wise ASCII
// comparison only when both inputs are upper-case ACGT — a lower-case 'a'
// compares unequal to 'A' in ASCII but would pack to the same code — so the
// packing entry points refuse anything else and let callers fall back to the
// byte path.
var strictBaseCodes [256]byte

func init() {
	for i := range strictBaseCodes {
		strictBaseCodes[i] = 0xFF
	}
	strictBaseCodes['A'] = BaseA
	strictBaseCodes['C'] = BaseC
	strictBaseCodes['G'] = BaseG
	strictBaseCodes['T'] = BaseT
}

// PackASCII packs an upper-case ACGT sequence into a fresh Packed value. It
// reports ok=false (and returns an empty Packed) if s contains any other
// character; see strictBaseCodes for why lower-case bases are refused.
func PackASCII(s []byte) (Packed, bool) {
	var p Packed
	ok := p.SetASCII(s)
	return p, ok
}

// Len returns the sequence length in bases.
func (p Packed) Len() int { return p.n }

// Reset truncates the sequence to length zero, retaining the word buffer.
func (p *Packed) Reset() {
	p.w = p.w[:0]
	p.n = 0
}

// AppendCode appends one 2-bit base code.
func (p *Packed) AppendCode(code byte) {
	if p.n&31 == 0 {
		p.w = append(p.w, uint64(code&3))
	} else {
		p.w[p.n>>5] |= uint64(code&3) << (2 * uint(p.n&31))
	}
	p.n++
}

// AppendKmer appends the bases of a packed k-mer.
func (p *Packed) AppendKmer(km Kmer) {
	for i := 0; i < int(km.K); i++ {
		p.AppendCode(km.BaseAt(i))
	}
}

// SetASCII replaces the sequence with the packing of s, retaining the word
// buffer. It reports ok=false — leaving the Packed empty — if s contains any
// character other than upper-case ACGT.
func (p *Packed) SetASCII(s []byte) bool {
	p.Reset()
	w := p.w
	var cur uint64
	for i, c := range s {
		code := strictBaseCodes[c]
		if code == 0xFF {
			p.Reset()
			return false
		}
		cur |= uint64(code) << (2 * uint(i&31))
		if i&31 == 31 {
			w = append(w, cur)
			cur = 0
		}
	}
	if len(s)&31 != 0 {
		w = append(w, cur)
	}
	p.w, p.n = w, len(s)
	return true
}

// Code returns the 2-bit code of base i.
func (p Packed) Code(i int) byte {
	return byte(p.w[i>>5]>>(2*uint(i&31))) & 3
}

// WordAt returns 64 bits (up to 32 bases) of the sequence starting at base
// offset off, with bases past the end reading as zero. This is the
// word-iteration primitive: MismatchCount, Slice and SetReverseComplementOf
// are all built on it.
func (p Packed) WordAt(off int) uint64 {
	wi, sh := off>>5, 2*uint(off&31)
	if wi < 0 || wi >= len(p.w) {
		return 0
	}
	v := p.w[wi] >> sh
	if sh > 0 && wi+1 < len(p.w) {
		v |= p.w[wi+1] << (64 - sh)
	}
	return v
}

// Slice returns a copy of bases [lo, hi) as a fresh Packed value. It panics
// if the range is out of bounds, mirroring slice-expression semantics.
func (p Packed) Slice(lo, hi int) Packed {
	if lo < 0 || hi < lo || hi > p.n {
		panic("seq: Packed.Slice range out of bounds")
	}
	n := hi - lo
	if n == 0 {
		return Packed{}
	}
	nw := (n + 31) / 32
	w := make([]uint64, nw)
	for k := range w {
		w[k] = p.WordAt(lo + 32*k)
	}
	w[nw-1] &= lowBaseMask(n - 32*(nw-1))
	return Packed{w: w, n: n}
}

// AppendUnpack appends the sequence as ASCII bases to dst and returns the
// extended slice. Walks unpack once per emitted contig through this.
func (p Packed) AppendUnpack(dst []byte) []byte {
	for i := 0; i < p.n; i++ {
		dst = append(dst, baseChars[p.Code(i)])
	}
	return dst
}

// revComp64 reverses the 32 2-bit base groups of a word and complements each
// base. Complementing is a bitwise NOT (code 3-c == c^3 for 2-bit codes);
// the group reversal is the usual butterfly: swap adjacent 2-bit pairs, swap
// nibbles, then reverse the bytes.
func revComp64(w uint64) uint64 {
	w = ^w
	w = (w&0x3333333333333333)<<2 | (w>>2)&0x3333333333333333
	w = (w&0x0F0F0F0F0F0F0F0F)<<4 | (w>>4)&0x0F0F0F0F0F0F0F0F
	return bits.ReverseBytes64(w)
}

// SetReverseComplementOf replaces p with the reverse complement of src,
// retaining p's word buffer. p must not alias src. The aligner computes a
// read's packed reverse complement once per read through this and reuses it
// across every reverse-strand candidate.
func (p *Packed) SetReverseComplementOf(src Packed) {
	p.Reset()
	n := src.n
	if n == 0 {
		return
	}
	nw := (n + 31) / 32
	if cap(p.w) < nw {
		p.w = make([]uint64, nw)
	} else {
		p.w = p.w[:nw]
	}
	// Reversing+complementing every word of src in reverse word order yields
	// the reverse-complement stream preceded by pad garbage bases (the
	// complement of the last word's zero padding); re-align by reading that
	// virtual stream at base offset pad.
	pad := nw*32 - n
	vw := func(i int) uint64 {
		if i < 0 || i >= nw {
			return 0
		}
		return revComp64(src.w[nw-1-i])
	}
	sh := 2 * uint(pad)
	for k := 0; k < nw; k++ {
		v := vw(k) >> sh
		if sh > 0 {
			v |= vw(k+1) << (64 - sh)
		}
		p.w[k] = v
	}
	p.w[nw-1] &= lowBaseMask(n - 32*(nw-1))
	p.n = n
}

// GreaterThanRC reports whether the sequence sorts strictly after its
// reverse complement. For upper-case ACGT this equals the ASCII string
// comparison (A<C<G<T in both orders); de Bruijn walks use it to emit each
// path from exactly one end without materializing the complement.
func (p Packed) GreaterThanRC() bool {
	for i, j := 0, p.n-1; i < p.n; i, j = i+1, j-1 {
		c := 3 - p.Code(j)
		if ci := p.Code(i); ci != c {
			return ci > c
		}
	}
	return false
}

// MismatchCount returns the number of positions where bases [aOff, aOff+n)
// of a differ from bases [bOff, bOff+n) of b. Both ranges must be in
// bounds. Each 64-bit step compares 32 bases: XOR the windows, fold each
// 2-bit group's difference into its low bit with (x|x>>1)&0x5555…, then
// popcount — the word-at-a-time trick that replaces the aligner's per-base
// comparison loop.
func MismatchCount(a, b Packed, aOff, bOff, n int) int {
	mm := 0
	for done := 0; done < n; done += 32 {
		x := a.WordAt(aOff+done) ^ b.WordAt(bOff+done)
		if rem := n - done; rem < 32 {
			x &= lowBaseMask(rem)
		}
		x = (x | x>>1) & 0x5555555555555555
		mm += bits.OnesCount64(x)
	}
	return mm
}

// AppendReverseComplement appends the reverse complement of an ASCII
// sequence to dst and returns the extended slice: the buffer-reusing form of
// ReverseComplement for hot loops (the aligner's byte-path fallback reverse
// complements each read once into a per-rank scratch buffer through this).
// Non-ACGT characters are preserved as 'N', as in ReverseComplement.
func AppendReverseComplement(dst, s []byte) []byte {
	for i := len(s) - 1; i >= 0; i-- {
		dst = append(dst, ComplementChar(s[i]))
	}
	return dst
}
