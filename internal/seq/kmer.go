package seq

import (
	"fmt"
	"math/bits"
)

// MaxK is the largest k-mer length supported by the packed representation.
const MaxK = 64

// Kmer is a DNA k-mer packed two bits per base into a 128-bit value split
// across Hi and Lo. The first (leftmost) base occupies the most significant
// bits of the used region; the last base occupies the least significant two
// bits of Lo. Kmer is a comparable value type and can be used as a map key.
type Kmer struct {
	Hi, Lo uint64
	K      uint8
}

// loMask returns the mask of used bits in Lo for a k-mer of length k.
func loMask(k int) uint64 {
	if k >= 32 {
		return ^uint64(0)
	}
	return (uint64(1) << (2 * uint(k))) - 1
}

// hiMask returns the mask of used bits in Hi for a k-mer of length k.
func hiMask(k int) uint64 {
	if k <= 32 {
		return 0
	}
	return (uint64(1) << (2 * uint(k-32))) - 1
}

// KmerFromBytes packs the first k bases of s into a Kmer. It returns an error
// if k is out of range, s is too short, or s contains an ambiguous base.
func KmerFromBytes(s []byte, k int) (Kmer, error) {
	if k <= 0 || k > MaxK {
		return Kmer{}, fmt.Errorf("seq: k=%d out of range [1,%d]", k, MaxK)
	}
	if len(s) < k {
		return Kmer{}, fmt.Errorf("seq: sequence length %d < k=%d", len(s), k)
	}
	var km Kmer
	km.K = uint8(k)
	for i := 0; i < k; i++ {
		code, ok := CharToBase(s[i])
		if !ok {
			return Kmer{}, fmt.Errorf("seq: ambiguous base %q at position %d", s[i], i)
		}
		km = km.appendUnchecked(code)
	}
	return km, nil
}

// KmerFromString packs a string into a k-mer of length len(s).
func KmerFromString(s string) (Kmer, error) {
	return KmerFromBytes([]byte(s), len(s))
}

// MustKmer packs a string into a k-mer and panics on error. It is intended
// for tests and literals.
func MustKmer(s string) Kmer {
	km, err := KmerFromString(s)
	if err != nil {
		panic(err)
	}
	return km
}

// appendUnchecked shifts the k-mer left by one base and appends code, masking
// to the k-mer length stored in km.K. The caller must ensure km.K is set.
func (km Kmer) appendUnchecked(code byte) Kmer {
	k := int(km.K)
	km.Hi = (km.Hi << 2) | (km.Lo >> 62)
	km.Lo = (km.Lo << 2) | uint64(code&3)
	km.Lo &= loMask(k)
	km.Hi &= hiMask(k)
	return km
}

// AppendBase returns the k-mer obtained by dropping the first base and
// appending code at the end (a forward step in the de Bruijn graph).
func (km Kmer) AppendBase(code byte) Kmer { return km.appendUnchecked(code) }

// PrependBase returns the k-mer obtained by dropping the last base and
// prepending code at the front (a backward step in the de Bruijn graph).
func (km Kmer) PrependBase(code byte) Kmer {
	k := int(km.K)
	km.Lo = (km.Lo >> 2) | (km.Hi << 62)
	km.Hi >>= 2
	pos := uint(2 * (k - 1))
	if pos < 64 {
		km.Lo |= uint64(code&3) << pos
	} else {
		km.Hi |= uint64(code&3) << (pos - 64)
	}
	km.Lo &= loMask(k)
	km.Hi &= hiMask(k)
	return km
}

// BaseAt returns the 2-bit code of the i-th base (0 = leftmost).
func (km Kmer) BaseAt(i int) byte {
	k := int(km.K)
	pos := uint(2 * (k - 1 - i))
	if pos < 64 {
		return byte((km.Lo >> pos) & 3)
	}
	return byte((km.Hi >> (pos - 64)) & 3)
}

// FirstBase returns the 2-bit code of the leftmost base.
func (km Kmer) FirstBase() byte { return km.BaseAt(0) }

// LastBase returns the 2-bit code of the rightmost base.
func (km Kmer) LastBase() byte { return byte(km.Lo & 3) }

// String renders the k-mer as an ACGT string.
func (km Kmer) String() string {
	k := int(km.K)
	out := make([]byte, k)
	for i := 0; i < k; i++ {
		out[i] = BaseToChar(km.BaseAt(i))
	}
	return string(out)
}

// Bytes renders the k-mer as ACGT bytes.
func (km Kmer) Bytes() []byte {
	k := int(km.K)
	out := make([]byte, k)
	for i := 0; i < k; i++ {
		out[i] = BaseToChar(km.BaseAt(i))
	}
	return out
}

// ReverseComplement returns the reverse complement k-mer.
func (km Kmer) ReverseComplement() Kmer {
	k := int(km.K)
	rc := Kmer{K: km.K}
	for i := k - 1; i >= 0; i-- {
		rc = rc.appendUnchecked(ComplementCode(km.BaseAt(i)))
	}
	return rc
}

// Less reports whether km sorts before other in the 128-bit packed order.
// Both k-mers must have the same length for the comparison to be meaningful.
func (km Kmer) Less(other Kmer) bool {
	if km.Hi != other.Hi {
		return km.Hi < other.Hi
	}
	return km.Lo < other.Lo
}

// Canonical returns the lexicographically smaller of the k-mer and its
// reverse complement, together with a flag reporting whether the reverse
// complement was chosen.
func (km Kmer) Canonical() (Kmer, bool) {
	rc := km.ReverseComplement()
	if rc.Less(km) {
		return rc, true
	}
	return km, false
}

// Hash returns a well-mixed 64-bit hash of the k-mer, suitable for selecting
// the owner rank of a distributed hash table bucket.
func (km Kmer) Hash() uint64 {
	return mix64(km.Lo ^ bits.RotateLeft64(km.Hi, 31) ^ (uint64(km.K) << 56))
}

// mix64 is the splitmix64 finalizer, a cheap high-quality bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// SubKmer returns the k-mer consisting of bases [start, start+k) of km.
func (km Kmer) SubKmer(start, k int) (Kmer, error) {
	if start < 0 || k <= 0 || start+k > int(km.K) {
		return Kmer{}, fmt.Errorf("seq: sub-kmer [%d,%d) out of range for k=%d", start, start+k, km.K)
	}
	sub := Kmer{K: uint8(k)}
	for i := 0; i < k; i++ {
		sub = sub.appendUnchecked(km.BaseAt(start + i))
	}
	return sub, nil
}

// KmerIter iterates over the valid k-mers of a sequence, skipping windows
// that contain ambiguous bases.
type KmerIter struct {
	seq   []byte
	k     int
	pos   int
	valid int // number of consecutive valid bases ending just before pos
	cur   Kmer
}

// NewKmerIter returns an iterator over the k-mers of s.
func NewKmerIter(s []byte, k int) *KmerIter {
	return &KmerIter{seq: s, k: k, cur: Kmer{K: uint8(k)}}
}

// Next advances the iterator. It returns the next k-mer, the offset of its
// first base within the sequence, and false when the sequence is exhausted.
func (it *KmerIter) Next() (Kmer, int, bool) {
	for it.pos < len(it.seq) {
		code, ok := CharToBase(it.seq[it.pos])
		it.pos++
		if !ok {
			it.valid = 0
			continue
		}
		it.cur = it.cur.appendUnchecked(code)
		it.valid++
		if it.valid >= it.k {
			return it.cur, it.pos - it.k, true
		}
	}
	return Kmer{}, 0, false
}

// KmersOf returns all valid k-mers of a sequence in order of appearance.
func KmersOf(s []byte, k int) []Kmer {
	if len(s) < k || k <= 0 || k > MaxK {
		return nil
	}
	out := make([]Kmer, 0, len(s)-k+1)
	it := NewKmerIter(s, k)
	for {
		km, _, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, km)
	}
	return out
}

// CanonicalKmersOf returns all valid k-mers of a sequence in canonical form.
func CanonicalKmersOf(s []byte, k int) []Kmer {
	return AppendCanonicalKmers(nil, s, k)
}

// AppendCanonicalKmers appends all valid k-mers of s, in canonical form and
// order of appearance, to dst and returns the extended slice. It is the
// allocation-free form of CanonicalKmersOf for hot per-read loops: a caller
// that reuses dst across reads (dst = AppendCanonicalKmers(dst[:0], ...))
// allocates nothing once the buffer has grown to the longest read
// (steady-state 0 allocs/op, asserted by BenchmarkKmerCanonical).
func AppendCanonicalKmers(dst []Kmer, s []byte, k int) []Kmer {
	if len(s) < k || k <= 0 || k > MaxK {
		return dst
	}
	if n := len(s) - k + 1; cap(dst)-len(dst) < n {
		grown := make([]Kmer, len(dst), len(dst)+n)
		copy(grown, dst)
		dst = grown
	}
	it := NewKmerIter(s, k)
	for {
		km, _, ok := it.Next()
		if !ok {
			break
		}
		canon, _ := km.Canonical()
		dst = append(dst, canon)
	}
	return dst
}
