package seq

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCharToBaseRoundTrip(t *testing.T) {
	for code := byte(0); code < 4; code++ {
		c := BaseToChar(code)
		got, ok := CharToBase(c)
		if !ok || got != code {
			t.Errorf("CharToBase(BaseToChar(%d)) = %d,%v", code, got, ok)
		}
	}
	lower := []byte{'a', 'c', 'g', 't'}
	for i, c := range lower {
		got, ok := CharToBase(c)
		if !ok || got != byte(i) {
			t.Errorf("CharToBase(%q) = %d,%v, want %d,true", c, got, ok, i)
		}
	}
	if _, ok := CharToBase('N'); ok {
		t.Error("N should not be a valid base")
	}
	if _, ok := CharToBase('x'); ok {
		t.Error("x should not be a valid base")
	}
}

func TestComplement(t *testing.T) {
	pairs := map[byte]byte{'A': 'T', 'C': 'G', 'G': 'C', 'T': 'A', 'N': 'N'}
	for in, want := range pairs {
		if got := ComplementChar(in); got != want {
			t.Errorf("ComplementChar(%q) = %q, want %q", in, got, want)
		}
	}
	for code := byte(0); code < 4; code++ {
		if ComplementCode(ComplementCode(code)) != code {
			t.Errorf("complement is not an involution for code %d", code)
		}
	}
}

func TestReverseComplement(t *testing.T) {
	cases := map[string]string{
		"":       "",
		"A":      "T",
		"ACGT":   "ACGT",
		"AAACCC": "GGGTTT",
		"ACGNT":  "ANCGT",
	}
	for in, want := range cases {
		if got := ReverseComplementString(in); got != want {
			t.Errorf("ReverseComplementString(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestReverseComplementInvolutionProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw) % 200
		s := []byte(randomSeq(r, n))
		return string(ReverseComplement(ReverseComplement(s))) == string(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestValidBases(t *testing.T) {
	if !ValidBases([]byte("ACGTacgt")) {
		t.Error("ACGTacgt should be valid")
	}
	if ValidBases([]byte("ACGN")) {
		t.Error("ACGN should be invalid")
	}
	if CountValidBases([]byte("ANCNG")) != 3 {
		t.Error("CountValidBases(ANCNG) != 3")
	}
}

func TestGCContent(t *testing.T) {
	if got := GCContent([]byte("GGCC")); got != 1.0 {
		t.Errorf("GCContent(GGCC) = %v, want 1", got)
	}
	if got := GCContent([]byte("AATT")); got != 0.0 {
		t.Errorf("GCContent(AATT) = %v, want 0", got)
	}
	if got := GCContent([]byte("ACGT")); got != 0.5 {
		t.Errorf("GCContent(ACGT) = %v, want 0.5", got)
	}
	if got := GCContent([]byte("NNNN")); got != 0.0 {
		t.Errorf("GCContent(NNNN) = %v, want 0", got)
	}
}

func TestReadValidate(t *testing.T) {
	r := Read{ID: "r1", Seq: []byte("ACGT"), Qual: []byte("IIII")}
	if err := r.Validate(); err != nil {
		t.Errorf("valid read rejected: %v", err)
	}
	bad := Read{ID: "r2", Seq: []byte("ACGT"), Qual: []byte("II")}
	if err := bad.Validate(); err == nil {
		t.Error("mismatched quality length should be rejected")
	}
	empty := Read{ID: "r3"}
	if err := empty.Validate(); err == nil {
		t.Error("empty read should be rejected")
	}
}

func TestReadClone(t *testing.T) {
	r := Read{ID: "r1", Seq: []byte("ACGT"), Qual: []byte("IIII")}
	c := r.Clone()
	c.Seq[0] = 'T'
	if r.Seq[0] != 'A' {
		t.Error("Clone did not deep-copy the sequence")
	}
}

func TestQualConversions(t *testing.T) {
	if p := QualToProb('I'); p > 0.001 {
		t.Errorf("QualToProb('I') = %v, want <= 0.001", p)
	}
	if p := QualToProb('!'); p != 1.0 {
		t.Errorf("QualToProb('!') = %v, want 1", p)
	}
	if q := ProbToQual(1.0); q != '!' {
		t.Errorf("ProbToQual(1) = %q, want '!'", q)
	}
	if q := ProbToQual(0); q != 'I' {
		t.Errorf("ProbToQual(0) = %q, want 'I'", q)
	}
	// Round trip should be monotone: lower probability, higher quality.
	if ProbToQual(0.01) <= ProbToQual(0.5) {
		t.Error("ProbToQual is not monotone")
	}
}

func TestMeanDepthFromCounts(t *testing.T) {
	if got := MeanDepthFromCounts(nil); got != 0 {
		t.Errorf("mean of empty = %v", got)
	}
	if got := MeanDepthFromCounts([]uint32{2, 4, 6}); got != 4 {
		t.Errorf("mean = %v, want 4", got)
	}
}

func TestExtCountsClassify(t *testing.T) {
	var e ExtCounts
	if got := e.Classify(1, 2); got != ExtNone {
		t.Errorf("empty counts classify = %q, want X", got)
	}
	e.AddN(BaseA, 10)
	if got := e.Classify(1, 2); got != 'A' {
		t.Errorf("unique extension classify = %q, want A", got)
	}
	e.AddN(BaseC, 5)
	if got := e.Classify(1, 2); got != ExtFork {
		t.Errorf("contested extension classify = %q, want F", got)
	}
	// With a larger threshold the contradiction is tolerated.
	if got := e.Classify(1, 5); got != 'A' {
		t.Errorf("tolerant classify = %q, want A", got)
	}
	// Below the minimum count nothing is called.
	var weak ExtCounts
	weak.Add(BaseG)
	if got := weak.Classify(2, 2); got != ExtNone {
		t.Errorf("weak classify = %q, want X", got)
	}
}

func TestExtCountsBestAndMerge(t *testing.T) {
	var a, b ExtCounts
	a.AddN(BaseA, 3)
	a.AddN(BaseG, 1)
	b.AddN(BaseG, 4)
	a.Merge(b)
	code, best, second := a.Best()
	if code != BaseG || best != 5 || second != 3 {
		t.Errorf("Best = %d,%d,%d, want G,5,3", code, best, second)
	}
	if a.Total() != 8 {
		t.Errorf("Total = %d, want 8", a.Total())
	}
}

func TestExtPairSwap(t *testing.T) {
	p := ExtPair{Left: 'A', Right: 'G'}
	s := p.Swap()
	if s.Left != 'C' || s.Right != 'T' {
		t.Errorf("Swap = %v, want {C T}", s)
	}
	f := ExtPair{Left: ExtFork, Right: ExtNone}
	s = f.Swap()
	if s.Left != ExtNone || s.Right != ExtFork {
		t.Errorf("Swap of markers = %v, want {X F}", s)
	}
	if p.String() != "AG" {
		t.Errorf("String = %q", p.String())
	}
}

func TestKmerCountObserve(t *testing.T) {
	km := MustKmer("ACG")
	kc := KmerCount{Kmer: km}
	kc.Observe(BaseT, BaseA, true, true, false)
	if kc.Count != 1 || kc.Left[BaseT] != 1 || kc.Right[BaseA] != 1 {
		t.Errorf("forward observe wrong: %+v", kc)
	}
	// Reverse-complement observation: neighbours swap sides and complement.
	kc.Observe(BaseT, BaseA, true, true, true)
	if kc.Left[BaseT] != 2 || kc.Right[BaseA] != 2 {
		t.Errorf("rc observe wrong: %+v", kc)
	}
	// Missing neighbours are not recorded.
	kc.Observe(BaseC, BaseC, false, false, false)
	if kc.Count != 3 || kc.Left.Total() != 2 || kc.Right.Total() != 2 {
		t.Errorf("missing-neighbour observe wrong: %+v", kc)
	}
}

func TestKmerCountMerge(t *testing.T) {
	km := MustKmer("ACG")
	a := KmerCount{Kmer: km, Count: 2}
	a.Left.AddN(BaseA, 2)
	b := KmerCount{Kmer: km, Count: 3}
	b.Right.AddN(BaseT, 3)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count != 5 || a.Left[BaseA] != 2 || a.Right[BaseT] != 3 {
		t.Errorf("merge wrong: %+v", a)
	}
	other := KmerCount{Kmer: MustKmer("TTT")}
	if err := a.Merge(other); err == nil {
		t.Error("merging different k-mers should fail")
	}
}

func TestIsBaseExt(t *testing.T) {
	for _, c := range []byte{'A', 'C', 'G', 'T'} {
		if !IsBaseExt(c) {
			t.Errorf("IsBaseExt(%q) = false", c)
		}
	}
	for _, c := range []byte{ExtFork, ExtNone, 'n'} {
		if IsBaseExt(c) {
			t.Errorf("IsBaseExt(%q) = true", c)
		}
	}
}

// qualToProbReference and probToQualReference are the pre-table O(phred)
// multiply-loop implementations, kept verbatim as the oracle the lookup
// tables must reproduce bit for bit.
func qualToProbReference(q byte) float64 {
	phred := int(q) - 33
	if phred < 0 {
		phred = 0
	}
	p := 1.0
	for i := 0; i < phred; i++ {
		p *= 0.7943282347242815
	}
	return p
}

func probToQualReference(p float64) byte {
	if p <= 0 {
		return 'I'
	}
	phred := 0
	q := 1.0
	for q > p && phred < 40 {
		q *= 0.7943282347242815
		phred++
	}
	if phred > 40 {
		phred = 40
	}
	return byte(33 + phred)
}

// TestQualTablesMatchReference pins the lookup-table QualToProb/ProbToQual
// against the multiply-loop reference across every byte quality, a dense
// probability grid, and the round trip through both directions.
func TestQualTablesMatchReference(t *testing.T) {
	for q := 0; q < 256; q++ {
		got, want := QualToProb(byte(q)), qualToProbReference(byte(q))
		if got != want {
			t.Fatalf("QualToProb(%d) = %v, want %v", q, got, want)
		}
		// Round trip: the requantized quality must match the reference's.
		if gq, wq := ProbToQual(got), probToQualReference(want); gq != wq {
			t.Fatalf("ProbToQual(QualToProb(%d)) = %q, want %q", q, gq, wq)
		}
	}
	probs := []float64{0, 1e-300, 1e-9, 0.001, 0.01, 0.1, 0.5, 0.99, 1.0, 1.5, 1e9}
	for p := 1e-6; p < 1; p *= 1.03 {
		probs = append(probs, p)
	}
	for _, p := range probs {
		if got, want := ProbToQual(p), probToQualReference(p); got != want {
			t.Fatalf("ProbToQual(%v) = %q, want %q", p, got, want)
		}
	}
	// Exactly at each table threshold and one ulp around it.
	q := 1.0
	for i := 0; i < 45; i++ {
		for _, p := range []float64{q, math.Nextafter(q, 0), math.Nextafter(q, 2)} {
			if got, want := ProbToQual(p), probToQualReference(p); got != want {
				t.Fatalf("ProbToQual(threshold %v) = %q, want %q", p, got, want)
			}
		}
		q *= 0.7943282347242815
	}
}
