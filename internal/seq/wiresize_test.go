package seq

import (
	"testing"

	"mhmgo/internal/pgas"
)

// TestReadWireSize pins the read-shipping wire size against the reflective
// lower bound: the charged 17-byte framing constant must stay a true upper
// bound on the packed encoding even with both one-byte tags set, so widening
// the record with SampleID could not silently change any golden sim-seconds.
func TestReadWireSize(t *testing.T) {
	rd := Read{ID: "pair/1", Seq: []byte("ACGTACGTAC"), Qual: []byte("IIIIIIIIII")}
	if got, min := rd.WireSize(), pgas.WireSizeOf(rd); got < min {
		t.Errorf("Read.WireSize() = %d < encoded size %d", got, min)
	}
	tagged := Read{ID: "pair/2", Seq: []byte("ACGTACGTAC"), Qual: []byte("IIIIIIIIII"), LibID: 255, SampleID: 255}
	if got, min := tagged.WireSize(), pgas.WireSizeOf(tagged); got < min {
		t.Errorf("tagged Read.WireSize() = %d < encoded size %d", got, min)
	}
	if rd.WireSize() != tagged.WireSize() {
		t.Errorf("tags changed the charged wire size: %d vs %d; golden sim-seconds depend on it being tag-independent",
			rd.WireSize(), tagged.WireSize())
	}
}
