package seq

import (
	"testing"

	"mhmgo/internal/pgas"
)

// TestReadWireSize pins the read-shipping wire size against the reflective
// lower bound.
func TestReadWireSize(t *testing.T) {
	rd := Read{ID: "pair/1", Seq: []byte("ACGTACGTAC"), Qual: []byte("IIIIIIIIII")}
	if got, min := rd.WireSize(), pgas.WireSizeOf(rd); got < min {
		t.Errorf("Read.WireSize() = %d < encoded size %d", got, min)
	}
}
