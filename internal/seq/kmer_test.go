package seq

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// randomSeq returns a random ACGT string of length n using r.
func randomSeq(r *rand.Rand, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(BaseToChar(byte(r.Intn(4))))
	}
	return b.String()
}

func TestKmerFromStringRoundTrip(t *testing.T) {
	cases := []string{
		"A", "C", "G", "T",
		"ACGT",
		"AAAAAAAAAA",
		"ACGTACGTACGTACGTACGTACGTACGTACGT",  // 32
		"ACGTACGTACGTACGTACGTACGTACGTACGTA", // 33
		"TTTTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTCCC", // 64
	}
	for _, s := range cases {
		km, err := KmerFromString(s)
		if err != nil {
			t.Fatalf("KmerFromString(%q): %v", s, err)
		}
		if got := km.String(); got != s {
			t.Errorf("round trip of %q = %q", s, got)
		}
		if int(km.K) != len(s) {
			t.Errorf("K = %d, want %d", km.K, len(s))
		}
	}
}

func TestKmerFromBytesErrors(t *testing.T) {
	if _, err := KmerFromBytes([]byte("ACGT"), 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := KmerFromBytes([]byte("ACGT"), 65); err == nil {
		t.Error("k=65 should fail")
	}
	if _, err := KmerFromBytes([]byte("ACG"), 4); err == nil {
		t.Error("short sequence should fail")
	}
	if _, err := KmerFromBytes([]byte("ACNT"), 4); err == nil {
		t.Error("ambiguous base should fail")
	}
}

func TestKmerBaseAt(t *testing.T) {
	s := "ACGTTGCAACGTTGCAACGTTGCAACGTTGCAACGTT" // 37 bases, crosses the 32 boundary
	km := MustKmer(s)
	for i := 0; i < len(s); i++ {
		want, _ := CharToBase(s[i])
		if got := km.BaseAt(i); got != want {
			t.Errorf("BaseAt(%d) = %d, want %d", i, got, want)
		}
	}
	if km.FirstBase() != BaseA {
		t.Errorf("FirstBase = %d, want A", km.FirstBase())
	}
	if km.LastBase() != BaseT {
		t.Errorf("LastBase = %d, want T", km.LastBase())
	}
}

func TestKmerAppendPrepend(t *testing.T) {
	km := MustKmer("ACGTA")
	next := km.AppendBase(BaseC)
	if got := next.String(); got != "CGTAC" {
		t.Errorf("AppendBase = %q, want CGTAC", got)
	}
	prev := km.PrependBase(BaseT)
	if got := prev.String(); got != "TACGT" {
		t.Errorf("PrependBase = %q, want TACGT", got)
	}
}

func TestKmerAppendPrependLong(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		k := 33 + r.Intn(32)
		s := randomSeq(r, k)
		km := MustKmer(s)
		b := byte(r.Intn(4))
		next := km.AppendBase(b)
		want := s[1:] + string(BaseToChar(b))
		if next.String() != want {
			t.Fatalf("k=%d AppendBase: got %q want %q", k, next.String(), want)
		}
		prev := km.PrependBase(b)
		want = string(BaseToChar(b)) + s[:k-1]
		if prev.String() != want {
			t.Fatalf("k=%d PrependBase: got %q want %q", k, prev.String(), want)
		}
	}
}

func TestKmerReverseComplementKnown(t *testing.T) {
	cases := map[string]string{
		"A":     "T",
		"ACGT":  "ACGT",
		"AACC":  "GGTT",
		"GATTA": "TAATC",
	}
	for in, want := range cases {
		if got := MustKmer(in).ReverseComplement().String(); got != want {
			t.Errorf("revcomp(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestKmerReverseComplementInvolution(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw)%MaxK + 1
		rr := rand.New(rand.NewSource(seed))
		_ = r
		s := randomSeq(rr, k)
		km := MustKmer(s)
		return km.ReverseComplement().ReverseComplement() == km
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestKmerReverseComplementMatchesStringVersion(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw)%MaxK + 1
		rr := rand.New(rand.NewSource(seed))
		s := randomSeq(rr, k)
		km := MustKmer(s)
		return km.ReverseComplement().String() == ReverseComplementString(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestKmerCanonicalInvariant(t *testing.T) {
	// A k-mer and its reverse complement must canonicalize to the same value.
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw)%MaxK + 1
		rr := rand.New(rand.NewSource(seed))
		s := randomSeq(rr, k)
		km := MustKmer(s)
		c1, _ := km.Canonical()
		c2, _ := km.ReverseComplement().Canonical()
		if c1 != c2 {
			return false
		}
		// The canonical form is never greater than either orientation.
		return !km.Less(c1) || km == c1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestKmerHashDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	buckets := make([]int, 16)
	const n = 4096
	for i := 0; i < n; i++ {
		km := MustKmer(randomSeq(r, 21))
		buckets[km.Hash()%16]++
	}
	for i, c := range buckets {
		if c < n/32 || c > n/8 {
			t.Errorf("bucket %d has %d of %d entries; hash is badly skewed", i, c, n)
		}
	}
}

func TestSubKmer(t *testing.T) {
	km := MustKmer("ACGTTGCA")
	sub, err := km.SubKmer(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sub.String() != "GTTG" {
		t.Errorf("SubKmer = %q, want GTTG", sub.String())
	}
	if _, err := km.SubKmer(6, 4); err == nil {
		t.Error("out-of-range sub-kmer should fail")
	}
	if _, err := km.SubKmer(-1, 3); err == nil {
		t.Error("negative start should fail")
	}
}

func TestKmersOf(t *testing.T) {
	s := []byte("ACGTACGT")
	kms := KmersOf(s, 4)
	want := []string{"ACGT", "CGTA", "GTAC", "TACG", "ACGT"}
	if len(kms) != len(want) {
		t.Fatalf("got %d k-mers, want %d", len(kms), len(want))
	}
	for i, km := range kms {
		if km.String() != want[i] {
			t.Errorf("kmer %d = %q, want %q", i, km.String(), want[i])
		}
	}
}

func TestKmersOfSkipsAmbiguous(t *testing.T) {
	s := []byte("ACGTNACGT")
	kms := KmersOf(s, 4)
	// Only windows entirely before or after the N are valid.
	if len(kms) != 2 {
		t.Fatalf("got %d k-mers, want 2 (windows containing N must be skipped)", len(kms))
	}
	for _, km := range kms {
		if km.String() != "ACGT" {
			t.Errorf("unexpected k-mer %q", km.String())
		}
	}
}

func TestKmerIterOffsets(t *testing.T) {
	s := []byte("AACCGGTT")
	it := NewKmerIter(s, 3)
	offsets := []int{}
	for {
		km, off, ok := it.Next()
		if !ok {
			break
		}
		if km.String() != string(s[off:off+3]) {
			t.Errorf("kmer at offset %d = %q, want %q", off, km.String(), s[off:off+3])
		}
		offsets = append(offsets, off)
	}
	if len(offsets) != 6 {
		t.Fatalf("got %d k-mers, want 6", len(offsets))
	}
	for i, off := range offsets {
		if off != i {
			t.Errorf("offset %d = %d, want %d", i, off, i)
		}
	}
}

func TestCanonicalKmersOf(t *testing.T) {
	kms := CanonicalKmersOf([]byte("ACGTAC"), 3)
	for _, km := range kms {
		rc := km.ReverseComplement()
		if rc.Less(km) {
			t.Errorf("k-mer %q is not canonical", km.String())
		}
	}
}

func TestKmersOfEdgeCases(t *testing.T) {
	if got := KmersOf([]byte("AC"), 3); got != nil {
		t.Errorf("sequence shorter than k should yield nil, got %v", got)
	}
	if got := KmersOf([]byte("ACGT"), 0); got != nil {
		t.Errorf("k=0 should yield nil, got %v", got)
	}
	if got := KmersOf([]byte("ACGT"), 65); got != nil {
		t.Errorf("k>MaxK should yield nil, got %v", got)
	}
}

func TestAppendCanonicalKmers(t *testing.T) {
	s := []byte("ACGTNACGTTGCAACGTT")
	k := 5
	// Reference: canonicalize the plain k-mer list by hand.
	var want []Kmer
	for _, km := range KmersOf(s, k) {
		c, _ := km.Canonical()
		want = append(want, c)
	}
	got := AppendCanonicalKmers(nil, s, k)
	if len(got) != len(want) {
		t.Fatalf("got %d kmers, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("kmer %d: got %v, want %v", i, got[i], want[i])
		}
	}
	// Appending preserves the existing prefix.
	prefix := []Kmer{MustKmer("AAAAA")}
	both := AppendCanonicalKmers(prefix, s, k)
	if both[0] != MustKmer("AAAAA") || len(both) != 1+len(want) {
		t.Fatalf("append did not preserve prefix: len=%d", len(both))
	}
	// Invalid inputs leave dst unchanged, matching KmersOf's guards.
	for _, bad := range []struct{ s []byte; k int }{
		{[]byte("ACG"), 5}, {s, 0}, {s, -1}, {s, MaxK + 1},
	} {
		if out := AppendCanonicalKmers(prefix[:1], bad.s, bad.k); len(out) != 1 {
			t.Errorf("AppendCanonicalKmers(%q, k=%d) grew dst: len=%d", bad.s, bad.k, len(out))
		}
	}
	if CanonicalKmersOf([]byte("ACG"), 5) != nil {
		t.Error("CanonicalKmersOf on short input should stay nil")
	}
}

func BenchmarkKmerIter(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	s := []byte(randomSeq(r, 10000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := NewKmerIter(s, 31)
		for {
			_, _, ok := it.Next()
			if !ok {
				break
			}
		}
	}
}

func BenchmarkKmerCanonical(b *testing.B) {
	km := MustKmer("ACGTTGCAACGTTGCAACGTTGCAACGTTGA")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		km.Canonical()
	}
}

// BenchmarkKmerCanonicalAppend measures the reused-buffer extraction path and
// asserts it stays allocation-free once the destination buffer has grown: a
// regression here would put a per-read allocation back into the hottest loop
// of k-mer analysis.
func BenchmarkKmerCanonicalAppend(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	s := []byte(randomSeq(r, 10000))
	dst := AppendCanonicalKmers(nil, s, 31) // warm the buffer outside the loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = AppendCanonicalKmers(dst[:0], s, 31)
	}
	b.StopTimer()
	if len(dst) != len(s)-31+1 {
		b.Fatalf("got %d kmers, want %d", len(dst), len(s)-31+1)
	}
	allocs := testing.AllocsPerRun(100, func() {
		dst = AppendCanonicalKmers(dst[:0], s, 31)
	})
	if allocs != 0 {
		b.Fatalf("AppendCanonicalKmers with warm buffer: %v allocs/op, want 0", allocs)
	}
}
