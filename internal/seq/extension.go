package seq

import "fmt"

// Extension characters summarize the bases observed adjacent to a k-mer in
// the read set. They follow the HipMer/MetaHipMer convention:
//
//	'A','C','G','T' — a unique high-quality extension with that base
//	'F'             — a fork: multiple bases contradict each other
//	'X'             — no extension observed (a dead end)
const (
	ExtFork = 'F'
	ExtNone = 'X'
)

// ExtCounts accumulates, for one side of a k-mer, how many times each base
// was observed adjacent to it in the reads.
type ExtCounts [4]uint32

// Add records an observation of base code on this side.
func (e *ExtCounts) Add(code byte) { e[code&3]++ }

// AddN records n observations of base code on this side.
func (e *ExtCounts) AddN(code byte, n uint32) { e[code&3] += n }

// Total returns the total number of observations.
func (e ExtCounts) Total() uint32 {
	return e[0] + e[1] + e[2] + e[3]
}

// Merge adds the counts from other into e.
func (e *ExtCounts) Merge(other ExtCounts) {
	for i := range e {
		e[i] += other[i]
	}
}

// Best returns the base code with the highest count, its count, and the
// count of the runner-up.
func (e ExtCounts) Best() (code byte, best, second uint32) {
	best, second = 0, 0
	code = 0
	for i, c := range e {
		if c > best {
			second = best
			best = c
			code = byte(i)
		} else if c > second {
			second = c
		}
	}
	return code, best, second
}

// Classify reduces the counts to a single extension character using the
// MetaHipMer rule: the most common base wins if the number of contradicting
// observations does not exceed the high-quality threshold thq; otherwise the
// side is a fork. A side with no observations is a dead end ('X'). minCount
// is the minimum number of supporting observations for a call.
func (e ExtCounts) Classify(minCount uint32, thq uint32) byte {
	code, best, _ := e.Best()
	total := e.Total()
	if total == 0 || best < minCount {
		return ExtNone
	}
	contradicting := total - best
	if contradicting > thq {
		return ExtFork
	}
	return BaseToChar(code)
}

// IsBaseExt reports whether an extension character is a concrete base (as
// opposed to a fork or a dead end).
func IsBaseExt(c byte) bool {
	_, ok := CharToBase(c)
	return ok
}

// ExtPair is the two-letter extension code stored with each k-mer in the de
// Bruijn graph hash table: the unique base (or fork/none marker) immediately
// preceding and following the k-mer.
type ExtPair struct {
	Left  byte
	Right byte
}

// String renders the extension pair, e.g. "AT", "FX".
func (p ExtPair) String() string { return string([]byte{p.Left, p.Right}) }

// Swap returns the extension pair as seen from the reverse complement
// orientation: sides are exchanged and base extensions complemented.
func (p ExtPair) Swap() ExtPair {
	return ExtPair{Left: complementExt(p.Right), Right: complementExt(p.Left)}
}

func complementExt(c byte) byte {
	if code, ok := CharToBase(c); ok {
		return BaseToChar(ComplementCode(code))
	}
	return c
}

// KmerCount is the full record produced by k-mer analysis for one canonical
// k-mer: its total count and the extension observations on each side, where
// "left" and "right" are defined with respect to the canonical orientation.
type KmerCount struct {
	Kmer  Kmer
	Count uint32
	Left  ExtCounts
	Right ExtCounts
}

// Merge combines two records for the same canonical k-mer.
func (kc *KmerCount) Merge(other KmerCount) error {
	if kc.Kmer != other.Kmer {
		return fmt.Errorf("seq: merging counts for different k-mers %s and %s",
			kc.Kmer.String(), other.Kmer.String())
	}
	kc.Count += other.Count
	kc.Left.Merge(other.Left)
	kc.Right.Merge(other.Right)
	return nil
}

// Observe records one occurrence of the canonical k-mer with the given
// neighbouring bases. hasLeft/hasRight indicate whether a neighbour existed
// (k-mers at the very ends of reads have none). If the observed orientation
// was the reverse complement of the canonical form, wasRC must be true and
// the neighbours are swapped/complemented accordingly.
func (kc *KmerCount) Observe(leftCode, rightCode byte, hasLeft, hasRight, wasRC bool) {
	kc.Count++
	if wasRC {
		hasLeft, hasRight = hasRight, hasLeft
		leftCode, rightCode = ComplementCode(rightCode), ComplementCode(leftCode)
	}
	if hasLeft {
		kc.Left.Add(leftCode)
	}
	if hasRight {
		kc.Right.Add(rightCode)
	}
}
