// Package seq provides the DNA sequence primitives used throughout the
// assembler: 2-bit base codes, packed k-mers (k <= 64), reverse complements,
// canonical forms, reads and read pairs, and extension bookkeeping.
//
// Every higher-level module (k-mer analysis, de Bruijn graph traversal,
// alignment, local assembly, scaffolding) is built on these types, so they
// are designed to be small, allocation-free values that are safe to use as
// map keys and to send between virtual ranks.
package seq

import "fmt"

// Base codes. DNA bases are packed two bits per base.
const (
	BaseA = 0
	BaseC = 1
	BaseG = 2
	BaseT = 3
)

// baseChars maps a 2-bit base code to its ASCII character.
var baseChars = [4]byte{'A', 'C', 'G', 'T'}

// baseCodes maps an ASCII character to its 2-bit code, or 0xFF if the
// character is not one of ACGT (upper or lower case).
var baseCodes [256]byte

func init() {
	for i := range baseCodes {
		baseCodes[i] = 0xFF
	}
	baseCodes['A'], baseCodes['a'] = BaseA, BaseA
	baseCodes['C'], baseCodes['c'] = BaseC, BaseC
	baseCodes['G'], baseCodes['g'] = BaseG, BaseG
	baseCodes['T'], baseCodes['t'] = BaseT, BaseT
}

// BaseToChar returns the ASCII character for a 2-bit base code.
func BaseToChar(code byte) byte { return baseChars[code&3] }

// CharToBase returns the 2-bit code for an ASCII base character and whether
// the character was a valid unambiguous base.
func CharToBase(c byte) (byte, bool) {
	code := baseCodes[c]
	return code, code != 0xFF
}

// ComplementCode returns the 2-bit code of the complementary base.
func ComplementCode(code byte) byte { return 3 - (code & 3) }

// ComplementChar returns the complementary base character, preserving only
// upper-case output. Non-ACGT characters map to 'N'.
func ComplementChar(c byte) byte {
	code, ok := CharToBase(c)
	if !ok {
		return 'N'
	}
	return BaseToChar(ComplementCode(code))
}

// ReverseComplement returns the reverse complement of a DNA sequence given
// as ASCII bases. Non-ACGT characters are preserved as 'N'.
func ReverseComplement(s []byte) []byte {
	out := make([]byte, len(s))
	for i, c := range s {
		out[len(s)-1-i] = ComplementChar(c)
	}
	return out
}

// ReverseComplementString is a convenience wrapper around ReverseComplement.
func ReverseComplementString(s string) string {
	return string(ReverseComplement([]byte(s)))
}

// ValidBases reports whether every character in s is an unambiguous base.
func ValidBases(s []byte) bool {
	for _, c := range s {
		if _, ok := CharToBase(c); !ok {
			return false
		}
	}
	return true
}

// CountValidBases returns the number of unambiguous bases in s.
func CountValidBases(s []byte) int {
	n := 0
	for _, c := range s {
		if _, ok := CharToBase(c); ok {
			n++
		}
	}
	return n
}

// GCContent returns the fraction of G or C bases among the valid bases of s.
// It returns 0 for sequences with no valid bases.
func GCContent(s []byte) float64 {
	gc, n := 0, 0
	for _, c := range s {
		code, ok := CharToBase(c)
		if !ok {
			continue
		}
		n++
		if code == BaseC || code == BaseG {
			gc++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(gc) / float64(n)
}

// Read is a single sequencing read: an identifier, a nucleotide sequence and
// an optional per-base quality string (Phred+33).
type Read struct {
	ID   string
	Seq  []byte
	Qual []byte
	// LibID identifies the paired-end library the read was sequenced from
	// (an index into the assembly configuration's library list). Reads from
	// a single-library source carry the zero value.
	LibID uint8
	// SampleID identifies the sample the read belongs to in a multi-sample
	// co-assembly (an index into the sample list the reads were simulated
	// or loaded with). Reads from a single-sample source carry the zero
	// value. The pipeline co-assembles the union of all samples' reads;
	// the tag exists so evaluation can attribute assembled sequences back
	// to the samples whose reads localized onto them.
	SampleID uint8
}

// Len returns the read length in bases.
func (r *Read) Len() int { return len(r.Seq) }

// WireSize returns the wire bytes charged when a read is shipped between
// ranks (read localization, recruitment): identifier, sequence and quality
// payloads plus two 8-byte length words of framing, which over-provision
// enough headroom to also carry the one-byte library and sample tags — so
// the charged size stays the historical 17-byte constant plus payloads and
// every golden sim-seconds value is preserved, while remaining a true upper
// bound on the reflective pgas.WireSizeOf packing (payload + 2 tag bytes).
func (r Read) WireSize() int { return 17 + len(r.ID) + len(r.Seq) + len(r.Qual) }

// Validate checks internal consistency of the read.
func (r *Read) Validate() error {
	if len(r.Seq) == 0 {
		return fmt.Errorf("seq: read %q has empty sequence", r.ID)
	}
	if len(r.Qual) != 0 && len(r.Qual) != len(r.Seq) {
		return fmt.Errorf("seq: read %q quality length %d != sequence length %d",
			r.ID, len(r.Qual), len(r.Seq))
	}
	return nil
}

// Clone returns a deep copy of the read, tags included.
func (r *Read) Clone() Read {
	c := Read{ID: r.ID, LibID: r.LibID, SampleID: r.SampleID}
	c.Seq = append([]byte(nil), r.Seq...)
	c.Qual = append([]byte(nil), r.Qual...)
	return c
}

// ReadPair is a paired-end read: two reads sequenced from the two ends of the
// same DNA fragment, separated by the library insert size.
type ReadPair struct {
	Fwd Read
	Rev Read
}

// DefaultInsertSize and DefaultInsertStd are the project-wide defaults for
// paired-end library geometry. Every layer that needs a fallback insert size
// — core.DefaultConfig, scaffold.Run's zero-value guard, sim's read
// simulator, cmd/mhm's flag default — references these constants, so the
// assembler's assumption and the simulator's output cannot drift apart.
// (They previously did: scaffolding fell back to 300 while the pipeline
// default was 280.) The std is its own constant, not DefaultInsertSize/10:
// the insert/10 rule is the derivation heuristic applied when a caller
// supplies an explicit insert size without a std.
const (
	DefaultInsertSize = 280
	DefaultInsertStd  = 25
)

// Library describes one paired-end read library: its name, the read length,
// and the fragment (insert) geometry. A multi-library assembly lists its
// libraries in core.Config.Libraries, and every Read carries the index of
// the library it came from in Read.LibID; scaffolding runs one round per
// library in ascending insert-size order.
type Library struct {
	Name       string
	ReadLen    int
	InsertSize int
	InsertStd  int
}

// phredStep is 10^(-0.1), the per-Phred-unit error-probability factor.
const phredStep = 0.7943282347242815

// phredProb[i] = phredStep^i, built by the same iterated multiplication the
// former per-call loops performed so every table entry is bit-identical to
// the value the loop would have produced — QualToProb and ProbToQual keep
// their exact historical outputs (and with them every golden sim-seconds
// hash) while dropping from O(phred) multiplies per call to a table lookup.
// 64 entries cover the full Phred+33 printable range ('!'..'a') with room
// beyond the 'I' clamp.
var phredProb [64]float64

func init() {
	p := 1.0
	for i := range phredProb {
		phredProb[i] = p
		p *= phredStep
	}
}

// QualToProb converts a Phred+33 quality character into an error probability.
func QualToProb(q byte) float64 {
	phred := int(q) - 33
	if phred < 0 {
		phred = 0
	}
	if phred < len(phredProb) {
		return phredProb[phred]
	}
	// Qualities beyond the table (q > 96) do not occur in Phred+33 data; keep
	// the exact iterated-multiply semantics for them anyway.
	p := phredProb[len(phredProb)-1]
	for i := len(phredProb) - 1; i < phred; i++ {
		p *= phredStep
	}
	return p
}

// ProbToQual converts an error probability into a Phred+33 quality character,
// clamped to the printable range used by Illumina ('!'..'I'). The result is
// the smallest phred in [0, 40] whose table probability does not exceed p
// (the table is strictly decreasing, so a binary search replaces the former
// multiply loop with identical output).
func ProbToQual(p float64) byte {
	if p <= 0 {
		return 'I'
	}
	if !(phredProb[0] > p) {
		// p >= 1 (or NaN): the former loop never entered its first iteration.
		return 33
	}
	lo, hi := 1, 40 // invariant: phredProb[i] > p for all i < lo; answer <= hi
	for lo < hi {
		mid := (lo + hi) / 2
		if phredProb[mid] <= p {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return byte(33 + lo)
}

// MeanDepthFromCounts returns the arithmetic mean of a slice of k-mer counts,
// used as the depth of a contig assembled from those k-mers.
func MeanDepthFromCounts(counts []uint32) float64 {
	if len(counts) == 0 {
		return 0
	}
	var sum float64
	for _, c := range counts {
		sum += float64(c)
	}
	return sum / float64(len(counts))
}
