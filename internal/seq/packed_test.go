package seq

import (
	"math/rand"
	"testing"
)

// naiveMismatchCount is the per-base reference MismatchCount is checked
// against: compare codes one position at a time.
func naiveMismatchCount(a, b Packed, aOff, bOff, n int) int {
	mm := 0
	for i := 0; i < n; i++ {
		if a.Code(aOff+i) != b.Code(bOff+i) {
			mm++
		}
	}
	return mm
}

func TestPackedRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 2, 31, 32, 33, 63, 64, 65, 100, 257, 1000} {
		s := []byte(randomSeq(r, n))
		p, ok := PackASCII(s)
		if !ok {
			t.Fatalf("n=%d: PackASCII refused a pure-ACGT sequence", n)
		}
		if p.Len() != n {
			t.Fatalf("n=%d: Len() = %d", n, p.Len())
		}
		if got := string(p.AppendUnpack(nil)); got != string(s) {
			t.Fatalf("n=%d: round trip mismatch\n got %s\nwant %s", n, got, s)
		}
		for i := 0; i < n; i++ {
			want, _ := CharToBase(s[i])
			if p.Code(i) != want {
				t.Fatalf("n=%d: Code(%d) = %d, want %d", n, i, p.Code(i), want)
			}
		}
	}
}

func TestPackedRejectsAmbiguousAndLowercase(t *testing.T) {
	for _, bad := range []string{"ACGN", "acgt", "ACGTa", "AC GT", "ACG\x00"} {
		if _, ok := PackASCII([]byte(bad)); ok {
			t.Errorf("PackASCII(%q) accepted a non-strict sequence", bad)
		}
		var p Packed
		p.SetASCII([]byte("ACGT")) // pre-populate, then fail: must leave p empty
		if p.SetASCII([]byte(bad)) || p.Len() != 0 {
			t.Errorf("SetASCII(%q) = ok or left residue (len %d)", bad, p.Len())
		}
	}
}

func TestPackedReverseComplementMatchesASCII(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	var rc Packed
	for _, n := range []int{1, 5, 31, 32, 33, 64, 65, 100, 321} {
		s := []byte(randomSeq(r, n))
		p, _ := PackASCII(s)
		rc.SetReverseComplementOf(p)
		want := string(ReverseComplement(s))
		if got := string(rc.AppendUnpack(nil)); got != want {
			t.Fatalf("n=%d: packed RC\n got %s\nwant %s", n, got, want)
		}
		// The retained buffer must not leak stale bits into a shorter RC.
		short, _ := PackASCII(s[:n/2+1])
		rc.SetReverseComplementOf(short)
		want = string(ReverseComplement(s[:n/2+1]))
		if got := string(rc.AppendUnpack(nil)); got != want {
			t.Fatalf("n=%d: reused-buffer RC\n got %s\nwant %s", n, got, want)
		}
	}
}

func TestPackedGreaterThanRC(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 200; i++ {
		s := []byte(randomSeq(r, 1+r.Intn(80)))
		p, _ := PackASCII(s)
		want := string(s) > string(ReverseComplement(s))
		if got := p.GreaterThanRC(); got != want {
			t.Fatalf("GreaterThanRC(%s) = %v, want %v", s, got, want)
		}
	}
}

func TestPackedSliceAndWordAt(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	s := []byte(randomSeq(r, 200))
	p, _ := PackASCII(s)
	for i := 0; i < 100; i++ {
		lo := r.Intn(len(s) + 1)
		hi := lo + r.Intn(len(s)-lo+1)
		sub := p.Slice(lo, hi)
		if got, want := string(sub.AppendUnpack(nil)), string(s[lo:hi]); got != want {
			t.Fatalf("Slice(%d,%d) = %s, want %s", lo, hi, got, want)
		}
	}
	// WordAt must zero-pad past the end.
	tail, _ := PackASCII([]byte("ACG"))
	if got := tail.WordAt(0) &^ lowBaseMask(3); got != 0 {
		t.Errorf("WordAt past-the-end bits = %#x, want 0", got)
	}
	if got := tail.WordAt(64); got != 0 {
		t.Errorf("WordAt(64) on a 3-base sequence = %#x, want 0", got)
	}
}

func TestPackedAppendKmerAndCodes(t *testing.T) {
	km := MustKmer("ACGTTGCAAGCTTACGGATCCGTAAACTGGTCC")
	var p Packed
	p.AppendKmer(km)
	if got := string(p.AppendUnpack(nil)); got != km.String() {
		t.Fatalf("AppendKmer = %s, want %s", got, km.String())
	}
	p.AppendCode(BaseT)
	if got := p.Code(p.Len() - 1); got != BaseT {
		t.Fatalf("AppendCode tail = %d, want %d", got, BaseT)
	}
}

func TestMismatchCountMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	for trial := 0; trial < 300; trial++ {
		a, _ := PackASCII([]byte(randomSeq(r, 1+r.Intn(300))))
		b, _ := PackASCII([]byte(randomSeq(r, 1+r.Intn(300))))
		aOff := r.Intn(a.Len())
		bOff := r.Intn(b.Len())
		maxN := min(a.Len()-aOff, b.Len()-bOff)
		n := r.Intn(maxN + 1)
		got := MismatchCount(a, b, aOff, bOff, n)
		want := naiveMismatchCount(a, b, aOff, bOff, n)
		if got != want {
			t.Fatalf("MismatchCount(aOff=%d, bOff=%d, n=%d) = %d, want %d",
				aOff, bOff, n, got, want)
		}
	}
}

func TestAppendReverseComplement(t *testing.T) {
	s := []byte("ACGTNACGT")
	want := string(ReverseComplement(s))
	if got := string(AppendReverseComplement(nil, s)); got != want {
		t.Fatalf("AppendReverseComplement = %s, want %s", got, want)
	}
	buf := make([]byte, 0, 32)
	buf = AppendReverseComplement(buf[:0], s)
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendReverseComplement(buf[:0], s)
	})
	if allocs != 0 {
		t.Errorf("AppendReverseComplement with warm buffer: %v allocs/op, want 0", allocs)
	}
}

// FuzzPackedRoundTrip drives the three packed invariants with random
// sequences and offsets: pack→unpack is the identity, the packed reverse
// complement matches the ASCII ReverseComplement, and MismatchCount matches
// the naive per-base count at arbitrary offsets and lengths.
func FuzzPackedRoundTrip(f *testing.F) {
	f.Add([]byte("ACGTTGCAAGCTTACG"), []byte("GGATCCGTAAACTGGTCC"), uint16(0), uint16(0), uint16(8))
	f.Add([]byte("A"), []byte("T"), uint16(0), uint16(0), uint16(1))
	f.Add([]byte("ACGTACGTACGTACGTACGTACGTACGTACGTA"), []byte("TTTT"), uint16(3), uint16(1), uint16(2))
	f.Fuzz(func(t *testing.T, sa, sb []byte, aOff, bOff, n uint16) {
		// Map arbitrary bytes onto ACGT so every input exercises the packed
		// paths instead of being rejected at the door.
		for i := range sa {
			sa[i] = BaseToChar(sa[i] & 3)
		}
		for i := range sb {
			sb[i] = BaseToChar(sb[i] & 3)
		}
		a, ok := PackASCII(sa)
		if !ok {
			t.Fatal("PackASCII refused a sanitized sequence")
		}
		if got := string(a.AppendUnpack(nil)); got != string(sa) {
			t.Fatalf("round trip: got %s, want %s", got, sa)
		}
		var rc Packed
		rc.SetReverseComplementOf(a)
		if got, want := string(rc.AppendUnpack(nil)), string(ReverseComplement(sa)); got != want {
			t.Fatalf("reverse complement: got %s, want %s", got, want)
		}
		if got, want := a.GreaterThanRC(), string(sa) > string(ReverseComplement(sa)); got != want {
			t.Fatalf("GreaterThanRC = %v, want %v", got, want)
		}
		b, _ := PackASCII(sb)
		if a.Len() == 0 || b.Len() == 0 {
			return
		}
		ao := int(aOff) % a.Len()
		bo := int(bOff) % b.Len()
		nn := int(n) % (min(a.Len()-ao, b.Len()-bo) + 1)
		got := MismatchCount(a, b, ao, bo, nn)
		if want := naiveMismatchCount(a, b, ao, bo, nn); got != want {
			t.Fatalf("MismatchCount(%d, %d, %d) = %d, want %d", ao, bo, nn, got, want)
		}
	})
}

// BenchmarkMismatchCount measures the word-at-a-time comparison against the
// per-base loop on a 100-base window, the typical read length of the extend
// kernel.
func BenchmarkMismatchCount(b *testing.B) {
	r := rand.New(rand.NewSource(16))
	a1, _ := PackASCII([]byte(randomSeq(r, 2000)))
	a2, _ := PackASCII([]byte(randomSeq(r, 2000)))
	b.Run("packed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			MismatchCount(a1, a2, i%1000, (i*7)%1000, 100)
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			naiveMismatchCount(a1, a2, i%1000, (i*7)%1000, 100)
		}
	})
}
