// Collective operations of the virtual PGAS machine.
//
// All collectives share one discipline: data moves through the machine's
// shared buffers (the ranks really run concurrently, so barriers provide the
// happens-before edges), while *cost* is charged as if the collective ran on
// a tree network. A Cray-class machine executes reductions, broadcasts and
// gathers in ceil(log2 P) rounds, not as P serialized messages to rank 0, so
// that is what the cost model charges:
//
//   - AllReduce / Gather / GatherV follow the recursive-doubling (hypercube)
//     schedule: in round k each rank exchanges its accumulated block with
//     partner id XOR 2^k. With RanksPerNode a power of two the first
//     log2(RanksPerNode) rounds stay on-node and only the remaining rounds
//     pay off-node latency and bandwidth, so node-aware placement matters to
//     collectives exactly as it does to point-to-point traffic.
//   - Broadcast follows the binomial doubling schedule rooted at rank 0: in
//     round k ranks below 2^k forward to id+2^k. Rank 0 sends every round,
//     which makes its clock the ceil(log2 P)-hop critical path.
//
// Sizes are charged honestly. GatherV charges the actual payload bytes of
// every block it forwards (the recursive-doubling block grows as 2^k ranks'
// payloads), so gathering all alignments is no longer priced like gathering
// eight integers. Scalar collectives charge scalarBytes per element.
//
// Large-P discipline: a collective allocates O(1) per rank per call, never
// O(P). The shared result (reduced value, gathered slice, exclusive-scan
// prefix table) is computed exactly once per call — by the rank that
// completes the entry barrier, under the barrier lock (Rank.barrierOn) — and
// every rank reads the same object between the entry and exit barriers.
// Returned slices are therefore shared across ranks and must be treated as
// read-only. Exchanges deposit only non-empty batches into per-destination
// mailboxes (exchInbox), so a sparse communication pattern costs O(messages),
// not O(P²) slots.
package pgas

import (
	"fmt"
	"math/bits"
	"slices"
	"sync"
)

// Number is the constraint of the typed exact reductions: any fixed-size
// numeric type. Reductions combine values natively — an int64 sum is exact
// int64 arithmetic, never a float64 round-trip.
type Number interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 | ~uintptr |
		~float32 | ~float64
}

// ReduceOp selects the combining function of an all-reduce.
type ReduceOp int

// Supported reductions.
const (
	ReduceSum ReduceOp = iota
	ReduceMax
	ReduceMin
)

func combine[T Number](op ReduceOp, a, b T) T {
	switch op {
	case ReduceMax:
		if a > b {
			return a
		}
		return b
	case ReduceMin:
		if a < b {
			return a
		}
		return b
	default:
		return a + b
	}
}

// scalarBytes is the wire size charged per element of the scalar collectives
// (AllReduce, Broadcast, Gather of one value): one 8-byte word.
const scalarBytes = 8

// collSlot is what a rank deposits in the shared gather buffer: its payload
// and the payload's wire size, so the exact per-round block sizes of the
// tree schedule can be reconstructed after the entry barrier.
type collSlot struct {
	payload any
	bytes   int
}

// exchBatch is one batch deposited into an exchange mailbox: the sending
// rank, the batch payload (a []T boxed as any) and its wire bytes as
// computed by the sender's size function.
type exchBatch struct {
	src     int
	payload any
	bytes   int
}

// exchInbox is one destination rank's mailbox. Senders append under the
// mutex before the exchange's entry barrier; the owner drains between the
// entry and exit barriers. Padded out to a cache line so concurrent deposits
// to neighbouring destinations do not false-share.
type exchInbox struct {
	mu      sync.Mutex
	batches []exchBatch
	_       [24]byte
}

func (ib *exchInbox) put(src int, payload any, bytes int) {
	ib.mu.Lock()
	ib.batches = append(ib.batches, exchBatch{src: src, payload: payload, bytes: bytes})
	ib.mu.Unlock()
}

// drainInbox consumes every batch deposited for this rank in ascending
// source-rank order, replaying the dense exchange's accounting: inbound
// bytes for batches from other ranks, and the full received footprint
// (including the rank's own loop-back batch) against the resident meter.
// Must be called between the exchange's entry barrier (all deposits
// delivered) and its exit barrier (mailbox array reusable).
func (r *Rank) drainInbox(fn func(src int, payload any, bytes int)) {
	ib := &r.machine.inboxes[r.id]
	ib.mu.Lock()
	batches := ib.batches
	ib.mu.Unlock()
	// Deposits arrive in whatever order the senders ran; src values are
	// distinct (at most one batch per sender), so an unstable generic sort
	// gives the deterministic ascending-src order without sort.Slice's
	// reflection overhead — this runs once per rank per exchange.
	slices.SortFunc(batches, func(a, b exchBatch) int { return a.src - b.src })
	resident := 0
	for i := range batches {
		b := batches[i]
		batches[i] = exchBatch{} // drop the payload reference: the array is recycled
		resident += b.bytes
		if b.src != r.id {
			r.stats.BytesReceived += uint64(b.bytes)
		}
		fn(b.src, b.payload, b.bytes)
	}
	ib.mu.Lock()
	ib.batches = batches[:0]
	ib.mu.Unlock()
	r.ChargeResident(resident)
}

// ceilLog2 returns ceil(log2(n)) — the number of rounds of a binomial-tree
// collective over n participants.
func ceilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// chargeDuplexHop charges one round of a recursive-doubling exchange with
// partner: a full-duplex send of sendBytes and receive of recvBytes in one
// message time. The round costs one latency plus the larger direction's
// bandwidth term (both directions move concurrently on a full-duplex link).
// Each endpoint counts only its outbound bytes toward OffNodeBytes, so
// summed over ranks every byte crossing a node boundary is counted once.
func (r *Rank) chargeDuplexHop(partner, sendBytes, recvBytes int) {
	c := r.machine.cfg.Cost
	off := !r.SameNode(partner)
	r.stats.Messages++
	r.stats.BytesSent += uint64(sendBytes)
	r.stats.BytesReceived += uint64(recvBytes)
	wire := sendBytes
	if recvBytes > wire {
		wire = recvBytes
	}
	if off {
		r.stats.OffNodeMessages++
		r.stats.OffNodeBytes += uint64(sendBytes)
		r.clock += c.LatencyOffNode + float64(wire)*c.ByteOffNode
	} else {
		r.clock += c.LatencyOnNode + float64(wire)*c.ByteOnNode
	}
}

// chargeRecvHop charges a receive-only hop: bytes arriving from src with no
// matching sender-side charge. Used for the fold-in rounds of
// non-power-of-two tree schedules, where a rank's hypercube partner does not
// exist but the partner *block* does — a real algorithm (Bruck, or an extra
// fold round) pays a message to deliver it. The receiver initiates the
// accounting, mirroring ChargeGet, so the bytes are still counted exactly
// once.
func (r *Rank) chargeRecvHop(src, bytes int) {
	c := r.machine.cfg.Cost
	off := !r.SameNode(src)
	r.stats.Messages++
	r.stats.BytesReceived += uint64(bytes)
	if off {
		r.stats.OffNodeMessages++
		r.stats.OffNodeBytes += uint64(bytes)
		r.clock += c.LatencyOffNode + float64(bytes)*c.ByteOffNode
	} else {
		r.clock += c.LatencyOnNode + float64(bytes)*c.ByteOnNode
	}
}

// chargeAllGatherTree charges the recursive-doubling all-gather schedule
// from the shared cumulative-size table (machine.collPrefix, filled once per
// collective by the entry barrier's completing rank): prefix[i] is the total
// payload bytes of ranks [0, i). In round k rank i holds the payloads of the
// 2^k ranks whose index differs from i only in the low k bits, and swaps
// that block with partner i XOR 2^k. On non-power-of-two machines a partner
// beyond the rank count may still front a partially existing block; the rank
// is then charged a receive-only fold-in hop for that block's real bytes.
// Block sizes are differences of the same integer prefix sums on every rank,
// so the charged floats are bit-identical to summing the per-rank sizes.
func (r *Rank) chargeAllGatherTree(prefix []int) {
	p := r.machine.cfg.Ranks
	rounds := ceilLog2(p)
	blockBytes := func(base, span int) int {
		if base >= p {
			return 0
		}
		hi := base + span
		if hi > p {
			hi = p
		}
		return prefix[hi] - prefix[base]
	}
	for k := 0; k < rounds; k++ {
		span := 1 << k
		partner := r.id ^ span
		base := partner &^ (span - 1)
		if partner >= p {
			if recv := blockBytes(base, span); recv > 0 {
				r.chargeRecvHop(base, recv)
			}
			continue
		}
		send := blockBytes(r.id&^(span-1), span)
		recv := blockBytes(base, span)
		r.chargeDuplexHop(partner, send, recv)
	}
}

// chargeAllReduceTree charges the recursive-doubling all-reduce schedule:
// ceil(log2 P) rounds, each exchanging one fixed-size accumulator with
// partner id XOR 2^k. As in chargeAllGatherTree, a missing partner whose
// subcube partially exists costs a receive-only fold-in hop for its partial
// accumulator.
func (r *Rank) chargeAllReduceTree(bytes int) {
	p := r.machine.cfg.Ranks
	rounds := ceilLog2(p)
	for k := 0; k < rounds; k++ {
		span := 1 << k
		partner := r.id ^ span
		if partner >= p {
			if base := partner &^ (span - 1); base < p {
				r.chargeRecvHop(base, bytes)
			}
			continue
		}
		r.chargeDuplexHop(partner, bytes, bytes)
	}
}

// chargeBroadcastTree charges the binomial doubling broadcast rooted at rank
// 0: in round k every rank with id < 2^k forwards the payload to id + 2^k.
// Senders pay a message; receivers account the incoming bytes and the
// latency of waiting for them.
func (r *Rank) chargeBroadcastTree(bytes int) {
	p := r.machine.cfg.Ranks
	c := r.machine.cfg.Cost
	rounds := ceilLog2(p)
	for k := 0; k < rounds; k++ {
		span := 1 << k
		switch {
		case r.id < span:
			if t := r.id | span; t < p {
				r.chargeDuplexHop(t, bytes, 0)
			}
		case r.id < 2*span:
			// This rank receives its copy in round k from id XOR 2^k. The
			// sender already counted the message; the receiver accounts the
			// incoming bytes and pays the wire time.
			src := r.id ^ span
			off := !r.SameNode(src)
			r.stats.BytesReceived += uint64(bytes)
			if off {
				r.clock += c.LatencyOffNode + float64(bytes)*c.ByteOffNode
			} else {
				r.clock += c.LatencyOnNode + float64(bytes)*c.ByteOnNode
			}
		}
	}
}

// AllReduce combines one value per rank with the given reduction and returns
// the combined value on every rank. The reduction is exact in T's native
// arithmetic — folded once, in ascending rank order, by the rank completing
// the entry barrier — and its cost is the log2(P)-round tree schedule.
func AllReduce[T Number](r *Rank, x T, op ReduceOp) T {
	m := r.machine
	m.gatherBuf[r.id] = collSlot{payload: x, bytes: scalarBytes}
	r.barrierOn(func() {
		acc := m.gatherBuf[0].payload.(T)
		for i := 1; i < m.cfg.Ranks; i++ {
			acc = combine(op, acc, m.gatherBuf[i].payload.(T))
		}
		m.collResult = acc
	})
	out := m.collResult.(T)
	r.chargeAllReduceTree(scalarBytes)
	r.Barrier()
	m.gatherBuf[r.id] = collSlot{}
	return out
}

// ExScan combines the values of all ranks with a lower ID than the caller
// (an exclusive prefix scan, MPI_Exscan): rank i returns
// op(x_0, ..., x_{i-1}), and rank 0 returns T's zero value. It is the
// collective behind gather-free dense renumbering — an ExScan of per-rank
// counts is every rank's global offset — and is charged exactly like
// AllReduce: the recursive-doubling tree schedule, ceil(log2 P) rounds of one
// scalar each, not an O(P) gather. The full prefix table is built once (same
// left-to-right fold as ever, so float reductions associate identically) and
// each rank reads its own entry.
func ExScan[T Number](r *Rank, x T, op ReduceOp) T {
	m := r.machine
	m.gatherBuf[r.id] = collSlot{payload: x, bytes: scalarBytes}
	r.barrierOn(func() {
		prefix := make([]T, m.cfg.Ranks)
		var acc T
		for i := 1; i < m.cfg.Ranks; i++ {
			v := m.gatherBuf[i-1].payload.(T)
			if i == 1 {
				acc = v
			} else {
				acc = combine(op, acc, v)
			}
			prefix[i] = acc
		}
		m.collResult = prefix
	})
	out := m.collResult.([]T)[r.id]
	r.chargeAllReduceTree(scalarBytes)
	r.Barrier()
	m.gatherBuf[r.id] = collSlot{}
	return out
}

// AllReduceFloat64 combines one float64 value per rank.
func (r *Rank) AllReduceFloat64(x float64, op ReduceOp) float64 {
	return AllReduce(r, x, op)
}

// AllReduceInt64 combines one int64 value per rank. The reduction is native
// int64 arithmetic and therefore exact for the full int64 range.
func (r *Rank) AllReduceInt64(x int64, op ReduceOp) int64 {
	return AllReduce(r, x, op)
}

// ReduceAll combines one arbitrary mergeable value per rank — a streaming
// summary, a sketch — and returns fold(contributions in rank order) on every
// rank. It is charged like AllReduce of a payload of the given wire bytes
// (the recursive-doubling tree, ceil(log2 P) rounds), NOT like a gather:
// bytes must be a bound on one contribution's wire size, identical on every
// rank. No rank materializes all P contributions against the resident meter
// — at any moment a real tree reduction holds at most two partial summaries.
// fold runs exactly once, on the goroutine of the rank completing the entry
// barrier; it must be deterministic, must not mutate the contributions, and
// must not touch rank-local state. Every rank returns the same shared
// result, which must be treated as read-only.
func ReduceAll[T any](r *Rank, x T, bytes int, fold func(contribs []T) T) T {
	m := r.machine
	m.gatherBuf[r.id] = collSlot{payload: x, bytes: bytes}
	r.barrierOn(func() {
		contribs := make([]T, m.cfg.Ranks)
		for i := 0; i < m.cfg.Ranks; i++ {
			contribs[i] = m.gatherBuf[i].payload.(T)
		}
		m.collResult = fold(contribs)
	})
	out := m.collResult.(T)
	r.chargeAllReduceTree(bytes)
	r.Barrier()
	m.gatherBuf[r.id] = collSlot{}
	return out
}

// Gather collects one value from every rank and returns the slice (indexed
// by rank) on every rank, charging the all-gather tree schedule at
// scalarBytes per rank. The returned slice is one object shared by all
// ranks: treat it as read-only.
func Gather[T any](r *Rank, x T) []T {
	m := r.machine
	m.gatherBuf[r.id] = collSlot{payload: x, bytes: scalarBytes}
	r.barrierOn(func() {
		out := make([]T, m.cfg.Ranks)
		for i := 0; i < m.cfg.Ranks; i++ {
			slot := m.gatherBuf[i]
			out[i] = slot.payload.(T)
			m.collPrefix[i+1] = m.collPrefix[i] + slot.bytes
		}
		m.collResult = out
	})
	out := m.collResult.([]T)
	r.chargeAllGatherTree(m.collPrefix)
	r.Barrier()
	// Every rank has read all slots (the barrier above); releasing the
	// rank's own slot here cannot race, since only this rank writes it.
	m.gatherBuf[r.id] = collSlot{}
	return out
}

// GatherV collects a variable-length slice from every rank and returns the
// per-rank slices (indexed by source rank) on every rank. Unlike the scalar
// Gather it charges the actual payload: len(items)*bytesPerItem bytes from
// this rank, forwarded through the log2(P)-round all-gather tree, so a rank
// gathering megabytes of alignments pays for megabytes, not for P words.
// The returned outer slice is shared by all ranks: treat it as read-only.
func GatherV[T any](r *Rank, items []T, bytesPerItem int) [][]T {
	return gatherV(r, items, len(items)*bytesPerItem)
}

// GatherVFunc is GatherV for payloads whose elements have variable wire
// sizes (contigs, scaffolds): size reports the wire bytes of one item.
func GatherVFunc[T any](r *Rank, items []T, size func(T) int) [][]T {
	total := 0
	for _, it := range items {
		total += size(it)
	}
	return gatherV(r, items, total)
}

func gatherV[T any](r *Rank, items []T, localBytes int) [][]T {
	m := r.machine
	m.gatherBuf[r.id] = collSlot{payload: items, bytes: localBytes}
	r.barrierOn(func() {
		out := make([][]T, m.cfg.Ranks)
		for i := 0; i < m.cfg.Ranks; i++ {
			slot := m.gatherBuf[i]
			out[i] = slot.payload.([]T)
			m.collPrefix[i+1] = m.collPrefix[i] + slot.bytes
		}
		m.collResult = out
		m.collTotal = m.collPrefix[m.cfg.Ranks]
	})
	out := m.collResult.([][]T)
	r.chargeAllGatherTree(m.collPrefix)
	// Every rank materializes the full gathered payload: charge it against
	// the resident-bytes meter (the caller releases it when the gathered
	// data is dropped).
	r.ChargeResident(m.collTotal)
	r.Barrier()
	// See Gather: the slot is dead after the exit barrier; dropping it keeps
	// the machine from pinning the last gathered payload alive.
	m.gatherBuf[r.id] = collSlot{}
	return out
}

// Broadcast returns rank 0's value of x on every rank, charged as a binomial
// doubling tree rooted at rank 0. The broadcast payloads in this codebase
// are handles (map pointers, atomic handles, shared slices), so the wire
// size is one word.
func Broadcast[T any](r *Rank, x T) T {
	m := r.machine
	if r.id == 0 {
		m.gatherBuf[0] = collSlot{payload: x, bytes: scalarBytes}
	}
	r.Barrier()
	out := m.gatherBuf[0].payload.(T)
	r.chargeBroadcastTree(scalarBytes)
	r.Barrier()
	if r.id == 0 {
		m.gatherBuf[0] = collSlot{}
	}
	return out
}

// AllToAll exchanges one slice per destination rank. outgoing must have
// exactly NRanks entries; entry d is delivered to rank d. The returned slice
// has NRanks entries where entry s is the slice this rank received from rank
// s. A personalized exchange has no tree shortcut — every pair must move its
// own data — so costs are charged per non-empty destination batch
// (aggregated messages), and received batches are accounted to
// BytesReceived. Callers that do not need the dense [][]T view should prefer
// ExchangeFunc, which never materializes O(P) per-rank scratch.
func AllToAll[T any](r *Rank, outgoing [][]T, bytesPerItem int) [][]T {
	return allToAll(r, outgoing, func(batch []T) int { return len(batch) * bytesPerItem })
}

// AllToAllV is AllToAll for items with variable wire sizes: sizeOf reports
// the wire bytes of one item, and each non-empty destination batch is charged
// its actual payload bytes.
func AllToAllV[T any](r *Rank, outgoing [][]T, sizeOf func(T) int) [][]T {
	return allToAll(r, outgoing, func(batch []T) int {
		total := 0
		for _, it := range batch {
			total += sizeOf(it)
		}
		return total
	})
}

func allToAll[T any](r *Rank, outgoing [][]T, batchBytes func([]T) int) [][]T {
	m := r.machine
	if len(outgoing) != m.cfg.Ranks {
		panic(fmt.Sprintf("pgas: AllToAll outgoing has %d entries, want %d", len(outgoing), m.cfg.Ranks))
	}
	// The dense exchange deposits every batch — empty and nil included — so
	// incoming[s] is exactly what rank s put in outgoing (historical
	// contract some callers rely on). Sparse patterns should use
	// ExchangeFunc, which skips empties.
	for dest, batch := range outgoing {
		b := batchBytes(batch)
		m.inboxes[dest].put(r.id, batch, b)
		if len(batch) > 0 && dest != r.id {
			r.ChargeSend(dest, b, 1)
		}
	}
	r.Barrier()
	incoming := make([][]T, m.cfg.Ranks)
	r.drainInbox(func(src int, payload any, bytes int) {
		incoming[src] = payload.([]T)
	})
	// The three-phase structure (deposit / drain / reset) of the historical
	// dense exchange is kept: all exchange-based code was calibrated
	// against its three barriers, and ExchangeFunc matches it so converting
	// a call site never moves the simulated clock.
	r.Barrier()
	r.Barrier()
	return incoming
}

// ExchangeFunc is the sparse personalized exchange: it routes items to the
// destination ranks chosen by destOf (reduced into [0, NRanks)) and returns
// the items this rank received, concatenated in ascending source-rank order
// with each source's items in that source's original order — exactly the
// order the dense AllToAllV-then-flatten idiom produced. sizeOf reports one
// item's wire bytes.
//
// Unlike AllToAll it never materializes O(P) scratch on the caller: grouping
// is a stable sort of the item indices by destination, each batch is a
// subslice of one routed copy, and only non-empty batches are deposited, so
// a rank talking to d destinations costs O(items + d), independent of P.
// Charging is identical to the dense exchange: one aggregated send per
// non-empty destination batch in ascending destination order, received
// batches accounted to BytesReceived and the resident meter, three barriers.
func ExchangeFunc[T any](r *Rank, items []T, destOf func(i int, item T) int, sizeOf func(T) int) []T {
	m := r.machine
	p := m.cfg.Ranks
	n := len(items)
	dests := make([]int, n)
	order := make([]int, n)
	for i, item := range items {
		d := destOf(i, item) % p
		if d < 0 {
			d += p
		}
		dests[i] = d
		order[i] = i
	}
	slices.SortStableFunc(order, func(a, b int) int { return dests[a] - dests[b] })
	routed := make([]T, n)
	for j, idx := range order {
		routed[j] = items[idx]
	}
	for start := 0; start < n; {
		d := dests[order[start]]
		end := start
		bytes := 0
		for end < n && dests[order[end]] == d {
			bytes += sizeOf(routed[end])
			end++
		}
		m.inboxes[d].put(r.id, routed[start:end:end], bytes)
		if d != r.id {
			r.ChargeSend(d, bytes, 1)
		}
		start = end
	}
	r.Barrier()
	var merged []T
	r.drainInbox(func(src int, payload any, bytes int) {
		merged = append(merged, payload.([]T)...)
	})
	// Match the dense exchange's three-barrier epoch; see allToAll.
	r.Barrier()
	r.Barrier()
	return merged
}
