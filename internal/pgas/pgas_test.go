package pgas

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestConfigDefaults(t *testing.T) {
	m := NewMachine(Config{})
	if m.Ranks() != 1 || m.Nodes() != 1 {
		t.Errorf("default machine should have 1 rank / 1 node, got %d/%d", m.Ranks(), m.Nodes())
	}
	m = NewMachine(Config{Ranks: 8, RanksPerNode: 4})
	if m.Ranks() != 8 || m.Nodes() != 2 || m.RanksPerNode() != 4 {
		t.Errorf("machine shape wrong: %d ranks, %d nodes", m.Ranks(), m.Nodes())
	}
	if m.NodeOf(0) != 0 || m.NodeOf(3) != 0 || m.NodeOf(4) != 1 || m.NodeOf(7) != 1 {
		t.Error("NodeOf mapping wrong")
	}
	if m.Cost() == (CostModel{}) {
		t.Error("cost model should default to non-zero")
	}
}

func TestRunExecutesEveryRank(t *testing.T) {
	m := NewMachine(Config{Ranks: 7, RanksPerNode: 2})
	var seen [7]int32
	res := m.Run(func(r *Rank) {
		atomic.AddInt32(&seen[r.ID()], 1)
		if r.NRanks() != 7 {
			t.Errorf("NRanks = %d", r.NRanks())
		}
		if r.Nodes() != 4 {
			t.Errorf("Nodes = %d", r.Nodes())
		}
		r.Compute(100)
	})
	for i, c := range seen {
		if c != 1 {
			t.Errorf("rank %d ran %d times", i, c)
		}
	}
	if res.SimSeconds <= 0 {
		t.Error("simulated time should be positive after compute")
	}
	if res.Stats.ComputeOps != 700 {
		t.Errorf("ComputeOps = %v, want 700", res.Stats.ComputeOps)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	m := NewMachine(Config{Ranks: 4})
	var clocks [4]float64
	m.Run(func(r *Rank) {
		// Each rank performs a different amount of work before the barrier.
		r.Compute(float64(1000 * (r.ID() + 1)))
		r.Barrier()
		clocks[r.ID()] = r.Clock()
	})
	for i := 1; i < 4; i++ {
		if clocks[i] != clocks[0] {
			t.Errorf("clock of rank %d = %v, rank 0 = %v; barrier must equalize", i, clocks[i], clocks[0])
		}
	}
	// The synchronized clock must be at least the cost of the largest work.
	minExpected := 4000 * m.Cost().ComputePerOp
	if clocks[0] < minExpected {
		t.Errorf("synchronized clock %v < slowest rank %v", clocks[0], minExpected)
	}
}

func TestBarrierReusable(t *testing.T) {
	m := NewMachine(Config{Ranks: 8})
	const rounds = 50
	var mu sync.Mutex
	order := make(map[int]int)
	m.Run(func(r *Rank) {
		for i := 0; i < rounds; i++ {
			r.Barrier()
			mu.Lock()
			order[i]++
			mu.Unlock()
			r.Barrier()
			mu.Lock()
			if order[i] != 8 {
				t.Errorf("round %d: only %d ranks passed the first barrier", i, order[i])
			}
			mu.Unlock()
		}
	})
}

func TestChargeSendOnVsOffNode(t *testing.T) {
	m := NewMachine(Config{Ranks: 4, RanksPerNode: 2})
	var onNode, offNode float64
	m.Run(func(r *Rank) {
		if r.ID() != 0 {
			return
		}
		before := r.Clock()
		r.ChargeSend(1, 1000, 1) // rank 1 shares node 0
		onNode = r.Clock() - before
		before = r.Clock()
		r.ChargeSend(3, 1000, 1) // rank 3 is on node 1
		offNode = r.Clock() - before
		if !r.SameNode(1) || r.SameNode(3) {
			t.Error("SameNode classification wrong")
		}
	})
	if offNode <= onNode {
		t.Errorf("off-node send (%v) should cost more than on-node (%v)", offNode, onNode)
	}
}

func TestChargeGetAndCacheStats(t *testing.T) {
	m := NewMachine(Config{Ranks: 2, RanksPerNode: 1})
	res := m.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.ChargeGet(1, 64, 1)
			r.ChargeCacheHit()
			r.ChargeCacheMiss(1, 64)
		}
	})
	if res.Stats.RemoteGets != 2 {
		t.Errorf("RemoteGets = %d, want 2 (one get + one cache miss)", res.Stats.RemoteGets)
	}
	if res.Stats.CacheHits != 1 || res.Stats.CacheMisses != 1 {
		t.Errorf("cache stats = %d/%d, want 1/1", res.Stats.CacheHits, res.Stats.CacheMisses)
	}
	if res.Stats.OffNodeMessages != 2 {
		t.Errorf("OffNodeMessages = %d, want 2", res.Stats.OffNodeMessages)
	}
}

func TestAtomicFetchAdd(t *testing.T) {
	m := NewMachine(Config{Ranks: 8})
	h := m.NewAtomic(0)
	var claimed sync.Map
	m.Run(func(r *Rank) {
		for {
			v := r.AtomicFetchAdd(h, 1)
			if v >= 100 {
				break
			}
			if _, dup := claimed.LoadOrStore(v, r.ID()); dup {
				t.Errorf("value %d claimed twice", v)
			}
		}
	})
	count := 0
	claimed.Range(func(_, _ any) bool { count++; return true })
	if count != 100 {
		t.Errorf("claimed %d distinct values, want 100", count)
	}
	m.Run(func(r *Rank) {
		if r.ID() == 0 {
			if v := r.AtomicLoad(h); v < 100 {
				t.Errorf("AtomicLoad = %d, want >= 100", v)
			}
		}
	})
}

func TestAllReduce(t *testing.T) {
	m := NewMachine(Config{Ranks: 5})
	m.Run(func(r *Rank) {
		sum := r.AllReduceFloat64(float64(r.ID()+1), ReduceSum)
		if sum != 15 {
			t.Errorf("rank %d: sum = %v, want 15", r.ID(), sum)
		}
		max := r.AllReduceFloat64(float64(r.ID()), ReduceMax)
		if max != 4 {
			t.Errorf("rank %d: max = %v, want 4", r.ID(), max)
		}
		minV := r.AllReduceInt64(int64(r.ID()+10), ReduceMin)
		if minV != 10 {
			t.Errorf("rank %d: min = %v, want 10", r.ID(), minV)
		}
	})
}

func TestGather(t *testing.T) {
	m := NewMachine(Config{Ranks: 4})
	m.Run(func(r *Rank) {
		got := Gather(r, r.ID()*r.ID())
		for i, v := range got {
			if v != i*i {
				t.Errorf("rank %d: gather[%d] = %d, want %d", r.ID(), i, v, i*i)
			}
		}
	})
}

func TestAllToAll(t *testing.T) {
	const p = 6
	m := NewMachine(Config{Ranks: p, RanksPerNode: 3})
	m.Run(func(r *Rank) {
		// Rank s sends to rank d the value s*100+d, repeated d+1 times.
		out := make([][]int, p)
		for d := 0; d < p; d++ {
			for i := 0; i <= d; i++ {
				out[d] = append(out[d], r.ID()*100+d)
			}
		}
		in := AllToAll(r, out, 8)
		for s := 0; s < p; s++ {
			if len(in[s]) != r.ID()+1 {
				t.Errorf("rank %d: from %d got %d items, want %d", r.ID(), s, len(in[s]), r.ID()+1)
			}
			for _, v := range in[s] {
				if v != s*100+r.ID() {
					t.Errorf("rank %d: from %d got value %d", r.ID(), s, v)
				}
			}
		}
	})
}

func TestAllToAllRepeated(t *testing.T) {
	// Repeated exchanges must not leak data between rounds.
	const p = 4
	m := NewMachine(Config{Ranks: p})
	m.Run(func(r *Rank) {
		for round := 0; round < 10; round++ {
			out := make([][]int, p)
			out[(r.ID()+1)%p] = []int{round*1000 + r.ID()}
			in := AllToAll(r, out, 8)
			src := (r.ID() + p - 1) % p
			for s := 0; s < p; s++ {
				if s == src {
					if len(in[s]) != 1 || in[s][0] != round*1000+src {
						t.Errorf("round %d rank %d: wrong data from %d: %v", round, r.ID(), s, in[s])
					}
				} else if len(in[s]) != 0 {
					t.Errorf("round %d rank %d: unexpected data from %d: %v", round, r.ID(), s, in[s])
				}
			}
		}
	})
}

func TestStageTiming(t *testing.T) {
	m := NewMachine(Config{Ranks: 4})
	res := m.Run(func(r *Rank) {
		s := r.StageStart()
		r.Compute(float64(1000 * (r.ID() + 1)))
		r.StageEnd("work", s)
		s = r.StageStart()
		r.Compute(500)
		r.StageEnd("tail", s)
	})
	if len(res.Stages) != 2 {
		t.Fatalf("got %d stages, want 2", len(res.Stages))
	}
	byName := map[string]float64{}
	for _, st := range res.Stages {
		byName[st.Name] = st.Seconds
	}
	if byName["work"] <= byName["tail"] {
		t.Errorf("stage 'work' (%v) should dominate 'tail' (%v)", byName["work"], byName["tail"])
	}
	sorted := SortStages(res.Stages)
	if sorted[0].Name != "work" {
		t.Errorf("SortStages should put 'work' first, got %q", sorted[0].Name)
	}
}

func TestTotalsAccumulate(t *testing.T) {
	m := NewMachine(Config{Ranks: 2})
	m.Run(func(r *Rank) { r.Compute(1000) })
	sim1, _, _ := m.Totals()
	m.Run(func(r *Rank) { r.Compute(1000) })
	sim2, _, stats := m.Totals()
	if sim2 <= sim1 {
		t.Errorf("totals should accumulate: %v then %v", sim1, sim2)
	}
	if stats.ComputeOps != 4000 {
		t.Errorf("total ComputeOps = %v, want 4000", stats.ComputeOps)
	}
}

func TestBlockRange(t *testing.T) {
	cases := []struct {
		n, p int
	}{{10, 3}, {7, 7}, {3, 8}, {0, 4}, {100, 1}, {16, 4}}
	for _, c := range cases {
		covered := 0
		prevHi := 0
		for rank := 0; rank < c.p; rank++ {
			lo, hi := BlockRange(c.n, c.p, rank)
			if lo != prevHi {
				t.Errorf("n=%d p=%d rank=%d: lo=%d, want %d (contiguous)", c.n, c.p, rank, lo, prevHi)
			}
			if hi < lo {
				t.Errorf("n=%d p=%d rank=%d: hi < lo", c.n, c.p, rank)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != c.n {
			t.Errorf("n=%d p=%d: covered %d items", c.n, c.p, covered)
		}
	}
}

func TestBlockRangeProperty(t *testing.T) {
	f := func(nRaw, pRaw uint16) bool {
		n := int(nRaw) % 5000
		p := int(pRaw)%64 + 1
		total := 0
		for rank := 0; rank < p; rank++ {
			lo, hi := BlockRange(n, p, rank)
			if hi < lo || lo < 0 || hi > n {
				return false
			}
			// Block sizes differ by at most one.
			if hi-lo > n/p+1 {
				return false
			}
			total += hi - lo
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSimulatedTimeScalesWithRanks(t *testing.T) {
	// The same total work divided over more ranks should take less simulated
	// time (this is the foundation of the scaling experiments).
	totalWork := 1_000_000.0
	run := func(p int) float64 {
		m := NewMachine(Config{Ranks: p, RanksPerNode: 4})
		res := m.Run(func(r *Rank) {
			r.Compute(totalWork / float64(p))
			r.Barrier()
		})
		return res.SimSeconds
	}
	t1, t4, t16 := run(1), run(4), run(16)
	if !(t1 > t4 && t4 > t16) {
		t.Errorf("simulated time should decrease with ranks: %v, %v, %v", t1, t4, t16)
	}
	if t1/t16 < 8 {
		t.Errorf("16-way speedup of pure compute should be near 16, got %v", t1/t16)
	}
}

func TestAbortOnCancelAbortsRun(t *testing.T) {
	// A cancelled context must abort the machine: every rank unwinds at its
	// next barrier and Run reports ErrAborted joined with the context cause.
	cause := errors.New("tenant hung up")
	ctx, cancel := context.WithCancelCause(context.Background())
	m := NewMachine(Config{Ranks: 4, RanksPerNode: 2})
	stop := m.AbortOnCancel(ctx)
	defer stop()
	started := make(chan struct{})
	var once sync.Once
	go func() {
		<-started
		cancel(cause)
	}()
	res := m.Run(func(r *Rank) {
		// Barrier loop: runs until the abort poisons the barrier. The first
		// completed barrier releases the canceller.
		for {
			r.Compute(100)
			r.Barrier()
			once.Do(func() { close(started) })
		}
	})
	if res.Err == nil {
		t.Fatal("cancelled run must report an error")
	}
	if !errors.Is(res.Err, ErrAborted) || !errors.Is(res.Err, cause) {
		t.Errorf("Err = %v, want ErrAborted joined with the cancel cause", res.Err)
	}
}

func TestAbortOnCancelStopDisarms(t *testing.T) {
	// Calling stop before the context is cancelled must disarm the watcher:
	// a later cancellation no longer aborts the machine.
	ctx, cancel := context.WithCancelCause(context.Background())
	m := NewMachine(Config{Ranks: 2})
	stop := m.AbortOnCancel(ctx)
	stop()
	cancel(errors.New("too late"))
	res := m.Run(func(r *Rank) { r.Barrier() })
	if res.Err != nil {
		t.Errorf("disarmed watcher must not abort, got %v", res.Err)
	}
	// A background (non-cancellable) context arms nothing at all.
	stop2 := m.AbortOnCancel(context.Background())
	stop2()
}
