package pgas

import (
	"math"
	"testing"
)

// TestAllReduceInt64Exact is the regression test for the int64 reduction:
// the old implementation reduced through float64 and lost everything below
// bit 53 (and overflowed converting back near MaxInt64).
func TestAllReduceInt64Exact(t *testing.T) {
	const p = 8
	m := NewMachine(Config{Ranks: p, RanksPerNode: 4})
	m.Run(func(r *Rank) {
		// Max of MaxInt64-1 must round-trip exactly: float64(MaxInt64-1)
		// rounds up to 2^63, which overflows the conversion back.
		big := int64(math.MaxInt64) - 1
		if got := r.AllReduceInt64(big, ReduceMax); got != big {
			t.Errorf("rank %d: max(MaxInt64-1) = %d, want %d", r.ID(), got, big)
		}
		// Sums above 2^53 must keep their low bits: each rank contributes
		// 2^53+ID, and the +ID tail is exactly what float64 would drop.
		x := int64(1)<<53 + int64(r.ID())
		want := int64(p)*(1<<53) + p*(p-1)/2
		if got := r.AllReduceInt64(x, ReduceSum); got != want {
			t.Errorf("rank %d: sum = %d, want %d", r.ID(), got, want)
		}
		// Min across the full negative range.
		if got := r.AllReduceInt64(int64(math.MinInt64)+int64(r.ID()), ReduceMin); got != math.MinInt64 {
			t.Errorf("rank %d: min = %d, want MinInt64", r.ID(), got)
		}
	})
}

// TestAllReduceTyped exercises the generic family on types that previously
// had no exact path.
func TestAllReduceTyped(t *testing.T) {
	m := NewMachine(Config{Ranks: 5})
	m.Run(func(r *Rank) {
		if got := AllReduce(r, r.ID()+1, ReduceSum); got != 15 {
			t.Errorf("int sum = %d, want 15", got)
		}
		if got := AllReduce(r, uint64(r.ID()), ReduceMax); got != 4 {
			t.Errorf("uint64 max = %d, want 4", got)
		}
		if got := AllReduce(r, float64(r.ID())/2, ReduceMax); got != 2 {
			t.Errorf("float64 max = %v, want 2", got)
		}
	})
}

// TestGatherVPayloadAndCost checks GatherV's data movement and that its
// simulated cost scales with the actual payload size (the flat-16-byte
// charging bug made a gather of a million alignments cost the same as a
// gather of eight integers).
func TestGatherVPayloadAndCost(t *testing.T) {
	const p = 8
	run := func(itemsPerRank, bytesPerItem int) float64 {
		m := NewMachine(Config{Ranks: p, RanksPerNode: 4})
		res := m.Run(func(r *Rank) {
			items := make([]int, itemsPerRank*(r.ID()+1))
			for i := range items {
				items[i] = r.ID()*1_000_000 + i
			}
			all := GatherV(r, items, bytesPerItem)
			if len(all) != p {
				t.Errorf("GatherV returned %d slices, want %d", len(all), p)
			}
			for src, batch := range all {
				if len(batch) != itemsPerRank*(src+1) {
					t.Errorf("rank %d: from %d got %d items, want %d",
						r.ID(), src, len(batch), itemsPerRank*(src+1))
					continue
				}
				for i, v := range batch {
					if v != src*1_000_000+i {
						t.Errorf("rank %d: wrong item from %d at %d: %d", r.ID(), src, i, v)
						break
					}
				}
			}
		})
		return res.SimSeconds
	}
	small := run(10, 64)
	large := run(10_000, 64)
	if large <= small*10 {
		t.Errorf("GatherV cost must scale with payload: 10 items/rank = %v s, 10k items/rank = %v s", small, large)
	}
}

// TestGatherVEmptyRanks: ranks contributing nothing must work and pay no
// bandwidth for their empty block.
func TestGatherVEmptyRanks(t *testing.T) {
	m := NewMachine(Config{Ranks: 4})
	m.Run(func(r *Rank) {
		var items []string
		if r.ID() == 2 {
			items = []string{"only"}
		}
		all := GatherVFunc(r, items, func(s string) int { return len(s) })
		for src, batch := range all {
			want := 0
			if src == 2 {
				want = 1
			}
			if len(batch) != want {
				t.Errorf("rank %d: from %d got %d items, want %d", r.ID(), src, len(batch), want)
			}
		}
	})
}

// TestGatherVNonPow2Accounting: on a non-power-of-two machine, ranks whose
// hypercube partner does not exist must still be charged (as receive-only
// fold-in hops) for the blocks they obtain, so every delivered byte is
// accounted. Each rank ends up holding everyone else's payload, so the
// aggregate BytesReceived is exactly (P-1) x the total payload.
func TestGatherVNonPow2Accounting(t *testing.T) {
	const p = 5
	m := NewMachine(Config{Ranks: p})
	res := m.Run(func(r *Rank) {
		items := make([]byte, (r.ID()+1)*10)
		GatherV(r, items, 1)
	})
	totalPayload := uint64(0)
	for i := 0; i < p; i++ {
		totalPayload += uint64((i + 1) * 10)
	}
	if want := (p - 1) * totalPayload; res.Stats.BytesReceived != want {
		t.Errorf("BytesReceived = %d, want %d (every rank receives all other payloads)",
			res.Stats.BytesReceived, want)
	}
	if res.Stats.BytesSent >= res.Stats.BytesReceived {
		t.Errorf("fold-in hops have no sender side, so sent (%d) should be < received (%d)",
			res.Stats.BytesSent, res.Stats.BytesReceived)
	}
}

// TestCollectivesNodeAware: the same collective sequence on one big node
// must be cheaper than spread over one-rank nodes, because the tree's early
// rounds stay on-node.
func TestCollectivesNodeAware(t *testing.T) {
	const p = 16
	run := func(rpn int) float64 {
		m := NewMachine(Config{Ranks: p, RanksPerNode: rpn})
		res := m.Run(func(r *Rank) {
			items := make([]byte, 4096)
			GatherV(r, items, 1)
			AllReduce(r, int64(r.ID()), ReduceSum)
			Broadcast(r, r.ID())
		})
		return res.SimSeconds
	}
	oneNode := run(p)
	allOff := run(1)
	if oneNode >= allOff {
		t.Errorf("single-node collectives (%v s) should be cheaper than all-off-node (%v s)", oneNode, allOff)
	}
	half := run(p / 2)
	if !(oneNode < half && half < allOff) {
		t.Errorf("cost should increase as ranks spread over nodes: %v, %v, %v", oneNode, half, allOff)
	}
}

// TestBroadcastUsesRankZeroValue pins Broadcast semantics: only rank 0's
// contribution is delivered, and the binomial tree sends exactly P-1
// messages in total.
func TestBroadcastUsesRankZeroValue(t *testing.T) {
	const p = 7 // non-power-of-two exercises the clipped tree
	m := NewMachine(Config{Ranks: p, RanksPerNode: 4})
	res := m.Run(func(r *Rank) {
		got := Broadcast(r, 100+r.ID())
		if got != 100 {
			t.Errorf("rank %d: broadcast = %d, want 100", r.ID(), got)
		}
	})
	if res.Stats.Messages != p-1 {
		t.Errorf("broadcast sent %d messages, want %d", res.Stats.Messages, p-1)
	}
	if res.Stats.BytesReceived != uint64((p-1)*scalarBytes) {
		t.Errorf("BytesReceived = %d, want %d", res.Stats.BytesReceived, (p-1)*scalarBytes)
	}
}

// TestZeroCostModel: with CostSet, an explicitly zero cost model must charge
// nothing — the free-communication ablation that isolates algorithmic work
// from communication cost.
func TestZeroCostModel(t *testing.T) {
	m := NewMachine(Config{Ranks: 4, RanksPerNode: 2, CostSet: true})
	if m.Cost() != (CostModel{}) {
		t.Fatalf("CostSet machine should keep the zero model, got %+v", m.Cost())
	}
	h := m.NewAtomic(0)
	res := m.Run(func(r *Rank) {
		r.ChargeSend(3, 1<<20, 5)
		r.ChargeGet(3, 1<<20, 5)
		r.AtomicFetchAdd(h, 1)
		GatherV(r, make([]int, 1000), 8)
		AllReduce(r, int64(r.ID()), ReduceSum)
		Broadcast(r, r.ID())
		r.Barrier()
	})
	if res.SimSeconds != 0 {
		t.Errorf("zero cost model charged %v simulated seconds, want exactly 0", res.SimSeconds)
	}
	if res.Stats.Messages == 0 {
		t.Error("stats must still be counted under the zero cost model")
	}
	// Without CostSet the zero model still means "defaults".
	if NewMachine(Config{Ranks: 2}).Cost() == (CostModel{}) {
		t.Error("zero Cost without CostSet should select DefaultCostModel")
	}
}

// TestCollectivesGolden pins the exact simulated cost and communication
// statistics of a fixed collective sequence at P=8, RanksPerNode=4, under
// the default cost model. Any change to the cost model or the tree schedules
// shows up here as an explicit diff — update the constants deliberately.
//
// The sequence (per rank): one scalar Gather, one GatherV of (ID+1)*10
// 100-byte items, one int64 AllReduce, one Broadcast, one AllToAll of 2
// 24-byte items per destination.
func TestCollectivesGolden(t *testing.T) {
	m := NewMachine(Config{Ranks: 8, RanksPerNode: 4})
	res := m.Run(func(r *Rank) {
		Gather(r, r.ID())
		items := make([]int, (r.ID()+1)*10)
		GatherV(r, items, 100)
		AllReduce(r, int64(r.ID()), ReduceSum)
		Broadcast(r, r.ID())
		out := make([][]int, r.NRanks())
		for d := range out {
			out[d] = []int{r.ID(), d}
		}
		AllToAll(r, out, 24)
	})

	t.Logf("SimSeconds=%.17g Stats=%+v", res.SimSeconds, res.Stats)

	// Simulated seconds: every charge is a deterministic float64 expression
	// and barriers reduce by max, so the result is bit-exact run to run.
	const wantSim = 0.000215032
	if math.Abs(res.SimSeconds-wantSim) > wantSim*1e-9 {
		t.Errorf("SimSeconds = %.17g, want %v", res.SimSeconds, wantSim)
	}
	want := CommStats{
		Messages:          135,    // 3 tree rounds x 8 ranks x 3 all-gather-style collectives + 7 broadcast + 56 all-to-all
		OffNodeMessages:   60,     // 1 off-node round per rank per tree collective + 4 broadcast hops + 32 all-to-all
		BytesSent:         255384, // dominated by the GatherV forwarding of 36000 payload bytes
		BytesReceived:     255384, // every sent byte is received by its partner
		OffNodeBytes:      145888,
		RemotePuts:        56,    // AllToAll charges per-destination batches as puts
		Barriers:          88,    // 2 per tree collective x 4 + 3 for AllToAll, x 8 ranks
		PeakResidentBytes: 36384, // 36000 GatherV payload + 8x48 all-to-all batches materialized
	}
	got := res.Stats
	got.ComputeOps = 0 // no compute charged in this sequence; keep the comparison total
	if got != want {
		t.Errorf("CommStats mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// BenchmarkCollectiveTreeVsFlat compares the simulated cost of the
// log2(P)-round tree all-reduce against the centralized flat model it
// replaced (P-1 serialized messages into rank 0, then a broadcast back) at
// P=64. The reported metrics are simulated seconds per collective; the
// speedup is the scaling argument for tree collectives in one number.
func BenchmarkCollectiveTreeVsFlat(b *testing.B) {
	const p = 64
	const reps = 100
	m := NewMachine(Config{Ranks: p, RanksPerNode: 8})
	var treeSim float64
	for b.Loop() {
		res := m.Run(func(r *Rank) {
			for j := 0; j < reps; j++ {
				AllReduce(r, int64(r.ID()), ReduceSum)
			}
		})
		treeSim = res.SimSeconds
	}
	c := m.Cost()
	// Flat centralized model: rank 0 ingests P-1 off-node words serially,
	// then sends P-1 replies (ignoring the two barriers both models pay).
	perMsg := c.LatencyOffNode + scalarBytes*c.ByteOffNode
	flatSim := float64(reps) * 2 * float64(p-1) * perMsg
	b.ReportMetric(treeSim/reps, "tree_sim_s/op")
	b.ReportMetric(flatSim/reps, "flat_sim_s/op")
	b.ReportMetric(flatSim/treeSim, "flat_over_tree_x")
}
