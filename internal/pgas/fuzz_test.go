package pgas

import "testing"

// fuzzRecord exercises every kind WireSizeOf handles: fixed-width numerics,
// strings, byte slices, nested structs, pointers and slices of structs.
type fuzzRecord struct {
	A   int
	B   uint32
	C   float64
	D   bool
	S   string
	P   []byte
	Sub struct {
		X int16
		Y []int
	}
	Ptr *fuzzRecord
}

// FuzzWireSizeOf drives the reflective wire-size bound over arbitrary
// payloads: it must never panic, never return a negative size, stay
// monotonic under payload growth, and agree with hand-computed sizes for the
// primitive kinds.
func FuzzWireSizeOf(f *testing.F) {
	f.Add("id", []byte("ACGT"), int64(3), uint(2), true)
	f.Add("", []byte{}, int64(-1), uint(0), false)
	f.Add("long-identifier-string", []byte("TTTTTTTTTTTTTTTT"), int64(1<<40), uint(9), true)

	f.Fuzz(func(t *testing.T, s string, b []byte, n int64, m uint, flag bool) {
		rec := fuzzRecord{A: int(n), B: uint32(m), D: flag, S: s, P: b}
		rec.Sub.X = int16(n)
		rec.Sub.Y = make([]int, m%8)
		if flag {
			rec.Ptr = &fuzzRecord{S: s}
		}
		size := WireSizeOf(rec)
		if size < 0 {
			t.Fatalf("negative wire size %d", size)
		}
		// The struct embeds its string and payload verbatim, so the bound
		// can never be smaller than the variable-length content alone.
		if size < len(s)+len(b) {
			t.Fatalf("wire size %d below variable content %d", size, len(s)+len(b))
		}
		// Growing the payload by one byte grows the bound by exactly one.
		rec2 := rec
		rec2.P = append(append([]byte(nil), b...), 0)
		if got := WireSizeOf(rec2); got != size+1 {
			t.Fatalf("one appended payload byte changed the bound by %d", got-size)
		}
		// Primitive agreement.
		if WireSizeOf(n) != 8 || WireSizeOf(flag) != 1 || WireSizeOf(s) != len(s) || WireSizeOf(b) != len(b) {
			t.Fatal("primitive wire sizes disagree with their definitions")
		}
		if WireSizeOf(nil) != 0 {
			t.Fatal("nil must have zero wire size")
		}
	})
}
