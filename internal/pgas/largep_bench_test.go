package pgas

import (
	"fmt"
	"testing"
)

// BenchmarkCollectivesP256 exercises one round of every collective on a
// P=256 machine and reports allocations per round. This is the measurement
// behind the large-P-lean collectives work: the historical implementation
// allocated fresh O(P) scratch per call per rank (O(P²) per round), which is
// what made P=1024-4096 simulations impractical.
func BenchmarkCollectivesP256(b *testing.B) {
	const p = 256
	m := NewMachine(Config{Ranks: p, RanksPerNode: 4})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Run(func(r *Rank) {
			sum := AllReduce(r, r.ID(), ReduceSum)
			if sum != p*(p-1)/2 {
				b.Errorf("AllReduce sum = %d", sum)
			}
			ExScan(r, 1, ReduceSum)
			Gather(r, r.ID())
			GatherV(r, []int{r.ID(), r.ID() + 1}, 8)
			out := make([][]int, p)
			out[(r.ID()+1)%p] = []int{r.ID()}
			AllToAll(r, out, 8)
		})
	}
}

// BenchmarkExchangeP measures the sparse personalized exchange at growing
// rank counts: a fixed global item volume is scattered to pseudo-random
// destinations, so per-rank batch counts shrink as P grows while the mailbox
// machinery's overhead would show up as super-linear cost.
func BenchmarkExchangeP(b *testing.B) {
	for _, p := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			m := NewMachine(Config{Ranks: p, RanksPerNode: 4})
			const totalItems = 1 << 16
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Run(func(r *Rank) {
					lo, hi := r.BlockRange(totalItems)
					items := make([]int, 0, hi-lo)
					for v := lo; v < hi; v++ {
						items = append(items, v)
					}
					got := ExchangeFunc(r, items,
						func(_ int, item int) int { return item * 0x9e3779b9 },
						func(int) int { return 8 })
					r.ReleaseResident(len(got) * 8)
				})
			}
		})
	}
}
