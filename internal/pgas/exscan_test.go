package pgas

import (
	"testing"
)

// TestExScanSum pins ExScan semantics: rank i receives the sum of the values
// of ranks 0..i-1 and rank 0 receives the zero value, at both power-of-two
// and non-power-of-two rank counts.
func TestExScanSum(t *testing.T) {
	for _, p := range []int{1, 3, 8} {
		m := NewMachine(Config{Ranks: p, RanksPerNode: 2})
		m.Run(func(r *Rank) {
			// Rank i contributes i+1; the exclusive prefix is i*(i+1)/2.
			got := ExScan(r, r.ID()+1, ReduceSum)
			want := r.ID() * (r.ID() + 1) / 2
			if got != want {
				t.Errorf("P=%d rank %d: ExScan = %d, want %d", p, r.ID(), got, want)
			}
		})
	}
}

// TestExScanMax: the exclusive prefix under max, with the zero value on rank 0.
func TestExScanMax(t *testing.T) {
	m := NewMachine(Config{Ranks: 5})
	m.Run(func(r *Rank) {
		vals := []int64{7, 3, 9, 1, 5}
		got := ExScan(r, vals[r.ID()], ReduceMax)
		var want int64
		for i := 0; i < r.ID(); i++ {
			if i == 0 || vals[i] > want {
				want = vals[i]
			}
		}
		if got != want {
			t.Errorf("rank %d: ExScan max = %d, want %d", r.ID(), got, want)
		}
	})
}

// TestExScanChargedLikeAllReduce: the satellite bugfix replaced an O(P)
// scalar Gather + local loop with ExScan; the scan must cost exactly what an
// AllReduce of the same scalar costs (the log2 P tree), which at larger P is
// cheaper than the all-gather tree Gather charges.
func TestExScanChargedLikeAllReduce(t *testing.T) {
	const p = 16
	run := func(body func(r *Rank)) (float64, CommStats) {
		m := NewMachine(Config{Ranks: p, RanksPerNode: 4})
		res := m.Run(body)
		return res.SimSeconds, res.Stats
	}
	scanSim, scanStats := run(func(r *Rank) { ExScan(r, r.ID(), ReduceSum) })
	redSim, redStats := run(func(r *Rank) { AllReduce(r, r.ID(), ReduceSum) })
	if scanSim != redSim {
		t.Errorf("ExScan sim %v != AllReduce sim %v", scanSim, redSim)
	}
	if scanStats.Messages != redStats.Messages || scanStats.BytesSent != redStats.BytesSent {
		t.Errorf("ExScan stats %+v != AllReduce stats %+v", scanStats, redStats)
	}
}

// TestAllToAllV: variable-size batches are delivered like AllToAll and
// charged their actual payload bytes.
func TestAllToAllV(t *testing.T) {
	const p = 4
	m := NewMachine(Config{Ranks: p, RanksPerNode: p})
	res := m.Run(func(r *Rank) {
		out := make([][]string, p)
		for d := 0; d < p; d++ {
			// Rank r sends d+1 strings of length r+1 to destination d.
			for i := 0; i <= d; i++ {
				out[d] = append(out[d], string(make([]byte, r.ID()+1)))
			}
		}
		in := AllToAllV(r, out, func(s string) int { return len(s) })
		for src, batch := range in {
			if len(batch) != r.ID()+1 {
				t.Errorf("rank %d: got %d items from %d, want %d", r.ID(), len(batch), src, r.ID()+1)
			}
			for _, s := range batch {
				if len(s) != src+1 {
					t.Errorf("rank %d: item from %d has len %d, want %d", r.ID(), src, len(s), src+1)
				}
			}
		}
	})
	// Off-diagonal payload: rank r sends (d+1) strings of (r+1) bytes to each
	// d != r.
	var want uint64
	for r := 0; r < p; r++ {
		for d := 0; d < p; d++ {
			if d != r {
				want += uint64((d + 1) * (r + 1))
			}
		}
	}
	if res.Stats.BytesSent != want {
		t.Errorf("BytesSent = %d, want %d", res.Stats.BytesSent, want)
	}
	if res.Stats.BytesReceived != want {
		t.Errorf("BytesReceived = %d, want %d", res.Stats.BytesReceived, want)
	}
}

// TestResidentTracking: collectives charge the payloads they materialize
// against the resident meter; releases lower the current level but never the
// peak; the run aggregate reports the worst rank's peak (max, not sum).
func TestResidentTracking(t *testing.T) {
	const p = 4
	m := NewMachine(Config{Ranks: p, RanksPerNode: p})
	res := m.Run(func(r *Rank) {
		// GatherV materializes the full payload on every rank: 4 ranks x 100
		// bytes.
		GatherV(r, make([]byte, 100), 1)
		if got := r.Resident(); got != p*100 {
			t.Errorf("rank %d: resident after gather = %d, want %d", r.ID(), got, p*100)
		}
		r.ReleaseResident(p * 100)
		if got := r.Resident(); got != 0 {
			t.Errorf("rank %d: resident after release = %d, want 0", r.ID(), got)
		}
		// An all-to-all only materializes what the rank actually receives.
		out := make([][]byte, p)
		for d := range out {
			out[d] = make([]byte, 10)
		}
		AllToAll(r, out, 1)
		if got := r.Resident(); got != p*10 {
			t.Errorf("rank %d: resident after all-to-all = %d, want %d", r.ID(), got, p*10)
		}
		// Over-release clamps at zero instead of underflowing.
		r.ReleaseResident(1 << 30)
		if got := r.Resident(); got != 0 {
			t.Errorf("rank %d: clamped release left %d", r.ID(), got)
		}
	})
	if res.Stats.PeakResidentBytes != p*100 {
		t.Errorf("aggregate peak = %d, want %d (max over ranks, not sum)", res.Stats.PeakResidentBytes, p*100)
	}
}

// TestWireSizeOf pins the reflective lower bound used by the wire-size
// regression tests.
func TestWireSizeOf(t *testing.T) {
	type inner struct {
		A int
		B bool
	}
	type outer struct {
		ID    string
		Seq   []byte
		Pos   int32
		Sub   inner
		Items []inner
	}
	v := outer{
		ID:    "abcd",        // 4
		Seq:   []byte("ACG"), // 3
		Pos:   7,             // 4
		Sub:   inner{},       // 8 + 1
		Items: []inner{{}, {}},
	}
	want := 4 + 3 + 4 + 9 + 2*9
	if got := WireSizeOf(v); got != want {
		t.Errorf("WireSizeOf = %d, want %d", got, want)
	}
	if got := WireSizeOf(nil); got != 0 {
		t.Errorf("WireSizeOf(nil) = %d, want 0", got)
	}
	if got := WireSizeOf(map[string]int{"ab": 1}); got != 10 {
		t.Errorf("WireSizeOf(map) = %d, want 10", got)
	}
}
