// Pooled rank scheduler: the bounded worker pool behind Machine.Run.
//
// The machine still materializes one goroutine per rank — SPMD code keeps its
// natural blocking style, stacks and all — but only Workers of them are
// admitted as *runnable* at any moment. The rest are parked on a FIFO run
// queue, each waiting on its own one-element channel, which costs a parked
// goroutine and nothing else: no spinning, no timer wheel, no thundering
// herd. This is what makes the rank count a simulation parameter instead of a
// hardware limit — at P=4096 the Go runtime juggles Workers runnable
// goroutines, not 4096, and a barrier hand-off moves ranks between the
// barrier's waiter list and the run queue in O(1) per rank.
//
// Determinism: the pool changes only *when* a rank goroutine physically runs,
// never what it observes. Simulated clocks, barrier results and collective
// outputs are functions of the deposited values alone, so sim-seconds and
// outputs are bit-identical for every Workers setting (pinned by the
// scheduler golden tests in internal/core).
//
// Protocol invariants, relied on throughout:
//
//  1. A parkToken sits in at most one waiter list at a time (the scheduler's
//     run queue or a barrier's waiter list), and every signal sent to its
//     channel is consumed before the token re-enters a list. A buffered send
//     therefore never blocks and a wake-up is never lost. A barrier epoch's
//     completion moves its waiters from the barrier's list into the run
//     queue (unparkGranting) in one step, so the invariant holds across the
//     hand-over.
//  2. slots > 0 implies an empty run queue: release hands a freed slot
//     directly to the queue head instead of incrementing the count.
//  3. After abort the pool is unlimited — acquire returns immediately and
//     release is a no-op — so unwinding ranks can never deadlock on a slot.

package pgas

import "sync"

// parkToken is a rank's parking spot: the one-element channel both the
// scheduler (slot grants) and the barrier (completion wake-ups) signal, plus
// the barrier result, published before the completion wake-up.
type parkToken struct {
	wake   chan struct{}
	result float64
}

func newParkToken() *parkToken {
	return &parkToken{wake: make(chan struct{}, 1)}
}

// scheduler is the bounded worker pool. It is a FIFO counting semaphore with
// direct hand-off: a released slot goes to the longest-parked rank, so no
// rank can be starved and barrier epochs drain in bounded time.
type scheduler struct {
	mu      sync.Mutex
	slots   int
	queue   []*parkToken // ring: live entries are queue[head:]
	head    int
	aborted bool
}

func newScheduler(slots int) *scheduler {
	if slots < 1 {
		slots = 1
	}
	return &scheduler{slots: slots}
}

// acquire blocks until a worker slot is free and claims it. After abort it
// returns immediately; the caller is expected to observe the abort at its
// next barrier and unwind.
func (s *scheduler) acquire(t *parkToken) {
	s.mu.Lock()
	if s.aborted {
		s.mu.Unlock()
		return
	}
	if s.slots > 0 {
		s.slots--
		s.mu.Unlock()
		return
	}
	s.queue = append(s.queue, t)
	s.mu.Unlock()
	<-t.wake
}

// release frees the caller's slot, handing it directly to the head of the
// run queue when anyone is parked there.
func (s *scheduler) release() {
	s.mu.Lock()
	if s.aborted {
		s.mu.Unlock()
		return
	}
	if s.head < len(s.queue) {
		t := s.queue[s.head]
		s.queue[s.head] = nil
		s.head++
		if s.head == len(s.queue) {
			s.queue = s.queue[:0]
			s.head = 0
		}
		s.mu.Unlock()
		t.wake <- struct{}{}
		return
	}
	s.slots++
	s.mu.Unlock()
}

// unparkGranting wakes a batch of parked ranks, granting each a worker slot
// with its wake-up: free slots are handed out immediately and the rest of the
// batch joins the run queue in arrival order, to be granted as slots free up.
// The barrier uses it to wake an epoch's waiters — fusing the wake with the
// slot grant means a waiter parks exactly once per epoch (on its token)
// instead of twice (once for the completion signal, once to reacquire a
// slot), which halves the scheduling hand-offs on the barrier-heavy
// collective paths. After abort every token is woken immediately; the wake
// then means "observe the abort and unwind", not a grant.
func (s *scheduler) unparkGranting(tokens []*parkToken) {
	s.mu.Lock()
	if s.aborted {
		s.mu.Unlock()
		for _, t := range tokens {
			t.wake <- struct{}{}
		}
		return
	}
	granted := 0
	for granted < len(tokens) && s.slots > 0 {
		s.slots--
		granted++
	}
	s.queue = append(s.queue, tokens[granted:]...)
	s.mu.Unlock()
	for _, t := range tokens[:granted] {
		t.wake <- struct{}{}
	}
}

// abort makes the pool unlimited and wakes everyone parked on the run queue,
// so every rank can reach its next barrier (where it observes the poisoned
// barrier and unwinds) regardless of slot accounting.
func (s *scheduler) abort() {
	s.mu.Lock()
	if s.aborted {
		s.mu.Unlock()
		return
	}
	s.aborted = true
	parked := s.queue[s.head:]
	s.queue = nil
	s.head = 0
	s.mu.Unlock()
	for _, t := range parked {
		t.wake <- struct{}{}
	}
}
