package pgas

import "reflect"

// WireSizeOf returns a lower bound on the wire bytes needed to ship v: the
// packed size of its fields with no framing, alignment or length prefixes.
// Fixed-width integers and floats count their width (ints and uints count 8,
// as the simulated wire format does not narrow them), bools and bytes count
// 1, strings and byte slices count their length, and slices, arrays, maps,
// pointers and structs count the packed sizes of what they contain.
//
// The per-struct WireSize methods used at route/gather call sites must stay
// >= this bound; the wire-size regression tests assert exactly that, so the
// cost accounting cannot silently drift below the data actually moved.
func WireSizeOf(v any) int {
	if v == nil {
		return 0
	}
	return wireSize(reflect.ValueOf(v))
}

func wireSize(v reflect.Value) int {
	switch v.Kind() {
	case reflect.Bool, reflect.Int8, reflect.Uint8:
		return 1
	case reflect.Int16, reflect.Uint16:
		return 2
	case reflect.Int32, reflect.Uint32, reflect.Float32:
		return 4
	case reflect.Int, reflect.Int64, reflect.Uint, reflect.Uint64,
		reflect.Uintptr, reflect.Float64:
		return 8
	case reflect.Complex64:
		return 8
	case reflect.Complex128:
		return 16
	case reflect.String:
		return v.Len()
	case reflect.Slice, reflect.Array:
		if v.Kind() == reflect.Slice && v.Type().Elem().Kind() == reflect.Uint8 {
			return v.Len()
		}
		total := 0
		for i := 0; i < v.Len(); i++ {
			total += wireSize(v.Index(i))
		}
		return total
	case reflect.Map:
		total := 0
		iter := v.MapRange()
		for iter.Next() {
			total += wireSize(iter.Key()) + wireSize(iter.Value())
		}
		return total
	case reflect.Pointer, reflect.Interface:
		if v.IsNil() {
			return 0
		}
		return wireSize(v.Elem())
	case reflect.Struct:
		total := 0
		for i := 0; i < v.NumField(); i++ {
			total += wireSize(v.Field(i))
		}
		return total
	default:
		// Channels, funcs and unsafe pointers have no wire representation.
		return 0
	}
}
