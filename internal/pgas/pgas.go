// Package pgas implements the virtual PGAS (Partitioned Global Address
// Space) runtime the assembler is built on.
//
// The original MetaHipMer is written in Unified Parallel C and runs on a Cray
// supercomputer. Here the same SPMD programming model is reproduced inside a
// single process: a Machine hosts P ranks, each with its own goroutine,
// grouped into virtual nodes, with a pooled scheduler (see scheduler.go)
// admitting only Config.Workers of them as runnable at a time so P can reach
// into the thousands. Ranks communicate through the higher-level data
// structures (distributed hash tables, all-to-all exchanges, global atomics)
// which are all built on the primitives in this package.
//
// Every remote operation is metered. A configurable cost model converts the
// metered operations into a deterministic *simulated* execution time per
// rank, which is what the scaling experiments report: it reproduces the
// shapes of the paper's strong/weak scaling results (communication costs,
// aggregation benefits, off-node vs on-node locality, load imbalance) without
// requiring thousands of physical cores. Real wall-clock time is also
// tracked, and the ranks really do run concurrently, so the distributed data
// structures are exercised under true parallelism.
package pgas

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"
	"time"
)

// CostModel converts metered operations into simulated seconds. The defaults
// are loosely calibrated to a Cray-XC-class machine: microsecond-scale
// off-node latency, ~10 GB/s per-rank off-node bandwidth, and a few
// nanoseconds per unit of local work.
type CostModel struct {
	// ComputePerOp is the simulated cost in seconds of one unit of local
	// work (roughly: touching one k-mer, one base, or one hash bucket).
	ComputePerOp float64
	// LatencyOnNode and LatencyOffNode are the per-message costs of a
	// communication event that stays within a virtual node or crosses
	// nodes, respectively.
	LatencyOnNode  float64
	LatencyOffNode float64
	// ByteOnNode and ByteOffNode are the per-byte transfer costs.
	ByteOnNode  float64
	ByteOffNode float64
	// AtomicCost is the cost of one remote atomic operation.
	AtomicCost float64
	// BarrierCost is the per-participant cost of a barrier.
	BarrierCost float64
}

// DefaultCostModel returns the calibration used by the experiments.
func DefaultCostModel() CostModel {
	return CostModel{
		ComputePerOp:   6e-9,
		LatencyOnNode:  4e-7,
		LatencyOffNode: 2.5e-6,
		ByteOnNode:     2.0e-10, // ~5 GB/s
		ByteOffNode:    8.0e-10, // ~1.25 GB/s per rank
		AtomicCost:     3e-6,
		BarrierCost:    1.5e-5,
	}
}

// Config describes a virtual machine.
type Config struct {
	// Ranks is the total number of SPMD ranks (UPC "threads").
	Ranks int
	// RanksPerNode groups ranks into virtual nodes; communication between
	// ranks on the same node is cheaper. Defaults to Ranks (single node).
	RanksPerNode int
	// Workers bounds how many rank goroutines are runnable at once (the
	// pooled scheduler's slot count). Defaults to GOMAXPROCS and is clamped
	// to Ranks. Workers is an execution knob, not a simulation parameter:
	// simulated seconds, outputs and statistics are bit-identical for every
	// value, only wall-clock time and memory pressure change.
	Workers int
	// Cost is the simulated cost model. The zero value means DefaultCostModel
	// unless CostSet is true.
	Cost CostModel
	// CostSet makes an all-zero Cost meaningful: when true, Cost is used
	// verbatim even if it is the zero CostModel, which simulates a machine
	// with free communication (the ablation that isolates algorithmic work
	// from communication cost). When false, a zero Cost selects
	// DefaultCostModel.
	CostSet bool
}

func (c Config) withDefaults() Config {
	if c.Ranks <= 0 {
		c.Ranks = 1
	}
	if c.RanksPerNode <= 0 || c.RanksPerNode > c.Ranks {
		c.RanksPerNode = c.Ranks
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers > c.Ranks {
		c.Workers = c.Ranks
	}
	if !c.CostSet && c.Cost == (CostModel{}) {
		c.Cost = DefaultCostModel()
	}
	return c
}

// CommStats counts the communication and computation performed by one rank.
// BytesSent is outbound traffic (puts, flushed update batches, collective
// forwarding); BytesReceived is inbound traffic (one-sided gets, cache-miss
// fills, collective deliveries). OffNodeBytes counts every byte that crossed
// a node boundary exactly once, attributed to the rank that initiated the
// transfer in that direction.
type CommStats struct {
	ComputeOps      float64
	Messages        uint64
	OffNodeMessages uint64
	BytesSent       uint64
	BytesReceived   uint64
	OffNodeBytes    uint64
	RemoteGets      uint64
	RemotePuts      uint64
	AtomicOps       uint64
	Barriers        uint64
	CacheHits       uint64
	CacheMisses     uint64
	// PeakResidentBytes is the high-water mark of collective payload bytes
	// materialized by a rank at one time: collectives charge the payloads
	// they deliver (a gather-to-all charges the full gathered set on every
	// rank, an all-to-all only the batches actually received) and callers
	// release what they drop via ReleaseResident. Unlike the traffic
	// counters this is a per-rank *footprint*, so Add folds it with max, and
	// an aggregate CommStats reports the worst rank's peak.
	PeakResidentBytes uint64
}

// Add accumulates other into s. Traffic counters are summed;
// PeakResidentBytes, a per-rank footprint, is folded with max (the worst
// rank's peak).
func (s *CommStats) Add(other CommStats) {
	s.ComputeOps += other.ComputeOps
	s.Messages += other.Messages
	s.OffNodeMessages += other.OffNodeMessages
	s.BytesSent += other.BytesSent
	s.BytesReceived += other.BytesReceived
	s.OffNodeBytes += other.OffNodeBytes
	s.RemoteGets += other.RemoteGets
	s.RemotePuts += other.RemotePuts
	s.AtomicOps += other.AtomicOps
	s.Barriers += other.Barriers
	s.CacheHits += other.CacheHits
	s.CacheMisses += other.CacheMisses
	if other.PeakResidentBytes > s.PeakResidentBytes {
		s.PeakResidentBytes = other.PeakResidentBytes
	}
}

// Machine is a virtual PGAS machine: a set of ranks grouped into nodes,
// with shared state for barriers, exchanges, reductions and global atomics.
type Machine struct {
	cfg Config

	barrier   *clockBarrier
	sched     *scheduler
	inboxes   []exchInbox // per-destination mailboxes of the exchanges
	gatherBuf []collSlot  // one deposit slot per rank, shared by the collectives

	// Shared collective scratch: written once per collective by the rank
	// that completes the entry barrier (under the barrier lock, see
	// Rank.barrierOn) and read by every rank between the entry and exit
	// barriers. Replaces the historical fresh make([]T, P) per call per
	// rank, which made a collective round O(P²) transient allocation.
	collResult any
	collTotal  int
	collPrefix []int // cumulative payload bytes by rank; collPrefix[0] == 0

	atomicMu sync.Mutex
	atomics  []int64

	// Abort state: once set, every rank unwinds at its next barrier (see
	// Abort). trapBarrier/trapErr arm the fault-injection hook before Run.
	abortMu     sync.Mutex
	abortErr    error
	trapBarrier uint64
	trapErr     error

	timingMu sync.Mutex
	stages   []StageTime
	stats    CommStats
	simTime  float64
	wallTime time.Duration
}

// ErrAborted is the base error of an aborted run: RunResult.Err wraps it
// (together with the cause passed to Abort) whenever a run was killed
// mid-flight instead of completing.
var ErrAborted = errors.New("pgas: run aborted")

// abortPanic is the sentinel panic value a rank goroutine unwinds with when
// the machine has been aborted; Machine.Run recovers it.
type abortPanic struct{}

// StageTime records the simulated duration of one named pipeline stage.
type StageTime struct {
	Name    string
	Seconds float64
}

// NewMachine creates a virtual machine with the given configuration.
func NewMachine(cfg Config) *Machine {
	cfg = cfg.withDefaults()
	m := &Machine{cfg: cfg}
	m.barrier = newClockBarrier(cfg.Ranks)
	m.sched = newScheduler(cfg.Workers)
	m.inboxes = make([]exchInbox, cfg.Ranks)
	m.gatherBuf = make([]collSlot, cfg.Ranks)
	m.collPrefix = make([]int, cfg.Ranks+1)
	return m
}

// Ranks returns the number of ranks.
func (m *Machine) Ranks() int { return m.cfg.Ranks }

// Nodes returns the number of virtual nodes.
func (m *Machine) Nodes() int {
	return (m.cfg.Ranks + m.cfg.RanksPerNode - 1) / m.cfg.RanksPerNode
}

// RanksPerNode returns the configured ranks-per-node.
func (m *Machine) RanksPerNode() int { return m.cfg.RanksPerNode }

// Workers returns the effective worker-pool size (after defaulting to
// GOMAXPROCS and clamping to Ranks).
func (m *Machine) Workers() int { return m.cfg.Workers }

// Cost returns the machine's cost model.
func (m *Machine) Cost() CostModel { return m.cfg.Cost }

// NodeOf returns the virtual node hosting a rank.
func (m *Machine) NodeOf(rank int) int { return rank / m.cfg.RanksPerNode }

// NewAtomic allocates a global atomic counter initialized to init and
// returns its handle. Atomics must be allocated before Run (typically by the
// code that sets up a parallel phase).
func (m *Machine) NewAtomic(init int64) int {
	m.atomicMu.Lock()
	defer m.atomicMu.Unlock()
	m.atomics = append(m.atomics, init)
	return len(m.atomics) - 1
}

// RunResult summarizes a completed SPMD execution.
type RunResult struct {
	// SimSeconds is the simulated execution time: the maximum simulated
	// clock over all ranks at the end of the run.
	SimSeconds float64
	// Wall is the real elapsed wall-clock time of the run.
	Wall time.Duration
	// Stats is the sum of all ranks' communication statistics.
	Stats CommStats
	// Stages lists the named stage timings recorded during the run.
	Stages []StageTime
	// Err is non-nil when the run was aborted (Abort or an armed
	// InjectBarrierFailure fired) instead of running to completion; it wraps
	// ErrAborted and the abort cause. The other fields then describe the
	// partial execution up to the abort.
	Err error
}

// Abort kills the current run: the given cause is recorded (first caller
// wins) and every rank unwinds with a recovered panic at its next barrier
// arrival, including ranks already blocked inside the barrier. Collectives
// are barrier-synchronized, so no rank can deadlock waiting for a peer that
// aborted. The machine must not be reused for further runs after an abort.
func (m *Machine) Abort(cause error) {
	m.abortMu.Lock()
	if m.abortErr == nil {
		if cause == nil {
			cause = errors.New("no cause given")
		}
		m.abortErr = cause
	}
	m.abortMu.Unlock()
	// Poison the barrier before unbounding the pool: a rank woken by the
	// scheduler's abort drain must already observe the aborted barrier.
	m.barrier.abort()
	m.sched.abort()
}

// AbortErr returns the cause recorded by Abort, or nil if the machine was
// never aborted.
func (m *Machine) AbortErr() error {
	m.abortMu.Lock()
	defer m.abortMu.Unlock()
	return m.abortErr
}

// AbortOnCancel arms context-driven cancellation: when ctx is cancelled the
// machine aborts with the context's cause, so every rank unwinds at its next
// barrier and Run reports an error wrapping ErrAborted (and the cause). The
// returned stop function disarms the watcher synchronously — once it returns,
// no abort from this watcher can happen — and must be called once the run
// completes, on every path, or the watcher goroutine leaks. A ctx that is
// never cancelled costs one parked goroutine for the duration of the run.
func (m *Machine) AbortOnCancel(ctx context.Context) (stop func()) {
	if ctx.Done() == nil {
		return func() {}
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		select {
		case <-ctx.Done():
			// If stop raced the cancellation, disarming wins: the caller
			// observed stop() return, so no abort may follow it.
			select {
			case <-done:
			default:
				m.Abort(context.Cause(ctx))
			}
		case <-done:
		}
	}()
	return func() {
		close(done)
		<-exited
	}
}

// InjectBarrierFailure arms the mid-collective fault-injection hook: rank 0's
// n-th Barrier arrival (1-based, counting every barrier it participates in,
// including those inside collectives) calls Abort(cause) instead of entering
// the barrier. Pinning the trap to one rank's own deterministic barrier
// sequence makes the kill point — and therefore the set of checkpoints
// durable at the kill — reproducible regardless of goroutine scheduling.
// Must be called before Run.
func (m *Machine) InjectBarrierFailure(n uint64, cause error) {
	m.abortMu.Lock()
	m.trapBarrier = n
	m.trapErr = cause
	m.abortMu.Unlock()
}

// Run executes body once per rank (SPMD style) and blocks until every rank
// has returned. It may be called multiple times on the same machine; the
// returned result covers only this run, while the machine also accumulates
// totals retrievable via Totals.
func (m *Machine) Run(body func(r *Rank)) RunResult {
	m.timingMu.Lock()
	m.stages = nil
	m.timingMu.Unlock()

	ranks := make([]*Rank, m.cfg.Ranks)
	for i := range ranks {
		ranks[i] = &Rank{machine: m, id: i, node: m.NodeOf(i), token: newParkToken()}
	}
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(len(ranks))
	for _, r := range ranks {
		go func(r *Rank) {
			defer wg.Done()
			// A rank that hits an aborted barrier unwinds with the
			// abortPanic sentinel; swallow it so the run as a whole can
			// report the abort. Any other panic is a real bug: re-raise.
			defer func() {
				if p := recover(); p != nil {
					if _, ok := p.(abortPanic); ok {
						return
					}
					panic(p)
				}
			}()
			// Give the slot back on every exit path (return, abort unwind,
			// real panic); barrier waits release it themselves and reclaim
			// it on wake, tracked by hasSlot.
			defer func() {
				if r.hasSlot {
					r.hasSlot = false
					m.sched.release()
				}
			}()
			m.sched.acquire(r.token)
			r.hasSlot = true
			body(r)
		}(r)
	}
	wg.Wait()
	wall := time.Since(start)

	var res RunResult
	res.Wall = wall
	if cause := m.AbortErr(); cause != nil {
		res.Err = errors.Join(ErrAborted, cause)
	}
	for _, r := range ranks {
		res.Stats.Add(r.stats)
		if r.clock > res.SimSeconds {
			res.SimSeconds = r.clock
		}
	}
	m.timingMu.Lock()
	res.Stages = append([]StageTime(nil), m.stages...)
	m.stats.Add(res.Stats)
	m.simTime += res.SimSeconds
	m.wallTime += wall
	m.timingMu.Unlock()
	return res
}

// Totals returns the accumulated simulated time, wall time and statistics
// over all Run calls so far.
func (m *Machine) Totals() (simSeconds float64, wall time.Duration, stats CommStats) {
	m.timingMu.Lock()
	defer m.timingMu.Unlock()
	return m.simTime, m.wallTime, m.stats
}

// recordStage accumulates the duration of a named stage. Stages that run
// once per pipeline iteration (e.g. "alignment") therefore report their
// total time across iterations.
func (m *Machine) recordStage(name string, seconds float64) {
	m.timingMu.Lock()
	defer m.timingMu.Unlock()
	for i := range m.stages {
		if m.stages[i].Name == name {
			m.stages[i].Seconds += seconds
			return
		}
	}
	m.stages = append(m.stages, StageTime{Name: name, Seconds: seconds})
}

// Rank is the per-goroutine handle of one SPMD rank.
type Rank struct {
	machine  *Machine
	id       int
	node     int
	clock    float64
	resident uint64
	stats    CommStats

	// Pooled-scheduler state: the rank's parking token and whether it
	// currently holds a worker slot. Touched only by the rank's own
	// goroutine.
	token   *parkToken
	hasSlot bool
}

// ID returns the rank index in [0, NRanks).
func (r *Rank) ID() int { return r.id }

// NRanks returns the number of ranks in the machine.
func (r *Rank) NRanks() int { return r.machine.cfg.Ranks }

// Node returns the virtual node hosting this rank.
func (r *Rank) Node() int { return r.node }

// Nodes returns the number of virtual nodes in the machine.
func (r *Rank) Nodes() int { return r.machine.Nodes() }

// Machine returns the machine this rank belongs to.
func (r *Rank) Machine() *Machine { return r.machine }

// SameNode reports whether the given rank lives on the same virtual node.
func (r *Rank) SameNode(other int) bool { return r.machine.NodeOf(other) == r.node }

// Clock returns the rank's simulated clock in seconds.
func (r *Rank) Clock() float64 { return r.clock }

// Stats returns a copy of the rank's communication statistics.
func (r *Rank) Stats() CommStats { return r.stats }

// Compute charges ops units of local work to the rank's simulated clock.
func (r *Rank) Compute(ops float64) {
	if ops <= 0 {
		return
	}
	r.stats.ComputeOps += ops
	r.clock += ops * r.machine.cfg.Cost.ComputePerOp
}

// ChargeSend charges the cost of sending msgs messages totalling bytes bytes
// to the destination rank (a one-sided put or an aggregated batch).
func (r *Rank) ChargeSend(dest int, bytes int, msgs int) {
	if msgs <= 0 {
		return
	}
	c := r.machine.cfg.Cost
	off := !r.SameNode(dest)
	r.stats.Messages += uint64(msgs)
	r.stats.BytesSent += uint64(bytes)
	r.stats.RemotePuts += uint64(msgs)
	if off {
		r.stats.OffNodeMessages += uint64(msgs)
		r.stats.OffNodeBytes += uint64(bytes)
		r.clock += float64(msgs)*c.LatencyOffNode + float64(bytes)*c.ByteOffNode
	} else {
		r.clock += float64(msgs)*c.LatencyOnNode + float64(bytes)*c.ByteOnNode
	}
}

// ChargeGet charges the cost of fetching bytes bytes from the source rank
// (a one-sided get, e.g. a remote hash-table lookup). The fetched bytes are
// inbound traffic and are accounted to BytesReceived, not BytesSent.
func (r *Rank) ChargeGet(src int, bytes int, msgs int) {
	if msgs <= 0 {
		return
	}
	c := r.machine.cfg.Cost
	off := !r.SameNode(src)
	r.stats.Messages += uint64(msgs)
	r.stats.RemoteGets += uint64(msgs)
	r.stats.BytesReceived += uint64(bytes)
	if off {
		r.stats.OffNodeMessages += uint64(msgs)
		r.stats.OffNodeBytes += uint64(bytes)
		r.clock += float64(msgs)*c.LatencyOffNode + float64(bytes)*c.ByteOffNode
	} else {
		r.clock += float64(msgs)*c.LatencyOnNode + float64(bytes)*c.ByteOnNode
	}
}

// ChargeResident records that bytes bytes of collective payload are now
// materialized on this rank (a gathered result, a received exchange batch, a
// distributed set's local shard) and updates the peak-resident high-water
// mark. Resident tracking is a memory-footprint meter, not a clock charge:
// it costs no simulated time.
func (r *Rank) ChargeResident(bytes int) {
	if bytes <= 0 {
		return
	}
	r.resident += uint64(bytes)
	if r.resident > r.stats.PeakResidentBytes {
		r.stats.PeakResidentBytes = r.resident
	}
}

// ReleaseResident records that bytes bytes previously charged with
// ChargeResident have been dropped (the payload was consumed or replaced).
// Releases are clamped at zero so a conservative caller can never underflow
// the meter.
func (r *Rank) ReleaseResident(bytes int) {
	if bytes <= 0 {
		return
	}
	if uint64(bytes) > r.resident {
		r.resident = 0
		return
	}
	r.resident -= uint64(bytes)
}

// Resident returns the collective payload bytes currently materialized on
// this rank.
func (r *Rank) Resident() uint64 { return r.resident }

// AccountReceived records inbound bytes whose wire time the sender already
// paid (the receiver side of a one-way aggregated transfer, as in the
// collectives' delivery accounting). It keeps the global
// BytesSent==BytesReceived invariant without double-charging the clock.
func (r *Rank) AccountReceived(bytes int) {
	if bytes <= 0 {
		return
	}
	r.stats.BytesReceived += uint64(bytes)
}

// ChargeCacheHit records a software-cache hit (served locally, nearly free).
func (r *Rank) ChargeCacheHit() {
	r.stats.CacheHits++
	r.Compute(1)
}

// ChargeCacheMiss records a software-cache miss that had to go remote.
func (r *Rank) ChargeCacheMiss(src int, bytes int) {
	r.stats.CacheMisses++
	r.ChargeGet(src, bytes, 1)
}

// AtomicFetchAdd atomically adds delta to the global counter with the given
// handle and returns the previous value. The cost of a remote atomic is
// charged to the calling rank.
func (r *Rank) AtomicFetchAdd(handle int, delta int64) int64 {
	m := r.machine
	m.atomicMu.Lock()
	prev := m.atomics[handle]
	m.atomics[handle] += delta
	m.atomicMu.Unlock()
	r.stats.AtomicOps++
	r.clock += m.cfg.Cost.AtomicCost
	return prev
}

// AtomicLoad returns the current value of a global atomic counter.
func (r *Rank) AtomicLoad(handle int) int64 {
	m := r.machine
	m.atomicMu.Lock()
	v := m.atomics[handle]
	m.atomicMu.Unlock()
	r.stats.AtomicOps++
	r.clock += m.cfg.Cost.AtomicCost
	return v
}

// Barrier synchronizes all ranks and advances every rank's simulated clock
// to the maximum clock among them (plus the barrier cost), modelling the
// fact that a stage ends only when its slowest rank finishes.
func (r *Rank) Barrier() { r.barrierOn(nil) }

// barrierOn is Barrier with an optional completion hook: onComplete runs
// exactly once per barrier epoch, on the goroutine of the last-arriving
// rank, under the barrier lock, before any waiter wakes. The collectives use
// it to compute their shared result once instead of once per rank.
func (r *Rank) barrierOn(onComplete func()) {
	m := r.machine
	r.stats.Barriers++
	// The fault-injection trap: trapBarrier is armed (if at all) before Run,
	// so the unsynchronized read cannot race with the write.
	if r.id == 0 && m.trapBarrier != 0 && r.stats.Barriers == m.trapBarrier {
		m.Abort(m.trapErr)
		panic(abortPanic{})
	}
	r.clock = m.barrier.await(r, r.clock, onComplete) + m.cfg.Cost.BarrierCost
}

// Detach releases the rank's worker-pool slot without blocking, for code
// that is about to block on something *other than* a pgas barrier — the
// checkpoint writer's deposit rendezvous is the canonical case: rank 0 waits
// on a condition variable for deposits from ranks that may themselves be
// parked waiting for a slot, so holding the slot across that wait would
// deadlock a Workers=1 pool. A detached rank must not issue pgas operations;
// call Reattach before continuing. Detach/Reattach nest safely (they are
// no-ops when the slot is already released/held).
func (r *Rank) Detach() {
	if r.hasSlot {
		r.hasSlot = false
		r.machine.sched.release()
	}
}

// Reattach blocks until a worker-pool slot is free again and reclaims it,
// undoing Detach.
func (r *Rank) Reattach() {
	if !r.hasSlot {
		r.machine.sched.acquire(r.token)
		r.hasSlot = true
	}
}

// RestoreState overwrites the rank's simulated clock and resident-bytes
// meter with values captured by a checkpoint, without charging anything.
// Checkpoints are written after a stage-end barrier, where the clock is
// identical on every rank, so restoring the recorded bits puts a resumed run
// on exactly the simulated timeline the original run was on — the foundation
// of the bit-identical sim-seconds guarantee across a kill/resume cycle.
func (r *Rank) RestoreState(clock float64, resident uint64) {
	r.clock = clock
	r.resident = resident
	if resident > r.stats.PeakResidentBytes {
		r.stats.PeakResidentBytes = resident
	}
}

// StageStart returns a token capturing the rank's clock after a barrier; use
// with StageEnd to time a pipeline stage.
func (r *Rank) StageStart() float64 {
	r.Barrier()
	return r.clock
}

// StageEnd ends a stage started with StageStart, records its simulated
// duration under the given name, and returns that duration. The barrier
// before measuring makes the duration identical on every rank; only rank 0
// records it, so repeated stages accumulate exactly once per execution.
func (r *Rank) StageEnd(name string, startClock float64) float64 {
	r.Barrier()
	dur := r.clock - startClock
	if r.id == 0 {
		r.machine.recordStage(name, dur)
	}
	return dur
}

// BlockRange returns the half-open range [lo, hi) of the items owned by this
// rank under a block distribution of n items.
func (r *Rank) BlockRange(n int) (lo, hi int) {
	return BlockRange(n, r.machine.cfg.Ranks, r.id)
}

// PairBlockRange returns the half-open range [lo, hi) of the items owned by
// this rank under a block distribution that never splits consecutive pairs
// (items 2i and 2i+1 always land on the same rank). Use it to distribute
// interleaved paired-end reads.
func (r *Rank) PairBlockRange(n int) (lo, hi int) {
	return PairBlockRange(n, r.machine.cfg.Ranks, r.id)
}

// PairBlockRange is the package-level form of Rank.PairBlockRange.
func PairBlockRange(n, p, rank int) (lo, hi int) {
	pairs := n / 2
	plo, phi := BlockRange(pairs, p, rank)
	lo, hi = plo*2, phi*2
	if rank == p-1 {
		hi = n // a trailing unpaired item goes to the last rank
	}
	return lo, hi
}

// BlockRange returns the half-open range [lo, hi) of items owned by rank
// `rank` under a block distribution of n items over p ranks.
func BlockRange(n, p, rank int) (lo, hi int) {
	if p <= 0 {
		return 0, n
	}
	per := n / p
	rem := n % p
	lo = rank*per + min(rank, rem)
	hi = lo + per
	if rank < rem {
		hi++
	}
	return lo, hi
}

// SortStages returns the stage timings sorted by descending duration.
func SortStages(stages []StageTime) []StageTime {
	out := append([]StageTime(nil), stages...)
	sort.Slice(out, func(i, j int) bool { return out[i].Seconds > out[j].Seconds })
	return out
}

// clockBarrier is a reusable barrier that also synchronizes the simulated
// clocks of the participating ranks to the maximum value. It is integrated
// with the pooled scheduler: a waiting rank hands its worker slot to the
// ranks still short of the barrier and reclaims one when the epoch
// completes, so a Workers=1 pool still drains every barrier.
type clockBarrier struct {
	mu       sync.Mutex
	n        int
	count    int
	maxClock float64
	// waiters are the parked arrivals of the current epoch; spare is the
	// previous epoch's list, recycled to avoid an O(P) allocation per
	// barrier.
	waiters []*parkToken
	spare   []*parkToken
	// aborted poisons the barrier: every current and future participant
	// unwinds with the abortPanic sentinel instead of synchronizing.
	aborted bool
}

func newClockBarrier(n int) *clockBarrier {
	return &clockBarrier{n: n}
}

func (b *clockBarrier) isAborted() bool {
	b.mu.Lock()
	a := b.aborted
	b.mu.Unlock()
	return a
}

// await blocks until all n participants have arrived and returns the maximum
// clock value among them. The last arriver runs onComplete (if any) under
// the barrier lock before publishing the result and waking the waiters; a
// non-last arriver releases its worker slot while parked and wakes already
// holding one (the wake-up and the slot grant are fused, see
// scheduler.unparkGranting). If the barrier is (or becomes) aborted, await
// unwinds with the abortPanic sentinel instead, without holding a slot
// (Run's cleanup consults Rank.hasSlot).
func (b *clockBarrier) await(r *Rank, clock float64, onComplete func()) float64 {
	b.mu.Lock()
	if b.aborted {
		b.mu.Unlock()
		panic(abortPanic{})
	}
	if clock > b.maxClock {
		b.maxClock = clock
	}
	b.count++
	if b.count == b.n {
		if onComplete != nil {
			onComplete()
		}
		result := b.maxClock
		b.maxClock = 0
		b.count = 0
		waiters := b.waiters
		// Recycle the arrays: next epoch's arrivals append to the other
		// one (the run queue keeps its own copies of the token pointers,
		// so reusing the array is safe even while some of these ranks are
		// still parked waiting for a slot grant).
		b.waiters, b.spare = b.spare[:0], b.waiters
		b.mu.Unlock()
		for _, w := range waiters {
			w.result = result
		}
		// Wake the epoch's waiters with their slot grants fused in: each
		// waiter parks exactly once and wakes already holding a slot.
		r.machine.sched.unparkGranting(waiters)
		return result
	}
	t := r.token
	b.waiters = append(b.waiters, t)
	b.mu.Unlock()
	// Hand the worker slot to a rank still short of the barrier; the
	// release must come *after* registering, and the one-element channel
	// absorbs a completion signal that lands in between.
	r.hasSlot = false
	r.machine.sched.release()
	<-t.wake
	if b.isAborted() {
		// The wake-up came from (or was overtaken by) an abort, so it
		// carries no slot grant: unwind without marking a slot held.
		panic(abortPanic{})
	}
	r.hasSlot = true
	return t.result
}

// abort poisons the barrier and wakes every waiter.
func (b *clockBarrier) abort() {
	b.mu.Lock()
	if b.aborted {
		b.mu.Unlock()
		return
	}
	b.aborted = true
	waiters := b.waiters
	b.waiters = nil
	b.mu.Unlock()
	for _, w := range waiters {
		w.wake <- struct{}{}
	}
}
