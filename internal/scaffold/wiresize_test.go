package scaffold

import (
	"testing"

	"mhmgo/internal/pgas"
)

// TestWireSizes pins every routed scaffolding record's wire size against the
// reflective lower bound, so the cost accounting cannot silently drift.
func TestWireSizes(t *testing.T) {
	al := acceptedLink{Key: linkKey{C1: 1, C2: 2, End1: 'L', End2: 'R'}, Gap: 40, Sup: 3}
	if got, min := al.WireSize(), pgas.WireSizeOf(al); got < min {
		t.Errorf("acceptedLink.WireSize() = %d < encoded size %d", got, min)
	}
	ec := endpointCopy{Link: al, Which: 2}
	if got, min := ec.WireSize(), pgas.WireSizeOf(ec); got < min {
		t.Errorf("endpointCopy.WireSize() = %d < encoded size %d", got, min)
	}
	fn := flagNotice{ContigID: 5, Suspended: true, HMMHit: true}
	if got, min := fn.WireSize(), pgas.WireSizeOf(fn); got < min {
		t.Errorf("flagNotice.WireSize() = %d < encoded size %d", got, min)
	}
	s := Scaffold{ID: 1, Seq: []byte("ACGTNNNNACGT"), ContigIDs: []int{4, 9}, Gaps: 1, GapsClosed: 1}
	if got, min := s.WireSize(), pgas.WireSizeOf(s); got < min {
		t.Errorf("Scaffold.WireSize() = %d < encoded size %d", got, min)
	}
}
