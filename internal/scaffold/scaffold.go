// Package scaffold implements the MetaHipMer scaffolding stage (Algorithm 3
// and Section III of the paper): read-pair links between contigs are
// aggregated into a contig graph, the graph is partitioned into connected
// components to expose parallelism, each component is traversed with the
// paper's heuristics (longest-seed-first, extendable ends, repeat
// suspension, and the ribosomal/HMM-hit rule), and the remaining gaps are
// closed with a load-balanced per-gap phase.
//
// Since PR 3 the stage runs on distributed ownership end to end: link
// evidence lives in the link DHT as before, but the accepted links are
// copied only to the two endpoint contigs' owner ranks (which decide repeat
// suspension owner-side and veto suspended links), surviving links are
// routed only to the rank traversing their component, traversal fetches the
// contigs it touches through a cached one-sided read, and the finished
// scaffolds stay distributed until a single rank-ordered emit on rank 0.
// The only per-contig state every rank holds is the integer component label
// array; no rank materializes the full link, contig or scaffold payloads.
//
// Run performs ONE round of scaffolding for ONE paired-end library (its
// geometry in Options.InsertSize/InsertStd). Multi-library assemblies —
// HipMer/MetaHipMer inputs combine libraries of increasing insert size —
// are driven by internal/core, which calls Run once per library in
// ascending insert-size order, splicing each round's scaffolds back in as
// the next round's contigs (Options.SkipEmit / Result.Local carry the
// intermediate rounds' output between rounds without materializing it).
package scaffold

import (
	"fmt"
	"sort"

	"mhmgo/internal/aligner"
	"mhmgo/internal/cc"
	"mhmgo/internal/dbg"
	"mhmgo/internal/dht"
	"mhmgo/internal/dist"
	"mhmgo/internal/hmm"
	"mhmgo/internal/pgas"
	"mhmgo/internal/seq"
)

// Options controls scaffolding.
type Options struct {
	// K is the assembly k-mer size (used for overlap detection in gap
	// closing).
	K int
	// InsertSize and InsertStd describe the paired-end library.
	InsertSize int
	InsertStd  int
	// MinLinkSupport is the number of read pairs (or splinting reads) needed
	// to accept a link between two contig ends.
	MinLinkSupport int
	// LongContigThreshold classifies contigs as "long"/confident traversal
	// seeds.
	LongContigThreshold int
	// RRNAProfile, when non-nil, marks contigs matching the profile as HMM
	// hits whose ends stay extendable despite competing links.
	RRNAProfile   *hmm.Profile
	RRNAThreshold float64
	// CloseGaps enables gap closing (otherwise gaps are filled with Ns).
	CloseGaps bool
	// MinGapOverlap is the minimum exact overlap between neighbouring contig
	// ends for a gap to be spliced closed.
	MinGapOverlap int
	// Aggregate controls DHT update aggregation (for ablations).
	Aggregate bool
	// UseComponents partitions traversal by connected components (the
	// paper's parallelization); false serializes traversal on rank 0 (for
	// the ablation study).
	UseComponents bool
	// SkipEmit leaves Result.Scaffolds nil: the finished scaffolds stay
	// distributed and each rank receives its own shard in Result.Local
	// (with unassigned IDs). The multi-library round loop sets it for every
	// round but the last, because an intermediate round's scaffolds are
	// consumed as the next round's contigs (dbg.DistributeContigs assigns
	// canonical ownership and IDs) rather than materialized on rank 0.
	SkipEmit bool
}

// DefaultOptions returns scaffolding defaults for assembly k and library
// insert size.
func DefaultOptions(k, insertSize int) Options {
	return Options{
		K:                   k,
		InsertSize:          insertSize,
		InsertStd:           insertSize / 10,
		MinLinkSupport:      2,
		LongContigThreshold: 3 * insertSize / 2,
		RRNAThreshold:       0.5,
		CloseGaps:           true,
		MinGapOverlap:       k - 1,
		Aggregate:           true,
		UseComponents:       true,
	}
}

// Scaffold is an ordered, oriented chain of contigs with its final sequence.
type Scaffold struct {
	ID         int
	Seq        []byte
	ContigIDs  []int
	Gaps       int
	GapsClosed int
}

// Len returns the scaffold length in bases.
func (s Scaffold) Len() int { return len(s.Seq) }

// WireSize returns the wire bytes charged when a scaffold is routed or
// emitted: header words, the sequence and the member contig IDs.
func (s Scaffold) WireSize() int { return 32 + len(s.Seq) + 8*len(s.ContigIDs) }

// Result reports the outcome of scaffolding. Scaffolds is the final,
// deterministically ordered scaffold list materialized on rank 0 only (nil
// on every other rank); Local is the calling rank's own shard (always set;
// the only output when Options.SkipEmit is true); the counters are
// identical on every rank.
type Result struct {
	Scaffolds        []Scaffold
	Local            []Scaffold
	SplintLinks      int
	SpanLinks        int
	AcceptedLinks    int
	RepeatsSuspended int
	Components       int
	RRNAHits         int
	GapsTotal        int
	GapsClosed       int
}

// linkKey identifies an (unordered) pair of contig ends.
type linkKey struct {
	C1, C2     int
	End1, End2 byte
}

// linkAgg accumulates the evidence for one link.
type linkAgg struct {
	Count   int
	GapSum  int
	Splints int
}

// linkInfo is an accepted edge of the contig graph.
type linkInfo struct {
	Other    int
	MyEnd    byte
	OtherEnd byte
	Gap      int
	Support  int
}

func linkHash(k linkKey) uint64 {
	x := uint64(k.C1)*0x9e3779b97f4a7c15 ^ uint64(k.C2)*0xc2b2ae3d27d4eb4f ^ uint64(k.End1)<<8 ^ uint64(k.End2)
	x ^= x >> 31
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 29
	return x
}

func normalizeKey(c1 int, e1 byte, c2 int, e2 byte) linkKey {
	if c1 < c2 || (c1 == c2 && e1 <= e2) {
		return linkKey{C1: c1, C2: c2, End1: e1, End2: e2}
	}
	return linkKey{C1: c2, C2: c1, End1: e2, End2: e1}
}

// acceptedLink is one accepted contig-graph edge as it moves between ranks.
type acceptedLink struct {
	Key linkKey
	Gap int
	Sup int
}

// WireSize returns the wire bytes of one accepted link: the two contig IDs
// and end bytes of the key plus the gap and support words.
func (acceptedLink) WireSize() int { return 34 }

// endpointCopy is an accepted link shipped to the owner of one of its
// endpoint contigs (Which selects the endpoint: 1 for C1, 2 for C2).
type endpointCopy struct {
	Link  acceptedLink
	Which byte
}

func (endpointCopy) WireSize() int { return 35 }

// flagNotice tells the rank traversing a contig's component that the contig
// is a suspended repeat or an HMM (rRNA) hit; only the owners know, and only
// the flagged minority is shipped.
type flagNotice struct {
	ContigID  int
	Suspended bool
	HMMHit    bool
}

func (flagNotice) WireSize() int { return 10 }

// endAndDistance derives, for one aligned read of an innie pair, which end
// of the contig the rest of the fragment extends past and how far the read
// start is from that end.
func endAndDistance(a aligner.Alignment, contigLen int) (end byte, dist int) {
	if !a.Reverse {
		// The read points right: its mate lies beyond the contig's right end.
		return 'R', contigLen - a.ContigPos
	}
	return 'L', a.ContigPos + a.AlignLen
}

// Run performs scaffolding over the distributed contig set. Collective:
// every rank passes its local reads (distributed in whole pairs) and their
// alignments; the counters of the returned Result are identical on every
// rank and Result.Scaffolds is materialized on rank 0.
func Run(r *pgas.Rank, cs *dbg.ContigSet, reads []seq.Read, readOffset int, alignments []aligner.Alignment, opts Options) Result {
	if opts.InsertSize <= 0 {
		opts.InsertSize = seq.DefaultInsertSize
	}
	if opts.MinLinkSupport <= 0 {
		opts.MinLinkSupport = 2
	}
	if opts.LongContigThreshold <= 0 {
		opts.LongContigThreshold = 3 * opts.InsertSize / 2
	}
	if opts.MinGapOverlap <= 0 {
		opts.MinGapOverlap = 15
	}

	mode := cs.Mode()
	creader := cs.NewReader(r, 1<<16)
	var res Result

	// Step 1: link generation. Pair up the local alignments by read pair and
	// store splint/span evidence in a distributed hash table keyed by the
	// contig-end pair (Global Update-Only phase). Contig lengths come from
	// the distributed set through the cached reader; with read localization
	// the aligned contig is usually owner-local.
	linkTable := dht.NewMapCollective[linkKey, linkAgg](r, linkHash, 40)
	combine := func(existing, update linkAgg, found bool) linkAgg {
		existing.Count += update.Count
		existing.GapSum += update.GapSum
		existing.Splints += update.Splints
		return existing
	}
	u := linkTable.NewUpdater(r, combine, 256, opts.Aggregate)

	alignByRead := make(map[int]aligner.Alignment, len(alignments))
	for _, a := range alignments {
		alignByRead[a.ReadIdx] = a
	}
	splintsLocal, spansLocal := 0, 0
	for _, a := range alignments {
		if a.ReadIdx%2 != 0 {
			continue // handle each pair once, from its even member
		}
		mate, ok := alignByRead[a.ReadIdx+1]
		if !ok || mate.ContigID == a.ContigID {
			continue
		}
		// The contig lengths ride along in the alignment records, so link
		// generation needs no remote contig fetches.
		end1, d1 := endAndDistance(a, a.ContigLen)
		end2, d2 := endAndDistance(mate, mate.ContigLen)
		gap := opts.InsertSize - d1 - d2
		if gap > opts.InsertSize {
			continue
		}
		agg := linkAgg{Count: 1, GapSum: gap}
		if gap <= 0 {
			agg.Splints = 1
			splintsLocal++
		} else {
			spansLocal++
		}
		u.Update(normalizeKey(a.ContigID, end1, mate.ContigID, end2), agg)
		r.Compute(2)
	}
	u.Flush()
	r.Barrier()
	// Link generation is complete; assessment only reads the table.
	linkTable.Freeze()

	// Step 2: assess links locally on their owner ranks (Local Reads &
	// Writes phase). The accepted links stay distributed.
	var localAccepted []acceptedLink
	linkTable.ForEachLocal(r, func(k linkKey, agg linkAgg) {
		if agg.Count < opts.MinLinkSupport {
			return
		}
		localAccepted = append(localAccepted, acceptedLink{Key: k, Gap: agg.GapSum / agg.Count, Sup: agg.Count})
	})
	res.SplintLinks = pgas.AllReduce(r, splintsLocal, pgas.ReduceSum)
	res.SpanLinks = pgas.AllReduce(r, spansLocal, pgas.ReduceSum)
	res.AcceptedLinks = pgas.AllReduce(r, len(localAccepted), pgas.ReduceSum)

	// Step 3: copy each accepted link to its endpoint contigs' owners (one
	// copy per endpoint), so repeat suspension can be decided owner-side
	// from purely local counts.
	var copies []endpointCopy
	for _, al := range localAccepted {
		copies = append(copies, endpointCopy{Link: al, Which: 1}, endpointCopy{Link: al, Which: 2})
	}
	ownerOfCopy := func(ec endpointCopy) int {
		id := ec.Link.Key.C1
		if ec.Which == 2 {
			id = ec.Link.Key.C2
		}
		owner, _ := cs.Locate(id)
		return owner
	}
	myCopies := dist.Exchange(r, copies, ownerOfCopy, endpointCopy.WireSize, mode)

	// Step 4: owner-side suspension and HMM classification. Every quantity
	// needed — contig length, rRNA hit, per-end link counts — is local to
	// the owner.
	hmmHitLocal := make(map[int]bool)
	if opts.RRNAProfile != nil {
		cs.ForEachLocal(r, func(_ int, c dbg.Contig) {
			if opts.RRNAProfile.IsHit(c.Seq, opts.RRNAThreshold) {
				hmmHitLocal[c.ID] = true
			}
			r.Compute(float64(len(c.Seq)))
		})
	}
	res.RRNAHits = pgas.AllReduce(r, len(hmmHitLocal), pgas.ReduceSum)

	type endKey struct {
		id  int
		end byte
	}
	endCount := make(map[endKey]int)
	for _, ec := range myCopies {
		k := ec.Link.Key
		if ec.Which == 1 {
			endCount[endKey{k.C1, k.End1}]++
		} else {
			endCount[endKey{k.C2, k.End2}]++
		}
	}
	r.Compute(float64(len(myCopies)))
	suspendedLocal := make(map[int]bool)
	cs.ForEachLocal(r, func(_ int, c dbg.Contig) {
		if len(c.Seq) > opts.InsertSize || hmmHitLocal[c.ID] {
			return
		}
		if endCount[endKey{c.ID, 'L'}] > 1 && endCount[endKey{c.ID, 'R'}] > 1 {
			suspendedLocal[c.ID] = true
		}
	})
	res.RepeatsSuspended = pgas.AllReduce(r, len(suspendedLocal), pgas.ReduceSum)

	// Step 5: suspended endpoints veto their links. The C1-owner's copy is
	// the link's home; the C2 owner sends a veto home when C2 is suspended.
	var vetoes []acceptedLink
	var homeLinks []acceptedLink
	for _, ec := range myCopies {
		k := ec.Link.Key
		switch ec.Which {
		case 1:
			if !suspendedLocal[k.C1] {
				homeLinks = append(homeLinks, ec.Link)
			}
		case 2:
			if suspendedLocal[k.C2] {
				vetoes = append(vetoes, ec.Link)
			}
		}
	}
	homeOf := func(al acceptedLink) int {
		owner, _ := cs.Locate(al.Key.C1)
		return owner
	}
	myVetoes := dist.Exchange(r, vetoes, homeOf, acceptedLink.WireSize, mode)
	vetoed := make(map[linkKey]bool, len(myVetoes))
	for _, v := range myVetoes {
		vetoed[v.Key] = true
	}
	surviving := homeLinks[:0]
	for _, al := range homeLinks {
		if !vetoed[al.Key] {
			surviving = append(surviving, al)
		}
	}
	r.Compute(float64(len(homeLinks)))

	// Step 6: connected components over the surviving links, computed with
	// the parallel Shiloach-Vishkin-style algorithm from distributed edges.
	// The integer label array is the one per-contig structure every rank
	// keeps (8 bytes per contig, index-only — see DESIGN.md).
	n := cs.GlobalLen(r)
	edges := make([]cc.Edge, 0, len(surviving))
	for _, al := range surviving {
		edges = append(edges, cc.Edge{U: al.Key.C1, V: al.Key.C2})
	}
	labels := cc.Parallel(r, n, edges, nil)
	groups := cc.GroupByComponent(labels)
	res.Components = len(groups)

	reps := make([]int, 0, len(groups))
	for rep := range groups {
		reps = append(reps, rep)
	}
	sort.Ints(reps)
	repIndex := make(map[int]int, len(reps))
	for gi, rep := range reps {
		repIndex[rep] = gi
	}
	traverserOf := func(contigID int) int {
		if !opts.UseComponents {
			return 0
		}
		return repIndex[labels[contigID]] % r.NRanks()
	}

	// Step 7: route each surviving link to the rank traversing its
	// component, and ship the (rare) suspended/HMM flags of every contig to
	// its traverser so seeds and extendability follow the paper's rules.
	myLinks := dist.Exchange(r, surviving,
		func(al acceptedLink) int { return traverserOf(al.Key.C1) },
		acceptedLink.WireSize, mode)
	var notices []flagNotice
	cs.ForEachLocal(r, func(_ int, c dbg.Contig) {
		if suspendedLocal[c.ID] || hmmHitLocal[c.ID] {
			notices = append(notices, flagNotice{ContigID: c.ID, Suspended: suspendedLocal[c.ID], HMMHit: hmmHitLocal[c.ID]})
		}
	})
	myNotices := dist.Exchange(r, notices,
		func(fn flagNotice) int { return traverserOf(fn.ContigID) },
		flagNotice.WireSize, mode)

	adj := make(map[int][]linkInfo)
	for _, al := range myLinks {
		k := al.Key
		adj[k.C1] = append(adj[k.C1], linkInfo{Other: k.C2, MyEnd: k.End1, OtherEnd: k.End2, Gap: al.Gap, Support: al.Sup})
		adj[k.C2] = append(adj[k.C2], linkInfo{Other: k.C1, MyEnd: k.End2, OtherEnd: k.End1, Gap: al.Gap, Support: al.Sup})
	}
	suspended := make(map[int]bool)
	hmmHit := make(map[int]bool)
	for _, fn := range myNotices {
		if fn.Suspended {
			suspended[fn.ContigID] = true
		}
		if fn.HMMHit {
			hmmHit[fn.ContigID] = true
		}
	}
	tr := &traverser{
		creader:   creader,
		adj:       adj,
		suspended: suspended,
		hmmHit:    hmmHit,
		opts:      opts,
	}
	// Candidate links are ordered deterministically by support, then gap,
	// then the partner contig's content — never by the rank-count-dependent
	// ID numbering, and never by the run-to-run-varying order the link
	// exchanges delivered them in. The partner contigs are fetched once per
	// distinct ID before sorting, so the charged fetch count cannot depend
	// on the comparison count.
	contentRank := make(map[int]int)
	{
		distinct := make([]int, 0, len(adj))
		seen := make(map[int]bool)
		for _, links := range adj {
			for _, l := range links {
				if !seen[l.Other] {
					seen[l.Other] = true
					distinct = append(distinct, l.Other)
				}
			}
		}
		sort.Ints(distinct)
		fetched := make(map[int]dbg.Contig, len(distinct))
		for _, id := range distinct {
			fetched[id] = tr.creader.Get(id)
		}
		sort.Slice(distinct, func(i, j int) bool {
			return dbg.ContigLess(fetched[distinct[i]], fetched[distinct[j]])
		})
		for rank, id := range distinct {
			contentRank[id] = rank
		}
	}
	for id := range adj {
		links := adj[id]
		sort.Slice(links, func(i, j int) bool {
			if links[i].Support != links[j].Support {
				return links[i].Support > links[j].Support
			}
			if links[i].Gap != links[j].Gap {
				return links[i].Gap < links[j].Gap
			}
			if links[i].Other != links[j].Other {
				return contentRank[links[i].Other] < contentRank[links[j].Other]
			}
			if links[i].MyEnd != links[j].MyEnd {
				return links[i].MyEnd < links[j].MyEnd
			}
			return links[i].OtherEnd < links[j].OtherEnd
		})
		adj[id] = links
	}

	// Step 8: traverse the components assigned to this rank, longest seed
	// first, fetching the contigs each chain touches through the cache.
	var localChains [][]placedContig
	for gi, rep := range reps {
		if opts.UseComponents {
			if gi%r.NRanks() != r.ID() {
				continue
			}
		} else if r.ID() != 0 {
			continue
		}
		localChains = append(localChains, tr.traverseComponent(r, groups[rep])...)
	}
	r.Barrier()

	// Step 9: gap closing and scaffold materialization, locally per
	// traverser; the scaffolds stay distributed.
	localScaffolds, gapsTotal, gapsClosed := buildScaffolds(r, creader, localChains, opts)
	res.GapsTotal = pgas.AllReduce(r, gapsTotal, pgas.ReduceSum)
	res.GapsClosed = pgas.AllReduce(r, gapsClosed, pgas.ReduceSum)

	// Step 10: provisional IDs in rank order via the exclusive scan, then a
	// single rank-ordered emit materializes the output on rank 0 only, where
	// it is put into the deterministic global order. Only the summary
	// counters above were all-reduced; no gather-to-all anywhere.
	// With SkipEmit the scaffolds stay exactly where traversal produced
	// them: the caller consumes each rank's Local shard (an intermediate
	// multi-library round feeds it straight into dbg.DistributeContigs,
	// which assigns canonical ownership and IDs), so neither the global
	// renumbering nor the rank-0 emit is performed or charged.
	if opts.SkipEmit {
		res.Local = localScaffolds
		r.Barrier()
		return res
	}
	// The scaffolds are already owner-placed on the rank that traversed
	// their component; stamp that rank into the provisional ID so the owner
	// function is a pure function of the item (Renumber overwrites it).
	for i := range localScaffolds {
		localScaffolds[i].ID = r.ID()
	}
	sset := dist.New(r, localScaffolds,
		func(s Scaffold) int { return s.ID },
		Scaffold.WireSize, mode)
	sset.Renumber(r, func(i, id int) { sset.Local(r)[i].ID = id })
	res.Local = sset.Local(r)
	merged := sset.Emit(r)
	if merged != nil {
		sort.Slice(merged, func(i, j int) bool {
			if len(merged[i].Seq) != len(merged[j].Seq) {
				return len(merged[i].Seq) > len(merged[j].Seq)
			}
			return string(merged[i].Seq) < string(merged[j].Seq)
		})
		for i := range merged {
			merged[i].ID = i
		}
	}
	res.Scaffolds = merged
	r.Barrier()
	return res
}

// placedContig is one oriented contig in a scaffold chain, with the gap to
// the previous contig in the chain.
type placedContig struct {
	ContigID  int
	Flipped   bool
	GapBefore int
}

// traverser holds the per-rank state of the contig-graph traversal
// heuristics. Contigs are fetched on demand through the cached reader.
type traverser struct {
	creader   *dist.Reader[dbg.Contig]
	adj       map[int][]linkInfo
	suspended map[int]bool
	hmmHit    map[int]bool
	opts      Options
}

// traverseComponent traverses one connected component (given by contig IDs)
// and returns the chains formed.
func (t *traverser) traverseComponent(r *pgas.Rank, members []int) [][]placedContig {
	// Seeds in order of decreasing length, ties broken by content so the
	// order is independent of the rank count.
	seeds := append([]int(nil), members...)
	fetched := make(map[int]dbg.Contig, len(seeds))
	for _, id := range seeds {
		fetched[id] = t.creader.Get(id)
	}
	sort.Slice(seeds, func(i, j int) bool {
		return dbg.ContigLess(fetched[seeds[i]], fetched[seeds[j]])
	})
	used := make(map[int]bool)
	var chains [][]placedContig
	for _, id := range seeds {
		if used[id] || t.suspended[id] {
			continue
		}
		used[id] = true
		chain := []placedContig{{ContigID: id, Flipped: false}}
		// Extend to the right, then to the left (by extending the reversed
		// chain to the right and flipping it back).
		chain = t.extend(r, chain, used)
		chain = reverseChain(chain)
		chain = t.extend(r, chain, used)
		chain = reverseChain(chain)
		chains = append(chains, chain)
		r.Compute(float64(len(chain)))
	}
	return chains
}

// reverseChain flips a chain end-to-end (orientation of every contig flips
// and gaps shift to the following contig).
func reverseChain(chain []placedContig) []placedContig {
	n := len(chain)
	out := make([]placedContig, n)
	for i, pc := range chain {
		out[n-1-i] = placedContig{ContigID: pc.ContigID, Flipped: !pc.Flipped}
	}
	// Recompute GapBefore: the gap that used to precede chain[i] now follows
	// the flipped copy; shift gaps accordingly.
	for i := 1; i < n; i++ {
		out[i].GapBefore = chain[n-i].GapBefore
	}
	return out
}

// extend grows the chain from its last contig's outgoing end while an
// unambiguous, unused continuation exists.
func (t *traverser) extend(r *pgas.Rank, chain []placedContig, used map[int]bool) []placedContig {
	for {
		last := chain[len(chain)-1]
		outEnd := byte('R')
		if last.Flipped {
			outEnd = 'L'
		}
		next, ok := t.pickLink(last.ContigID, outEnd, used)
		if !ok {
			return chain
		}
		used[next.Other] = true
		// Entering through the partner's end: entering via 'L' keeps it
		// forward, entering via 'R' flips it.
		flipped := next.OtherEnd == 'R'
		chain = append(chain, placedContig{ContigID: next.Other, Flipped: flipped, GapBefore: next.Gap})
		r.Compute(1)
	}
}

// pickLink selects the link to follow from a contig end, applying the
// paper's heuristics: skip suspended repeats and used contigs, prefer links
// to long contigs and extendable ends, break ties toward the closest
// (smallest-gap) partner. HMM-hit contigs remain extendable even with
// competing links.
func (t *traverser) pickLink(contigID int, end byte, used map[int]bool) (linkInfo, bool) {
	var candidates []linkInfo
	for _, l := range t.adj[contigID] {
		if l.MyEnd != end {
			continue
		}
		if used[l.Other] || t.suspended[l.Other] {
			continue
		}
		candidates = append(candidates, l)
	}
	if len(candidates) == 0 {
		return linkInfo{}, false
	}
	if len(candidates) > 1 && !t.hmmHit[contigID] {
		// Competing links: the end is not extendable unless the competing
		// targets include a clearly better (long) contig.
		long := candidates[:0]
		for _, l := range candidates {
			if len(t.creader.Get(l.Other).Seq) >= t.opts.LongContigThreshold {
				long = append(long, l)
			}
		}
		if len(long) != 1 {
			return linkInfo{}, false
		}
		candidates = long
	}
	best := candidates[0]
	for _, l := range candidates[1:] {
		if l.Gap < best.Gap {
			best = l
		}
	}
	return best, true
}

// buildScaffolds materializes scaffold sequences from chains, closing gaps
// where the neighbouring contig ends overlap and filling the rest with Ns.
// Member contigs are fetched through the cached reader.
func buildScaffolds(r *pgas.Rank, creader *dist.Reader[dbg.Contig], chains [][]placedContig, opts Options) ([]Scaffold, int, int) {
	var out []Scaffold
	gapsTotal, gapsClosed := 0, 0
	for _, chain := range chains {
		var sb []byte
		var ids []int
		gaps, closed := 0, 0
		for i, pc := range chain {
			s := creader.Get(pc.ContigID).Seq
			if pc.Flipped {
				s = seq.ReverseComplement(s)
			}
			ids = append(ids, pc.ContigID)
			if i == 0 {
				sb = append(sb, s...)
				continue
			}
			gaps++
			if opts.CloseGaps {
				if joined, ok := spliceOverlap(sb, s, opts.MinGapOverlap, opts.InsertSize); ok {
					sb = joined
					closed++
					r.Compute(float64(opts.InsertSize))
					continue
				}
			}
			gapLen := pc.GapBefore
			if gapLen < 1 {
				gapLen = 1
			}
			for g := 0; g < gapLen; g++ {
				sb = append(sb, 'N')
			}
			sb = append(sb, s...)
			r.Compute(float64(len(s)))
		}
		gapsTotal += gaps
		gapsClosed += closed
		out = append(out, Scaffold{Seq: sb, ContigIDs: ids, Gaps: gaps - closed, GapsClosed: closed})
	}
	return out, gapsTotal, gapsClosed
}

// spliceOverlap joins two sequences if the suffix of a exactly matches a
// prefix of b with length >= minOverlap (searching up to maxOverlap).
func spliceOverlap(a, b []byte, minOverlap, maxOverlap int) ([]byte, bool) {
	if maxOverlap > len(a) {
		maxOverlap = len(a)
	}
	if maxOverlap > len(b) {
		maxOverlap = len(b)
	}
	for ov := maxOverlap; ov >= minOverlap; ov-- {
		if string(a[len(a)-ov:]) == string(b[:ov]) {
			return append(a, b[ov:]...), true
		}
	}
	return nil, false
}

// Stats summarizes a scaffold set.
type Stats struct {
	Count      int
	TotalBases int
	MaxLen     int
	N50        int
}

// ComputeStats returns scaffold summary statistics.
func ComputeStats(scaffolds []Scaffold) Stats {
	var s Stats
	s.Count = len(scaffolds)
	lengths := make([]int, 0, len(scaffolds))
	for _, sc := range scaffolds {
		s.TotalBases += sc.Len()
		if sc.Len() > s.MaxLen {
			s.MaxLen = sc.Len()
		}
		lengths = append(lengths, sc.Len())
	}
	sort.Sort(sort.Reverse(sort.IntSlice(lengths)))
	half := s.TotalBases / 2
	acc := 0
	for _, l := range lengths {
		acc += l
		if acc >= half {
			s.N50 = l
			break
		}
	}
	return s
}

// String renders the stats in one line.
func (s Stats) String() string {
	return fmt.Sprintf("scaffolds=%d bases=%d max=%d N50=%d", s.Count, s.TotalBases, s.MaxLen, s.N50)
}
