// Package scaffold implements the MetaHipMer scaffolding stage (Algorithm 3
// and Section III of the paper): read-pair links between contigs are
// aggregated into a contig graph, the graph is partitioned into connected
// components to expose parallelism, each component is traversed with the
// paper's heuristics (longest-seed-first, extendable ends, repeat
// suspension, and the ribosomal/HMM-hit rule), and the remaining gaps are
// closed with a load-balanced per-gap phase.
package scaffold

import (
	"fmt"
	"sort"

	"mhmgo/internal/aligner"
	"mhmgo/internal/cc"
	"mhmgo/internal/dbg"
	"mhmgo/internal/dht"
	"mhmgo/internal/hmm"
	"mhmgo/internal/pgas"
	"mhmgo/internal/seq"
)

// Options controls scaffolding.
type Options struct {
	// K is the assembly k-mer size (used for overlap detection in gap
	// closing).
	K int
	// InsertSize and InsertStd describe the paired-end library.
	InsertSize int
	InsertStd  int
	// MinLinkSupport is the number of read pairs (or splinting reads) needed
	// to accept a link between two contig ends.
	MinLinkSupport int
	// LongContigThreshold classifies contigs as "long"/confident traversal
	// seeds.
	LongContigThreshold int
	// RRNAProfile, when non-nil, marks contigs matching the profile as HMM
	// hits whose ends stay extendable despite competing links.
	RRNAProfile   *hmm.Profile
	RRNAThreshold float64
	// CloseGaps enables gap closing (otherwise gaps are filled with Ns).
	CloseGaps bool
	// MinGapOverlap is the minimum exact overlap between neighbouring contig
	// ends for a gap to be spliced closed.
	MinGapOverlap int
	// Aggregate controls DHT update aggregation (for ablations).
	Aggregate bool
	// UseComponents partitions traversal by connected components (the
	// paper's parallelization); false serializes traversal on rank 0 (for
	// the ablation study).
	UseComponents bool
}

// DefaultOptions returns scaffolding defaults for assembly k and library
// insert size.
func DefaultOptions(k, insertSize int) Options {
	return Options{
		K:                   k,
		InsertSize:          insertSize,
		InsertStd:           insertSize / 10,
		MinLinkSupport:      2,
		LongContigThreshold: 3 * insertSize / 2,
		RRNAThreshold:       0.5,
		CloseGaps:           true,
		MinGapOverlap:       k - 1,
		Aggregate:           true,
		UseComponents:       true,
	}
}

// Scaffold is an ordered, oriented chain of contigs with its final sequence.
type Scaffold struct {
	ID         int
	Seq        []byte
	ContigIDs  []int
	Gaps       int
	GapsClosed int
}

// Len returns the scaffold length in bases.
func (s Scaffold) Len() int { return len(s.Seq) }

// Result reports the outcome of scaffolding.
type Result struct {
	Scaffolds        []Scaffold
	SplintLinks      int
	SpanLinks        int
	AcceptedLinks    int
	RepeatsSuspended int
	Components       int
	RRNAHits         int
	GapsTotal        int
	GapsClosed       int
}

// linkKey identifies an (unordered) pair of contig ends.
type linkKey struct {
	C1, C2     int
	End1, End2 byte
}

// linkAgg accumulates the evidence for one link.
type linkAgg struct {
	Count   int
	GapSum  int
	Splints int
}

// linkInfo is an accepted edge of the contig graph.
type linkInfo struct {
	Other    int
	MyEnd    byte
	OtherEnd byte
	Gap      int
	Support  int
}

func linkHash(k linkKey) uint64 {
	x := uint64(k.C1)*0x9e3779b97f4a7c15 ^ uint64(k.C2)*0xc2b2ae3d27d4eb4f ^ uint64(k.End1)<<8 ^ uint64(k.End2)
	x ^= x >> 31
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 29
	return x
}

func normalizeKey(c1 int, e1 byte, c2 int, e2 byte) linkKey {
	if c1 < c2 || (c1 == c2 && e1 <= e2) {
		return linkKey{C1: c1, C2: c2, End1: e1, End2: e2}
	}
	return linkKey{C1: c2, C2: c1, End1: e2, End2: e1}
}

// endAndDistance derives, for one aligned read of an innie pair, which end
// of the contig the rest of the fragment extends past and how far the read
// start is from that end.
func endAndDistance(a aligner.Alignment, contigLen int) (end byte, dist int) {
	if !a.Reverse {
		// The read points right: its mate lies beyond the contig's right end.
		return 'R', contigLen - a.ContigPos
	}
	return 'L', a.ContigPos + a.AlignLen
}

// Run performs scaffolding. Collective: every rank passes its local reads
// (distributed in whole pairs) and their alignments; every rank returns the
// same Result.
func Run(r *pgas.Rank, contigs []dbg.Contig, reads []seq.Read, readOffset int, alignments []aligner.Alignment, opts Options) Result {
	if opts.InsertSize <= 0 {
		opts.InsertSize = 300
	}
	if opts.MinLinkSupport <= 0 {
		opts.MinLinkSupport = 2
	}
	if opts.LongContigThreshold <= 0 {
		opts.LongContigThreshold = 3 * opts.InsertSize / 2
	}
	if opts.MinGapOverlap <= 0 {
		opts.MinGapOverlap = 15
	}

	byID := make(map[int]int, len(contigs))
	for i, c := range contigs {
		byID[c.ID] = i
	}

	var res Result

	// Step 1: link generation. Pair up the local alignments by read pair and
	// store splint/span evidence in a distributed hash table keyed by the
	// contig-end pair (Global Update-Only phase).
	linkTable := dht.NewMapCollective[linkKey, linkAgg](r, linkHash, 40)
	combine := func(existing, update linkAgg, found bool) linkAgg {
		existing.Count += update.Count
		existing.GapSum += update.GapSum
		existing.Splints += update.Splints
		return existing
	}
	u := linkTable.NewUpdater(r, combine, 256, opts.Aggregate)

	alignByRead := make(map[int]aligner.Alignment, len(alignments))
	for _, a := range alignments {
		alignByRead[a.ReadIdx] = a
	}
	splintsLocal, spansLocal := 0, 0
	for _, a := range alignments {
		if a.ReadIdx%2 != 0 {
			continue // handle each pair once, from its even member
		}
		mate, ok := alignByRead[a.ReadIdx+1]
		if !ok || mate.ContigID == a.ContigID {
			continue
		}
		ci1, ok1 := byID[a.ContigID]
		ci2, ok2 := byID[mate.ContigID]
		if !ok1 || !ok2 {
			continue
		}
		end1, d1 := endAndDistance(a, len(contigs[ci1].Seq))
		end2, d2 := endAndDistance(mate, len(contigs[ci2].Seq))
		gap := opts.InsertSize - d1 - d2
		if gap > opts.InsertSize {
			continue
		}
		agg := linkAgg{Count: 1, GapSum: gap}
		if gap <= 0 {
			agg.Splints = 1
			splintsLocal++
		} else {
			spansLocal++
		}
		u.Update(normalizeKey(a.ContigID, end1, mate.ContigID, end2), agg)
		r.Compute(2)
	}
	u.Flush()
	r.Barrier()
	// Link generation is complete; assessment only reads the table.
	linkTable.Freeze()

	// Step 2: assess links locally on their owner ranks (Local Reads &
	// Writes phase) and gather the accepted edges everywhere.
	type acceptedLink struct {
		Key linkKey
		Gap int
		Sup int
	}
	var localAccepted []acceptedLink
	linkTable.ForEachLocal(r, func(k linkKey, agg linkAgg) {
		if agg.Count < opts.MinLinkSupport {
			return
		}
		localAccepted = append(localAccepted, acceptedLink{Key: k, Gap: agg.GapSum / agg.Count, Sup: agg.Count})
	})
	allAccepted := pgas.GatherV(r, localAccepted, 34)
	adj := make(map[int][]linkInfo)
	accepted := 0
	for _, batch := range allAccepted {
		for _, al := range batch {
			accepted++
			adj[al.Key.C1] = append(adj[al.Key.C1], linkInfo{Other: al.Key.C2, MyEnd: al.Key.End1, OtherEnd: al.Key.End2, Gap: al.Gap, Support: al.Sup})
			adj[al.Key.C2] = append(adj[al.Key.C2], linkInfo{Other: al.Key.C1, MyEnd: al.Key.End2, OtherEnd: al.Key.End1, Gap: al.Gap, Support: al.Sup})
		}
	}
	for id := range adj {
		links := adj[id]
		sort.Slice(links, func(i, j int) bool {
			if links[i].Support != links[j].Support {
				return links[i].Support > links[j].Support
			}
			if links[i].Other != links[j].Other {
				return links[i].Other < links[j].Other
			}
			return links[i].MyEnd < links[j].MyEnd
		})
		adj[id] = links
	}
	res.SplintLinks = pgas.AllReduce(r, splintsLocal, pgas.ReduceSum)
	res.SpanLinks = pgas.AllReduce(r, spansLocal, pgas.ReduceSum)
	res.AcceptedLinks = accepted

	// Step 3: identify HMM (rRNA) hits and repeats to suspend.
	hmmHit := make(map[int]bool)
	if opts.RRNAProfile != nil {
		lo, hi := r.BlockRange(len(contigs))
		var localHits []int
		for i := lo; i < hi; i++ {
			if opts.RRNAProfile.IsHit(contigs[i].Seq, opts.RRNAThreshold) {
				localHits = append(localHits, contigs[i].ID)
			}
			r.Compute(float64(len(contigs[i].Seq)))
		}
		for _, batch := range pgas.GatherV(r, localHits, 8) {
			for _, id := range batch {
				hmmHit[id] = true
			}
		}
	}
	res.RRNAHits = len(hmmHit)

	suspended := make(map[int]bool)
	for _, c := range contigs {
		if len(c.Seq) > opts.InsertSize || hmmHit[c.ID] {
			continue
		}
		if countEndLinks(adj[c.ID], 'L') > 1 && countEndLinks(adj[c.ID], 'R') > 1 {
			suspended[c.ID] = true
		}
	}
	res.RepeatsSuspended = len(suspended)

	// Step 4: connected components over the accepted links (excluding
	// suspended repeats), computed with the parallel Shiloach-Vishkin-style
	// algorithm, then distributed round-robin over ranks for traversal.
	var edges []cc.Edge
	for _, batch := range allAccepted {
		for _, al := range batch {
			if suspended[al.Key.C1] || suspended[al.Key.C2] {
				continue
			}
			i1, ok1 := byID[al.Key.C1]
			i2, ok2 := byID[al.Key.C2]
			if ok1 && ok2 {
				edges = append(edges, cc.Edge{U: i1, V: i2})
			}
		}
	}
	lo, hi := r.BlockRange(len(edges))
	labels := cc.Parallel(r, len(contigs), edges[lo:hi], nil)
	groups := cc.GroupByComponent(labels)
	res.Components = len(groups)

	reps := make([]int, 0, len(groups))
	for rep := range groups {
		reps = append(reps, rep)
	}
	sort.Ints(reps)

	// Step 5: traverse each component. Components are assigned to ranks
	// round-robin; each rank traverses its components independently.
	tr := &traverser{
		contigs:   contigs,
		byID:      byID,
		adj:       adj,
		suspended: suspended,
		hmmHit:    hmmHit,
		opts:      opts,
	}
	var localChains [][]placedContig
	for gi, rep := range reps {
		if opts.UseComponents {
			if gi%r.NRanks() != r.ID() {
				continue
			}
		} else if r.ID() != 0 {
			continue
		}
		members := groups[rep]
		localChains = append(localChains, tr.traverseComponent(r, members)...)
	}
	r.Barrier()

	// Step 6: gap closing, load-balanced round-robin over all gaps; then the
	// scaffolds are materialized and gathered.
	localScaffolds, gapsTotal, gapsClosed := buildScaffolds(r, contigs, byID, localChains, opts)
	allScaffolds := pgas.GatherVFunc(r, localScaffolds, func(s Scaffold) int {
		return 32 + len(s.Seq) + 8*len(s.ContigIDs)
	})
	var merged []Scaffold
	for _, batch := range allScaffolds {
		merged = append(merged, batch...)
	}
	sort.Slice(merged, func(i, j int) bool {
		if len(merged[i].Seq) != len(merged[j].Seq) {
			return len(merged[i].Seq) > len(merged[j].Seq)
		}
		return string(merged[i].Seq) < string(merged[j].Seq)
	})
	for i := range merged {
		merged[i].ID = i
	}
	res.Scaffolds = merged
	res.GapsTotal = pgas.AllReduce(r, gapsTotal, pgas.ReduceSum)
	res.GapsClosed = pgas.AllReduce(r, gapsClosed, pgas.ReduceSum)
	r.Barrier()
	return res
}

func countEndLinks(links []linkInfo, end byte) int {
	n := 0
	for _, l := range links {
		if l.MyEnd == end {
			n++
		}
	}
	return n
}

// placedContig is one oriented contig in a scaffold chain, with the gap to
// the previous contig in the chain.
type placedContig struct {
	ContigID  int
	Flipped   bool
	GapBefore int
}

// traverser holds the shared state of the contig-graph traversal heuristics.
type traverser struct {
	contigs   []dbg.Contig
	byID      map[int]int
	adj       map[int][]linkInfo
	suspended map[int]bool
	hmmHit    map[int]bool
	opts      Options
}

// traverseComponent traverses one connected component (given by contig
// indices) and returns the chains formed.
func (t *traverser) traverseComponent(r *pgas.Rank, members []int) [][]placedContig {
	// Seeds in order of decreasing length.
	seeds := append([]int(nil), members...)
	sort.Slice(seeds, func(i, j int) bool {
		a, b := t.contigs[seeds[i]], t.contigs[seeds[j]]
		if len(a.Seq) != len(b.Seq) {
			return len(a.Seq) > len(b.Seq)
		}
		return a.ID < b.ID
	})
	used := make(map[int]bool)
	var chains [][]placedContig
	for _, idx := range seeds {
		c := t.contigs[idx]
		if used[c.ID] || t.suspended[c.ID] {
			continue
		}
		used[c.ID] = true
		chain := []placedContig{{ContigID: c.ID, Flipped: false}}
		// Extend to the right, then to the left (by extending the reversed
		// chain to the right and flipping it back).
		chain = t.extend(r, chain, used)
		chain = reverseChain(chain)
		chain = t.extend(r, chain, used)
		chain = reverseChain(chain)
		chains = append(chains, chain)
		r.Compute(float64(len(chain)))
	}
	return chains
}

// reverseChain flips a chain end-to-end (orientation of every contig flips
// and gaps shift to the following contig).
func reverseChain(chain []placedContig) []placedContig {
	n := len(chain)
	out := make([]placedContig, n)
	for i, pc := range chain {
		out[n-1-i] = placedContig{ContigID: pc.ContigID, Flipped: !pc.Flipped}
	}
	// Recompute GapBefore: the gap that used to precede chain[i] now follows
	// the flipped copy; shift gaps accordingly.
	for i := 1; i < n; i++ {
		out[i].GapBefore = chain[n-i].GapBefore
	}
	return out
}

// extend grows the chain from its last contig's outgoing end while an
// unambiguous, unused continuation exists.
func (t *traverser) extend(r *pgas.Rank, chain []placedContig, used map[int]bool) []placedContig {
	for {
		last := chain[len(chain)-1]
		outEnd := byte('R')
		if last.Flipped {
			outEnd = 'L'
		}
		next, ok := t.pickLink(last.ContigID, outEnd, used)
		if !ok {
			return chain
		}
		used[next.Other] = true
		// Entering through the partner's end: entering via 'L' keeps it
		// forward, entering via 'R' flips it.
		flipped := next.OtherEnd == 'R'
		chain = append(chain, placedContig{ContigID: next.Other, Flipped: flipped, GapBefore: next.Gap})
		r.Compute(1)
	}
}

// pickLink selects the link to follow from a contig end, applying the
// paper's heuristics: skip suspended repeats and used contigs, prefer links
// to long contigs and extendable ends, break ties toward the closest
// (smallest-gap) partner. HMM-hit contigs remain extendable even with
// competing links.
func (t *traverser) pickLink(contigID int, end byte, used map[int]bool) (linkInfo, bool) {
	var candidates []linkInfo
	for _, l := range t.adj[contigID] {
		if l.MyEnd != end {
			continue
		}
		if used[l.Other] || t.suspended[l.Other] {
			continue
		}
		candidates = append(candidates, l)
	}
	if len(candidates) == 0 {
		return linkInfo{}, false
	}
	if len(candidates) > 1 && !t.hmmHit[contigID] {
		// Competing links: the end is not extendable unless the competing
		// targets include a clearly better (long) contig.
		long := candidates[:0]
		for _, l := range candidates {
			if idx, ok := t.byID[l.Other]; ok && len(t.contigs[idx].Seq) >= t.opts.LongContigThreshold {
				long = append(long, l)
			}
		}
		if len(long) != 1 {
			return linkInfo{}, false
		}
		candidates = long
	}
	best := candidates[0]
	for _, l := range candidates[1:] {
		if l.Gap < best.Gap {
			best = l
		}
	}
	return best, true
}

// buildScaffolds materializes scaffold sequences from chains, closing gaps
// where the neighbouring contig ends overlap and filling the rest with Ns.
// Gaps are distributed round-robin over the ranks that own the chains.
func buildScaffolds(r *pgas.Rank, contigs []dbg.Contig, byID map[int]int, chains [][]placedContig, opts Options) ([]Scaffold, int, int) {
	var out []Scaffold
	gapsTotal, gapsClosed := 0, 0
	for _, chain := range chains {
		var sb []byte
		var ids []int
		gaps, closed := 0, 0
		for i, pc := range chain {
			idx := byID[pc.ContigID]
			s := contigs[idx].Seq
			if pc.Flipped {
				s = seq.ReverseComplement(s)
			}
			ids = append(ids, pc.ContigID)
			if i == 0 {
				sb = append(sb, s...)
				continue
			}
			gaps++
			if opts.CloseGaps {
				if joined, ok := spliceOverlap(sb, s, opts.MinGapOverlap, opts.InsertSize); ok {
					sb = joined
					closed++
					r.Compute(float64(opts.InsertSize))
					continue
				}
			}
			gapLen := pc.GapBefore
			if gapLen < 1 {
				gapLen = 1
			}
			for g := 0; g < gapLen; g++ {
				sb = append(sb, 'N')
			}
			sb = append(sb, s...)
			r.Compute(float64(len(s)))
		}
		gapsTotal += gaps
		gapsClosed += closed
		out = append(out, Scaffold{Seq: sb, ContigIDs: ids, Gaps: gaps - closed, GapsClosed: closed})
	}
	return out, gapsTotal, gapsClosed
}

// spliceOverlap joins two sequences if the suffix of a exactly matches a
// prefix of b with length >= minOverlap (searching up to maxOverlap).
func spliceOverlap(a, b []byte, minOverlap, maxOverlap int) ([]byte, bool) {
	if maxOverlap > len(a) {
		maxOverlap = len(a)
	}
	if maxOverlap > len(b) {
		maxOverlap = len(b)
	}
	for ov := maxOverlap; ov >= minOverlap; ov-- {
		if string(a[len(a)-ov:]) == string(b[:ov]) {
			return append(a, b[ov:]...), true
		}
	}
	return nil, false
}

// Stats summarizes a scaffold set.
type Stats struct {
	Count      int
	TotalBases int
	MaxLen     int
	N50        int
}

// ComputeStats returns scaffold summary statistics.
func ComputeStats(scaffolds []Scaffold) Stats {
	var s Stats
	s.Count = len(scaffolds)
	lengths := make([]int, 0, len(scaffolds))
	for _, sc := range scaffolds {
		s.TotalBases += sc.Len()
		if sc.Len() > s.MaxLen {
			s.MaxLen = sc.Len()
		}
		lengths = append(lengths, sc.Len())
	}
	sort.Sort(sort.Reverse(sort.IntSlice(lengths)))
	half := s.TotalBases / 2
	acc := 0
	for _, l := range lengths {
		acc += l
		if acc >= half {
			s.N50 = l
			break
		}
	}
	return s
}

// String renders the stats in one line.
func (s Stats) String() string {
	return fmt.Sprintf("scaffolds=%d bases=%d max=%d N50=%d", s.Count, s.TotalBases, s.MaxLen, s.N50)
}
