package scaffold

import (
	"strings"
	"testing"

	"mhmgo/internal/aligner"
	"mhmgo/internal/dbg"
	"mhmgo/internal/dist"
	"mhmgo/internal/hmm"
	"mhmgo/internal/pgas"
	"mhmgo/internal/seq"
	"mhmgo/internal/sim"
)

// makePairs produces innie paired-end reads tiling a genome.
func makePairs(g string, readLen, insert, step int) []seq.Read {
	var reads []seq.Read
	for start := 0; start+insert <= len(g); start += step {
		fwd := g[start : start+readLen]
		rev := seq.ReverseComplementString(g[start+insert-readLen : start+insert])
		reads = append(reads,
			seq.Read{ID: "p/1", Seq: []byte(fwd)},
			seq.Read{ID: "p/2", Seq: []byte(rev)},
		)
	}
	return reads
}

func runScaffold(t *testing.T, contigs []dbg.Contig, reads []seq.Read, ranks int, opts Options) Result {
	t.Helper()
	m := pgas.NewMachine(pgas.Config{Ranks: ranks})
	aopts := aligner.DefaultOptions(15)
	var res Result
	m.Run(func(r *pgas.Rank) {
		clo, chi := r.BlockRange(len(contigs))
		cs := dbg.DistributeContigs(r, contigs[clo:chi], dist.Distributed)
		idx := aligner.BuildIndex(r, cs, aopts)
		lo, hi := r.PairBlockRange(len(reads))
		aligns, _ := aligner.AlignReads(r, idx, reads[lo:hi], lo, aopts)
		got := Run(r, cs, reads[lo:hi], lo, aligns, opts)
		if r.ID() == 0 {
			res = got
		}
	})
	return res
}

// testGenome is long enough for several contigs and an insert of 60.
func testGenome() string {
	comm := sim.GenerateCommunity(sim.CommunityConfig{NumGenomes: 1, MeanGenomeLen: 900, RRNALen: 100, Seed: 77, StrainFraction: 0})
	return string(comm.Genomes[0].Seq)
}

func TestSpanLinksJoinNeighboringContigs(t *testing.T) {
	g := testGenome()
	// Two contigs covering the genome with a 20-base gap between them.
	c0 := dbg.Contig{ID: 0, Seq: []byte(g[0:400]), Depth: 20}
	c1 := dbg.Contig{ID: 1, Seq: []byte(g[420:820]), Depth: 20}
	reads := makePairs(g, 40, 100, 3)
	opts := DefaultOptions(15, 100)
	opts.CloseGaps = false
	res := runScaffold(t, []dbg.Contig{c0, c1}, reads, 3, opts)
	if res.SpanLinks == 0 {
		t.Fatalf("no span links found: %+v", res)
	}
	if len(res.Scaffolds) != 1 {
		t.Fatalf("got %d scaffolds, want 1 joined scaffold", len(res.Scaffolds))
	}
	sc := res.Scaffolds[0]
	if len(sc.ContigIDs) != 2 {
		t.Fatalf("scaffold contains %v contigs", sc.ContigIDs)
	}
	if !strings.Contains(string(sc.Seq), "N") {
		t.Error("unclosed gap should be filled with Ns")
	}
	if sc.Gaps != 1 {
		t.Errorf("Gaps = %d, want 1", sc.Gaps)
	}
	// The scaffold must be roughly the genome length.
	if sc.Len() < 780 || sc.Len() > 860 {
		t.Errorf("scaffold length %d, expected near 820", sc.Len())
	}
}

func TestGapClosingSplicesOverlappingContigs(t *testing.T) {
	g := testGenome()
	// Two contigs overlapping by 30 bases: gap closing should splice them.
	c0 := dbg.Contig{ID: 0, Seq: []byte(g[0:430]), Depth: 20}
	c1 := dbg.Contig{ID: 1, Seq: []byte(g[400:820]), Depth: 20}
	reads := makePairs(g, 40, 100, 3)
	opts := DefaultOptions(15, 100)
	res := runScaffold(t, []dbg.Contig{c0, c1}, reads, 2, opts)
	if len(res.Scaffolds) != 1 {
		t.Fatalf("got %d scaffolds, want 1", len(res.Scaffolds))
	}
	sc := res.Scaffolds[0]
	if res.GapsClosed != 1 || sc.GapsClosed != 1 {
		t.Errorf("gap was not closed: %+v", res)
	}
	got := string(sc.Seq)
	want := g[0:820]
	if got != want && got != seq.ReverseComplementString(want) {
		t.Errorf("spliced scaffold (len %d) does not reconstruct the genome segment (len %d)", len(got), len(want))
	}
}

func TestReverseOrientedContigIsFlipped(t *testing.T) {
	g := testGenome()
	c0 := dbg.Contig{ID: 0, Seq: []byte(g[0:400]), Depth: 20}
	// The second contig is stored reverse-complemented.
	c1 := dbg.Contig{ID: 1, Seq: seq.ReverseComplement([]byte(g[420:820])), Depth: 20}
	reads := makePairs(g, 40, 100, 3)
	opts := DefaultOptions(15, 100)
	opts.CloseGaps = false
	res := runScaffold(t, []dbg.Contig{c0, c1}, reads, 2, opts)
	if len(res.Scaffolds) != 1 || len(res.Scaffolds[0].ContigIDs) != 2 {
		t.Fatalf("reverse-oriented contig not scaffolded: %+v", summarize(res))
	}
	// The scaffold with Ns removed must match the genome with the gap cut out.
	noN := strings.ReplaceAll(string(res.Scaffolds[0].Seq), "N", "")
	want := g[0:400] + g[420:820]
	if noN != want && noN != seq.ReverseComplementString(want) {
		t.Error("flipped contig not correctly oriented in scaffold")
	}
}

func summarize(res Result) []string {
	var out []string
	for _, s := range res.Scaffolds {
		out = append(out, string(rune('0'+len(s.ContigIDs))))
	}
	return out
}

func TestWeakLinksRejected(t *testing.T) {
	g := testGenome()
	c0 := dbg.Contig{ID: 0, Seq: []byte(g[0:400]), Depth: 20}
	c1 := dbg.Contig{ID: 1, Seq: []byte(g[420:820]), Depth: 20}
	// Very sparse read sampling: too few pairs to support a link.
	reads := makePairs(g, 40, 100, 400)
	opts := DefaultOptions(15, 100)
	opts.MinLinkSupport = 10
	res := runScaffold(t, []dbg.Contig{c0, c1}, reads, 2, opts)
	if res.AcceptedLinks != 0 {
		t.Errorf("weak links were accepted: %+v", res)
	}
	if len(res.Scaffolds) != 2 {
		t.Errorf("contigs should remain separate scaffolds, got %d", len(res.Scaffolds))
	}
}

func TestRepeatSuspension(t *testing.T) {
	g1 := testGenome()
	comm2 := sim.GenerateCommunity(sim.CommunityConfig{NumGenomes: 1, MeanGenomeLen: 900, RRNALen: 100, Seed: 99, StrainFraction: 0})
	g2 := string(comm2.Genomes[0].Seq)
	// A short shared repeat sits between unique flanks in two genomes.
	repeat := g1[350:420]
	gen1 := g1[0:350] + repeat + g1[420:800]
	gen2 := g2[0:350] + repeat + g2[420:800]
	contigs := []dbg.Contig{
		{ID: 0, Seq: []byte(gen1[0:350]), Depth: 20},
		{ID: 1, Seq: []byte(repeat), Depth: 40},
		{ID: 2, Seq: []byte(gen1[420:800]), Depth: 20},
		{ID: 3, Seq: []byte(gen2[0:350]), Depth: 20},
		{ID: 4, Seq: []byte(gen2[420:800]), Depth: 20},
	}
	reads := append(makePairs(gen1, 40, 100, 3), makePairs(gen2, 40, 100, 3)...)
	opts := DefaultOptions(15, 100)
	opts.CloseGaps = false
	res := runScaffold(t, contigs, reads, 4, opts)
	if res.RepeatsSuspended < 1 {
		t.Errorf("repeat contig not suspended: %+v", res)
	}
	// The repeat must not glue the two genomes into one scaffold.
	for _, sc := range res.Scaffolds {
		has1, has2 := false, false
		for _, id := range sc.ContigIDs {
			if id == 0 || id == 2 {
				has1 = true
			}
			if id == 3 || id == 4 {
				has2 = true
			}
		}
		if has1 && has2 {
			t.Errorf("scaffold mixes the two genomes: %v", sc.ContigIDs)
		}
	}
}

func TestRRNAHitsCounted(t *testing.T) {
	comm := sim.GenerateCommunity(sim.CommunityConfig{NumGenomes: 2, MeanGenomeLen: 900, RRNALen: 150, RRNADivergence: 0.0, Seed: 13, StrainFraction: 0})
	profile := hmm.BuildProfile([][]byte{comm.RRNAMarker}, 0.9)
	g := string(comm.Genomes[0].Seq)
	contigs := []dbg.Contig{
		{ID: 0, Seq: comm.Genomes[0].Seq, Depth: 20},
		{ID: 1, Seq: []byte(g[:200]), Depth: 20},
	}
	reads := makePairs(g, 40, 100, 5)
	opts := DefaultOptions(15, 100)
	opts.RRNAProfile = profile
	res := runScaffold(t, contigs, reads, 2, opts)
	if res.RRNAHits < 1 {
		t.Errorf("rRNA-bearing contig not counted as HMM hit: %+v", res)
	}
}

func TestScaffoldRankIndependence(t *testing.T) {
	g := testGenome()
	contigs := []dbg.Contig{
		{ID: 0, Seq: []byte(g[0:300]), Depth: 20},
		{ID: 1, Seq: []byte(g[320:600]), Depth: 20},
		{ID: 2, Seq: []byte(g[620:850]), Depth: 20},
	}
	reads := makePairs(g, 40, 100, 3)
	opts := DefaultOptions(15, 100)
	base := runScaffold(t, contigs, reads, 1, opts)
	for _, ranks := range []int{2, 4, 6} {
		got := runScaffold(t, contigs, reads, ranks, opts)
		if len(got.Scaffolds) != len(base.Scaffolds) {
			t.Fatalf("ranks=%d: %d scaffolds vs %d", ranks, len(got.Scaffolds), len(base.Scaffolds))
		}
		for i := range got.Scaffolds {
			if string(got.Scaffolds[i].Seq) != string(base.Scaffolds[i].Seq) {
				t.Errorf("ranks=%d: scaffold %d differs", ranks, i)
			}
		}
	}
}

func TestComputeStatsAndSplice(t *testing.T) {
	s := ComputeStats([]Scaffold{{Seq: make([]byte, 200)}, {Seq: make([]byte, 100)}})
	if s.Count != 2 || s.TotalBases != 300 || s.N50 != 200 || s.MaxLen != 200 {
		t.Errorf("stats = %+v", s)
	}
	if !strings.Contains(s.String(), "N50=200") {
		t.Errorf("String() = %q", s.String())
	}
	if _, ok := spliceOverlap([]byte("AAACGT"), []byte("ACGTTT"), 3, 10); !ok {
		t.Error("overlap of 4 should splice")
	}
	if _, ok := spliceOverlap([]byte("AAACGT"), []byte("GGGTTT"), 3, 10); ok {
		t.Error("non-overlapping sequences should not splice")
	}
	joined, _ := spliceOverlap([]byte("AAACGT"), []byte("ACGTTT"), 3, 10)
	if string(joined) != "AAACGTTT" {
		t.Errorf("splice = %q", joined)
	}
}
