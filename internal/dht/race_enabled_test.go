//go:build race

package dht

// raceEnabled reports whether this test binary was built with -race, whose
// instrumentation overhead distorts lock-contention timing measurements.
const raceEnabled = true
