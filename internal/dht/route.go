package dht

import "mhmgo/internal/pgas"

// Route implements the "Local Reads & Writes" pattern: every rank provides a
// slice of items; each item is shipped to the rank chosen by ownerOf via a
// single aggregated all-to-all exchange, and the function returns the items
// this rank received (including its own). bytesPerItem is used for cost
// accounting.
//
// After routing, the owner typically applies the items with UpdateLocal /
// SetLocal, which go straight to the owning partition's stripes without any
// remote charging.
func Route[T any](r *pgas.Rank, items []T, ownerOf func(T) int, bytesPerItem int) []T {
	return RouteFunc(r, items, ownerOf, func(T) int { return bytesPerItem })
}

// RouteFunc is Route for items whose wire sizes vary (reads, contigs):
// sizeOf reports the wire bytes of one item.
func RouteFunc[T any](r *pgas.Rank, items []T, ownerOf func(T) int, sizeOf func(T) int) []T {
	r.Compute(float64(len(items)))
	return pgas.ExchangeFunc(r, items,
		func(_ int, item T) int { return ownerOf(item) }, sizeOf)
}
