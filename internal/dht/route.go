package dht

import "mhmgo/internal/pgas"

// Route implements the "Local Reads & Writes" pattern: every rank provides a
// slice of items; each item is shipped to the rank chosen by ownerOf via a
// single aggregated all-to-all exchange, and the function returns the items
// this rank received (including its own). bytesPerItem is used for cost
// accounting.
//
// After routing, the owner typically applies the items with UpdateLocal /
// SetLocal, which go straight to the owning partition's stripes without any
// remote charging.
func Route[T any](r *pgas.Rank, items []T, ownerOf func(T) int, bytesPerItem int) []T {
	return RouteFunc(r, items, ownerOf, func(T) int { return bytesPerItem })
}

// RouteFunc is Route for items whose wire sizes vary (reads, contigs):
// sizeOf reports the wire bytes of one item.
func RouteFunc[T any](r *pgas.Rank, items []T, ownerOf func(T) int, sizeOf func(T) int) []T {
	p := r.NRanks()
	out := make([][]T, p)
	for _, item := range items {
		dest := ownerOf(item) % p
		if dest < 0 {
			dest += p
		}
		out[dest] = append(out[dest], item)
	}
	r.Compute(float64(len(items)))
	incoming := pgas.AllToAllV(r, out, sizeOf)
	var merged []T
	for _, batch := range incoming {
		merged = append(merged, batch...)
	}
	return merged
}
