// Package dht implements the distributed hash tables that are the backbone
// of every parallel algorithm in the assembler, mirroring Section II-A of
// the MetaHipMer paper.
//
// A Map partitions its entries over the ranks of a virtual PGAS machine by
// hashing each key to an owner rank. Within a rank's partition, entries are
// further divided into a power-of-two number of independently locked
// *stripes*, so that concurrent accesses to the same owner rank only contend
// when they hit the same stripe. Owner selection uses the low bits of the key
// hash (modulo the rank count) and stripe selection uses the high bits, so
// the two are independent for any well-mixed hash.
//
// The package provides dedicated APIs for the four usage phases identified in
// the paper:
//
//   - Use case 1, "Global Update-Only": Updater aggregates fine-grained
//     commutative updates into per-destination batches, dramatically reducing
//     the number of messages (and the simulated communication cost). Each
//     flushed batch is grouped by stripe so every stripe lock is taken at
//     most once per flush.
//   - Use case 2, "Global Reads & Writes": Get/Put/Mutate perform one-sided
//     reads, writes and atomic read-modify-write operations on remote entries.
//   - Use case 3, "Global Read-Only": CachedReader adds a per-rank software
//     cache in front of Get for phases where the table is no longer mutated.
//     Freeze switches the whole map into a lock-free read-only phase backed
//     by an immutable per-partition snapshot.
//   - Use case 4, "Local Reads & Writes": Route ships items to their owner
//     rank with a single all-to-all exchange so the owner can process them in
//     a purely local hash table.
package dht

import (
	"math/bits"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"mhmgo/internal/pgas"
)

// Map is a distributed hash table partitioned over the ranks of a machine.
// The zero value is not usable; construct with NewMap (from the coordinator,
// before Machine.Run) or NewMapCollective (from inside an SPMD region).
type Map[K comparable, V any] struct {
	machine    *pgas.Machine
	hash       func(K) uint64
	entryBytes int

	// stripeShift maps the high bits of a key hash to a stripe index:
	// stripe = hash >> stripeShift. With stripeCount a power of two this
	// selects the top log2(stripeCount) bits, which are independent of the
	// low bits used for owner-rank selection.
	stripeShift uint
	stripeCount int

	parts []partition[K, V]

	// frozen flips the whole map into the read-only phase: reads skip the
	// stripe locks and mutations panic. The stripe maps themselves are the
	// immutable snapshot — no data is copied.
	frozen atomic.Bool
}

// partition is one rank's share of the map: an array of independently locked
// stripes.
type partition[K comparable, V any] struct {
	stripes []stripe[K, V]
}

// stripe is one lock's worth of a partition. The padding keeps hot stripe
// locks on distinct cache lines so striping actually removes contention
// instead of moving it into false sharing.
type stripe[K comparable, V any] struct {
	mu   sync.Mutex
	data map[K]V
	_    [48]byte
}

// options collects the constructor options of a Map.
type options struct {
	stripes int
}

// Option configures a Map at construction time.
type Option func(*options)

// WithStripes sets the number of lock stripes per rank partition. n is
// rounded up to a power of two; n <= 0 selects DefaultStripes. Stripe count 1
// reproduces the historical one-lock-per-rank layout (used by the contention
// ablation and benchmarks).
func WithStripes(n int) Option {
	return func(o *options) { o.stripes = n }
}

// DefaultStripes returns the default stripe count per partition:
// max(8, GOMAXPROCS) rounded up to a power of two, so that on any machine the
// goroutines of all ranks can simultaneously hold distinct stripe locks of a
// single hot partition.
func DefaultStripes() int {
	n := runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	return ceilPow2(n)
}

func ceilPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// NewMap creates a distributed map on the given machine. hash must be a
// deterministic, well-mixed hash of the key; entryBytes is the approximate
// wire size of one entry, used by the communication cost model.
func NewMap[K comparable, V any](m *pgas.Machine, hash func(K) uint64, entryBytes int, opts ...Option) *Map[K, V] {
	if entryBytes <= 0 {
		entryBytes = 16
	}
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	stripes := o.stripes
	if stripes <= 0 {
		stripes = DefaultStripes()
	}
	stripes = ceilPow2(stripes)
	dm := &Map[K, V]{
		machine:     m,
		hash:        hash,
		entryBytes:  entryBytes,
		stripeCount: stripes,
		stripeShift: uint(64 - bits.Len(uint(stripes-1))),
	}
	dm.parts = make([]partition[K, V], m.Ranks())
	for i := range dm.parts {
		dm.parts[i].stripes = make([]stripe[K, V], stripes)
		for s := range dm.parts[i].stripes {
			dm.parts[i].stripes[s].data = make(map[K]V)
		}
	}
	return dm
}

// NewMapCollective creates a distributed map from inside an SPMD region:
// rank 0 allocates the map and every rank receives the same instance.
func NewMapCollective[K comparable, V any](r *pgas.Rank, hash func(K) uint64, entryBytes int, opts ...Option) *Map[K, V] {
	var dm *Map[K, V]
	if r.ID() == 0 {
		dm = NewMap[K, V](r.Machine(), hash, entryBytes, opts...)
	}
	return pgas.Broadcast(r, dm)
}

// Owner returns the rank that owns the given key.
func (m *Map[K, V]) Owner(key K) int {
	return int(m.hash(key) % uint64(m.machine.Ranks()))
}

// Stripes returns the number of lock stripes per rank partition.
func (m *Map[K, V]) Stripes() int { return m.stripeCount }

// EntryBytes returns the configured approximate entry size.
func (m *Map[K, V]) EntryBytes() int { return m.entryBytes }

// ownerAndStripe splits one hash evaluation into the owner rank (low bits)
// and the stripe within that rank's partition (high bits).
func (m *Map[K, V]) ownerAndStripe(key K) (owner int, stripe uint64) {
	h := m.hash(key)
	return int(h % uint64(m.machine.Ranks())), h >> m.stripeShift
}

func (m *Map[K, V]) stripeOf(key K) uint64 { return m.hash(key) >> m.stripeShift }

// readPart reads key from a partition: lock-free while the map is frozen
// (concurrent Go map reads are safe and mutators panic), under the stripe
// lock otherwise.
func (m *Map[K, V]) readPart(p *partition[K, V], si uint64, key K) (V, bool) {
	s := &p.stripes[si]
	if m.frozen.Load() {
		v, ok := s.data[key]
		return v, ok
	}
	s.mu.Lock()
	v, ok := s.data[key]
	s.mu.Unlock()
	return v, ok
}

// Len returns the total number of entries across all partitions. It must not
// be called concurrently with updates.
func (m *Map[K, V]) Len() int {
	total := 0
	for i := range m.parts {
		total += m.partLen(&m.parts[i])
	}
	return total
}

// LocalLen returns the number of entries owned by the given rank.
func (m *Map[K, V]) LocalLen(rank int) int { return m.partLen(&m.parts[rank]) }

func (m *Map[K, V]) partLen(p *partition[K, V]) int {
	frozen := m.frozen.Load()
	total := 0
	for s := range p.stripes {
		if !frozen {
			p.stripes[s].mu.Lock()
		}
		total += len(p.stripes[s].data)
		if !frozen {
			p.stripes[s].mu.Unlock()
		}
	}
	return total
}

// Lookup reads the entry for key from outside an SPMD region (no cost is
// charged). It is intended for coordinators, evaluation code and tests that
// inspect the table after a parallel phase has completed.
func (m *Map[K, V]) Lookup(key K) (V, bool) {
	owner, si := m.ownerAndStripe(key)
	return m.readPart(&m.parts[owner], si, key)
}

// Get performs a one-sided read of the entry for key, charging the
// appropriate communication cost to the calling rank.
func (m *Map[K, V]) Get(r *pgas.Rank, key K) (V, bool) {
	owner, si := m.ownerAndStripe(key)
	if owner == r.ID() {
		r.Compute(1)
	} else {
		r.ChargeGet(owner, m.entryBytes, 1)
	}
	return m.readPart(&m.parts[owner], si, key)
}

// Put performs a one-sided write of the entry for key.
func (m *Map[K, V]) Put(r *pgas.Rank, key K, val V) {
	owner, si := m.ownerAndStripe(key)
	if owner == r.ID() {
		r.Compute(1)
	} else {
		r.ChargeSend(owner, m.entryBytes, 1)
	}
	s := m.mutableStripe(&m.parts[owner], si)
	s.mu.Lock()
	s.data[key] = val
	s.mu.Unlock()
}

// Delete removes the entry for key, if present.
func (m *Map[K, V]) Delete(r *pgas.Rank, key K) {
	owner, si := m.ownerAndStripe(key)
	if owner == r.ID() {
		r.Compute(1)
	} else {
		r.ChargeSend(owner, 8, 1)
	}
	s := m.mutableStripe(&m.parts[owner], si)
	s.mu.Lock()
	delete(s.data, key)
	s.mu.Unlock()
}

// Mutate atomically applies f to the entry for key under the owner's stripe
// lock, modelling a remote atomic (e.g. compare-and-swap on a "used" flag). f
// receives the current value (and whether it exists) and returns the new
// value, whether to store it, and an arbitrary result passed back to the
// caller. The cost of a remote atomic is charged to the calling rank.
func Mutate[K comparable, V any, R any](m *Map[K, V], r *pgas.Rank, key K, f func(v V, found bool) (V, bool, R)) R {
	owner, si := m.ownerAndStripe(key)
	if owner == r.ID() {
		r.Compute(2)
	} else {
		r.ChargeGet(owner, m.entryBytes, 1)
	}
	s := m.mutableStripe(&m.parts[owner], si)
	s.mu.Lock()
	cur, ok := s.data[key]
	nv, store, res := f(cur, ok)
	if store {
		s.data[key] = nv
	}
	s.mu.Unlock()
	return res
}

// ForEachLocal iterates over the entries owned by the calling rank. The
// callback must not call back into the same Map. Iteration order is
// unspecified. One unit of compute is charged per entry.
func (m *Map[K, V]) ForEachLocal(r *pgas.Rank, f func(K, V)) {
	p := &m.parts[r.ID()]
	if m.frozen.Load() {
		n := 0
		for si := range p.stripes {
			for k, v := range p.stripes[si].data {
				n++
				f(k, v)
			}
		}
		r.Compute(float64(n))
		return
	}
	var keys []K
	var vals []V
	for si := range p.stripes {
		s := &p.stripes[si]
		s.mu.Lock()
		keys = slices.Grow(keys, len(s.data))
		vals = slices.Grow(vals, len(s.data))
		for k, v := range s.data {
			keys = append(keys, k)
			vals = append(vals, v)
		}
		s.mu.Unlock()
	}
	r.Compute(float64(len(keys)))
	for i := range keys {
		f(keys[i], vals[i])
	}
}

// UpdateLocal applies f to the entry for key, which must be owned by the
// calling rank (use case 4: local reads & writes after routing).
func (m *Map[K, V]) UpdateLocal(r *pgas.Rank, key K, f func(v V, found bool) V) {
	s := m.mutableStripe(&m.parts[r.ID()], m.stripeOf(key))
	s.mu.Lock()
	cur, ok := s.data[key]
	s.data[key] = f(cur, ok)
	s.mu.Unlock()
	r.Compute(1)
}

// SetLocal stores a value into the calling rank's partition directly (the key
// must hash to this rank; this is not checked to keep the hot path cheap).
func (m *Map[K, V]) SetLocal(r *pgas.Rank, key K, val V) {
	s := m.mutableStripe(&m.parts[r.ID()], m.stripeOf(key))
	s.mu.Lock()
	s.data[key] = val
	s.mu.Unlock()
	r.Compute(1)
}

// RangeLocal iterates over the entries owned by the given rank without
// charging the cost model — the per-partition counterpart of Lookup, for
// coordinators and the checkpoint writer, which must observe the table
// without perturbing the simulated clocks. Iteration order is unspecified;
// callers needing determinism must collect and sort. The callback must not
// call back into the same Map. Safe to call concurrently for distinct ranks;
// must not race with mutations of the same partition.
func (m *Map[K, V]) RangeLocal(rank int, f func(K, V)) {
	frozen := m.frozen.Load()
	p := &m.parts[rank]
	for si := range p.stripes {
		s := &p.stripes[si]
		if !frozen {
			s.mu.Lock()
		}
		for k, v := range s.data {
			f(k, v)
		}
		if !frozen {
			s.mu.Unlock()
		}
	}
}

// Restore stores an entry directly into the given rank's partition without
// charging the cost model. It is the checkpoint-restore path: the simulated
// cost of building the table was paid by the original run and is carried in
// the restored rank clocks, so re-materializing the entries must be free.
// The key must hash to rank (not checked, mirroring SetLocal).
func (m *Map[K, V]) Restore(rank int, key K, val V) {
	s := m.mutableStripe(&m.parts[rank], m.stripeOf(key))
	s.mu.Lock()
	s.data[key] = val
	s.mu.Unlock()
}

// Snapshot returns a copy of all entries in the map. It is intended for the
// end of a parallel phase (after a barrier) and for tests.
func (m *Map[K, V]) Snapshot() map[K]V {
	frozen := m.frozen.Load()
	out := make(map[K]V, m.Len())
	for i := range m.parts {
		p := &m.parts[i]
		for si := range p.stripes {
			s := &p.stripes[si]
			if !frozen {
				s.mu.Lock()
			}
			for k, v := range s.data {
				out[k] = v
			}
			if !frozen {
				s.mu.Unlock()
			}
		}
	}
	return out
}

// mutableStripe returns the stripe for writing, enforcing the read-only
// phase discipline: mutating a frozen map is a bug in the calling phase.
func (m *Map[K, V]) mutableStripe(p *partition[K, V], si uint64) *stripe[K, V] {
	if m.frozen.Load() {
		panic("dht: mutation of a frozen map (call Thaw before the next write phase)")
	}
	return &p.stripes[si]
}

// Freeze atomically switches the map into the lock-free read-only phase (use
// case 3, "Global Read-Only"): all subsequent reads (Get, Lookup,
// CachedReader.Get, ForEachLocal, Snapshot) skip the stripe locks, and
// mutations panic until Thaw is called. The stripe maps themselves serve as
// the immutable snapshot — nothing is copied, so freezing the pipeline's
// largest tables costs neither time nor memory.
//
// Freeze must not race with mutations: call it after the barrier that closes
// the last write phase. It is idempotent and safe to call from every rank.
func (m *Map[K, V]) Freeze() { m.frozen.Store(true) }

// Thaw leaves the read-only phase, making the map mutable again. Like Freeze
// it must be called between phases (after a barrier), not concurrently with
// reads that still expect the frozen snapshot.
func (m *Map[K, V]) Thaw() { m.frozen.Store(false) }

// Frozen reports whether the map is in the read-only phase.
func (m *Map[K, V]) Frozen() bool { return m.frozen.Load() }
