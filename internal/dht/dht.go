// Package dht implements the distributed hash tables that are the backbone
// of every parallel algorithm in the assembler, mirroring Section II-A of
// the MetaHipMer paper.
//
// A Map partitions its entries over the ranks of a virtual PGAS machine by
// hashing each key to an owner rank. The package provides dedicated APIs for
// the four usage phases identified in the paper:
//
//   - Use case 1, "Global Update-Only": Updater aggregates fine-grained
//     commutative updates into per-destination batches, dramatically reducing
//     the number of messages (and the simulated communication cost).
//   - Use case 2, "Global Reads & Writes": Get/Put/Mutate perform one-sided
//     reads, writes and atomic read-modify-write operations on remote entries.
//   - Use case 3, "Global Read-Only": CachedReader adds a per-rank software
//     cache in front of Get for phases where the table is no longer mutated.
//   - Use case 4, "Local Reads & Writes": Route ships items to their owner
//     rank with a single all-to-all exchange so the owner can process them in
//     a purely local hash table.
package dht

import (
	"sync"

	"mhmgo/internal/pgas"
)

// Map is a distributed hash table partitioned over the ranks of a machine.
// The zero value is not usable; construct with NewMap (from the coordinator,
// before Machine.Run) or NewMapCollective (from inside an SPMD region).
type Map[K comparable, V any] struct {
	machine    *pgas.Machine
	hash       func(K) uint64
	entryBytes int
	shards     []shard[K, V]
}

type shard[K comparable, V any] struct {
	mu   sync.Mutex
	data map[K]V
}

// NewMap creates a distributed map on the given machine. hash must be a
// deterministic, well-mixed hash of the key; entryBytes is the approximate
// wire size of one entry, used by the communication cost model.
func NewMap[K comparable, V any](m *pgas.Machine, hash func(K) uint64, entryBytes int) *Map[K, V] {
	if entryBytes <= 0 {
		entryBytes = 16
	}
	dm := &Map[K, V]{machine: m, hash: hash, entryBytes: entryBytes}
	dm.shards = make([]shard[K, V], m.Ranks())
	for i := range dm.shards {
		dm.shards[i].data = make(map[K]V)
	}
	return dm
}

// NewMapCollective creates a distributed map from inside an SPMD region:
// rank 0 allocates the map and every rank receives the same instance.
func NewMapCollective[K comparable, V any](r *pgas.Rank, hash func(K) uint64, entryBytes int) *Map[K, V] {
	var dm *Map[K, V]
	if r.ID() == 0 {
		dm = NewMap[K, V](r.Machine(), hash, entryBytes)
	}
	return pgas.Broadcast(r, dm)
}

// Owner returns the rank that owns the given key.
func (m *Map[K, V]) Owner(key K) int {
	return int(m.hash(key) % uint64(m.machine.Ranks()))
}

// EntryBytes returns the configured approximate entry size.
func (m *Map[K, V]) EntryBytes() int { return m.entryBytes }

// Len returns the total number of entries across all shards. It must not be
// called concurrently with updates.
func (m *Map[K, V]) Len() int {
	total := 0
	for i := range m.shards {
		m.shards[i].mu.Lock()
		total += len(m.shards[i].data)
		m.shards[i].mu.Unlock()
	}
	return total
}

// LocalLen returns the number of entries owned by the given rank.
func (m *Map[K, V]) LocalLen(rank int) int {
	s := &m.shards[rank]
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}

// Lookup reads the entry for key from outside an SPMD region (no cost is
// charged). It is intended for coordinators, evaluation code and tests that
// inspect the table after a parallel phase has completed.
func (m *Map[K, V]) Lookup(key K) (V, bool) {
	s := &m.shards[m.Owner(key)]
	s.mu.Lock()
	v, ok := s.data[key]
	s.mu.Unlock()
	return v, ok
}

// Get performs a one-sided read of the entry for key, charging the
// appropriate communication cost to the calling rank.
func (m *Map[K, V]) Get(r *pgas.Rank, key K) (V, bool) {
	owner := m.Owner(key)
	if owner == r.ID() {
		r.Compute(1)
	} else {
		r.ChargeGet(owner, m.entryBytes, 1)
	}
	s := &m.shards[owner]
	s.mu.Lock()
	v, ok := s.data[key]
	s.mu.Unlock()
	return v, ok
}

// Put performs a one-sided write of the entry for key.
func (m *Map[K, V]) Put(r *pgas.Rank, key K, val V) {
	owner := m.Owner(key)
	if owner == r.ID() {
		r.Compute(1)
	} else {
		r.ChargeSend(owner, m.entryBytes, 1)
	}
	s := &m.shards[owner]
	s.mu.Lock()
	s.data[key] = val
	s.mu.Unlock()
}

// Delete removes the entry for key, if present.
func (m *Map[K, V]) Delete(r *pgas.Rank, key K) {
	owner := m.Owner(key)
	if owner == r.ID() {
		r.Compute(1)
	} else {
		r.ChargeSend(owner, 8, 1)
	}
	s := &m.shards[owner]
	s.mu.Lock()
	delete(s.data, key)
	s.mu.Unlock()
}

// Mutate atomically applies f to the entry for key under the owner's lock,
// modelling a remote atomic (e.g. compare-and-swap on a "used" flag). f
// receives the current value (and whether it exists) and returns the new
// value, whether to store it, and an arbitrary result passed back to the
// caller. The cost of a remote atomic is charged to the calling rank.
func Mutate[K comparable, V any, R any](m *Map[K, V], r *pgas.Rank, key K, f func(v V, found bool) (V, bool, R)) R {
	owner := m.Owner(key)
	if owner == r.ID() {
		r.Compute(2)
	} else {
		r.ChargeGet(owner, m.entryBytes, 1)
	}
	s := &m.shards[owner]
	s.mu.Lock()
	cur, ok := s.data[key]
	nv, store, res := f(cur, ok)
	if store {
		s.data[key] = nv
	}
	s.mu.Unlock()
	return res
}

// ForEachLocal iterates over the entries owned by the calling rank. The
// callback must not call back into the same Map. Iteration order is
// unspecified. One unit of compute is charged per entry.
func (m *Map[K, V]) ForEachLocal(r *pgas.Rank, f func(K, V)) {
	s := &m.shards[r.ID()]
	s.mu.Lock()
	keys := make([]K, 0, len(s.data))
	vals := make([]V, 0, len(s.data))
	for k, v := range s.data {
		keys = append(keys, k)
		vals = append(vals, v)
	}
	s.mu.Unlock()
	r.Compute(float64(len(keys)))
	for i := range keys {
		f(keys[i], vals[i])
	}
}

// UpdateLocal applies f to the entry for key, which must be owned by the
// calling rank (use case 4: local reads & writes after routing).
func (m *Map[K, V]) UpdateLocal(r *pgas.Rank, key K, f func(v V, found bool) V) {
	s := &m.shards[r.ID()]
	s.mu.Lock()
	cur, ok := s.data[key]
	s.data[key] = f(cur, ok)
	s.mu.Unlock()
	r.Compute(1)
}

// SetLocal stores a value into the calling rank's shard directly (the key
// must hash to this rank; this is not checked to keep the hot path cheap).
func (m *Map[K, V]) SetLocal(r *pgas.Rank, key K, val V) {
	s := &m.shards[r.ID()]
	s.mu.Lock()
	s.data[key] = val
	s.mu.Unlock()
	r.Compute(1)
}

// Snapshot returns a copy of all entries in the map. It is intended for the
// end of a parallel phase (after a barrier) and for tests.
func (m *Map[K, V]) Snapshot() map[K]V {
	out := make(map[K]V, m.Len())
	for i := range m.shards {
		m.shards[i].mu.Lock()
		for k, v := range m.shards[i].data {
			out[k] = v
		}
		m.shards[i].mu.Unlock()
	}
	return out
}

// kvPair is the unit buffered by an Updater.
type kvPair[K comparable, V any] struct {
	key K
	val V
}

// Updater implements the "Global Update-Only" phase: commutative updates are
// buffered per destination rank and applied in aggregated batches.
type Updater[K comparable, V any] struct {
	m         *Map[K, V]
	r         *pgas.Rank
	combine   func(existing V, update V, found bool) V
	batches   [][]kvPair[K, V]
	batchSize int
	aggregate bool
	pending   int
}

// NewUpdater creates an Updater for the calling rank. combine merges an
// incoming update into the existing entry (found reports whether an entry
// already existed). batchSize is the number of buffered updates per
// destination before an automatic flush; aggregate=false disables batching
// entirely (every update becomes its own message), which is used by the
// ablation experiments and the Ray Meta baseline.
func (m *Map[K, V]) NewUpdater(r *pgas.Rank, combine func(existing V, update V, found bool) V, batchSize int, aggregate bool) *Updater[K, V] {
	if batchSize <= 0 {
		batchSize = 512
	}
	return &Updater[K, V]{
		m:         m,
		r:         r,
		combine:   combine,
		batches:   make([][]kvPair[K, V], m.machine.Ranks()),
		batchSize: batchSize,
		aggregate: aggregate,
	}
}

// Update buffers one commutative update for key.
func (u *Updater[K, V]) Update(key K, val V) {
	dest := u.m.Owner(key)
	u.batches[dest] = append(u.batches[dest], kvPair[K, V]{key: key, val: val})
	u.pending++
	if !u.aggregate || len(u.batches[dest]) >= u.batchSize {
		u.flushDest(dest)
	}
}

// Flush applies all buffered updates. It must be called before the phase's
// closing barrier.
func (u *Updater[K, V]) Flush() {
	for dest := range u.batches {
		u.flushDest(dest)
	}
}

// Pending returns the number of buffered (unflushed) updates.
func (u *Updater[K, V]) Pending() int { return u.pending }

func (u *Updater[K, V]) flushDest(dest int) {
	batch := u.batches[dest]
	if len(batch) == 0 {
		return
	}
	u.batches[dest] = u.batches[dest][:0]
	u.pending -= len(batch)
	if dest == u.r.ID() {
		u.r.Compute(float64(len(batch)))
	} else if u.aggregate {
		u.r.ChargeSend(dest, len(batch)*u.m.entryBytes, 1)
	} else {
		u.r.ChargeSend(dest, len(batch)*u.m.entryBytes, len(batch))
	}
	s := &u.m.shards[dest]
	s.mu.Lock()
	for _, kv := range batch {
		cur, ok := s.data[kv.key]
		s.data[kv.key] = u.combine(cur, kv.val, ok)
	}
	s.mu.Unlock()
}

// CachedReader implements the "Global Read-Only" phase: a per-rank software
// cache in front of Get. The cache must only be used while the map is not
// being mutated (no consistency protocol is provided, as in the paper).
type CachedReader[K comparable, V any] struct {
	m          *Map[K, V]
	r          *pgas.Rank
	cache      map[K]V
	negCache   map[K]struct{}
	maxEntries int
	enabled    bool
	hits       uint64
	misses     uint64
}

// NewCachedReader creates a software cache of at most maxEntries entries in
// front of the map for the calling rank. enabled=false bypasses the cache
// (used for the read-localization ablation).
func (m *Map[K, V]) NewCachedReader(r *pgas.Rank, maxEntries int, enabled bool) *CachedReader[K, V] {
	if maxEntries <= 0 {
		maxEntries = 1 << 16
	}
	return &CachedReader[K, V]{
		m:          m,
		r:          r,
		cache:      make(map[K]V),
		negCache:   make(map[K]struct{}),
		maxEntries: maxEntries,
		enabled:    enabled,
	}
}

// Get reads the entry for key, serving it from the software cache when
// possible. Entries owned by the calling rank are always "hits".
func (c *CachedReader[K, V]) Get(key K) (V, bool) {
	owner := c.m.Owner(key)
	if owner == c.r.ID() {
		c.hits++
		c.r.ChargeCacheHit()
		s := &c.m.shards[owner]
		s.mu.Lock()
		v, ok := s.data[key]
		s.mu.Unlock()
		return v, ok
	}
	if c.enabled {
		if v, ok := c.cache[key]; ok {
			c.hits++
			c.r.ChargeCacheHit()
			return v, true
		}
		if _, ok := c.negCache[key]; ok {
			c.hits++
			c.r.ChargeCacheHit()
			var zero V
			return zero, false
		}
	}
	c.misses++
	c.r.ChargeCacheMiss(owner, c.m.entryBytes)
	s := &c.m.shards[owner]
	s.mu.Lock()
	v, ok := s.data[key]
	s.mu.Unlock()
	if c.enabled {
		if ok {
			if len(c.cache) < c.maxEntries {
				c.cache[key] = v
			}
		} else if len(c.negCache) < c.maxEntries {
			c.negCache[key] = struct{}{}
		}
	}
	return v, ok
}

// Stats returns the number of cache hits and misses recorded so far.
func (c *CachedReader[K, V]) Stats() (hits, misses uint64) { return c.hits, c.misses }

// HitRate returns the fraction of lookups served without remote
// communication, or 0 if no lookups were made.
func (c *CachedReader[K, V]) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Route implements the "Local Reads & Writes" pattern: every rank provides a
// slice of items; each item is shipped to the rank chosen by ownerOf via a
// single aggregated all-to-all exchange, and the function returns the items
// this rank received (including its own). bytesPerItem is used for cost
// accounting.
func Route[T any](r *pgas.Rank, items []T, ownerOf func(T) int, bytesPerItem int) []T {
	p := r.NRanks()
	out := make([][]T, p)
	for _, item := range items {
		dest := ownerOf(item) % p
		if dest < 0 {
			dest += p
		}
		out[dest] = append(out[dest], item)
	}
	r.Compute(float64(len(items)))
	incoming := pgas.AllToAll(r, out, bytesPerItem)
	var merged []T
	for _, batch := range incoming {
		merged = append(merged, batch...)
	}
	return merged
}
