package dht

import "mhmgo/internal/pgas"

// CachedReader implements the "Global Read-Only" phase: a per-rank software
// cache in front of Get. The cache must only be used while the map is not
// being mutated (no consistency protocol is provided, as in the paper).
//
// For phases where the whole table is known to be read-only, Freeze
// additionally switches the underlying map to lock-free reads from an
// immutable snapshot, removing all lock traffic from the read hot path.
type CachedReader[K comparable, V any] struct {
	m          *Map[K, V]
	r          *pgas.Rank
	cache      map[K]V
	negCache   map[K]struct{}
	maxEntries int
	enabled    bool
	hits       uint64
	misses     uint64
}

// NewCachedReader creates a software cache of at most maxEntries entries in
// front of the map for the calling rank. enabled=false bypasses the cache
// (used for the read-localization ablation).
func (m *Map[K, V]) NewCachedReader(r *pgas.Rank, maxEntries int, enabled bool) *CachedReader[K, V] {
	if maxEntries <= 0 {
		maxEntries = 1 << 16
	}
	return &CachedReader[K, V]{
		m:          m,
		r:          r,
		cache:      make(map[K]V),
		negCache:   make(map[K]struct{}),
		maxEntries: maxEntries,
		enabled:    enabled,
	}
}

// Freeze switches the underlying map into the lock-free read-only phase (see
// Map.Freeze). The software cache keeps working as before — freezing removes
// lock contention from reads, not their simulated communication cost, so
// caching remote entries still pays off. Safe to call from every rank after
// the barrier closing the last write phase; the first caller does the work.
func (c *CachedReader[K, V]) Freeze() { c.m.Freeze() }

// Get reads the entry for key, serving it from the software cache when
// possible. Entries owned by the calling rank are always "hits".
func (c *CachedReader[K, V]) Get(key K) (V, bool) {
	owner, si := c.m.ownerAndStripe(key)
	if owner == c.r.ID() {
		c.hits++
		c.r.ChargeCacheHit()
		return c.m.readPart(&c.m.parts[owner], si, key)
	}
	if c.enabled {
		if v, ok := c.cache[key]; ok {
			c.hits++
			c.r.ChargeCacheHit()
			return v, true
		}
		if _, ok := c.negCache[key]; ok {
			c.hits++
			c.r.ChargeCacheHit()
			var zero V
			return zero, false
		}
	}
	c.misses++
	c.r.ChargeCacheMiss(owner, c.m.entryBytes)
	v, ok := c.m.readPart(&c.m.parts[owner], si, key)
	if c.enabled {
		if ok {
			if len(c.cache) < c.maxEntries {
				c.cache[key] = v
			}
		} else if len(c.negCache) < c.maxEntries {
			c.negCache[key] = struct{}{}
		}
	}
	return v, ok
}

// Stats returns the number of cache hits and misses recorded so far.
func (c *CachedReader[K, V]) Stats() (hits, misses uint64) { return c.hits, c.misses }

// HitRate returns the fraction of lookups served without remote
// communication, or 0 if no lookups were made.
func (c *CachedReader[K, V]) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
