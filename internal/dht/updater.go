package dht

import "mhmgo/internal/pgas"

// kvPair is the unit buffered by an Updater. The stripe index is computed
// once at Update time (the key is hashed anyway to find its owner) so that
// flushes can group a batch by stripe without re-hashing.
type kvPair[K comparable, V any] struct {
	key    K
	val    V
	stripe uint32
}

// Updater implements the "Global Update-Only" phase: commutative updates are
// buffered per destination rank and applied in aggregated batches. When a
// batch is flushed it is grouped by stripe, so each stripe lock of the
// destination partition is taken at most once per flush instead of once per
// entry.
type Updater[K comparable, V any] struct {
	m       *Map[K, V]
	r       *pgas.Rank
	combine func(existing V, update V, found bool) V
	// batches buffers updates by destination rank. It is a map, not a
	// P-length slice: a P-slice per updater per rank is O(P²) machine-wide
	// (≈400 MB of slice headers alone at P=4096), while the map stays
	// proportional to the destinations this rank actually talks to between
	// flushes. Flush order is never derived from map iteration (FlushAll
	// walks rank IDs), so determinism is unaffected.
	batches   map[int][]kvPair[K, V]
	byStripe  [][]kvPair[K, V] // reusable flush scratch, indexed by stripe
	touched   []uint32         // stripes used by the current flush
	batchSize int
	aggregate bool
	pending   int
}

// NewUpdater creates an Updater for the calling rank. combine merges an
// incoming update into the existing entry (found reports whether an entry
// already existed). batchSize is the number of buffered updates per
// destination before an automatic flush; aggregate=false disables batching
// entirely (every update becomes its own message), which is used by the
// ablation experiments and the Ray Meta baseline.
func (m *Map[K, V]) NewUpdater(r *pgas.Rank, combine func(existing V, update V, found bool) V, batchSize int, aggregate bool) *Updater[K, V] {
	if batchSize <= 0 {
		batchSize = 512
	}
	return &Updater[K, V]{
		m:         m,
		r:         r,
		combine:   combine,
		batches:   make(map[int][]kvPair[K, V]),
		byStripe:  make([][]kvPair[K, V], m.stripeCount),
		batchSize: batchSize,
		aggregate: aggregate,
	}
}

// Update buffers one commutative update for key.
func (u *Updater[K, V]) Update(key K, val V) {
	dest, si := u.m.ownerAndStripe(key)
	batch := append(u.batches[dest], kvPair[K, V]{
		key:    key,
		val:    val,
		stripe: uint32(si),
	})
	u.batches[dest] = batch
	u.pending++
	if !u.aggregate || len(batch) >= u.batchSize {
		u.flushDest(dest)
	}
}

// Flush applies all buffered updates. It must be called before the phase's
// closing barrier.
func (u *Updater[K, V]) Flush() { u.FlushAll() }

// FlushAll flushes every destination's buffered batch, starting at the
// calling rank's own partition and wrapping around. When every rank flushes
// at the end of a phase simultaneously, a fixed 0..P-1 order would march all
// ranks through partition 0's stripe locks together (a lock convoy that
// serializes the wall-clock flush); staggering the start by rank ID spreads
// the flushes across all partitions. The updates are commutative, so the
// order does not affect the result.
func (u *Updater[K, V]) FlushAll() {
	p := u.m.machine.Ranks()
	start := u.r.ID()
	for i := 0; i < p; i++ {
		u.flushDest((start + i) % p)
	}
}

// Pending returns the number of buffered (unflushed) updates.
func (u *Updater[K, V]) Pending() int { return u.pending }

func (u *Updater[K, V]) flushDest(dest int) {
	batch := u.batches[dest]
	if len(batch) == 0 {
		return
	}
	u.batches[dest] = u.batches[dest][:0]
	u.pending -= len(batch)
	if dest == u.r.ID() {
		u.r.Compute(float64(len(batch)))
	} else if u.aggregate {
		u.r.ChargeSend(dest, len(batch)*u.m.entryBytes, 1)
	} else {
		u.r.ChargeSend(dest, len(batch)*u.m.entryBytes, len(batch))
	}

	p := &u.m.parts[dest]
	if u.m.stripeCount == 1 {
		u.applyStripe(p, 0, batch)
		return
	}
	if len(batch) == 1 {
		// Common with aggregate=false (every update is its own flush): skip
		// the grouping pass.
		u.applyStripe(p, uint64(batch[0].stripe), batch)
		return
	}
	// Group the batch by stripe so each lock is taken once per flush. Only
	// the stripes this batch touches are visited and reset, keeping the
	// bookkeeping proportional to the batch, not the stripe count.
	u.touched = u.touched[:0]
	for _, kv := range batch {
		if len(u.byStripe[kv.stripe]) == 0 {
			u.touched = append(u.touched, kv.stripe)
		}
		u.byStripe[kv.stripe] = append(u.byStripe[kv.stripe], kv)
	}
	for _, si := range u.touched {
		u.applyStripe(p, uint64(si), u.byStripe[si])
		u.byStripe[si] = u.byStripe[si][:0]
	}
}

func (u *Updater[K, V]) applyStripe(p *partition[K, V], si uint64, kvs []kvPair[K, V]) {
	s := u.m.mutableStripe(p, si)
	s.mu.Lock()
	for _, kv := range kvs {
		cur, ok := s.data[kv.key]
		s.data[kv.key] = u.combine(cur, kv.val, ok)
	}
	s.mu.Unlock()
}
