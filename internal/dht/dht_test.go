package dht

import (
	"sync/atomic"
	"testing"

	"mhmgo/internal/pgas"
)

func intHash(k int) uint64 {
	x := uint64(k) * 0x9e3779b97f4a7c15
	x ^= x >> 32
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 29
	return x
}

func TestMapPutGetAcrossRanks(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 4, RanksPerNode: 2})
	dm := NewMap[int, string](m, intHash, 32)
	m.Run(func(r *pgas.Rank) {
		// Every rank writes 100 keys in its own stripe.
		for i := 0; i < 100; i++ {
			key := r.ID()*1000 + i
			dm.Put(r, key, "v")
		}
		r.Barrier()
		// Every rank reads keys written by every other rank.
		for rank := 0; rank < r.NRanks(); rank++ {
			for i := 0; i < 100; i++ {
				if _, ok := dm.Get(r, rank*1000+i); !ok {
					t.Errorf("rank %d: key %d missing", r.ID(), rank*1000+i)
				}
			}
		}
		if _, ok := dm.Get(r, 999999); ok {
			t.Error("nonexistent key found")
		}
	})
	if dm.Len() != 400 {
		t.Errorf("Len = %d, want 400", dm.Len())
	}
}

func TestMapOwnerPartitioning(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 8})
	dm := NewMap[int, int](m, intHash, 16)
	counts := make([]int, 8)
	for k := 0; k < 10000; k++ {
		counts[dm.Owner(k)]++
	}
	for rank, c := range counts {
		if c < 10000/16 || c > 10000/4 {
			t.Errorf("rank %d owns %d of 10000 keys; partitioning is badly skewed", rank, c)
		}
	}
	// Snapshot/LocalLen consistency.
	m.Run(func(r *pgas.Rank) {
		lo, hi := r.BlockRange(1000)
		for k := lo; k < hi; k++ {
			dm.Put(r, k, k*2)
		}
	})
	total := 0
	for rank := 0; rank < 8; rank++ {
		total += dm.LocalLen(rank)
	}
	if total != 1000 || dm.Len() != 1000 {
		t.Errorf("LocalLen sum = %d, Len = %d, want 1000", total, dm.Len())
	}
	snap := dm.Snapshot()
	if len(snap) != 1000 || snap[500] != 1000 {
		t.Errorf("snapshot wrong: len=%d snap[500]=%d", len(snap), snap[500])
	}
}

func TestMapDelete(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 2})
	dm := NewMap[int, int](m, intHash, 16)
	m.Run(func(r *pgas.Rank) {
		if r.ID() == 0 {
			dm.Put(r, 1, 10)
			dm.Put(r, 2, 20)
		}
		r.Barrier()
		if r.ID() == 1 {
			dm.Delete(r, 1)
		}
		r.Barrier()
		if _, ok := dm.Get(r, 1); ok {
			t.Error("deleted key still present")
		}
		if v, ok := dm.Get(r, 2); !ok || v != 20 {
			t.Error("surviving key lost")
		}
	})
}

func TestNewMapCollective(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 4})
	m.Run(func(r *pgas.Rank) {
		dm := NewMapCollective[int, int](r, intHash, 16)
		if dm == nil {
			t.Errorf("rank %d received nil map", r.ID())
			return
		}
		dm.Put(r, r.ID(), r.ID())
		r.Barrier()
		for i := 0; i < 4; i++ {
			if v, ok := dm.Get(r, i); !ok || v != i {
				t.Errorf("rank %d: key %d = %d,%v", r.ID(), i, v, ok)
			}
		}
	})
}

func TestMutateAtomicity(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 8})
	dm := NewMap[string, int](m, func(s string) uint64 { return 7 }, 16)
	const perRank = 500
	m.Run(func(r *pgas.Rank) {
		for i := 0; i < perRank; i++ {
			Mutate(dm, r, "counter", func(v int, found bool) (int, bool, int) {
				return v + 1, true, v
			})
		}
	})
	snap := dm.Snapshot()
	if snap["counter"] != 8*perRank {
		t.Errorf("counter = %d, want %d; Mutate is not atomic", snap["counter"], 8*perRank)
	}
}

func TestMutateTestAndSet(t *testing.T) {
	// Models the speculative traversal "used flag": exactly one rank may
	// claim each key.
	m := pgas.NewMachine(pgas.Config{Ranks: 8})
	dm := NewMap[int, bool](m, intHash, 8)
	var claims int64
	m.Run(func(r *pgas.Rank) {
		for key := 0; key < 200; key++ {
			won := Mutate(dm, r, key, func(used bool, found bool) (bool, bool, bool) {
				if found && used {
					return used, false, false
				}
				return true, true, true
			})
			if won {
				atomic.AddInt64(&claims, 1)
			}
		}
	})
	if claims != 200 {
		t.Errorf("%d claims, want exactly 200 (one per key)", claims)
	}
}

func TestUpdaterAggregation(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 4, RanksPerNode: 1})
	combine := func(existing, update int, found bool) int {
		if !found {
			return update
		}
		return existing + update
	}

	// Aggregated updates.
	dmAgg := NewMap[int, int](m, intHash, 16)
	resAgg := m.Run(func(r *pgas.Rank) {
		u := dmAgg.NewUpdater(r, combine, 64, true)
		for i := 0; i < 1000; i++ {
			u.Update(i%50, 1)
		}
		u.Flush()
		if u.Pending() != 0 {
			t.Errorf("pending updates after flush: %d", u.Pending())
		}
		r.Barrier()
	})

	// Unaggregated updates (one message per update).
	dmRaw := NewMap[int, int](m, intHash, 16)
	resRaw := m.Run(func(r *pgas.Rank) {
		u := dmRaw.NewUpdater(r, combine, 64, false)
		for i := 0; i < 1000; i++ {
			u.Update(i%50, 1)
		}
		u.Flush()
		r.Barrier()
	})

	// Both must produce identical contents: 4 ranks x 20 occurrences of each
	// of the 50 keys.
	snapA, snapR := dmAgg.Snapshot(), dmRaw.Snapshot()
	if len(snapA) != 50 || len(snapR) != 50 {
		t.Fatalf("snapshot sizes %d/%d, want 50", len(snapA), len(snapR))
	}
	for k, v := range snapA {
		if v != 80 {
			t.Errorf("aggregated key %d = %d, want 80", k, v)
		}
		if snapR[k] != v {
			t.Errorf("aggregation changed results for key %d: %d vs %d", k, v, snapR[k])
		}
	}

	// Aggregation must reduce message count and simulated time.
	if resAgg.Stats.Messages >= resRaw.Stats.Messages {
		t.Errorf("aggregated messages (%d) should be fewer than unaggregated (%d)",
			resAgg.Stats.Messages, resRaw.Stats.Messages)
	}
	if resAgg.SimSeconds >= resRaw.SimSeconds {
		t.Errorf("aggregated time (%v) should beat unaggregated (%v)",
			resAgg.SimSeconds, resRaw.SimSeconds)
	}
}

func TestUpdaterLocalShortcut(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 1})
	dm := NewMap[int, int](m, intHash, 16)
	res := m.Run(func(r *pgas.Rank) {
		u := dm.NewUpdater(r, func(e, v int, ok bool) int { return e + v }, 8, true)
		for i := 0; i < 100; i++ {
			u.Update(i, i)
		}
		u.Flush()
	})
	if res.Stats.Messages != 0 {
		t.Errorf("single-rank updates should not send messages, got %d", res.Stats.Messages)
	}
	if dm.Len() != 100 {
		t.Errorf("Len = %d, want 100", dm.Len())
	}
}

func TestForEachLocalAndUpdateLocal(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 4})
	dm := NewMap[int, int](m, intHash, 16)
	m.Run(func(r *pgas.Rank) {
		u := dm.NewUpdater(r, func(e, v int, ok bool) int { return e + v }, 32, true)
		lo, hi := r.BlockRange(400)
		for i := lo; i < hi; i++ {
			u.Update(i, 1)
		}
		u.Flush()
		r.Barrier()
		// Each rank doubles its local entries.
		var localKeys []int
		dm.ForEachLocal(r, func(k, v int) { localKeys = append(localKeys, k) })
		for _, k := range localKeys {
			dm.UpdateLocal(r, k, func(v int, found bool) int {
				if !found {
					t.Errorf("local key %d vanished", k)
				}
				return v * 2
			})
		}
		r.Barrier()
	})
	snap := dm.Snapshot()
	if len(snap) != 400 {
		t.Fatalf("len = %d, want 400", len(snap))
	}
	for k, v := range snap {
		if v != 2 {
			t.Errorf("key %d = %d, want 2", k, v)
		}
	}
}

func TestCachedReader(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 4, RanksPerNode: 1})
	dm := NewMap[int, int](m, intHash, 64)
	// Populate.
	m.Run(func(r *pgas.Rank) {
		if r.ID() == 0 {
			for i := 0; i < 100; i++ {
				dm.Put(r, i, i)
			}
		}
	})

	var cachedTime, uncachedTime float64
	resCached := m.Run(func(r *pgas.Rank) {
		c := dm.NewCachedReader(r, 1024, true)
		for pass := 0; pass < 10; pass++ {
			for i := 0; i < 100; i++ {
				if v, ok := c.Get(i); !ok || v != i {
					t.Errorf("cached get %d = %d,%v", i, v, ok)
				}
			}
		}
		// Negative lookups are also cached.
		for pass := 0; pass < 10; pass++ {
			if _, ok := c.Get(100000); ok {
				t.Error("phantom key")
			}
		}
		if c.HitRate() < 0.5 {
			t.Errorf("hit rate %v too low for repeated reads", c.HitRate())
		}
	})
	cachedTime = resCached.SimSeconds

	resUncached := m.Run(func(r *pgas.Rank) {
		c := dm.NewCachedReader(r, 1024, false)
		for pass := 0; pass < 10; pass++ {
			for i := 0; i < 100; i++ {
				c.Get(i)
			}
		}
		hits, misses := c.Stats()
		if hits+misses != 1000 {
			t.Errorf("stats %d+%d != 1000", hits, misses)
		}
	})
	uncachedTime = resUncached.SimSeconds

	if cachedTime >= uncachedTime {
		t.Errorf("software cache should reduce simulated time: %v vs %v", cachedTime, uncachedTime)
	}
}

func TestRoute(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 4})
	totalReceived := int64(0)
	m.Run(func(r *pgas.Rank) {
		// Each rank emits 100 items labelled with a destination.
		items := make([]int, 100)
		for i := range items {
			items[i] = i % 7
		}
		got := Route(r, items, func(v int) int { return v }, 8)
		for _, v := range got {
			if v%4 != r.ID() {
				t.Errorf("rank %d received item %d owned by rank %d", r.ID(), v, v%4)
			}
		}
		atomic.AddInt64(&totalReceived, int64(len(got)))
	})
	if totalReceived != 400 {
		t.Errorf("total routed items = %d, want 400", totalReceived)
	}
}

func TestRouteNegativeOwner(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 3})
	m.Run(func(r *pgas.Rank) {
		items := []int{-1, -2, -3, 0, 1, 2}
		got := Route(r, items, func(v int) int { return v }, 8)
		for _, v := range got {
			owner := v % 3
			if owner < 0 {
				owner += 3
			}
			if owner != r.ID() {
				t.Errorf("rank %d got item %d (owner %d)", r.ID(), v, owner)
			}
		}
	})
}
