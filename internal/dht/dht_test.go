package dht

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mhmgo/internal/pgas"
)

func intHash(k int) uint64 {
	x := uint64(k) * 0x9e3779b97f4a7c15
	x ^= x >> 32
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 29
	return x
}

func TestMapPutGetAcrossRanks(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 4, RanksPerNode: 2})
	dm := NewMap[int, string](m, intHash, 32)
	m.Run(func(r *pgas.Rank) {
		// Every rank writes 100 keys in its own stripe.
		for i := 0; i < 100; i++ {
			key := r.ID()*1000 + i
			dm.Put(r, key, "v")
		}
		r.Barrier()
		// Every rank reads keys written by every other rank.
		for rank := 0; rank < r.NRanks(); rank++ {
			for i := 0; i < 100; i++ {
				if _, ok := dm.Get(r, rank*1000+i); !ok {
					t.Errorf("rank %d: key %d missing", r.ID(), rank*1000+i)
				}
			}
		}
		if _, ok := dm.Get(r, 999999); ok {
			t.Error("nonexistent key found")
		}
	})
	if dm.Len() != 400 {
		t.Errorf("Len = %d, want 400", dm.Len())
	}
}

func TestMapOwnerPartitioning(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 8})
	dm := NewMap[int, int](m, intHash, 16)
	counts := make([]int, 8)
	for k := 0; k < 10000; k++ {
		counts[dm.Owner(k)]++
	}
	for rank, c := range counts {
		if c < 10000/16 || c > 10000/4 {
			t.Errorf("rank %d owns %d of 10000 keys; partitioning is badly skewed", rank, c)
		}
	}
	// Snapshot/LocalLen consistency.
	m.Run(func(r *pgas.Rank) {
		lo, hi := r.BlockRange(1000)
		for k := lo; k < hi; k++ {
			dm.Put(r, k, k*2)
		}
	})
	total := 0
	for rank := 0; rank < 8; rank++ {
		total += dm.LocalLen(rank)
	}
	if total != 1000 || dm.Len() != 1000 {
		t.Errorf("LocalLen sum = %d, Len = %d, want 1000", total, dm.Len())
	}
	snap := dm.Snapshot()
	if len(snap) != 1000 || snap[500] != 1000 {
		t.Errorf("snapshot wrong: len=%d snap[500]=%d", len(snap), snap[500])
	}
}

func TestMapDelete(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 2})
	dm := NewMap[int, int](m, intHash, 16)
	m.Run(func(r *pgas.Rank) {
		if r.ID() == 0 {
			dm.Put(r, 1, 10)
			dm.Put(r, 2, 20)
		}
		r.Barrier()
		if r.ID() == 1 {
			dm.Delete(r, 1)
		}
		r.Barrier()
		if _, ok := dm.Get(r, 1); ok {
			t.Error("deleted key still present")
		}
		if v, ok := dm.Get(r, 2); !ok || v != 20 {
			t.Error("surviving key lost")
		}
	})
}

func TestNewMapCollective(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 4})
	m.Run(func(r *pgas.Rank) {
		dm := NewMapCollective[int, int](r, intHash, 16)
		if dm == nil {
			t.Errorf("rank %d received nil map", r.ID())
			return
		}
		dm.Put(r, r.ID(), r.ID())
		r.Barrier()
		for i := 0; i < 4; i++ {
			if v, ok := dm.Get(r, i); !ok || v != i {
				t.Errorf("rank %d: key %d = %d,%v", r.ID(), i, v, ok)
			}
		}
	})
}

func TestMutateAtomicity(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 8})
	dm := NewMap[string, int](m, func(s string) uint64 { return 7 }, 16)
	const perRank = 500
	m.Run(func(r *pgas.Rank) {
		for i := 0; i < perRank; i++ {
			Mutate(dm, r, "counter", func(v int, found bool) (int, bool, int) {
				return v + 1, true, v
			})
		}
	})
	snap := dm.Snapshot()
	if snap["counter"] != 8*perRank {
		t.Errorf("counter = %d, want %d; Mutate is not atomic", snap["counter"], 8*perRank)
	}
}

func TestMutateTestAndSet(t *testing.T) {
	// Models the speculative traversal "used flag": exactly one rank may
	// claim each key.
	m := pgas.NewMachine(pgas.Config{Ranks: 8})
	dm := NewMap[int, bool](m, intHash, 8)
	var claims int64
	m.Run(func(r *pgas.Rank) {
		for key := 0; key < 200; key++ {
			won := Mutate(dm, r, key, func(used bool, found bool) (bool, bool, bool) {
				if found && used {
					return used, false, false
				}
				return true, true, true
			})
			if won {
				atomic.AddInt64(&claims, 1)
			}
		}
	})
	if claims != 200 {
		t.Errorf("%d claims, want exactly 200 (one per key)", claims)
	}
}

func TestUpdaterAggregation(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 4, RanksPerNode: 1})
	combine := func(existing, update int, found bool) int {
		if !found {
			return update
		}
		return existing + update
	}

	// Aggregated updates.
	dmAgg := NewMap[int, int](m, intHash, 16)
	resAgg := m.Run(func(r *pgas.Rank) {
		u := dmAgg.NewUpdater(r, combine, 64, true)
		for i := 0; i < 1000; i++ {
			u.Update(i%50, 1)
		}
		u.Flush()
		if u.Pending() != 0 {
			t.Errorf("pending updates after flush: %d", u.Pending())
		}
		r.Barrier()
	})

	// Unaggregated updates (one message per update).
	dmRaw := NewMap[int, int](m, intHash, 16)
	resRaw := m.Run(func(r *pgas.Rank) {
		u := dmRaw.NewUpdater(r, combine, 64, false)
		for i := 0; i < 1000; i++ {
			u.Update(i%50, 1)
		}
		u.Flush()
		r.Barrier()
	})

	// Both must produce identical contents: 4 ranks x 20 occurrences of each
	// of the 50 keys.
	snapA, snapR := dmAgg.Snapshot(), dmRaw.Snapshot()
	if len(snapA) != 50 || len(snapR) != 50 {
		t.Fatalf("snapshot sizes %d/%d, want 50", len(snapA), len(snapR))
	}
	for k, v := range snapA {
		if v != 80 {
			t.Errorf("aggregated key %d = %d, want 80", k, v)
		}
		if snapR[k] != v {
			t.Errorf("aggregation changed results for key %d: %d vs %d", k, v, snapR[k])
		}
	}

	// Aggregation must reduce message count and simulated time.
	if resAgg.Stats.Messages >= resRaw.Stats.Messages {
		t.Errorf("aggregated messages (%d) should be fewer than unaggregated (%d)",
			resAgg.Stats.Messages, resRaw.Stats.Messages)
	}
	if resAgg.SimSeconds >= resRaw.SimSeconds {
		t.Errorf("aggregated time (%v) should beat unaggregated (%v)",
			resAgg.SimSeconds, resRaw.SimSeconds)
	}
}

func TestUpdaterLocalShortcut(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 1})
	dm := NewMap[int, int](m, intHash, 16)
	res := m.Run(func(r *pgas.Rank) {
		u := dm.NewUpdater(r, func(e, v int, ok bool) int { return e + v }, 8, true)
		for i := 0; i < 100; i++ {
			u.Update(i, i)
		}
		u.Flush()
	})
	if res.Stats.Messages != 0 {
		t.Errorf("single-rank updates should not send messages, got %d", res.Stats.Messages)
	}
	if dm.Len() != 100 {
		t.Errorf("Len = %d, want 100", dm.Len())
	}
}

func TestUpdaterFlushAllStaggered(t *testing.T) {
	// FlushAll walks the destinations starting at the caller's own rank (so
	// concurrent end-of-phase flushes don't convoy on partition 0); the
	// staggered order must change neither the contents nor the charged cost.
	for _, p := range []int{1, 3, 8} {
		m := pgas.NewMachine(pgas.Config{Ranks: p})
		dm := NewMap[int, int](m, intHash, 16)
		res := m.Run(func(r *pgas.Rank) {
			u := dm.NewUpdater(r, func(e, v int, ok bool) int { return e + v }, 1<<20, true)
			for i := 0; i < 300; i++ {
				u.Update(i, 1)
			}
			u.FlushAll()
			if u.Pending() != 0 {
				t.Errorf("p=%d rank %d: %d updates still pending after FlushAll", p, r.ID(), u.Pending())
			}
			r.Barrier()
		})
		for i := 0; i < 300; i++ {
			if v, ok := dm.Lookup(i); !ok || v != p {
				t.Errorf("p=%d key %d = %d (found=%v), want %d", p, i, v, ok, p)
			}
		}
		// One aggregated message per non-local destination per rank.
		if want := uint64(p * (p - 1)); res.Stats.Messages != want {
			t.Errorf("p=%d: %d messages, want %d", p, res.Stats.Messages, want)
		}
	}
}

func TestForEachLocalAndUpdateLocal(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 4})
	dm := NewMap[int, int](m, intHash, 16)
	m.Run(func(r *pgas.Rank) {
		u := dm.NewUpdater(r, func(e, v int, ok bool) int { return e + v }, 32, true)
		lo, hi := r.BlockRange(400)
		for i := lo; i < hi; i++ {
			u.Update(i, 1)
		}
		u.Flush()
		r.Barrier()
		// Each rank doubles its local entries.
		var localKeys []int
		dm.ForEachLocal(r, func(k, v int) { localKeys = append(localKeys, k) })
		for _, k := range localKeys {
			dm.UpdateLocal(r, k, func(v int, found bool) int {
				if !found {
					t.Errorf("local key %d vanished", k)
				}
				return v * 2
			})
		}
		r.Barrier()
	})
	snap := dm.Snapshot()
	if len(snap) != 400 {
		t.Fatalf("len = %d, want 400", len(snap))
	}
	for k, v := range snap {
		if v != 2 {
			t.Errorf("key %d = %d, want 2", k, v)
		}
	}
}

func TestCachedReader(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 4, RanksPerNode: 1})
	dm := NewMap[int, int](m, intHash, 64)
	// Populate.
	m.Run(func(r *pgas.Rank) {
		if r.ID() == 0 {
			for i := 0; i < 100; i++ {
				dm.Put(r, i, i)
			}
		}
	})

	var cachedTime, uncachedTime float64
	resCached := m.Run(func(r *pgas.Rank) {
		c := dm.NewCachedReader(r, 1024, true)
		for pass := 0; pass < 10; pass++ {
			for i := 0; i < 100; i++ {
				if v, ok := c.Get(i); !ok || v != i {
					t.Errorf("cached get %d = %d,%v", i, v, ok)
				}
			}
		}
		// Negative lookups are also cached.
		for pass := 0; pass < 10; pass++ {
			if _, ok := c.Get(100000); ok {
				t.Error("phantom key")
			}
		}
		if c.HitRate() < 0.5 {
			t.Errorf("hit rate %v too low for repeated reads", c.HitRate())
		}
	})
	cachedTime = resCached.SimSeconds

	resUncached := m.Run(func(r *pgas.Rank) {
		c := dm.NewCachedReader(r, 1024, false)
		for pass := 0; pass < 10; pass++ {
			for i := 0; i < 100; i++ {
				c.Get(i)
			}
		}
		hits, misses := c.Stats()
		if hits+misses != 1000 {
			t.Errorf("stats %d+%d != 1000", hits, misses)
		}
	})
	uncachedTime = resUncached.SimSeconds

	if cachedTime >= uncachedTime {
		t.Errorf("software cache should reduce simulated time: %v vs %v", cachedTime, uncachedTime)
	}
}

func TestRoute(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 4})
	totalReceived := int64(0)
	m.Run(func(r *pgas.Rank) {
		// Each rank emits 100 items labelled with a destination.
		items := make([]int, 100)
		for i := range items {
			items[i] = i % 7
		}
		got := Route(r, items, func(v int) int { return v }, 8)
		for _, v := range got {
			if v%4 != r.ID() {
				t.Errorf("rank %d received item %d owned by rank %d", r.ID(), v, v%4)
			}
		}
		atomic.AddInt64(&totalReceived, int64(len(got)))
	})
	if totalReceived != 400 {
		t.Errorf("total routed items = %d, want 400", totalReceived)
	}
}

func TestStripeConfiguration(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 2})
	cases := []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {7, 8}, {8, 8}, {9, 16}, {63, 64},
	}
	for _, c := range cases {
		dm := NewMap[int, int](m, intHash, 16, WithStripes(c.in))
		if dm.Stripes() != c.want {
			t.Errorf("WithStripes(%d) -> %d stripes, want %d", c.in, dm.Stripes(), c.want)
		}
	}
	dm := NewMap[int, int](m, intHash, 16)
	if dm.Stripes() != DefaultStripes() {
		t.Errorf("default stripes = %d, want %d", dm.Stripes(), DefaultStripes())
	}
	if ds := DefaultStripes(); ds < 8 || ds&(ds-1) != 0 {
		t.Errorf("DefaultStripes() = %d, want a power of two >= 8", ds)
	}
}

func TestOwnerStripeIndependence(t *testing.T) {
	// Keys that all hash to one owner rank (low bits) must still spread over
	// the stripes (high bits): a hot rank's traffic is divided stripeCount
	// ways instead of serializing on one lock.
	m := pgas.NewMachine(pgas.Config{Ranks: 8})
	dm := NewMap[int, int](m, intHash, 16, WithStripes(16))
	perStripe := make(map[uint64]int)
	n := 0
	for k := 0; n < 4000; k++ {
		if dm.Owner(k) != 0 {
			continue
		}
		n++
		perStripe[dm.stripeOf(k)]++
	}
	if len(perStripe) != 16 {
		t.Fatalf("hot-rank keys landed on %d stripes, want all 16", len(perStripe))
	}
	for si, c := range perStripe {
		if c < 4000/16/4 || c > 4000/16*4 {
			t.Errorf("stripe %d holds %d of 4000 hot-rank keys; badly skewed", si, c)
		}
	}
}

func TestFreezeThaw(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 4})
	dm := NewMap[int, int](m, intHash, 16, WithStripes(4))
	m.Run(func(r *pgas.Rank) {
		lo, hi := r.BlockRange(400)
		for k := lo; k < hi; k++ {
			dm.Put(r, k, k*3)
		}
		r.Barrier()
		dm.Freeze() // idempotent, every rank may call it
		if !dm.Frozen() {
			t.Error("map not frozen after Freeze")
		}
		// Lock-free reads see the full table.
		for k := 0; k < 400; k++ {
			if v, ok := dm.Get(r, k); !ok || v != k*3 {
				t.Errorf("frozen Get(%d) = %d,%v", k, v, ok)
			}
		}
		c := dm.NewCachedReader(r, 1024, true)
		c.Freeze() // delegates to the map; still idempotent
		for k := 0; k < 400; k++ {
			if v, ok := c.Get(k); !ok || v != k*3 {
				t.Errorf("frozen cached Get(%d) = %d,%v", k, v, ok)
			}
		}
		n := 0
		dm.ForEachLocal(r, func(k, v int) { n++ })
		if n != dm.LocalLen(r.ID()) {
			t.Errorf("frozen ForEachLocal visited %d entries, LocalLen = %d", n, dm.LocalLen(r.ID()))
		}
	})
	if dm.Len() != 400 {
		t.Errorf("frozen Len = %d, want 400", dm.Len())
	}
	if snap := dm.Snapshot(); len(snap) != 400 || snap[7] != 21 {
		t.Errorf("frozen Snapshot wrong: len=%d snap[7]=%d", len(snap), snap[7])
	}

	// Mutating a frozen map is a phase-discipline bug and must panic. The
	// recover has to live inside the rank body: panics do not cross
	// goroutines.
	m.Run(func(r *pgas.Rank) {
		if r.ID() != 0 {
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("Put on frozen map did not panic")
			}
		}()
		dm.Put(r, 12345, 1)
	})

	// Thaw re-enables writes.
	dm.Thaw()
	if dm.Frozen() {
		t.Error("map still frozen after Thaw")
	}
	m.Run(func(r *pgas.Rank) {
		if r.ID() == 0 {
			dm.Put(r, 10000, 1)
		}
	})
	if dm.Len() != 401 {
		t.Errorf("Len after thawed Put = %d, want 401", dm.Len())
	}
}

// hotRankKeys returns n keys that all hash to owner rank 0 of dm.
func hotRankKeys(dm *Map[int, int], n int) []int {
	keys := make([]int, 0, n)
	for k := 0; len(keys) < n; k++ {
		if dm.Owner(k) == 0 {
			keys = append(keys, k)
		}
	}
	return keys
}

// TestSingleOwnerStress drives every rank's traffic at a single hot owner
// rank through all three mutation APIs and asserts the final counts are
// exact. Run with -race, this is the regression test for stripe-level
// synchronization.
func TestSingleOwnerStress(t *testing.T) {
	const (
		ranks   = 8
		nKeys   = 64
		perRank = 2000
	)
	for _, stripes := range []int{1, 4, 0} {
		m := pgas.NewMachine(pgas.Config{Ranks: ranks})
		dm := NewMap[int, int](m, intHash, 16, WithStripes(stripes))
		keys := hotRankKeys(dm, nKeys)
		add := func(e, v int, ok bool) int { return e + v }
		m.Run(func(r *pgas.Rank) {
			u := dm.NewUpdater(r, add, 128, true)
			for i := 0; i < perRank; i++ {
				key := keys[(i+r.ID())%nKeys]
				// One remote atomic, one buffered update, one direct write
				// (Put of an unrelated per-rank key) per iteration.
				Mutate(dm, r, key, func(v int, found bool) (int, bool, int) {
					return v + 1, true, 0
				})
				u.Update(key, 1)
				dm.Put(r, 1_000_000+r.ID()*perRank+i, 1)
			}
			u.Flush()
			r.Barrier()
		})
		snap := dm.Snapshot()
		total := 0
		for _, k := range keys {
			total += snap[k]
		}
		want := 2 * ranks * perRank // Mutate + Updater contributions
		if total != want {
			t.Errorf("stripes=%d: hot keys sum to %d, want %d", stripes, total, want)
		}
		if dm.Len() != nKeys+ranks*perRank {
			t.Errorf("stripes=%d: Len = %d, want %d", stripes, dm.Len(), nKeys+ranks*perRank)
		}
	}
}

// TestStripingContentionSpeedup asserts the headline claim of the striped
// layout: with enough physical parallelism for the rank goroutines to
// actually contend, Mutate throughput against a single hot owner rank is at
// least 2x higher with striping than with the historical single lock. On
// machines with fewer than 8 CPUs the goroutines are time-sliced rather than
// parallel, a single uncontended lock costs nearly nothing, and the effect
// cannot manifest — the test skips with an explanation rather than pretend.
func TestStripingContentionSpeedup(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation distorts contention timing; " +
			"run without -race for the speedup assertion")
	}
	const (
		ranks   = 8
		perRank = 300_000
	)
	// Gate on *measured* parallelism, not runtime.NumCPU(): cgroup CPU quotas
	// and loaded machines can leave far fewer effective cores than NumCPU
	// reports, and without real parallelism an uncontended single lock costs
	// almost nothing, so the striping effect cannot manifest. The threshold
	// sits well above a 4-core machine's ideal scaling so it cannot arm
	// nondeterministically at that boundary.
	if speedup := measuredParallelSpeedup(ranks); speedup < 6 {
		t.Skipf("lock-free control workload scales only %.1fx over %d goroutines; "+
			"not enough effective parallelism to exhibit lock contention "+
			"(run BenchmarkDHTContention for the per-op numbers on this machine)",
			speedup, ranks)
	}
	throughput := func(stripes int) float64 {
		best := 0.0
		for attempt := 0; attempt < 3; attempt++ {
			m := pgas.NewMachine(pgas.Config{Ranks: ranks})
			dm := NewMap[int, int](m, intHash, 16, WithStripes(stripes))
			keys := hotRankKeys(dm, 1024)
			res := m.Run(func(r *pgas.Rank) {
				for i := 0; i < perRank; i++ {
					Mutate(dm, r, keys[(i*ranks+r.ID())&1023], func(v int, found bool) (int, bool, int) {
						return v + 1, true, 0
					})
				}
			})
			if ops := float64(ranks*perRank) / res.Wall.Seconds(); ops > best {
				best = ops
			}
		}
		return best
	}
	single := throughput(1)
	striped := throughput(0)
	t.Logf("single-lock: %.1f Mops/s, striped: %.1f Mops/s (%.2fx)",
		single/1e6, striped/1e6, striped/single)
	if striped < 2*single {
		// Guard against load that arrived mid-test: if the machine can no
		// longer deliver the parallelism the gate saw, the measurement is
		// void, not a regression.
		if speedup := measuredParallelSpeedup(ranks); speedup < 6 {
			t.Skipf("parallelism degraded to %.1fx during the test (external load); measurement void", speedup)
		}
		t.Errorf("striped throughput %.1f Mops/s is less than 2x the single-lock %.1f Mops/s",
			striped/1e6, single/1e6)
	}
}

// measuredParallelSpeedup runs a lock-free, share-nothing hash workload once
// on a single goroutine and once split over n goroutines, and returns the
// observed speedup — an empirical measure of how much parallelism the
// machine can actually deliver right now.
func measuredParallelSpeedup(n int) float64 {
	const totalOps = 8_000_000
	work := func(lo, hi int) uint64 {
		var acc uint64
		for i := lo; i < hi; i++ {
			acc ^= intHash(i)
		}
		return acc
	}
	start := time.Now()
	sink := work(0, totalOps)
	seq := time.Since(start)

	var wg sync.WaitGroup
	accs := make([]uint64, n)
	start = time.Now()
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			accs[g] = work(g*totalOps/n, (g+1)*totalOps/n)
		}(g)
	}
	wg.Wait()
	par := time.Since(start)
	for _, a := range accs {
		sink ^= a
	}
	runtime.KeepAlive(sink)
	return seq.Seconds() / par.Seconds()
}

// BenchmarkDHTContention measures Mutate throughput when every rank hammers
// keys owned by a single hot rank — the workload that serialized on one
// mutex before lock striping. stripes=1 reproduces the historical layout.
func BenchmarkDHTContention(b *testing.B) {
	b.Run("stripes=1", func(b *testing.B) { benchmarkContention(b, 1) })
	b.Run("striped", func(b *testing.B) { benchmarkContention(b, 0) })
}

func benchmarkContention(b *testing.B, stripes int) {
	const ranks = 8
	// Contention only manifests when the rank goroutines actually run on
	// multiple Ps. On small CI machines, pin GOMAXPROCS to the rank count
	// (the same knob `go test -cpu` turns) so the single-lock layout pays
	// its real cross-thread handoff cost.
	if runtime.GOMAXPROCS(0) < ranks {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(ranks))
	}
	m := pgas.NewMachine(pgas.Config{Ranks: ranks})
	dm := NewMap[int, int](m, intHash, 16, WithStripes(stripes))
	keys := hotRankKeys(dm, 1024)
	b.ResetTimer()
	m.Run(func(r *pgas.Rank) {
		for i := r.ID(); i < b.N; i += ranks {
			Mutate(dm, r, keys[i&1023], func(v int, found bool) (int, bool, int) {
				return v + 1, true, 0
			})
		}
	})
}

// BenchmarkDHTFrozenReads measures the read-only phase with and without
// Freeze: frozen reads skip the stripe lock entirely and hit one immutable
// map, which pays off even without physical parallelism.
func BenchmarkDHTFrozenReads(b *testing.B) {
	for _, frozen := range []bool{false, true} {
		name := "locked"
		if frozen {
			name = "frozen"
		}
		b.Run(name, func(b *testing.B) {
			const ranks = 8
			m := pgas.NewMachine(pgas.Config{Ranks: ranks})
			dm := NewMap[int, int](m, intHash, 16)
			keys := hotRankKeys(dm, 1024)
			m.Run(func(r *pgas.Rank) {
				if r.ID() == 0 {
					for _, k := range keys {
						dm.Put(r, k, k)
					}
				}
			})
			if frozen {
				dm.Freeze()
			}
			b.ResetTimer()
			m.Run(func(r *pgas.Rank) {
				for i := r.ID(); i < b.N; i += ranks {
					dm.Get(r, keys[i&1023])
				}
			})
		})
	}
}

// BenchmarkDHTUpdaterFlush measures the aggregated update phase against a
// single hot rank: striped flushes take each stripe lock once per batch.
func BenchmarkDHTUpdaterFlush(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		stripes int
	}{{"stripes=1", 1}, {"striped", 0}} {
		b.Run(cfg.name, func(b *testing.B) {
			const ranks = 8
			if runtime.GOMAXPROCS(0) < ranks {
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(ranks))
			}
			m := pgas.NewMachine(pgas.Config{Ranks: ranks})
			dm := NewMap[int, int](m, intHash, 16, WithStripes(cfg.stripes))
			keys := hotRankKeys(dm, 1024)
			add := func(e, v int, ok bool) int { return e + v }
			b.ResetTimer()
			m.Run(func(r *pgas.Rank) {
				u := dm.NewUpdater(r, add, 256, true)
				for i := r.ID(); i < b.N; i += ranks {
					u.Update(keys[i&1023], 1)
				}
				u.Flush()
			})
		})
	}
}

func TestRouteNegativeOwner(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 3})
	m.Run(func(r *pgas.Rank) {
		items := []int{-1, -2, -3, 0, 1, 2}
		got := Route(r, items, func(v int) int { return v }, 8)
		for _, v := range got {
			owner := v % 3
			if owner < 0 {
				owner += 3
			}
			if owner != r.ID() {
				t.Errorf("rank %d got item %d (owner %d)", r.ID(), v, owner)
			}
		}
	})
}
