package dht_test

import (
	"fmt"

	"mhmgo/internal/dht"
	"mhmgo/internal/pgas"
)

func exampleHash(k int) uint64 {
	x := uint64(k) * 0x9e3779b97f4a7c15
	x ^= x >> 32
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 29
	return x
}

// ExampleMap shows use case 2, "Global Reads & Writes": one-sided Put/Get
// plus an atomic Mutate, from every rank of a virtual machine.
func ExampleMap() {
	m := pgas.NewMachine(pgas.Config{Ranks: 4})
	dm := dht.NewMap[int, string](m, exampleHash, 32)
	m.Run(func(r *pgas.Rank) {
		// Every rank writes one entry; the key's hash picks the owner rank.
		dm.Put(r, r.ID(), fmt.Sprintf("from rank %d", r.ID()))
		r.Barrier()
		// Atomically claim key 100: exactly one rank wins the race.
		dht.Mutate(dm, r, 100, func(v string, found bool) (string, bool, bool) {
			if found {
				return v, false, false
			}
			return "claimed", true, true
		})
	})
	v, ok := dm.Lookup(2)
	fmt.Println(v, ok)
	fmt.Println(dm.Len())
	// Output:
	// from rank 2 true
	// 5
}

// ExampleMap_NewUpdater shows use case 1, "Global Update-Only": commutative
// updates buffered per destination rank and applied in aggregated batches,
// as in the paper's k-mer counting phase.
func ExampleMap_NewUpdater() {
	m := pgas.NewMachine(pgas.Config{Ranks: 4})
	counts := dht.NewMap[int, int](m, exampleHash, 16)
	m.Run(func(r *pgas.Rank) {
		add := func(existing, update int, found bool) int { return existing + update }
		u := counts.NewUpdater(r, add, 64, true)
		// Every rank observes the same 10 "k-mers" 5 times each.
		for pass := 0; pass < 5; pass++ {
			for kmer := 0; kmer < 10; kmer++ {
				u.Update(kmer, 1)
			}
		}
		u.Flush() // required before the phase's closing barrier
		r.Barrier()
	})
	fmt.Println(counts.Len())
	v, _ := counts.Lookup(7)
	fmt.Println(v) // 4 ranks x 5 passes
	// Output:
	// 10
	// 20
}

// ExampleMap_NewCachedReader shows use case 3, "Global Read-Only": once the
// table is no longer mutated, Freeze switches it to lock-free snapshot reads
// and the per-rank software cache absorbs repeated remote lookups.
func ExampleMap_NewCachedReader() {
	m := pgas.NewMachine(pgas.Config{Ranks: 4})
	dm := dht.NewMap[int, int](m, exampleHash, 16)
	m.Run(func(r *pgas.Rank) {
		if r.ID() == 0 {
			for k := 0; k < 100; k++ {
				dm.Put(r, k, k*k)
			}
		}
		r.Barrier()

		// The write phase is over: read lock-free from an immutable snapshot.
		c := dm.NewCachedReader(r, 1024, true)
		c.Freeze()
		for pass := 0; pass < 10; pass++ {
			for k := 0; k < 100; k++ {
				c.Get(k)
			}
		}
		if r.ID() == 0 {
			fmt.Printf("hit rate > 80%%: %v\n", c.HitRate() > 0.8)
		}
	})
	fmt.Println(dm.Frozen())
	// Output:
	// hit rate > 80%: true
	// true
}
