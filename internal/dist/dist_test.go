package dist

import (
	"fmt"
	"testing"

	"mhmgo/internal/pgas"
)

type rec struct {
	ID  int
	Seq string
}

func recOwner(x rec) int     { return len(x.Seq) } // content-derived, P-independent modulo P
func recWire(x rec) int      { return 8 + len(x.Seq) }
func recLess(a, b rec) bool  { return a.Seq < b.Seq }
func recEqual(a, b rec) bool { return a.Seq == b.Seq }

// buildRecs gives rank r a deterministic slice of records.
func buildRecs(rank, perRank int) []rec {
	out := make([]rec, perRank)
	for i := range out {
		out[i] = rec{Seq: fmt.Sprintf("r%d-%0*d", rank, 1+i%3, i)}
	}
	return out
}

// TestSetRoutesToOwners: every item lands on exactly the rank its owner
// function names, in source-rank order.
func TestSetRoutesToOwners(t *testing.T) {
	for _, mode := range []Mode{Distributed, Replicated} {
		const p = 4
		m := pgas.NewMachine(pgas.Config{Ranks: p})
		m.Run(func(r *pgas.Rank) {
			s := New(r, buildRecs(r.ID(), 9), recOwner, recWire, mode)
			for _, item := range s.Local(r) {
				if recOwner(item)%p != r.ID() {
					t.Errorf("mode %v: rank %d holds foreign item %q", mode, r.ID(), item.Seq)
				}
			}
			if total := s.GlobalLen(r); total != p*9 {
				t.Errorf("mode %v: GlobalLen = %d, want %d", mode, total, p*9)
			}
		})
	}
}

// TestModesBitIdentical: Replicated mode must produce exactly the same
// shards, IDs and emitted output as Distributed mode — it differs only in
// cost accounting.
func TestModesBitIdentical(t *testing.T) {
	const p = 3
	run := func(mode Mode) ([]rec, []uint64) {
		m := pgas.NewMachine(pgas.Config{Ranks: p})
		var emitted []rec
		peaks := make([]uint64, p)
		m.Run(func(r *pgas.Rank) {
			s := New(r, buildRecs(r.ID(), 7), recOwner, recWire, mode)
			s.SortLocal(r, recLess)
			s.Renumber(r, func(i, id int) { s.Local(r)[i].ID = id })
			if out := s.Emit(r); r.ID() == 0 {
				emitted = out
			}
			peaks[r.ID()] = r.Stats().PeakResidentBytes
		})
		return emitted, peaks
	}
	dOut, dPeaks := run(Distributed)
	rOut, rPeaks := run(Replicated)
	if len(dOut) != len(rOut) {
		t.Fatalf("modes disagree on item count: %d vs %d", len(dOut), len(rOut))
	}
	for i := range dOut {
		if dOut[i] != rOut[i] {
			t.Fatalf("item %d differs between modes: %+v vs %+v", i, dOut[i], rOut[i])
		}
	}
	// Non-emitting ranks hold only their shard in Distributed mode but the
	// full payload in Replicated mode. (Rank 0 is excluded: its Emit charge
	// legitimately reaches the full payload in both modes.)
	for rank := 1; rank < p; rank++ {
		if dPeaks[rank] >= rPeaks[rank] {
			t.Errorf("rank %d: distributed peak %d should be below replicated %d",
				rank, dPeaks[rank], rPeaks[rank])
		}
	}
}

// TestRenumberDenseAndLocatable: IDs are dense 0..N-1 in rank order, and
// RankOfID/GetByID find every item.
func TestRenumberDenseAndLocatable(t *testing.T) {
	const p = 5 // non-power-of-two
	m := pgas.NewMachine(pgas.Config{Ranks: p, RanksPerNode: 2})
	m.Run(func(r *pgas.Rank) {
		s := New(r, buildRecs(r.ID(), 4+r.ID()), recOwner, recWire, Distributed)
		s.SortLocal(r, recLess)
		total := s.Renumber(r, func(i, id int) { s.Local(r)[i].ID = id })
		wantTotal := 0
		for i := 0; i < p; i++ {
			wantTotal += 4 + i
		}
		if total != wantTotal {
			t.Errorf("Renumber total = %d, want %d", total, wantTotal)
		}
		for id := 0; id < total; id++ {
			item := s.GetByID(r, id)
			if item.ID != id {
				t.Errorf("GetByID(%d) returned item with ID %d", id, item.ID)
			}
			if owner := s.RankOfID(id); owner < 0 || owner >= p {
				t.Errorf("RankOfID(%d) = %d out of range", id, owner)
			}
		}
	})
}

// TestReaderCachesRemoteGets: repeated remote fetches of the same ID hit the
// software cache; local fetches bypass it.
func TestReaderCachesRemoteGets(t *testing.T) {
	const p = 2
	m := pgas.NewMachine(pgas.Config{Ranks: p, RanksPerNode: 1})
	res := m.Run(func(r *pgas.Rank) {
		s := New(r, buildRecs(r.ID(), 6), recOwner, recWire, Distributed)
		s.Renumber(r, func(i, id int) { s.Local(r)[i].ID = id })
		total := s.GlobalLen(r)
		rd := s.NewReader(r, 1<<10)
		for rep := 0; rep < 3; rep++ {
			for id := 0; id < total; id++ {
				rd.Get(id)
			}
		}
	})
	if res.Stats.CacheMisses == 0 || res.Stats.CacheHits == 0 {
		t.Fatalf("expected both misses and hits, got %+v", res.Stats)
	}
	if res.Stats.CacheHits < 2*res.Stats.CacheMisses {
		t.Errorf("second and third sweeps should hit: hits=%d misses=%d",
			res.Stats.CacheHits, res.Stats.CacheMisses)
	}
}

// TestSortDedupFilter: owner-local sort+dedup removes duplicates routed to
// the same owner from different ranks, and FilterLocal drops and releases.
func TestSortDedupFilter(t *testing.T) {
	const p = 3
	m := pgas.NewMachine(pgas.Config{Ranks: p})
	m.Run(func(r *pgas.Rank) {
		// Every rank contributes the same three records: global dedup must
		// collapse them to one copy each.
		local := []rec{{Seq: "AAAA"}, {Seq: "CCG"}, {Seq: "TT"}}
		s := New(r, local, recOwner, recWire, Distributed)
		s.SortLocal(r, recLess)
		s.DedupLocal(r, recEqual)
		if total := s.GlobalLen(r); total != 3 {
			t.Errorf("after dedup GlobalLen = %d, want 3", total)
		}
		dropped := s.FilterLocal(r, func(x rec) bool { return len(x.Seq) > 2 })
		_ = dropped
		if total := s.GlobalLen(r); total != 2 {
			t.Errorf("after filter GlobalLen = %d, want 2", total)
		}
	})
}

// TestEmitRankOrderOnRootOnly: Emit returns the concatenation of the shards
// in rank order on rank 0 and nil elsewhere, and no rank — including the
// streaming writer rank 0 — ever holds the full payload against the
// resident meter.
func TestEmitRankOrderOnRootOnly(t *testing.T) {
	const p = 4
	m := pgas.NewMachine(pgas.Config{Ranks: p})
	peaks := make([]uint64, p)
	var totalBytes int
	m.Run(func(r *pgas.Rank) {
		s := New(r, buildRecs(r.ID(), 5), recOwner, recWire, Distributed)
		s.SortLocal(r, recLess)
		s.Renumber(r, func(i, id int) { s.Local(r)[i].ID = id })
		out := s.Emit(r)
		if r.ID() == 0 {
			if len(out) != p*5 {
				t.Errorf("rank 0 emitted %d items, want %d", len(out), p*5)
			}
			for i, item := range out {
				if item.ID != i {
					t.Errorf("emit order broken at %d: ID %d", i, item.ID)
					break
				}
				totalBytes += recWire(item)
			}
		} else if out != nil {
			t.Errorf("rank %d received emitted items", r.ID())
		}
		peaks[r.ID()] = r.Stats().PeakResidentBytes
	})
	var anyResident bool
	for rank := 0; rank < p; rank++ {
		if peaks[rank] > 0 {
			anyResident = true
		}
		if peaks[rank] >= uint64(totalBytes) {
			t.Errorf("rank %d peak %d should be a shard-sized fraction of the %d-byte payload",
				rank, peaks[rank], totalBytes)
		}
	}
	if !anyResident {
		t.Error("no rank recorded any resident bytes")
	}
}

// TestExchangeOwnerRouted: Exchange delivers every item to its owner exactly
// once in both modes.
func TestExchangeOwnerRouted(t *testing.T) {
	for _, mode := range []Mode{Distributed, Replicated} {
		const p = 4
		m := pgas.NewMachine(pgas.Config{Ranks: p})
		m.Run(func(r *pgas.Rank) {
			items := []int{r.ID() * 10, r.ID()*10 + 1, r.ID()*10 + 2}
			got := Exchange(r, items, func(x int) int { return x }, func(int) int { return 8 }, mode)
			for _, x := range got {
				if x%p != r.ID() {
					t.Errorf("mode %v: rank %d received foreign item %d", mode, r.ID(), x)
				}
			}
			total := pgas.AllReduce(r, len(got), pgas.ReduceSum)
			if total != p*3 {
				t.Errorf("mode %v: exchange lost items: %d of %d", mode, total, p*3)
			}
		})
	}
}
