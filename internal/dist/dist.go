// Package dist implements distributed ownership of record collections — the
// counterpart of dht.Map for sequence-shaped data (contigs, alignments,
// extensions, scaffolds).
//
// A Set[T] partitions its items over the ranks of a virtual PGAS machine by
// an owner function. Items are shipped to their owners with one aggregated
// all-to-all exchange (the paper's §II-A use case 4, "Local Reads & Writes"),
// after which each rank holds and processes only its own shard: per-rank
// memory is O(N/P) instead of the O(N) a gather-to-all materializes on every
// rank. Dense global IDs are assigned without any gather via an exclusive
// prefix scan (pgas.ExScan) over the shard sizes, owner-side lookups by
// global ID are charged as one-sided gets (with an optional per-rank software
// cache in front), and final output is emitted rank by rank onto rank 0 only.
//
// Every Set also runs in Replicated mode: the same items land in the same
// shards with the same IDs — results are bit-identical by construction — but
// construction is charged (and its memory accounted) as the gather-to-all it
// replaces, and remote lookups become free local reads. Replicated mode is
// the baseline of the distributed-ownership ablation: the measured gap in
// CommStats.PeakResidentBytes between the two modes is the memory the
// refactor saves.
package dist

import (
	"sort"

	"mhmgo/internal/pgas"
)

// Mode selects how a Set moves and accounts its data.
type Mode int

const (
	// Distributed ships every item to its owner rank; each rank materializes
	// only its shard. Remote lookups are charged as one-sided gets.
	Distributed Mode = iota
	// Replicated materializes every rank's items on every rank, charged as
	// the gather-to-all tree collective the distributed layout replaces.
	// Shards and IDs are identical to Distributed mode, so the two modes
	// produce bit-identical results and differ only in cost and footprint.
	Replicated
)

// Set is a collection of items partitioned over the ranks by an owner
// function. A Set is created collectively and shared by all ranks; each rank
// mutates only its own shard, and cross-shard reads go through GetByID /
// Reader (or Emit), which charge the cost model. The zero value is not
// usable; construct with New.
type Set[T any] struct {
	mode Mode
	wire func(T) int

	shards [][]T
	// base[p] is the global ID of rank p's first item (len NRanks+1), filled
	// by Renumber; IDs are dense and contiguous per rank.
	base []int
}

// New creates a Set collectively: every rank contributes its local items,
// each item is routed to the rank ownerOf chooses (reduced modulo the rank
// count), and the calling rank's handle of the shared Set is returned. wire
// reports the wire bytes of one item for cost accounting.
//
// In Distributed mode the routing is one aggregated all-to-all exchange and
// each rank's resident-bytes meter is charged only for its shard; in
// Replicated mode construction is charged as a gather-to-all (every rank is
// charged the full payload) while the shard layout stays identical.
func New[T any](r *pgas.Rank, local []T, ownerOf func(T) int, wire func(T) int, mode Mode) *Set[T] {
	return NewIndexed(r, local, func(_, _ int, item T) int { return ownerOf(item) }, wire, mode)
}

// NewIndexed creates a Set collectively like New, but the destination of an
// item is chosen by (source rank, local index, item) instead of item content
// alone. This supports placement rules that depend on an item's position in
// its source rank's (deterministically ordered) slice — e.g. striping a
// size-sorted shard round-robin over the ranks for byte balance. destOf must
// be a pure function of its arguments so Replicated mode reproduces the same
// shards from the gathered batches (which preserve per-source order).
func NewIndexed[T any](r *pgas.Rank, local []T, destOf func(src, i int, item T) int, wire func(T) int, mode Mode) *Set[T] {
	p := r.NRanks()
	var s *Set[T]
	if r.ID() == 0 {
		s = &Set[T]{mode: mode, wire: wire, shards: make([][]T, p)}
	}
	s = pgas.Broadcast(r, s)

	var shard []T
	switch mode {
	case Replicated:
		// The gather-to-all baseline: every rank materializes every item
		// (gatherV charges the tree schedule and the full resident
		// payload), then keeps the same owned subset a real exchange would
		// deliver.
		all := pgas.GatherVFunc(r, local, wire)
		for src, batch := range all {
			for i, item := range batch {
				d := destOf(src, i, item) % p
				if d < 0 {
					d += p
				}
				if d == r.ID() {
					shard = append(shard, item)
				}
			}
			r.Compute(float64(len(batch)))
		}
	default:
		r.Compute(float64(len(local)))
		shard = pgas.ExchangeFunc(r, local,
			func(i int, item T) int { return destOf(r.ID(), i, item) }, wire)
	}
	s.shards[r.ID()] = shard
	r.Barrier()
	return s
}

// RestoreSet reconstructs a Set from checkpointed per-rank shards, outside
// any SPMD region and without charging the cost model: the simulated cost of
// routing the items and the shards' resident bytes were paid by the original
// run and are carried in the checkpointed rank clocks and resident meters.
// shards[p] becomes rank p's shard verbatim, preserving ownership at the
// same rank count. The ID base table is rebuilt from the shard lengths,
// which is exact because every checkpointed set has been through Renumber
// (dense IDs in rank order); callers should verify the stored item IDs
// against Locate if the shards come from an untrusted file.
func RestoreSet[T any](shards [][]T, wire func(T) int, mode Mode) *Set[T] {
	s := &Set[T]{mode: mode, wire: wire, shards: shards}
	base := make([]int, len(shards)+1)
	for p, shard := range shards {
		base[p+1] = base[p] + len(shard)
	}
	s.base = base
	return s
}

// Mode returns the Set's data-movement mode.
func (s *Set[T]) Mode() Mode { return s.mode }

// WireSize returns the wire bytes of one item under the Set's size function.
func (s *Set[T]) WireSize(item T) int { return s.wire(item) }

// Local returns the calling rank's shard. The owner may mutate items in
// place between barriers; use SetLocal to keep the resident accounting
// exact when an item's wire size changes.
func (s *Set[T]) Local(r *pgas.Rank) []T { return s.shards[r.ID()] }

// Len returns the size of the calling rank's shard.
func (s *Set[T]) Len(r *pgas.Rank) int { return len(s.shards[r.ID()]) }

// GlobalLen returns the total number of items across all shards (an
// all-reduce).
func (s *Set[T]) GlobalLen(r *pgas.Rank) int {
	return pgas.AllReduce(r, len(s.shards[r.ID()]), pgas.ReduceSum)
}

// ForEachLocal calls fn for every item of the calling rank's shard, in shard
// order, with the item's local index.
func (s *Set[T]) ForEachLocal(r *pgas.Rank, fn func(i int, item T)) {
	for i, item := range s.shards[r.ID()] {
		fn(i, item)
	}
}

// SetLocal replaces item i of the calling rank's shard, adjusting the
// resident accounting by the wire-size difference. The adjustment is
// owner-local even in Replicated mode (per-item collectives would be
// absurd); replicated-mode growth is instead captured by the gather-charged
// exchanges that deliver the mutations.
func (s *Set[T]) SetLocal(r *pgas.Rank, i int, item T) {
	shard := s.shards[r.ID()]
	old, nw := s.wire(shard[i]), s.wire(item)
	if nw > old {
		r.ChargeResident(nw - old)
	} else {
		r.ReleaseResident(old - nw)
	}
	shard[i] = item
}

// SortLocal sorts the calling rank's shard with the given deterministic
// strict ordering.
func (s *Set[T]) SortLocal(r *pgas.Rank, less func(a, b T) bool) {
	shard := s.shards[r.ID()]
	sort.Slice(shard, func(i, j int) bool { return less(shard[i], shard[j]) })
	n := float64(len(shard))
	if n > 1 {
		r.Compute(n)
	}
}

// releaseDropped returns dropped shard bytes to the resident meter. In
// Replicated mode every rank materialized a replica of every item, so the
// release must cover the drops of ALL ranks (one scalar all-reduce);
// otherwise each rank would permanently leak the bytes other ranks dropped
// and the gather-to-all baseline's peak would be overstated.
func (s *Set[T]) releaseDropped(r *pgas.Rank, droppedBytes int) {
	if s.mode == Replicated {
		droppedBytes = pgas.AllReduce(r, droppedBytes, pgas.ReduceSum)
	}
	r.ReleaseResident(droppedBytes)
}

// DedupLocal removes adjacent items for which equal reports true (sort
// first), releasing the dropped items' resident bytes, and returns how many
// items were removed. Items routed by a content hash collide on the same
// owner, so owner-local adjacent dedup is global dedup. Collective.
func (s *Set[T]) DedupLocal(r *pgas.Rank, equal func(a, b T) bool) int {
	shard := s.shards[r.ID()]
	dropped, droppedBytes := 0, 0
	if len(shard) > 0 {
		out := shard[:1]
		for _, item := range shard[1:] {
			if equal(out[len(out)-1], item) {
				droppedBytes += s.wire(item)
				dropped++
				continue
			}
			out = append(out, item)
		}
		s.shards[r.ID()] = out
		r.Compute(float64(len(shard)))
	}
	s.releaseDropped(r, droppedBytes)
	return dropped
}

// FilterLocal keeps only the items of the calling rank's shard for which
// keep reports true, releasing the dropped items' resident bytes, and
// returns how many items were dropped. Collective.
func (s *Set[T]) FilterLocal(r *pgas.Rank, keep func(item T) bool) int {
	shard := s.shards[r.ID()]
	out := shard[:0]
	dropped, droppedBytes := 0, 0
	for _, item := range shard {
		if keep(item) {
			out = append(out, item)
		} else {
			droppedBytes += s.wire(item)
			dropped++
		}
	}
	s.shards[r.ID()] = out
	r.Compute(float64(len(shard)))
	s.releaseDropped(r, droppedBytes)
	return dropped
}

// Renumber assigns dense global IDs without gathering: an exclusive prefix
// scan of the shard sizes gives every rank its base offset, so rank p's items
// get IDs [base, base+len(shard)). assign is called for every local item with
// its local index and new global ID (typically storing the ID into the item).
// The per-rank bases are also published so RankOfID / GetByID can locate any
// ID. Returns the global item count. Collective.
func (s *Set[T]) Renumber(r *pgas.Rank, assign func(i int, globalID int)) int {
	n := len(s.shards[r.ID()])
	base := pgas.ExScan(r, n, pgas.ReduceSum)
	// The ID->owner map needs every rank's base: one scalar gather of the
	// scan ends (P words through the tree schedule, not the payload) —
	// ends[p] is rank p+1's base, and ends[P-1] is the global total.
	ends := pgas.Gather(r, base+n)
	if r.ID() == 0 {
		bases := make([]int, len(ends)+1)
		copy(bases[1:], ends)
		s.base = bases
	}
	r.Barrier()
	for i := 0; i < n; i++ {
		assign(i, base+i)
	}
	r.Compute(float64(n))
	r.Barrier()
	return s.base[len(ends)]
}

// RankOfID returns the rank owning the given global ID. Requires Renumber.
func (s *Set[T]) RankOfID(id int) int {
	// base is sorted; find the first rank whose shard ends beyond id.
	hi := len(s.base) - 1
	if hi < 0 {
		panic("dist: RankOfID before Renumber")
	}
	return sort.Search(hi, func(p int) bool { return s.base[p+1] > id })
}

// Locate returns the rank owning the given global ID and the item's index
// within that rank's shard. Requires Renumber.
func (s *Set[T]) Locate(id int) (rank, idx int) {
	rank = s.RankOfID(id)
	return rank, id - s.base[rank]
}

// GetByID fetches the item with the given global ID. A local (or Replicated)
// read costs one compute op; a remote read in Distributed mode is charged as
// a one-sided get of the item's wire size. Requires Renumber.
func (s *Set[T]) GetByID(r *pgas.Rank, id int) T {
	owner := s.RankOfID(id)
	item := s.shards[owner][id-s.base[owner]]
	if owner == r.ID() || s.mode == Replicated {
		r.Compute(1)
		return item
	}
	r.ChargeGet(owner, s.wire(item), 1)
	return item
}

// Reader is a per-rank software cache in front of GetByID, for read-only
// phases where the same remote items are fetched repeatedly (the paper's
// §II-A use case 3 applied to record collections).
type Reader[T any] struct {
	s       *Set[T]
	r       *pgas.Rank
	entries int
	cache   map[int]T
}

// NewReader creates a Reader with capacity for the given number of cached
// items (0 disables caching).
func (s *Set[T]) NewReader(r *pgas.Rank, entries int) *Reader[T] {
	rd := &Reader[T]{s: s, r: r, entries: entries}
	if entries > 0 {
		rd.cache = make(map[int]T)
	}
	return rd
}

// Get fetches the item with the given global ID through the cache. Local and
// Replicated reads bypass the cache (they are already free of communication).
func (rd *Reader[T]) Get(id int) T {
	s, r := rd.s, rd.r
	owner := s.RankOfID(id)
	item := s.shards[owner][id-s.base[owner]]
	if owner == r.ID() || s.mode == Replicated {
		r.Compute(1)
		return item
	}
	if rd.cache != nil {
		if hit, ok := rd.cache[id]; ok {
			r.ChargeCacheHit()
			return hit
		}
	}
	r.ChargeCacheMiss(owner, s.wire(item))
	if rd.cache != nil && len(rd.cache) < rd.entries {
		rd.cache[id] = item
	}
	return item
}

// Emit delivers the full, rank-by-rank-ordered item list to rank 0 (the
// rank that writes final output) and returns nil on every other rank. In
// Distributed mode each rank is charged one aggregated send of its shard to
// rank 0, which consumes the shards one at a time — the modeled writer
// streams each arriving shard to the output file and drops it, so no rank
// ever holds the full payload and nothing is charged against the resident
// meter. (The returned in-memory slice is a convenience of the single-
// process harness, standing in for the output file.) Collective.
func (s *Set[T]) Emit(r *pgas.Rank) []T {
	r.Barrier()
	if s.mode == Distributed && r.ID() != 0 {
		if bytes := s.shardBytes(r.ID()); bytes > 0 {
			r.ChargeSend(0, bytes, 1)
		}
	}
	var out []T
	if r.ID() == 0 {
		n := 0
		for _, shard := range s.shards {
			n += len(shard)
		}
		if s.mode == Distributed {
			// The senders paid the wire time; the writer accounts the
			// delivered bytes so sent and received totals stay balanced.
			received := 0
			for p := 1; p < len(s.shards); p++ {
				received += s.shardBytes(p)
			}
			r.AccountReceived(received)
		}
		out = make([]T, 0, n)
		for _, shard := range s.shards {
			out = append(out, shard...)
		}
		r.Compute(float64(n))
	}
	r.Barrier()
	return out
}

// Release returns the Set's resident bytes to the meter: the local shard in
// Distributed mode, the full payload in Replicated mode (where every rank
// materialized everything). Call it when the Set is replaced or consumed.
// Collective.
func (s *Set[T]) Release(r *pgas.Rank) {
	r.Barrier()
	if s.mode == Replicated {
		total := 0
		for p := range s.shards {
			total += s.shardBytes(p)
		}
		r.ReleaseResident(total)
	} else {
		r.ReleaseResident(s.shardBytes(r.ID()))
	}
	r.Barrier()
}

func (s *Set[T]) shardBytes(p int) int {
	total := 0
	for _, item := range s.shards[p] {
		total += s.wire(item)
	}
	return total
}

// Exchange routes items to their owner ranks and returns the items the
// calling rank owns, without building a Set — the one-shot form used for
// transient record streams (removal proposals, extension results, link
// copies). In Distributed mode it is one aggregated all-to-all charged by
// actual payload; in Replicated mode it is charged as the gather-to-all the
// legacy pipeline performed (every rank momentarily materializes every item,
// which is exactly what the peak-resident meter should see), after which the
// non-owned items are dropped again. The transient payload's resident charge
// is released before returning; only the returned slice remains with the
// caller.
func Exchange[T any](r *pgas.Rank, items []T, ownerOf func(T) int, wire func(T) int, mode Mode) []T {
	p := r.NRanks()
	var merged []T
	if mode == Replicated {
		all := pgas.GatherVFunc(r, items, wire)
		total := 0
		for _, batch := range all {
			for _, item := range batch {
				total += wire(item)
				d := ownerOf(item) % p
				if d < 0 {
					d += p
				}
				if d == r.ID() {
					merged = append(merged, item)
				}
			}
			r.Compute(float64(len(batch)))
		}
		r.ReleaseResident(total)
		return merged
	}
	r.Compute(float64(len(items)))
	merged = pgas.ExchangeFunc(r, items,
		func(_ int, item T) int { return ownerOf(item) }, wire)
	received := 0
	for _, item := range merged {
		received += wire(item)
	}
	r.ReleaseResident(received)
	return merged
}
