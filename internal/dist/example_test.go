package dist_test

import (
	"fmt"
	"hash/fnv"

	"mhmgo/internal/dist"
	"mhmgo/internal/pgas"
)

// ExampleSet shows the distributed-ownership pattern that replaced the
// pipeline's gather-to-all collectives: records are routed to an owner rank
// chosen from their content, deduplicated and renumbered owner-side without
// any gather, looked up remotely through a charged one-sided get, and
// emitted in rank order on rank 0 only.
func ExampleSet() {
	type contig struct {
		ID  int
		Seq string
	}
	ownerOf := func(c contig) int {
		h := fnv.New64a()
		h.Write([]byte(c.Seq))
		return int(h.Sum64() % (1 << 30))
	}
	wire := func(c contig) int { return 16 + len(c.Seq) }

	m := pgas.NewMachine(pgas.Config{Ranks: 4})
	m.Run(func(r *pgas.Rank) {
		// Each rank contributes local records; "ACGT" is produced twice and
		// must survive exactly once.
		local := []contig{{Seq: fmt.Sprintf("AC%02d", r.ID())}}
		if r.ID() < 2 {
			local = append(local, contig{Seq: "ACGT"})
		}

		s := dist.New(r, local, ownerOf, wire, dist.Distributed)
		s.SortLocal(r, func(a, b contig) bool { return a.Seq < b.Seq })
		s.DedupLocal(r, func(a, b contig) bool { return a.Seq == b.Seq })
		total := s.Renumber(r, func(i, id int) { s.Local(r)[i].ID = id })

		// Any rank can fetch any record by its dense global ID; remote
		// fetches are charged as one-sided gets.
		first := s.GetByID(r, 0)

		if out := s.Emit(r); r.ID() == 0 {
			fmt.Printf("%d distinct contigs, id 0 = %q, emitted %d\n", total, first.Seq, len(out))
		}
	})
	// Output:
	// 5 distinct contigs, id 0 = "AC03", emitted 5
}
