package eval

import (
	"fmt"
	"sort"

	"mhmgo/internal/seq"
	"mhmgo/internal/sim"
)

// Per-sample abundance recovery for multi-sample co-assemblies. A co-assembly
// pools every sample's reads into one assembly, so the per-sample abundance
// signal is no longer in the contigs themselves — it is recovered afterwards
// by localizing each read onto the assembly (the same seed-and-vote scheme
// the assembler's read-localization stage uses) and counting, per sample, how
// many reads land on each assembly sequence. With the simulated community in
// hand, assembly sequences are attributed to reference genomes and the
// counts roll up into a per-sample, per-genome abundance estimate: reads per
// genome divided by genome length, normalized to sum to 1 — the read-count
// analogue of the simulator's abundance*length sampling weights.

// GenomeAbundance is one genome's estimated abundance within one sample.
type GenomeAbundance struct {
	// Name is the reference genome's name.
	Name string
	// Reads is the number of the sample's reads localized onto assembly
	// sequences attributed to this genome.
	Reads int
	// Abundance is the length-normalized relative abundance estimate: the
	// genome's reads-per-base share of the sample, normalized so a sample's
	// estimates sum to 1 (0 when the sample localized no reads at all).
	Abundance float64
}

// SampleAbundance is the abundance report for one sample of a co-assembly.
type SampleAbundance struct {
	// Sample is the sample's name.
	Sample string
	// Reads is the number of input reads carrying this sample's SampleID.
	Reads int
	// Localized is how many of them localized onto the assembly.
	Localized int
	// PerSeq counts the sample's localized reads per assembly sequence,
	// indexed like the assembly slice.
	PerSeq []int
	// PerGenome is the per-reference-genome rollup, in community genome
	// order. Empty when AbundanceReport was called without a community.
	PerGenome []GenomeAbundance
}

// asmIndex maps canonical seeds to the assembly sequences containing them.
type asmIndex struct {
	seedLen int
	hits    map[seq.Kmer][]int32
}

func buildAsmIndex(assembly [][]byte, opts Options) *asmIndex {
	// Every assembly position is indexed (no stride): reads sample their
	// seeds with SeedStride, and a strided index would only catch the seeds
	// whose phase happens to line up, silently dropping most localizations.
	idx := &asmIndex{seedLen: opts.SeedLen, hits: make(map[seq.Kmer][]int32)}
	for si, s := range assembly {
		it := seq.NewKmerIter(s, opts.SeedLen)
		for {
			km, _, ok := it.Next()
			if !ok {
				break
			}
			canon, _ := km.Canonical()
			hs := idx.hits[canon]
			if len(hs) > 0 && hs[len(hs)-1] == int32(si) {
				continue // one vote per sequence per seed
			}
			idx.hits[canon] = append(hs, int32(si))
		}
	}
	return idx
}

// localize votes a read onto the assembly sequence sharing the most of its
// seeds, returning -1 when no seed matches (ties resolve to the lowest
// sequence index, keeping the report deterministic).
func (idx *asmIndex) localize(rd []byte, opts Options) int {
	votes := map[int32]int{}
	it := seq.NewKmerIter(rd, idx.seedLen)
	nextAt := 0
	for {
		km, off, ok := it.Next()
		if !ok {
			break
		}
		if off < nextAt {
			continue
		}
		nextAt = off + opts.SeedStride
		canon, _ := km.Canonical()
		hs := idx.hits[canon]
		if len(hs) == 0 || len(hs) > opts.MaxSeedHits {
			continue
		}
		for _, si := range hs {
			votes[si]++
		}
	}
	best, bestVotes := int32(-1), 0
	for si, v := range votes {
		if v > bestVotes || (v == bestVotes && best >= 0 && si < best) {
			best, bestVotes = si, v
		}
	}
	return int(best)
}

// attributeToGenomes maps each assembly sequence to the reference genome
// explaining the most of its aligned bases (-1 when nothing aligns), using
// the same seed alignment Evaluate scores coverage with.
func attributeToGenomes(assembly [][]byte, comm *sim.Community, opts Options) []int {
	idx := buildRefIndex(comm, opts.SeedLen)
	owner := make([]int, len(assembly))
	for si, s := range assembly {
		aligned := map[int]int{}
		for _, b := range alignBlocks(s, idx, opts) {
			aligned[b.Genome] += b.seqLen()
		}
		bestGenome, bestAligned := -1, 0
		for g, v := range aligned {
			if v > bestAligned || (v == bestAligned && (bestGenome < 0 || g < bestGenome)) {
				bestGenome, bestAligned = g, v
			}
		}
		owner[si] = bestGenome
	}
	return owner
}

// AbundanceReport localizes every read onto the co-assembly and returns one
// SampleAbundance per sample, ordered by SampleID. Samples are named from
// sampleNames where provided ("sampleN" beyond the list); the report always
// covers SampleIDs 0 through the largest observed, so single-sample inputs
// yield a one-entry report. comm may be nil, in which case only the per-
// sequence localization counts are reported (no per-genome rollup). The
// report is deterministic for a fixed assembly and read order.
func AbundanceReport(assembly [][]byte, reads []seq.Read, sampleNames []string, comm *sim.Community, opts Options) []SampleAbundance {
	if opts.SeedLen <= 0 {
		opts = DefaultOptions()
	}
	numSamples := 1
	for _, r := range reads {
		if int(r.SampleID)+1 > numSamples {
			numSamples = int(r.SampleID) + 1
		}
	}
	out := make([]SampleAbundance, numSamples)
	for i := range out {
		if i < len(sampleNames) && sampleNames[i] != "" {
			out[i].Sample = sampleNames[i]
		} else {
			out[i].Sample = fmt.Sprintf("sample%d", i)
		}
		out[i].PerSeq = make([]int, len(assembly))
	}

	idx := buildAsmIndex(assembly, opts)
	for _, r := range reads {
		sa := &out[r.SampleID]
		sa.Reads++
		if si := idx.localize(r.Seq, opts); si >= 0 {
			sa.Localized++
			sa.PerSeq[si]++
		}
	}

	if comm == nil {
		return out
	}
	owner := attributeToGenomes(assembly, comm, opts)
	for i := range out {
		sa := &out[i]
		sa.PerGenome = make([]GenomeAbundance, len(comm.Genomes))
		for gi, g := range comm.Genomes {
			sa.PerGenome[gi].Name = g.Name
		}
		for si, n := range sa.PerSeq {
			if g := owner[si]; g >= 0 {
				sa.PerGenome[g].Reads += n
			}
		}
		var share float64
		for gi, g := range comm.Genomes {
			if len(g.Seq) > 0 {
				share += float64(sa.PerGenome[gi].Reads) / float64(len(g.Seq))
			}
		}
		if share > 0 {
			for gi, g := range comm.Genomes {
				if len(g.Seq) > 0 {
					sa.PerGenome[gi].Abundance = float64(sa.PerGenome[gi].Reads) / float64(len(g.Seq)) / share
				}
			}
		}
	}
	return out
}

// FormatAbundanceTable renders per-sample abundance estimates as one row per
// sample with one column per genome, for CLI and example output.
func FormatAbundanceTable(samples []SampleAbundance) string {
	if len(samples) == 0 {
		return ""
	}
	names := make([]string, 0, len(samples[0].PerGenome))
	for _, g := range samples[0].PerGenome {
		names = append(names, g.Name)
	}
	sort.Strings(names)
	out := fmt.Sprintf("%-12s %8s %9s", "Sample", "Reads", "Localized")
	for _, n := range names {
		out += fmt.Sprintf(" %12s", n)
	}
	out += "\n"
	for _, sa := range samples {
		out += fmt.Sprintf("%-12s %8d %9d", sa.Sample, sa.Reads, sa.Localized)
		byName := map[string]GenomeAbundance{}
		for _, g := range sa.PerGenome {
			byName[g.Name] = g
		}
		for _, n := range names {
			out += fmt.Sprintf(" %12.4f", byName[n].Abundance)
		}
		out += "\n"
	}
	return out
}
