// Package eval is a metaQUAST-style reference-based evaluator for assemblies
// of simulated communities. It computes the quality metrics reported in the
// paper's Table I and Figure 6: assembly length above size thresholds,
// misassembly counts, per-genome and overall genome fraction, NGA50 per
// genome, and the number of assembled ribosomal (rRNA-like) regions.
//
// The paper runs the external metaQUAST 4.3 tool; since the references here
// are the simulator's own genomes, the same metrics are computed directly.
//
// Evaluation is purely content-based: it scores whatever sequences it is
// given against the reference genomes, so the same Evaluate call compares
// contigs against scaffolds, single-library against multi-library
// round-based assemblies (see BenchmarkMultiLibraryScaffolding and
// examples/multilib), or MetaHipMer against the baseline proxies — the
// read set's library structure never enters the computation.
package eval

import (
	"fmt"
	"sort"

	"mhmgo/internal/hmm"
	"mhmgo/internal/seq"
	"mhmgo/internal/sim"
)

// Options controls evaluation.
type Options struct {
	// SeedLen is the seed length used to map assembly sequences onto the
	// reference genomes.
	SeedLen int
	// SeedStride is the sampling stride along each assembly sequence.
	SeedStride int
	// MinBlockLen is the minimum aligned block length that contributes to
	// coverage and misassembly analysis.
	MinBlockLen int
	// MaxSeedHits skips seeds occurring in more than this many reference
	// positions.
	MaxSeedHits int
	// DiagTolerance groups seed hits whose diagonal differs by at most this
	// many bases into one aligned block.
	DiagTolerance int
	// LengthThresholds are the "length >= X" rows of Table I (scaled).
	LengthThresholds []int
	// RRNAProfile counts assembled ribosomal regions when non-nil.
	RRNAProfile   *hmm.Profile
	RRNAThreshold float64
	// MisassemblyMinFraction: a sequence is misassembled if no single genome
	// explains at least this fraction of its aligned bases.
	MisassemblyMinFraction float64
}

// DefaultOptions returns evaluation defaults scaled to the simulator's
// genome sizes.
func DefaultOptions() Options {
	return Options{
		SeedLen:                21,
		SeedStride:             8,
		MinBlockLen:            100,
		MaxSeedHits:            8,
		DiagTolerance:          30,
		LengthThresholds:       []int{1000, 2500, 5000},
		RRNAThreshold:          0.5,
		MisassemblyMinFraction: 0.9,
	}
}

// GenomeReport is the per-reference-genome evaluation.
type GenomeReport struct {
	Name           string
	Length         int
	AlignedBases   int
	GenomeFraction float64
	NGA50          int
}

// Report is the full evaluation of one assembly.
type Report struct {
	Assembler       string
	NumSeqs         int
	TotalLen        int
	N50             int
	LenAtLeast      map[int]int
	Misassemblies   int
	GenomeFraction  float64
	RRNACount       int
	UnalignedSeqs   int
	PerGenome       []GenomeReport
	RuntimeSimSecs  float64
	RuntimeWallSecs float64
}

// refIndex maps canonical seeds to their reference positions.
type refIndex struct {
	seedLen int
	hits    map[seq.Kmer][]refHit
}

type refHit struct {
	Genome  int
	Pos     int
	Reverse bool
}

func buildRefIndex(comm *sim.Community, seedLen int) *refIndex {
	idx := &refIndex{seedLen: seedLen, hits: make(map[seq.Kmer][]refHit)}
	for gi, g := range comm.Genomes {
		it := seq.NewKmerIter(g.Seq, seedLen)
		for {
			km, off, ok := it.Next()
			if !ok {
				break
			}
			canon, rc := km.Canonical()
			idx.hits[canon] = append(idx.hits[canon], refHit{Genome: gi, Pos: off, Reverse: rc})
		}
	}
	return idx
}

// block is a contiguous aligned region between an assembly sequence and one
// reference genome.
type block struct {
	Genome           int
	SeqStart, SeqEnd int
	RefStart, RefEnd int
	Reverse          bool
	// Diag is the alignment diagonal the block lies on (orientation-aware);
	// two same-genome blocks on wildly different diagonals indicate a
	// rearrangement.
	Diag int
}

func (b block) seqLen() int { return b.SeqEnd - b.SeqStart }

// alignBlocks maps one assembly sequence onto the references by clustering
// seed hits along diagonals.
func alignBlocks(s []byte, idx *refIndex, opts Options) []block {
	type anchor struct {
		genome  int
		reverse bool
		diag    int
		seqPos  int
		refPos  int
	}
	var anchors []anchor
	it := seq.NewKmerIter(s, opts.SeedLen)
	nextAt := 0
	for {
		km, off, ok := it.Next()
		if !ok {
			break
		}
		if off < nextAt {
			continue
		}
		nextAt = off + opts.SeedStride
		canon, rc := km.Canonical()
		hits := idx.hits[canon]
		if len(hits) == 0 || len(hits) > opts.MaxSeedHits {
			continue
		}
		for _, h := range hits {
			reverse := rc != h.Reverse
			var diag int
			if !reverse {
				diag = h.Pos - off
			} else {
				diag = h.Pos + off
			}
			anchors = append(anchors, anchor{genome: h.Genome, reverse: reverse, diag: diag, seqPos: off, refPos: h.Pos})
		}
	}
	if len(anchors) == 0 {
		return nil
	}
	sort.Slice(anchors, func(i, j int) bool {
		a, b := anchors[i], anchors[j]
		if a.genome != b.genome {
			return a.genome < b.genome
		}
		if a.reverse != b.reverse {
			return !a.reverse
		}
		if a.diag != b.diag {
			return a.diag < b.diag
		}
		return a.seqPos < b.seqPos
	})
	var blocks []block
	cur := block{Genome: -1}
	curDiag := 0
	flush := func() {
		if cur.Genome >= 0 && cur.seqLen() >= opts.MinBlockLen {
			blocks = append(blocks, cur)
		}
		cur = block{Genome: -1}
	}
	for _, a := range anchors {
		if cur.Genome == a.genome && cur.Reverse == a.reverse && abs(a.diag-curDiag) <= opts.DiagTolerance && a.seqPos <= cur.SeqEnd+opts.DiagTolerance+opts.SeedStride {
			if a.seqPos+opts.SeedLen > cur.SeqEnd {
				cur.SeqEnd = a.seqPos + opts.SeedLen
			}
			if a.refPos < cur.RefStart {
				cur.RefStart = a.refPos
			}
			if a.refPos+opts.SeedLen > cur.RefEnd {
				cur.RefEnd = a.refPos + opts.SeedLen
			}
			continue
		}
		flush()
		cur = block{
			Genome:   a.genome,
			Reverse:  a.reverse,
			SeqStart: a.seqPos,
			SeqEnd:   a.seqPos + opts.SeedLen,
			RefStart: a.refPos,
			RefEnd:   a.refPos + opts.SeedLen,
			Diag:     a.diag,
		}
		curDiag = a.diag
	}
	flush()
	return blocks
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Evaluate computes the report for an assembly (a set of contig or scaffold
// sequences) against the simulated community it was assembled from.
func Evaluate(name string, assembly [][]byte, comm *sim.Community, opts Options) Report {
	if opts.SeedLen <= 0 {
		opts = DefaultOptions()
	}
	rep := Report{Assembler: name, LenAtLeast: make(map[int]int)}
	rep.NumSeqs = len(assembly)

	lengths := make([]int, 0, len(assembly))
	for _, s := range assembly {
		rep.TotalLen += len(s)
		lengths = append(lengths, len(s))
		for _, thr := range opts.LengthThresholds {
			if len(s) >= thr {
				rep.LenAtLeast[thr] += len(s)
			}
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(lengths)))
	acc := 0
	for _, l := range lengths {
		acc += l
		if acc*2 >= rep.TotalLen {
			rep.N50 = l
			break
		}
	}

	idx := buildRefIndex(comm, opts.SeedLen)
	covered := make([][]bool, len(comm.Genomes))
	for gi, g := range comm.Genomes {
		covered[gi] = make([]bool, len(g.Seq))
	}
	// Aligned block lengths per genome, used for NGA50.
	blockLens := make([][]int, len(comm.Genomes))

	for _, s := range assembly {
		blocks := alignBlocks(s, idx, opts)
		if len(blocks) == 0 {
			rep.UnalignedSeqs++
			continue
		}
		// Coverage and per-genome block lengths.
		alignedPerGenome := make(map[int]int)
		totalAligned := 0
		for _, b := range blocks {
			g := comm.Genomes[b.Genome]
			lo, hi := b.RefStart, b.RefEnd
			if lo < 0 {
				lo = 0
			}
			if hi > len(g.Seq) {
				hi = len(g.Seq)
			}
			for p := lo; p < hi; p++ {
				covered[b.Genome][p] = true
			}
			blockLens[b.Genome] = append(blockLens[b.Genome], b.seqLen())
			alignedPerGenome[b.Genome] += b.seqLen()
			totalAligned += b.seqLen()
		}
		// Misassembly detection. Like metaQUAST, pick the best-explaining
		// reference genome for the sequence; the sequence is misassembled if
		// a substantial part of it aligns to a *different* genome at
		// positions the best genome does not explain (a chimera), or if the
		// best genome's own blocks imply a rearrangement. Conserved regions
		// shared between genomes (e.g. rRNA) overlap the best genome's
		// blocks and are therefore not penalized.
		bestGenome, bestAligned := -1, 0
		for g, v := range alignedPerGenome {
			if v > bestAligned || (v == bestAligned && (bestGenome < 0 || g < bestGenome)) {
				bestGenome, bestAligned = g, v
			}
		}
		if bestGenome >= 0 {
			coveredByBest := make([]bool, len(s))
			for _, b := range blocks {
				if b.Genome != bestGenome {
					continue
				}
				for p := b.SeqStart; p < b.SeqEnd && p < len(s); p++ {
					coveredByBest[p] = true
				}
			}
			foreignUncovered := 0
			for _, b := range blocks {
				if b.Genome == bestGenome {
					continue
				}
				for p := b.SeqStart; p < b.SeqEnd && p < len(s); p++ {
					if !coveredByBest[p] {
						foreignUncovered++
					}
				}
			}
			_ = totalAligned
			if foreignUncovered >= 2*opts.MinBlockLen {
				rep.Misassemblies++
			} else if sameGenomeInconsistent(blocks, bestGenome, opts) {
				rep.Misassemblies++
			}
		}
	}

	// Per-genome reports. Strain genomes share most of their sequence with
	// their parents; they are still evaluated independently.
	var fracSum float64
	totalRefBases, totalCovered := 0, 0
	for gi, g := range comm.Genomes {
		cov := 0
		for _, c := range covered[gi] {
			if c {
				cov++
			}
		}
		gr := GenomeReport{Name: g.Name, Length: len(g.Seq), AlignedBases: cov}
		if len(g.Seq) > 0 {
			gr.GenomeFraction = float64(cov) / float64(len(g.Seq))
		}
		gr.NGA50 = nga50(blockLens[gi], len(g.Seq))
		rep.PerGenome = append(rep.PerGenome, gr)
		fracSum += gr.GenomeFraction
		totalRefBases += len(g.Seq)
		totalCovered += cov
	}
	if totalRefBases > 0 {
		rep.GenomeFraction = float64(totalCovered) / float64(totalRefBases)
	}
	_ = fracSum

	if opts.RRNAProfile != nil {
		rep.RRNACount = opts.RRNAProfile.CountHits(assembly, opts.RRNAThreshold)
	}
	return rep
}

// sameGenomeInconsistent reports whether two large blocks of the chosen
// genome imply a rearrangement: opposite orientations or alignment diagonals
// that are too far apart to be a mere indel or unclosed gap.
func sameGenomeInconsistent(blocks []block, genome int, opts Options) bool {
	const slack = 1000
	for i := 0; i < len(blocks); i++ {
		for j := i + 1; j < len(blocks); j++ {
			a, b := blocks[i], blocks[j]
			if a.Genome != genome || b.Genome != genome ||
				a.seqLen() < 2*opts.MinBlockLen || b.seqLen() < 2*opts.MinBlockLen {
				continue
			}
			if a.Reverse != b.Reverse {
				return true
			}
			if abs(a.Diag-b.Diag) > slack {
				return true
			}
		}
	}
	return false
}

// nga50 computes the NGA50 of the aligned block lengths relative to the
// reference genome length: the block length at which the cumulative aligned
// length reaches half the genome length (0 if it never does).
func nga50(blockLens []int, genomeLen int) int {
	if genomeLen == 0 || len(blockLens) == 0 {
		return 0
	}
	sorted := append([]int(nil), blockLens...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	acc := 0
	for _, l := range sorted {
		acc += l
		if acc*2 >= genomeLen {
			return l
		}
	}
	return 0
}

// FormatTable renders a set of reports as the paper's Table I layout.
func FormatTable(reports []Report, thresholds []int) string {
	out := "Assembler        "
	for _, thr := range thresholds {
		out += fmt.Sprintf(" len>=%-6d", thr)
	}
	out += "  MSA  rRNA  GenFrac  N50     Runtime(s)\n"
	for _, r := range reports {
		out += fmt.Sprintf("%-17s", r.Assembler)
		for _, thr := range thresholds {
			out += fmt.Sprintf(" %-10d", r.LenAtLeast[thr])
		}
		out += fmt.Sprintf("  %-4d %-5d %-8.3f %-7d %.2f\n",
			r.Misassemblies, r.RRNACount, r.GenomeFraction, r.N50, r.RuntimeSimSecs)
	}
	return out
}
