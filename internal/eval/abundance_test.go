package eval

import (
	"math"
	"reflect"
	"testing"

	"mhmgo/internal/sim"
)

// abundanceTestCommunity builds a small strain-free community whose genomes
// are long enough for the default seed geometry.
func abundanceTestCommunity(t *testing.T) *sim.Community {
	t.Helper()
	cfg := sim.DefaultCommunityConfig()
	cfg.NumGenomes = 3
	cfg.MeanGenomeLen = 8000
	cfg.LenVariation = 0.1
	cfg.StrainFraction = 0
	cfg.RepeatLen = 0
	cfg.Seed = 23
	return sim.GenerateCommunity(cfg)
}

// TestAbundanceReportRecoversDrift scores the abundance estimator against
// the ground truth it was designed to recover: two samples of the same
// community, one with genome 0 scaled up 4x, localized onto a perfect
// assembly (the reference genomes themselves). The drifted sample's estimate
// for genome 0 must exceed the baseline sample's, and every estimate must be
// a valid unit-sum profile.
func TestAbundanceReportRecoversDrift(t *testing.T) {
	c := abundanceTestCommunity(t)
	rc := sim.ReadConfig{
		ReadLen: 100, InsertSize: 280, InsertStd: 25, ErrorRate: 0.005, Coverage: 12, Seed: 31,
		Samples: []sim.SampleConfig{
			{Name: "base"},
			{Name: "bloom", AbundanceScale: []float64{4, 1, 1}},
		},
	}
	reads := sim.SimulateReads(c, rc)
	assembly := make([][]byte, len(c.Genomes))
	for i, g := range c.Genomes {
		assembly[i] = g.Seq
	}

	report := AbundanceReport(assembly, reads, []string{"base", "bloom"}, c, DefaultOptions())
	if len(report) != 2 {
		t.Fatalf("report covers %d samples, want 2", len(report))
	}
	base, bloom := report[0], report[1]
	if base.Sample != "base" || bloom.Sample != "bloom" {
		t.Fatalf("sample names %q, %q", base.Sample, bloom.Sample)
	}
	for _, sa := range report {
		if sa.Reads == 0 || sa.Localized == 0 {
			t.Fatalf("sample %s localized %d of %d reads; expected a perfect assembly to localize plenty",
				sa.Sample, sa.Localized, sa.Reads)
		}
		if sa.Localized > sa.Reads {
			t.Fatalf("sample %s localized more reads (%d) than it has (%d)", sa.Sample, sa.Localized, sa.Reads)
		}
		var sum float64
		for _, g := range sa.PerGenome {
			if g.Abundance < 0 {
				t.Errorf("sample %s genome %s has negative abundance %v", sa.Sample, g.Name, g.Abundance)
			}
			sum += g.Abundance
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("sample %s abundance estimates sum to %v, want 1", sa.Sample, sum)
		}
	}
	if bloom.PerGenome[0].Abundance <= base.PerGenome[0].Abundance {
		t.Errorf("4x-scaled genome estimated at %v in the drifted sample vs %v in the baseline; drift not recovered",
			bloom.PerGenome[0].Abundance, base.PerGenome[0].Abundance)
	}
	// The scaled sample's genome-0 estimate should also be the clear
	// majority of its own profile (4/(4+1+1) of the read mass, roughly).
	if bloom.PerGenome[0].Abundance < 0.45 {
		t.Errorf("4x-scaled genome estimated at %v of its sample, want the dominant share", bloom.PerGenome[0].Abundance)
	}

	// Determinism: the same inputs must produce an identical report.
	again := AbundanceReport(assembly, reads, []string{"base", "bloom"}, c, DefaultOptions())
	if !reflect.DeepEqual(report, again) {
		t.Error("AbundanceReport is not deterministic across calls")
	}
}

// TestAbundanceReportWithoutCommunity pins the nil-community mode the CLI
// uses on real (reference-free) inputs: per-sequence localization counts are
// reported, names fall back to "sampleN", and no per-genome rollup appears.
func TestAbundanceReportWithoutCommunity(t *testing.T) {
	c := abundanceTestCommunity(t)
	rc := sim.ReadConfig{
		ReadLen: 100, InsertSize: 280, InsertStd: 25, TotalPairs: 200, Seed: 31,
		Samples: []sim.SampleConfig{{}, {}},
	}
	reads := sim.SimulateReads(c, rc)
	assembly := [][]byte{c.Genomes[0].Seq, c.Genomes[1].Seq}

	report := AbundanceReport(assembly, reads, nil, nil, Options{})
	if len(report) != 2 {
		t.Fatalf("report covers %d samples, want 2", len(report))
	}
	for i, sa := range report {
		want := "sample0"
		if i == 1 {
			want = "sample1"
		}
		if sa.Sample != want {
			t.Errorf("sample %d named %q, want %q", i, sa.Sample, want)
		}
		if len(sa.PerGenome) != 0 {
			t.Errorf("sample %d has a per-genome rollup without a community", i)
		}
		if len(sa.PerSeq) != len(assembly) {
			t.Fatalf("sample %d PerSeq has %d entries, want %d", i, len(sa.PerSeq), len(assembly))
		}
		sum := 0
		for _, n := range sa.PerSeq {
			sum += n
		}
		if sum != sa.Localized {
			t.Errorf("sample %d PerSeq sums to %d, want Localized %d", i, sum, sa.Localized)
		}
	}

	// Reads carrying only SampleID 0 still yield a one-entry report.
	single := AbundanceReport(assembly, reads[:4], nil, nil, Options{})
	_ = single
	for _, r := range reads[:4] {
		if r.SampleID != 0 {
			return // sample 0's block is at least 4 reads in this config; skip if not
		}
	}
	if len(single) != 1 {
		t.Errorf("single-sample reads produced a %d-entry report, want 1", len(single))
	}
}
