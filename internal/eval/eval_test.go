package eval

import (
	"strings"
	"testing"

	"mhmgo/internal/hmm"
	"mhmgo/internal/seq"
	"mhmgo/internal/sim"
)

func testCommunity() *sim.Community {
	return sim.GenerateCommunity(sim.CommunityConfig{
		NumGenomes: 4, MeanGenomeLen: 5000, RRNALen: 200, RRNADivergence: 0.02,
		StrainFraction: 0, Seed: 55,
	})
}

func TestPerfectAssemblyScoresPerfectly(t *testing.T) {
	comm := testCommunity()
	var assembly [][]byte
	for _, g := range comm.Genomes {
		assembly = append(assembly, g.Seq)
	}
	opts := DefaultOptions()
	opts.RRNAProfile = hmm.BuildProfile([][]byte{comm.RRNAMarker}, 0.9)
	rep := Evaluate("perfect", assembly, comm, opts)
	if rep.GenomeFraction < 0.98 {
		t.Errorf("genome fraction of the reference against itself = %v", rep.GenomeFraction)
	}
	if rep.Misassemblies != 0 {
		t.Errorf("perfect assembly has %d misassemblies", rep.Misassemblies)
	}
	if rep.RRNACount != len(comm.Genomes) {
		t.Errorf("rRNA count = %d, want %d", rep.RRNACount, len(comm.Genomes))
	}
	if rep.NumSeqs != 4 || rep.TotalLen != comm.TotalBases() {
		t.Errorf("basic stats wrong: %+v", rep)
	}
	for _, g := range rep.PerGenome {
		if g.GenomeFraction < 0.98 {
			t.Errorf("genome %s fraction %v", g.Name, g.GenomeFraction)
		}
		if g.NGA50 < g.Length/2 {
			t.Errorf("genome %s NGA50 %d for a perfect assembly of length %d", g.Name, g.NGA50, g.Length)
		}
	}
}

func TestFragmentedAssemblyLowerNGA50(t *testing.T) {
	comm := testCommunity()
	var whole, pieces [][]byte
	for _, g := range comm.Genomes {
		whole = append(whole, g.Seq)
		for start := 0; start < len(g.Seq); start += 800 {
			end := start + 800
			if end > len(g.Seq) {
				end = len(g.Seq)
			}
			pieces = append(pieces, g.Seq[start:end])
		}
	}
	opts := DefaultOptions()
	full := Evaluate("full", whole, comm, opts)
	frag := Evaluate("frag", pieces, comm, opts)
	if frag.PerGenome[0].NGA50 >= full.PerGenome[0].NGA50 {
		t.Errorf("fragmented NGA50 (%d) should be below full (%d)",
			frag.PerGenome[0].NGA50, full.PerGenome[0].NGA50)
	}
	if frag.GenomeFraction < 0.9 {
		t.Errorf("fragmented assembly still covers the genomes, got %v", frag.GenomeFraction)
	}
	if full.N50 <= frag.N50 {
		t.Errorf("N50 ordering wrong: %d vs %d", full.N50, frag.N50)
	}
}

func TestChimericContigCountsAsMisassembly(t *testing.T) {
	comm := testCommunity()
	g0, g1 := comm.Genomes[0].Seq, comm.Genomes[1].Seq
	chimera := append(append([]byte(nil), g0[:1500]...), g1[1000:2500]...)
	opts := DefaultOptions()
	rep := Evaluate("chimera", [][]byte{chimera}, comm, opts)
	if rep.Misassemblies != 1 {
		t.Errorf("chimeric contig not flagged: %+v", rep.Misassemblies)
	}
}

func TestRearrangedContigCountsAsMisassembly(t *testing.T) {
	comm := testCommunity()
	g := comm.Genomes[2].Seq
	// Join two distant segments of the same genome out of order.
	rearranged := append(append([]byte(nil), g[3000:4500]...), g[0:1500]...)
	opts := DefaultOptions()
	rep := Evaluate("rearranged", [][]byte{rearranged}, comm, opts)
	if rep.Misassemblies != 1 {
		t.Errorf("rearranged contig not flagged: misassemblies=%d", rep.Misassemblies)
	}
}

func TestUnalignedSequences(t *testing.T) {
	comm := testCommunity()
	junk := []byte(strings.Repeat("ACGT", 300))
	rep := Evaluate("junk", [][]byte{junk}, comm, DefaultOptions())
	if rep.UnalignedSeqs != 1 {
		t.Errorf("junk sequence should be unaligned: %+v", rep)
	}
	if rep.GenomeFraction > 0.05 {
		t.Errorf("junk should not cover the references: %v", rep.GenomeFraction)
	}
}

func TestLengthThresholdsAndTable(t *testing.T) {
	comm := testCommunity()
	assembly := [][]byte{comm.Genomes[0].Seq, comm.Genomes[1].Seq[:1200], comm.Genomes[2].Seq[:300]}
	opts := DefaultOptions()
	opts.LengthThresholds = []int{1000, 2000}
	rep := Evaluate("mix", assembly, comm, opts)
	if rep.LenAtLeast[1000] < len(comm.Genomes[0].Seq)+1200 {
		t.Errorf("len>=1000 = %d", rep.LenAtLeast[1000])
	}
	if rep.LenAtLeast[2000] < len(comm.Genomes[0].Seq) || rep.LenAtLeast[2000] >= rep.LenAtLeast[1000] {
		t.Errorf("len>=2000 = %d", rep.LenAtLeast[2000])
	}
	table := FormatTable([]Report{rep}, opts.LengthThresholds)
	if !strings.Contains(table, "mix") || !strings.Contains(table, "GenFrac") {
		t.Errorf("FormatTable output unexpected:\n%s", table)
	}
}

func TestReverseComplementContigStillCovers(t *testing.T) {
	comm := testCommunity()
	rc := seq.ReverseComplement(comm.Genomes[0].Seq)
	rep := Evaluate("rc", [][]byte{rc}, comm, DefaultOptions())
	if rep.PerGenome[0].GenomeFraction < 0.98 {
		t.Errorf("reverse-complement assembly not recognized: %v", rep.PerGenome[0].GenomeFraction)
	}
	if rep.Misassemblies != 0 {
		t.Errorf("reverse-complement contig flagged as misassembled")
	}
}

func TestNGA50Helper(t *testing.T) {
	if nga50(nil, 1000) != 0 {
		t.Error("empty block list should give 0")
	}
	if nga50([]int{600, 300, 200}, 1000) != 600 {
		t.Error("nga50 of dominant block wrong")
	}
	if nga50([]int{100, 100}, 1000) != 0 {
		t.Error("blocks not reaching half the genome should give 0")
	}
}
