package sim

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"mhmgo/internal/seq"
)

// normTestCommunity builds a small community big enough to satisfy every
// insert geometry the normalization tests use.
func normTestCommunity(t *testing.T) *Community {
	t.Helper()
	cfg := DefaultCommunityConfig()
	cfg.NumGenomes = 3
	cfg.MeanGenomeLen = 9000
	cfg.StrainFraction = 0
	cfg.Seed = 17
	return GenerateCommunity(cfg)
}

func readsEqual(a, b []seq.Read) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].LibID != b[i].LibID || a[i].SampleID != b[i].SampleID ||
			!bytes.Equal(a[i].Seq, b[i].Seq) || !bytes.Equal(a[i].Qual, b[i].Qual) {
			return false
		}
	}
	return true
}

// TestNormalizedEmptyLibraryInheritsGeometry pins the single-empty-library
// edge case: Libraries: []LibraryConfig{{}} must describe the same library as
// the no-libraries shorthand, not silently revert to the global defaults.
func TestNormalizedEmptyLibraryInheritsGeometry(t *testing.T) {
	cfg := ReadConfig{
		ReadLen:    120,
		InsertSize: 500,
		InsertStd:  40,
		ErrorRate:  0.01,
		Coverage:   4,
		Seed:       7,
		Libraries:  []LibraryConfig{{}},
	}
	lib := cfg.Normalized().Libraries[0]
	if lib.InsertSize != 500 {
		t.Errorf("empty library InsertSize = %d, want inherited 500", lib.InsertSize)
	}
	if lib.InsertStd != 40 {
		t.Errorf("empty library InsertStd = %d, want inherited 40", lib.InsertStd)
	}
	if lib.ReadLen != 120 || lib.Name != "lib0" || lib.CoverageShare != 1 {
		t.Errorf("empty library normalized to %+v", lib)
	}

	// The inherited geometry must also drive emission: an empty library and
	// an explicitly spelled-out copy of the parent geometry produce
	// byte-identical reads (both derive the same per-library seed).
	c := normTestCommunity(t)
	implicit := SimulateReads(c, cfg)
	explicit := cfg
	explicit.Libraries = []LibraryConfig{{ReadLen: 120, InsertSize: 500, InsertStd: 40}}
	if !readsEqual(implicit, SimulateReads(c, explicit)) {
		t.Error("empty library emits different reads than the spelled-out parent geometry")
	}

	// A library that sets only its std keeps it while inheriting the insert.
	cfg.Libraries = []LibraryConfig{{InsertStd: 33}}
	lib = cfg.Normalized().Libraries[0]
	if lib.InsertSize != 500 || lib.InsertStd != 33 {
		t.Errorf("partial library normalized to insert %d±%d, want 500±33", lib.InsertSize, lib.InsertStd)
	}

	// A zero-variance parent cannot be inherited (per-library zero means
	// unset), so the usual InsertSize/10 default applies.
	cfg.InsertStd = 0
	cfg.Libraries = []LibraryConfig{{}}
	lib = cfg.Normalized().Libraries[0]
	if lib.InsertStd != 50 {
		t.Errorf("library under a zero-variance parent got std %d, want 50 (insert/10)", lib.InsertStd)
	}

	// A library with its own InsertSize does NOT inherit the parent std: the
	// InsertSize/10 default scales with its own geometry.
	cfg.InsertStd = 40
	cfg.Libraries = []LibraryConfig{{InsertSize: 1500}}
	lib = cfg.Normalized().Libraries[0]
	if lib.InsertStd != 150 {
		t.Errorf("library with own insert got std %d, want 150 (own insert/10)", lib.InsertStd)
	}
}

// TestNormalizedInheritedInsertClamped checks that the 2*ReadLen clamp is
// re-applied after inheritance when the library reads are longer than the
// parent's.
func TestNormalizedInheritedInsertClamped(t *testing.T) {
	cfg := ReadConfig{
		ReadLen:    100,
		InsertSize: 220,
		Coverage:   4,
		Libraries:  []LibraryConfig{{ReadLen: 150}},
	}
	lib := cfg.Normalized().Libraries[0]
	if lib.InsertSize != 300 {
		t.Errorf("inherited InsertSize = %d, want 300 (clamped to 2*library ReadLen)", lib.InsertSize)
	}
	if lib.InsertStd != 30 {
		t.Errorf("InsertStd = %d, want 30 (clamped insert / 10)", lib.InsertStd)
	}
}

// TestNormalizedStdAndErrorRateZeroMeaningful pins the top-level rule that
// zero is a meaningful value for InsertStd (fixed-length fragments) and
// ErrorRate (perfect reads): only negative values are replaced.
func TestNormalizedStdAndErrorRateZeroMeaningful(t *testing.T) {
	norm := ReadConfig{ReadLen: 100, InsertSize: 280, InsertStd: 0, ErrorRate: 0, Coverage: 1}.Normalized()
	if norm.InsertStd != 0 {
		t.Errorf("InsertStd 0 replaced with %d; zero variance must survive", norm.InsertStd)
	}
	if norm.ErrorRate != 0 {
		t.Errorf("ErrorRate 0 replaced with %v; error-free must survive", norm.ErrorRate)
	}
	norm = ReadConfig{ReadLen: 100, InsertSize: 280, InsertStd: -1, ErrorRate: -0.5, Coverage: 1}.Normalized()
	if norm.InsertStd != seq.DefaultInsertStd {
		t.Errorf("negative InsertStd became %d, want default %d", norm.InsertStd, seq.DefaultInsertStd)
	}
	if norm.ErrorRate != 0 {
		t.Errorf("negative ErrorRate became %v, want 0", norm.ErrorRate)
	}
	// The insert default is applied before the clamp, so long reads push an
	// unset insert up to 2*ReadLen rather than keeping the 280 default.
	norm = ReadConfig{ReadLen: 200, Coverage: 1}.Normalized()
	if norm.InsertSize != 400 {
		t.Errorf("unset InsertSize with 200 bp reads = %d, want 400", norm.InsertSize)
	}
}

// TestNormalizedIdempotent drives Normalized over the edge cases — zero
// coverage shares, share normalization, inheritance, clamps — and requires a
// second application to be the identity. Without this, SimulateReads(cfg)
// and SimulateReads(cfg.Normalized()) could emit different reads.
func TestNormalizedIdempotent(t *testing.T) {
	cases := []struct {
		name string
		cfg  ReadConfig
	}{
		{"zero value", ReadConfig{}},
		{"shorthand", ReadConfig{ReadLen: 80, InsertSize: 200, ErrorRate: 0.01, Coverage: 10, Seed: 3}},
		{"zero variance", ReadConfig{ReadLen: 100, InsertSize: 300, InsertStd: 0, Coverage: 5}},
		{"total pairs", ReadConfig{ReadLen: 100, TotalPairs: 500, Seed: 5}},
		{"single empty library", ReadConfig{ReadLen: 90, InsertSize: 400, InsertStd: 35, Coverage: 6,
			Libraries: []LibraryConfig{{}}}},
		{"all shares unset", ReadConfig{ReadLen: 80, Coverage: 9, Seed: 2, Libraries: []LibraryConfig{
			{InsertSize: 300}, {InsertSize: 900}, {InsertSize: 1500}}}},
		{"thirds", ReadConfig{ReadLen: 80, Coverage: 9, Libraries: []LibraryConfig{
			{InsertSize: 300, CoverageShare: 1}, {InsertSize: 900, CoverageShare: 1}, {InsertSize: 1500, CoverageShare: 1}}}},
		{"unset share remainder", ReadConfig{ReadLen: 80, Coverage: 9, Libraries: []LibraryConfig{
			{InsertSize: 300, CoverageShare: 0.75}, {InsertSize: 1500}}}},
		{"over-claiming shares", ReadConfig{ReadLen: 80, Coverage: 9, Libraries: []LibraryConfig{
			{InsertSize: 300, CoverageShare: 2}, {InsertSize: 1500}}}},
		{"clamped inheritance", ReadConfig{ReadLen: 100, InsertSize: 220, Coverage: 4,
			Libraries: []LibraryConfig{{ReadLen: 150}, {InsertSize: 900, CoverageShare: 0.5}}}},
		{"single empty sample", ReadConfig{ReadLen: 80, InsertSize: 220, Coverage: 6, Seed: 4,
			Samples: []SampleConfig{{}}}},
		{"drifted samples", ReadConfig{ReadLen: 80, InsertSize: 220, Coverage: 6, Seed: 4,
			Samples: []SampleConfig{{}, {AbundanceSigma: 0.5}, {AbundanceScale: []float64{2, 0.5}}}}},
		{"contaminated sample shares", ReadConfig{ReadLen: 80, InsertSize: 220, Coverage: 6, Seed: 4,
			Samples: []SampleConfig{{CoverageShare: 0.7}, {ContaminantFraction: 0.1}}}},
		{"samples with libraries", ReadConfig{ReadLen: 80, Coverage: 6, Seed: 4,
			Libraries: []LibraryConfig{{InsertSize: 300, CoverageShare: 0.75}, {InsertSize: 900}},
			Samples:   []SampleConfig{{}, {AbundanceSigma: 0.3}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			once := tc.cfg.Normalized()
			twice := once.Normalized()
			if !reflect.DeepEqual(once, twice) {
				t.Fatalf("Normalized is not idempotent:\n once: %+v\ntwice: %+v", once, twice)
			}
			var sum float64
			for _, lib := range once.Libraries {
				if lib.CoverageShare <= 0 {
					t.Errorf("library %s normalized to share %v; must be positive", lib.Name, lib.CoverageShare)
				}
				sum += lib.CoverageShare
			}
			if len(once.Libraries) > 0 && math.Abs(sum-1) > 1e-9 {
				t.Errorf("normalized shares sum to %v, want 1", sum)
			}
		})
	}

	// Emission-level equivalence: feeding the normalized config back in must
	// reproduce the original run byte for byte.
	c := normTestCommunity(t)
	for _, tc := range cases {
		if tc.cfg.ReadLen == 0 {
			continue // the zero-value config simulates at default coverage; skip the expensive run
		}
		if !readsEqual(SimulateReads(c, tc.cfg), SimulateReads(c, tc.cfg.Normalized())) {
			t.Errorf("%s: SimulateReads(cfg) differs from SimulateReads(cfg.Normalized())", tc.name)
		}
	}
}
