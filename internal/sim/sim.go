// Package sim implements MGSim, the synthetic metagenome generator the paper
// introduces for its weak-scaling study, extended here to stand in for all
// of the paper's datasets (MG64, Twitchell Wetlands lanes) since the real
// multi-terabyte read sets are not available in this environment.
//
// A Community is a set of reference genomes with relative abundances drawn
// from a log-normal distribution (as in the paper). Genomes contain planted
// conserved "ribosomal" marker regions shared (with small mutations) across
// all genomes, shared repeat segments, and optional SNP strain pairs — the
// features that make metagenome assembly harder than single-genome assembly.
// A WGSim-like simulator then produces paired-end reads with per-base errors
// and quality strings.
package sim

import (
	"fmt"
	"math"
	"math/rand"

	"mhmgo/internal/seq"
)

// Genome is one reference organism in a simulated community.
type Genome struct {
	Name      string
	Seq       []byte
	Abundance float64 // relative abundance, normalized to sum to 1 over the community
	// RRNAPositions are the start offsets of planted conserved marker copies.
	RRNAPositions []int
	// StrainOf is the name of the genome this one is a SNP strain of, or "".
	StrainOf string
}

// Community is a simulated metagenome: the reference genomes plus the
// conserved marker sequence planted into each of them.
type Community struct {
	Genomes    []Genome
	RRNAMarker []byte
}

// TotalBases returns the summed length of all reference genomes.
func (c *Community) TotalBases() int {
	n := 0
	for _, g := range c.Genomes {
		n += len(g.Seq)
	}
	return n
}

// GenomeByName returns the genome with the given name, or nil.
func (c *Community) GenomeByName(name string) *Genome {
	for i := range c.Genomes {
		if c.Genomes[i].Name == name {
			return &c.Genomes[i]
		}
	}
	return nil
}

// CommunityConfig controls community generation.
type CommunityConfig struct {
	// NumGenomes is the number of distinct organisms.
	NumGenomes int
	// MeanGenomeLen is the average genome length in bases; individual genome
	// lengths vary uniformly by ±LenVariation (a fraction, e.g. 0.3).
	MeanGenomeLen int
	LenVariation  float64
	// AbundanceSigma is the sigma of the log-normal relative-abundance
	// distribution (the paper samples abundances log-normally).
	AbundanceSigma float64
	// RRNALen is the length of the conserved marker planted into every
	// genome; RRNACopies is how many copies each genome receives.
	RRNALen    int
	RRNACopies int
	// RRNADivergence is the per-base mutation rate applied to the marker in
	// each genome (conserved but not identical).
	RRNADivergence float64
	// RepeatLen/RepeatCopies plant a shared repeat segment into this many
	// genomes, creating inter-genome ambiguity.
	RepeatLen    int
	RepeatCopies int
	// StrainFraction is the fraction of genomes that are SNP strains of
	// another genome (polymorphism within species).
	StrainFraction float64
	// StrainSNPRate is the per-base SNP rate between a strain and its parent.
	StrainSNPRate float64
	// Seed seeds the deterministic generator.
	Seed int64
}

// DefaultCommunityConfig returns a small but structurally realistic
// community configuration.
func DefaultCommunityConfig() CommunityConfig {
	return CommunityConfig{
		NumGenomes:     8,
		MeanGenomeLen:  20000,
		LenVariation:   0.3,
		AbundanceSigma: 1.0,
		RRNALen:        400,
		RRNACopies:     1,
		RRNADivergence: 0.02,
		RepeatLen:      300,
		RepeatCopies:   3,
		StrainFraction: 0.1,
		StrainSNPRate:  0.01,
		Seed:           1,
	}
}

func (cfg CommunityConfig) withDefaults() CommunityConfig {
	def := DefaultCommunityConfig()
	if cfg.NumGenomes <= 0 {
		cfg.NumGenomes = def.NumGenomes
	}
	if cfg.MeanGenomeLen <= 0 {
		cfg.MeanGenomeLen = def.MeanGenomeLen
	}
	if cfg.LenVariation < 0 || cfg.LenVariation >= 1 {
		cfg.LenVariation = def.LenVariation
	}
	if cfg.AbundanceSigma <= 0 {
		cfg.AbundanceSigma = def.AbundanceSigma
	}
	if cfg.RRNALen <= 0 {
		cfg.RRNALen = def.RRNALen
	}
	if cfg.RRNACopies <= 0 {
		cfg.RRNACopies = def.RRNACopies
	}
	if cfg.RRNADivergence < 0 {
		cfg.RRNADivergence = def.RRNADivergence
	}
	if cfg.RepeatLen < 0 {
		cfg.RepeatLen = 0
	}
	if cfg.StrainSNPRate <= 0 {
		cfg.StrainSNPRate = def.StrainSNPRate
	}
	return cfg
}

func randomBases(r *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = seq.BaseToChar(byte(r.Intn(4)))
	}
	return out
}

func mutate(r *rand.Rand, s []byte, rate float64) []byte {
	out := append([]byte(nil), s...)
	for i := range out {
		if r.Float64() < rate {
			out[i] = seq.BaseToChar(byte(r.Intn(4)))
		}
	}
	return out
}

// GenerateCommunity builds a deterministic synthetic community.
func GenerateCommunity(cfg CommunityConfig) *Community {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	marker := randomBases(r, cfg.RRNALen)
	repeat := randomBases(r, cfg.RepeatLen)

	c := &Community{RRNAMarker: marker}
	abundances := make([]float64, cfg.NumGenomes)
	var sum float64
	for i := range abundances {
		abundances[i] = math.Exp(r.NormFloat64() * cfg.AbundanceSigma)
		sum += abundances[i]
	}

	numStrains := int(float64(cfg.NumGenomes) * cfg.StrainFraction)
	for i := 0; i < cfg.NumGenomes; i++ {
		name := fmt.Sprintf("genome%03d", i)
		g := Genome{Name: name, Abundance: abundances[i] / sum}
		if i >= cfg.NumGenomes-numStrains && i > 0 {
			// Strain of an earlier genome: copy with SNPs.
			parent := c.Genomes[r.Intn(i)]
			g.Seq = mutate(r, parent.Seq, cfg.StrainSNPRate)
			g.StrainOf = parent.Name
			g.RRNAPositions = append([]int(nil), parent.RRNAPositions...)
			c.Genomes = append(c.Genomes, g)
			continue
		}
		length := cfg.MeanGenomeLen
		if cfg.LenVariation > 0 {
			span := int(float64(cfg.MeanGenomeLen) * cfg.LenVariation)
			length += r.Intn(2*span+1) - span
		}
		if length < 4*cfg.RRNALen {
			length = 4 * cfg.RRNALen
		}
		g.Seq = randomBases(r, length)
		// Plant conserved marker copies.
		for copyIdx := 0; copyIdx < cfg.RRNACopies; copyIdx++ {
			m := mutate(r, marker, cfg.RRNADivergence)
			pos := r.Intn(length - len(m))
			copy(g.Seq[pos:], m)
			g.RRNAPositions = append(g.RRNAPositions, pos)
		}
		// Plant shared repeats into the first RepeatCopies genomes.
		if cfg.RepeatLen > 0 && i < cfg.RepeatCopies {
			pos := r.Intn(length - cfg.RepeatLen)
			copy(g.Seq[pos:], repeat)
		}
		c.Genomes = append(c.Genomes, g)
	}
	return c
}

// ReadConfig controls paired-end read simulation (WGSim-like).
type ReadConfig struct {
	// ReadLen is the length of each read of a pair.
	ReadLen int
	// InsertSize and InsertStd describe the fragment-length distribution.
	InsertSize int
	InsertStd  int
	// ErrorRate is the per-base substitution error probability.
	ErrorRate float64
	// Coverage is the mean fold-coverage of the community (weighted by
	// abundance); TotalPairs overrides it when > 0.
	Coverage   float64
	TotalPairs int
	// Seed seeds the deterministic generator.
	Seed int64
}

// DefaultReadConfig returns a typical short-read configuration.
func DefaultReadConfig() ReadConfig {
	return ReadConfig{
		ReadLen:    100,
		InsertSize: 300,
		InsertStd:  30,
		ErrorRate:  0.01,
		Coverage:   20,
		Seed:       2,
	}
}

func (cfg ReadConfig) withDefaults() ReadConfig {
	def := DefaultReadConfig()
	if cfg.ReadLen <= 0 {
		cfg.ReadLen = def.ReadLen
	}
	if cfg.InsertSize <= 0 {
		cfg.InsertSize = def.InsertSize
	}
	if cfg.InsertSize < 2*cfg.ReadLen {
		cfg.InsertSize = 2 * cfg.ReadLen
	}
	if cfg.InsertStd < 0 {
		cfg.InsertStd = def.InsertStd
	}
	if cfg.ErrorRate < 0 {
		cfg.ErrorRate = 0
	}
	if cfg.Coverage <= 0 && cfg.TotalPairs <= 0 {
		cfg.Coverage = def.Coverage
	}
	return cfg
}

// SimulateReads generates paired-end reads from the community. The returned
// slice interleaves pairs: reads 2i and 2i+1 are mates. Read IDs encode the
// source genome, fragment start and mate index ("genome003:1523/1") so that
// evaluation and debugging can trace reads back to their origin.
func SimulateReads(c *Community, cfg ReadConfig) []seq.Read {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))

	// Effective bases weighted by abundance decide per-genome pair counts.
	var weightSum float64
	for _, g := range c.Genomes {
		weightSum += g.Abundance * float64(len(g.Seq))
	}
	totalPairs := cfg.TotalPairs
	if totalPairs <= 0 {
		totalBases := cfg.Coverage * float64(c.TotalBases())
		totalPairs = int(totalBases / float64(2*cfg.ReadLen))
	}

	var reads []seq.Read
	pairIdx := 0
	for gi := range c.Genomes {
		g := &c.Genomes[gi]
		if len(g.Seq) < cfg.InsertSize+4*cfg.InsertStd+2 {
			continue
		}
		w := g.Abundance * float64(len(g.Seq)) / weightSum
		pairs := int(math.Round(w * float64(totalPairs)))
		for p := 0; p < pairs; p++ {
			frag := cfg.InsertSize
			if cfg.InsertStd > 0 {
				frag += int(math.Round(r.NormFloat64() * float64(cfg.InsertStd)))
			}
			if frag < 2*cfg.ReadLen {
				frag = 2 * cfg.ReadLen
			}
			if frag >= len(g.Seq) {
				frag = len(g.Seq) - 1
			}
			start := r.Intn(len(g.Seq) - frag)
			fwdSeq := g.Seq[start : start+cfg.ReadLen]
			revSrc := g.Seq[start+frag-cfg.ReadLen : start+frag]
			fwd, fq := applyErrors(r, fwdSeq, cfg.ErrorRate)
			rev, rq := applyErrors(r, seq.ReverseComplement(revSrc), cfg.ErrorRate)
			idBase := fmt.Sprintf("%s:%d:%d", g.Name, start, pairIdx)
			reads = append(reads,
				seq.Read{ID: idBase + "/1", Seq: fwd, Qual: fq},
				seq.Read{ID: idBase + "/2", Seq: rev, Qual: rq},
			)
			pairIdx++
		}
	}
	return reads
}

// applyErrors copies s, introducing substitution errors at the given rate,
// and produces a quality string where erroneous bases tend to get lower
// quality values (as real base callers do, imperfectly).
func applyErrors(r *rand.Rand, s []byte, rate float64) ([]byte, []byte) {
	out := append([]byte(nil), s...)
	qual := make([]byte, len(s))
	for i := range out {
		if r.Float64() < rate {
			orig := out[i]
			for out[i] == orig {
				out[i] = seq.BaseToChar(byte(r.Intn(4)))
			}
			// Erroneous bases usually, but not always, get low quality.
			if r.Float64() < 0.7 {
				qual[i] = byte(33 + 2 + r.Intn(15))
			} else {
				qual[i] = byte(33 + 30 + r.Intn(10))
			}
		} else {
			qual[i] = byte(33 + 30 + r.Intn(10))
		}
	}
	return out, qual
}

// SourceGenome parses the genome name out of a simulated read ID, returning
// "" if the ID does not follow the simulator's format.
func SourceGenome(readID string) string {
	for i := 0; i < len(readID); i++ {
		if readID[i] == ':' {
			return readID[:i]
		}
	}
	return ""
}
