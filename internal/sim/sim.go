// Package sim implements MGSim, the synthetic metagenome generator the paper
// introduces for its weak-scaling study, extended here to stand in for all
// of the paper's datasets (MG64, Twitchell Wetlands lanes) since the real
// multi-terabyte read sets are not available in this environment.
//
// A Community is a set of reference genomes with relative abundances drawn
// from a log-normal distribution (as in the paper). Genomes contain planted
// conserved "ribosomal" marker regions shared (with small mutations) across
// all genomes, shared repeat segments, and optional SNP strain pairs — the
// features that make metagenome assembly harder than single-genome assembly.
// A WGSim-like simulator then produces paired-end reads with per-base errors
// and quality strings.
package sim

import (
	"fmt"
	"math"
	"math/rand"

	"mhmgo/internal/seq"
)

// Genome is one reference organism in a simulated community.
type Genome struct {
	Name      string
	Seq       []byte
	Abundance float64 // relative abundance, normalized to sum to 1 over the community
	// RRNAPositions are the start offsets of planted conserved marker copies.
	RRNAPositions []int
	// StrainOf is the name of the genome this one is a SNP strain of, or "".
	StrainOf string
}

// Community is a simulated metagenome: the reference genomes plus the
// conserved marker sequence planted into each of them.
type Community struct {
	Genomes    []Genome
	RRNAMarker []byte
}

// TotalBases returns the summed length of all reference genomes.
func (c *Community) TotalBases() int {
	n := 0
	for _, g := range c.Genomes {
		n += len(g.Seq)
	}
	return n
}

// GenomeByName returns the genome with the given name, or nil.
func (c *Community) GenomeByName(name string) *Genome {
	for i := range c.Genomes {
		if c.Genomes[i].Name == name {
			return &c.Genomes[i]
		}
	}
	return nil
}

// CommunityConfig controls community generation.
type CommunityConfig struct {
	// NumGenomes is the number of distinct organisms.
	NumGenomes int
	// MeanGenomeLen is the average genome length in bases; individual genome
	// lengths vary uniformly by ±LenVariation (a fraction, e.g. 0.3).
	MeanGenomeLen int
	LenVariation  float64
	// AbundanceSigma is the sigma of the log-normal relative-abundance
	// distribution (the paper samples abundances log-normally).
	AbundanceSigma float64
	// RRNALen is the length of the conserved marker planted into every
	// genome; RRNACopies is how many copies each genome receives.
	RRNALen    int
	RRNACopies int
	// RRNADivergence is the per-base mutation rate applied to the marker in
	// each genome (conserved but not identical).
	RRNADivergence float64
	// RepeatLen/RepeatCopies plant a shared repeat segment into this many
	// genomes, creating inter-genome ambiguity.
	RepeatLen    int
	RepeatCopies int
	// StrainFraction is the fraction of genomes that are SNP strains of
	// another genome (polymorphism within species).
	StrainFraction float64
	// StrainSNPRate is the per-base SNP rate between a strain and its parent.
	StrainSNPRate float64
	// Seed seeds the deterministic generator.
	Seed int64
}

// DefaultCommunityConfig returns a small but structurally realistic
// community configuration.
func DefaultCommunityConfig() CommunityConfig {
	return CommunityConfig{
		NumGenomes:     8,
		MeanGenomeLen:  20000,
		LenVariation:   0.3,
		AbundanceSigma: 1.0,
		RRNALen:        400,
		RRNACopies:     1,
		RRNADivergence: 0.02,
		RepeatLen:      300,
		RepeatCopies:   3,
		StrainFraction: 0.1,
		StrainSNPRate:  0.01,
		Seed:           1,
	}
}

func (cfg CommunityConfig) withDefaults() CommunityConfig {
	def := DefaultCommunityConfig()
	if cfg.NumGenomes <= 0 {
		cfg.NumGenomes = def.NumGenomes
	}
	if cfg.MeanGenomeLen <= 0 {
		cfg.MeanGenomeLen = def.MeanGenomeLen
	}
	if cfg.LenVariation < 0 || cfg.LenVariation >= 1 {
		cfg.LenVariation = def.LenVariation
	}
	if cfg.AbundanceSigma <= 0 {
		cfg.AbundanceSigma = def.AbundanceSigma
	}
	if cfg.RRNALen <= 0 {
		cfg.RRNALen = def.RRNALen
	}
	if cfg.RRNACopies <= 0 {
		cfg.RRNACopies = def.RRNACopies
	}
	if cfg.RRNADivergence < 0 {
		cfg.RRNADivergence = def.RRNADivergence
	}
	if cfg.RepeatLen < 0 {
		cfg.RepeatLen = 0
	}
	if cfg.StrainSNPRate <= 0 {
		cfg.StrainSNPRate = def.StrainSNPRate
	}
	return cfg
}

func randomBases(r *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = seq.BaseToChar(byte(r.Intn(4)))
	}
	return out
}

func mutate(r *rand.Rand, s []byte, rate float64) []byte {
	out := append([]byte(nil), s...)
	for i := range out {
		if r.Float64() < rate {
			out[i] = seq.BaseToChar(byte(r.Intn(4)))
		}
	}
	return out
}

// GenerateCommunity builds a deterministic synthetic community.
func GenerateCommunity(cfg CommunityConfig) *Community {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	marker := randomBases(r, cfg.RRNALen)
	repeat := randomBases(r, cfg.RepeatLen)

	c := &Community{RRNAMarker: marker}
	abundances := make([]float64, cfg.NumGenomes)
	var sum float64
	for i := range abundances {
		abundances[i] = math.Exp(r.NormFloat64() * cfg.AbundanceSigma)
		sum += abundances[i]
	}

	numStrains := int(float64(cfg.NumGenomes) * cfg.StrainFraction)
	for i := 0; i < cfg.NumGenomes; i++ {
		name := fmt.Sprintf("genome%03d", i)
		g := Genome{Name: name, Abundance: abundances[i] / sum}
		if i >= cfg.NumGenomes-numStrains && i > 0 {
			// Strain of an earlier genome: copy with SNPs.
			parent := c.Genomes[r.Intn(i)]
			g.Seq = mutate(r, parent.Seq, cfg.StrainSNPRate)
			g.StrainOf = parent.Name
			g.RRNAPositions = append([]int(nil), parent.RRNAPositions...)
			c.Genomes = append(c.Genomes, g)
			continue
		}
		length := cfg.MeanGenomeLen
		if cfg.LenVariation > 0 {
			span := int(float64(cfg.MeanGenomeLen) * cfg.LenVariation)
			length += r.Intn(2*span+1) - span
		}
		if length < 4*cfg.RRNALen {
			length = 4 * cfg.RRNALen
		}
		g.Seq = randomBases(r, length)
		// Plant conserved marker copies.
		for copyIdx := 0; copyIdx < cfg.RRNACopies; copyIdx++ {
			m := mutate(r, marker, cfg.RRNADivergence)
			pos := r.Intn(length - len(m))
			copy(g.Seq[pos:], m)
			g.RRNAPositions = append(g.RRNAPositions, pos)
		}
		// Plant shared repeats into the first RepeatCopies genomes.
		if cfg.RepeatLen > 0 && i < cfg.RepeatCopies {
			pos := r.Intn(length - cfg.RepeatLen)
			copy(g.Seq[pos:], repeat)
		}
		c.Genomes = append(c.Genomes, g)
	}
	return c
}

// LibraryConfig describes one paired-end library of a multi-library read
// simulation: HipMer/MetaHipMer data sets combine several libraries of
// increasing insert size (e.g. a 300 bp paired-end library plus a 1500 bp
// mate-pair-like library), and the scaffolder consumes them in rounds.
type LibraryConfig struct {
	// Name labels the library (defaults to "libN" for the N-th entry).
	Name string
	// ReadLen is the length of each read of a pair; 0 inherits the parent
	// ReadConfig.ReadLen.
	ReadLen int
	// InsertSize and InsertStd describe this library's fragment-length
	// distribution. A zero InsertSize inherits the parent ReadConfig's
	// geometry (InsertSize and, when the library's InsertStd is also unset,
	// InsertStd), so a single empty LibraryConfig is equivalent to the
	// no-libraries shorthand. An unset InsertStd otherwise defaults to
	// InsertSize/10; unlike the top-level field, a per-library zero cannot
	// request zero variance. InsertSize is clamped to 2*ReadLen (see
	// ReadConfig.Normalized).
	InsertSize int
	InsertStd  int
	// CoverageShare is this library's fraction of the total coverage (or
	// TotalPairs) budget. Shares are normalized to sum to 1. A zero share
	// means "unset", not "no reads": unset libraries split the budget the
	// set shares left unclaimed (or, if nothing is left, receive the mean
	// of the set shares before normalization); if every share is zero the
	// budget is split evenly.
	CoverageShare float64
	// Seed seeds this library's generator; 0 derives a distinct seed from
	// the parent ReadConfig.Seed and the library index.
	Seed int64
}

// SampleConfig describes one sample of a multi-sample co-assembly
// simulation. All samples sequence the same underlying community — the
// MetaHipMer2 co-assembly setting: many related samples of one environment —
// but each sample sees its own abundance profile (time-series drift,
// explicit per-genome scaling, or a sample-private contaminant) and draws
// its reads from its own deterministic generator.
type SampleConfig struct {
	// Name labels the sample (defaults to "sampleN" for the N-th entry).
	Name string
	// CoverageShare is this sample's fraction of the total Coverage (or
	// TotalPairs) budget, with the same unset/normalization semantics as
	// LibraryConfig.CoverageShare: zero means "unset", unset samples split
	// the budget the set shares left unclaimed, and shares are normalized
	// to sum to 1.
	CoverageShare float64
	// AbundanceSigma, when > 0, drifts every genome's abundance by an
	// independent log-normal factor exp(N(0, sigma)) drawn from the
	// sample's seed — the time-series model: same organisms, different
	// relative abundances per sampling event. Zero leaves the community's
	// abundances untouched.
	AbundanceSigma float64
	// AbundanceScale, when non-empty, multiplies genome i's abundance by
	// AbundanceScale[i] (entries beyond the list keep factor 1). It
	// overrides AbundanceSigma, giving tests and presets exact control
	// over a sample's abundance profile.
	AbundanceScale []float64
	// ContaminantFraction, when > 0, plants a sample-private contaminant
	// genome (random sequence, absent from every other sample and from the
	// community's references) sized so that this fraction of the sample's
	// reads are drawn from it. Clamped to [0, 0.9]. ContaminantLen is the
	// contaminant genome's length; unset defaults to 5000 bases, long
	// enough for every standard insert geometry.
	ContaminantFraction float64
	ContaminantLen      int
	// Seed seeds this sample's generators (abundance drift, contaminant
	// sequence, and the per-library read streams); 0 derives a distinct
	// seed from the parent ReadConfig.Seed and the sample index — sample 0
	// inherits the parent seed exactly, so a one-sample config reproduces
	// the no-samples shorthand byte for byte.
	Seed int64
}

// sampleSeedStride derives per-sample seeds: sample i gets
// cfg.Seed + sampleSeedStride*i, so sample 0 keeps the parent seed (the
// one-sample equivalence guarantee) and later samples get well-separated
// streams. The stride is a prime distinct from the per-library stride
// (1000003) so sample and library derivations cannot collide.
const sampleSeedStride = 500009

// defaultContaminantLen is the contaminant genome length when a sample sets
// ContaminantFraction without ContaminantLen: comfortably above the
// insert+4*std+2 minimum the fragment sampler requires for every standard
// library geometry.
const defaultContaminantLen = 5000

// ReadConfig controls paired-end read simulation (WGSim-like).
type ReadConfig struct {
	// ReadLen is the length of each read of a pair.
	ReadLen int
	// InsertSize and InsertStd describe the fragment-length distribution of
	// the (single) library. When Libraries is non-empty they serve only as
	// the inherited geometry for entries that leave InsertSize unset.
	// InsertStd treats zero as meaningful — every fragment is exactly
	// InsertSize long — and only a negative value takes the default.
	InsertSize int
	InsertStd  int
	// ErrorRate is the per-base substitution error probability.
	ErrorRate float64
	// Coverage is the mean fold-coverage of the community (weighted by
	// abundance); TotalPairs overrides it when > 0. With Libraries set, the
	// budget is divided between the libraries by CoverageShare.
	Coverage   float64
	TotalPairs int
	// Libraries, when non-empty, switches the simulator to multi-library
	// mode: each entry produces its own interleaved paired-end block (pairs
	// at indices 2i and 2i+1 within the concatenated output), and every read
	// is tagged with its library index in Read.LibID. An empty list is the
	// single-library shorthand: ReadLen/InsertSize/InsertStd above describe
	// library 0 and all reads carry LibID 0.
	Libraries []LibraryConfig
	// Samples, when non-empty, switches the simulator to multi-sample mode:
	// every entry sequences the same community (through its own abundance
	// view) with the full library structure above, the Coverage/TotalPairs
	// budget is divided between samples by CoverageShare, and every read is
	// tagged with its sample index in Read.SampleID. An empty list is the
	// single-sample shorthand: all reads carry SampleID 0, and a one-entry
	// Samples list with an empty SampleConfig{} is byte-identical to it.
	Samples []SampleConfig
	// Seed seeds the deterministic generator.
	Seed int64
}

// DefaultReadConfig returns a typical short-read configuration. The insert
// geometry is seq.DefaultInsertSize ± seq.DefaultInsertStd — the same
// defaults the assembler's Config assumes, so simulating with the defaults
// and assembling with the defaults agree about the library.
func DefaultReadConfig() ReadConfig {
	return ReadConfig{
		ReadLen:    100,
		InsertSize: seq.DefaultInsertSize,
		InsertStd:  seq.DefaultInsertStd,
		ErrorRate:  0.01,
		Coverage:   20,
		Seed:       2,
	}
}

// Normalized returns the effective configuration SimulateReads will use,
// with every default and clamp applied explicitly:
//
//   - unset (zero) ReadLen, InsertSize and Coverage take the
//     DefaultReadConfig values; InsertStd and ErrorRate treat zero as
//     meaningful (fixed-length fragments, error-free reads) and only
//     negative values are replaced (the default std and 0 respectively);
//   - InsertSize is clamped up to 2*ReadLen — a fragment cannot be shorter
//     than the two reads sequenced from its ends — and the clamped value is
//     visible in the returned config rather than applied silently;
//   - each LibraryConfig inherits ReadLen and receives a "libN" name where
//     unset; an entry with no InsertSize inherits the parent geometry
//     (including the parent InsertStd when its own is unset), so a single
//     empty LibraryConfig is equivalent to the no-libraries shorthand; any
//     still-unset std becomes InsertSize/10, the same 2*ReadLen clamp
//     applies, and the CoverageShares are normalized to sum to 1 (an
//     all-zero share list becomes an even split).
//
// Normalized is idempotent, so SimulateReads(c, cfg) and
// SimulateReads(c, cfg.Normalized()) produce identical reads.
//
// SimulateReads calls it internally; callers that need to know the exact
// effective geometry (e.g. to configure the assembler to match) should call
// it themselves and read the result.
func (cfg ReadConfig) Normalized() ReadConfig {
	def := DefaultReadConfig()
	if cfg.ReadLen <= 0 {
		cfg.ReadLen = def.ReadLen
	}
	if cfg.InsertSize <= 0 {
		cfg.InsertSize = def.InsertSize
	}
	if cfg.InsertSize < 2*cfg.ReadLen {
		cfg.InsertSize = 2 * cfg.ReadLen
	}
	if cfg.InsertStd < 0 {
		cfg.InsertStd = def.InsertStd
	}
	if cfg.ErrorRate < 0 {
		cfg.ErrorRate = 0
	}
	if cfg.Coverage <= 0 && cfg.TotalPairs <= 0 {
		cfg.Coverage = def.Coverage
	}
	if len(cfg.Libraries) > 0 {
		libs := append([]LibraryConfig(nil), cfg.Libraries...)
		shares := make([]float64, len(libs))
		for i := range libs {
			if libs[i].Name == "" {
				libs[i].Name = fmt.Sprintf("lib%d", i)
			}
			if libs[i].ReadLen <= 0 {
				libs[i].ReadLen = cfg.ReadLen
			}
			if libs[i].InsertSize <= 0 {
				// An entry with no geometry of its own inherits the parent
				// config's (already defaulted and clamped above), so
				// Libraries: []LibraryConfig{{}} matches the no-libraries
				// shorthand instead of silently taking the global default.
				libs[i].InsertSize = cfg.InsertSize
				if libs[i].InsertStd <= 0 && cfg.InsertStd > 0 {
					libs[i].InsertStd = cfg.InsertStd
				}
			}
			if libs[i].InsertSize < 2*libs[i].ReadLen {
				libs[i].InsertSize = 2 * libs[i].ReadLen
			}
			if libs[i].InsertStd <= 0 {
				libs[i].InsertStd = libs[i].InsertSize / 10
			}
			// Per-library seeds derive from the parent seed — except in
			// multi-sample mode, where each sample re-derives them from its
			// own sample seed (see SimulateReads): filling them here would
			// hand every sample the same fragment streams. An explicitly
			// set library seed is honored verbatim in every sample, which
			// deliberately correlates the samples.
			if libs[i].Seed == 0 && len(cfg.Samples) == 0 {
				libs[i].Seed = cfg.Seed + 1000003*int64(i+1)
			}
			shares[i] = libs[i].CoverageShare
		}
		fillShares(shares)
		for i := range libs {
			libs[i].CoverageShare = shares[i]
		}
		cfg.Libraries = libs
	}
	if len(cfg.Samples) > 0 {
		samples := append([]SampleConfig(nil), cfg.Samples...)
		shares := make([]float64, len(samples))
		for i := range samples {
			if samples[i].Name == "" {
				samples[i].Name = fmt.Sprintf("sample%d", i)
			}
			if samples[i].Seed == 0 {
				samples[i].Seed = cfg.Seed + sampleSeedStride*int64(i)
			}
			if samples[i].AbundanceSigma < 0 {
				samples[i].AbundanceSigma = 0
			}
			if samples[i].ContaminantFraction < 0 {
				samples[i].ContaminantFraction = 0
			}
			if samples[i].ContaminantFraction > 0.9 {
				samples[i].ContaminantFraction = 0.9
			}
			if samples[i].ContaminantFraction > 0 && samples[i].ContaminantLen <= 0 {
				samples[i].ContaminantLen = defaultContaminantLen
			}
			shares[i] = samples[i].CoverageShare
		}
		fillShares(shares)
		for i := range samples {
			samples[i].CoverageShare = shares[i]
		}
		cfg.Samples = samples
	}
	return cfg
}

// fillShares normalizes a coverage-share list in place, with the same
// semantics for libraries and samples. A non-positive share means "unset":
// unset entries split whatever the set shares left unclaimed, and if the set
// shares already claim everything, each unset entry gets the mean set share
// so it can never silently simulate zero reads. The division to a unit sum
// is skipped when the shares already sum to 1 within float drift — dividing
// by a sum a few ulps off 1 would nudge every share, making Normalized
// non-idempotent.
func fillShares(shares []float64) {
	shareSum, unset := 0.0, 0
	for i := range shares {
		if shares[i] <= 0 {
			shares[i] = 0
			unset++
		}
		shareSum += shares[i]
	}
	if unset > 0 {
		fill := (1 - shareSum) / float64(unset)
		if shareSum >= 1 {
			fill = shareSum / float64(len(shares)-unset)
		}
		for i := range shares {
			if shares[i] == 0 {
				shares[i] = fill
				shareSum += fill
			}
		}
	}
	if math.Abs(shareSum-1) > 1e-9 {
		for i := range shares {
			shares[i] /= shareSum
		}
	}
}

// SimulateReads generates paired-end reads from the community. The returned
// slice interleaves pairs: reads 2i and 2i+1 are mates. Read IDs encode the
// source genome, fragment start and pair index ("genome003:1523:7/1") so
// that evaluation and debugging can trace reads back to their origin.
//
// With cfg.Libraries set, each library's block of pairs is generated in
// sequence (pairing is preserved across the concatenation) and every read
// carries its library index in Read.LibID; pair indices continue across
// libraries so IDs stay globally unique. The effective geometry — including
// the 2*ReadLen insert clamp — is cfg.Normalized().
//
// With cfg.Samples set, each sample's reads are generated in sequence from
// that sample's abundance view of the community (see SampleConfig), every
// read additionally carries its sample index in Read.SampleID, and pair
// indices continue across samples. Each sample re-derives its unset library
// seeds from its own sample seed, so two samples never replay the same
// fragment stream.
func SimulateReads(c *Community, cfg ReadConfig) []seq.Read {
	cfg = cfg.Normalized()
	if len(cfg.Samples) == 0 {
		return simulateSample(c, cfg, 0, 0)
	}
	var reads []seq.Read
	pairBase := 0
	for si, s := range cfg.Samples {
		sub := cfg
		sub.Samples = nil
		sub.Seed = s.Seed
		// Re-normalizing with the sample seed fills the library seeds the
		// parent normalization deliberately left unset; every other field is
		// already normalized, and Normalized is idempotent over those.
		sub = sub.Normalized()
		if cfg.TotalPairs > 0 {
			sub.TotalPairs = int(math.Round(float64(cfg.TotalPairs) * s.CoverageShare))
			sub.Coverage = 0
		} else {
			sub.Coverage = cfg.Coverage * s.CoverageShare
		}
		block := simulateSample(sampleCommunity(c, s), sub, uint8(si), pairBase)
		pairBase += len(block) / 2
		reads = append(reads, block...)
	}
	return reads
}

// simulateSample generates one sample's reads: the single- or multi-library
// dispatch over that sample's community view. cfg must already be normalized
// and carry the sample's budget and seed; sampleID tags every read and
// pairBase offsets the pair indices encoded into read IDs.
func simulateSample(c *Community, cfg ReadConfig, sampleID uint8, pairBase int) []seq.Read {
	if len(cfg.Libraries) == 0 {
		return simulateLibrary(c, cfg, sampleID, 0, pairBase)
	}
	var reads []seq.Read
	for i, lib := range cfg.Libraries {
		libCfg := ReadConfig{
			ReadLen:    lib.ReadLen,
			InsertSize: lib.InsertSize,
			InsertStd:  lib.InsertStd,
			ErrorRate:  cfg.ErrorRate,
			Seed:       lib.Seed,
		}
		if cfg.TotalPairs > 0 {
			libCfg.TotalPairs = int(math.Round(float64(cfg.TotalPairs) * lib.CoverageShare))
		} else {
			libCfg.Coverage = cfg.Coverage * lib.CoverageShare
		}
		block := simulateLibrary(c, libCfg, sampleID, uint8(i), pairBase)
		pairBase += len(block) / 2
		reads = append(reads, block...)
	}
	return reads
}

// sampleCommunity returns the community as one sample sees it. An undrifted
// sample (no sigma, no scale list, no contaminant) gets the community
// pointer back unchanged — not a copy — so the one-sample shorthand touches
// no abundance float and stays bit-identical to the no-samples path.
//
// Drifted abundances are deliberately not renormalized to sum to 1: the
// fragment sampler weights each genome by abundance*length over the sum of
// those weights, so only relative abundances matter and renormalizing would
// perturb every float for no behavioral difference.
func sampleCommunity(c *Community, s SampleConfig) *Community {
	if s.AbundanceSigma == 0 && len(s.AbundanceScale) == 0 && s.ContaminantFraction == 0 {
		return c
	}
	view := &Community{RRNAMarker: c.RRNAMarker}
	view.Genomes = append([]Genome(nil), c.Genomes...)
	if len(s.AbundanceScale) > 0 {
		for i := range view.Genomes {
			if i < len(s.AbundanceScale) {
				f := s.AbundanceScale[i]
				if f < 0 {
					f = 0
				}
				view.Genomes[i].Abundance *= f
			}
		}
	} else if s.AbundanceSigma > 0 {
		dr := rand.New(rand.NewSource(s.Seed + 7919))
		for i := range view.Genomes {
			view.Genomes[i].Abundance *= math.Exp(dr.NormFloat64() * s.AbundanceSigma)
		}
	}
	if s.ContaminantFraction > 0 {
		// A sample-private contaminant: random sequence absent from every
		// other sample. Its abundance a_c solves
		// a_c*len_c / (a_c*len_c + S) = fraction, where S is the summed
		// abundance*length weight of the real genomes, so the fragment
		// sampler draws exactly that fraction of the sample's pairs from it.
		cr := rand.New(rand.NewSource(s.Seed + 104729))
		g := Genome{Name: "contam_" + s.Name, Seq: randomBases(cr, s.ContaminantLen)}
		var weightSum float64
		for _, og := range view.Genomes {
			weightSum += og.Abundance * float64(len(og.Seq))
		}
		f := s.ContaminantFraction
		g.Abundance = f * weightSum / ((1 - f) * float64(len(g.Seq)))
		view.Genomes = append(view.Genomes, g)
	}
	return view
}

// simulateLibrary generates one library's interleaved pair block. cfg must
// already be normalized; sampleID and libID tag every read and pairBase
// offsets the pair indices encoded into read IDs.
func simulateLibrary(c *Community, cfg ReadConfig, sampleID, libID uint8, pairBase int) []seq.Read {
	r := rand.New(rand.NewSource(cfg.Seed))

	// Effective bases weighted by abundance decide per-genome pair counts.
	var weightSum float64
	for _, g := range c.Genomes {
		weightSum += g.Abundance * float64(len(g.Seq))
	}
	totalPairs := cfg.TotalPairs
	if totalPairs <= 0 {
		totalBases := cfg.Coverage * float64(c.TotalBases())
		totalPairs = int(totalBases / float64(2*cfg.ReadLen))
	}

	var reads []seq.Read
	pairIdx := pairBase
	for gi := range c.Genomes {
		g := &c.Genomes[gi]
		if len(g.Seq) < cfg.InsertSize+4*cfg.InsertStd+2 {
			continue
		}
		w := g.Abundance * float64(len(g.Seq)) / weightSum
		pairs := int(math.Round(w * float64(totalPairs)))
		for p := 0; p < pairs; p++ {
			frag := cfg.InsertSize
			if cfg.InsertStd > 0 {
				frag += int(math.Round(r.NormFloat64() * float64(cfg.InsertStd)))
			}
			if frag < 2*cfg.ReadLen {
				frag = 2 * cfg.ReadLen
			}
			if frag >= len(g.Seq) {
				frag = len(g.Seq) - 1
			}
			start := r.Intn(len(g.Seq) - frag)
			fwdSeq := g.Seq[start : start+cfg.ReadLen]
			revSrc := g.Seq[start+frag-cfg.ReadLen : start+frag]
			fwd, fq := applyErrors(r, fwdSeq, cfg.ErrorRate)
			rev, rq := applyErrors(r, seq.ReverseComplement(revSrc), cfg.ErrorRate)
			idBase := fmt.Sprintf("%s:%d:%d", g.Name, start, pairIdx)
			reads = append(reads,
				seq.Read{ID: idBase + "/1", Seq: fwd, Qual: fq, LibID: libID, SampleID: sampleID},
				seq.Read{ID: idBase + "/2", Seq: rev, Qual: rq, LibID: libID, SampleID: sampleID},
			)
			pairIdx++
		}
	}
	return reads
}

// applyErrors copies s, introducing substitution errors at the given rate,
// and produces a quality string where erroneous bases tend to get lower
// quality values (as real base callers do, imperfectly).
func applyErrors(r *rand.Rand, s []byte, rate float64) ([]byte, []byte) {
	out := append([]byte(nil), s...)
	qual := make([]byte, len(s))
	for i := range out {
		if r.Float64() < rate {
			orig := out[i]
			for out[i] == orig {
				out[i] = seq.BaseToChar(byte(r.Intn(4)))
			}
			// Erroneous bases usually, but not always, get low quality.
			if r.Float64() < 0.7 {
				qual[i] = byte(33 + 2 + r.Intn(15))
			} else {
				qual[i] = byte(33 + 30 + r.Intn(10))
			}
		} else {
			qual[i] = byte(33 + 30 + r.Intn(10))
		}
	}
	return out, qual
}

// SourceGenome parses the genome name out of a simulated read ID, returning
// "" if the ID does not follow the simulator's format.
func SourceGenome(readID string) string {
	for i := 0; i < len(readID); i++ {
		if readID[i] == ':' {
			return readID[:i]
		}
	}
	return ""
}
