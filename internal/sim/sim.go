// Package sim implements MGSim, the synthetic metagenome generator the paper
// introduces for its weak-scaling study, extended here to stand in for all
// of the paper's datasets (MG64, Twitchell Wetlands lanes) since the real
// multi-terabyte read sets are not available in this environment.
//
// A Community is a set of reference genomes with relative abundances drawn
// from a log-normal distribution (as in the paper). Genomes contain planted
// conserved "ribosomal" marker regions shared (with small mutations) across
// all genomes, shared repeat segments, and optional SNP strain pairs — the
// features that make metagenome assembly harder than single-genome assembly.
// A WGSim-like simulator then produces paired-end reads with per-base errors
// and quality strings.
package sim

import (
	"fmt"
	"math"
	"math/rand"

	"mhmgo/internal/seq"
)

// Genome is one reference organism in a simulated community.
type Genome struct {
	Name      string
	Seq       []byte
	Abundance float64 // relative abundance, normalized to sum to 1 over the community
	// RRNAPositions are the start offsets of planted conserved marker copies.
	RRNAPositions []int
	// StrainOf is the name of the genome this one is a SNP strain of, or "".
	StrainOf string
}

// Community is a simulated metagenome: the reference genomes plus the
// conserved marker sequence planted into each of them.
type Community struct {
	Genomes    []Genome
	RRNAMarker []byte
}

// TotalBases returns the summed length of all reference genomes.
func (c *Community) TotalBases() int {
	n := 0
	for _, g := range c.Genomes {
		n += len(g.Seq)
	}
	return n
}

// GenomeByName returns the genome with the given name, or nil.
func (c *Community) GenomeByName(name string) *Genome {
	for i := range c.Genomes {
		if c.Genomes[i].Name == name {
			return &c.Genomes[i]
		}
	}
	return nil
}

// CommunityConfig controls community generation.
type CommunityConfig struct {
	// NumGenomes is the number of distinct organisms.
	NumGenomes int
	// MeanGenomeLen is the average genome length in bases; individual genome
	// lengths vary uniformly by ±LenVariation (a fraction, e.g. 0.3).
	MeanGenomeLen int
	LenVariation  float64
	// AbundanceSigma is the sigma of the log-normal relative-abundance
	// distribution (the paper samples abundances log-normally).
	AbundanceSigma float64
	// RRNALen is the length of the conserved marker planted into every
	// genome; RRNACopies is how many copies each genome receives.
	RRNALen    int
	RRNACopies int
	// RRNADivergence is the per-base mutation rate applied to the marker in
	// each genome (conserved but not identical).
	RRNADivergence float64
	// RepeatLen/RepeatCopies plant a shared repeat segment into this many
	// genomes, creating inter-genome ambiguity.
	RepeatLen    int
	RepeatCopies int
	// StrainFraction is the fraction of genomes that are SNP strains of
	// another genome (polymorphism within species).
	StrainFraction float64
	// StrainSNPRate is the per-base SNP rate between a strain and its parent.
	StrainSNPRate float64
	// Seed seeds the deterministic generator.
	Seed int64
}

// DefaultCommunityConfig returns a small but structurally realistic
// community configuration.
func DefaultCommunityConfig() CommunityConfig {
	return CommunityConfig{
		NumGenomes:     8,
		MeanGenomeLen:  20000,
		LenVariation:   0.3,
		AbundanceSigma: 1.0,
		RRNALen:        400,
		RRNACopies:     1,
		RRNADivergence: 0.02,
		RepeatLen:      300,
		RepeatCopies:   3,
		StrainFraction: 0.1,
		StrainSNPRate:  0.01,
		Seed:           1,
	}
}

func (cfg CommunityConfig) withDefaults() CommunityConfig {
	def := DefaultCommunityConfig()
	if cfg.NumGenomes <= 0 {
		cfg.NumGenomes = def.NumGenomes
	}
	if cfg.MeanGenomeLen <= 0 {
		cfg.MeanGenomeLen = def.MeanGenomeLen
	}
	if cfg.LenVariation < 0 || cfg.LenVariation >= 1 {
		cfg.LenVariation = def.LenVariation
	}
	if cfg.AbundanceSigma <= 0 {
		cfg.AbundanceSigma = def.AbundanceSigma
	}
	if cfg.RRNALen <= 0 {
		cfg.RRNALen = def.RRNALen
	}
	if cfg.RRNACopies <= 0 {
		cfg.RRNACopies = def.RRNACopies
	}
	if cfg.RRNADivergence < 0 {
		cfg.RRNADivergence = def.RRNADivergence
	}
	if cfg.RepeatLen < 0 {
		cfg.RepeatLen = 0
	}
	if cfg.StrainSNPRate <= 0 {
		cfg.StrainSNPRate = def.StrainSNPRate
	}
	return cfg
}

func randomBases(r *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = seq.BaseToChar(byte(r.Intn(4)))
	}
	return out
}

func mutate(r *rand.Rand, s []byte, rate float64) []byte {
	out := append([]byte(nil), s...)
	for i := range out {
		if r.Float64() < rate {
			out[i] = seq.BaseToChar(byte(r.Intn(4)))
		}
	}
	return out
}

// GenerateCommunity builds a deterministic synthetic community.
func GenerateCommunity(cfg CommunityConfig) *Community {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	marker := randomBases(r, cfg.RRNALen)
	repeat := randomBases(r, cfg.RepeatLen)

	c := &Community{RRNAMarker: marker}
	abundances := make([]float64, cfg.NumGenomes)
	var sum float64
	for i := range abundances {
		abundances[i] = math.Exp(r.NormFloat64() * cfg.AbundanceSigma)
		sum += abundances[i]
	}

	numStrains := int(float64(cfg.NumGenomes) * cfg.StrainFraction)
	for i := 0; i < cfg.NumGenomes; i++ {
		name := fmt.Sprintf("genome%03d", i)
		g := Genome{Name: name, Abundance: abundances[i] / sum}
		if i >= cfg.NumGenomes-numStrains && i > 0 {
			// Strain of an earlier genome: copy with SNPs.
			parent := c.Genomes[r.Intn(i)]
			g.Seq = mutate(r, parent.Seq, cfg.StrainSNPRate)
			g.StrainOf = parent.Name
			g.RRNAPositions = append([]int(nil), parent.RRNAPositions...)
			c.Genomes = append(c.Genomes, g)
			continue
		}
		length := cfg.MeanGenomeLen
		if cfg.LenVariation > 0 {
			span := int(float64(cfg.MeanGenomeLen) * cfg.LenVariation)
			length += r.Intn(2*span+1) - span
		}
		if length < 4*cfg.RRNALen {
			length = 4 * cfg.RRNALen
		}
		g.Seq = randomBases(r, length)
		// Plant conserved marker copies.
		for copyIdx := 0; copyIdx < cfg.RRNACopies; copyIdx++ {
			m := mutate(r, marker, cfg.RRNADivergence)
			pos := r.Intn(length - len(m))
			copy(g.Seq[pos:], m)
			g.RRNAPositions = append(g.RRNAPositions, pos)
		}
		// Plant shared repeats into the first RepeatCopies genomes.
		if cfg.RepeatLen > 0 && i < cfg.RepeatCopies {
			pos := r.Intn(length - cfg.RepeatLen)
			copy(g.Seq[pos:], repeat)
		}
		c.Genomes = append(c.Genomes, g)
	}
	return c
}

// LibraryConfig describes one paired-end library of a multi-library read
// simulation: HipMer/MetaHipMer data sets combine several libraries of
// increasing insert size (e.g. a 300 bp paired-end library plus a 1500 bp
// mate-pair-like library), and the scaffolder consumes them in rounds.
type LibraryConfig struct {
	// Name labels the library (defaults to "libN" for the N-th entry).
	Name string
	// ReadLen is the length of each read of a pair; 0 inherits the parent
	// ReadConfig.ReadLen.
	ReadLen int
	// InsertSize and InsertStd describe this library's fragment-length
	// distribution. A zero InsertSize inherits the parent ReadConfig's
	// geometry (InsertSize and, when the library's InsertStd is also unset,
	// InsertStd), so a single empty LibraryConfig is equivalent to the
	// no-libraries shorthand. An unset InsertStd otherwise defaults to
	// InsertSize/10; unlike the top-level field, a per-library zero cannot
	// request zero variance. InsertSize is clamped to 2*ReadLen (see
	// ReadConfig.Normalized).
	InsertSize int
	InsertStd  int
	// CoverageShare is this library's fraction of the total coverage (or
	// TotalPairs) budget. Shares are normalized to sum to 1. A zero share
	// means "unset", not "no reads": unset libraries split the budget the
	// set shares left unclaimed (or, if nothing is left, receive the mean
	// of the set shares before normalization); if every share is zero the
	// budget is split evenly.
	CoverageShare float64
	// Seed seeds this library's generator; 0 derives a distinct seed from
	// the parent ReadConfig.Seed and the library index.
	Seed int64
}

// ReadConfig controls paired-end read simulation (WGSim-like).
type ReadConfig struct {
	// ReadLen is the length of each read of a pair.
	ReadLen int
	// InsertSize and InsertStd describe the fragment-length distribution of
	// the (single) library. When Libraries is non-empty they serve only as
	// the inherited geometry for entries that leave InsertSize unset.
	// InsertStd treats zero as meaningful — every fragment is exactly
	// InsertSize long — and only a negative value takes the default.
	InsertSize int
	InsertStd  int
	// ErrorRate is the per-base substitution error probability.
	ErrorRate float64
	// Coverage is the mean fold-coverage of the community (weighted by
	// abundance); TotalPairs overrides it when > 0. With Libraries set, the
	// budget is divided between the libraries by CoverageShare.
	Coverage   float64
	TotalPairs int
	// Libraries, when non-empty, switches the simulator to multi-library
	// mode: each entry produces its own interleaved paired-end block (pairs
	// at indices 2i and 2i+1 within the concatenated output), and every read
	// is tagged with its library index in Read.LibID. An empty list is the
	// single-library shorthand: ReadLen/InsertSize/InsertStd above describe
	// library 0 and all reads carry LibID 0.
	Libraries []LibraryConfig
	// Seed seeds the deterministic generator.
	Seed int64
}

// DefaultReadConfig returns a typical short-read configuration. The insert
// geometry is seq.DefaultInsertSize ± seq.DefaultInsertStd — the same
// defaults the assembler's Config assumes, so simulating with the defaults
// and assembling with the defaults agree about the library.
func DefaultReadConfig() ReadConfig {
	return ReadConfig{
		ReadLen:    100,
		InsertSize: seq.DefaultInsertSize,
		InsertStd:  seq.DefaultInsertStd,
		ErrorRate:  0.01,
		Coverage:   20,
		Seed:       2,
	}
}

// Normalized returns the effective configuration SimulateReads will use,
// with every default and clamp applied explicitly:
//
//   - unset (zero) ReadLen, InsertSize and Coverage take the
//     DefaultReadConfig values; InsertStd and ErrorRate treat zero as
//     meaningful (fixed-length fragments, error-free reads) and only
//     negative values are replaced (the default std and 0 respectively);
//   - InsertSize is clamped up to 2*ReadLen — a fragment cannot be shorter
//     than the two reads sequenced from its ends — and the clamped value is
//     visible in the returned config rather than applied silently;
//   - each LibraryConfig inherits ReadLen and receives a "libN" name where
//     unset; an entry with no InsertSize inherits the parent geometry
//     (including the parent InsertStd when its own is unset), so a single
//     empty LibraryConfig is equivalent to the no-libraries shorthand; any
//     still-unset std becomes InsertSize/10, the same 2*ReadLen clamp
//     applies, and the CoverageShares are normalized to sum to 1 (an
//     all-zero share list becomes an even split).
//
// Normalized is idempotent, so SimulateReads(c, cfg) and
// SimulateReads(c, cfg.Normalized()) produce identical reads.
//
// SimulateReads calls it internally; callers that need to know the exact
// effective geometry (e.g. to configure the assembler to match) should call
// it themselves and read the result.
func (cfg ReadConfig) Normalized() ReadConfig {
	def := DefaultReadConfig()
	if cfg.ReadLen <= 0 {
		cfg.ReadLen = def.ReadLen
	}
	if cfg.InsertSize <= 0 {
		cfg.InsertSize = def.InsertSize
	}
	if cfg.InsertSize < 2*cfg.ReadLen {
		cfg.InsertSize = 2 * cfg.ReadLen
	}
	if cfg.InsertStd < 0 {
		cfg.InsertStd = def.InsertStd
	}
	if cfg.ErrorRate < 0 {
		cfg.ErrorRate = 0
	}
	if cfg.Coverage <= 0 && cfg.TotalPairs <= 0 {
		cfg.Coverage = def.Coverage
	}
	if len(cfg.Libraries) > 0 {
		libs := append([]LibraryConfig(nil), cfg.Libraries...)
		shareSum, unset := 0.0, 0
		for i := range libs {
			if libs[i].Name == "" {
				libs[i].Name = fmt.Sprintf("lib%d", i)
			}
			if libs[i].ReadLen <= 0 {
				libs[i].ReadLen = cfg.ReadLen
			}
			if libs[i].InsertSize <= 0 {
				// An entry with no geometry of its own inherits the parent
				// config's (already defaulted and clamped above), so
				// Libraries: []LibraryConfig{{}} matches the no-libraries
				// shorthand instead of silently taking the global default.
				libs[i].InsertSize = cfg.InsertSize
				if libs[i].InsertStd <= 0 && cfg.InsertStd > 0 {
					libs[i].InsertStd = cfg.InsertStd
				}
			}
			if libs[i].InsertSize < 2*libs[i].ReadLen {
				libs[i].InsertSize = 2 * libs[i].ReadLen
			}
			if libs[i].InsertStd <= 0 {
				libs[i].InsertStd = libs[i].InsertSize / 10
			}
			if libs[i].Seed == 0 {
				libs[i].Seed = cfg.Seed + 1000003*int64(i+1)
			}
			if libs[i].CoverageShare <= 0 {
				libs[i].CoverageShare = 0
				unset++
			}
			shareSum += libs[i].CoverageShare
		}
		// A zero share means "unset": unset libraries split whatever the
		// set shares left unclaimed, and if the set shares already claim
		// everything, each unset library gets the mean set share so it can
		// never silently simulate zero reads.
		if unset > 0 {
			fill := (1 - shareSum) / float64(unset)
			if shareSum >= 1 {
				fill = shareSum / float64(len(libs)-unset)
			}
			for i := range libs {
				if libs[i].CoverageShare == 0 {
					libs[i].CoverageShare = fill
					shareSum += fill
				}
			}
		}
		// Skip the division when the shares already sum to 1 (within float
		// drift): dividing by a sum a few ulps off 1 would nudge every share,
		// making Normalized non-idempotent.
		if math.Abs(shareSum-1) > 1e-9 {
			for i := range libs {
				libs[i].CoverageShare /= shareSum
			}
		}
		cfg.Libraries = libs
	}
	return cfg
}

// SimulateReads generates paired-end reads from the community. The returned
// slice interleaves pairs: reads 2i and 2i+1 are mates. Read IDs encode the
// source genome, fragment start and pair index ("genome003:1523:7/1") so
// that evaluation and debugging can trace reads back to their origin.
//
// With cfg.Libraries set, each library's block of pairs is generated in
// sequence (pairing is preserved across the concatenation) and every read
// carries its library index in Read.LibID; pair indices continue across
// libraries so IDs stay globally unique. The effective geometry — including
// the 2*ReadLen insert clamp — is cfg.Normalized().
func SimulateReads(c *Community, cfg ReadConfig) []seq.Read {
	cfg = cfg.Normalized()
	if len(cfg.Libraries) == 0 {
		return simulateLibrary(c, cfg, 0, 0)
	}
	var reads []seq.Read
	pairBase := 0
	for i, lib := range cfg.Libraries {
		libCfg := ReadConfig{
			ReadLen:    lib.ReadLen,
			InsertSize: lib.InsertSize,
			InsertStd:  lib.InsertStd,
			ErrorRate:  cfg.ErrorRate,
			Seed:       lib.Seed,
		}
		if cfg.TotalPairs > 0 {
			libCfg.TotalPairs = int(math.Round(float64(cfg.TotalPairs) * lib.CoverageShare))
		} else {
			libCfg.Coverage = cfg.Coverage * lib.CoverageShare
		}
		block := simulateLibrary(c, libCfg, uint8(i), pairBase)
		pairBase += len(block) / 2
		reads = append(reads, block...)
	}
	return reads
}

// simulateLibrary generates one library's interleaved pair block. cfg must
// already be normalized; libID tags every read and pairBase offsets the pair
// indices encoded into read IDs.
func simulateLibrary(c *Community, cfg ReadConfig, libID uint8, pairBase int) []seq.Read {
	r := rand.New(rand.NewSource(cfg.Seed))

	// Effective bases weighted by abundance decide per-genome pair counts.
	var weightSum float64
	for _, g := range c.Genomes {
		weightSum += g.Abundance * float64(len(g.Seq))
	}
	totalPairs := cfg.TotalPairs
	if totalPairs <= 0 {
		totalBases := cfg.Coverage * float64(c.TotalBases())
		totalPairs = int(totalBases / float64(2*cfg.ReadLen))
	}

	var reads []seq.Read
	pairIdx := pairBase
	for gi := range c.Genomes {
		g := &c.Genomes[gi]
		if len(g.Seq) < cfg.InsertSize+4*cfg.InsertStd+2 {
			continue
		}
		w := g.Abundance * float64(len(g.Seq)) / weightSum
		pairs := int(math.Round(w * float64(totalPairs)))
		for p := 0; p < pairs; p++ {
			frag := cfg.InsertSize
			if cfg.InsertStd > 0 {
				frag += int(math.Round(r.NormFloat64() * float64(cfg.InsertStd)))
			}
			if frag < 2*cfg.ReadLen {
				frag = 2 * cfg.ReadLen
			}
			if frag >= len(g.Seq) {
				frag = len(g.Seq) - 1
			}
			start := r.Intn(len(g.Seq) - frag)
			fwdSeq := g.Seq[start : start+cfg.ReadLen]
			revSrc := g.Seq[start+frag-cfg.ReadLen : start+frag]
			fwd, fq := applyErrors(r, fwdSeq, cfg.ErrorRate)
			rev, rq := applyErrors(r, seq.ReverseComplement(revSrc), cfg.ErrorRate)
			idBase := fmt.Sprintf("%s:%d:%d", g.Name, start, pairIdx)
			reads = append(reads,
				seq.Read{ID: idBase + "/1", Seq: fwd, Qual: fq, LibID: libID},
				seq.Read{ID: idBase + "/2", Seq: rev, Qual: rq, LibID: libID},
			)
			pairIdx++
		}
	}
	return reads
}

// applyErrors copies s, introducing substitution errors at the given rate,
// and produces a quality string where erroneous bases tend to get lower
// quality values (as real base callers do, imperfectly).
func applyErrors(r *rand.Rand, s []byte, rate float64) ([]byte, []byte) {
	out := append([]byte(nil), s...)
	qual := make([]byte, len(s))
	for i := range out {
		if r.Float64() < rate {
			orig := out[i]
			for out[i] == orig {
				out[i] = seq.BaseToChar(byte(r.Intn(4)))
			}
			// Erroneous bases usually, but not always, get low quality.
			if r.Float64() < 0.7 {
				qual[i] = byte(33 + 2 + r.Intn(15))
			} else {
				qual[i] = byte(33 + 30 + r.Intn(10))
			}
		} else {
			qual[i] = byte(33 + 30 + r.Intn(10))
		}
	}
	return out, qual
}

// SourceGenome parses the genome name out of a simulated read ID, returning
// "" if the ID does not follow the simulator's format.
func SourceGenome(readID string) string {
	for i := 0; i < len(readID); i++ {
		if readID[i] == ':' {
			return readID[:i]
		}
	}
	return ""
}
