package sim

import (
	"math"
	"strings"
	"testing"

	"mhmgo/internal/seq"
)

func TestGenerateCommunityDeterministic(t *testing.T) {
	cfg := DefaultCommunityConfig()
	a := GenerateCommunity(cfg)
	b := GenerateCommunity(cfg)
	if len(a.Genomes) != len(b.Genomes) {
		t.Fatal("nondeterministic genome count")
	}
	for i := range a.Genomes {
		if string(a.Genomes[i].Seq) != string(b.Genomes[i].Seq) {
			t.Fatalf("genome %d differs between identical seeds", i)
		}
	}
	cfg.Seed = 99
	c := GenerateCommunity(cfg)
	if string(a.Genomes[0].Seq) == string(c.Genomes[0].Seq) {
		t.Error("different seeds should produce different genomes")
	}
}

func TestCommunityStructure(t *testing.T) {
	cfg := DefaultCommunityConfig()
	cfg.NumGenomes = 10
	cfg.StrainFraction = 0.2
	c := GenerateCommunity(cfg)
	if len(c.Genomes) != 10 {
		t.Fatalf("got %d genomes, want 10", len(c.Genomes))
	}
	var abundanceSum float64
	strains := 0
	for _, g := range c.Genomes {
		if len(g.Seq) == 0 {
			t.Errorf("genome %s is empty", g.Name)
		}
		if !seq.ValidBases(g.Seq) {
			t.Errorf("genome %s has ambiguous bases", g.Name)
		}
		abundanceSum += g.Abundance
		if g.StrainOf != "" {
			strains++
			parent := c.GenomeByName(g.StrainOf)
			if parent == nil {
				t.Errorf("strain %s has unknown parent %s", g.Name, g.StrainOf)
				continue
			}
			if len(parent.Seq) != len(g.Seq) {
				t.Errorf("strain %s length differs from parent", g.Name)
			}
			diff := 0
			for i := range g.Seq {
				if g.Seq[i] != parent.Seq[i] {
					diff++
				}
			}
			rate := float64(diff) / float64(len(g.Seq))
			if rate == 0 || rate > 0.05 {
				t.Errorf("strain %s SNP rate %v out of expected range", g.Name, rate)
			}
		}
	}
	if math.Abs(abundanceSum-1) > 1e-9 {
		t.Errorf("abundances sum to %v, want 1", abundanceSum)
	}
	if strains == 0 {
		t.Error("expected at least one strain genome")
	}
	if c.TotalBases() <= 0 {
		t.Error("TotalBases should be positive")
	}
	if c.GenomeByName("nope") != nil {
		t.Error("GenomeByName of unknown name should be nil")
	}
}

func TestRRNAMarkerPlanted(t *testing.T) {
	cfg := DefaultCommunityConfig()
	cfg.NumGenomes = 6
	cfg.StrainFraction = 0
	cfg.RRNADivergence = 0 // identical markers, easy to verify
	c := GenerateCommunity(cfg)
	marker := string(c.RRNAMarker)
	for _, g := range c.Genomes {
		if len(g.RRNAPositions) != cfg.RRNACopies {
			t.Errorf("genome %s has %d marker positions, want %d", g.Name, len(g.RRNAPositions), cfg.RRNACopies)
			continue
		}
		pos := g.RRNAPositions[0]
		got := string(g.Seq[pos : pos+len(marker)])
		if got != marker {
			t.Errorf("genome %s: marker not found at recorded position", g.Name)
		}
		if !strings.Contains(string(g.Seq), marker) {
			t.Errorf("genome %s does not contain the marker", g.Name)
		}
	}
}

func TestSimulateReadsBasics(t *testing.T) {
	cfg := DefaultCommunityConfig()
	cfg.NumGenomes = 4
	cfg.MeanGenomeLen = 8000
	cfg.StrainFraction = 0
	c := GenerateCommunity(cfg)
	rc := DefaultReadConfig()
	rc.Coverage = 10
	reads := SimulateReads(c, rc)
	if len(reads) == 0 {
		t.Fatal("no reads simulated")
	}
	if len(reads)%2 != 0 {
		t.Fatal("reads must come in pairs")
	}
	// Coverage sanity: total read bases should be within 2x of the target.
	totalBases := 0
	for _, r := range reads {
		if len(r.Seq) != rc.ReadLen {
			t.Fatalf("read length %d, want %d", len(r.Seq), rc.ReadLen)
		}
		if len(r.Qual) != len(r.Seq) {
			t.Fatalf("quality length mismatch")
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("invalid read: %v", err)
		}
		totalBases += len(r.Seq)
	}
	target := rc.Coverage * float64(c.TotalBases())
	if float64(totalBases) < target/2 || float64(totalBases) > target*2 {
		t.Errorf("total read bases %d far from target %v", totalBases, target)
	}
	// Pair IDs must share a prefix and end in /1 and /2.
	for i := 0; i+1 < len(reads); i += 2 {
		id1, id2 := reads[i].ID, reads[i+1].ID
		if !strings.HasSuffix(id1, "/1") || !strings.HasSuffix(id2, "/2") {
			t.Fatalf("pair suffixes wrong: %q %q", id1, id2)
		}
		if strings.TrimSuffix(id1, "/1") != strings.TrimSuffix(id2, "/2") {
			t.Fatalf("pair IDs do not match: %q %q", id1, id2)
		}
	}
	if SourceGenome(reads[0].ID) == "" {
		t.Error("SourceGenome failed to parse simulated ID")
	}
	if SourceGenome("weird-id") != "" {
		t.Error("SourceGenome should return empty for foreign IDs")
	}
}

func TestSimulateReadsErrorRate(t *testing.T) {
	cfg := DefaultCommunityConfig()
	cfg.NumGenomes = 2
	cfg.MeanGenomeLen = 10000
	cfg.StrainFraction = 0
	c := GenerateCommunity(cfg)

	perfect := SimulateReads(c, ReadConfig{ReadLen: 100, InsertSize: 300, ErrorRate: 0, Coverage: 5, Seed: 3})
	noisy := SimulateReads(c, ReadConfig{ReadLen: 100, InsertSize: 300, ErrorRate: 0.05, Coverage: 5, Seed: 3})

	mismatchFraction := func(reads []seq.Read) float64 {
		mismatches, total := 0, 0
		for _, r := range reads {
			if !strings.HasSuffix(r.ID, "/1") {
				continue // only forward reads align trivially to the reference
			}
			g := c.GenomeByName(SourceGenome(r.ID))
			var start int
			if _, err := parseStart(r.ID, &start); err != nil {
				t.Fatalf("cannot parse %q: %v", r.ID, err)
			}
			ref := g.Seq[start : start+len(r.Seq)]
			for i := range r.Seq {
				if r.Seq[i] != ref[i] {
					mismatches++
				}
				total++
			}
		}
		return float64(mismatches) / float64(total)
	}
	if f := mismatchFraction(perfect); f != 0 {
		t.Errorf("error-free reads have mismatch fraction %v", f)
	}
	f := mismatchFraction(noisy)
	if f < 0.02 || f > 0.1 {
		t.Errorf("noisy reads mismatch fraction %v, want around 0.05", f)
	}
}

// parseStart extracts the fragment start coordinate from a simulated read ID
// of the form genome:start:pair/1.
func parseStart(id string, out *int) (int, error) {
	parts := strings.Split(id, ":")
	if len(parts) < 3 {
		return 0, errFormat
	}
	n := 0
	for _, ch := range parts[1] {
		if ch < '0' || ch > '9' {
			return 0, errFormat
		}
		n = n*10 + int(ch-'0')
	}
	*out = n
	return n, nil
}

var errFormat = &formatError{}

type formatError struct{}

func (*formatError) Error() string { return "bad simulated read id" }

func TestSimulateReadsTotalPairsOverride(t *testing.T) {
	cfg := DefaultCommunityConfig()
	cfg.NumGenomes = 3
	cfg.StrainFraction = 0
	c := GenerateCommunity(cfg)
	rc := DefaultReadConfig()
	rc.TotalPairs = 500
	reads := SimulateReads(c, rc)
	pairs := len(reads) / 2
	if pairs < 350 || pairs > 650 {
		t.Errorf("TotalPairs=500 produced %d pairs", pairs)
	}
}

func TestMG64LikePreset(t *testing.T) {
	c := MG64LikeCommunity(0.5, 7)
	if len(c.Genomes) != 64 {
		t.Fatalf("MG64-like community has %d genomes, want 64", len(c.Genomes))
	}
	// Abundances should be skewed: max should dominate min substantially.
	minA, maxA := 1.0, 0.0
	for _, g := range c.Genomes {
		if g.Abundance < minA {
			minA = g.Abundance
		}
		if g.Abundance > maxA {
			maxA = g.Abundance
		}
	}
	if maxA/minA < 5 {
		t.Errorf("abundance skew %v too small for a log-normal community", maxA/minA)
	}
	rc := MG64LikeReads(c, 15, 8)
	reads := SimulateReads(c, rc)
	if len(reads) == 0 {
		t.Fatal("no reads from MG64-like preset")
	}
}

func TestWetlandsLikePreset(t *testing.T) {
	c := WetlandsLikeCommunity(48, 0.5, 11)
	if len(c.Genomes) != 48 {
		t.Fatalf("got %d genomes", len(c.Genomes))
	}
	c2 := WetlandsLikeCommunity(0, 0, 11)
	if len(c2.Genomes) != 96 {
		t.Errorf("defaults should give 96 genomes, got %d", len(c2.Genomes))
	}
}

func TestWeakScalingSeries(t *testing.T) {
	series := WeakScalingSeries(32, 1000)
	if len(series) != 4 {
		t.Fatalf("series length %d", len(series))
	}
	wantNodes := []int{4, 8, 16, 32}
	wantTaxa := []int{5, 10, 20, 40}
	for i, p := range series {
		if p.Nodes != wantNodes[i] || p.Taxa != wantTaxa[i] {
			t.Errorf("point %d = %+v", i, p)
		}
		if p.ReadPairs != p.Taxa*1000 {
			t.Errorf("point %d read pairs = %d", i, p.ReadPairs)
		}
		comm := WeakScalingCommunity(p, 3)
		if len(comm.Genomes) != p.Taxa {
			t.Errorf("community for point %d has %d genomes", i, len(comm.Genomes))
		}
	}
	// Degenerate arguments fall back to defaults without panicking.
	if s := WeakScalingSeries(0, 0); len(s) != 4 || s[0].Nodes < 1 {
		t.Errorf("default series wrong: %+v", s)
	}
}

func TestNormalizedMakesClampExplicit(t *testing.T) {
	// The insert-size clamp (a fragment cannot be shorter than its two
	// reads) must be visible in the normalized config, not applied silently.
	cfg := ReadConfig{ReadLen: 200, InsertSize: 250, Coverage: 5}
	norm := cfg.Normalized()
	if norm.InsertSize != 400 {
		t.Errorf("InsertSize = %d after Normalized, want 400 (2*ReadLen)", norm.InsertSize)
	}
	// Libraries get the same clamp, and shares normalize to sum to 1.
	cfg = ReadConfig{
		ReadLen:  150,
		Coverage: 5,
		Libraries: []LibraryConfig{
			{InsertSize: 200, CoverageShare: 3},
			{InsertSize: 1500, CoverageShare: 1},
		},
	}
	norm = cfg.Normalized()
	if norm.Libraries[0].InsertSize != 300 {
		t.Errorf("library 0 InsertSize = %d, want 300 (2*ReadLen)", norm.Libraries[0].InsertSize)
	}
	if norm.Libraries[1].InsertSize != 1500 {
		t.Errorf("library 1 InsertSize = %d, want 1500 (unclamped)", norm.Libraries[1].InsertSize)
	}
	if got := norm.Libraries[0].CoverageShare; got != 0.75 {
		t.Errorf("library 0 share = %v, want 0.75", got)
	}
	if norm.Libraries[0].Name != "lib0" || norm.Libraries[1].Name != "lib1" {
		t.Errorf("library names = %q, %q", norm.Libraries[0].Name, norm.Libraries[1].Name)
	}
	// All-zero shares become an even split.
	cfg.Libraries[0].CoverageShare, cfg.Libraries[1].CoverageShare = 0, 0
	norm = cfg.Normalized()
	if norm.Libraries[0].CoverageShare != 0.5 || norm.Libraries[1].CoverageShare != 0.5 {
		t.Errorf("zero shares should split evenly: %+v", norm.Libraries)
	}
	// An unset share among set ones claims the remainder — it must never
	// collapse to a zero-read library.
	cfg.Libraries[0].CoverageShare, cfg.Libraries[1].CoverageShare = 0.75, 0
	norm = cfg.Normalized()
	if got := norm.Libraries[1].CoverageShare; math.Abs(got-0.25) > 1e-12 {
		t.Errorf("unset share should claim the 0.25 remainder, got %v", got)
	}
	// Even when the set shares already claim everything, an unset library
	// still receives a nonzero (mean-set) share.
	cfg.Libraries[0].CoverageShare, cfg.Libraries[1].CoverageShare = 2, 0
	norm = cfg.Normalized()
	if got := norm.Libraries[1].CoverageShare; got != 0.5 {
		t.Errorf("unset share next to an over-claiming one should get the mean set share (0.5 after normalization), got %v", got)
	}
}

func TestSimulateMultiLibraryReads(t *testing.T) {
	cfg := DefaultCommunityConfig()
	cfg.NumGenomes = 3
	cfg.MeanGenomeLen = 9000
	cfg.StrainFraction = 0
	c := GenerateCommunity(cfg)
	reads := SimulateReads(c, ReadConfig{
		ReadLen:   80,
		ErrorRate: 0.005,
		Coverage:  10,
		Seed:      9,
		Libraries: []LibraryConfig{
			{Name: "pe300", InsertSize: 300, InsertStd: 25, CoverageShare: 0.7},
			{Name: "mp1500", InsertSize: 1500, InsertStd: 120, CoverageShare: 0.3},
		},
	})
	if len(reads) == 0 || len(reads)%2 != 0 {
		t.Fatalf("multi-library simulation produced %d reads", len(reads))
	}
	// Pairing is positional: mates share a library and an ID stem.
	counts := map[uint8]int{}
	ids := map[string]bool{}
	for i := 0; i < len(reads); i += 2 {
		a, b := reads[i], reads[i+1]
		if a.LibID != b.LibID {
			t.Fatalf("pair %d spans libraries %d and %d", i/2, a.LibID, b.LibID)
		}
		if a.ID[:len(a.ID)-2] != b.ID[:len(b.ID)-2] {
			t.Fatalf("pair %d has mismatched IDs %q, %q", i/2, a.ID, b.ID)
		}
		if ids[a.ID] || ids[b.ID] {
			t.Fatalf("duplicate read ID in pair %d (%q)", i/2, a.ID)
		}
		ids[a.ID], ids[b.ID] = true, true
		counts[a.LibID] += 2
	}
	if len(counts) != 2 {
		t.Fatalf("expected reads from 2 libraries, got %v", counts)
	}
	// The coverage budget should split roughly by share (same read length,
	// so read counts follow the shares).
	frac := float64(counts[0]) / float64(len(reads))
	if frac < 0.6 || frac > 0.8 {
		t.Errorf("library 0 holds %.2f of the reads, want ~0.7", frac)
	}
	// Long-insert pairs really span their configured distance: simulate
	// error-free and verify, per library, that each mate pair brackets a
	// fragment of the configured length (±4 sigma) on its source genome —
	// the failure mode this pins is one library's geometry being applied
	// to another's fragments.
	libs := []LibraryConfig{
		{Name: "pe300", InsertSize: 300, InsertStd: 20, CoverageShare: 0.5},
		{Name: "mp1500", InsertSize: 1500, InsertStd: 100, CoverageShare: 0.5},
	}
	perfect := SimulateReads(c, ReadConfig{
		ReadLen: 60, ErrorRate: 0, Coverage: 4, Seed: 11, Libraries: libs,
	})
	placed, misplaced := map[uint8]int{}, map[uint8]int{}
	for i := 0; i+1 < len(perfect); i += 2 {
		a, b := perfect[i], perfect[i+1]
		g := c.GenomeByName(SourceGenome(a.ID))
		if g == nil {
			t.Fatalf("read ID %q does not trace to a genome", a.ID)
		}
		// IDs encode "genome:start:pair/1"; recover the fragment start.
		fields := strings.Split(a.ID, ":")
		start := 0
		for _, ch := range fields[1] {
			start = start*10 + int(ch-'0')
		}
		if string(g.Seq[start:start+len(a.Seq)]) != string(a.Seq) {
			t.Fatalf("pair %d: forward read is not at its recorded start %d", i/2, start)
		}
		lib := libs[a.LibID]
		rcb := seq.ReverseComplement(b.Seq)
		found := false
		for frag := lib.InsertSize - 4*lib.InsertStd; frag <= lib.InsertSize+4*lib.InsertStd; frag++ {
			if frag < 2*len(a.Seq) || start+frag > len(g.Seq) {
				continue
			}
			if string(g.Seq[start+frag-len(b.Seq):start+frag]) == string(rcb) {
				found = true
				break
			}
		}
		if found {
			placed[a.LibID]++
		} else {
			misplaced[a.LibID]++
		}
	}
	for libID, lib := range libs {
		ok, bad := placed[uint8(libID)], misplaced[uint8(libID)]
		if ok == 0 {
			t.Fatalf("library %s produced no verifiable pairs", lib.Name)
		}
		// A small tail of fragments is clamped at genome/read-length
		// boundaries; the overwhelming majority must sit in the library's
		// own insert window.
		if frac := float64(ok) / float64(ok+bad); frac < 0.95 {
			t.Errorf("library %s: only %.2f of pairs span insert %d±4*%d",
				lib.Name, frac, lib.InsertSize, lib.InsertStd)
		}
	}
}
