package sim

import (
	"math"
	"strings"
	"testing"

	"mhmgo/internal/seq"
)

func TestGenerateCommunityDeterministic(t *testing.T) {
	cfg := DefaultCommunityConfig()
	a := GenerateCommunity(cfg)
	b := GenerateCommunity(cfg)
	if len(a.Genomes) != len(b.Genomes) {
		t.Fatal("nondeterministic genome count")
	}
	for i := range a.Genomes {
		if string(a.Genomes[i].Seq) != string(b.Genomes[i].Seq) {
			t.Fatalf("genome %d differs between identical seeds", i)
		}
	}
	cfg.Seed = 99
	c := GenerateCommunity(cfg)
	if string(a.Genomes[0].Seq) == string(c.Genomes[0].Seq) {
		t.Error("different seeds should produce different genomes")
	}
}

func TestCommunityStructure(t *testing.T) {
	cfg := DefaultCommunityConfig()
	cfg.NumGenomes = 10
	cfg.StrainFraction = 0.2
	c := GenerateCommunity(cfg)
	if len(c.Genomes) != 10 {
		t.Fatalf("got %d genomes, want 10", len(c.Genomes))
	}
	var abundanceSum float64
	strains := 0
	for _, g := range c.Genomes {
		if len(g.Seq) == 0 {
			t.Errorf("genome %s is empty", g.Name)
		}
		if !seq.ValidBases(g.Seq) {
			t.Errorf("genome %s has ambiguous bases", g.Name)
		}
		abundanceSum += g.Abundance
		if g.StrainOf != "" {
			strains++
			parent := c.GenomeByName(g.StrainOf)
			if parent == nil {
				t.Errorf("strain %s has unknown parent %s", g.Name, g.StrainOf)
				continue
			}
			if len(parent.Seq) != len(g.Seq) {
				t.Errorf("strain %s length differs from parent", g.Name)
			}
			diff := 0
			for i := range g.Seq {
				if g.Seq[i] != parent.Seq[i] {
					diff++
				}
			}
			rate := float64(diff) / float64(len(g.Seq))
			if rate == 0 || rate > 0.05 {
				t.Errorf("strain %s SNP rate %v out of expected range", g.Name, rate)
			}
		}
	}
	if math.Abs(abundanceSum-1) > 1e-9 {
		t.Errorf("abundances sum to %v, want 1", abundanceSum)
	}
	if strains == 0 {
		t.Error("expected at least one strain genome")
	}
	if c.TotalBases() <= 0 {
		t.Error("TotalBases should be positive")
	}
	if c.GenomeByName("nope") != nil {
		t.Error("GenomeByName of unknown name should be nil")
	}
}

func TestRRNAMarkerPlanted(t *testing.T) {
	cfg := DefaultCommunityConfig()
	cfg.NumGenomes = 6
	cfg.StrainFraction = 0
	cfg.RRNADivergence = 0 // identical markers, easy to verify
	c := GenerateCommunity(cfg)
	marker := string(c.RRNAMarker)
	for _, g := range c.Genomes {
		if len(g.RRNAPositions) != cfg.RRNACopies {
			t.Errorf("genome %s has %d marker positions, want %d", g.Name, len(g.RRNAPositions), cfg.RRNACopies)
			continue
		}
		pos := g.RRNAPositions[0]
		got := string(g.Seq[pos : pos+len(marker)])
		if got != marker {
			t.Errorf("genome %s: marker not found at recorded position", g.Name)
		}
		if !strings.Contains(string(g.Seq), marker) {
			t.Errorf("genome %s does not contain the marker", g.Name)
		}
	}
}

func TestSimulateReadsBasics(t *testing.T) {
	cfg := DefaultCommunityConfig()
	cfg.NumGenomes = 4
	cfg.MeanGenomeLen = 8000
	cfg.StrainFraction = 0
	c := GenerateCommunity(cfg)
	rc := DefaultReadConfig()
	rc.Coverage = 10
	reads := SimulateReads(c, rc)
	if len(reads) == 0 {
		t.Fatal("no reads simulated")
	}
	if len(reads)%2 != 0 {
		t.Fatal("reads must come in pairs")
	}
	// Coverage sanity: total read bases should be within 2x of the target.
	totalBases := 0
	for _, r := range reads {
		if len(r.Seq) != rc.ReadLen {
			t.Fatalf("read length %d, want %d", len(r.Seq), rc.ReadLen)
		}
		if len(r.Qual) != len(r.Seq) {
			t.Fatalf("quality length mismatch")
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("invalid read: %v", err)
		}
		totalBases += len(r.Seq)
	}
	target := rc.Coverage * float64(c.TotalBases())
	if float64(totalBases) < target/2 || float64(totalBases) > target*2 {
		t.Errorf("total read bases %d far from target %v", totalBases, target)
	}
	// Pair IDs must share a prefix and end in /1 and /2.
	for i := 0; i+1 < len(reads); i += 2 {
		id1, id2 := reads[i].ID, reads[i+1].ID
		if !strings.HasSuffix(id1, "/1") || !strings.HasSuffix(id2, "/2") {
			t.Fatalf("pair suffixes wrong: %q %q", id1, id2)
		}
		if strings.TrimSuffix(id1, "/1") != strings.TrimSuffix(id2, "/2") {
			t.Fatalf("pair IDs do not match: %q %q", id1, id2)
		}
	}
	if SourceGenome(reads[0].ID) == "" {
		t.Error("SourceGenome failed to parse simulated ID")
	}
	if SourceGenome("weird-id") != "" {
		t.Error("SourceGenome should return empty for foreign IDs")
	}
}

func TestSimulateReadsErrorRate(t *testing.T) {
	cfg := DefaultCommunityConfig()
	cfg.NumGenomes = 2
	cfg.MeanGenomeLen = 10000
	cfg.StrainFraction = 0
	c := GenerateCommunity(cfg)

	perfect := SimulateReads(c, ReadConfig{ReadLen: 100, InsertSize: 300, ErrorRate: 0, Coverage: 5, Seed: 3})
	noisy := SimulateReads(c, ReadConfig{ReadLen: 100, InsertSize: 300, ErrorRate: 0.05, Coverage: 5, Seed: 3})

	mismatchFraction := func(reads []seq.Read) float64 {
		mismatches, total := 0, 0
		for _, r := range reads {
			if !strings.HasSuffix(r.ID, "/1") {
				continue // only forward reads align trivially to the reference
			}
			g := c.GenomeByName(SourceGenome(r.ID))
			var start int
			if _, err := parseStart(r.ID, &start); err != nil {
				t.Fatalf("cannot parse %q: %v", r.ID, err)
			}
			ref := g.Seq[start : start+len(r.Seq)]
			for i := range r.Seq {
				if r.Seq[i] != ref[i] {
					mismatches++
				}
				total++
			}
		}
		return float64(mismatches) / float64(total)
	}
	if f := mismatchFraction(perfect); f != 0 {
		t.Errorf("error-free reads have mismatch fraction %v", f)
	}
	f := mismatchFraction(noisy)
	if f < 0.02 || f > 0.1 {
		t.Errorf("noisy reads mismatch fraction %v, want around 0.05", f)
	}
}

// parseStart extracts the fragment start coordinate from a simulated read ID
// of the form genome:start:pair/1.
func parseStart(id string, out *int) (int, error) {
	parts := strings.Split(id, ":")
	if len(parts) < 3 {
		return 0, errFormat
	}
	n := 0
	for _, ch := range parts[1] {
		if ch < '0' || ch > '9' {
			return 0, errFormat
		}
		n = n*10 + int(ch-'0')
	}
	*out = n
	return n, nil
}

var errFormat = &formatError{}

type formatError struct{}

func (*formatError) Error() string { return "bad simulated read id" }

func TestSimulateReadsTotalPairsOverride(t *testing.T) {
	cfg := DefaultCommunityConfig()
	cfg.NumGenomes = 3
	cfg.StrainFraction = 0
	c := GenerateCommunity(cfg)
	rc := DefaultReadConfig()
	rc.TotalPairs = 500
	reads := SimulateReads(c, rc)
	pairs := len(reads) / 2
	if pairs < 350 || pairs > 650 {
		t.Errorf("TotalPairs=500 produced %d pairs", pairs)
	}
}

func TestMG64LikePreset(t *testing.T) {
	c := MG64LikeCommunity(0.5, 7)
	if len(c.Genomes) != 64 {
		t.Fatalf("MG64-like community has %d genomes, want 64", len(c.Genomes))
	}
	// Abundances should be skewed: max should dominate min substantially.
	minA, maxA := 1.0, 0.0
	for _, g := range c.Genomes {
		if g.Abundance < minA {
			minA = g.Abundance
		}
		if g.Abundance > maxA {
			maxA = g.Abundance
		}
	}
	if maxA/minA < 5 {
		t.Errorf("abundance skew %v too small for a log-normal community", maxA/minA)
	}
	rc := MG64LikeReads(c, 15, 8)
	reads := SimulateReads(c, rc)
	if len(reads) == 0 {
		t.Fatal("no reads from MG64-like preset")
	}
}

func TestWetlandsLikePreset(t *testing.T) {
	c := WetlandsLikeCommunity(48, 0.5, 11)
	if len(c.Genomes) != 48 {
		t.Fatalf("got %d genomes", len(c.Genomes))
	}
	c2 := WetlandsLikeCommunity(0, 0, 11)
	if len(c2.Genomes) != 96 {
		t.Errorf("defaults should give 96 genomes, got %d", len(c2.Genomes))
	}
}

func TestWeakScalingSeries(t *testing.T) {
	series := WeakScalingSeries(32, 1000)
	if len(series) != 4 {
		t.Fatalf("series length %d", len(series))
	}
	wantNodes := []int{4, 8, 16, 32}
	wantTaxa := []int{5, 10, 20, 40}
	for i, p := range series {
		if p.Nodes != wantNodes[i] || p.Taxa != wantTaxa[i] {
			t.Errorf("point %d = %+v", i, p)
		}
		if p.ReadPairs != p.Taxa*1000 {
			t.Errorf("point %d read pairs = %d", i, p.ReadPairs)
		}
		comm := WeakScalingCommunity(p, 3)
		if len(comm.Genomes) != p.Taxa {
			t.Errorf("community for point %d has %d genomes", i, len(comm.Genomes))
		}
	}
	// Degenerate arguments fall back to defaults without panicking.
	if s := WeakScalingSeries(0, 0); len(s) != 4 || s[0].Nodes < 1 {
		t.Errorf("default series wrong: %+v", s)
	}
}
