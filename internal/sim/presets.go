package sim

import "fmt"

// Presets approximating the paper's datasets at laptop scale. The structural
// parameters (number of organisms, abundance skew, error rate, paired-end
// geometry) follow the paper; the absolute genome and read counts are scaled
// down by several orders of magnitude so that experiments run in seconds.

// MG64LikeCommunity returns a 64-organism synthetic community modelled on
// the MG64 mock community used for the paper's quality evaluation (Table I).
// scale multiplies the genome lengths; scale=1 gives ~10 kb genomes.
func MG64LikeCommunity(scale float64, seed int64) *Community {
	if scale <= 0 {
		scale = 1
	}
	cfg := CommunityConfig{
		NumGenomes:     64,
		MeanGenomeLen:  int(10000 * scale),
		LenVariation:   0.4,
		AbundanceSigma: 1.2,
		RRNALen:        300,
		RRNACopies:     1,
		RRNADivergence: 0.03,
		RepeatLen:      250,
		RepeatCopies:   6,
		StrainFraction: 0.08,
		StrainSNPRate:  0.01,
		Seed:           seed,
	}
	return GenerateCommunity(cfg)
}

// MG64LikeReads simulates the read set for the MG64-like community at the
// given mean coverage.
func MG64LikeReads(c *Community, coverage float64, seed int64) ReadConfig {
	return ReadConfig{
		ReadLen:    100,
		InsertSize: 280,
		InsertStd:  25,
		ErrorRate:  0.01,
		Coverage:   coverage,
		Seed:       seed,
	}
}

// TwoLibraryReadConfig returns the paper-style two-library read
// configuration: a short-insert (300 bp) paired-end library carrying most of
// the coverage plus a long-insert (1500 bp) jumping library that contributes
// long-range links for the second scaffolding round. HipMer/MetaHipMer
// inputs combine libraries of increasing insert size exactly like this; pair
// the simulated reads with an assembly Config whose Libraries list matches
// (same order, same geometry).
func TwoLibraryReadConfig(coverage float64, seed int64) ReadConfig {
	return ReadConfig{
		ReadLen:   100,
		ErrorRate: 0.01,
		Coverage:  coverage,
		Seed:      seed,
		Libraries: []LibraryConfig{
			{Name: "pe300", InsertSize: 300, InsertStd: 30, CoverageShare: 0.75},
			{Name: "mp1500", InsertSize: 1500, InsertStd: 150, CoverageShare: 0.25},
		},
	}
}

// WetlandsLikeCommunity returns a community standing in for the Twitchell
// Wetlands soil sample: many organisms with a heavily skewed abundance
// distribution, so a fixed sequencing budget leaves many genomes at low
// coverage. lanes scales the community size (the paper uses 3 of 21 lanes
// for strong scaling and all 21 for the grand-challenge run).
func WetlandsLikeCommunity(organisms int, scale float64, seed int64) *Community {
	if organisms <= 0 {
		organisms = 96
	}
	if scale <= 0 {
		scale = 1
	}
	cfg := CommunityConfig{
		NumGenomes:     organisms,
		MeanGenomeLen:  int(8000 * scale),
		LenVariation:   0.5,
		AbundanceSigma: 1.8, // soil communities are extremely uneven
		RRNALen:        300,
		RRNACopies:     1,
		RRNADivergence: 0.04,
		RepeatLen:      200,
		RepeatCopies:   10,
		StrainFraction: 0.12,
		StrainSNPRate:  0.012,
		Seed:           seed,
	}
	return GenerateCommunity(cfg)
}

// TimeSeriesSamples returns n sample configurations modelling a time series
// over one environment: sample "t0" is the undrifted baseline and each later
// sample "tK" drifts every genome's abundance by an independent log-normal
// factor exp(N(0, sigma)). n <= 0 defaults to 2 samples, sigma <= 0 to 0.4 —
// enough drift that rare organisms move in and out of assemblable coverage
// between samples while the community's membership stays fixed.
func TimeSeriesSamples(n int, sigma float64) []SampleConfig {
	if n <= 0 {
		n = 2
	}
	if sigma <= 0 {
		sigma = 0.4
	}
	out := make([]SampleConfig, n)
	for i := range out {
		out[i].Name = fmt.Sprintf("t%d", i)
		if i > 0 {
			out[i].AbundanceSigma = sigma
		}
	}
	return out
}

// ContaminationSamples returns n sample configurations in which every sample
// carries its own private contaminant genome drawing the given fraction of
// that sample's reads — the cross-sample contamination setting where
// co-assembly still works because the shared community dominates the union.
// n <= 0 defaults to 2 samples, fraction <= 0 to 0.05.
func ContaminationSamples(n int, fraction float64) []SampleConfig {
	if n <= 0 {
		n = 2
	}
	if fraction <= 0 {
		fraction = 0.05
	}
	out := make([]SampleConfig, n)
	for i := range out {
		out[i].Name = fmt.Sprintf("c%d", i)
		out[i].ContaminantFraction = fraction
	}
	return out
}

// CoassemblyScenario builds the canonical co-assembly demonstration: a small
// community whose rarest organism is pinned at an abundance low enough that
// no single sample's share of the coverage budget can assemble it (its
// per-sample depth sits below the assembler's MinKmerCount=2 error filter),
// while the union of all samples comfortably can. The returned ReadConfig
// carries a TimeSeriesSamples list of the requested size; assemble each
// sample's reads alone versus the union to observe the recovery gap.
func CoassemblyScenario(samples int, seed int64) (*Community, ReadConfig) {
	if samples <= 0 {
		samples = 4
	}
	c := GenerateCommunity(CommunityConfig{
		NumGenomes:     4,
		MeanGenomeLen:  6000,
		LenVariation:   0.15,
		AbundanceSigma: 0.4,
		RRNALen:        200,
		RRNACopies:     1,
		RRNADivergence: 0.02,
		RepeatLen:      0,
		StrainFraction: 0,
		StrainSNPRate:  0.01,
		Seed:           seed,
	})
	// Pin the abundance profile so the scenario does not depend on the
	// log-normal draw: three common organisms and one rare one at 4%. At
	// total coverage 40 split over 4 samples, the rare genome sees ~1.6x
	// per sample (unassemblable: nearly every k-mer occurs once and is
	// discarded as a sequencing error) but ~6.4x in the union.
	pinned := []float64{0.32, 0.32, 0.32, 0.04}
	for i := range c.Genomes {
		if i < len(pinned) {
			c.Genomes[i].Abundance = pinned[i]
		}
	}
	rc := ReadConfig{
		ReadLen:    100,
		InsertSize: 280,
		InsertStd:  25,
		ErrorRate:  0.005,
		Coverage:   40,
		Seed:       seed + 1,
		Samples:    TimeSeriesSamples(samples, 0.25),
	}
	return c, rc
}

// WeakScalingPoint describes one row of the paper's Table II weak-scaling
// series: the number of genomic taxa and read pairs grows proportionally to
// the number of nodes.
type WeakScalingPoint struct {
	Nodes     int
	Taxa      int
	ReadPairs int
}

// WeakScalingSeries returns the Table II series scaled down by the given
// factor: the paper's points are (128, 5 taxa, 125 M reads) ... (1024, 40
// taxa, 1 B reads); here nodes are divided by nodeDiv and read pairs are
// basePairsPerTaxon per taxon.
func WeakScalingSeries(nodeDiv int, basePairsPerTaxon int) []WeakScalingPoint {
	if nodeDiv <= 0 {
		nodeDiv = 32
	}
	if basePairsPerTaxon <= 0 {
		basePairsPerTaxon = 1500
	}
	points := []struct{ nodes, taxa int }{
		{128, 5}, {256, 10}, {512, 20}, {1024, 40},
	}
	out := make([]WeakScalingPoint, len(points))
	for i, p := range points {
		out[i] = WeakScalingPoint{
			Nodes:     p.nodes / nodeDiv,
			Taxa:      p.taxa,
			ReadPairs: p.taxa * basePairsPerTaxon,
		}
		if out[i].Nodes < 1 {
			out[i].Nodes = 1
		}
	}
	return out
}

// WeakScalingCommunity builds the community for one weak-scaling point.
func WeakScalingCommunity(p WeakScalingPoint, seed int64) *Community {
	cfg := CommunityConfig{
		NumGenomes:     p.Taxa,
		MeanGenomeLen:  12000,
		LenVariation:   0.3,
		AbundanceSigma: 1.0,
		RRNALen:        300,
		RRNACopies:     1,
		RRNADivergence: 0.03,
		RepeatLen:      200,
		RepeatCopies:   2,
		StrainFraction: 0,
		StrainSNPRate:  0.01,
		Seed:           seed,
	}
	return GenerateCommunity(cfg)
}
