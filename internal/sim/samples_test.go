package sim

import (
	"math"
	"reflect"
	"testing"
)

// TestNormalizedSamples pins the per-sample normalization rules: derived
// names and seeds, clamps, contaminant defaults and share normalization.
func TestNormalizedSamples(t *testing.T) {
	cfg := ReadConfig{
		ReadLen: 100, InsertSize: 280, Coverage: 10, Seed: 11,
		Samples: []SampleConfig{
			{},
			{Name: "lake", AbundanceSigma: -2, ContaminantFraction: 0.99},
			{Seed: 77, ContaminantFraction: 0.1, ContaminantLen: 800},
		},
	}
	samples := cfg.Normalized().Samples

	if samples[0].Name != "sample0" || samples[1].Name != "lake" || samples[2].Name != "sample2" {
		t.Errorf("sample names normalized to %q, %q, %q", samples[0].Name, samples[1].Name, samples[2].Name)
	}
	// Sample 0 inherits the parent seed exactly — the one-sample equivalence
	// guarantee — and later samples stride away from it.
	if samples[0].Seed != 11 {
		t.Errorf("sample 0 seed = %d, want the parent seed 11", samples[0].Seed)
	}
	if samples[1].Seed != 11+sampleSeedStride {
		t.Errorf("sample 1 seed = %d, want %d", samples[1].Seed, 11+sampleSeedStride)
	}
	if samples[2].Seed != 77 {
		t.Errorf("explicit sample seed = %d, want 77 honored verbatim", samples[2].Seed)
	}
	if samples[1].AbundanceSigma != 0 {
		t.Errorf("negative AbundanceSigma became %v, want 0", samples[1].AbundanceSigma)
	}
	if samples[1].ContaminantFraction != 0.9 {
		t.Errorf("ContaminantFraction 0.99 clamped to %v, want 0.9", samples[1].ContaminantFraction)
	}
	if samples[1].ContaminantLen != defaultContaminantLen {
		t.Errorf("unset ContaminantLen became %d, want default %d", samples[1].ContaminantLen, defaultContaminantLen)
	}
	if samples[2].ContaminantLen != 800 {
		t.Errorf("explicit ContaminantLen became %d, want 800", samples[2].ContaminantLen)
	}
	var sum float64
	for _, s := range samples {
		if s.CoverageShare <= 0 {
			t.Errorf("sample %s normalized to share %v; must be positive", s.Name, s.CoverageShare)
		}
		sum += s.CoverageShare
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("normalized sample shares sum to %v, want 1", sum)
	}

	// Library seeds stay unset under a Samples list (each sample re-derives
	// them from its own seed) but are honored when set explicitly.
	cfg.Libraries = []LibraryConfig{{InsertSize: 300}, {InsertSize: 900, Seed: 5}}
	libs := cfg.Normalized().Libraries
	if libs[0].Seed != 0 {
		t.Errorf("library seed under Samples = %d, want 0 (deferred to per-sample derivation)", libs[0].Seed)
	}
	if libs[1].Seed != 5 {
		t.Errorf("explicit library seed under Samples = %d, want 5", libs[1].Seed)
	}
	cfg.Samples = nil
	if got := cfg.Normalized().Libraries[0].Seed; got != 11+1000003 {
		t.Errorf("library seed without Samples = %d, want %d", got, 11+1000003)
	}
}

// TestOneSampleShorthandEquivalence is the simulator half of the golden
// equivalence contract: a one-entry Samples list with an empty SampleConfig{}
// must emit byte-identical reads to the no-samples shorthand, for both the
// single-library and multi-library forms.
func TestOneSampleShorthandEquivalence(t *testing.T) {
	c := normTestCommunity(t)
	base := ReadConfig{ReadLen: 100, InsertSize: 280, InsertStd: 25, ErrorRate: 0.01, Coverage: 8, Seed: 9}
	withSample := base
	withSample.Samples = []SampleConfig{{}}
	if !readsEqual(SimulateReads(c, base), SimulateReads(c, withSample)) {
		t.Error("one empty sample emits different reads than the no-samples shorthand")
	}

	multi := TwoLibraryReadConfig(8, 9)
	multiSample := multi
	multiSample.Samples = []SampleConfig{{}}
	if !readsEqual(SimulateReads(c, multi), SimulateReads(c, multiSample)) {
		t.Error("one empty sample emits different reads than the no-samples shorthand (two libraries)")
	}

	// TotalPairs budgets go through round(pairs*share) with share exactly 1.
	pairs := base
	pairs.Coverage = 0
	pairs.TotalPairs = 321
	pairsSample := pairs
	pairsSample.Samples = []SampleConfig{{}}
	if !readsEqual(SimulateReads(c, pairs), SimulateReads(c, pairsSample)) {
		t.Error("one empty sample emits different reads than the no-samples shorthand (TotalPairs budget)")
	}
}

// TestMultiSampleStructure checks the structural contract of a multi-sample
// read set: SampleID tags match the sample order, every sample contributes
// its share of the pairs, the samples draw distinct fragment streams, and
// pair indices continue across samples so IDs stay globally unique.
func TestMultiSampleStructure(t *testing.T) {
	c := normTestCommunity(t)
	cfg := ReadConfig{
		ReadLen: 80, InsertSize: 240, InsertStd: 20, ErrorRate: 0.01, TotalPairs: 300, Seed: 21,
		Samples: []SampleConfig{{}, {}, {}},
	}
	reads := SimulateReads(c, cfg)
	if len(reads) == 0 {
		t.Fatal("no reads simulated")
	}
	counts := map[uint8]int{}
	ids := map[string]bool{}
	for _, r := range reads {
		counts[r.SampleID]++
		if ids[r.ID] {
			t.Fatalf("duplicate read ID %q across samples", r.ID)
		}
		ids[r.ID] = true
	}
	if len(counts) != 3 {
		t.Fatalf("reads carry %d distinct SampleIDs, want 3", len(counts))
	}
	for sid, n := range counts {
		if n < 150 || n > 250 {
			t.Errorf("sample %d holds %d of %d reads; want roughly a third", sid, n, len(reads))
		}
	}

	// Equal-share samples of the same undrifted community must still draw
	// different fragments: each re-derives its generators from its own seed.
	perSample := make([][2]string, 3)
	for _, r := range reads {
		if perSample[r.SampleID][0] == "" {
			perSample[r.SampleID] = [2]string{r.ID, string(r.Seq)}
		}
	}
	if perSample[0][1] == perSample[1][1] && perSample[1][1] == perSample[2][1] {
		t.Error("all samples opened with an identical first read; sample streams are correlated")
	}
}

// TestSampleCommunityViews pins the abundance-view semantics: undrifted
// samples share the community pointer (no float is touched), scale lists
// override sigma, and a contaminant draws its configured read fraction.
func TestSampleCommunityViews(t *testing.T) {
	c := normTestCommunity(t)
	if got := sampleCommunity(c, SampleConfig{Name: "plain"}); got != c {
		t.Error("undrifted sample did not reuse the community pointer")
	}

	scaled := sampleCommunity(c, SampleConfig{Name: "s", AbundanceScale: []float64{2, 0.5}, AbundanceSigma: 9, Seed: 3})
	if len(scaled.Genomes) != len(c.Genomes) {
		t.Fatalf("scaled view has %d genomes, want %d", len(scaled.Genomes), len(c.Genomes))
	}
	if scaled.Genomes[0].Abundance != 2*c.Genomes[0].Abundance {
		t.Errorf("genome 0 abundance %v, want scaled %v", scaled.Genomes[0].Abundance, 2*c.Genomes[0].Abundance)
	}
	if scaled.Genomes[1].Abundance != 0.5*c.Genomes[1].Abundance {
		t.Errorf("genome 1 abundance %v, want scaled %v", scaled.Genomes[1].Abundance, 0.5*c.Genomes[1].Abundance)
	}
	if scaled.Genomes[2].Abundance != c.Genomes[2].Abundance {
		t.Errorf("genome beyond the scale list drifted from %v to %v", c.Genomes[2].Abundance, scaled.Genomes[2].Abundance)
	}
	if c.Genomes[0].Abundance == 2*c.Genomes[0].Abundance {
		t.Error("scaling mutated the shared community")
	}

	// A 20% contaminant must actually draw about 20% of the sample's reads.
	cfg := ReadConfig{
		ReadLen: 80, InsertSize: 240, InsertStd: 20, TotalPairs: 500, Seed: 5,
		Samples: []SampleConfig{{Name: "dirty", ContaminantFraction: 0.2}},
	}
	reads := SimulateReads(c, cfg)
	contam := 0
	for _, r := range reads {
		if SourceGenome(r.ID) == "contam_dirty" {
			contam++
		}
	}
	frac := float64(contam) / float64(len(reads))
	if frac < 0.12 || frac > 0.28 {
		t.Errorf("contaminant drew %.3f of the reads, want ~0.2", frac)
	}

	// The same sample config against the same community is deterministic.
	if !readsEqual(reads, SimulateReads(c, cfg)) {
		t.Error("contaminated sample simulation is not deterministic")
	}
}

// TestCoassemblyScenarioShape sanity-checks the preset the example, the
// recovery test and the benchmark all build on: the rare genome is rare in
// every sample, and the per-sample read sets are disjoint slices of the
// union.
func TestCoassemblyScenarioShape(t *testing.T) {
	c, rc := CoassemblyScenario(4, 42)
	if len(c.Genomes) != 4 {
		t.Fatalf("scenario community has %d genomes, want 4", len(c.Genomes))
	}
	rare := c.Genomes[3]
	for i := 0; i < 3; i++ {
		if c.Genomes[i].Abundance <= rare.Abundance {
			t.Fatalf("genome %d abundance %v not above the rare genome's %v", i, c.Genomes[i].Abundance, rare.Abundance)
		}
	}
	reads := SimulateReads(c, rc)
	perSample := map[uint8]int{}
	rarePerSample := map[uint8]int{}
	for _, r := range reads {
		perSample[r.SampleID]++
		if SourceGenome(r.ID) == rare.Name {
			rarePerSample[r.SampleID]++
		}
	}
	if len(perSample) != 4 {
		t.Fatalf("scenario reads carry %d distinct SampleIDs, want 4", len(perSample))
	}
	for sid, n := range perSample {
		if rf := float64(rarePerSample[sid]) / float64(n); rf > 0.12 {
			t.Errorf("sample %d drew %.3f of its reads from the rare genome; scenario abundance pinning failed", sid, rf)
		}
	}
}

// FuzzSampleConfigNormalize drives ReadConfig.Normalized over arbitrary
// sample parameters: normalization must be exactly idempotent, shares must
// come out positive and unit-sum, and every clamp must hold — for any input,
// not just the handcrafted table cases.
func FuzzSampleConfigNormalize(f *testing.F) {
	f.Add(int64(7), 2.0, -1.0, 0.5, 99.0, -3, int64(0), 100, 5.0)
	f.Add(int64(0), 0.0, 0.0, 0.0, 0.0, 0, int64(0), 0, 0.0)
	f.Add(int64(-500009), 1.0, 0.3, 0.0, 0.05, 5000, int64(12), 80, 0.0)
	f.Add(int64(9), -2.5, 1e300, -1e300, 0.9, 1<<30, int64(-1), 33, 1e-12)

	f.Fuzz(func(t *testing.T, seed int64, share0, share1, sigma, contamFrac float64,
		contamLen int, sampleSeed int64, readLen int, cov float64) {
		if math.IsNaN(share0) || math.IsNaN(share1) || math.IsNaN(sigma) ||
			math.IsNaN(contamFrac) || math.IsNaN(cov) ||
			math.IsInf(share0, 0) || math.IsInf(share1, 0) {
			t.Skip("NaN/Inf shares are rejected upstream by the CLI validators")
		}
		cfg := ReadConfig{
			ReadLen: readLen, Coverage: cov, Seed: seed,
			Samples: []SampleConfig{
				{CoverageShare: share0, AbundanceSigma: sigma, ContaminantFraction: contamFrac, ContaminantLen: contamLen},
				{CoverageShare: share1, Seed: sampleSeed},
				{},
			},
		}
		once := cfg.Normalized()
		twice := once.Normalized()
		if !reflect.DeepEqual(once, twice) {
			t.Fatalf("Normalized is not idempotent:\n once: %+v\ntwice: %+v", once, twice)
		}
		var sum float64
		for i, s := range once.Samples {
			if s.Name == "" {
				t.Errorf("sample %d kept an empty name", i)
			}
			if !(s.CoverageShare > 0) {
				t.Errorf("sample %d normalized to share %v; must be positive", i, s.CoverageShare)
			}
			sum += s.CoverageShare
			if s.AbundanceSigma < 0 {
				t.Errorf("sample %d kept negative sigma %v", i, s.AbundanceSigma)
			}
			if s.ContaminantFraction < 0 || s.ContaminantFraction > 0.9 {
				t.Errorf("sample %d ContaminantFraction %v escaped [0, 0.9]", i, s.ContaminantFraction)
			}
			if s.ContaminantFraction > 0 && s.ContaminantLen <= 0 {
				t.Errorf("sample %d has a contaminant with non-positive length %d", i, s.ContaminantLen)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("normalized sample shares sum to %v, want 1", sum)
		}
		// The trailing empty SampleConfig{} must inherit the parent geometry
		// implicitly: its seed derives from the parent's and nothing else is
		// invented for it.
		last := once.Samples[2]
		if last.Seed != seed+2*sampleSeedStride {
			t.Errorf("empty sample seed = %d, want derived %d", last.Seed, seed+2*sampleSeedStride)
		}
		// Library seeds stay deferred whenever a Samples list is present.
		cfg.Libraries = []LibraryConfig{{}}
		for _, lib := range cfg.Normalized().Libraries {
			if lib.Seed != 0 {
				t.Errorf("library seed %d filled under a Samples list; must defer to per-sample derivation", lib.Seed)
			}
		}
	})
}
