package core

import (
	"testing"

	"mhmgo/internal/eval"
	"mhmgo/internal/hmm"
	"mhmgo/internal/seq"
	"mhmgo/internal/sim"
)

// smallCommunity returns a small community and reads suitable for fast
// end-to-end assembly tests.
func smallCommunity(t *testing.T, genomes int, coverage float64) (*sim.Community, []seq.Read) {
	t.Helper()
	comm := sim.GenerateCommunity(sim.CommunityConfig{
		NumGenomes:     genomes,
		MeanGenomeLen:  4000,
		LenVariation:   0.2,
		AbundanceSigma: 0.6,
		RRNALen:        200,
		RRNADivergence: 0.02,
		StrainFraction: 0,
		Seed:           101,
	})
	reads := sim.SimulateReads(comm, sim.ReadConfig{
		ReadLen:    80,
		InsertSize: 220,
		InsertStd:  15,
		ErrorRate:  0.005,
		Coverage:   coverage,
		Seed:       102,
	})
	return comm, reads
}

func testConfig(ranks int) Config {
	cfg := DefaultConfig(ranks)
	cfg.KMin, cfg.KMax, cfg.KStep = 21, 33, 12
	cfg.InsertSize, cfg.InsertStd = 220, 15
	return cfg
}

func TestKValues(t *testing.T) {
	cfg := Config{KMin: 21, KMax: 55, KStep: 12}
	ks := cfg.KValues()
	want := []int{21, 33, 45}
	if len(ks) != len(want) {
		t.Fatalf("KValues = %v, want %v", ks, want)
	}
	for i := range want {
		if ks[i] != want[i] {
			t.Errorf("KValues = %v, want %v", ks, want)
			break
		}
	}
	// Even k values are bumped to odd ones.
	cfg = Config{KMin: 20, KMax: 20, KStep: 2}
	ks = cfg.KValues()
	if len(ks) != 1 || ks[0] != 21 {
		t.Errorf("even k not adjusted: %v", ks)
	}
}

func TestAssembleErrors(t *testing.T) {
	if _, err := Assemble(nil, DefaultConfig(2)); err == nil {
		t.Error("empty read set should fail")
	}
	cfg := DefaultConfig(2)
	cfg.KMin, cfg.KMax = 200, 300
	if _, err := Assemble([]seq.Read{{ID: "r", Seq: []byte("ACGT")}}, cfg); err == nil {
		t.Error("k out of range should fail")
	}
}

func TestEndToEndAssemblyQuality(t *testing.T) {
	comm, reads := smallCommunity(t, 3, 18)
	cfg := testConfig(4)
	cfg.RRNAProfile = hmm.BuildProfile([][]byte{comm.RRNAMarker}, 0.9)
	res, err := Assemble(reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Contigs) == 0 {
		t.Fatal("no contigs assembled")
	}
	if res.SimSeconds <= 0 || res.WallSeconds <= 0 {
		t.Error("timings not recorded")
	}
	if len(res.Stages) < 5 {
		t.Errorf("expected stage timings for all stages, got %v", res.Stages)
	}
	if res.AlignedReadFrac < 0.8 {
		t.Errorf("only %v of reads aligned back to contigs", res.AlignedReadFrac)
	}

	// Reference-based quality: most of each genome should be recovered and
	// nothing should be badly misassembled.
	eopts := eval.DefaultOptions()
	eopts.RRNAProfile = cfg.RRNAProfile
	report := eval.Evaluate("MetaHipMer", res.FinalSequences(), comm, eopts)
	if report.GenomeFraction < 0.85 {
		t.Errorf("genome fraction %v too low", report.GenomeFraction)
	}
	// Metagenome assemblies do contain some misassemblies (Table I reports
	// hundreds for real assemblers); just require that they stay a small
	// minority of the output sequences.
	if limit := 3 + report.NumSeqs/5; report.Misassemblies > limit {
		t.Errorf("too many misassemblies: %d of %d sequences", report.Misassemblies, report.NumSeqs)
	}
	if report.RRNACount == 0 {
		t.Error("no rRNA regions recovered")
	}
	// Scaffolds/contigs should cover a large portion of the 3-genome
	// community in total length.
	if report.TotalLen < comm.TotalBases()*3/4 {
		t.Errorf("assembly length %d much smaller than community %d", report.TotalLen, comm.TotalBases())
	}
}

func TestAssemblyDeterministicAcrossRankCounts(t *testing.T) {
	_, reads := smallCommunity(t, 2, 15)
	// Localization changes read ordering and the Bloom prefilter drops the
	// first sighting of each k-mer (whose identity depends on arrival
	// order), so both are disabled for a bit-identical comparison.
	cfgA := testConfig(2)
	cfgA.ReadLocalization = false
	cfgA.UseBloom = false
	cfgB := testConfig(6)
	cfgB.ReadLocalization = false
	cfgB.UseBloom = false
	resA, err := Assemble(reads, cfgA)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := Assemble(reads, cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if len(resA.Contigs) != len(resB.Contigs) {
		t.Fatalf("contig count differs across rank counts: %d vs %d", len(resA.Contigs), len(resB.Contigs))
	}
	for i := range resA.Contigs {
		if string(resA.Contigs[i].Seq) != string(resB.Contigs[i].Seq) {
			t.Errorf("contig %d differs across rank counts", i)
		}
	}
}

func TestScalingReducesSimulatedTime(t *testing.T) {
	_, reads := smallCommunity(t, 2, 12)
	times := map[int]float64{}
	// One rank per node in both runs so that the on-node/off-node mix is
	// comparable and only the degree of parallelism changes.
	for _, ranks := range []int{2, 8} {
		cfg := testConfig(ranks)
		cfg.RanksPerNode = 1
		res, err := Assemble(reads, cfg)
		if err != nil {
			t.Fatal(err)
		}
		times[ranks] = res.SimSeconds
	}
	if times[8] >= times[2] {
		t.Errorf("simulated time should drop with more ranks: %v", times)
	}
}

func TestFreeCommunicationAblation(t *testing.T) {
	// CostSet with a zero cost model must run the whole pipeline with zero
	// simulated time (every operation still executes and is counted), and
	// must produce the same assembly as the default-cost run.
	_, reads := smallCommunity(t, 2, 12)
	free := testConfig(4)
	free.CostSet = true
	freeRes, err := Assemble(reads, free)
	if err != nil {
		t.Fatal(err)
	}
	if freeRes.SimSeconds != 0 {
		t.Errorf("free-communication run charged %v simulated seconds, want 0", freeRes.SimSeconds)
	}
	if freeRes.Stats.Messages == 0 {
		t.Error("free-communication run should still count its messages")
	}
	paidRes, err := Assemble(reads, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if paidRes.SimSeconds <= 0 {
		t.Error("default-cost run should charge simulated time")
	}
	if len(freeRes.FinalSequences()) != len(paidRes.FinalSequences()) {
		t.Errorf("cost model must not change assembly results: %d vs %d sequences",
			len(freeRes.FinalSequences()), len(paidRes.FinalSequences()))
	}
}

func TestDepthDependentThresholdBeatsGlobalOnQuality(t *testing.T) {
	comm, reads := smallCommunity(t, 3, 25)
	meta := testConfig(4)
	hip := testConfig(4)
	hip.GlobalTHQ = 1 // HipMer-style fixed threshold
	metaRes, err := Assemble(reads, meta)
	if err != nil {
		t.Fatal(err)
	}
	hipRes, err := Assemble(reads, hip)
	if err != nil {
		t.Fatal(err)
	}
	eopts := eval.DefaultOptions()
	metaRep := eval.Evaluate("meta", metaRes.FinalSequences(), comm, eopts)
	hipRep := eval.Evaluate("hip", hipRes.FinalSequences(), comm, eopts)
	if metaRep.GenomeFraction+0.02 < hipRep.GenomeFraction {
		t.Errorf("depth-dependent threshold should not lose coverage: %v vs %v",
			metaRep.GenomeFraction, hipRep.GenomeFraction)
	}
}

func TestScaffoldingDisabled(t *testing.T) {
	_, reads := smallCommunity(t, 2, 12)
	cfg := testConfig(3)
	cfg.Scaffolding = false
	res, err := Assemble(reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scaffolds) != 0 {
		t.Error("scaffolds produced despite Scaffolding=false")
	}
	if len(res.FinalSequences()) != len(res.Contigs) {
		t.Error("FinalSequences should fall back to contigs")
	}
}

func TestMinContigLenFilter(t *testing.T) {
	_, reads := smallCommunity(t, 2, 12)
	cfg := testConfig(2)
	cfg.Scaffolding = false
	cfg.MinContigLen = 500
	res, err := Assemble(reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Contigs {
		if len(c.Seq) < 500 {
			t.Errorf("contig of length %d survived the MinContigLen filter", len(c.Seq))
		}
	}
}
