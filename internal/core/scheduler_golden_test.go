package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"runtime"
	"testing"

	"mhmgo/internal/sim"
)

// The pooled scheduler (pgas.Config.Workers) is an execution knob: it decides
// how many rank goroutines run concurrently, never what they compute. These
// tests pin that contract two ways: against golden values captured from the
// pre-scheduler goroutine-per-rank engine at P=8, and against each other at
// P=1024 where the pool actually multiplexes many parked ranks per worker.

// resultFingerprint hashes the assembled sequences (each prefixed with its
// little-endian uint64 length, so the digest is injective over the sequence
// list) into a hex digest.
func resultFingerprint(res *Result) string {
	h := sha256.New()
	var lenBuf [8]byte
	for _, s := range res.FinalSequences() {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(s)))
		h.Write(lenBuf[:])
		h.Write(s)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestSchedulerGoldenP8 pins the pooled scheduler's output — simulated
// seconds and the exact assembled sequences — to golden values captured from
// the pre-refactor goroutine-per-rank engine, for every pool size. Any drift
// means the scheduler changed simulation semantics, not just wall-clock.
func TestSchedulerGoldenP8(t *testing.T) {
	const (
		wantSim  = "0.056517040799970962"
		wantHash = "b829c58aa30a51f0fd98beed57d0d6fd6cbd6d3556bf55b5f39e37b25b2d6147"
	)
	comm := sim.WetlandsLikeCommunity(8, 0.5, 7)
	reads := sim.SimulateReads(comm, sim.ReadConfig{
		ReadLen:    100,
		InsertSize: 280,
		InsertStd:  25,
		ErrorRate:  0.01,
		Coverage:   10,
		Seed:       8,
	})
	if len(reads) != 2962 {
		t.Fatalf("workload drifted: %d reads, want 2962", len(reads))
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := DefaultConfig(8)
			cfg.RanksPerNode = 4
			cfg.Workers = workers
			res, err := Assemble(reads, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := fmt.Sprintf("%.18f", res.SimSeconds); got != wantSim {
				t.Errorf("sim seconds = %s, want %s (pre-refactor golden)", got, wantSim)
			}
			if got := resultFingerprint(res); got != wantHash {
				t.Errorf("output hash = %s, want %s (pre-refactor golden)", got, wantHash)
			}
		})
	}
}

// TestLargePSmokeP1024 runs the full pipeline at P=1024 — far more ranks than
// hardware threads, so most ranks are parked at any moment — and asserts the
// result is bit-identical across pool sizes. Skipped under -race (goroutine
// shadow memory makes P=1024 prohibitively slow); the P=8 golden above and
// the pgas package's own race tests cover the same code paths.
func TestLargePSmokeP1024(t *testing.T) {
	if raceEnabled {
		t.Skip("P=1024 smoke is too slow under the race detector")
	}
	if testing.Short() {
		t.Skip("P=1024 smoke skipped in -short mode")
	}
	comm := sim.WetlandsLikeCommunity(4, 0.3, 7)
	reads := sim.SimulateReads(comm, sim.ReadConfig{
		ReadLen:    100,
		InsertSize: 280,
		InsertStd:  25,
		ErrorRate:  0.01,
		Coverage:   4,
		Seed:       9,
	})
	type outcome struct {
		sim  string
		hash string
	}
	var first *outcome
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		cfg := DefaultConfig(1024)
		cfg.RanksPerNode = 16
		cfg.Workers = workers
		// One k iteration keeps the smoke inside a CI time budget; the
		// barrier/exchange traffic per iteration is identical in kind.
		cfg.KMin, cfg.KMax = 21, 21
		res, err := Assemble(reads, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := outcome{sim: fmt.Sprintf("%.18f", res.SimSeconds), hash: resultFingerprint(res)}
		if first == nil {
			first = &got
			t.Logf("P=1024 workers=%d: sim=%s hash=%s scaffolds=%d", workers, got.sim, got.hash, len(res.FinalSequences()))
			continue
		}
		if got != *first {
			t.Errorf("workers=%d diverged: sim=%s hash=%s, want sim=%s hash=%s",
				workers, got.sim, got.hash, first.sim, first.hash)
		}
	}
}
