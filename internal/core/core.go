// Package core implements the end-to-end MetaHipMer pipeline (Algorithm 1 +
// Algorithm 3 of the paper): iterative contig generation over a range of
// k-mer sizes followed by metagenome-aware scaffolding, executed SPMD-style
// on a virtual PGAS machine.
package core

import (
	"context"
	"fmt"
	"sort"

	"mhmgo/internal/aligner"
	"mhmgo/internal/cgraph"
	"mhmgo/internal/checkpoint"
	"mhmgo/internal/dbg"
	"mhmgo/internal/dht"
	"mhmgo/internal/dist"
	"mhmgo/internal/hmm"
	"mhmgo/internal/kmeranalysis"
	"mhmgo/internal/localasm"
	"mhmgo/internal/pgas"
	"mhmgo/internal/scaffold"
	"mhmgo/internal/seq"
)

// Stage name constants used in timing breakdowns (Figure 5).
const (
	StageKmerAnalysis  = "kmer_analysis"
	StageKmerMerge     = "kmer_merge"
	StageDBGTraversal  = "dbg_traversal"
	StageContigRefine  = "contig_refine"
	StageAlignment     = "alignment"
	StageLocalAssembly = "local_assembly"
	StageScaffolding   = "scaffolding"
)

// Config controls a MetaHipMer assembly.
type Config struct {
	// Machine shape.
	Ranks        int
	RanksPerNode int
	Cost         pgas.CostModel
	// CostSet uses Cost verbatim even when it is the zero model (the
	// free-communication ablation); see pgas.Config.CostSet.
	CostSet bool
	// Workers bounds how many simulated ranks run concurrently as OS
	// threads (see pgas.Config.Workers). It is an execution knob, not a
	// simulation parameter: results, simulated time, and checkpoint
	// identity (configHash) are independent of it, so a run checkpointed
	// under one worker count can resume under another.
	Workers int

	// Iterative contig generation: k runs from KMin to KMax in steps of
	// KStep (Algorithm 1).
	KMin, KMax, KStep int

	// K-mer analysis parameters.
	MinKmerCount uint32
	UseBloom     bool

	// De Bruijn graph extension thresholds: the metagenome depth-dependent
	// rule uses TBase and ErrorRate; setting GlobalTHQ > 0 switches to the
	// HipMer single-genome rule (used by the baseline and the ablation).
	TBase     uint32
	ErrorRate float64
	GlobalTHQ uint32

	// Library geometry. Libraries lists the paired-end libraries of the
	// input reads, in the order their LibID tags index (seq.Read.LibID = i
	// refers to Libraries[i] — match the order the reads were simulated or
	// loaded with). Scaffolding runs one round per library in ascending
	// insert-size order, splicing each round's scaffolds back in as the
	// next round's contigs; local assembly widens its recruitment radius
	// per library.
	//
	// The legacy InsertSize/InsertStd pair remains a fully backward
	// compatible one-library shorthand: when Libraries is empty it is
	// promoted to a single-entry list, and a one-library config produces
	// byte-identical output to the pre-multi-library pipeline.
	Libraries  []seq.Library
	InsertSize int
	InsertStd  int

	// Optimization toggles (each is an ablation axis).
	Aggregate        bool
	SoftwareCache    bool
	ReadLocalization bool
	WorkStealing     bool
	UseComponents    bool
	// GatherToAll reverts the pipeline's record collections (contigs,
	// alignments, extensions, links, scaffolds) to the legacy gather-to-all
	// pattern: every collection is charged — and its memory footprint
	// accounted — as if materialized on every rank. Results are bit-identical
	// to the distributed-ownership default; only cost and peak resident
	// bytes differ. This is the baseline of the distributed-ownership
	// ablation.
	GatherToAll bool

	// Pipeline stage toggles.
	BubbleMerging bool
	HairRemoval   bool
	Pruning       bool
	Compaction    bool
	LocalAssembly bool
	Scaffolding   bool

	// RRNAProfile enables the ribosomal-region scaffolding rule and rRNA
	// counting.
	RRNAProfile *hmm.Profile

	// MinContigLen drops contigs shorter than this from the final output.
	MinContigLen int

	// Checkpoint/restart (the robustness pillar: production HipMer/MetaHipMer
	// runs survive multi-hour assemblies by checkpointing between stages).
	//
	// CheckpointDir, when non-empty, makes the run serialize every rank's
	// surviving pipeline state after each stage into that directory, chained
	// into a content-hashed manifest (see the checkpoint package). ResumeFrom,
	// when non-empty, restores the run from the last completed stage recorded
	// in that directory; the resume is refused — with a distinct error per
	// failure mode — if the configuration hash, input reads hash or rank
	// count differ from the checkpointed run, or if the manifest chain or any
	// shard file fails verification. A resumed run reproduces the
	// uninterrupted run bit-for-bit: final sequences, simulated seconds and
	// manifest head hash are all identical.
	CheckpointDir string
	ResumeFrom    string

	// Progress, when non-nil, receives one event after every completed
	// pipeline stage (and scaffolding round), emitted by rank 0's goroutine
	// immediately after the stage-end barrier. The callback runs outside
	// simulated time — it charges nothing and cannot perturb results — but it
	// executes synchronously on the SPMD critical path, so it should return
	// quickly (hand the event to a channel or buffer, don't block on I/O).
	// Progress is an observation hook, not a simulation parameter: it is
	// excluded from the checkpoint configuration hash.
	Progress func(ProgressEvent)

	// Fault injection (testing). FailAfterStage kills the run (Assemble
	// returns ErrFaultInjected) immediately after the named stage of
	// iteration FailAtIteration completed and its checkpoint was written.
	// FailAtBarrier > 0 kills the run abruptly in the middle of rank 0's n-th
	// barrier entry — mid-collective, the worst possible moment. Neither knob
	// participates in the configuration hash: a resume with the fault cleared
	// must still match the killed run's identity.
	FailAfterStage  string
	FailAtIteration int
	FailAtBarrier   int
}

// DefaultConfig returns the standard MetaHipMer configuration for the given
// machine shape.
func DefaultConfig(ranks int) Config {
	return Config{
		Ranks:            ranks,
		RanksPerNode:     4,
		KMin:             21,
		KMax:             33,
		KStep:            12,
		MinKmerCount:     2,
		UseBloom:         true,
		TBase:            2,
		ErrorRate:        0.015,
		InsertSize:       seq.DefaultInsertSize,
		InsertStd:        seq.DefaultInsertStd,
		Aggregate:        true,
		SoftwareCache:    true,
		ReadLocalization: true,
		WorkStealing:     true,
		UseComponents:    true,
		BubbleMerging:    true,
		HairRemoval:      true,
		Pruning:          true,
		Compaction:       true,
		LocalAssembly:    true,
		Scaffolding:      true,
		MinContigLen:     0,
	}
}

func (c Config) withDefaults() Config {
	if c.Ranks <= 0 {
		c.Ranks = 4
	}
	if c.RanksPerNode <= 0 {
		c.RanksPerNode = c.Ranks
	}
	if c.KMin <= 0 {
		c.KMin = 21
	}
	if c.KMax < c.KMin {
		c.KMax = c.KMin
	}
	if c.KStep <= 0 {
		c.KStep = 12
	}
	if c.MinKmerCount == 0 {
		c.MinKmerCount = 2
	}
	if c.ErrorRate <= 0 {
		c.ErrorRate = 0.015
	}
	if c.TBase == 0 {
		c.TBase = 2
	}
	if c.InsertSize <= 0 {
		c.InsertSize = seq.DefaultInsertSize
	}
	if c.InsertStd <= 0 {
		c.InsertStd = c.InsertSize / 10
	}
	// The legacy single-library shorthand: an empty library list is one
	// library with the flat InsertSize/InsertStd geometry. Explicit lists
	// get the same per-entry defaulting.
	if len(c.Libraries) == 0 {
		c.Libraries = []seq.Library{{Name: "pe", InsertSize: c.InsertSize, InsertStd: c.InsertStd}}
	} else {
		libs := append([]seq.Library(nil), c.Libraries...)
		for i := range libs {
			if libs[i].Name == "" {
				libs[i].Name = fmt.Sprintf("lib%d", i)
			}
			if libs[i].InsertSize <= 0 {
				libs[i].InsertSize = seq.DefaultInsertSize
			}
			if libs[i].InsertStd <= 0 {
				libs[i].InsertStd = libs[i].InsertSize / 10
			}
		}
		c.Libraries = libs
	}
	return c
}

// scaffoldOrder returns the library indices in scaffolding-round order:
// ascending insert size, ties broken by name and then by index, so the round
// schedule is a pure function of the library list.
func scaffoldOrder(libs []seq.Library) []int {
	order := make([]int, len(libs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		la, lb := libs[order[a]], libs[order[b]]
		if la.InsertSize != lb.InsertSize {
			return la.InsertSize < lb.InsertSize
		}
		if la.Name != lb.Name {
			return la.Name < lb.Name
		}
		return order[a] < order[b]
	})
	return order
}

// KValues returns the k values of the iterative contig generation.
func (c Config) KValues() []int {
	c = c.withDefaults()
	var ks []int
	for k := c.KMin; k <= c.KMax; k += c.KStep {
		if k%2 == 0 {
			k++
		}
		if len(ks) > 0 && ks[len(ks)-1] >= k {
			continue
		}
		if k > seq.MaxK {
			break
		}
		ks = append(ks, k)
	}
	return ks
}

// ProgressEvent describes one completed pipeline stage of a running
// assembly, as delivered to Config.Progress. Events arrive in pipeline
// order; SimSeconds and ResidentBytes are rank 0's view at the stage-end
// barrier (the clock is identical on every rank there).
type ProgressEvent struct {
	// Stage is the completed stage's name (the Stage* constants).
	Stage string `json:"stage"`
	// Iteration is the k-iteration index the stage ran in; K its k-mer size.
	// Scaffolding reports the final iteration.
	Iteration int `json:"iteration"`
	K         int `json:"k"`
	// SimSeconds is the simulated clock at the stage boundary.
	SimSeconds float64 `json:"sim_seconds"`
	// ResidentBytes is rank 0's resident collective-payload meter at the
	// boundary (see pgas.CommStats.PeakResidentBytes for the run-wide peak).
	ResidentBytes uint64 `json:"resident_bytes"`
}

// Result is the outcome of an assembly.
type Result struct {
	// Contigs are the final contigs of iterative contig generation.
	Contigs []dbg.Contig
	// Scaffolds are the final gap-closed scaffolds (empty when scaffolding
	// is disabled).
	Scaffolds []scaffold.Scaffold
	// SimSeconds is the simulated parallel runtime; WallSeconds is the real
	// elapsed time of the (single-process) execution.
	SimSeconds  float64
	WallSeconds float64
	// Stages is the simulated time per pipeline stage (summed over
	// iterations).
	Stages []pgas.StageTime
	// Stats aggregates communication statistics over all ranks.
	Stats pgas.CommStats
	// Per-stage substatistics.
	TotalReads       int
	DistinctKmers    int
	HeavyHitterMax   int64
	AlignedReadFrac  float64
	LocalAsmBases    int
	ScaffoldSummary  scaffold.Result
	ContigStats      dbg.Stats
	ScaffoldStats    scaffold.Stats
	CacheHitRate     float64
	ReadsLocalizedTo int
	// ScaffoldRounds records one entry per scaffolding round, in execution
	// order (ascending library insert size). A single-library assembly has
	// exactly one round.
	ScaffoldRounds []RoundStats
	// ManifestHead is the checkpoint manifest's chain head hash (empty when
	// the run neither wrote checkpoints nor resumed from one). Two runs with
	// equal heads executed the identical pipeline over identical inputs.
	ManifestHead string
}

// RoundStats summarizes one scaffolding round: which library drove it and
// what it consumed and produced. A round's scaffolds re-enter the next round
// as its contigs, so InputContigs of round i+1 reflects (deduplicated)
// Scaffolds of round i.
type RoundStats struct {
	// Library is the library's name; LibIndex its position in
	// Config.Libraries (the LibID the round's alignments were filtered by).
	Library  string
	LibIndex int
	// InsertSize is the library geometry the round scaffolded with.
	InsertSize int
	// InputContigs is the global contig count entering the round; Scaffolds
	// the global scaffold count it produced; AcceptedLinks the accepted
	// contig-graph edges of the round.
	InputContigs  int
	Scaffolds     int
	AcceptedLinks int
}

// FinalSequences returns the assembly output: scaffold sequences when
// scaffolding ran, contig sequences otherwise.
func (r *Result) FinalSequences() [][]byte {
	if len(r.Scaffolds) > 0 {
		out := make([][]byte, len(r.Scaffolds))
		for i, s := range r.Scaffolds {
			out[i] = s.Seq
		}
		return out
	}
	out := make([][]byte, len(r.Contigs))
	for i, c := range r.Contigs {
		out[i] = c.Seq
	}
	return out
}

// Assemble runs the full MetaHipMer pipeline over the reads. Reads must be
// interleaved paired-end (mates at indices 2i and 2i+1); single-end data
// still assembles but produces no span links.
func Assemble(reads []seq.Read, cfg Config) (*Result, error) {
	return AssembleContext(context.Background(), reads, cfg)
}

// AssembleContext is Assemble with cancellation: when ctx is cancelled the
// virtual machine aborts (every rank unwinds at its next barrier) and the
// call returns an error wrapping pgas.ErrAborted together with the context's
// cause. Cancellation is prompt — collectives are barrier-synchronized, so
// no rank can block waiting for a peer that already unwound — and clean: the
// machine's worker pool drains, no goroutines leak, and checkpoints written
// before the abort remain durable and resumable. This is the serving layer's
// entry point: each job runs on its own machine under its own context.
func AssembleContext(ctx context.Context, reads []seq.Read, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	ks := cfg.KValues()
	if len(ks) == 0 {
		return nil, fmt.Errorf("core: no valid k values in [%d,%d]", cfg.KMin, cfg.KMax)
	}
	if len(reads) == 0 {
		return nil, fmt.Errorf("core: no reads to assemble")
	}
	if len(cfg.Libraries) > 256 {
		return nil, fmt.Errorf("core: %d libraries exceed the 256 the uint8 LibID tag can address", len(cfg.Libraries))
	}

	if cfg.FailAfterStage != "" {
		if _, ok := stageIndexOf(cfg.FailAfterStage); !ok {
			return nil, fmt.Errorf("core: FailAfterStage names unknown stage %q", cfg.FailAfterStage)
		}
	}

	machine := pgas.NewMachine(pgas.Config{Ranks: cfg.Ranks, RanksPerNode: cfg.RanksPerNode, Cost: cfg.Cost, CostSet: cfg.CostSet, Workers: cfg.Workers})
	res := &Result{TotalReads: len(reads)}

	// Checkpoint/restart context. Resume validation, shard decoding and the
	// reconstruction of the distributed structures all happen here — outside
	// the SPMD region and charge-free, because the uninterrupted run never
	// performs them; their simulated cost lives in the restored rank clocks.
	ck := &ckptRun{}
	if cfg.ResumeFrom != "" {
		rs, err := loadResume(cfg.ResumeFrom, reads, cfg, ks, machine)
		if err != nil {
			return nil, err
		}
		ck.resume = rs
	}
	if cfg.CheckpointDir != "" {
		man := checkpoint.New(configHash(cfg, ks), inputHash(reads), cfg.Ranks)
		if ck.resume != nil {
			// Continue the resumed run's chain: the head hash must end up
			// identical to an uninterrupted run's.
			man = ck.resume.man
		}
		w, err := newCkptWriter(cfg.CheckpointDir, cfg.Ranks, man)
		if err != nil {
			return nil, err
		}
		ck.writer = w
	}
	if cfg.FailAtBarrier > 0 {
		machine.InjectBarrierFailure(uint64(cfg.FailAtBarrier),
			fmt.Errorf("%w: killed inside barrier %d", ErrFaultInjected, cfg.FailAtBarrier))
	}

	stopWatch := machine.AbortOnCancel(ctx)
	perRank := make([]rankOutput, cfg.Ranks)
	runRes := machine.Run(func(r *pgas.Rank) {
		perRank[r.ID()] = runPipeline(r, reads, cfg, ks, ck)
	})
	stopWatch()
	if runRes.Err != nil {
		return nil, runRes.Err
	}
	if ck.writer != nil {
		if err := ck.writer.firstErr(); err != nil {
			return nil, fmt.Errorf("core: checkpoint write failed: %w", err)
		}
	}
	if perRank[0].failed {
		return nil, fmt.Errorf("%w: killed after stage %s of iteration %d",
			ErrFaultInjected, cfg.FailAfterStage, cfg.FailAtIteration)
	}
	if ck.writer != nil {
		res.ManifestHead = ck.writer.head()
	} else if ck.resume != nil {
		res.ManifestHead = ck.resume.man.Head()
	}

	res.SimSeconds = runRes.SimSeconds
	res.WallSeconds = runRes.Wall.Seconds()
	res.Stages = runRes.Stages
	res.Stats = runRes.Stats

	// Merge the per-rank outputs recorded by rank 0 (identical on all ranks
	// for the replicated fields).
	out := perRank[0]
	res.Contigs = out.contigs
	res.Scaffolds = out.scaffolds
	res.ScaffoldSummary = out.scaffoldResult
	res.ScaffoldRounds = out.scaffoldRounds
	res.DistinctKmers = out.distinctKmers
	res.HeavyHitterMax = out.heavyHitterMax
	res.AlignedReadFrac = out.alignedFrac
	res.LocalAsmBases = out.localAsmBases
	res.CacheHitRate = out.cacheHitRate
	res.ContigStats = dbg.ComputeStats(res.Contigs)
	res.ScaffoldStats = scaffold.ComputeStats(res.Scaffolds)
	return res, nil
}

// rankOutput carries the results each rank computed out of the SPMD region.
type rankOutput struct {
	contigs        []dbg.Contig
	scaffolds      []scaffold.Scaffold
	scaffoldResult scaffold.Result
	scaffoldRounds []RoundStats
	distinctKmers  int
	heavyHitterMax int64
	alignedFrac    float64
	localAsmBases  int
	cacheHitRate   float64
	// failed marks a run killed by Config.FailAfterStage; identical on all
	// ranks (the kill condition is a pure function of the stage schedule).
	failed bool
}

// accumulateScaffoldResult folds one round's counters into the assembly-wide
// scaffold summary (counters are summed over rounds; the final round's
// scaffold list is attached by the caller).
func accumulateScaffoldResult(total *scaffold.Result, round scaffold.Result) {
	total.SplintLinks += round.SplintLinks
	total.SpanLinks += round.SpanLinks
	total.AcceptedLinks += round.AcceptedLinks
	total.RepeatsSuspended += round.RepeatsSuspended
	total.Components += round.Components
	total.RRNAHits += round.RRNAHits
	total.GapsTotal += round.GapsTotal
	total.GapsClosed += round.GapsClosed
	total.Scaffolds = round.Scaffolds
	total.Local = round.Local
}

// runPipeline is the SPMD body executed by every rank. ck carries the run's
// checkpoint/restart context (a zero-value ckptRun when neither is active):
// stages at or before the resume point are skipped — their effects live in
// the restored state — and when a checkpoint writer is attached, every
// completed stage deposits the rank's full surviving state.
func runPipeline(r *pgas.Rank, allReads []seq.Read, cfg Config, ks []int, ck *ckptRun) rankOutput {
	var out rankOutput

	mode := dist.Distributed
	if cfg.GatherToAll {
		mode = dist.Replicated
	}

	// Initial block distribution of the reads, in whole pairs.
	lo, hi := r.PairBlockRange(len(allReads))
	myReads := allReads[lo:hi]
	readOffset := lo

	var cset *dbg.ContigSet
	var counts *dht.Map[seq.Kmer, seq.KmerCount]
	var lastAligns []aligner.Alignment
	// Resident bytes charged for the current localized read set; released
	// when the next localization round replaces it.
	shippedReadBytes := 0

	if ck.resume != nil {
		// Re-enter the pipeline at the stage after the resume point. The
		// restored clock and resident meter are the exact bit patterns the
		// uninterrupted run carried at this boundary, so everything simulated
		// from here on reproduces it identically.
		st := &ck.resume.states[r.ID()]
		myReads = st.reads
		readOffset = st.readOffset
		shippedReadBytes = st.shippedReadBytes
		out.distinctKmers = st.distinctKmers
		out.heavyHitterMax = st.heavyHitterMax
		out.alignedFrac = st.alignedFrac
		out.localAsmBases = st.localAsmBases
		out.cacheHitRate = st.cacheHitRate
		if st.hasAligns {
			lastAligns = st.aligns
		}
		cset = ck.resume.cset
		counts = ck.resume.counts
		if st.hasScaffold {
			out.scaffolds = st.scaffolds
			c := st.scafCounters
			out.scaffoldResult = scaffold.Result{
				Scaffolds:        st.scaffolds,
				Local:            st.scaffoldLocal,
				SplintLinks:      c[0],
				SpanLinks:        c[1],
				AcceptedLinks:    c[2],
				RepeatsSuspended: c[3],
				Components:       c[4],
				RRNAHits:         c[5],
				GapsTotal:        c[6],
				GapsClosed:       c[7],
			}
			out.scaffoldRounds = st.rounds
		}
		r.RestoreState(st.clock, st.resident)
	}

	// ckpt deposits this rank's state after stage (it, stage) completed and
	// reports whether the injected fault fires here. It runs between the
	// stage-end barrier and the next collective, using only out-of-band Go
	// synchronization: checkpoint I/O must never advance the simulated
	// clocks, or a checkpointed run would diverge from an uncheckpointed one.
	ckpt := func(it, stage, k int) (failNow bool) {
		if ck.writer != nil {
			st := rankState{
				ranks:            r.NRanks(),
				rank:             r.ID(),
				it:               it,
				stage:            stage,
				clock:            r.Clock(),
				resident:         r.Resident(),
				reads:            myReads,
				readOffset:       readOffset,
				shippedReadBytes: shippedReadBytes,
				distinctKmers:    out.distinctKmers,
				heavyHitterMax:   out.heavyHitterMax,
				alignedFrac:      out.alignedFrac,
				localAsmBases:    out.localAsmBases,
				cacheHitRate:     out.cacheHitRate,
			}
			// Alignments are serialized only at boundaries where a later
			// stage still consumes them: local assembly in the same
			// iteration, or read localization at the iteration end.
			switch stage {
			case stageIdxAlignment:
				st.hasAligns = cfg.LocalAssembly || (cfg.ReadLocalization && it < len(ks)-1)
			case stageIdxLocalAssembly:
				st.hasAligns = cfg.ReadLocalization && it < len(ks)-1
			}
			if st.hasAligns {
				st.aligns = lastAligns
			}
			if cset != nil {
				st.hasContigs = true
				st.contigs = cset.Local(r)
			}
			if counts != nil {
				st.hasCounts = true
				st.counts = collectCounts(counts, r.ID())
			}
			if stage == stageIdxScaffolding {
				st.hasScaffold = true
				st.scaffolds = out.scaffolds
				st.scaffoldLocal = out.scaffoldResult.Local
				sr := &out.scaffoldResult
				st.scafCounters = [8]int{
					sr.SplintLinks, sr.SpanLinks, sr.AcceptedLinks, sr.RepeatsSuspended,
					sr.Components, sr.RRNAHits, sr.GapsTotal, sr.GapsClosed,
				}
				st.rounds = out.scaffoldRounds
			}
			ck.writer.record(r, it, stageNames[stage], k, encodeRankState(&st))
		}
		if cfg.FailAfterStage == stageNames[stage] && cfg.FailAtIteration == it {
			out.failed = true
			return true
		}
		return false
	}

	for it, k := range ks {
		// Stage 1: k-mer analysis.
		if !ck.done(it, stageIdxKmerAnalysis) {
			st := r.StageStart()
			kopts := kmeranalysis.DefaultOptions(k)
			kopts.MinCount = cfg.MinKmerCount
			kopts.UseBloom = cfg.UseBloom
			kopts.Aggregate = cfg.Aggregate
			kares := kmeranalysis.Run(r, myReads, kopts, nil)
			counts = kares.Counts
			out.distinctKmers = kares.DistinctKmers
			if len(kares.HeavyHitters) > 0 && kares.HeavyHitters[0].Count > out.heavyHitterMax {
				out.heavyHitterMax = kares.HeavyHitters[0].Count
			}
			r.StageEnd(StageKmerAnalysis, st)
			reportProgress(r, cfg, StageKmerAnalysis, it, k)
			if ckpt(it, stageIdxKmerAnalysis, k) {
				return out
			}
		}

		// Stage 1b: merge the previous iteration's contig k-mers (Section
		// II-H) so low-coverage organisms keep their assembled regions. The
		// contigs are owner-distributed, so each rank merges its own shard.
		if it > 0 && cset != nil && !ck.done(it, stageIdxKmerMerge) {
			st := r.StageStart()
			var seqs [][]byte
			cset.ForEachLocal(r, func(_ int, c dbg.Contig) { seqs = append(seqs, c.Seq) })
			kmeranalysis.MergeContigKmers(r, counts, seqs, k, cfg.MinKmerCount+1)
			r.StageEnd(StageKmerMerge, st)
			reportProgress(r, cfg, StageKmerMerge, it, k)
			if ckpt(it, stageIdxKmerMerge, k) {
				return out
			}
		}

		// Stage 2: de Bruijn graph construction and traversal. The emitted
		// contigs are routed to their content-hash owners and renumbered
		// with an exclusive scan; the previous iteration's set is released.
		if !ck.done(it, stageIdxDBGTraversal) {
			st := r.StageStart()
			topts := dbg.ThresholdOptions{TBase: cfg.TBase, ErrorRate: cfg.ErrorRate, GlobalTHQ: cfg.GlobalTHQ, MinCount: 1}
			graph := dbg.Build(r, counts, k, topts)
			local := dbg.Traverse(r, graph, dbg.TraverseOptions{})
			next := dbg.DistributeContigs(r, local, mode)
			if cset != nil {
				cset.Release(r)
			}
			cset = next
			// The counts table is consumed by graph construction; the next
			// iteration builds a fresh one, so it leaves the checkpoint state.
			counts = nil
			r.StageEnd(StageDBGTraversal, st)
			reportProgress(r, cfg, StageDBGTraversal, it, k)
			if ckpt(it, stageIdxDBGTraversal, k) {
				return out
			}
		}

		// Stages 3-4: bubble merging, hair removal, iterative pruning,
		// chain compaction (all on the distributed set).
		if !ck.done(it, stageIdxContigRefine) {
			st := r.StageStart()
			copts := cgraph.DefaultOptions(k)
			copts.MergeBubbles = cfg.BubbleMerging
			copts.RemoveHair = cfg.HairRemoval
			copts.Prune = cfg.Pruning
			copts.Compact = cfg.Compaction
			copts.Aggregate = cfg.Aggregate
			refined := cgraph.Refine(r, cset, copts)
			cset = refined.Set
			r.StageEnd(StageContigRefine, st)
			reportProgress(r, cfg, StageContigRefine, it, k)
			if ckpt(it, stageIdxContigRefine, k) {
				return out
			}
		}

		// Stage 5: read-to-contig alignment.
		if !ck.done(it, stageIdxAlignment) {
			st := r.StageStart()
			aopts := aligner.DefaultOptions(minInt(k, 31))
			aopts.UseCache = cfg.SoftwareCache
			idx := aligner.BuildIndex(r, cset, aopts)
			aligns, astats := aligner.AlignReads(r, idx, myReads, readOffset, aopts)
			lastAligns = aligns
			alignedLocal := int64(astats.ReadsAligned)
			totalLocal := int64(astats.ReadsTotal)
			alignedAll := pgas.AllReduce(r, alignedLocal, pgas.ReduceSum)
			totalAll := pgas.AllReduce(r, totalLocal, pgas.ReduceSum)
			if totalAll > 0 {
				out.alignedFrac = float64(alignedAll) / float64(totalAll)
			}
			out.cacheHitRate = astats.CacheHitRate
			r.StageEnd(StageAlignment, st)
			reportProgress(r, cfg, StageAlignment, it, k)
			if ckpt(it, stageIdxAlignment, k) {
				return out
			}
		}

		// Stage 6: local assembly (mer-walking with work sharing); the
		// extensions are applied owner-side in place.
		if cfg.LocalAssembly && !ck.done(it, stageIdxLocalAssembly) {
			st := r.StageStart()
			lopts := localasm.DefaultOptions(k)
			lopts.WorkStealing = cfg.WorkStealing
			lopts.Libraries = cfg.Libraries
			lres := localasm.Run(r, cset, myReads, readOffset, lastAligns, lopts)
			out.localAsmBases = lres.ExtendedBases
			r.StageEnd(StageLocalAssembly, st)
			reportProgress(r, cfg, StageLocalAssembly, it, k)
			if ckpt(it, stageIdxLocalAssembly, k) {
				return out
			}
		}

		// Read localization (Section II-I): after the first iteration the
		// reads are redistributed so reads aligned to a contig live on the
		// rank that owns the contig. Not a checkpointed stage: a resume into
		// the next iteration carries the localized reads in its restored
		// state, and a resume at this iteration's last stage replays the
		// exchange deterministically from the restored alignments.
		if cfg.ReadLocalization && it < len(ks)-1 && !ck.done(it+1, stageIdxKmerAnalysis) {
			// The previous round's shipped reads are superseded by this
			// exchange: return their resident charge before re-charging.
			r.ReleaseResident(shippedReadBytes)
			myReads, readOffset, shippedReadBytes = localizePairs(r, cset, myReads, readOffset, lastAligns)
			lastAligns = nil
		}
	}

	finalIt := len(ks) - 1

	// Drop short contigs shard-locally and re-densify the IDs. Skipped on a
	// resume past the scaffolding checkpoint: the restored set is already
	// filtered (the scaffolding stage consumed it).
	if cfg.MinContigLen > 0 && !ck.done(finalIt, stageIdxScaffolding) {
		cset.FilterLocal(r, func(c dbg.Contig) bool { return len(c.Seq) >= cfg.MinContigLen })
		dbg.RenumberContigs(r, cset)
	}

	// Scaffolding (Algorithm 3), one round per library in ascending
	// insert-size order. Each round aligns its own library's reads (by the
	// LibID tag) against the current contig set; an intermediate round's
	// scaffolds are spliced back in as the next round's contigs
	// (content-hash deduplicated, canonically owned), so longer-insert
	// libraries link the structures the shorter ones built.
	// With one library the loop degenerates to exactly the legacy
	// single-round flow.
	if cfg.Scaffolding && !ck.done(finalIt, stageIdxScaffolding) {
		st := r.StageStart()
		finalK := ks[len(ks)-1]
		order := scaffoldOrder(cfg.Libraries)
		for ri, li := range order {
			lib := cfg.Libraries[li]
			inputContigs := cset.GlobalLen(r)
			aopts := aligner.DefaultOptions(minInt(finalK, 31))
			aopts.UseCache = cfg.SoftwareCache
			if len(order) > 1 {
				// Align only this round's library: the other libraries'
				// alignments would be discarded, and alignment is
				// independent per read, so the restriction changes charged
				// work but never output.
				roundLib := uint8(li)
				aopts.OnlyLib = &roundLib
			}
			idx := aligner.BuildIndex(r, cset, aopts)
			aligns, _ := aligner.AlignReads(r, idx, myReads, readOffset, aopts)
			sopts := scaffold.DefaultOptions(finalK, lib.InsertSize)
			if lib.InsertStd > 0 {
				sopts.InsertStd = lib.InsertStd
			}
			sopts.Aggregate = cfg.Aggregate
			sopts.UseComponents = cfg.UseComponents
			sopts.RRNAProfile = cfg.RRNAProfile
			last := ri == len(order)-1
			sopts.SkipEmit = !last
			sres := scaffold.Run(r, cset, myReads, readOffset, aligns, sopts)
			nScaffolds := pgas.AllReduce(r, len(sres.Local), pgas.ReduceSum)
			out.scaffoldRounds = append(out.scaffoldRounds, RoundStats{
				Library:       lib.Name,
				LibIndex:      li,
				InsertSize:    lib.InsertSize,
				InputContigs:  inputContigs,
				Scaffolds:     nScaffolds,
				AcceptedLinks: sres.AcceptedLinks,
			})
			accumulateScaffoldResult(&out.scaffoldResult, sres)
			if last {
				out.scaffolds = sres.Scaffolds
				break
			}
			// Splice this round's scaffolds back in as the next round's
			// contigs. The scaffold sequences are fresh buffers independent
			// of the old set's storage, so the replaced set's resident bytes
			// are returned before the exchange materializes the new one —
			// the peak meter never holds both contig generations at once.
			local := make([]dbg.Contig, 0, len(sres.Local))
			for _, s := range sres.Local {
				local = append(local, dbg.Contig{Seq: s.Seq})
			}
			cset.Release(r)
			cset = dbg.DistributeContigs(r, local, mode)
		}
		r.StageEnd(StageScaffolding, st)
		reportProgress(r, cfg, StageScaffolding, finalIt, ks[finalIt])
		if ckpt(finalIt, stageIdxScaffolding, ks[finalIt]) {
			return out
		}
	}

	// Final output: one rank-ordered emit onto rank 0, which sorts into the
	// deterministic global order and renumbers. The scaffolds recorded the
	// distributed set's internal IDs, so their member lists are remapped to
	// the emitted numbering — Scaffold.ContigIDs must keep indexing
	// Result.Contigs. Every other rank reports nil.
	emitted := cset.Emit(r)
	if emitted != nil {
		order := make([]int, len(emitted))
		for i := range order {
			order[i] = i
		}
		sortContigOrder(emitted, order)
		idMap := make(map[int]int, len(emitted))
		sorted := make([]dbg.Contig, len(emitted))
		for newID, oldIdx := range order {
			c := emitted[oldIdx]
			idMap[c.ID] = newID
			c.ID = newID
			sorted[newID] = c
		}
		for si := range out.scaffolds {
			ids := out.scaffolds[si].ContigIDs
			for i, id := range ids {
				ids[i] = idMap[id]
			}
		}
		out.contigs = sorted
		r.Compute(float64(len(sorted)))
	}
	return out
}

// reportProgress delivers a stage-completion event to the Progress hook.
// Only rank 0 reports — the stage-end barrier it follows has synchronized
// every rank's clock, so rank 0's view is canonical — and the callback runs
// outside simulated time: nothing is charged, so an observed run stays
// bit-identical to an unobserved one.
func reportProgress(r *pgas.Rank, cfg Config, stage string, it, k int) {
	if cfg.Progress == nil || r.ID() != 0 {
		return
	}
	cfg.Progress(ProgressEvent{
		Stage:         stage,
		Iteration:     it,
		K:             k,
		SimSeconds:    r.Clock(),
		ResidentBytes: r.Resident(),
	})
}

// sortContigOrder sorts the index slice so that order[i] is the position in
// contigs of the i-th contig under the deterministic global contig ordering.
func sortContigOrder(contigs []dbg.Contig, order []int) {
	sort.Slice(order, func(i, j int) bool {
		return dbg.ContigLess(contigs[order[i]], contigs[order[j]])
	})
}

// localizePairs redistributes read pairs so that pairs aligned to contig c
// land on c's owner rank in the distributed contig set. It returns the
// rank's new reads, its new global read offset (pairs stay intact, so mate
// indices remain 2i / 2i+1), and the resident bytes the exchange charged
// for the received pairs — the caller releases them when the read set is
// next replaced.
func localizePairs(r *pgas.Rank, cset *dbg.ContigSet, reads []seq.Read, readOffset int, aligns []aligner.Alignment) ([]seq.Read, int, int) {
	// Destination per local pair, defaulting to the current rank.
	nPairs := len(reads) / 2
	dest := make([]int, nPairs)
	for i := range dest {
		dest[i] = r.ID()
	}
	for _, a := range aligns {
		li := a.ReadIdx - readOffset
		if li < 0 || li >= len(reads) {
			continue
		}
		pair := li / 2
		if pair < nPairs {
			owner, _ := cset.Locate(a.ContigID)
			dest[pair] = owner
		}
	}
	msgs := make([]pairMsg, nPairs)
	for i := 0; i < nPairs; i++ {
		msgs[i] = pairMsg{R1: reads[2*i], R2: reads[2*i+1], Dest: dest[i]}
	}
	// A trailing unpaired read (odd count) stays local.
	var tail []seq.Read
	if len(reads)%2 == 1 {
		tail = append(tail, reads[len(reads)-1])
	}
	incoming := pgas.ExchangeFunc(r, msgs,
		func(_ int, pm pairMsg) int { return pm.Dest }, pairMsg.WireSize)
	var newReads []seq.Read
	receivedBytes := 0
	for _, pm := range incoming {
		newReads = append(newReads, pm.R1, pm.R2)
		receivedBytes += pm.WireSize()
	}
	newReads = append(newReads, tail...)
	// The new global offset is the exclusive prefix sum of the per-rank
	// counts: one ExScan (log2 P rounds), not a P-word gather plus a loop.
	offset := pgas.ExScan(r, len(newReads), pgas.ReduceSum)
	return newReads, offset, receivedBytes
}

// pairMsg is one read pair shipped to its contig's owner rank during read
// localization.
type pairMsg struct {
	R1, R2 seq.Read
	Dest   int
}

// WireSize returns the wire bytes of one shipped pair.
func (pm pairMsg) WireSize() int { return pm.R1.WireSize() + pm.R2.WireSize() + 8 }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
