// Package core implements the end-to-end MetaHipMer pipeline (Algorithm 1 +
// Algorithm 3 of the paper): iterative contig generation over a range of
// k-mer sizes followed by metagenome-aware scaffolding, executed SPMD-style
// on a virtual PGAS machine.
package core

import (
	"fmt"

	"mhmgo/internal/aligner"
	"mhmgo/internal/cgraph"
	"mhmgo/internal/dbg"
	"mhmgo/internal/hmm"
	"mhmgo/internal/kmeranalysis"
	"mhmgo/internal/localasm"
	"mhmgo/internal/pgas"
	"mhmgo/internal/scaffold"
	"mhmgo/internal/seq"
)

// Stage name constants used in timing breakdowns (Figure 5).
const (
	StageKmerAnalysis  = "kmer_analysis"
	StageKmerMerge     = "kmer_merge"
	StageDBGTraversal  = "dbg_traversal"
	StageContigRefine  = "contig_refine"
	StageAlignment     = "alignment"
	StageLocalAssembly = "local_assembly"
	StageScaffolding   = "scaffolding"
)

// Config controls a MetaHipMer assembly.
type Config struct {
	// Machine shape.
	Ranks        int
	RanksPerNode int
	Cost         pgas.CostModel
	// CostSet uses Cost verbatim even when it is the zero model (the
	// free-communication ablation); see pgas.Config.CostSet.
	CostSet bool

	// Iterative contig generation: k runs from KMin to KMax in steps of
	// KStep (Algorithm 1).
	KMin, KMax, KStep int

	// K-mer analysis parameters.
	MinKmerCount uint32
	UseBloom     bool

	// De Bruijn graph extension thresholds: the metagenome depth-dependent
	// rule uses TBase and ErrorRate; setting GlobalTHQ > 0 switches to the
	// HipMer single-genome rule (used by the baseline and the ablation).
	TBase     uint32
	ErrorRate float64
	GlobalTHQ uint32

	// Library geometry (used by local assembly and scaffolding).
	InsertSize int
	InsertStd  int

	// Optimization toggles (each is an ablation axis).
	Aggregate        bool
	SoftwareCache    bool
	ReadLocalization bool
	WorkStealing     bool
	UseComponents    bool

	// Pipeline stage toggles.
	BubbleMerging bool
	HairRemoval   bool
	Pruning       bool
	Compaction    bool
	LocalAssembly bool
	Scaffolding   bool

	// RRNAProfile enables the ribosomal-region scaffolding rule and rRNA
	// counting.
	RRNAProfile *hmm.Profile

	// MinContigLen drops contigs shorter than this from the final output.
	MinContigLen int
}

// DefaultConfig returns the standard MetaHipMer configuration for the given
// machine shape.
func DefaultConfig(ranks int) Config {
	return Config{
		Ranks:            ranks,
		RanksPerNode:     4,
		KMin:             21,
		KMax:             33,
		KStep:            12,
		MinKmerCount:     2,
		UseBloom:         true,
		TBase:            2,
		ErrorRate:        0.015,
		InsertSize:       280,
		InsertStd:        25,
		Aggregate:        true,
		SoftwareCache:    true,
		ReadLocalization: true,
		WorkStealing:     true,
		UseComponents:    true,
		BubbleMerging:    true,
		HairRemoval:      true,
		Pruning:          true,
		Compaction:       true,
		LocalAssembly:    true,
		Scaffolding:      true,
		MinContigLen:     0,
	}
}

func (c Config) withDefaults() Config {
	if c.Ranks <= 0 {
		c.Ranks = 4
	}
	if c.RanksPerNode <= 0 {
		c.RanksPerNode = c.Ranks
	}
	if c.KMin <= 0 {
		c.KMin = 21
	}
	if c.KMax < c.KMin {
		c.KMax = c.KMin
	}
	if c.KStep <= 0 {
		c.KStep = 12
	}
	if c.MinKmerCount == 0 {
		c.MinKmerCount = 2
	}
	if c.ErrorRate <= 0 {
		c.ErrorRate = 0.015
	}
	if c.TBase == 0 {
		c.TBase = 2
	}
	if c.InsertSize <= 0 {
		c.InsertSize = 280
	}
	if c.InsertStd <= 0 {
		c.InsertStd = c.InsertSize / 10
	}
	return c
}

// KValues returns the k values of the iterative contig generation.
func (c Config) KValues() []int {
	c = c.withDefaults()
	var ks []int
	for k := c.KMin; k <= c.KMax; k += c.KStep {
		if k%2 == 0 {
			k++
		}
		if len(ks) > 0 && ks[len(ks)-1] >= k {
			continue
		}
		if k > seq.MaxK {
			break
		}
		ks = append(ks, k)
	}
	return ks
}

// Result is the outcome of an assembly.
type Result struct {
	// Contigs are the final contigs of iterative contig generation.
	Contigs []dbg.Contig
	// Scaffolds are the final gap-closed scaffolds (empty when scaffolding
	// is disabled).
	Scaffolds []scaffold.Scaffold
	// SimSeconds is the simulated parallel runtime; WallSeconds is the real
	// elapsed time of the (single-process) execution.
	SimSeconds  float64
	WallSeconds float64
	// Stages is the simulated time per pipeline stage (summed over
	// iterations).
	Stages []pgas.StageTime
	// Stats aggregates communication statistics over all ranks.
	Stats pgas.CommStats
	// Per-stage substatistics.
	TotalReads       int
	DistinctKmers    int
	HeavyHitterMax   int64
	AlignedReadFrac  float64
	LocalAsmBases    int
	ScaffoldSummary  scaffold.Result
	ContigStats      dbg.Stats
	ScaffoldStats    scaffold.Stats
	CacheHitRate     float64
	ReadsLocalizedTo int
}

// FinalSequences returns the assembly output: scaffold sequences when
// scaffolding ran, contig sequences otherwise.
func (r *Result) FinalSequences() [][]byte {
	if len(r.Scaffolds) > 0 {
		out := make([][]byte, len(r.Scaffolds))
		for i, s := range r.Scaffolds {
			out[i] = s.Seq
		}
		return out
	}
	out := make([][]byte, len(r.Contigs))
	for i, c := range r.Contigs {
		out[i] = c.Seq
	}
	return out
}

// Assemble runs the full MetaHipMer pipeline over the reads. Reads must be
// interleaved paired-end (mates at indices 2i and 2i+1); single-end data
// still assembles but produces no span links.
func Assemble(reads []seq.Read, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	ks := cfg.KValues()
	if len(ks) == 0 {
		return nil, fmt.Errorf("core: no valid k values in [%d,%d]", cfg.KMin, cfg.KMax)
	}
	if len(reads) == 0 {
		return nil, fmt.Errorf("core: no reads to assemble")
	}

	machine := pgas.NewMachine(pgas.Config{Ranks: cfg.Ranks, RanksPerNode: cfg.RanksPerNode, Cost: cfg.Cost, CostSet: cfg.CostSet})
	res := &Result{TotalReads: len(reads)}

	perRank := make([]rankOutput, cfg.Ranks)
	runRes := machine.Run(func(r *pgas.Rank) {
		perRank[r.ID()] = runPipeline(r, reads, cfg, ks)
	})

	res.SimSeconds = runRes.SimSeconds
	res.WallSeconds = runRes.Wall.Seconds()
	res.Stages = runRes.Stages
	res.Stats = runRes.Stats

	// Merge the per-rank outputs recorded by rank 0 (identical on all ranks
	// for the replicated fields).
	out := perRank[0]
	res.Contigs = out.contigs
	res.Scaffolds = out.scaffolds
	res.ScaffoldSummary = out.scaffoldResult
	res.DistinctKmers = out.distinctKmers
	res.HeavyHitterMax = out.heavyHitterMax
	res.AlignedReadFrac = out.alignedFrac
	res.LocalAsmBases = out.localAsmBases
	res.CacheHitRate = out.cacheHitRate
	res.ContigStats = dbg.ComputeStats(res.Contigs)
	res.ScaffoldStats = scaffold.ComputeStats(res.Scaffolds)
	return res, nil
}

// rankOutput carries the results each rank computed out of the SPMD region.
type rankOutput struct {
	contigs        []dbg.Contig
	scaffolds      []scaffold.Scaffold
	scaffoldResult scaffold.Result
	distinctKmers  int
	heavyHitterMax int64
	alignedFrac    float64
	localAsmBases  int
	cacheHitRate   float64
}

// runPipeline is the SPMD body executed by every rank.
func runPipeline(r *pgas.Rank, allReads []seq.Read, cfg Config, ks []int) rankOutput {
	var out rankOutput

	// Initial block distribution of the reads, in whole pairs.
	lo, hi := r.PairBlockRange(len(allReads))
	myReads := allReads[lo:hi]
	readOffset := lo

	var contigs []dbg.Contig
	var lastAligns []aligner.Alignment

	for it, k := range ks {
		// Stage 1: k-mer analysis.
		st := r.StageStart()
		kopts := kmeranalysis.DefaultOptions(k)
		kopts.MinCount = cfg.MinKmerCount
		kopts.UseBloom = cfg.UseBloom
		kopts.Aggregate = cfg.Aggregate
		kares := kmeranalysis.Run(r, myReads, kopts, nil)
		out.distinctKmers = kares.DistinctKmers
		if len(kares.HeavyHitters) > 0 && kares.HeavyHitters[0].Count > out.heavyHitterMax {
			out.heavyHitterMax = kares.HeavyHitters[0].Count
		}
		r.StageEnd(StageKmerAnalysis, st)

		// Stage 1b: merge the previous iteration's contig k-mers (Section
		// II-H) so low-coverage organisms keep their assembled regions.
		if it > 0 && len(contigs) > 0 {
			st = r.StageStart()
			cLo, cHi := r.BlockRange(len(contigs))
			var seqs [][]byte
			for _, c := range contigs[cLo:cHi] {
				seqs = append(seqs, c.Seq)
			}
			kmeranalysis.MergeContigKmers(r, kares.Counts, seqs, k, cfg.MinKmerCount+1)
			r.StageEnd(StageKmerMerge, st)
		}

		// Stage 2: de Bruijn graph construction and traversal.
		st = r.StageStart()
		topts := dbg.ThresholdOptions{TBase: cfg.TBase, ErrorRate: cfg.ErrorRate, GlobalTHQ: cfg.GlobalTHQ, MinCount: 1}
		graph := dbg.Build(r, kares.Counts, k, topts)
		local := dbg.Traverse(r, graph, dbg.TraverseOptions{})
		contigs = dbg.GatherContigs(r, local)
		r.StageEnd(StageDBGTraversal, st)

		// Stages 3-4: bubble merging, hair removal, iterative pruning,
		// chain compaction.
		st = r.StageStart()
		copts := cgraph.DefaultOptions(k)
		copts.MergeBubbles = cfg.BubbleMerging
		copts.RemoveHair = cfg.HairRemoval
		copts.Prune = cfg.Pruning
		copts.Compact = cfg.Compaction
		copts.Aggregate = cfg.Aggregate
		refined := cgraph.Refine(r, contigs, copts)
		contigs = refined.Contigs
		r.StageEnd(StageContigRefine, st)

		// Stage 5: read-to-contig alignment.
		st = r.StageStart()
		aopts := aligner.DefaultOptions(minInt(k, 31))
		aopts.UseCache = cfg.SoftwareCache
		idx := aligner.BuildIndex(r, contigs, aopts)
		aligns, astats := aligner.AlignReads(r, idx, myReads, readOffset, aopts)
		lastAligns = aligns
		alignedLocal := int64(astats.ReadsAligned)
		totalLocal := int64(astats.ReadsTotal)
		alignedAll := pgas.AllReduce(r, alignedLocal, pgas.ReduceSum)
		totalAll := pgas.AllReduce(r, totalLocal, pgas.ReduceSum)
		if totalAll > 0 {
			out.alignedFrac = float64(alignedAll) / float64(totalAll)
		}
		out.cacheHitRate = astats.CacheHitRate
		r.StageEnd(StageAlignment, st)

		// Stage 6: local assembly (mer-walking with work stealing).
		if cfg.LocalAssembly {
			st = r.StageStart()
			lopts := localasm.DefaultOptions(k)
			lopts.WorkStealing = cfg.WorkStealing
			lres := localasm.Run(r, contigs, myReads, readOffset, aligns, lopts)
			contigs = lres.Contigs
			out.localAsmBases = lres.ExtendedBases
			r.StageEnd(StageLocalAssembly, st)
		}

		// Read localization (Section II-I): after the first iteration the
		// reads are redistributed so reads aligned to the same contig live
		// on the same rank.
		if cfg.ReadLocalization && it < len(ks)-1 {
			myReads, readOffset = localizePairs(r, myReads, readOffset, lastAligns)
			lastAligns = nil
		}
	}

	out.contigs = filterContigs(contigs, cfg.MinContigLen)

	// Scaffolding (Algorithm 3).
	if cfg.Scaffolding {
		st := r.StageStart()
		finalK := ks[len(ks)-1]
		aopts := aligner.DefaultOptions(minInt(finalK, 31))
		aopts.UseCache = cfg.SoftwareCache
		idx := aligner.BuildIndex(r, out.contigs, aopts)
		aligns, _ := aligner.AlignReads(r, idx, myReads, readOffset, aopts)
		sopts := scaffold.DefaultOptions(finalK, cfg.InsertSize)
		sopts.Aggregate = cfg.Aggregate
		sopts.UseComponents = cfg.UseComponents
		sopts.RRNAProfile = cfg.RRNAProfile
		sres := scaffold.Run(r, out.contigs, myReads, readOffset, aligns, sopts)
		out.scaffolds = sres.Scaffolds
		out.scaffoldResult = sres
		r.StageEnd(StageScaffolding, st)
	}
	return out
}

// localizePairs redistributes read pairs so that pairs aligned to contig c
// land on rank (c mod P). It returns the rank's new reads and its new global
// read offset (pairs stay intact, so mate indices remain 2i / 2i+1).
func localizePairs(r *pgas.Rank, reads []seq.Read, readOffset int, aligns []aligner.Alignment) ([]seq.Read, int) {
	p := r.NRanks()
	// Destination per local pair, defaulting to the current rank.
	nPairs := len(reads) / 2
	dest := make([]int, nPairs)
	for i := range dest {
		dest[i] = r.ID()
	}
	for _, a := range aligns {
		li := a.ReadIdx - readOffset
		if li < 0 || li >= len(reads) {
			continue
		}
		pair := li / 2
		if pair < nPairs {
			d := a.ContigID % p
			if d < 0 {
				d += p
			}
			dest[pair] = d
		}
	}
	type pairMsg struct {
		R1, R2 seq.Read
		Dest   int
	}
	out := make([][]pairMsg, p)
	for i := 0; i < nPairs; i++ {
		out[dest[i]] = append(out[dest[i]], pairMsg{R1: reads[2*i], R2: reads[2*i+1], Dest: dest[i]})
	}
	// A trailing unpaired read (odd count) stays local.
	var tail []seq.Read
	if len(reads)%2 == 1 {
		tail = append(tail, reads[len(reads)-1])
	}
	incoming := pgas.AllToAll(r, out, 240)
	var newReads []seq.Read
	for _, batch := range incoming {
		for _, pm := range batch {
			newReads = append(newReads, pm.R1, pm.R2)
		}
	}
	newReads = append(newReads, tail...)
	// Recompute a consistent global offset: exclusive prefix sum of counts.
	counts := pgas.Gather(r, len(newReads))
	offset := 0
	for i := 0; i < r.ID(); i++ {
		offset += counts[i]
	}
	return newReads, offset
}

func filterContigs(contigs []dbg.Contig, minLen int) []dbg.Contig {
	if minLen <= 0 {
		return contigs
	}
	out := contigs[:0]
	for _, c := range contigs {
		if len(c.Seq) >= minLen {
			out = append(out, c)
		}
	}
	// Re-densify IDs.
	final := make([]dbg.Contig, len(out))
	copy(final, out)
	for i := range final {
		final[i].ID = i
	}
	return final
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
