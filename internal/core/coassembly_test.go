package core

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"mhmgo/internal/checkpoint"
	"mhmgo/internal/eval"
	"mhmgo/internal/seq"
	"mhmgo/internal/sim"
)

// sampleTaggedReads simulates smallCommunity's exact read configuration with
// a Samples list attached, so sample-mode read sets are directly comparable
// to the legacy shorthand sets the other core tests use.
func sampleTaggedReads(t *testing.T, comm *sim.Community, coverage float64, samples []sim.SampleConfig) []seq.Read {
	t.Helper()
	return sim.SimulateReads(comm, sim.ReadConfig{
		ReadLen:    80,
		InsertSize: 220,
		InsertStd:  15,
		ErrorRate:  0.005,
		Coverage:   coverage,
		Seed:       102,
		Samples:    samples,
	})
}

// coassemblyReads returns a two-sample co-assembly read set over the
// standard checkpoint-test community: a baseline sample plus a drifted one.
func coassemblyReads(t *testing.T) []seq.Read {
	t.Helper()
	comm, _ := smallCommunity(t, 2, 8)
	return sampleTaggedReads(t, comm, 8, []sim.SampleConfig{
		{Name: "t0"},
		{Name: "t1", AbundanceSigma: 0.4},
	})
}

// TestSingleSampleShorthandEquivalence is the cross-sample golden
// equivalence contract: a one-entry Samples list with an empty
// SampleConfig{} is the SAME run as the legacy no-samples shorthand —
// byte-identical simulated reads, and at P = 1, 3 and 8 byte-identical final
// sequences, identical simulated seconds and an identical manifest head.
func TestSingleSampleShorthandEquivalence(t *testing.T) {
	comm, legacyReads := smallCommunity(t, 2, 8)
	sampleReads := sampleTaggedReads(t, comm, 8, []sim.SampleConfig{{}})

	if len(legacyReads) != len(sampleReads) {
		t.Fatalf("read counts differ: legacy %d vs one-sample %d", len(legacyReads), len(sampleReads))
	}
	for i := range legacyReads {
		a, b := legacyReads[i], sampleReads[i]
		if a.ID != b.ID || a.LibID != b.LibID || a.SampleID != b.SampleID ||
			!bytes.Equal(a.Seq, b.Seq) || !bytes.Equal(a.Qual, b.Qual) {
			t.Fatalf("read %d differs between the legacy shorthand and the one-sample config", i)
		}
	}

	for _, p := range []int{1, 3, 8} {
		p := p
		t.Run(fmt.Sprintf("P=%d", p), func(t *testing.T) {
			cfg := testConfig(p)
			lcfg := cfg
			lcfg.CheckpointDir = t.TempDir()
			legacy, err := Assemble(legacyReads, lcfg)
			if err != nil {
				t.Fatalf("legacy run: %v", err)
			}
			scfg := cfg
			scfg.CheckpointDir = t.TempDir()
			sampled, err := Assemble(sampleReads, scfg)
			if err != nil {
				t.Fatalf("one-sample run: %v", err)
			}
			assertSameRun(t, legacy, sampled)
		})
	}
}

// TestCoassemblyDeterministicP3 pins that a genuinely multi-sample
// co-assembly is deterministic: two runs over the same pooled read set agree
// on output bytes and simulated seconds. CI runs it under -race and
// -shuffle=on.
func TestCoassemblyDeterministicP3(t *testing.T) {
	reads := coassemblyReads(t)
	cfg := testConfig(3)
	a, err := Assemble(reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Assemble(reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if outputFingerprint(a) != outputFingerprint(b) {
		t.Error("co-assembly output differs between identical runs")
	}
	if a.SimSeconds != b.SimSeconds {
		t.Errorf("co-assembly sim seconds differ: %v vs %v", a.SimSeconds, b.SimSeconds)
	}
}

// TestCheckpointResumeCoassembly kills a multi-sample co-assembly after
// every checkpointed stage and resumes it: the resumed run must reproduce
// the uninterrupted run bit-for-bit, INCLUDING the per-sample abundance
// tables derived from its output — sample identity must survive the
// kill/restart round trip through the widened shard format.
func TestCheckpointResumeCoassembly(t *testing.T) {
	comm, _ := smallCommunity(t, 2, 8)
	reads := coassemblyReads(t)
	names := []string{"t0", "t1"}
	cfg := testConfig(3)

	baseDir := t.TempDir()
	bcfg := cfg
	bcfg.CheckpointDir = baseDir
	base, err := Assemble(reads, bcfg)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	baseAbundance := eval.AbundanceReport(base.FinalSequences(), reads, names, comm, eval.DefaultOptions())
	if len(baseAbundance) != 2 {
		t.Fatalf("baseline abundance covers %d samples, want 2", len(baseAbundance))
	}

	man, err := checkpoint.Load(baseDir)
	if err != nil {
		t.Fatalf("baseline manifest: %v", err)
	}
	for _, step := range man.Steps {
		step := step
		t.Run(fmt.Sprintf("kill-after-%02d-%s-it%d", step.Seq, step.Stage, step.Iteration), func(t *testing.T) {
			dir := t.TempDir()
			kcfg := cfg
			kcfg.CheckpointDir = dir
			kcfg.FailAfterStage = step.Stage
			kcfg.FailAtIteration = step.Iteration
			if _, err := Assemble(reads, kcfg); !errors.Is(err, ErrFaultInjected) {
				t.Fatalf("killed run returned %v, want ErrFaultInjected", err)
			}
			rcfg := cfg
			rcfg.CheckpointDir = dir
			rcfg.ResumeFrom = dir
			res, err := Assemble(reads, rcfg)
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			assertSameRun(t, base, res)
			resumedAbundance := eval.AbundanceReport(res.FinalSequences(), reads, names, comm, eval.DefaultOptions())
			if !reflect.DeepEqual(baseAbundance, resumedAbundance) {
				t.Error("per-sample abundance tables differ after kill/resume")
			}
		})
	}
}

// TestResumeRefusedSampleRetag pins that the sample axis participates in the
// input hash: resuming a checkpoint with the same read bytes but a different
// sample assignment must be refused with ErrInputMismatch. This is also the
// compatibility story for pre-SampleID checkpoints — their manifests hashed
// the reads without sample tags, so they can never silently resume a
// sample-tagged run.
func TestResumeRefusedSampleRetag(t *testing.T) {
	reads := coassemblyReads(t)
	cfg := testConfig(3)
	dir := t.TempDir()
	bcfg := cfg
	bcfg.CheckpointDir = dir
	if _, err := Assemble(reads, bcfg); err != nil {
		t.Fatalf("baseline run: %v", err)
	}

	retagged := make([]seq.Read, len(reads))
	copy(retagged, reads)
	r0 := retagged[0].Clone()
	r0.SampleID ^= 1
	retagged[0] = r0

	rcfg := cfg
	rcfg.ResumeFrom = dir
	if _, err := Assemble(retagged, rcfg); !errors.Is(err, checkpoint.ErrInputMismatch) {
		t.Fatalf("resume with retagged sample = %v, want ErrInputMismatch", err)
	}
}

// TestOldRankStateMagicRefused pins the shard-format version gate: a shard
// carrying the pre-SampleID v1 magic must be rejected at decode with a
// distinct error instead of mis-decoding the widened read records.
func TestOldRankStateMagicRefused(t *testing.T) {
	st := rankState{
		ranks: 1, rank: 0, it: 0, stage: stageIdxKmerAnalysis,
		clock: 1.5, resident: 64,
		reads: []seq.Read{{ID: "r/1", Seq: []byte("ACGT"), Qual: []byte("IIII"), SampleID: 1}},
	}
	data := encodeRankState(&st)
	if _, err := decodeRankState(data); err != nil {
		t.Fatalf("v2 shard failed to decode: %v", err)
	}
	old := bytes.Replace(data, []byte("mhm-rank-state-v2"), []byte("mhm-rank-state-v1"), 1)
	if bytes.Equal(old, data) {
		t.Fatal("magic replacement did not take; encoding layout changed?")
	}
	_, err := decodeRankState(old)
	if err == nil {
		t.Fatal("v1-magic shard decoded without error")
	}
	if !strings.Contains(err.Error(), "magic") {
		t.Errorf("v1-magic shard error = %v, want a magic mismatch", err)
	}
}
