package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"

	"mhmgo/internal/aligner"
	"mhmgo/internal/checkpoint"
	"mhmgo/internal/dbg"
	"mhmgo/internal/dht"
	"mhmgo/internal/dist"
	"mhmgo/internal/kmeranalysis"
	"mhmgo/internal/pgas"
	"mhmgo/internal/scaffold"
	"mhmgo/internal/seq"
)

// ErrFaultInjected is returned by Assemble when an injected fault
// (Config.FailAfterStage or Config.FailAtBarrier) killed the run. The
// checkpoints written before the kill are durable; a subsequent run with
// ResumeFrom pointed at the checkpoint directory continues from the last
// completed stage.
var ErrFaultInjected = errors.New("core: injected fault")

// Stage indices in pipeline order. A checkpoint step is identified by
// (iteration, stage index); steps are totally ordered lexicographically.
// Scaffolding runs once after the k loop and is recorded under the final
// iteration's index.
const (
	stageIdxKmerAnalysis = iota
	stageIdxKmerMerge
	stageIdxDBGTraversal
	stageIdxContigRefine
	stageIdxAlignment
	stageIdxLocalAssembly
	stageIdxScaffolding
)

// stageNames maps a stage index to the stage name constant used in timing
// breakdowns and manifest step records.
var stageNames = [...]string{
	StageKmerAnalysis,
	StageKmerMerge,
	StageDBGTraversal,
	StageContigRefine,
	StageAlignment,
	StageLocalAssembly,
	StageScaffolding,
}

// stageIndexOf resolves a stage name back to its pipeline index.
func stageIndexOf(name string) (int, bool) {
	for i, n := range stageNames {
		if n == name {
			return i, true
		}
	}
	return 0, false
}

// configHash returns the hex SHA-256 of a canonical encoding of every
// configuration field that influences pipeline output or simulated timing.
// The checkpoint/fault-injection knobs (CheckpointDir, ResumeFrom,
// FailAfterStage, FailAtIteration, FailAtBarrier) are deliberately excluded:
// a run resumed with the fault cleared must still hash-match the killed run
// it is continuing. Ranks is also excluded — the rank count is validated
// separately so a wrong P yields its own distinct error. cfg must already be
// withDefaults()-normalized.
func configHash(cfg Config, ks []int) string {
	var e checkpoint.Enc
	e.Str("mhm-config-v1")
	e.Int(cfg.RanksPerNode)
	cost := cfg.Cost
	if !cfg.CostSet && cost == (pgas.CostModel{}) {
		// Hash the effective model, so an explicit DefaultCostModel and the
		// zero-value default produce the same identity.
		cost = pgas.DefaultCostModel()
	}
	e.F64(cost.ComputePerOp)
	e.F64(cost.LatencyOnNode)
	e.F64(cost.LatencyOffNode)
	e.F64(cost.ByteOnNode)
	e.F64(cost.ByteOffNode)
	e.F64(cost.AtomicCost)
	e.F64(cost.BarrierCost)
	e.Int(cfg.KMin)
	e.Int(cfg.KMax)
	e.Int(cfg.KStep)
	e.Int(len(ks))
	for _, k := range ks {
		e.Int(k)
	}
	e.U32(cfg.MinKmerCount)
	e.Bool(cfg.UseBloom)
	e.U32(cfg.TBase)
	e.F64(cfg.ErrorRate)
	e.U32(cfg.GlobalTHQ)
	e.Int(len(cfg.Libraries))
	for _, lib := range cfg.Libraries {
		e.Str(lib.Name)
		e.Int(lib.ReadLen)
		e.Int(lib.InsertSize)
		e.Int(lib.InsertStd)
	}
	e.Bool(cfg.Aggregate)
	e.Bool(cfg.SoftwareCache)
	e.Bool(cfg.ReadLocalization)
	e.Bool(cfg.WorkStealing)
	e.Bool(cfg.UseComponents)
	e.Bool(cfg.GatherToAll)
	e.Bool(cfg.BubbleMerging)
	e.Bool(cfg.HairRemoval)
	e.Bool(cfg.Pruning)
	e.Bool(cfg.Compaction)
	e.Bool(cfg.LocalAssembly)
	e.Bool(cfg.Scaffolding)
	e.U64(cfg.RRNAProfile.Fingerprint())
	e.Int(cfg.MinContigLen)
	return checkpoint.HashBytes(e.Bytes())
}

// ConfigHash returns the hex SHA-256 content hash of a configuration after
// default-normalization: the same identity the checkpoint manifest binds, so
// two Config values hash equal exactly when they run the identical pipeline.
// Execution knobs (Ranks via separate validation, Workers, checkpoint and
// fault-injection fields, the Progress hook) are excluded. The serving layer
// uses it to prove that a job spec decodes to the configuration it claims.
func ConfigHash(cfg Config) string {
	cfg = cfg.withDefaults()
	return configHash(cfg, cfg.KValues())
}

// inputHash returns the hex SHA-256 over the full input read set, with
// length framing so field boundaries cannot alias. The hash covers the
// per-read library AND sample tags: two read sets that differ only in which
// sample their reads belong to are different co-assembly inputs, and a
// checkpoint written before the sample axis existed fails the manifest's
// input check (ErrInputMismatch) instead of resuming with mis-attributed
// reads.
func inputHash(reads []seq.Read) string {
	h := sha256.New()
	var lenBuf [8]byte
	frame := func(b []byte) {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(b)))
		h.Write(lenBuf[:])
		h.Write(b)
	}
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(reads)))
	h.Write(lenBuf[:])
	for i := range reads {
		frame([]byte(reads[i].ID))
		frame(reads[i].Seq)
		frame(reads[i].Qual)
		h.Write([]byte{reads[i].LibID, reads[i].SampleID})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// rankState is the complete per-rank pipeline state at a stage boundary:
// everything runPipeline needs to re-enter the loop at the next stage with
// bit-identical behavior, including the simulated clock and resident-bytes
// meter (identical across ranks at a boundary thanks to the stage-end
// barrier, and required for the sim-seconds equality guarantee).
type rankState struct {
	ranks, rank int
	it, stage   int
	clock       float64
	resident    uint64

	reads            []seq.Read
	readOffset       int
	shippedReadBytes int

	distinctKmers  int
	heavyHitterMax int64
	alignedFrac    float64
	localAsmBases  int
	cacheHitRate   float64

	// aligns is the rank's lastAligns slice, serialized only at boundaries
	// where a later stage still consumes it (local assembly in the same
	// iteration, or read localization at the iteration end).
	hasAligns bool
	aligns    []aligner.Alignment

	// contigs is the rank's shard of the live contig set, when one exists.
	hasContigs bool
	contigs    []dbg.Contig

	// counts is the rank's partition of the k-mer counts table (live only
	// between k-mer analysis and graph construction), sorted by k-mer for a
	// deterministic byte stream — the table's iteration order is not.
	hasCounts bool
	counts    []seq.KmerCount

	// Scaffolding output, present only at the scaffolding boundary.
	// scaffolds is non-empty on rank 0 only (the emitted final list);
	// scaffoldLocal is the rank's own shard.
	hasScaffold   bool
	scaffolds     []scaffold.Scaffold
	scaffoldLocal []scaffold.Scaffold
	scafCounters  [8]int
	rounds        []RoundStats
}

// rankStateMagic versions the per-rank shard format. v2 widened the read
// record with the SampleID tag; a v1 shard (written before the sample axis
// existed) is refused at decode — its magic no longer matches — so an old
// checkpoint surfaces as ErrCorruptShard instead of mis-decoding the tail
// of every read record.
const rankStateMagic = "mhm-rank-state-v2"

// encodeRankState serializes a rankState into the checkpoint wire format.
func encodeRankState(st *rankState) []byte {
	var e checkpoint.Enc
	e.Str(rankStateMagic)
	e.Int(st.ranks)
	e.Int(st.rank)
	e.Int(st.it)
	e.Int(st.stage)
	e.F64(st.clock)
	e.U64(st.resident)
	e.Int(st.readOffset)
	e.Int(st.shippedReadBytes)
	e.Int(len(st.reads))
	for _, rd := range st.reads {
		e.Read(rd)
	}
	e.Int(st.distinctKmers)
	e.I64(st.heavyHitterMax)
	e.F64(st.alignedFrac)
	e.Int(st.localAsmBases)
	e.F64(st.cacheHitRate)
	e.Bool(st.hasAligns)
	if st.hasAligns {
		e.Int(len(st.aligns))
		for _, a := range st.aligns {
			e.Alignment(a)
		}
	}
	e.Bool(st.hasContigs)
	if st.hasContigs {
		e.Int(len(st.contigs))
		for _, c := range st.contigs {
			e.Contig(c)
		}
	}
	e.Bool(st.hasCounts)
	if st.hasCounts {
		e.Int(len(st.counts))
		for _, kc := range st.counts {
			e.KmerCount(kc)
		}
	}
	e.Bool(st.hasScaffold)
	if st.hasScaffold {
		e.Int(len(st.scaffolds))
		for _, s := range st.scaffolds {
			e.Scaffold(s)
		}
		e.Int(len(st.scaffoldLocal))
		for _, s := range st.scaffoldLocal {
			e.Scaffold(s)
		}
		for _, v := range st.scafCounters {
			e.Int(v)
		}
		e.Int(len(st.rounds))
		for _, rs := range st.rounds {
			e.Str(rs.Library)
			e.Int(rs.LibIndex)
			e.Int(rs.InsertSize)
			e.Int(rs.InputContigs)
			e.Int(rs.Scaffolds)
			e.Int(rs.AcceptedLinks)
		}
	}
	return e.Bytes()
}

// decodeRankState is the error-returning inverse of encodeRankState. It
// never panics on corrupted or truncated input.
func decodeRankState(data []byte) (*rankState, error) {
	d := checkpoint.NewDec(data)
	magic, err := d.Str()
	if err != nil {
		return nil, err
	}
	if magic != rankStateMagic {
		return nil, fmt.Errorf("bad rank-state magic %q", magic)
	}
	st := &rankState{}
	if st.ranks, err = d.Int(); err != nil {
		return nil, err
	}
	if st.rank, err = d.Int(); err != nil {
		return nil, err
	}
	if st.it, err = d.Int(); err != nil {
		return nil, err
	}
	if st.stage, err = d.Int(); err != nil {
		return nil, err
	}
	if st.stage < 0 || st.stage >= len(stageNames) {
		return nil, fmt.Errorf("stage index %d out of range", st.stage)
	}
	if st.clock, err = d.F64(); err != nil {
		return nil, err
	}
	if st.resident, err = d.U64(); err != nil {
		return nil, err
	}
	if st.readOffset, err = d.Int(); err != nil {
		return nil, err
	}
	if st.shippedReadBytes, err = d.Int(); err != nil {
		return nil, err
	}
	nReads, err := d.Count(25)
	if err != nil {
		return nil, err
	}
	st.reads = make([]seq.Read, nReads)
	for i := range st.reads {
		if st.reads[i], err = d.Read(); err != nil {
			return nil, err
		}
	}
	if st.distinctKmers, err = d.Int(); err != nil {
		return nil, err
	}
	if st.heavyHitterMax, err = d.I64(); err != nil {
		return nil, err
	}
	if st.alignedFrac, err = d.F64(); err != nil {
		return nil, err
	}
	if st.localAsmBases, err = d.Int(); err != nil {
		return nil, err
	}
	if st.cacheHitRate, err = d.F64(); err != nil {
		return nil, err
	}
	if st.hasAligns, err = d.Bool(); err != nil {
		return nil, err
	}
	if st.hasAligns {
		n, err := d.Count(66)
		if err != nil {
			return nil, err
		}
		st.aligns = make([]aligner.Alignment, n)
		for i := range st.aligns {
			if st.aligns[i], err = d.Alignment(); err != nil {
				return nil, err
			}
		}
	}
	if st.hasContigs, err = d.Bool(); err != nil {
		return nil, err
	}
	if st.hasContigs {
		n, err := d.Count(24)
		if err != nil {
			return nil, err
		}
		st.contigs = make([]dbg.Contig, n)
		for i := range st.contigs {
			if st.contigs[i], err = d.Contig(); err != nil {
				return nil, err
			}
		}
	}
	if st.hasCounts, err = d.Bool(); err != nil {
		return nil, err
	}
	if st.hasCounts {
		n, err := d.Count(checkpoint.KmerCountBytes)
		if err != nil {
			return nil, err
		}
		st.counts = make([]seq.KmerCount, n)
		for i := range st.counts {
			if st.counts[i], err = d.KmerCount(); err != nil {
				return nil, err
			}
		}
	}
	if st.hasScaffold, err = d.Bool(); err != nil {
		return nil, err
	}
	if st.hasScaffold {
		if st.scaffolds, err = decodeScaffolds(d); err != nil {
			return nil, err
		}
		if st.scaffoldLocal, err = decodeScaffolds(d); err != nil {
			return nil, err
		}
		for i := range st.scafCounters {
			if st.scafCounters[i], err = d.Int(); err != nil {
				return nil, err
			}
		}
		n, err := d.Count(48)
		if err != nil {
			return nil, err
		}
		st.rounds = make([]RoundStats, n)
		for i := range st.rounds {
			rs := &st.rounds[i]
			if rs.Library, err = d.Str(); err != nil {
				return nil, err
			}
			if rs.LibIndex, err = d.Int(); err != nil {
				return nil, err
			}
			if rs.InsertSize, err = d.Int(); err != nil {
				return nil, err
			}
			if rs.InputContigs, err = d.Int(); err != nil {
				return nil, err
			}
			if rs.Scaffolds, err = d.Int(); err != nil {
				return nil, err
			}
			if rs.AcceptedLinks, err = d.Int(); err != nil {
				return nil, err
			}
		}
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return st, nil
}

func decodeScaffolds(d *checkpoint.Dec) ([]scaffold.Scaffold, error) {
	n, err := d.Count(40)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]scaffold.Scaffold, n)
	for i := range out {
		if out[i], err = d.Scaffold(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ckptWriter coordinates checkpoint writes across the rank goroutines. Every
// rank calls record between the stage-end barrier and the next barrier;
// rank 0 additionally waits for all deposits, appends the manifest step and
// saves the manifest. The coordination is plain Go synchronization, not PGAS
// collectives: checkpoint I/O must not advance the simulated clocks, or a
// checkpointed run would diverge from an uncheckpointed one.
//
// No rank passes a barrier between its stage-end and its deposit, so even a
// mid-collective abort (InjectBarrierFailure) cannot strand rank 0 waiting
// for a deposit that will never arrive.
type ckptWriter struct {
	dir   string
	ranks int

	mu   sync.Mutex
	cond *sync.Cond
	man  *checkpoint.Manifest
	cur  map[int]string
	err  error
}

// newCkptWriter creates the checkpoint directory, saves the (possibly
// resumed) manifest immediately — so the run identity is durable before the
// first stage completes — and returns the writer.
func newCkptWriter(dir string, ranks int, man *checkpoint.Manifest) (*ckptWriter, error) {
	w := &ckptWriter{dir: dir, ranks: ranks, man: man, cur: make(map[int]string)}
	w.cond = sync.NewCond(&w.mu)
	if err := man.Save(dir); err != nil {
		return nil, fmt.Errorf("core: writing checkpoint manifest: %w", err)
	}
	return w, nil
}

// record writes one rank's shard for the step (iteration, stage) and, on
// rank 0, completes the step: waits until every rank deposited, appends the
// chained step record and saves the manifest atomically. Write errors are
// latched (first error wins) and the chain is not extended past them.
//
// The rendezvous is scheduler-aware: rank 0's wait is a plain cond.Wait, and
// the ranks it waits for may themselves be parked waiting for a worker-pool
// slot, so rank 0 detaches from the pool for the duration of the wait (and
// the manifest I/O) — holding the slot across it would deadlock a Workers=1
// pool outright.
func (w *ckptWriter) record(r *pgas.Rank, iteration int, stage string, k int, payload []byte) {
	rank := r.ID()
	w.mu.Lock()
	seqNo := len(w.man.Steps)
	w.mu.Unlock()

	hash, err := checkpoint.WriteShard(checkpoint.ShardPath(w.dir, seqNo, stage, rank), payload)

	w.mu.Lock()
	if err != nil && w.err == nil {
		w.err = err
	}
	w.cur[rank] = hash
	w.cond.Broadcast()
	if rank != 0 {
		w.mu.Unlock()
		return
	}
	w.mu.Unlock()

	r.Detach()
	w.mu.Lock()
	for len(w.cur) < w.ranks {
		w.cond.Wait()
	}
	hashes := make([]string, w.ranks)
	for p, h := range w.cur {
		hashes[p] = h
	}
	w.cur = make(map[int]string)
	if w.err == nil {
		w.man.AppendStep(iteration, stage, k, hashes)
		if err := w.man.Save(w.dir); err != nil && w.err == nil {
			w.err = err
		}
	}
	w.mu.Unlock()
	r.Reattach()
}

// head returns the manifest's current chain head.
func (w *ckptWriter) head() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.man.Head()
}

// firstErr returns the first latched write error, if any.
func (w *ckptWriter) firstErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// resumeState is the decoded and validated restart point loadResume builds
// before the SPMD region starts: the per-rank states plus the shared
// distributed structures, reconstructed charge-free (their simulated cost
// lives in the restored rank clocks).
type resumeState struct {
	it, stage int
	states    []rankState
	cset      *dbg.ContigSet
	counts    *dht.Map[seq.Kmer, seq.KmerCount]
	man       *checkpoint.Manifest
}

// loadResume validates the checkpoint directory against the resuming run's
// identity and rebuilds the restart state. Every refusal carries one of the
// checkpoint package's sentinel errors.
func loadResume(dir string, reads []seq.Read, cfg Config, ks []int, machine *pgas.Machine) (*resumeState, error) {
	man, err := checkpoint.Load(dir)
	if err != nil {
		return nil, err
	}
	if err := man.ValidateFor(configHash(cfg, ks), inputHash(reads), cfg.Ranks); err != nil {
		return nil, err
	}
	if len(man.Steps) == 0 {
		return nil, fmt.Errorf("core: checkpoint %s records no completed steps to resume from", dir)
	}
	last := man.Steps[len(man.Steps)-1]
	stage, ok := stageIndexOf(last.Stage)
	if !ok {
		return nil, fmt.Errorf("%w: unknown stage %q", checkpoint.ErrBadManifest, last.Stage)
	}
	rs := &resumeState{it: last.Iteration, stage: stage, man: man, states: make([]rankState, cfg.Ranks)}
	for p := 0; p < cfg.Ranks; p++ {
		payload, err := checkpoint.ReadShard(checkpoint.ShardPath(dir, last.Seq, last.Stage, p), last.ShardHashes[p])
		if err != nil {
			return nil, err
		}
		st, err := decodeRankState(payload)
		if err != nil {
			return nil, fmt.Errorf("%w: rank %d: %v", checkpoint.ErrCorruptShard, p, err)
		}
		if st.ranks != cfg.Ranks || st.rank != p || st.it != last.Iteration || st.stage != stage {
			return nil, fmt.Errorf("%w: rank %d shard header (P=%d rank=%d it=%d stage=%d) does not match manifest step (P=%d rank=%d it=%d stage=%d)",
				checkpoint.ErrCorruptShard, p, st.ranks, st.rank, st.it, st.stage, cfg.Ranks, p, last.Iteration, stage)
		}
		rs.states[p] = *st
	}

	mode := dist.Distributed
	if cfg.GatherToAll {
		mode = dist.Replicated
	}
	if rs.states[0].hasContigs {
		shards := make([][]dbg.Contig, cfg.Ranks)
		id := 0
		for p := range rs.states {
			if !rs.states[p].hasContigs {
				return nil, fmt.Errorf("%w: contig shard present on rank 0 but absent on rank %d", checkpoint.ErrCorruptShard, p)
			}
			shards[p] = rs.states[p].contigs
			for _, c := range shards[p] {
				if c.ID != id {
					return nil, fmt.Errorf("%w: contig IDs are not dense in rank order (rank %d holds ID %d where %d was expected)",
						checkpoint.ErrCorruptShard, p, c.ID, id)
				}
				id++
			}
		}
		rs.cset = dist.RestoreSet(shards, dbg.Contig.WireSize, mode)
	}
	if rs.states[0].hasCounts {
		cm := kmeranalysis.NewCountsMap(machine)
		for p := range rs.states {
			for _, kc := range rs.states[p].counts {
				if cm.Owner(kc.Kmer) != p {
					return nil, fmt.Errorf("%w: k-mer %s stored in rank %d's shard but owned by rank %d",
						checkpoint.ErrCorruptShard, kc.Kmer.String(), p, cm.Owner(kc.Kmer))
				}
				cm.Restore(p, kc.Kmer, kc)
			}
		}
		rs.counts = cm
	}
	return rs, nil
}

// ckptRun bundles the per-run checkpoint/restart context threaded through
// runPipeline. A run with neither checkpointing nor resume carries a
// zero-value ckptRun, which is inert.
type ckptRun struct {
	writer *ckptWriter
	resume *resumeState
}

// done reports whether the stage (iteration it, stage index) had already
// completed before the resume point — such stages are skipped; their effects
// live in the restored state.
func (c *ckptRun) done(it, stage int) bool {
	if c == nil || c.resume == nil {
		return false
	}
	return it < c.resume.it || (it == c.resume.it && stage <= c.resume.stage)
}

// collectCounts snapshots one rank's partition of the counts table, sorted
// by k-mer: the table's iteration order is unspecified, and checkpoint
// shards must be deterministic bytes.
func collectCounts(counts *dht.Map[seq.Kmer, seq.KmerCount], rank int) []seq.KmerCount {
	var out []seq.KmerCount
	counts.RangeLocal(rank, func(_ seq.Kmer, v seq.KmerCount) { out = append(out, v) })
	sort.Slice(out, func(i, j int) bool { return out[i].Kmer.Less(out[j].Kmer) })
	return out
}
