package core

import (
	"testing"

	"mhmgo/internal/scaffold"
	"mhmgo/internal/seq"
	"mhmgo/internal/sim"
)

// twoLibraryCommunity returns a community whose genomes are long enough for
// a 1500 bp jumping library, plus a two-library read set over it (300 bp
// paired-end + 1500 bp jumping library). The read set deliberately lists
// the LONG library first — reads tagged LibID 0 are mp1500 — so tests can
// prove the round schedule follows the geometry, not the configuration
// order.
func twoLibraryCommunity(t *testing.T) (*sim.Community, []seq.Read) {
	t.Helper()
	comm := sim.GenerateCommunity(sim.CommunityConfig{
		NumGenomes:     3,
		MeanGenomeLen:  9000,
		LenVariation:   0.2,
		AbundanceSigma: 0.5,
		RRNALen:        200,
		RRNADivergence: 0.02,
		StrainFraction: 0,
		Seed:           301,
	})
	both := sim.SimulateReads(comm, sim.ReadConfig{
		ReadLen:   80,
		ErrorRate: 0.005,
		Coverage:  16,
		Seed:      302,
		Libraries: []sim.LibraryConfig{
			{Name: "mp1500", InsertSize: 1500, InsertStd: 120, CoverageShare: 0.25},
			{Name: "pe300", InsertSize: 300, InsertStd: 25, CoverageShare: 0.75},
		},
	})
	return comm, both
}

// twoLibraryConfig matches the read set of twoLibraryCommunity: the library
// list mirrors the simulator's (LibID 0 = mp1500, LibID 1 = pe300). Read
// localization and the Bloom prefilter are disabled — as in
// TestAssemblyDeterministicAcrossRankCounts — because both are
// arrival-order-dependent and the rounds tests compare output across rank
// counts bit for bit.
func twoLibraryConfig(ranks int) Config {
	cfg := DefaultConfig(ranks)
	cfg.KMin, cfg.KMax, cfg.KStep = 21, 33, 12
	cfg.ReadLocalization = false
	cfg.UseBloom = false
	cfg.Libraries = []seq.Library{
		{Name: "mp1500", InsertSize: 1500, InsertStd: 120},
		{Name: "pe300", InsertSize: 300, InsertStd: 25},
	}
	return cfg
}

// TestScaffoldRoundsGolden pins the multi-library round schedule: one round
// per library in ascending insert-size order (even though the configuration
// lists the long library first), each round's scaffolds feeding the next
// round's contig set, and the whole thing bit-identical across rank counts.
func TestScaffoldRoundsGolden(t *testing.T) {
	_, both := twoLibraryCommunity(t)

	res, err := Assemble(both, twoLibraryConfig(4))
	if err != nil {
		t.Fatal(err)
	}

	if len(res.ScaffoldRounds) != 2 {
		t.Fatalf("expected 2 scaffolding rounds, got %d: %+v", len(res.ScaffoldRounds), res.ScaffoldRounds)
	}
	for i := 1; i < len(res.ScaffoldRounds); i++ {
		if res.ScaffoldRounds[i-1].InsertSize > res.ScaffoldRounds[i].InsertSize {
			t.Errorf("rounds not in ascending insert-size order: %+v", res.ScaffoldRounds)
		}
	}
	r0, r1 := res.ScaffoldRounds[0], res.ScaffoldRounds[1]
	if r0.Library != "pe300" || r1.Library != "mp1500" {
		t.Errorf("round order = %s, %s; want pe300, mp1500 (ascending insert size)", r0.Library, r1.Library)
	}
	if r0.LibIndex != 1 || r1.LibIndex != 0 {
		t.Errorf("round LibIndex = %d, %d; want 1, 0 (config listed the long library first)", r0.LibIndex, r1.LibIndex)
	}
	if r0.Scaffolds == 0 {
		t.Fatal("round 0 produced no scaffolds")
	}
	// Round 0's scaffolds are round 1's contigs (content-hash dedup may
	// only shrink the count, never grow it).
	if r1.InputContigs == 0 || r1.InputContigs > r0.Scaffolds {
		t.Errorf("round 1 consumed %d contigs from round 0's %d scaffolds", r1.InputContigs, r0.Scaffolds)
	}
	if len(res.Scaffolds) == 0 {
		t.Fatal("no final scaffolds")
	}
	// Final scaffold member IDs must index Result.Contigs (the final
	// round's emitted contig set).
	for _, sc := range res.Scaffolds {
		for _, id := range sc.ContigIDs {
			if id < 0 || id >= len(res.Contigs) {
				t.Fatalf("scaffold %d references contig %d of %d", sc.ID, id, len(res.Contigs))
			}
		}
	}

	// Bit-identical output and simulated seconds across rank counts,
	// rounds included.
	want := outputFingerprint(res)
	for _, ranks := range []int{1, 3, 8} {
		resP, err := Assemble(both, twoLibraryConfig(ranks))
		if err != nil {
			t.Fatal(err)
		}
		if got := outputFingerprint(resP); got != want {
			t.Errorf("P=%d: two-library output differs from P=4 baseline", ranks)
		}
	}
}

// TestMultiLibraryImprovesScaffolding asserts the acceptance scenario: on a
// community sequenced with a 300 bp and a 1500 bp library, round-based
// scaffolding yields a scaffold N50 at least as good as the single-library
// (300 bp) baseline. The baseline assembles the SAME reads with the legacy
// one-library config — i.e. the pre-multi-library pipeline, which applies
// the 300 bp geometry to every pair (mis-gapping the jumping pairs) — so
// the comparison isolates what round-based scaffolding buys.
func TestMultiLibraryImprovesScaffolding(t *testing.T) {
	_, both := twoLibraryCommunity(t)

	baseCfg := twoLibraryConfig(4)
	baseCfg.Libraries = nil
	baseCfg.InsertSize, baseCfg.InsertStd = 300, 25
	baseRes, err := Assemble(both, baseCfg)
	if err != nil {
		t.Fatal(err)
	}
	bothRes, err := Assemble(both, twoLibraryConfig(4))
	if err != nil {
		t.Fatal(err)
	}

	baseN50 := scaffold.ComputeStats(baseRes.Scaffolds).N50
	bothN50 := scaffold.ComputeStats(bothRes.Scaffolds).N50
	t.Logf("scaffold N50: single-library=%d two-library=%d (scaffolds %d vs %d)",
		baseN50, bothN50, len(baseRes.Scaffolds), len(bothRes.Scaffolds))
	if bothN50 < baseN50 {
		t.Errorf("two-library N50 %d worse than single-library baseline %d", bothN50, baseN50)
	}
}

// TestSingleLibraryShorthandEquivalence pins the backward-compatibility
// contract: the legacy InsertSize/InsertStd shorthand and an explicit
// one-entry Libraries list are the same configuration — byte-identical
// output AND identical simulated seconds.
func TestSingleLibraryShorthandEquivalence(t *testing.T) {
	_, reads := smallCommunity(t, 2, 12)

	legacy := testConfig(4)
	legacyRes, err := Assemble(reads, legacy)
	if err != nil {
		t.Fatal(err)
	}

	explicit := testConfig(4)
	explicit.Libraries = []seq.Library{{Name: "pe", InsertSize: explicit.InsertSize, InsertStd: explicit.InsertStd}}
	explicitRes, err := Assemble(reads, explicit)
	if err != nil {
		t.Fatal(err)
	}

	if a, b := outputFingerprint(legacyRes), outputFingerprint(explicitRes); a != b {
		t.Error("explicit one-library config output differs from the legacy shorthand")
	}
	if legacyRes.SimSeconds != explicitRes.SimSeconds {
		t.Errorf("simulated seconds differ: legacy %v vs explicit %v", legacyRes.SimSeconds, explicitRes.SimSeconds)
	}
	if len(legacyRes.ScaffoldRounds) != 1 || len(explicitRes.ScaffoldRounds) != 1 {
		t.Errorf("single-library assemblies must run exactly one round: %d vs %d",
			len(legacyRes.ScaffoldRounds), len(explicitRes.ScaffoldRounds))
	}
}
