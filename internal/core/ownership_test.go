package core

import (
	"bytes"
	"fmt"
	"testing"

	"mhmgo/internal/seq"
	"mhmgo/internal/sim"
)

// outputFingerprint flattens the final sequences into one comparable blob.
func outputFingerprint(res *Result) string {
	var buf bytes.Buffer
	for _, s := range res.FinalSequences() {
		buf.Write(s)
		buf.WriteByte('\n')
	}
	return buf.String()
}

// determinismMemo carries first-execution results across -count=2 reruns of
// the test binary: package-level state survives between the repeated
// executions of the same test within one process.
var determinismMemo = map[int]string{}

// TestPipelineDeterministicAcrossRuns runs the full pipeline at P in
// {1, 3, 8} (including a non-power-of-two rank count) and asserts that the
// scaffold output and the simulated seconds are identical every time the
// test executes. Run with -count=2 (as CI does) to compare two full
// executions; within one execution the pipeline additionally runs twice per
// P. Every source of run-to-run variance — goroutine interleavings in the
// DHT flush order, work-sharing claim order, cache-access ordering — must be
// invisible in both the assembly and the simulated clock.
func TestPipelineDeterministicAcrossRuns(t *testing.T) {
	_, reads := smallCommunity(t, 2, 12)
	for _, ranks := range []int{1, 3, 8} {
		run := func() string {
			res, err := Assemble(reads, testConfig(ranks))
			if err != nil {
				t.Fatal(err)
			}
			return fmt.Sprintf("scaffolds=%d sim=%.17g\n%s",
				len(res.Scaffolds), res.SimSeconds, outputFingerprint(res))
		}
		got := run()
		if again := run(); again != got {
			t.Errorf("P=%d: two in-process runs differ:\n%.200s\nvs\n%.200s", ranks, got, again)
		}
		if prev, ok := determinismMemo[ranks]; ok {
			if prev != got {
				t.Errorf("P=%d: output or simulated seconds changed between -count reruns:\n%.200s\nvs\n%.200s",
					ranks, prev, got)
			}
		} else {
			determinismMemo[ranks] = got
		}
	}
}

// TestDistributedOwnershipEquivalentAndLean is the acceptance test of the
// distributed-ownership refactor:
//
//  1. At P in {1, 3, 8}, the distributed pipeline's scaffold output is
//     byte-identical to the gather-to-all baseline's (Config.GatherToAll),
//     which preserves the legacy communication/memory pattern.
//  2. At P=64, the worst rank's peak resident collective bytes shrink by at
//     least 4x when gather-to-all is replaced by distributed ownership.
func TestDistributedOwnershipEquivalentAndLean(t *testing.T) {
	_, reads := smallCommunity(t, 2, 12)
	run := func(ranks int, gatherToAll bool) *Result {
		cfg := testConfig(ranks)
		cfg.GatherToAll = gatherToAll
		res, err := Assemble(reads, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	for _, ranks := range []int{1, 3, 8} {
		distRes := run(ranks, false)
		gatherRes := run(ranks, true)
		if d, g := outputFingerprint(distRes), outputFingerprint(gatherRes); d != g {
			t.Errorf("P=%d: distributed output differs from the gather-to-all baseline", ranks)
		}
		if len(distRes.Scaffolds) == 0 {
			t.Fatalf("P=%d: no scaffolds produced", ranks)
		}
		// Scaffold member IDs must index Result.Contigs (the emitted,
		// re-sorted numbering), not the pipeline-internal shard numbering:
		// each scaffold starts with its first member contig verbatim (in
		// one orientation or the other).
		for _, sc := range distRes.Scaffolds {
			for _, id := range sc.ContigIDs {
				if id < 0 || id >= len(distRes.Contigs) {
					t.Fatalf("P=%d: scaffold %d references contig %d of %d", ranks, sc.ID, id, len(distRes.Contigs))
				}
			}
			first := distRes.Contigs[sc.ContigIDs[0]].Seq
			if len(sc.Seq) < len(first) {
				t.Fatalf("P=%d: scaffold %d shorter than its first member contig", ranks, sc.ID)
			}
			prefix := string(sc.Seq[:len(first)])
			if prefix != string(first) && prefix != string(seq.ReverseComplement(first)) {
				t.Errorf("P=%d: scaffold %d does not begin with its first member contig", ranks, sc.ID)
			}
		}
	}

	// The memory assertion runs on a wider, flatter community: with P=64 far
	// above the contig count of a two-genome toy, ownership (and the reads
	// localized to it) cannot spread, and the shared localization spike
	// floors both modes. Two dozen small genomes give the owner function
	// enough granularity for the footprint gap to be about ownership, not
	// about running 64 ranks on 4 contigs.
	comm64 := sim.GenerateCommunity(sim.CommunityConfig{
		NumGenomes:     24,
		MeanGenomeLen:  2000,
		LenVariation:   0.2,
		AbundanceSigma: 0.3,
		RRNALen:        150,
		StrainFraction: 0,
		Seed:           71,
	})
	reads = sim.SimulateReads(comm64, sim.ReadConfig{
		ReadLen: 80, InsertSize: 220, InsertStd: 15,
		ErrorRate: 0.005, Coverage: 8, Seed: 72,
	})

	const p = 64
	distRes := run(p, false)
	gatherRes := run(p, true)
	if d, g := outputFingerprint(distRes), outputFingerprint(gatherRes); d != g {
		t.Errorf("P=%d: distributed output differs from the gather-to-all baseline", p)
	}
	distPeak := distRes.Stats.PeakResidentBytes
	gatherPeak := gatherRes.Stats.PeakResidentBytes
	t.Logf("P=%d peak resident bytes: gather-to-all=%d distributed=%d (%.1fx)",
		p, gatherPeak, distPeak, float64(gatherPeak)/float64(distPeak))
	if distPeak == 0 || gatherPeak == 0 {
		t.Fatal("peak resident tracking recorded nothing")
	}
	if float64(gatherPeak) < 4*float64(distPeak) {
		t.Errorf("distributed ownership should cut the worst rank's peak resident bytes >=4x at P=%d: %d vs %d",
			p, gatherPeak, distPeak)
	}
}
