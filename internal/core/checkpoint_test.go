package core

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mhmgo/internal/aligner"
	"mhmgo/internal/checkpoint"
	"mhmgo/internal/dbg"
	"mhmgo/internal/scaffold"
	"mhmgo/internal/seq"
)

// ckptReads returns a small but non-trivial read set for checkpoint tests:
// two iterations of contig generation, multiple contigs, scaffolding work.
func ckptReads(t *testing.T) []seq.Read {
	t.Helper()
	_, reads := smallCommunity(t, 2, 8)
	return reads
}

// assertSameRun asserts the three bit-identity guarantees of a resumed run:
// identical final sequences, identical simulated seconds and identical
// manifest head hash.
func assertSameRun(t *testing.T, want, got *Result) {
	t.Helper()
	ws, gs := want.FinalSequences(), got.FinalSequences()
	if len(ws) != len(gs) {
		t.Fatalf("final sequence count %d != baseline %d", len(gs), len(ws))
	}
	for i := range ws {
		if !bytes.Equal(ws[i], gs[i]) {
			t.Fatalf("final sequence %d differs from baseline", i)
		}
	}
	if want.SimSeconds != got.SimSeconds {
		t.Errorf("sim seconds %v != baseline %v", got.SimSeconds, want.SimSeconds)
	}
	if want.ManifestHead == "" || got.ManifestHead == "" {
		t.Fatal("missing manifest head")
	}
	if want.ManifestHead != got.ManifestHead {
		t.Errorf("manifest head %s != baseline %s", got.ManifestHead, want.ManifestHead)
	}
}

// TestCheckpointResumeAllStages is the fault-injection matrix: for every
// stage the pipeline checkpoints, kill the run right after that stage, resume
// from the checkpoint directory, and require the resumed run to reproduce the
// uninterrupted run bit-for-bit — at P = 1, 3 and 8.
func TestCheckpointResumeAllStages(t *testing.T) {
	reads := ckptReads(t)
	for _, p := range []int{1, 3, 8} {
		p := p
		t.Run(fmt.Sprintf("P=%d", p), func(t *testing.T) {
			cfg := testConfig(p)

			baseDir := t.TempDir()
			bcfg := cfg
			bcfg.CheckpointDir = baseDir
			base, err := Assemble(reads, bcfg)
			if err != nil {
				t.Fatalf("baseline run: %v", err)
			}
			man, err := checkpoint.Load(baseDir)
			if err != nil {
				t.Fatalf("baseline manifest: %v", err)
			}
			if len(man.Steps) == 0 {
				t.Fatal("baseline run recorded no checkpoint steps")
			}
			if man.Head() != base.ManifestHead {
				t.Fatalf("result head %s != manifest head %s", base.ManifestHead, man.Head())
			}

			for _, step := range man.Steps {
				step := step
				t.Run(fmt.Sprintf("kill-after-%02d-%s-it%d", step.Seq, step.Stage, step.Iteration), func(t *testing.T) {
					dir := t.TempDir()
					kcfg := cfg
					kcfg.CheckpointDir = dir
					kcfg.FailAfterStage = step.Stage
					kcfg.FailAtIteration = step.Iteration
					if _, err := Assemble(reads, kcfg); !errors.Is(err, ErrFaultInjected) {
						t.Fatalf("killed run returned %v, want ErrFaultInjected", err)
					}
					killed, err := checkpoint.Load(dir)
					if err != nil {
						t.Fatalf("manifest after kill: %v", err)
					}
					if got := len(killed.Steps); got != step.Seq+1 {
						t.Fatalf("killed run recorded %d steps, want %d", got, step.Seq+1)
					}

					rcfg := cfg
					rcfg.CheckpointDir = dir
					rcfg.ResumeFrom = dir
					res, err := Assemble(reads, rcfg)
					if err != nil {
						t.Fatalf("resume: %v", err)
					}
					assertSameRun(t, base, res)
				})
			}
		})
	}
}

// TestMidCollectiveKillResume kills the run abruptly inside a barrier — the
// middle of a collective, not a clean stage boundary — and requires that the
// checkpoints already on disk still resume to a bit-identical result. The
// manifest's atomic write discipline means a mid-collective kill can never
// tear a recorded step.
func TestMidCollectiveKillResume(t *testing.T) {
	reads := ckptReads(t)
	cfg := testConfig(3)

	baseDir := t.TempDir()
	bcfg := cfg
	bcfg.CheckpointDir = baseDir
	base, err := Assemble(reads, bcfg)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}

	for _, n := range []int{1, 10, 60, 250} {
		n := n
		t.Run(fmt.Sprintf("barrier=%d", n), func(t *testing.T) {
			dir := t.TempDir()
			kcfg := cfg
			kcfg.CheckpointDir = dir
			kcfg.FailAtBarrier = n
			_, err := Assemble(reads, kcfg)
			if err == nil {
				t.Skipf("run completed before barrier %d; nothing to kill", n)
			}
			if !errors.Is(err, ErrFaultInjected) {
				t.Fatalf("killed run returned %v, want ErrFaultInjected", err)
			}

			man, err := checkpoint.Load(dir)
			if err != nil {
				t.Fatalf("manifest after mid-collective kill: %v", err)
			}
			if err := man.Verify(); err != nil {
				t.Fatalf("manifest chain torn by mid-collective kill: %v", err)
			}

			rcfg := cfg
			rcfg.CheckpointDir = dir
			rcfg.ResumeFrom = dir
			res, err := Assemble(reads, rcfg)
			if len(man.Steps) == 0 {
				if err == nil || !strings.Contains(err.Error(), "no completed steps") {
					t.Fatalf("resume with no steps = %v, want refusal", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			assertSameRun(t, base, res)
		})
	}
}

// TestCheckpointingDoesNotPerturbRun pins the zero-interference property:
// writing checkpoints must not change the simulated seconds or the output of
// a run, and a pure resume (no new checkpoints) reproduces both.
func TestCheckpointingDoesNotPerturbRun(t *testing.T) {
	reads := ckptReads(t)
	cfg := testConfig(3)

	plain, err := Assemble(reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ccfg := cfg
	ccfg.CheckpointDir = dir
	ckpt, err := Assemble(reads, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.SimSeconds != ckpt.SimSeconds {
		t.Errorf("checkpointing changed sim seconds: %v vs %v", ckpt.SimSeconds, plain.SimSeconds)
	}
	ps, cs := plain.FinalSequences(), ckpt.FinalSequences()
	if len(ps) != len(cs) {
		t.Fatalf("checkpointing changed output count: %d vs %d", len(cs), len(ps))
	}
	for i := range ps {
		if !bytes.Equal(ps[i], cs[i]) {
			t.Fatalf("checkpointing changed output sequence %d", i)
		}
	}

	// Resume from the final checkpoint without writing new ones: the restart
	// replays only the final emit, yet must land on the same result.
	rcfg := cfg
	rcfg.ResumeFrom = dir
	res, err := Assemble(reads, rcfg)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if res.SimSeconds != plain.SimSeconds {
		t.Errorf("resumed sim seconds %v != %v", res.SimSeconds, plain.SimSeconds)
	}
	if res.ManifestHead != ckpt.ManifestHead {
		t.Errorf("resumed head %s != checkpointed head %s", res.ManifestHead, ckpt.ManifestHead)
	}
}

// copyCheckpointDir clones a checkpoint directory so each negative-path case
// can tamper with its own copy.
func copyCheckpointDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestResumeRefused is the negative-path table: every way a checkpoint can
// disagree with the resuming run must be refused with its own distinct error.
func TestResumeRefused(t *testing.T) {
	reads := ckptReads(t)
	cfg := testConfig(3)
	srcDir := t.TempDir()
	bcfg := cfg
	bcfg.CheckpointDir = srcDir
	if _, err := Assemble(reads, bcfg); err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	baseMan, err := checkpoint.Load(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	last := baseMan.Steps[len(baseMan.Steps)-1]

	cases := []struct {
		name    string
		prepare func(t *testing.T) (dir string, reads []seq.Read, cfg Config)
		want    error
		wantMsg string
	}{
		{
			name: "mismatched config hash",
			prepare: func(t *testing.T) (string, []seq.Read, Config) {
				c := cfg
				c.MinKmerCount = 3
				return srcDir, reads, c
			},
			want: checkpoint.ErrConfigMismatch,
		},
		{
			name: "mismatched input reads",
			prepare: func(t *testing.T) (string, []seq.Read, Config) {
				mutated := make([]seq.Read, len(reads))
				copy(mutated, reads)
				r0 := mutated[0].Clone()
				if r0.Seq[0] == 'A' {
					r0.Seq[0] = 'C'
				} else {
					r0.Seq[0] = 'A'
				}
				mutated[0] = r0
				return srcDir, mutated, cfg
			},
			want: checkpoint.ErrInputMismatch,
		},
		{
			name: "wrong rank count",
			prepare: func(t *testing.T) (string, []seq.Read, Config) {
				return srcDir, reads, testConfig(4)
			},
			want: checkpoint.ErrRankMismatch,
		},
		{
			name: "missing shard file",
			prepare: func(t *testing.T) (string, []seq.Read, Config) {
				dir := copyCheckpointDir(t, srcDir)
				if err := os.Remove(checkpoint.ShardPath(dir, last.Seq, last.Stage, 0)); err != nil {
					t.Fatal(err)
				}
				return dir, reads, cfg
			},
			want: checkpoint.ErrMissingShard,
		},
		{
			name: "corrupted shard bytes",
			prepare: func(t *testing.T) (string, []seq.Read, Config) {
				dir := copyCheckpointDir(t, srcDir)
				path := checkpoint.ShardPath(dir, last.Seq, last.Stage, 1)
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				data[len(data)/2] ^= 0x01
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
				return dir, reads, cfg
			},
			want: checkpoint.ErrCorruptShard,
		},
		{
			name: "truncated manifest",
			prepare: func(t *testing.T) (string, []seq.Read, Config) {
				dir := copyCheckpointDir(t, srcDir)
				path := filepath.Join(dir, checkpoint.ManifestFile)
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
					t.Fatal(err)
				}
				return dir, reads, cfg
			},
			want: checkpoint.ErrBadManifest,
		},
		{
			name: "tampered hash chain",
			prepare: func(t *testing.T) (string, []seq.Read, Config) {
				dir := copyCheckpointDir(t, srcDir)
				man, err := checkpoint.Load(dir)
				if err != nil {
					t.Fatal(err)
				}
				man.Steps[0].ShardHashes[0] = strings.Repeat("0", 64)
				if err := man.Save(dir); err != nil {
					t.Fatal(err)
				}
				return dir, reads, cfg
			},
			want: checkpoint.ErrBadChain,
		},
		{
			name: "empty directory",
			prepare: func(t *testing.T) (string, []seq.Read, Config) {
				return t.TempDir(), reads, cfg
			},
			want: checkpoint.ErrBadManifest,
		},
		{
			name: "manifest with no completed steps",
			prepare: func(t *testing.T) (string, []seq.Read, Config) {
				dir := t.TempDir()
				c := cfg.withDefaults()
				man := checkpoint.New(configHash(c, c.KValues()), inputHash(reads), c.Ranks)
				if err := man.Save(dir); err != nil {
					t.Fatal(err)
				}
				return dir, reads, cfg
			},
			wantMsg: "no completed steps",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, rd, c := tc.prepare(t)
			c.ResumeFrom = dir
			_, err := Assemble(rd, c)
			if err == nil {
				t.Fatal("resume accepted, want refusal")
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Errorf("resume error = %v, want %v", err, tc.want)
			}
			if tc.wantMsg != "" && !strings.Contains(err.Error(), tc.wantMsg) {
				t.Errorf("resume error = %v, want message containing %q", err, tc.wantMsg)
			}
		})
	}
}

// FuzzRankStateDecode drives the per-rank shard decoder over arbitrary
// bytes: it must never panic, and any input it accepts must re-encode to
// exactly the accepted bytes (the format is canonical).
func FuzzRankStateDecode(f *testing.F) {
	full := rankState{
		ranks: 3, rank: 1, it: 1, stage: stageIdxAlignment,
		clock: 12.375, resident: 4096,
		reads: []seq.Read{
			{ID: "pair1/1", Seq: []byte("ACGTACGTA"), Qual: []byte("IIIIIIIII"), LibID: 0, SampleID: 1},
			{ID: "pair1/2", Seq: []byte("TTGCAACGT"), Qual: []byte("IIIIIIIII"), LibID: 0, SampleID: 1},
		},
		readOffset: 2, shippedReadBytes: 96,
		distinctKmers: 123, heavyHitterMax: 17, alignedFrac: 0.875, localAsmBases: 40, cacheHitRate: 0.5,
		hasAligns: true,
		aligns: []aligner.Alignment{{ReadIdx: 2, ReadID: "pair1/1", ContigID: 0, ContigLen: 30, Matches: 9, AlignLen: 9}},
		hasContigs: true,
		contigs: []dbg.Contig{{ID: 0, Seq: []byte("ACGTACGTACGT"), Depth: 2.5}},
	}
	f.Add(encodeRankState(&full))

	counts := rankState{
		ranks: 1, rank: 0, it: 0, stage: stageIdxKmerAnalysis,
		clock: 1.5, resident: 128,
		reads:     []seq.Read{{ID: "r", Seq: []byte("ACGT"), SampleID: 3}},
		hasCounts: true,
		counts:    []seq.KmerCount{{Kmer: seq.MustKmer("ACGTACGTACGTACGTACGTA"), Count: 3}},
	}
	f.Add(encodeRankState(&counts))

	scaf := rankState{
		ranks: 2, rank: 0, it: 1, stage: stageIdxScaffolding,
		clock: 99.25, resident: 1 << 20,
		reads:       []seq.Read{{ID: "r", Seq: []byte("ACGT")}},
		hasScaffold: true,
		scaffolds:   []scaffold.Scaffold{{ID: 0, Seq: []byte("ACGTNNNACGT"), ContigIDs: []int{1, 0}, Gaps: 1}},
		scafCounters: [8]int{1, 2, 3, 4, 5, 6, 7, 8},
		rounds:       []RoundStats{{Library: "pe", InsertSize: 220, InputContigs: 4, Scaffolds: 2, AcceptedLinks: 3}},
	}
	f.Add(encodeRankState(&scaf))
	f.Add([]byte{})
	f.Add([]byte("mhm-rank-state-v1")) // pre-SampleID shard magic: must be rejected, never mis-decoded
	f.Add([]byte("mhm-rank-state-v2"))

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := decodeRankState(data)
		if err != nil {
			return
		}
		if got := encodeRankState(st); !bytes.Equal(got, data) {
			t.Fatalf("accepted input does not re-encode canonically (%d vs %d bytes)", len(got), len(data))
		}
	})
}
