//go:build race

package core

// raceEnabled reports whether this test binary was built with -race. The
// large-P scheduler smoke tests are skipped under the race detector: its
// per-goroutine shadow memory makes P=1024 rank goroutines prohibitively
// expensive, and the P<=8 tests already race-check the same scheduler paths.
const raceEnabled = true
