package core

import (
	"testing"

	"mhmgo/internal/pgas"
	"mhmgo/internal/seq"
)

// TestWireSizes pins the read-pair localization wire size against the
// reflective lower bound.
func TestWireSizes(t *testing.T) {
	rd := seq.Read{ID: "p/1", Seq: []byte("ACGTACGTAC"), Qual: []byte("IIIIIIIIII")}
	pm := pairMsg{R1: rd, R2: rd, Dest: 3}
	if got, min := pm.WireSize(), pgas.WireSizeOf(pm); got < min {
		t.Errorf("pairMsg.WireSize() = %d < encoded size %d", got, min)
	}
}
