package bloom

import (
	"math/rand"
	"testing"

	"mhmgo/internal/pgas"
)

func TestFilterNoFalseNegatives(t *testing.T) {
	f := NewWithEstimates(10000, 0.01)
	r := rand.New(rand.NewSource(1))
	keys := make([]uint64, 5000)
	for i := range keys {
		keys[i] = r.Uint64()
		f.Add(keys[i])
	}
	for i, k := range keys {
		if !f.Test(k) {
			t.Fatalf("false negative for key %d", i)
		}
	}
	if f.ApproxEntries() != 5000 {
		t.Errorf("ApproxEntries = %d, want 5000", f.ApproxEntries())
	}
}

func TestFilterFalsePositiveRate(t *testing.T) {
	f := NewWithEstimates(10000, 0.01)
	r := rand.New(rand.NewSource(2))
	inserted := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		k := r.Uint64()
		inserted[k] = true
		f.Add(k)
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		k := r.Uint64()
		if inserted[k] {
			continue
		}
		if f.Test(k) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.05 {
		t.Errorf("observed false positive rate %v, expected around 0.01", rate)
	}
	if est := f.FalsePositiveRate(); est > 0.05 {
		t.Errorf("estimated false positive rate %v too high", est)
	}
}

func TestTestAndAdd(t *testing.T) {
	f := NewWithEstimates(1000, 0.01)
	if f.TestAndAdd(42) {
		t.Error("first TestAndAdd should report absent")
	}
	if !f.TestAndAdd(42) {
		t.Error("second TestAndAdd should report present")
	}
	if !f.Test(42) {
		t.Error("Test after TestAndAdd should report present")
	}
}

func TestNewClampsParameters(t *testing.T) {
	f := New(1, 0)
	if f.nbits < 64 || f.hashes < 1 {
		t.Errorf("parameters not clamped: %d bits, %d hashes", f.nbits, f.hashes)
	}
	f = New(1024, 100)
	if f.hashes > 16 {
		t.Errorf("hash count not clamped: %d", f.hashes)
	}
	f = NewWithEstimates(0, -1)
	f.Add(7)
	if !f.Test(7) {
		t.Error("degenerate filter should still work")
	}
}

func TestDistributed(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 4})
	d := NewDistributed(m, 1000, 0.01)
	m.Run(func(r *pgas.Rank) {
		f := d.Local(r)
		key := uint64(r.ID()*1000 + 7)
		if f.TestAndAdd(key) {
			t.Errorf("rank %d: fresh key reported present", r.ID())
		}
		if !f.Test(key) {
			t.Errorf("rank %d: key lost", r.ID())
		}
	})
	// Filters are independent per rank.
	if d.LocalByID(0).Test(1007) && d.LocalByID(0).Test(2007) && d.LocalByID(0).Test(3007) {
		t.Error("rank 0 filter appears to contain other ranks' keys (suspicious)")
	}
}

func BenchmarkFilterAdd(b *testing.B) {
	f := NewWithEstimates(uint64(b.N)+1, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Add(uint64(i) * 0x9e3779b97f4a7c15)
	}
}

func BenchmarkFilterTest(b *testing.B) {
	f := NewWithEstimates(100000, 0.01)
	for i := 0; i < 100000; i++ {
		f.Add(uint64(i) * 0x9e3779b97f4a7c15)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Test(uint64(i) * 0x9e3779b97f4a7c15)
	}
}
