// Package bloom implements the Bloom filters used by k-mer analysis to avoid
// the memory-footprint explosion caused by erroneous singleton k-mers: a
// k-mer is inserted into the counting hash table only after it has been seen
// at least twice, which the filter detects probabilistically.
//
// A Distributed filter partitions the bit array by owner rank so that the
// filter for a rank's k-mers lives with that rank (the same partitioning the
// distributed histogram uses), keeping all filter probes local after the
// k-mers have been routed to their owners.
package bloom

import (
	"math"

	"mhmgo/internal/pgas"
)

// Filter is a standard Bloom filter with double hashing.
type Filter struct {
	bits    []uint64
	nbits   uint64
	hashes  int
	entries uint64
}

// NewWithEstimates creates a filter sized for n expected entries at the
// given target false-positive rate.
func NewWithEstimates(n uint64, fpRate float64) *Filter {
	if n == 0 {
		n = 1
	}
	if fpRate <= 0 || fpRate >= 1 {
		fpRate = 0.01
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(fpRate) / (math.Ln2 * math.Ln2)))
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	return New(m, k)
}

// New creates a filter with nbits bits and the given number of hash
// functions.
func New(nbits uint64, hashes int) *Filter {
	if nbits < 64 {
		nbits = 64
	}
	if hashes < 1 {
		hashes = 1
	}
	if hashes > 16 {
		hashes = 16
	}
	return &Filter{
		bits:   make([]uint64, (nbits+63)/64),
		nbits:  nbits,
		hashes: hashes,
	}
}

// indices derives the probe positions from a single 64-bit hash using the
// Kirsch–Mitzenmacher double-hashing construction.
func (f *Filter) indices(h uint64) []uint64 {
	h1 := h
	h2 := h*0x9e3779b97f4a7c15 + 0x7f4a7c159e3779b9
	if h2 == 0 {
		h2 = 0x9e3779b97f4a7c15
	}
	idx := make([]uint64, f.hashes)
	for i := 0; i < f.hashes; i++ {
		idx[i] = (h1 + uint64(i)*h2) % f.nbits
	}
	return idx
}

// Add inserts a pre-hashed key.
func (f *Filter) Add(h uint64) {
	for _, i := range f.indices(h) {
		f.bits[i/64] |= 1 << (i % 64)
	}
	f.entries++
}

// Test reports whether a pre-hashed key might be present. False positives
// are possible; false negatives are not.
func (f *Filter) Test(h uint64) bool {
	for _, i := range f.indices(h) {
		if f.bits[i/64]&(1<<(i%64)) == 0 {
			return false
		}
	}
	return true
}

// TestAndAdd reports whether the key was (probably) present and inserts it.
func (f *Filter) TestAndAdd(h uint64) bool {
	present := true
	for _, i := range f.indices(h) {
		word, bit := i/64, uint64(1)<<(i%64)
		if f.bits[word]&bit == 0 {
			present = false
			f.bits[word] |= bit
		}
	}
	f.entries++
	return present
}

// ApproxEntries returns the number of Add/TestAndAdd calls made so far.
func (f *Filter) ApproxEntries() uint64 { return f.entries }

// FalsePositiveRate estimates the current false-positive probability from
// the fill ratio of the bit array.
func (f *Filter) FalsePositiveRate() float64 {
	ones := 0
	for _, w := range f.bits {
		ones += popcount(w)
	}
	fill := float64(ones) / float64(f.nbits)
	return math.Pow(fill, float64(f.hashes))
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Distributed is a per-rank-partitioned Bloom filter: rank i owns an
// independent filter for the keys that hash to it. Probes must be performed
// by the owning rank (after routing), so they are purely local.
type Distributed struct {
	filters []*Filter
}

// NewDistributed creates one filter per rank, each sized for expectedPerRank
// entries.
func NewDistributed(m *pgas.Machine, expectedPerRank uint64, fpRate float64) *Distributed {
	d := &Distributed{filters: make([]*Filter, m.Ranks())}
	for i := range d.filters {
		d.filters[i] = NewWithEstimates(expectedPerRank, fpRate)
	}
	return d
}

// Local returns the filter owned by the calling rank.
func (d *Distributed) Local(r *pgas.Rank) *Filter { return d.filters[r.ID()] }

// LocalByID returns the filter owned by the given rank (for tests and
// post-run inspection).
func (d *Distributed) LocalByID(rank int) *Filter { return d.filters[rank] }
