package baseline

import (
	"testing"

	"mhmgo/internal/eval"
	"mhmgo/internal/hmm"
	"mhmgo/internal/sim"
)

func TestAllAndByName(t *testing.T) {
	all := All()
	if len(all) != 5 || all[0].Name != "MetaHipMer" {
		t.Fatalf("All() = %v", names(all))
	}
	for _, a := range all {
		got, err := ByName(a.Name)
		if err != nil || got.Name != a.Name {
			t.Errorf("ByName(%s) failed: %v", a.Name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown assembler should error")
	}
}

func names(as []Assembler) []string {
	var out []string
	for _, a := range as {
		out = append(out, a.Name)
	}
	return out
}

func TestProxiesProduceDifferentConfigurations(t *testing.T) {
	comm := sim.GenerateCommunity(sim.CommunityConfig{
		NumGenomes: 4, MeanGenomeLen: 3000, AbundanceSigma: 1.2, RRNALen: 200, Seed: 61, StrainFraction: 0,
	})
	reads := sim.SimulateReads(comm, sim.ReadConfig{
		ReadLen: 80, InsertSize: 220, InsertStd: 15, ErrorRate: 0.01, Coverage: 12, Seed: 62,
	})
	profile := hmm.BuildProfile([][]byte{comm.RRNAMarker}, 0.9)
	opts := RunOptions{Ranks: 4, RanksPerNode: 2, InsertSize: 220, RRNAProfile: profile}

	mhm, err := Run(MetaHipMer(), reads, opts)
	if err != nil {
		t.Fatal(err)
	}
	hip, err := Run(HipMer(), reads, opts)
	if err != nil {
		t.Fatal(err)
	}
	ray, err := Run(RayMeta(), reads, opts)
	if err != nil {
		t.Fatal(err)
	}
	mega, err := Run(Megahit(), reads, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Megahit proxy never scaffolds.
	if len(mega.Scaffolds) != 0 {
		t.Error("Megahit proxy should not produce scaffolds")
	}
	// Ray Meta's unaggregated communication must cost more simulated time
	// than MetaHipMer on the same machine.
	if ray.SimSeconds <= mhm.SimSeconds {
		t.Errorf("Ray Meta proxy (%.4fs) should be slower than MetaHipMer (%.4fs)",
			ray.SimSeconds, mhm.SimSeconds)
	}

	// Quality ordering on an uneven community: MetaHipMer should recover at
	// least as much of the community as the single-genome HipMer proxy.
	eopts := eval.DefaultOptions()
	mhmRep := eval.Evaluate("mhm", mhm.FinalSequences(), comm, eopts)
	hipRep := eval.Evaluate("hip", hip.FinalSequences(), comm, eopts)
	if mhmRep.GenomeFraction+0.03 < hipRep.GenomeFraction {
		t.Errorf("MetaHipMer genome fraction (%.3f) should not trail HipMer (%.3f)",
			mhmRep.GenomeFraction, hipRep.GenomeFraction)
	}
}
