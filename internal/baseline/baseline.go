// Package baseline implements the comparison assemblers of the paper's
// evaluation (Table I and the Ray Meta scaling comparison) as configurations
// of the same underlying substrates. Each proxy reproduces the algorithmic
// property that drives its position in the paper's results:
//
//   - HipMer: single-genome assembler — single k, a global (depth-independent)
//     extension threshold, and none of the metagenome-specific scaffolding
//     rules. It loses genome fraction and rRNA on uneven communities.
//   - Ray Meta: distributed but without aggregated communication, without the
//     iterative k strategy and without MetaHipMer's scaffolding; it scales
//     poorly and produces shorter contigs.
//   - Megahit: iterative k contig generator without scaffolding; fast,
//     single node.
//   - MetaSPAdes: iterative k with aggressive graph simplification and
//     scaffolding, restricted to one (shared-memory) node; high contiguity
//     with somewhat more misassemblies.
package baseline

import (
	"fmt"

	"mhmgo/internal/core"
	"mhmgo/internal/hmm"
	"mhmgo/internal/seq"
)

// Assembler is a named configuration of the assembly pipeline.
type Assembler struct {
	// Name as reported in the comparison tables.
	Name string
	// SingleNode forces the run onto one virtual node regardless of the
	// requested machine size (shared-memory tools).
	SingleNode bool
	// Configure derives the assembler's pipeline configuration from a base
	// configuration describing the machine and library geometry.
	Configure func(base core.Config) core.Config
}

// MetaHipMer returns the paper's assembler (the full pipeline).
func MetaHipMer() Assembler {
	return Assembler{
		Name: "MetaHipMer",
		Configure: func(base core.Config) core.Config {
			return base
		},
	}
}

// HipMer returns the single-genome HipMer proxy: single k, global extension
// threshold, no rRNA rule, no bubble merging tuned for metagenomes.
func HipMer() Assembler {
	return Assembler{
		Name: "HipMer",
		Configure: func(base core.Config) core.Config {
			cfg := base
			cfg.KMax = cfg.KMin // no iterative k
			cfg.GlobalTHQ = 1   // fixed threshold regardless of depth
			cfg.RRNAProfile = nil
			cfg.LocalAssembly = false
			return cfg
		},
	}
}

// RayMeta returns the Ray Meta proxy: distributed, single k, unaggregated
// fine-grained communication, no software cache, no read localization, no
// scaffolding heuristics beyond plain span links.
func RayMeta() Assembler {
	return Assembler{
		Name: "RayMeta",
		Configure: func(base core.Config) core.Config {
			cfg := base
			cfg.KMax = cfg.KMin
			cfg.Aggregate = false
			cfg.SoftwareCache = false
			cfg.ReadLocalization = false
			cfg.WorkStealing = false
			cfg.UseComponents = false
			cfg.LocalAssembly = false
			cfg.Compaction = true
			cfg.RRNAProfile = base.RRNAProfile // Ray Meta does report rRNAs reasonably well
			return cfg
		},
	}
}

// Megahit returns the Megahit proxy: iterative k, contigs only (no
// scaffolding), single node.
func Megahit() Assembler {
	return Assembler{
		Name:       "Megahit",
		SingleNode: true,
		Configure: func(base core.Config) core.Config {
			cfg := base
			cfg.Scaffolding = false
			cfg.LocalAssembly = false
			cfg.RRNAProfile = nil
			return cfg
		},
	}
}

// MetaSPAdes returns the MetaSPAdes proxy: iterative k with aggressive
// simplification and scaffolding on a single node.
func MetaSPAdes() Assembler {
	return Assembler{
		Name:       "MetaSPAdes",
		SingleNode: true,
		Configure: func(base core.Config) core.Config {
			cfg := base
			cfg.RRNAProfile = nil
			// Aggressive graph simplification: tolerate more contradicting
			// extensions, which lengthens contigs at some misassembly cost.
			cfg.ErrorRate = base.ErrorRate * 2
			cfg.TBase = base.TBase + 1
			return cfg
		},
	}
}

// All returns the assemblers compared in Table I, MetaHipMer first.
func All() []Assembler {
	return []Assembler{MetaHipMer(), MetaSPAdes(), Megahit(), RayMeta(), HipMer()}
}

// ByName returns the assembler with the given name.
func ByName(name string) (Assembler, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	return Assembler{}, fmt.Errorf("baseline: unknown assembler %q", name)
}

// RunOptions describes a comparison run.
type RunOptions struct {
	Ranks        int
	RanksPerNode int
	KMin, KMax   int
	KStep        int
	InsertSize   int
	RRNAProfile  *hmm.Profile
}

// Run assembles the reads with the given assembler proxy.
func Run(a Assembler, reads []seq.Read, opts RunOptions) (*core.Result, error) {
	base := core.DefaultConfig(opts.Ranks)
	if opts.RanksPerNode > 0 {
		base.RanksPerNode = opts.RanksPerNode
	}
	if opts.KMin > 0 {
		base.KMin = opts.KMin
	}
	if opts.KMax > 0 {
		base.KMax = opts.KMax
	}
	if opts.KStep > 0 {
		base.KStep = opts.KStep
	}
	if opts.InsertSize > 0 {
		base.InsertSize = opts.InsertSize
		base.InsertStd = opts.InsertSize / 10
	}
	base.RRNAProfile = opts.RRNAProfile
	cfg := a.Configure(base)
	if a.SingleNode {
		// Shared-memory tools run within one node: same core count, no
		// network. Model this as all ranks on a single virtual node.
		cfg.RanksPerNode = cfg.Ranks
	}
	return core.Assemble(reads, cfg)
}
