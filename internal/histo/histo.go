// Package histo provides the distributed histogram machinery used by k-mer
// analysis: a Misra–Gries streaming "heavy hitter" counter (the paper's
// specialized treatment of k-mers that occur millions of times in highly
// abundant organisms) and a generic distributed counting histogram built on
// owner-partitioned local hash tables (hash-table use case 4).
package histo

import (
	"sort"

	"mhmgo/internal/pgas"
)

// HeavyHitters is a Misra–Gries summary: it tracks at most capacity
// candidate keys and guarantees that any key whose true frequency exceeds
// total/capacity is present in the summary.
type HeavyHitters[K comparable] struct {
	capacity int
	counts   map[K]int64
	total    int64
}

// NewHeavyHitters creates a summary with the given candidate capacity.
func NewHeavyHitters[K comparable](capacity int) *HeavyHitters[K] {
	if capacity < 1 {
		capacity = 1
	}
	return &HeavyHitters[K]{capacity: capacity, counts: make(map[K]int64, capacity+1)}
}

// Add records n occurrences of key.
func (h *HeavyHitters[K]) Add(key K, n int64) {
	if n <= 0 {
		return
	}
	h.total += n
	if c, ok := h.counts[key]; ok {
		h.counts[key] = c + n
		return
	}
	if len(h.counts) < h.capacity {
		h.counts[key] = n
		return
	}
	// Decrement every counter by the smaller of n and the minimum counter,
	// the standard Misra–Gries eviction step generalized to weighted updates.
	dec := n
	for _, c := range h.counts {
		if c < dec {
			dec = c
		}
	}
	for k, c := range h.counts {
		if c <= dec {
			delete(h.counts, k)
		} else {
			h.counts[k] = c - dec
		}
	}
	if rem := n - dec; rem > 0 && len(h.counts) < h.capacity {
		h.counts[key] = rem
	}
}

// Total returns the total weight added so far.
func (h *HeavyHitters[K]) Total() int64 { return h.total }

// Candidate reports whether key is currently a heavy-hitter candidate and
// its (under-)estimated count.
func (h *HeavyHitters[K]) Candidate(key K) (int64, bool) {
	c, ok := h.counts[key]
	return c, ok
}

// Item is a heavy-hitter candidate and its estimated count.
type Item[K comparable] struct {
	Key   K
	Count int64
}

// Items returns the candidates sorted by descending estimated count.
func (h *HeavyHitters[K]) Items() []Item[K] {
	items := make([]Item[K], 0, len(h.counts))
	for k, c := range h.counts {
		items = append(items, Item[K]{Key: k, Count: c})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].Count > items[j].Count })
	return items
}

// TopK returns at most k candidates with the largest estimated counts.
func (h *HeavyHitters[K]) TopK(k int) []Item[K] {
	items := h.Items()
	if len(items) > k {
		items = items[:k]
	}
	return items
}

// Merge folds another summary into this one (used to combine per-rank
// summaries after a gather).
func (h *HeavyHitters[K]) Merge(other *HeavyHitters[K]) {
	for k, c := range other.counts {
		h.Add(k, c)
	}
	// Adding via Add double-counts the total (Add already accumulated the
	// candidates' weights), so recompute the total explicitly.
	h.total = h.total - otherCandidateWeight(other) + other.total
}

func otherCandidateWeight[K comparable](o *HeavyHitters[K]) int64 {
	var w int64
	for _, c := range o.counts {
		w += c
	}
	return w
}

// Distributed is a distributed counting histogram: every rank owns a local
// map of counts for the keys that hash to it. Counts are contributed with an
// all-to-all exchange of (key, weight) pairs, mirroring the k-mer analysis
// communication pattern.
type Distributed[K comparable] struct {
	machine *pgas.Machine
	hash    func(K) uint64
	local   []map[K]int64
}

// NewDistributed creates a distributed histogram on the machine.
func NewDistributed[K comparable](m *pgas.Machine, hash func(K) uint64) *Distributed[K] {
	d := &Distributed[K]{machine: m, hash: hash, local: make([]map[K]int64, m.Ranks())}
	for i := range d.local {
		d.local[i] = make(map[K]int64)
	}
	return d
}

// weighted is a (key, weight) pair exchanged between ranks.
type weighted[K comparable] struct {
	Key K
	N   int64
}

// Owner returns the rank owning a key.
func (d *Distributed[K]) Owner(key K) int {
	return int(d.hash(key) % uint64(d.machine.Ranks()))
}

// AddAll routes each rank's local (key, weight) observations to the keys'
// owner ranks with one aggregated all-to-all exchange and folds them into the
// owners' local count tables. Collective: every rank must call it.
func (d *Distributed[K]) AddAll(r *pgas.Rank, keys []K, weights []int64) {
	obs := make([]weighted[K], len(keys))
	for i, k := range keys {
		var w int64 = 1
		if weights != nil {
			w = weights[i]
		}
		obs[i] = weighted[K]{Key: k, N: w}
	}
	r.Compute(float64(len(keys)))
	merged := pgas.ExchangeFunc(r, obs,
		func(_ int, kv weighted[K]) int { return d.Owner(kv.Key) },
		func(weighted[K]) int { return 24 })
	mine := d.local[r.ID()]
	for _, kv := range merged {
		mine[kv.Key] += kv.N
	}
	n := len(merged)
	r.Compute(float64(n))
	// The exchanged pairs are folded into the count table; return the
	// transient payload's resident charge to the meter.
	r.ReleaseResident(n * 24)
}

// LocalCounts returns the count table owned by the calling rank.
func (d *Distributed[K]) LocalCounts(r *pgas.Rank) map[K]int64 { return d.local[r.ID()] }

// Count returns the global count of a key. It must be called after the
// contributing phase has completed (e.g. after a barrier).
func (d *Distributed[K]) Count(key K) int64 {
	return d.local[d.Owner(key)][key]
}

// Totals returns the merged counts across all ranks (for tests and small
// problems; large tables should be consumed shard by shard).
func (d *Distributed[K]) Totals() map[K]int64 {
	out := make(map[K]int64)
	for _, m := range d.local {
		for k, v := range m {
			out[k] += v
		}
	}
	return out
}

// NumDistinct returns the number of distinct keys across all ranks.
func (d *Distributed[K]) NumDistinct() int {
	n := 0
	for _, m := range d.local {
		n += len(m)
	}
	return n
}
