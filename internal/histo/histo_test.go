package histo

import (
	"math/rand"
	"testing"

	"mhmgo/internal/pgas"
)

func strHash(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func TestHeavyHittersFindsFrequentKeys(t *testing.T) {
	hh := NewHeavyHitters[string](10)
	r := rand.New(rand.NewSource(5))
	// One key takes ~30% of a large stream, everything else is noise.
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Float64() < 0.3 {
			hh.Add("heavy", 1)
		} else {
			hh.Add(randKey(r), 1)
		}
	}
	c, ok := hh.Candidate("heavy")
	if !ok {
		t.Fatal("heavy key not retained as candidate")
	}
	if c < n/10 {
		t.Errorf("heavy key estimate %d is too low", c)
	}
	if hh.Total() != n {
		t.Errorf("total = %d, want %d", hh.Total(), n)
	}
	top := hh.TopK(1)
	if len(top) != 1 || top[0].Key != "heavy" {
		t.Errorf("TopK(1) = %+v, want the heavy key", top)
	}
}

func randKey(r *rand.Rand) string {
	b := make([]byte, 8)
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}

func TestHeavyHittersGuarantee(t *testing.T) {
	// Misra-Gries guarantee: any key with frequency > total/capacity must be
	// among the candidates.
	hh := NewHeavyHitters[int](20)
	const total = 20000
	// Keys 0..4 each take 10% of the stream; the rest is spread thin.
	for i := 0; i < total; i++ {
		switch {
		case i%10 < 5:
			hh.Add(i%10, 1)
		default:
			hh.Add(100+i, 1)
		}
	}
	for k := 0; k < 5; k++ {
		if _, ok := hh.Candidate(k); !ok {
			t.Errorf("frequent key %d missing from candidates", k)
		}
	}
}

func TestHeavyHittersWeightedAndEdgeCases(t *testing.T) {
	hh := NewHeavyHitters[string](2)
	hh.Add("a", 100)
	hh.Add("b", 10)
	hh.Add("c", 1) // forces an eviction pass
	if _, ok := hh.Candidate("a"); !ok {
		t.Error("dominant key evicted")
	}
	hh.Add("zero", 0)
	hh.Add("neg", -5)
	if hh.Total() != 111 {
		t.Errorf("total = %d, want 111 (non-positive weights ignored)", hh.Total())
	}
	empty := NewHeavyHitters[string](0)
	empty.Add("x", 1)
	if empty.Total() != 1 {
		t.Error("capacity clamp failed")
	}
}

func TestHeavyHittersMerge(t *testing.T) {
	a := NewHeavyHitters[string](10)
	b := NewHeavyHitters[string](10)
	for i := 0; i < 1000; i++ {
		a.Add("x", 1)
		b.Add("y", 1)
	}
	b.Add("x", 500)
	a.Merge(b)
	if a.Total() != 2500 {
		t.Errorf("merged total = %d, want 2500", a.Total())
	}
	cx, _ := a.Candidate("x")
	cy, _ := a.Candidate("y")
	if cx < 1000 || cy < 500 {
		t.Errorf("merged candidates wrong: x=%d y=%d", cx, cy)
	}
}

func TestDistributedHistogramCounts(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 4})
	d := NewDistributed[string](m, strHash)
	m.Run(func(r *pgas.Rank) {
		// Every rank observes the same three keys with rank-dependent weights.
		keys := []string{"aaa", "bbb", "ccc", "aaa"}
		weights := []int64{1, 2, 3, int64(r.ID())}
		d.AddAll(r, keys, weights)
	})
	totals := d.Totals()
	if totals["aaa"] != 4*1+0+1+2+3 {
		t.Errorf("aaa = %d, want 10", totals["aaa"])
	}
	if totals["bbb"] != 8 || totals["ccc"] != 12 {
		t.Errorf("bbb=%d ccc=%d, want 8/12", totals["bbb"], totals["ccc"])
	}
	if d.NumDistinct() != 3 {
		t.Errorf("NumDistinct = %d, want 3", d.NumDistinct())
	}
	if d.Count("bbb") != 8 {
		t.Errorf("Count(bbb) = %d", d.Count("bbb"))
	}
	// Each key must live on exactly one rank.
	found := 0
	for rank := 0; rank < 4; rank++ {
		m2 := d.local[rank]
		if _, ok := m2["aaa"]; ok {
			found++
		}
	}
	if found != 1 {
		t.Errorf("key aaa present on %d ranks, want 1", found)
	}
}

func TestDistributedHistogramUnitWeights(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 3})
	d := NewDistributed[int](m, func(k int) uint64 { return uint64(k) * 2654435761 })
	m.Run(func(r *pgas.Rank) {
		keys := make([]int, 300)
		for i := range keys {
			keys[i] = i % 30
		}
		d.AddAll(r, keys, nil)
	})
	totals := d.Totals()
	for k := 0; k < 30; k++ {
		if totals[k] != 30 {
			t.Errorf("key %d count = %d, want 30", k, totals[k])
		}
	}
}

func TestDistributedHistogramLocalCounts(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 2})
	d := NewDistributed[string](m, strHash)
	m.Run(func(r *pgas.Rank) {
		d.AddAll(r, []string{"k1", "k2"}, nil)
		r.Barrier()
		local := d.LocalCounts(r)
		for k := range local {
			if d.Owner(k) != r.ID() {
				t.Errorf("rank %d holds key %q owned by rank %d", r.ID(), k, d.Owner(k))
			}
		}
	})
}
