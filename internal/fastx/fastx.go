// Package fastx reads and writes the FASTA and FASTQ sequence formats used
// by the assembler's command-line tools and examples. Only the stdlib is
// used; files are plain text (no compression).
package fastx

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"mhmgo/internal/seq"
)

// Record is a single FASTA or FASTQ record. Qual is nil for FASTA records.
type Record struct {
	ID   string
	Desc string
	Seq  []byte
	Qual []byte
}

// ToRead converts the record into a seq.Read.
func (r Record) ToRead() seq.Read {
	return seq.Read{ID: r.ID, Seq: r.Seq, Qual: r.Qual}
}

// Format identifies a sequence file format.
type Format int

// Supported formats.
const (
	FormatUnknown Format = iota
	FormatFASTA
	FormatFASTQ
)

// DetectFormat sniffs the format from the first non-empty line.
func DetectFormat(firstLine string) Format {
	trimmed := strings.TrimSpace(firstLine)
	switch {
	case strings.HasPrefix(trimmed, ">"):
		return FormatFASTA
	case strings.HasPrefix(trimmed, "@"):
		return FormatFASTQ
	default:
		return FormatUnknown
	}
}

// Reader parses FASTA or FASTQ records from an io.Reader, detecting the
// format from the first record.
type Reader struct {
	br     *bufio.Reader
	format Format
	line   int
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Format returns the detected format, or FormatUnknown before the first
// record has been read.
func (r *Reader) Format() Format { return r.format }

func (r *Reader) readLine() (string, error) {
	for {
		line, err := r.br.ReadString('\n')
		if len(line) > 0 {
			r.line++
			line = strings.TrimRight(line, "\r\n")
			if line != "" {
				return line, nil
			}
			if err != nil {
				return "", err
			}
			continue
		}
		if err != nil {
			return "", err
		}
	}
}

// Next returns the next record, or io.EOF when the input is exhausted.
func (r *Reader) Next() (Record, error) {
	header, err := r.readLine()
	if err != nil {
		return Record{}, err
	}
	if r.format == FormatUnknown {
		r.format = DetectFormat(header)
		if r.format == FormatUnknown {
			return Record{}, fmt.Errorf("fastx: line %d: unrecognized header %q", r.line, header)
		}
	}
	switch r.format {
	case FormatFASTA:
		return r.nextFASTA(header)
	case FormatFASTQ:
		return r.nextFASTQ(header)
	default:
		return Record{}, fmt.Errorf("fastx: unknown format")
	}
}

func splitHeader(header string) (id, desc string) {
	fields := strings.SplitN(header, " ", 2)
	id = fields[0]
	if len(fields) > 1 {
		desc = fields[1]
	}
	return id, desc
}

func (r *Reader) nextFASTA(header string) (Record, error) {
	if !strings.HasPrefix(header, ">") {
		return Record{}, fmt.Errorf("fastx: line %d: expected FASTA header, got %q", r.line, header)
	}
	id, desc := splitHeader(strings.TrimPrefix(header, ">"))
	rec := Record{ID: id, Desc: desc}
	for {
		peek, err := r.br.Peek(1)
		if err != nil {
			if err == io.EOF {
				break
			}
			return Record{}, err
		}
		if peek[0] == '\n' || peek[0] == '\r' {
			// Skip blank lines between sequence lines or before the next header.
			if _, err := r.br.ReadByte(); err != nil {
				return Record{}, err
			}
			continue
		}
		if peek[0] == '>' {
			break
		}
		line, err := r.readLine()
		if err != nil {
			if err == io.EOF {
				break
			}
			return Record{}, err
		}
		rec.Seq = append(rec.Seq, []byte(line)...)
	}
	if len(rec.Seq) == 0 {
		return Record{}, fmt.Errorf("fastx: record %q has no sequence", id)
	}
	return rec, nil
}

func (r *Reader) nextFASTQ(header string) (Record, error) {
	if !strings.HasPrefix(header, "@") {
		return Record{}, fmt.Errorf("fastx: line %d: expected FASTQ header, got %q", r.line, header)
	}
	id, desc := splitHeader(strings.TrimPrefix(header, "@"))
	seqLine, err := r.readLine()
	if err != nil {
		return Record{}, fmt.Errorf("fastx: truncated FASTQ record %q: %v", id, err)
	}
	plus, err := r.readLine()
	if err != nil || !strings.HasPrefix(plus, "+") {
		return Record{}, fmt.Errorf("fastx: record %q: missing '+' separator", id)
	}
	qualLine, err := r.readLine()
	if err != nil {
		return Record{}, fmt.Errorf("fastx: truncated FASTQ record %q: %v", id, err)
	}
	if len(qualLine) != len(seqLine) {
		return Record{}, fmt.Errorf("fastx: record %q: quality length %d != sequence length %d",
			id, len(qualLine), len(seqLine))
	}
	return Record{ID: id, Desc: desc, Seq: []byte(seqLine), Qual: []byte(qualLine)}, nil
}

// ReadAll reads every record from r.
func ReadAll(r io.Reader) ([]Record, error) {
	fr := NewReader(r)
	var out []Record
	for {
		rec, err := fr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// ReadFile reads every record from the named file.
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAll(f)
}

// ReadReadsFile reads a FASTA/FASTQ file into seq.Read values.
func ReadReadsFile(path string) ([]seq.Read, error) {
	recs, err := ReadFile(path)
	if err != nil {
		return nil, err
	}
	reads := make([]seq.Read, len(recs))
	for i, rec := range recs {
		reads[i] = rec.ToRead()
	}
	return reads, nil
}

// Writer writes FASTA or FASTQ records.
type Writer struct {
	w         *bufio.Writer
	format    Format
	lineWidth int
}

// NewWriter returns a writer in the given format. lineWidth controls FASTA
// sequence wrapping; 0 means no wrapping.
func NewWriter(w io.Writer, format Format, lineWidth int) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), format: format, lineWidth: lineWidth}
}

// Write emits one record.
func (w *Writer) Write(rec Record) error {
	switch w.format {
	case FormatFASTA:
		header := ">" + rec.ID
		if rec.Desc != "" {
			header += " " + rec.Desc
		}
		if _, err := fmt.Fprintln(w.w, header); err != nil {
			return err
		}
		if w.lineWidth <= 0 {
			_, err := fmt.Fprintln(w.w, string(rec.Seq))
			return err
		}
		for start := 0; start < len(rec.Seq); start += w.lineWidth {
			end := start + w.lineWidth
			if end > len(rec.Seq) {
				end = len(rec.Seq)
			}
			if _, err := fmt.Fprintln(w.w, string(rec.Seq[start:end])); err != nil {
				return err
			}
		}
		return nil
	case FormatFASTQ:
		qual := rec.Qual
		if len(qual) == 0 {
			qual = make([]byte, len(rec.Seq))
			for i := range qual {
				qual[i] = 'I'
			}
		}
		header := "@" + rec.ID
		if rec.Desc != "" {
			header += " " + rec.Desc
		}
		_, err := fmt.Fprintf(w.w, "%s\n%s\n+\n%s\n", header, rec.Seq, qual)
		return err
	default:
		return fmt.Errorf("fastx: cannot write unknown format")
	}
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }

// WriteFile writes records to the named file in the given format.
func WriteFile(path string, recs []Record, format Format) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := NewWriter(f, format, 80)
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return w.Flush()
}

// WriteReadsFASTQ writes reads to a FASTQ file.
func WriteReadsFASTQ(path string, reads []seq.Read) error {
	recs := make([]Record, len(reads))
	for i, r := range reads {
		recs[i] = Record{ID: r.ID, Seq: r.Seq, Qual: r.Qual}
	}
	return WriteFile(path, recs, FormatFASTQ)
}

// WriteContigsFASTA writes named sequences to a FASTA file.
func WriteContigsFASTA(path string, names []string, seqs [][]byte) error {
	if len(names) != len(seqs) {
		return fmt.Errorf("fastx: %d names but %d sequences", len(names), len(seqs))
	}
	recs := make([]Record, len(names))
	for i := range names {
		recs[i] = Record{ID: names[i], Seq: seqs[i]}
	}
	return WriteFile(path, recs, FormatFASTA)
}
