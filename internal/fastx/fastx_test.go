package fastx

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mhmgo/internal/seq"
)

func TestDetectFormat(t *testing.T) {
	if DetectFormat(">x") != FormatFASTA {
		t.Error("'>' should detect FASTA")
	}
	if DetectFormat("@x") != FormatFASTQ {
		t.Error("'@' should detect FASTQ")
	}
	if DetectFormat("hello") != FormatUnknown {
		t.Error("junk should detect unknown")
	}
}

func TestReadFASTA(t *testing.T) {
	input := ">contig1 first contig\nACGT\nACGT\n>contig2\nTTTT\n"
	recs, err := ReadAll(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].ID != "contig1" || recs[0].Desc != "first contig" {
		t.Errorf("record 0 header = %q %q", recs[0].ID, recs[0].Desc)
	}
	if string(recs[0].Seq) != "ACGTACGT" {
		t.Errorf("record 0 seq = %q", recs[0].Seq)
	}
	if string(recs[1].Seq) != "TTTT" {
		t.Errorf("record 1 seq = %q", recs[1].Seq)
	}
}

func TestReadFASTQ(t *testing.T) {
	input := "@r1 lane1\nACGT\n+\nIIII\n@r2\nTT\n+\n!!\n"
	recs, err := ReadAll(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].ID != "r1" || string(recs[0].Seq) != "ACGT" || string(recs[0].Qual) != "IIII" {
		t.Errorf("record 0 = %+v", recs[0])
	}
	r := recs[1].ToRead()
	if r.ID != "r2" || string(r.Seq) != "TT" {
		t.Errorf("ToRead = %+v", r)
	}
}

func TestReadFASTQErrors(t *testing.T) {
	cases := []string{
		"@r1\nACGT\n+\nII\n",    // quality length mismatch
		"@r1\nACGT\nIIII\n",     // missing separator
		"junk\nACGT\n+\nIIII\n", // bad header
	}
	for _, in := range cases {
		if _, err := ReadAll(strings.NewReader(in)); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
}

func TestWriteReadRoundTripFASTA(t *testing.T) {
	recs := []Record{
		{ID: "a", Desc: "desc", Seq: []byte(strings.Repeat("ACGT", 50))},
		{ID: "b", Seq: []byte("TTTT")},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, FormatFASTA, 60)
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round trip lost records: %d vs %d", len(back), len(recs))
	}
	for i := range recs {
		if back[i].ID != recs[i].ID || string(back[i].Seq) != string(recs[i].Seq) {
			t.Errorf("record %d mismatch", i)
		}
	}
}

func TestWriteReadRoundTripFASTQ(t *testing.T) {
	recs := []Record{
		{ID: "r1", Seq: []byte("ACGTACGT"), Qual: []byte("IIIIIIII")},
		{ID: "r2", Seq: []byte("GG")}, // missing quality gets filled
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, FormatFASTQ, 0)
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("got %d records", len(back))
	}
	if string(back[1].Qual) != "II" {
		t.Errorf("missing quality not filled: %q", back[1].Qual)
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fastqPath := filepath.Join(dir, "reads.fastq")
	reads := []seq.Read{
		{ID: "r1", Seq: []byte("ACGTACGTAA"), Qual: []byte("IIIIIIIIII")},
		{ID: "r2", Seq: []byte("TTGGCCAATT"), Qual: []byte("IIIIIIIIII")},
	}
	if err := WriteReadsFASTQ(fastqPath, reads); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReadsFile(fastqPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(reads) {
		t.Fatalf("got %d reads, want %d", len(back), len(reads))
	}
	for i := range reads {
		if back[i].ID != reads[i].ID || string(back[i].Seq) != string(reads[i].Seq) {
			t.Errorf("read %d mismatch: %+v vs %+v", i, back[i], reads[i])
		}
	}

	fastaPath := filepath.Join(dir, "contigs.fasta")
	if err := WriteContigsFASTA(fastaPath, []string{"c1", "c2"}, [][]byte{[]byte("ACGT"), []byte("GGGG")}); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadFile(fastaPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[1].Seq) != "GGGG" {
		t.Errorf("FASTA round trip failed: %+v", recs)
	}

	if err := WriteContigsFASTA(fastaPath, []string{"c1"}, nil); err == nil {
		t.Error("mismatched names/seqs should fail")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.fa")); err == nil {
		t.Error("missing file should fail")
	}
	if _, err := os.Stat(fastqPath); err != nil {
		t.Error("expected fastq file to exist")
	}
}

func TestEmptyAndBlankLines(t *testing.T) {
	recs, err := ReadAll(strings.NewReader(""))
	if err != nil {
		t.Fatalf("empty input should not error, got %v", err)
	}
	if len(recs) != 0 {
		t.Errorf("empty input yielded %d records", len(recs))
	}
	input := "\n\n>only\nACGT\n\n"
	recs, err = ReadAll(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Seq) != "ACGT" {
		t.Errorf("blank-line input parsed wrong: %+v", recs)
	}
}
