package aligner

import (
	"strings"
	"testing"

	"mhmgo/internal/dbg"
	"mhmgo/internal/dist"
	"mhmgo/internal/pgas"
	"mhmgo/internal/seq"
	"mhmgo/internal/sim"
)

// testContigs builds a small contig set (IDs are reassigned on distribution).
func testContigs() []dbg.Contig {
	return []dbg.Contig{
		{ID: 0, Seq: []byte("ACGTTGCAAGCTTACGGATCCGTAAACTGGTCCATTGGCAACGGTATTCCAGGAATTCACAGG"), Depth: 20},
		{ID: 1, Seq: []byte("TTGGCCAATCGGATTACCGGTTAAGGCCTTGACCGGTATGCCAGTTGGAACCTT"), Depth: 15},
	}
}

// distributeTestContigs splits a replicated contig slice over the ranks and
// returns the distributed set plus a sequence->global-ID map (identical on
// every rank), since distribution reassigns IDs.
func distributeTestContigs(r *pgas.Rank, contigs []dbg.Contig) (*dbg.ContigSet, map[string]int) {
	lo, hi := r.BlockRange(len(contigs))
	cs := dbg.DistributeContigs(r, contigs[lo:hi], dist.Distributed)
	ids := map[string]int{}
	n := cs.GlobalLen(r)
	for id := 0; id < n; id++ {
		c := cs.GetByID(r, id)
		ids[string(c.Seq)] = id
	}
	return cs, ids
}

func TestBuildIndexCoversAllSeeds(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 3})
	contigs := testContigs()
	opts := DefaultOptions(15)
	var idx *Index
	ids := map[string]int{}
	m.Run(func(r *pgas.Rank) {
		cs, idMap := distributeTestContigs(r, contigs)
		got := BuildIndex(r, cs, opts)
		if r.ID() == 0 {
			idx = got
			for k, v := range idMap {
				ids[k] = v
			}
		}
	})
	// Every seed of every contig must be present in the index, under the
	// contig's distributed ID.
	for _, c := range contigs {
		id := ids[string(c.Seq)]
		for off, km := range seq.KmersOf(c.Seq, 15) {
			canon, _ := km.Canonical()
			hits, ok := idx.Seeds.Lookup(canon)
			if !ok {
				t.Fatalf("seed at contig %d offset %d missing", id, off)
			}
			found := false
			for _, h := range hits {
				if h.ContigID == id && h.Pos == off {
					found = true
				}
			}
			if !found {
				t.Fatalf("seed at contig %d offset %d has no hit entry", id, off)
			}
		}
	}
}

func TestAlignPerfectRead(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 2})
	contigs := testContigs()
	opts := DefaultOptions(15)
	var alignments []Alignment
	ids := map[string]int{}
	m.Run(func(r *pgas.Rank) {
		cs, idMap := distributeTestContigs(r, contigs)
		idx := BuildIndex(r, cs, opts)
		var reads []seq.Read
		if r.ID() == 0 {
			reads = []seq.Read{
				{ID: "fwd", Seq: contigs[0].Seq[5:45]},
				{ID: "rev", Seq: seq.ReverseComplement(contigs[1].Seq[10:50])},
				{ID: "junk", Seq: []byte(strings.Repeat("ACAC", 10))},
			}
		}
		got, _ := AlignReads(r, idx, reads, 0, opts)
		// The distributed alignment set replaces the old gather-to-all:
		// emit it to rank 0 for the assertions.
		s := DistributeAlignments(r, got, cs)
		all := s.Emit(r)
		if r.ID() == 0 {
			alignments = all
			for k, v := range idMap {
				ids[k] = v
			}
		}
	})
	if len(alignments) != 2 {
		t.Fatalf("got %d alignments, want 2: %+v", len(alignments), alignments)
	}
	byRead := map[string]Alignment{}
	for _, a := range alignments {
		byRead[a.ReadID] = a
	}
	fwd := byRead["fwd"]
	if fwd.ContigID != ids[string(contigs[0].Seq)] || fwd.ContigPos != 5 || fwd.Reverse {
		t.Errorf("forward alignment wrong: %+v", fwd)
	}
	if fwd.Identity() != 1.0 || fwd.AlignLen != 40 {
		t.Errorf("forward alignment score wrong: %+v", fwd)
	}
	rev := byRead["rev"]
	if rev.ContigID != ids[string(contigs[1].Seq)] || rev.ContigPos != 10 || !rev.Reverse {
		t.Errorf("reverse alignment wrong: %+v", rev)
	}
}

func TestAlignToleratesMismatches(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 1})
	contigs := testContigs()
	opts := DefaultOptions(15)
	opts.MinIdentity = 0.85
	m.Run(func(r *pgas.Rank) {
		cs, _ := distributeTestContigs(r, contigs)
		idx := BuildIndex(r, cs, opts)
		readSeq := append([]byte(nil), contigs[0].Seq[2:52]...)
		readSeq[30] = flipBase(readSeq[30])
		readSeq[40] = flipBase(readSeq[40])
		got, _ := AlignReads(r, idx, []seq.Read{{ID: "noisy", Seq: readSeq}}, 0, opts)
		if len(got) != 1 {
			t.Fatalf("noisy read did not align")
		}
		if got[0].Mismatch != 2 || got[0].ContigPos != 2 {
			t.Errorf("alignment = %+v", got[0])
		}
	})
}

func flipBase(c byte) byte {
	if c == 'A' {
		return 'C'
	}
	return 'A'
}

func TestAlignRejectsLowIdentity(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 1})
	contigs := testContigs()
	opts := DefaultOptions(15)
	opts.MinIdentity = 0.99
	m.Run(func(r *pgas.Rank) {
		cs, _ := distributeTestContigs(r, contigs)
		idx := BuildIndex(r, cs, opts)
		readSeq := append([]byte(nil), contigs[0].Seq[0:40]...)
		for i := 20; i < 30; i++ {
			readSeq[i] = flipBase(readSeq[i])
		}
		got, _ := AlignReads(r, idx, []seq.Read{{ID: "bad", Seq: readSeq}}, 0, opts)
		if len(got) != 0 {
			t.Errorf("low-identity read should not align: %+v", got)
		}
	})
}

func TestSoftwareCacheReducesCommunication(t *testing.T) {
	comm := sim.GenerateCommunity(sim.CommunityConfig{NumGenomes: 2, MeanGenomeLen: 4000, Seed: 31, StrainFraction: 0})
	contigs := make([]dbg.Contig, len(comm.Genomes))
	for i, g := range comm.Genomes {
		contigs[i] = dbg.Contig{ID: i, Seq: g.Seq, Depth: 20}
	}
	reads := sim.SimulateReads(comm, sim.ReadConfig{ReadLen: 80, InsertSize: 200, ErrorRate: 0.01, Coverage: 10, Seed: 32})

	run := func(useCache bool) (float64, AlignStats) {
		m := pgas.NewMachine(pgas.Config{Ranks: 4, RanksPerNode: 1})
		opts := DefaultOptions(21)
		opts.UseCache = useCache
		var stats AlignStats
		res := m.Run(func(r *pgas.Rank) {
			cs, _ := distributeTestContigs(r, contigs)
			idx := BuildIndex(r, cs, opts)
			lo, hi := r.BlockRange(len(reads))
			_, s := AlignReads(r, idx, reads[lo:hi], lo, opts)
			if r.ID() == 0 {
				stats = s
			}
		})
		return res.SimSeconds, stats
	}
	cachedTime, cachedStats := run(true)
	uncachedTime, _ := run(false)
	if cachedStats.CacheHitRate <= 0.1 {
		t.Errorf("cache hit rate %v too low", cachedStats.CacheHitRate)
	}
	if cachedTime >= uncachedTime {
		t.Errorf("software cache should reduce simulated time: %v vs %v", cachedTime, uncachedTime)
	}
}

func TestAlignmentRateOnSimulatedReads(t *testing.T) {
	comm := sim.GenerateCommunity(sim.CommunityConfig{NumGenomes: 3, MeanGenomeLen: 5000, Seed: 41, StrainFraction: 0})
	contigs := make([]dbg.Contig, len(comm.Genomes))
	for i, g := range comm.Genomes {
		contigs[i] = dbg.Contig{ID: i, Seq: g.Seq, Depth: 20}
	}
	reads := sim.SimulateReads(comm, sim.ReadConfig{ReadLen: 100, InsertSize: 250, ErrorRate: 0.01, Coverage: 8, Seed: 42})
	m := pgas.NewMachine(pgas.Config{Ranks: 4})
	opts := DefaultOptions(21)
	var aligned, total int
	m.Run(func(r *pgas.Rank) {
		cs, _ := distributeTestContigs(r, contigs)
		idx := BuildIndex(r, cs, opts)
		lo, hi := r.BlockRange(len(reads))
		got, _ := AlignReads(r, idx, reads[lo:hi], lo, opts)
		n := pgas.AllReduce(r, len(got), pgas.ReduceSum)
		if r.ID() == 0 {
			aligned, total = n, len(reads)
		}
	})
	rate := float64(aligned) / float64(total)
	if rate < 0.9 {
		t.Errorf("only %v of reads aligned to their source genomes", rate)
	}
}

// TestDistributeAlignmentsOwnerRouted: every alignment must land on the rank
// owning its contig, sorted by read index within the shard.
func TestDistributeAlignmentsOwnerRouted(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 4})
	contigs := testContigs()
	opts := DefaultOptions(15)
	m.Run(func(r *pgas.Rank) {
		cs, _ := distributeTestContigs(r, contigs)
		idx := BuildIndex(r, cs, opts)
		var reads []seq.Read
		for i := 0; i+40 <= len(contigs[r.ID()%2].Seq); i += 8 {
			reads = append(reads, seq.Read{ID: "x", Seq: contigs[r.ID()%2].Seq[i : i+40]})
		}
		got, _ := AlignReads(r, idx, reads, r.ID()*1000, opts)
		s := DistributeAlignments(r, got, cs)
		prev := -1
		for _, a := range s.Local(r) {
			if owner := cs.RankOfID(a.ContigID); owner != r.ID() {
				t.Errorf("rank %d holds alignment for contig %d owned by %d", r.ID(), a.ContigID, owner)
			}
			if a.ReadIdx < prev {
				t.Errorf("shard not sorted by ReadIdx")
			}
			prev = a.ReadIdx
		}
		// No alignment may be lost in routing.
		localIn := pgas.AllReduce(r, len(got), pgas.ReduceSum)
		localOut := pgas.AllReduce(r, s.Len(r), pgas.ReduceSum)
		if localIn != localOut {
			t.Errorf("routing lost alignments: %d in, %d out", localIn, localOut)
		}
	})
}

func TestLocalizeReadsGroupsByContig(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 4})
	contigs := testContigs()
	opts := DefaultOptions(15)
	// Build reads all drawn from contig 0 except a few unaligned ones.
	var reads []seq.Read
	for i := 0; i+40 <= len(contigs[0].Seq); i += 4 {
		reads = append(reads, seq.Read{ID: "c0", Seq: contigs[0].Seq[i : i+40]})
	}
	for i := 0; i+40 <= len(contigs[1].Seq); i += 4 {
		reads = append(reads, seq.Read{ID: "c1", Seq: contigs[1].Seq[i : i+40]})
	}
	reads = append(reads, seq.Read{ID: "junk", Seq: []byte(strings.Repeat("ACAC", 12))})

	var perRankCounts [4]map[string]int
	owner := map[string]int{}
	m.Run(func(r *pgas.Rank) {
		cs, ids := distributeTestContigs(r, contigs)
		idx := BuildIndex(r, cs, opts)
		lo, hi := r.BlockRange(len(reads))
		aligns, _ := AlignReads(r, idx, reads[lo:hi], lo, opts)
		localized := LocalizeReads(r, cs, reads[lo:hi], lo, aligns)
		counts := map[string]int{}
		for _, rd := range localized {
			counts[rd.ID]++
		}
		perRankCounts[r.ID()] = counts
		if r.ID() == 0 {
			owner["c0"] = cs.RankOfID(ids[string(contigs[0].Seq)])
			owner["c1"] = cs.RankOfID(ids[string(contigs[1].Seq)])
		}
	})
	// All reads from a contig must land on the rank owning that contig.
	totalC0, totalC1, totalJunk := 0, 0, 0
	for rank, counts := range perRankCounts {
		totalC0 += counts["c0"]
		totalC1 += counts["c1"]
		totalJunk += counts["junk"]
		if rank != owner["c0"] && counts["c0"] > 0 {
			t.Errorf("rank %d holds %d contig-0 reads after localization (owner %d)", rank, counts["c0"], owner["c0"])
		}
		if rank != owner["c1"] && counts["c1"] > 0 {
			t.Errorf("rank %d holds %d contig-1 reads after localization (owner %d)", rank, counts["c1"], owner["c1"])
		}
	}
	wantC0 := 0
	for i := 0; i+40 <= len(contigs[0].Seq); i += 4 {
		wantC0++
	}
	if totalC0 != wantC0 {
		t.Errorf("lost contig-0 reads: %d vs %d", totalC0, wantC0)
	}
	if totalJunk != 1 {
		t.Errorf("unaligned read lost or duplicated: %d", totalJunk)
	}
}
