package aligner

import (
	"strings"
	"testing"

	"mhmgo/internal/dbg"
	"mhmgo/internal/pgas"
	"mhmgo/internal/seq"
	"mhmgo/internal/sim"
)

// testContigs builds a small replicated contig set.
func testContigs() []dbg.Contig {
	return []dbg.Contig{
		{ID: 0, Seq: []byte("ACGTTGCAAGCTTACGGATCCGTAAACTGGTCCATTGGCAACGGTATTCCAGGAATTCACAGG"), Depth: 20},
		{ID: 1, Seq: []byte("TTGGCCAATCGGATTACCGGTTAAGGCCTTGACCGGTATGCCAGTTGGAACCTT"), Depth: 15},
	}
}

func buildTestIndex(t *testing.T, m *pgas.Machine, contigs []dbg.Contig, opts Options) *Index {
	t.Helper()
	var idx *Index
	m.Run(func(r *pgas.Rank) {
		got := BuildIndex(r, contigs, opts)
		if r.ID() == 0 {
			idx = got
		}
	})
	return idx
}

func TestBuildIndexCoversAllSeeds(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 3})
	contigs := testContigs()
	opts := DefaultOptions(15)
	idx := buildTestIndex(t, m, contigs, opts)
	// Every seed of every contig must be present in the index.
	for _, c := range contigs {
		for off, km := range seq.KmersOf(c.Seq, 15) {
			canon, _ := km.Canonical()
			hits, ok := idx.Seeds.Lookup(canon)
			if !ok {
				t.Fatalf("seed at contig %d offset %d missing", c.ID, off)
			}
			found := false
			for _, h := range hits {
				if h.ContigID == c.ID && h.Pos == off {
					found = true
				}
			}
			if !found {
				t.Fatalf("seed at contig %d offset %d has no hit entry", c.ID, off)
			}
		}
	}
	if _, ok := idx.ContigByID(1); !ok {
		t.Error("ContigByID(1) failed")
	}
	if _, ok := idx.ContigByID(99); ok {
		t.Error("ContigByID(99) should fail")
	}
}

func TestAlignPerfectRead(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 2})
	contigs := testContigs()
	opts := DefaultOptions(15)
	var alignments []Alignment
	m.Run(func(r *pgas.Rank) {
		idx := BuildIndex(r, contigs, opts)
		var reads []seq.Read
		if r.ID() == 0 {
			reads = []seq.Read{
				{ID: "fwd", Seq: contigs[0].Seq[5:45]},
				{ID: "rev", Seq: seq.ReverseComplement(contigs[1].Seq[10:50])},
				{ID: "junk", Seq: []byte(strings.Repeat("ACAC", 10))},
			}
		}
		got, _ := AlignReads(r, idx, reads, 0, opts)
		all := GatherAlignments(r, got)
		if r.ID() == 0 {
			alignments = all
		}
	})
	if len(alignments) != 2 {
		t.Fatalf("got %d alignments, want 2: %+v", len(alignments), alignments)
	}
	fwd := alignments[0]
	if fwd.ReadID != "fwd" || fwd.ContigID != 0 || fwd.ContigPos != 5 || fwd.Reverse {
		t.Errorf("forward alignment wrong: %+v", fwd)
	}
	if fwd.Identity() != 1.0 || fwd.AlignLen != 40 {
		t.Errorf("forward alignment score wrong: %+v", fwd)
	}
	rev := alignments[1]
	if rev.ReadID != "rev" || rev.ContigID != 1 || rev.ContigPos != 10 || !rev.Reverse {
		t.Errorf("reverse alignment wrong: %+v", rev)
	}
}

func TestAlignToleratesMismatches(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 1})
	contigs := testContigs()
	opts := DefaultOptions(15)
	opts.MinIdentity = 0.85
	m.Run(func(r *pgas.Rank) {
		idx := BuildIndex(r, contigs, opts)
		readSeq := append([]byte(nil), contigs[0].Seq[2:52]...)
		readSeq[30] = flipBase(readSeq[30])
		readSeq[40] = flipBase(readSeq[40])
		got, _ := AlignReads(r, idx, []seq.Read{{ID: "noisy", Seq: readSeq}}, 0, opts)
		if len(got) != 1 {
			t.Fatalf("noisy read did not align")
		}
		if got[0].Mismatch != 2 || got[0].ContigPos != 2 {
			t.Errorf("alignment = %+v", got[0])
		}
	})
}

func flipBase(c byte) byte {
	if c == 'A' {
		return 'C'
	}
	return 'A'
}

func TestAlignRejectsLowIdentity(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 1})
	contigs := testContigs()
	opts := DefaultOptions(15)
	opts.MinIdentity = 0.99
	m.Run(func(r *pgas.Rank) {
		idx := BuildIndex(r, contigs, opts)
		readSeq := append([]byte(nil), contigs[0].Seq[0:40]...)
		for i := 20; i < 30; i++ {
			readSeq[i] = flipBase(readSeq[i])
		}
		got, _ := AlignReads(r, idx, []seq.Read{{ID: "bad", Seq: readSeq}}, 0, opts)
		if len(got) != 0 {
			t.Errorf("low-identity read should not align: %+v", got)
		}
	})
}

func TestSoftwareCacheReducesCommunication(t *testing.T) {
	comm := sim.GenerateCommunity(sim.CommunityConfig{NumGenomes: 2, MeanGenomeLen: 4000, Seed: 31, StrainFraction: 0})
	contigs := make([]dbg.Contig, len(comm.Genomes))
	for i, g := range comm.Genomes {
		contigs[i] = dbg.Contig{ID: i, Seq: g.Seq, Depth: 20}
	}
	reads := sim.SimulateReads(comm, sim.ReadConfig{ReadLen: 80, InsertSize: 200, ErrorRate: 0.01, Coverage: 10, Seed: 32})

	run := func(useCache bool) (float64, AlignStats) {
		m := pgas.NewMachine(pgas.Config{Ranks: 4, RanksPerNode: 1})
		opts := DefaultOptions(21)
		opts.UseCache = useCache
		var stats AlignStats
		res := m.Run(func(r *pgas.Rank) {
			idx := BuildIndex(r, contigs, opts)
			lo, hi := r.BlockRange(len(reads))
			_, s := AlignReads(r, idx, reads[lo:hi], lo, opts)
			if r.ID() == 0 {
				stats = s
			}
		})
		return res.SimSeconds, stats
	}
	cachedTime, cachedStats := run(true)
	uncachedTime, _ := run(false)
	if cachedStats.CacheHitRate <= 0.1 {
		t.Errorf("cache hit rate %v too low", cachedStats.CacheHitRate)
	}
	if cachedTime >= uncachedTime {
		t.Errorf("software cache should reduce simulated time: %v vs %v", cachedTime, uncachedTime)
	}
}

func TestAlignmentRateOnSimulatedReads(t *testing.T) {
	comm := sim.GenerateCommunity(sim.CommunityConfig{NumGenomes: 3, MeanGenomeLen: 5000, Seed: 41, StrainFraction: 0})
	contigs := make([]dbg.Contig, len(comm.Genomes))
	for i, g := range comm.Genomes {
		contigs[i] = dbg.Contig{ID: i, Seq: g.Seq, Depth: 20}
	}
	reads := sim.SimulateReads(comm, sim.ReadConfig{ReadLen: 100, InsertSize: 250, ErrorRate: 0.01, Coverage: 8, Seed: 42})
	m := pgas.NewMachine(pgas.Config{Ranks: 4})
	opts := DefaultOptions(21)
	var aligned, total int
	m.Run(func(r *pgas.Rank) {
		idx := BuildIndex(r, contigs, opts)
		lo, hi := r.BlockRange(len(reads))
		got, _ := AlignReads(r, idx, reads[lo:hi], lo, opts)
		all := GatherAlignments(r, got)
		if r.ID() == 0 {
			aligned, total = len(all), len(reads)
		}
	})
	rate := float64(aligned) / float64(total)
	if rate < 0.9 {
		t.Errorf("only %v of reads aligned to their source genomes", rate)
	}
}

func TestLocalizeReadsGroupsByContig(t *testing.T) {
	m := pgas.NewMachine(pgas.Config{Ranks: 4})
	contigs := testContigs()
	opts := DefaultOptions(15)
	// Build reads all drawn from contig 0 except a few unaligned ones.
	var reads []seq.Read
	for i := 0; i+40 <= len(contigs[0].Seq); i += 4 {
		reads = append(reads, seq.Read{ID: "c0", Seq: contigs[0].Seq[i : i+40]})
	}
	for i := 0; i+40 <= len(contigs[1].Seq); i += 4 {
		reads = append(reads, seq.Read{ID: "c1", Seq: contigs[1].Seq[i : i+40]})
	}
	reads = append(reads, seq.Read{ID: "junk", Seq: []byte(strings.Repeat("ACAC", 12))})

	var perRankCounts [4]map[string]int
	m.Run(func(r *pgas.Rank) {
		idx := BuildIndex(r, contigs, opts)
		lo, hi := r.BlockRange(len(reads))
		aligns, _ := AlignReads(r, idx, reads[lo:hi], lo, opts)
		localized := LocalizeReads(r, reads[lo:hi], lo, aligns)
		counts := map[string]int{}
		for _, rd := range localized {
			counts[rd.ID]++
		}
		perRankCounts[r.ID()] = counts
	})
	// All reads from contig 0 must land on rank 0 (0 mod 4) and all reads
	// from contig 1 on rank 1.
	totalC0, totalC1, totalJunk := 0, 0, 0
	for rank, counts := range perRankCounts {
		totalC0 += counts["c0"]
		totalC1 += counts["c1"]
		totalJunk += counts["junk"]
		if rank != 0 && counts["c0"] > 0 {
			t.Errorf("rank %d holds %d contig-0 reads after localization", rank, counts["c0"])
		}
		if rank != 1 && counts["c1"] > 0 {
			t.Errorf("rank %d holds %d contig-1 reads after localization", rank, counts["c1"])
		}
	}
	wantC0 := 0
	for i := 0; i+40 <= len(contigs[0].Seq); i += 4 {
		wantC0++
	}
	if totalC0 != wantC0 {
		t.Errorf("lost contig-0 reads: %d vs %d", totalC0, wantC0)
	}
	if totalJunk != 1 {
		t.Errorf("unaligned read lost or duplicated: %d", totalJunk)
	}
}
