package aligner

import (
	"testing"

	"mhmgo/internal/pgas"
)

// TestWireSizes pins the cost-accounting wire sizes against the reflective
// lower bound, so the charged bytes can never silently drift below the data
// actually moved.
func TestWireSizes(t *testing.T) {
	a := Alignment{ReadID: "read/1", ReadIdx: 7, ContigID: 3, ContigLen: 900, ContigPos: -4, Reverse: true, Matches: 70, Mismatch: 2, AlignLen: 72}
	if got, min := a.WireSize(), pgas.WireSizeOf(a); got < min {
		t.Errorf("Alignment.WireSize() = %d < encoded size %d", got, min)
	}
}
