package aligner

import (
	"math/rand"
	"testing"

	"mhmgo/internal/dbg"
	"mhmgo/internal/seq"
)

func randBases(r *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = seq.BaseToChar(byte(r.Intn(4)))
	}
	return out
}

// extendFixtureContig builds a deterministic contig and a read sampled from
// it with substitution errors, returning plausible seed hits for both
// strands.
func extendFixture(seed int64) (readSeq []byte, contig dbg.Contig, opts Options) {
	r := rand.New(rand.NewSource(seed))
	contig = dbg.Contig{ID: 7, Seq: randBases(r, 2000)}
	start := 800
	readSeq = append([]byte(nil), contig.Seq[start:start+100]...)
	for i := 0; i < 3; i++ { // a few mismatches so the count paths are exercised
		p := r.Intn(len(readSeq))
		readSeq[p] = seq.BaseToChar(byte(r.Intn(4)))
	}
	opts = DefaultOptions(31)
	return readSeq, contig, opts
}

// TestExtendPackedMatchesASCII drives the packed and byte extension kernels
// over random reads, contigs, hits and orientations — including reads with
// ambiguous bases, which must take the byte path — and requires identical
// alignments and accept/reject decisions.
func TestExtendPackedMatchesASCII(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	s := NewScratch()
	for trial := 0; trial < 2000; trial++ {
		contig := dbg.Contig{ID: trial, Seq: randBases(r, 50+r.Intn(400))}
		readSeq := randBases(r, 20+r.Intn(180))
		if trial%7 == 0 {
			readSeq[r.Intn(len(readSeq))] = 'N' // forces the byte fallback
		}
		opts := DefaultOptions(15 + r.Intn(10))
		seedOff := r.Intn(max(1, len(readSeq)-opts.SeedLen))
		hit := SeedHit{ContigID: contig.ID, Pos: r.Intn(len(contig.Seq))}
		reverse := r.Intn(2) == 1
		s.BeginRead(readSeq)
		got, gotOK := ExtendKernel(readSeq, contig, hit, seedOff, reverse, opts, s)
		want, wantOK := ExtendKernelASCII(readSeq, contig, hit, seedOff, reverse, opts)
		if got != want || gotOK != wantOK {
			t.Fatalf("trial %d (reverse=%v, len(read)=%d): packed %+v ok=%v, ascii %+v ok=%v",
				trial, reverse, len(readSeq), got, gotOK, want, wantOK)
		}
	}
}

// BenchmarkKernelAlignExtend is the extend microbenchmark: one op scores a
// forward and a reverse-strand candidate for one read, with the per-read
// setup (BeginRead) amortized the way alignOne amortizes it across a read's
// candidates. The packed variant must be allocation-free — the per-candidate
// reverse-complement allocation was the dominant cost of reverse-strand
// extension — and at least 3x faster than the ASCII baseline
// (TestExtendPackedSpeedup asserts the ratio).
func BenchmarkKernelAlignExtend(b *testing.B) {
	readSeq, contig, opts := extendFixture(42)
	hitF := SeedHit{ContigID: contig.ID, Pos: 816}
	hitR := SeedHit{ContigID: contig.ID, Pos: 820, Reverse: true}
	b.Run("packed", func(b *testing.B) {
		s := NewScratch()
		s.BeginRead(readSeq)
		ExtendKernel(readSeq, contig, hitF, 16, false, opts, s) // warm the contig cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ExtendKernel(readSeq, contig, hitF, 16, false, opts, s)
			ExtendKernel(readSeq, contig, hitR, 16, true, opts, s)
		}
		b.StopTimer()
		allocs := testing.AllocsPerRun(100, func() {
			s.BeginRead(readSeq)
			ExtendKernel(readSeq, contig, hitF, 16, false, opts, s)
			ExtendKernel(readSeq, contig, hitR, 16, true, opts, s)
		})
		if allocs != 0 {
			b.Fatalf("packed extend (incl. BeginRead): %v allocs/op, want 0", allocs)
		}
	})
	b.Run("ascii", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ExtendKernelASCII(readSeq, contig, hitF, 16, false, opts)
			ExtendKernelASCII(readSeq, contig, hitR, 16, true, opts)
		}
	})
}

// TestExtendPackedSpeedup pins the headline requirement: the packed extend
// kernel is at least 3x faster than the ASCII baseline on a 100-base read
// (measured best-of-3 to shrug off scheduler noise; typical ratios are far
// higher because the baseline also allocates a reverse complement per
// reverse-strand candidate).
func TestExtendPackedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing assertion skipped in -short mode")
	}
	readSeq, contig, opts := extendFixture(42)
	hitF := SeedHit{ContigID: contig.ID, Pos: 816}
	hitR := SeedHit{ContigID: contig.ID, Pos: 820, Reverse: true}
	s := NewScratch()
	s.BeginRead(readSeq)
	ExtendKernel(readSeq, contig, hitF, 16, false, opts, s)
	best := 0.0
	for attempt := 0; attempt < 3; attempt++ {
		packed := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ExtendKernel(readSeq, contig, hitF, 16, false, opts, s)
				ExtendKernel(readSeq, contig, hitR, 16, true, opts, s)
			}
		})
		ascii := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ExtendKernelASCII(readSeq, contig, hitF, 16, false, opts)
				ExtendKernelASCII(readSeq, contig, hitR, 16, true, opts)
			}
		})
		ratio := float64(ascii.NsPerOp()) / float64(packed.NsPerOp())
		if ratio > best {
			best = ratio
		}
		if best >= 3 {
			t.Logf("packed extend %.1fx faster than ASCII (%d vs %d ns/op)",
				ratio, packed.NsPerOp(), ascii.NsPerOp())
			return
		}
	}
	t.Errorf("packed extend only %.2fx faster than ASCII, want >= 3x", best)
}
