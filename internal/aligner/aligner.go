// Package aligner implements a merAligner-style distributed read-to-contig
// aligner (Sections II-F and II-I of the paper): a seed-and-extend algorithm
// over a distributed seed index, with a per-rank software cache for the
// read-only lookup phase and the read-localization optimization that
// redistributes reads by the contig they align to so that subsequent
// iterations hit the cache instead of the network.
package aligner

import (
	"sort"

	"mhmgo/internal/dbg"
	"mhmgo/internal/dht"
	"mhmgo/internal/dist"
	"mhmgo/internal/pgas"
	"mhmgo/internal/seq"
)

// SeedHit records one occurrence of a seed k-mer in a contig.
type SeedHit struct {
	ContigID int
	// Pos is the offset of the seed within the contig (forward strand).
	Pos int
	// Reverse is true if the canonical form of the seed is the reverse
	// complement of the contig's forward-strand seed at Pos.
	Reverse bool
}

// Alignment is a read-to-contig alignment.
type Alignment struct {
	ReadIdx   int // index of the read in the caller's read ordering
	ReadID    string
	LibID     uint8 // library tag copied from the read (seq.Read.LibID)
	ContigID  int
	ContigLen int // length of the aligned contig, recorded at extension time
	ContigPos int // start of the read projection on the contig (may be negative)
	Reverse   bool
	Matches   int
	Mismatch  int
	AlignLen  int
}

// WireSize returns the wire bytes charged when an alignment is routed or
// gathered: seven coordinate words, the orientation flag, the library tag
// and the read identifier.
func (a Alignment) WireSize() int { return 58 + len(a.ReadID) }

// Identity returns the fraction of aligned bases that match.
func (a Alignment) Identity() float64 {
	if a.AlignLen == 0 {
		return 0
	}
	return float64(a.Matches) / float64(a.AlignLen)
}

// Options controls index construction and alignment.
type Options struct {
	// SeedLen is the seed k-mer length.
	SeedLen int
	// SeedStride is the distance between consecutive seeds taken from a read.
	SeedStride int
	// MinIdentity is the minimum identity for an alignment to be reported.
	MinIdentity float64
	// MinAlignLen is the minimum number of aligned bases.
	MinAlignLen int
	// UseCache enables the per-rank software seed cache.
	UseCache bool
	// CacheEntries bounds the software cache size.
	CacheEntries int
	// MaxHitsPerSeed skips seeds that occur in more than this many contig
	// positions (repeat seeds), 0 means no limit.
	MaxHitsPerSeed int
	// OnlyLib, when non-nil, aligns only the reads whose LibID matches:
	// the round-based scaffolder aligns one library per round against that
	// round's contig set and skips the others' reads entirely (their
	// alignments would be discarded, and alignment is independent per
	// read, so skipping changes cost but never results). Nil aligns every
	// read.
	OnlyLib *uint8
}

// DefaultOptions returns the aligner defaults for the given seed length.
func DefaultOptions(seedLen int) Options {
	return Options{
		SeedLen:        seedLen,
		SeedStride:     8,
		MinIdentity:    0.9,
		MinAlignLen:    20,
		UseCache:       true,
		CacheEntries:   1 << 17,
		MaxHitsPerSeed: 32,
	}
}

// Index is the distributed seed index over a distributed contig set. Neither
// the seeds nor the contig sequences are replicated: seed lookups go through
// the DHT and contig fetches through the set's owner-side lookup, each
// fronted by a per-rank software cache during alignment.
type Index struct {
	SeedLen int
	Seeds   *dht.Map[seq.Kmer, []SeedHit]
	Contigs *dbg.ContigSet
}

func kmerHash(k seq.Kmer) uint64 { return k.Hash() }

// BuildIndex constructs the distributed seed index. Collective: each rank
// indexes its own shard of the contig set using the aggregated update-only
// phase.
func BuildIndex(r *pgas.Rank, contigs *dbg.ContigSet, opts Options) *Index {
	if opts.SeedLen <= 0 || opts.SeedLen > seq.MaxK {
		opts.SeedLen = 31
	}
	idx := &Index{SeedLen: opts.SeedLen, Contigs: contigs}
	idx.Seeds = dht.NewMapCollective[seq.Kmer, []SeedHit](r, kmerHash, 24)
	combine := func(existing, update []SeedHit, found bool) []SeedHit {
		return append(existing, update...)
	}
	u := idx.Seeds.NewUpdater(r, combine, 512, true)
	contigs.ForEachLocal(r, func(_ int, c dbg.Contig) {
		it := seq.NewKmerIter(c.Seq, opts.SeedLen)
		for {
			km, off, ok := it.Next()
			if !ok {
				break
			}
			canon, wasRC := km.Canonical()
			u.Update(canon, []SeedHit{{ContigID: c.ID, Pos: off, Reverse: wasRC}})
		}
		r.Compute(float64(len(c.Seq)))
	})
	u.Flush()
	r.Barrier()
	// The index is never mutated after construction: switch it into the
	// lock-free read-only phase so alignment reads take no stripe locks.
	idx.Seeds.Freeze()
	return idx
}

// AlignStats summarizes an alignment pass.
type AlignStats struct {
	ReadsAligned  int
	ReadsTotal    int
	CacheHitRate  float64
	SeedLookups   uint64
	SeedCacheHits uint64
}

// AlignReads aligns the calling rank's block of reads against the index and
// returns the best alignment found for each read that aligns (at most one
// per read). Each alignment carries its read's library tag, and
// Options.OnlyLib restricts a pass to one library's reads — the round-based
// scaffolder uses this to align exactly the reads whose links it will
// consume against each round's contig set, instead of aligning everything
// and discarding the other libraries' output. Collective only in the sense
// that the seed index is shared; the work itself is independent per rank.
func AlignReads(r *pgas.Rank, idx *Index, reads []seq.Read, readOffset int, opts Options) ([]Alignment, AlignStats) {
	if opts.SeedLen <= 0 {
		opts.SeedLen = idx.SeedLen
	}
	if opts.SeedStride <= 0 {
		opts.SeedStride = 8
	}
	if opts.MinIdentity <= 0 {
		opts.MinIdentity = 0.9
	}
	if opts.MinAlignLen <= 0 {
		opts.MinAlignLen = 20
	}
	reader := idx.Seeds.NewCachedReader(r, opts.CacheEntries, opts.UseCache)
	// Remote contig sequences are fetched through the same software-caching
	// discipline as the seeds (merAligner caches contigs too); with read
	// localization most fetches are owner-local and free.
	contigCache := 0
	if opts.UseCache {
		contigCache = opts.CacheEntries
	}
	creader := idx.Contigs.NewReader(r, contigCache)
	var out []Alignment
	var stats AlignStats
	// Per-rank scratch reused across every read aligned by this call: the
	// dedup map, the sorted-hits copy, the packed read/reverse-complement
	// buffers and the packed-contig cache would otherwise be reallocated once
	// (or more) per read.
	scratch := NewScratch()
	for i, read := range reads {
		if opts.OnlyLib != nil && read.LibID != *opts.OnlyLib {
			continue
		}
		stats.ReadsTotal++
		best, found := alignOne(r, idx, reader, creader, read, opts, scratch)
		if found {
			best.ReadIdx = readOffset + i
			best.ReadID = read.ID
			best.LibID = read.LibID
			out = append(out, best)
		}
	}
	stats.ReadsAligned = len(out)
	hits, misses := reader.Stats()
	stats.SeedCacheHits = hits
	stats.SeedLookups = hits + misses
	stats.CacheHitRate = reader.HitRate()
	return out, stats
}

// Scratch holds the per-rank buffers reused across alignOne calls: the
// extension dedup map, the sorted-hits copy, the packed forms of the current
// read (forward and reverse complement, refreshed by BeginRead), the ASCII
// reverse-complement fallback buffer, and the packed-contig cache. One
// Scratch serves one AlignReads pass; it is exported (with NewScratch and
// BeginRead) so the repository-level kernel benchmarks and the
// packed-vs-ASCII equivalence tests can drive the extend kernel directly.
type Scratch struct {
	tried map[[3]int]bool // (contig, diagonal, strand) triples already extended
	hits  []SeedHit       // sorted copy of a seed's hit list

	readFwd seq.Packed // packed current read (valid when readOK)
	readRC  seq.Packed // packed reverse complement of the current read
	readOK  bool       // read is strict upper-case ACGT: packed compare == ASCII compare
	rcBytes []byte     // ASCII reverse complement, for the byte-path fallback
	rcValid bool       // rcBytes holds the current read's reverse complement

	// packs caches the packed form of every contig this pass has extended
	// against, keyed by contig ID — the packed side of the seed index. A
	// contig is packed once per pass on first use and reused by every read
	// that seeds on it (with read localization most reads hit the same few
	// owner-local contigs). ok=false records the rare non-ACGT contig so the
	// byte path is chosen without re-probing it. The last-used entry is
	// memoized outside the map: a seed's sorted hit list clusters candidates
	// by contig, so most lookups are repeats of the previous one.
	packs     map[int]packedContig
	lastID    int
	lastPack  packedContig
	lastValid bool
}

type packedContig struct {
	p  seq.Packed
	ok bool
}

// NewScratch returns an empty Scratch ready for BeginRead.
func NewScratch() *Scratch {
	return &Scratch{
		tried: make(map[[3]int]bool),
		packs: make(map[int]packedContig),
	}
}

// BeginRead points the scratch at a new read: the packed forward form and
// its reverse complement are computed once here and reused across every
// candidate extension of the read (the reverse-strand candidates previously
// allocated a fresh ASCII reverse complement each). A read that is not
// strict upper-case ACGT stays on the byte path (readOK=false), where the
// reverse complement is still computed at most once per read, into rcBytes.
func (s *Scratch) BeginRead(readSeq []byte) {
	s.rcValid = false
	s.readOK = s.readFwd.SetASCII(readSeq)
	if s.readOK {
		s.readRC.SetReverseComplementOf(s.readFwd)
	}
}

// packedFor returns the cached packed form of the contig, packing it on
// first use.
func (s *Scratch) packedFor(contig dbg.Contig) (seq.Packed, bool) {
	if s.lastValid && s.lastID == contig.ID {
		return s.lastPack.p, s.lastPack.ok
	}
	pc, cached := s.packs[contig.ID]
	if !cached {
		p, ok := seq.PackASCII(contig.Seq)
		pc = packedContig{p: p, ok: ok}
		s.packs[contig.ID] = pc
	}
	s.lastID, s.lastPack, s.lastValid = contig.ID, pc, true
	return pc.p, pc.ok
}

// alignOne seeds and extends one read, returning its best alignment.
func alignOne(r *pgas.Rank, idx *Index, reader *dht.CachedReader[seq.Kmer, []SeedHit], creader *dist.Reader[dbg.Contig], read seq.Read, opts Options, scratch *Scratch) (Alignment, bool) {
	var best Alignment
	var bestContig dbg.Contig
	found := false
	scratch.BeginRead(read.Seq)
	tried := scratch.tried
	clear(tried)
	it := seq.NewKmerIter(read.Seq, opts.SeedLen)
	nextSeedAt := 0
	for {
		km, off, ok := it.Next()
		if !ok {
			break
		}
		if off < nextSeedAt {
			continue
		}
		nextSeedAt = off + opts.SeedStride
		canon, readRC := km.Canonical()
		hits, ok := reader.Get(canon)
		if !ok {
			continue
		}
		if opts.MaxHitsPerSeed > 0 && len(hits) > opts.MaxHitsPerSeed {
			continue
		}
		// The hit list accumulates in DHT flush-arrival order, which varies
		// run to run; iterate a sorted copy so the sequence of charged
		// contig fetches (cache hits/misses and their clock costs) is
		// deterministic, not just the chosen best alignment.
		if len(hits) > 1 {
			scratch.hits = append(scratch.hits[:0], hits...)
			hits = scratch.hits
			sort.Slice(hits, func(i, j int) bool {
				if hits[i].ContigID != hits[j].ContigID {
					return hits[i].ContigID < hits[j].ContigID
				}
				if hits[i].Pos != hits[j].Pos {
					return hits[i].Pos < hits[j].Pos
				}
				return !hits[i].Reverse && hits[j].Reverse
			})
		}
		for _, h := range hits {
			contig := creader.Get(h.ContigID)
			// The read aligns to the contig's reverse strand when exactly one
			// of (read seed canonicalization, contig seed canonicalization)
			// flipped orientation.
			reverse := readRC != h.Reverse
			key := [3]int{h.ContigID, h.Pos - off, boolToInt(reverse)}
			if tried[key] {
				continue
			}
			tried[key] = true
			a, ok := extend(read.Seq, contig, h, off, reverse, opts, scratch)
			r.Compute(float64(a.AlignLen))
			if !ok {
				continue
			}
			if !found || betterAlignment(a, contig, best, bestContig) {
				best = a
				bestContig = contig
				found = true
			}
		}
	}
	return best, found
}

// betterAlignment is the total order used to select a read's best alignment.
// The seed index accumulates hits in flush-arrival order, which varies run
// to run, so the winner must be a pure function of the candidate set: most
// matches first, ties broken by the target contig's content (never by its
// ID, whose numbering depends on the rank count — a read tied between two
// rRNA copies must pick the same copy on any machine), then by coordinates.
func betterAlignment(a Alignment, ca dbg.Contig, b Alignment, cb dbg.Contig) bool {
	if a.Matches != b.Matches {
		return a.Matches > b.Matches
	}
	if a.ContigID != b.ContigID &&
		(len(ca.Seq) != len(cb.Seq) || string(ca.Seq) != string(cb.Seq)) {
		return dbg.ContigLess(ca, cb)
	}
	if a.ContigPos != b.ContigPos {
		return a.ContigPos < b.ContigPos
	}
	if a.Reverse != b.Reverse {
		return !a.Reverse
	}
	// Only reachable when the two targets are byte-identical contigs at the
	// same position and orientation: either choice is the same content, and
	// the ID comparison just makes the order total within one run.
	return a.ContigID < b.ContigID
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// extend performs ungapped extension of a seed match and scores it. When the
// read and the contig are both strict ACGT (the overwhelmingly common case)
// the comparison runs word-at-a-time over the packed forms — 32 bases per
// XOR+popcount — against the read orientation precomputed by BeginRead;
// anything else falls back to the byte loop, which is bit-identical to the
// packed path on the inputs both can handle.
func extend(readSeq []byte, contig dbg.Contig, hit SeedHit, seedOff int, reverse bool, opts Options, s *Scratch) (Alignment, bool) {
	if s != nil && s.readOK {
		if cp, ok := s.packedFor(contig); ok {
			return extendPacked(len(readSeq), cp, contig, hit, seedOff, reverse, opts, s)
		}
	}
	return extendBytes(readSeq, contig, hit, seedOff, reverse, opts, s)
}

// extendPacked scores the overlap of the oriented read projection with the
// contig using seq.MismatchCount. The ungapped alignment covers the
// contiguous read positions whose contig projection start+i lands inside the
// contig, so alignLen is an interval length and matches = alignLen −
// mismatches; the per-base loop this replaces counted the same quantities
// one byte at a time.
func extendPacked(readLen int, cp seq.Packed, contig dbg.Contig, hit SeedHit, seedOff int, reverse bool, opts Options, s *Scratch) (Alignment, bool) {
	rp := &s.readFwd
	off := seedOff
	if reverse {
		rp = &s.readRC
		off = readLen - seedOff - opts.SeedLen
	}
	// Projected start of the read on the contig's forward strand.
	start := hit.Pos - off
	lo := 0
	if start < 0 {
		lo = -start
	}
	hi := readLen
	if m := len(contig.Seq) - start; m < hi {
		hi = m
	}
	matches, mismatches, alignLen := 0, 0, 0
	if hi > lo {
		alignLen = hi - lo
		mismatches = seq.MismatchCount(*rp, cp, lo, start+lo, alignLen)
		matches = alignLen - mismatches
	}
	a := Alignment{
		ContigID:  contig.ID,
		ContigLen: len(contig.Seq),
		ContigPos: start,
		Reverse:   reverse,
		Matches:   matches,
		Mismatch:  mismatches,
		AlignLen:  alignLen,
	}
	if alignLen < opts.MinAlignLen || a.Identity() < opts.MinIdentity {
		return a, false
	}
	return a, true
}

// extendBytes is the byte-at-a-time extension used when the read or contig
// contains non-ACGT characters (whose comparison semantics the 2-bit packing
// cannot represent). The read's reverse complement is still materialized at
// most once per read, into the scratch buffer.
func extendBytes(readSeq []byte, contig dbg.Contig, hit SeedHit, seedOff int, reverse bool, opts Options, s *Scratch) (Alignment, bool) {
	oriented := readSeq
	off := seedOff
	if reverse {
		switch {
		case s == nil:
			oriented = seq.ReverseComplement(readSeq)
		case s.rcValid:
			oriented = s.rcBytes
		default:
			s.rcBytes = seq.AppendReverseComplement(s.rcBytes[:0], readSeq)
			s.rcValid = true
			oriented = s.rcBytes
		}
		off = len(readSeq) - seedOff - opts.SeedLen
	}
	// Projected start of the read on the contig's forward strand.
	start := hit.Pos - off
	matches, mismatches, alignLen := 0, 0, 0
	for i := 0; i < len(oriented); i++ {
		cpos := start + i
		if cpos < 0 || cpos >= len(contig.Seq) {
			continue
		}
		alignLen++
		if oriented[i] == contig.Seq[cpos] {
			matches++
		} else {
			mismatches++
		}
	}
	a := Alignment{
		ContigID:  contig.ID,
		ContigLen: len(contig.Seq),
		ContigPos: start,
		Reverse:   reverse,
		Matches:   matches,
		Mismatch:  mismatches,
		AlignLen:  alignLen,
	}
	if alignLen < opts.MinAlignLen || a.Identity() < opts.MinIdentity {
		return a, false
	}
	return a, true
}

// ExtendKernel exposes the seed-extension kernel for the repository-level
// per-kernel benchmarks and the equivalence tests: it scores one candidate
// (contig, hit, orientation) for the read most recently passed to
// s.BeginRead. The pipeline reaches the same code through AlignReads.
func ExtendKernel(readSeq []byte, contig dbg.Contig, hit SeedHit, seedOff int, reverse bool, opts Options, s *Scratch) (Alignment, bool) {
	return extend(readSeq, contig, hit, seedOff, reverse, opts, s)
}

// ExtendKernelASCII is the historical extension kernel — a per-base ASCII
// comparison loop with a fresh reverse-complement allocation per
// reverse-strand candidate — kept as the baseline the packed kernel is
// benchmarked and equivalence-tested against.
func ExtendKernelASCII(readSeq []byte, contig dbg.Contig, hit SeedHit, seedOff int, reverse bool, opts Options) (Alignment, bool) {
	return extendBytes(readSeq, contig, hit, seedOff, reverse, opts, nil)
}

// DistributeAlignments routes every alignment to the rank owning its contig
// and returns the resulting distributed set, sorted by ReadIdx within each
// shard. This replaces the old GatherAlignments gather-to-all: the contig's
// owner holds exactly the alignments it needs for recruitment and link work,
// and no rank ever materializes the full alignment set. Collective.
func DistributeAlignments(r *pgas.Rank, local []Alignment, contigs *dbg.ContigSet) *dist.Set[Alignment] {
	s := dist.New(r, local,
		func(a Alignment) int { return contigs.RankOfID(a.ContigID) },
		Alignment.WireSize, contigs.Mode())
	s.SortLocal(r, func(a, b Alignment) bool {
		if a.ReadIdx != b.ReadIdx {
			return a.ReadIdx < b.ReadIdx
		}
		return a.ContigID < b.ContigID
	})
	return s
}

// LocalizeReads implements the read-localization optimization (Section II-I)
// for independent (unpaired) reads: every read that aligned to contig c is
// shipped to c's owner rank in the distributed contig set, so the read, its
// contig and its alignments end up co-located; unaligned reads stay with
// their current owner. The returned slice is the calling rank's new local
// read set. alignments must cover the same reads slice passed here (ReadIdx
// relative to readOffset). The pipeline itself uses the pair-preserving
// variant (core.localizePairs) so mates stay on one rank.
func LocalizeReads(r *pgas.Rank, contigs *dbg.ContigSet, reads []seq.Read, readOffset int, alignments []Alignment) []seq.Read {
	dest := make([]int, len(reads))
	for i := range dest {
		dest[i] = r.ID() // unaligned reads stay put
	}
	for _, a := range alignments {
		i := a.ReadIdx - readOffset
		if i >= 0 && i < len(reads) {
			dest[i] = contigs.RankOfID(a.ContigID)
		}
	}
	type routedRead struct {
		Read seq.Read
		Dest int
	}
	items := make([]routedRead, len(reads))
	for i, rd := range reads {
		items[i] = routedRead{Read: rd, Dest: dest[i]}
	}
	got := dht.RouteFunc(r, items, func(it routedRead) int { return it.Dest },
		func(it routedRead) int { return it.Read.WireSize() + 8 })
	out := make([]seq.Read, len(got))
	received := 0
	for i, it := range got {
		out[i] = it.Read
		received += it.Read.WireSize() + 8
	}
	// The shipped reads are input data changing owner, not a new collective
	// materialization: release the exchange's resident charge (the
	// momentary spike still registers in the peak meter) so iterated
	// localization does not accumulate stale charges.
	r.ReleaseResident(received)
	return out
}
