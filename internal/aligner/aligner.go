// Package aligner implements a merAligner-style distributed read-to-contig
// aligner (Sections II-F and II-I of the paper): a seed-and-extend algorithm
// over a distributed seed index, with a per-rank software cache for the
// read-only lookup phase and the read-localization optimization that
// redistributes reads by the contig they align to so that subsequent
// iterations hit the cache instead of the network.
package aligner

import (
	"sort"

	"mhmgo/internal/dbg"
	"mhmgo/internal/dht"
	"mhmgo/internal/pgas"
	"mhmgo/internal/seq"
)

// SeedHit records one occurrence of a seed k-mer in a contig.
type SeedHit struct {
	ContigID int
	// Pos is the offset of the seed within the contig (forward strand).
	Pos int
	// Reverse is true if the canonical form of the seed is the reverse
	// complement of the contig's forward-strand seed at Pos.
	Reverse bool
}

// Alignment is a read-to-contig alignment.
type Alignment struct {
	ReadIdx   int // index of the read in the caller's read ordering
	ReadID    string
	ContigID  int
	ContigPos int // start of the read projection on the contig (may be negative)
	Reverse   bool
	Matches   int
	Mismatch  int
	AlignLen  int
}

// Identity returns the fraction of aligned bases that match.
func (a Alignment) Identity() float64 {
	if a.AlignLen == 0 {
		return 0
	}
	return float64(a.Matches) / float64(a.AlignLen)
}

// Options controls index construction and alignment.
type Options struct {
	// SeedLen is the seed k-mer length.
	SeedLen int
	// SeedStride is the distance between consecutive seeds taken from a read.
	SeedStride int
	// MinIdentity is the minimum identity for an alignment to be reported.
	MinIdentity float64
	// MinAlignLen is the minimum number of aligned bases.
	MinAlignLen int
	// UseCache enables the per-rank software seed cache.
	UseCache bool
	// CacheEntries bounds the software cache size.
	CacheEntries int
	// MaxHitsPerSeed skips seeds that occur in more than this many contig
	// positions (repeat seeds), 0 means no limit.
	MaxHitsPerSeed int
}

// DefaultOptions returns the aligner defaults for the given seed length.
func DefaultOptions(seedLen int) Options {
	return Options{
		SeedLen:        seedLen,
		SeedStride:     8,
		MinIdentity:    0.9,
		MinAlignLen:    20,
		UseCache:       true,
		CacheEntries:   1 << 17,
		MaxHitsPerSeed: 32,
	}
}

// Index is the distributed seed index over a contig set. The contig
// sequences themselves are replicated (they are much smaller than the reads).
type Index struct {
	SeedLen int
	Seeds   *dht.Map[seq.Kmer, []SeedHit]
	Contigs []dbg.Contig
	byID    map[int]int
}

func kmerHash(k seq.Kmer) uint64 { return k.Hash() }

// BuildIndex constructs the distributed seed index. Collective: each rank
// indexes a block of the contigs using the aggregated update-only phase.
func BuildIndex(r *pgas.Rank, contigs []dbg.Contig, opts Options) *Index {
	if opts.SeedLen <= 0 || opts.SeedLen > seq.MaxK {
		opts.SeedLen = 31
	}
	idx := &Index{SeedLen: opts.SeedLen, Contigs: contigs, byID: make(map[int]int, len(contigs))}
	for i, c := range contigs {
		idx.byID[c.ID] = i
	}
	idx.Seeds = dht.NewMapCollective[seq.Kmer, []SeedHit](r, kmerHash, 24)
	combine := func(existing, update []SeedHit, found bool) []SeedHit {
		return append(existing, update...)
	}
	u := idx.Seeds.NewUpdater(r, combine, 512, true)
	lo, hi := r.BlockRange(len(contigs))
	for ci := lo; ci < hi; ci++ {
		c := contigs[ci]
		it := seq.NewKmerIter(c.Seq, opts.SeedLen)
		for {
			km, off, ok := it.Next()
			if !ok {
				break
			}
			canon, wasRC := km.Canonical()
			u.Update(canon, []SeedHit{{ContigID: c.ID, Pos: off, Reverse: wasRC}})
		}
		r.Compute(float64(len(c.Seq)))
	}
	u.Flush()
	r.Barrier()
	// The index is never mutated after construction: switch it into the
	// lock-free read-only phase so alignment reads take no stripe locks.
	idx.Seeds.Freeze()
	return idx
}

// ContigByID returns the contig with the given ID, or ok=false.
func (idx *Index) ContigByID(id int) (dbg.Contig, bool) {
	i, ok := idx.byID[id]
	if !ok {
		return dbg.Contig{}, false
	}
	return idx.Contigs[i], true
}

// AlignStats summarizes an alignment pass.
type AlignStats struct {
	ReadsAligned  int
	ReadsTotal    int
	CacheHitRate  float64
	SeedLookups   uint64
	SeedCacheHits uint64
}

// AlignReads aligns the calling rank's block of reads against the index and
// returns the best alignment found for each read that aligns (at most one
// per read). Collective only in the sense that the seed index is shared; the
// work itself is independent per rank.
func AlignReads(r *pgas.Rank, idx *Index, reads []seq.Read, readOffset int, opts Options) ([]Alignment, AlignStats) {
	if opts.SeedLen <= 0 {
		opts.SeedLen = idx.SeedLen
	}
	if opts.SeedStride <= 0 {
		opts.SeedStride = 8
	}
	if opts.MinIdentity <= 0 {
		opts.MinIdentity = 0.9
	}
	if opts.MinAlignLen <= 0 {
		opts.MinAlignLen = 20
	}
	reader := idx.Seeds.NewCachedReader(r, opts.CacheEntries, opts.UseCache)
	var out []Alignment
	stats := AlignStats{ReadsTotal: len(reads)}
	for i, read := range reads {
		best, found := alignOne(r, idx, reader, read, opts)
		if found {
			best.ReadIdx = readOffset + i
			best.ReadID = read.ID
			out = append(out, best)
		}
	}
	stats.ReadsAligned = len(out)
	hits, misses := reader.Stats()
	stats.SeedCacheHits = hits
	stats.SeedLookups = hits + misses
	stats.CacheHitRate = reader.HitRate()
	return out, stats
}

// alignOne seeds and extends one read, returning its best alignment.
func alignOne(r *pgas.Rank, idx *Index, reader *dht.CachedReader[seq.Kmer, []SeedHit], read seq.Read, opts Options) (Alignment, bool) {
	var best Alignment
	found := false
	tried := make(map[[3]int]bool)
	it := seq.NewKmerIter(read.Seq, opts.SeedLen)
	nextSeedAt := 0
	for {
		km, off, ok := it.Next()
		if !ok {
			break
		}
		if off < nextSeedAt {
			continue
		}
		nextSeedAt = off + opts.SeedStride
		canon, readRC := km.Canonical()
		hits, ok := reader.Get(canon)
		if !ok {
			continue
		}
		if opts.MaxHitsPerSeed > 0 && len(hits) > opts.MaxHitsPerSeed {
			continue
		}
		for _, h := range hits {
			contig, ok := idx.ContigByID(h.ContigID)
			if !ok {
				continue
			}
			// The read aligns to the contig's reverse strand when exactly one
			// of (read seed canonicalization, contig seed canonicalization)
			// flipped orientation.
			reverse := readRC != h.Reverse
			key := [3]int{h.ContigID, h.Pos - off, boolToInt(reverse)}
			if tried[key] {
				continue
			}
			tried[key] = true
			a, ok := extend(read.Seq, contig, h, off, reverse, opts)
			r.Compute(float64(a.AlignLen))
			if !ok {
				continue
			}
			if !found || a.Matches > best.Matches {
				best = a
				found = true
			}
		}
	}
	return best, found
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// extend performs ungapped extension of a seed match and scores it.
func extend(readSeq []byte, contig dbg.Contig, hit SeedHit, seedOff int, reverse bool, opts Options) (Alignment, bool) {
	oriented := readSeq
	off := seedOff
	if reverse {
		oriented = seq.ReverseComplement(readSeq)
		off = len(readSeq) - seedOff - opts.SeedLen
	}
	// Projected start of the read on the contig's forward strand.
	start := hit.Pos - off
	matches, mismatches, alignLen := 0, 0, 0
	for i := 0; i < len(oriented); i++ {
		cpos := start + i
		if cpos < 0 || cpos >= len(contig.Seq) {
			continue
		}
		alignLen++
		if oriented[i] == contig.Seq[cpos] {
			matches++
		} else {
			mismatches++
		}
	}
	a := Alignment{
		ContigID:  contig.ID,
		ContigPos: start,
		Reverse:   reverse,
		Matches:   matches,
		Mismatch:  mismatches,
		AlignLen:  alignLen,
	}
	if alignLen < opts.MinAlignLen || a.Identity() < opts.MinIdentity {
		return a, false
	}
	return a, true
}

// GatherAlignments collects every rank's alignments, sorted by ReadIdx, onto
// all ranks. The gather is charged by actual payload size: six words of
// coordinates plus the read identifier per alignment.
func GatherAlignments(r *pgas.Rank, local []Alignment) []Alignment {
	all := pgas.GatherVFunc(r, local, func(a Alignment) int { return 48 + len(a.ReadID) })
	var merged []Alignment
	for _, as := range all {
		merged = append(merged, as...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].ReadIdx < merged[j].ReadIdx })
	return merged
}

// LocalizeReads implements the read-localization optimization (Section II-I):
// every read that aligned to contig c is shipped to rank (c mod P); unaligned
// reads stay with their current owner. The returned slice is the calling
// rank's new local read set. alignments must cover the same reads slice
// passed here (ReadIdx relative to readOffset).
func LocalizeReads(r *pgas.Rank, reads []seq.Read, readOffset int, alignments []Alignment) []seq.Read {
	p := r.NRanks()
	dest := make([]int, len(reads))
	for i := range dest {
		dest[i] = r.ID() // unaligned reads stay put
	}
	for _, a := range alignments {
		i := a.ReadIdx - readOffset
		if i >= 0 && i < len(reads) {
			dest[i] = a.ContigID % p
		}
	}
	type routedRead struct {
		Read seq.Read
		Dest int
	}
	items := make([]routedRead, len(reads))
	for i, rd := range reads {
		items[i] = routedRead{Read: rd, Dest: dest[i]}
	}
	got := dht.Route(r, items, func(it routedRead) int { return it.Dest }, 120)
	out := make([]seq.Read, len(got))
	for i, it := range got {
		out[i] = it.Read
	}
	return out
}
