// Package hmm provides a lightweight profile model used to recognize
// conserved ribosomal (rRNA-like) regions in contigs, standing in for the
// HMMER pipeline the paper integrates. The scaffolder uses the hit/no-hit
// decision to designate contig ends as extendable and to seed aggressive
// traversal of conserved regions (Section III-C).
//
// The model is an ungapped position-weight profile built from one or more
// example marker sequences: each position stores per-base log-odds against a
// uniform background. A contig is a hit if any window on either strand
// scores above a normalized threshold.
package hmm

import (
	"math"

	"mhmgo/internal/seq"
)

// Profile is a position-weight model of a conserved region.
type Profile struct {
	// logOdds[i][b] is the log-odds score of base b at profile position i.
	logOdds [][4]float64
	// matchLogOdds/mismatchLogOdds are the scores used when building from a
	// single consensus sequence with an assumed per-base conservation.
	length int
}

// BuildProfile constructs a profile from example sequences of identical
// length (typically the planted marker or a set of observed rRNA copies).
// conservation is the assumed per-position probability of the consensus base
// (e.g. 0.9); it controls the scores when only one example is given.
func BuildProfile(examples [][]byte, conservation float64) *Profile {
	if len(examples) == 0 || len(examples[0]) == 0 {
		return &Profile{}
	}
	if conservation <= 0.25 || conservation >= 1 {
		conservation = 0.9
	}
	length := len(examples[0])
	counts := make([][4]float64, length)
	for _, ex := range examples {
		for i := 0; i < length && i < len(ex); i++ {
			code, ok := seq.CharToBase(ex[i])
			if !ok {
				continue
			}
			counts[i][code]++
		}
	}
	p := &Profile{length: length, logOdds: make([][4]float64, length)}
	background := 0.25
	for i := 0; i < length; i++ {
		total := counts[i][0] + counts[i][1] + counts[i][2] + counts[i][3]
		for b := 0; b < 4; b++ {
			var prob float64
			if total == 0 {
				prob = background
			} else {
				// Blend the observed frequency with the conservation prior.
				freq := counts[i][b] / total
				prob = conservation*freq + (1-conservation)*background
			}
			if prob < 1e-4 {
				prob = 1e-4
			}
			p.logOdds[i][b] = math.Log(prob / background)
		}
	}
	return p
}

// Length returns the profile length in positions.
func (p *Profile) Length() int { return p.length }

// Fingerprint returns a content hash of the profile (FNV-1a over the length
// and the bit patterns of every position weight). A nil or empty profile
// hashes to 0. Checkpoint provenance uses it to detect a changed scaffolding
// profile between a checkpointed run and a resume attempt.
func (p *Profile) Fingerprint() uint64 {
	if p == nil || p.length == 0 {
		return 0
	}
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	mix := func(x uint64) {
		for i := 0; i < 64; i += 8 {
			h ^= (x >> i) & 0xff
			h *= prime
		}
	}
	mix(uint64(p.length))
	for _, pos := range p.logOdds {
		for _, v := range pos {
			mix(math.Float64bits(v))
		}
	}
	return h
}

// maxScore returns the best possible score of the profile.
func (p *Profile) maxScore() float64 {
	var s float64
	for i := 0; i < p.length; i++ {
		best := p.logOdds[i][0]
		for b := 1; b < 4; b++ {
			if p.logOdds[i][b] > best {
				best = p.logOdds[i][b]
			}
		}
		s += best
	}
	return s
}

// scoreWindow scores the profile against s starting at offset.
func (p *Profile) scoreWindow(s []byte, offset int) float64 {
	var score float64
	for i := 0; i < p.length; i++ {
		j := offset + i
		if j >= len(s) {
			break
		}
		code, ok := seq.CharToBase(s[j])
		if !ok {
			continue
		}
		score += p.logOdds[i][code]
	}
	return score
}

// Hit describes the best match of the profile within a sequence.
type Hit struct {
	// Score is the best window score normalized by the profile's maximum
	// score (1.0 = perfect match).
	Score float64
	// Pos is the start offset of the best window on the reported strand.
	Pos int
	// Reverse reports whether the hit is on the reverse complement strand.
	Reverse bool
}

// Scan slides the profile over both strands of s (with the given stride) and
// returns the best hit found.
func (p *Profile) Scan(s []byte, stride int) Hit {
	if p.length == 0 || len(s) == 0 {
		return Hit{}
	}
	if stride <= 0 {
		stride = 1
	}
	maxScore := p.maxScore()
	if maxScore <= 0 {
		return Hit{}
	}
	best := Hit{Score: math.Inf(-1)}
	scan := func(target []byte, reverse bool) {
		last := len(target) - p.length
		if last < 0 {
			last = 0
		}
		for off := 0; off <= last; off += stride {
			sc := p.scoreWindow(target, off) / maxScore
			if sc > best.Score {
				best = Hit{Score: sc, Pos: off, Reverse: reverse}
			}
		}
	}
	scan(s, false)
	scan(seq.ReverseComplement(s), true)
	if math.IsInf(best.Score, -1) {
		return Hit{}
	}
	return best
}

// IsHit reports whether s contains the profiled region with at least the
// given normalized score (a typical threshold is 0.5).
func (p *Profile) IsHit(s []byte, threshold float64) bool {
	if threshold <= 0 {
		threshold = 0.5
	}
	return p.Scan(s, 1).Score >= threshold
}

// CountHits returns how many of the sequences contain the profiled region.
func (p *Profile) CountHits(seqs [][]byte, threshold float64) int {
	n := 0
	for _, s := range seqs {
		if p.IsHit(s, threshold) {
			n++
		}
	}
	return n
}
