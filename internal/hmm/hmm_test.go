package hmm

import (
	"math/rand"
	"testing"

	"mhmgo/internal/seq"
	"mhmgo/internal/sim"
)

func randomSeq(r *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = seq.BaseToChar(byte(r.Intn(4)))
	}
	return out
}

func TestProfileDetectsPlantedMarker(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	marker := randomSeq(r, 200)
	p := BuildProfile([][]byte{marker}, 0.9)
	if p.Length() != 200 {
		t.Fatalf("profile length %d", p.Length())
	}

	// A contig containing the marker (with a few mutations) must be a hit.
	contig := append(randomSeq(r, 150), append(append([]byte(nil), marker...), randomSeq(r, 150)...)...)
	for i := 0; i < 6; i++ {
		contig[150+r.Intn(200)] = seq.BaseToChar(byte(r.Intn(4)))
	}
	hit := p.Scan(contig, 1)
	if hit.Score < 0.5 {
		t.Errorf("marker-bearing contig scored %v", hit.Score)
	}
	if hit.Pos < 130 || hit.Pos > 170 {
		t.Errorf("hit position %d, expected near 150", hit.Pos)
	}
	if !p.IsHit(contig, 0.5) {
		t.Error("IsHit should be true")
	}

	// A random contig must not be a hit.
	random := randomSeq(r, 500)
	if p.IsHit(random, 0.5) {
		t.Errorf("random contig scored %v", p.Scan(random, 1).Score)
	}
}

func TestProfileDetectsReverseComplementHit(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	marker := randomSeq(r, 150)
	p := BuildProfile([][]byte{marker}, 0.9)
	contig := append(randomSeq(r, 100), append(seq.ReverseComplement(marker), randomSeq(r, 100)...)...)
	hit := p.Scan(contig, 1)
	if hit.Score < 0.5 {
		t.Fatalf("reverse-complement marker not detected: %v", hit.Score)
	}
	if !hit.Reverse {
		t.Error("hit should be flagged as reverse strand")
	}
}

func TestProfileFromMultipleExamples(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	consensus := randomSeq(r, 120)
	var examples [][]byte
	for i := 0; i < 5; i++ {
		ex := append([]byte(nil), consensus...)
		for j := 0; j < 5; j++ {
			ex[r.Intn(len(ex))] = seq.BaseToChar(byte(r.Intn(4)))
		}
		examples = append(examples, ex)
	}
	p := BuildProfile(examples, 0.9)
	if !p.IsHit(consensus, 0.6) {
		t.Error("consensus should be a strong hit")
	}
	if p.IsHit(randomSeq(r, 300), 0.5) {
		t.Error("random sequence should not be a hit")
	}
}

func TestCountHitsOnSimulatedCommunity(t *testing.T) {
	// Every genome in a simulated community carries the planted marker, so
	// the profile built from the marker must hit (nearly) all of them.
	comm := sim.GenerateCommunity(sim.CommunityConfig{
		NumGenomes: 10, MeanGenomeLen: 6000, RRNALen: 300, RRNADivergence: 0.03,
		StrainFraction: 0, Seed: 4,
	})
	p := BuildProfile([][]byte{comm.RRNAMarker}, 0.9)
	var seqs [][]byte
	for _, g := range comm.Genomes {
		seqs = append(seqs, g.Seq)
	}
	hits := p.CountHits(seqs, 0.5)
	if hits < 9 {
		t.Errorf("only %d of 10 marker-bearing genomes detected", hits)
	}
	// Fragments that do not contain the marker must not be hits.
	nonMarker := 0
	for _, g := range comm.Genomes {
		pos := g.RRNAPositions[0]
		if pos > 600 {
			if !p.IsHit(g.Seq[:500], 0.5) {
				nonMarker++
			}
		} else if pos+300+500 < len(g.Seq) {
			if !p.IsHit(g.Seq[pos+300:pos+300+500], 0.5) {
				nonMarker++
			}
		} else {
			nonMarker++
		}
	}
	if nonMarker < 8 {
		t.Errorf("marker-free fragments misclassified: only %d of 10 clean", nonMarker)
	}
}

func TestDegenerateProfiles(t *testing.T) {
	empty := BuildProfile(nil, 0.9)
	if empty.Length() != 0 {
		t.Error("empty profile should have length 0")
	}
	if empty.IsHit([]byte("ACGT"), 0.5) {
		t.Error("empty profile should never hit")
	}
	p := BuildProfile([][]byte{[]byte("ACGT")}, 2.0) // conservation clamped
	if p.Length() != 4 {
		t.Error("profile length wrong")
	}
	if hit := p.Scan(nil, 1); hit.Score != 0 {
		t.Errorf("scan of empty sequence = %+v", hit)
	}
	// Threshold defaulting.
	if !p.IsHit([]byte("ACGT"), 0) {
		t.Error("exact match should hit with default threshold")
	}
}

func TestScanShortSequence(t *testing.T) {
	p := BuildProfile([][]byte{[]byte("ACGTACGTACGT")}, 0.9)
	hit := p.Scan([]byte("ACGTA"), 1)
	// A short prefix still produces a partial (low) score without panicking.
	if hit.Score >= 0.9 {
		t.Errorf("short sequence scored too high: %v", hit.Score)
	}
}
