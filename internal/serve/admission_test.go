package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mhmgo/internal/core"
	"mhmgo/internal/pgas"
)

// fakeRuns replaces the server's runFn with a controllable executor: each
// dispatched job announces itself on started, then blocks until its gate is
// released (or its context is cancelled, which mimics the pgas abort path
// by returning an ErrAborted-wrapped error).
type fakeRuns struct {
	mu      sync.Mutex
	gates   map[string]chan struct{}
	started chan string
}

func installFakeRuns(s *Server) *fakeRuns {
	f := &fakeRuns{gates: make(map[string]chan struct{}), started: make(chan string, 64)}
	s.runFn = func(ctx context.Context, j *Job) (*core.Result, error) {
		f.started <- j.ID()
		select {
		case <-f.gate(j.ID()):
			return &core.Result{}, nil
		case <-ctx.Done():
			return nil, errors.Join(pgas.ErrAborted, context.Cause(ctx))
		}
	}
	return f
}

// gate returns the job's release channel, creating it on demand, so release
// works whether it happens before or after the job dispatches.
func (f *fakeRuns) gate(id string) chan struct{} {
	f.mu.Lock()
	defer f.mu.Unlock()
	ch, ok := f.gates[id]
	if !ok {
		ch = make(chan struct{})
		f.gates[id] = ch
	}
	return ch
}

// release lets the named job finish successfully.
func (f *fakeRuns) release(id string) { close(f.gate(id)) }

func waitStarted(t *testing.T, f *fakeRuns) string {
	t.Helper()
	select {
	case id := <-f.started:
		return id
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for a job to dispatch")
		return ""
	}
}

func waitState(t *testing.T, j *Job, want string) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s stuck in state %s, want %s", j.ID(), j.State(), want)
	}
	if got := j.State(); got != want {
		t.Fatalf("job %s state = %s, want %s", j.ID(), got, want)
	}
}

func simSpec(id string, workers int) JobSpec {
	return JobSpec{ID: id, Workers: workers, Ranks: 4, Sim: &SimSpec{Genomes: 2, GenomeLen: 2000}}
}

// TestAdmissionControl is the admission-control table: worker-budget
// accounting, queue-vs-reject behaviour, priority order, head-of-line
// blocking, duplicate IDs, queue timeouts, and cancellation of queued and
// running jobs — all against the runFn seam, no real assemblies.
func TestAdmissionControl(t *testing.T) {
	t.Run("single job admitted and completes", func(t *testing.T) {
		s := New(Options{TotalWorkers: 2})
		defer s.Close()
		f := installFakeRuns(s)
		j, err := s.Submit(simSpec("a", 1))
		if err != nil {
			t.Fatal(err)
		}
		waitStarted(t, f)
		f.release("a")
		waitState(t, j, StateDone)
	})

	t.Run("budget exhausted queues the second job", func(t *testing.T) {
		s := New(Options{TotalWorkers: 2})
		defer s.Close()
		f := installFakeRuns(s)
		a, _ := s.Submit(simSpec("a", 2))
		waitStarted(t, f)
		b, err := s.Submit(simSpec("b", 1))
		if err != nil {
			t.Fatalf("second job should queue, got %v", err)
		}
		if got := b.State(); got != StateQueued {
			t.Fatalf("second job state = %s, want queued", got)
		}
		f.release("a")
		waitState(t, a, StateDone)
		if id := waitStarted(t, f); id != "b" {
			t.Fatalf("dispatched %s after slots freed, want b", id)
		}
		f.release("b")
		waitState(t, b, StateDone)
	})

	t.Run("queue full rejects with ErrQueueFull", func(t *testing.T) {
		s := New(Options{TotalWorkers: 1, MaxQueue: 1})
		defer s.Close()
		f := installFakeRuns(s)
		s.Submit(simSpec("a", 1)) // running
		waitStarted(t, f)
		s.Submit(simSpec("b", 1)) // queued (fills the queue)
		if _, err := s.Submit(simSpec("c", 1)); !errors.Is(err, ErrQueueFull) {
			t.Fatalf("third submit error = %v, want ErrQueueFull", err)
		}
		if ra := s.RetryAfter(); ra < 1 {
			t.Fatalf("RetryAfter = %d, want >= 1", ra)
		}
		f.release("a")
		f.release("b")
	})

	t.Run("request above total budget is rejected outright", func(t *testing.T) {
		s := New(Options{TotalWorkers: 2})
		defer s.Close()
		installFakeRuns(s)
		var se *SpecError
		if _, err := s.Submit(simSpec("a", 3)); !errors.As(err, &se) || se.Field != "workers" {
			t.Fatalf("oversized request error = %v, want SpecError on workers", err)
		}
	})

	t.Run("duplicate job id is rejected", func(t *testing.T) {
		s := New(Options{TotalWorkers: 2})
		defer s.Close()
		f := installFakeRuns(s)
		s.Submit(simSpec("a", 1))
		waitStarted(t, f)
		if _, err := s.Submit(simSpec("a", 1)); !errors.Is(err, ErrDuplicateID) {
			t.Fatalf("duplicate submit error = %v, want ErrDuplicateID", err)
		}
		f.release("a")
	})

	t.Run("interactive dispatches before earlier batch", func(t *testing.T) {
		s := New(Options{TotalWorkers: 1})
		defer s.Close()
		f := installFakeRuns(s)
		a, _ := s.Submit(simSpec("a", 1)) // running, holds the only slot
		waitStarted(t, f)
		batch := simSpec("batch", 1)
		batch.Priority = PriorityBatch
		b, _ := s.Submit(batch)
		i, _ := s.Submit(simSpec("inter", 1)) // later arrival, higher class
		f.release("a")
		waitState(t, a, StateDone)
		if id := waitStarted(t, f); id != "inter" {
			t.Fatalf("dispatched %s first, want the interactive job", id)
		}
		f.release("inter")
		waitState(t, i, StateDone)
		if id := waitStarted(t, f); id != "batch" {
			t.Fatalf("dispatched %s second, want the batch job", id)
		}
		f.release("batch")
		waitState(t, b, StateDone)
	})

	t.Run("fifo within a priority class", func(t *testing.T) {
		s := New(Options{TotalWorkers: 1})
		defer s.Close()
		f := installFakeRuns(s)
		s.Submit(simSpec("a", 1))
		waitStarted(t, f)
		s.Submit(simSpec("b", 1))
		s.Submit(simSpec("c", 1))
		f.release("a")
		if id := waitStarted(t, f); id != "b" {
			t.Fatalf("dispatched %s, want b (FIFO)", id)
		}
		f.release("b")
		if id := waitStarted(t, f); id != "c" {
			t.Fatalf("dispatched %s, want c (FIFO)", id)
		}
		f.release("c")
	})

	t.Run("head of line blocks smaller later jobs", func(t *testing.T) {
		s := New(Options{TotalWorkers: 4})
		defer s.Close()
		f := installFakeRuns(s)
		s.Submit(simSpec("hold", 3)) // running: 1 slot free
		waitStarted(t, f)
		big, _ := s.Submit(simSpec("big", 4))     // queued: does not fit
		small, _ := s.Submit(simSpec("small", 1)) // fits, but is behind big
		time.Sleep(50 * time.Millisecond)
		if got := small.State(); got != StateQueued {
			t.Fatalf("small job state = %s: it must not overtake the blocked head-of-line job", got)
		}
		f.release("hold")
		if id := waitStarted(t, f); id != "big" {
			t.Fatalf("dispatched %s, want big", id)
		}
		f.release("big")
		waitState(t, big, StateDone)
		if id := waitStarted(t, f); id != "small" {
			t.Fatalf("dispatched %s, want small", id)
		}
		f.release("small")
		waitState(t, small, StateDone)
	})

	t.Run("cancelling a queued job unblocks dispatch", func(t *testing.T) {
		s := New(Options{TotalWorkers: 2})
		defer s.Close()
		f := installFakeRuns(s)
		s.Submit(simSpec("hold", 1)) // running: 1 slot free
		waitStarted(t, f)
		big, _ := s.Submit(simSpec("big", 2))     // queued head-of-line, too big
		small, _ := s.Submit(simSpec("small", 1)) // blocked behind big
		cj, err := s.Cancel("big")
		if err != nil || cj != big {
			t.Fatalf("Cancel(big) = %v, %v", cj, err)
		}
		waitState(t, big, StateCancelled)
		if !errors.Is(big.Err(), ErrJobCancelled) {
			t.Fatalf("cancelled job err = %v, want ErrJobCancelled", big.Err())
		}
		// Removing the blocked head must let the small job through.
		if id := waitStarted(t, f); id != "small" {
			t.Fatalf("dispatched %s after cancel, want small", id)
		}
		f.release("hold")
		f.release("small")
		waitState(t, small, StateDone)
	})

	t.Run("queue timeout expires a waiting job", func(t *testing.T) {
		s := New(Options{TotalWorkers: 1, QueueTimeout: 30 * time.Millisecond})
		defer s.Close()
		f := installFakeRuns(s)
		s.Submit(simSpec("hold", 1))
		waitStarted(t, f)
		b, _ := s.Submit(simSpec("b", 1))
		waitState(t, b, StateTimeout)
		if !errors.Is(b.Err(), ErrQueueTimeout) {
			t.Fatalf("timed-out job err = %v, want ErrQueueTimeout", b.Err())
		}
		f.release("hold")
	})

	t.Run("per-spec queue timeout overrides the server default", func(t *testing.T) {
		s := New(Options{TotalWorkers: 1, QueueTimeout: time.Hour})
		defer s.Close()
		f := installFakeRuns(s)
		s.Submit(simSpec("hold", 1))
		waitStarted(t, f)
		spec := simSpec("b", 1)
		spec.QueueTimeoutMS = 30
		b, _ := s.Submit(spec)
		waitState(t, b, StateTimeout)
		f.release("hold")
	})

	t.Run("cancelling a running job aborts and frees its slots", func(t *testing.T) {
		s := New(Options{TotalWorkers: 2})
		defer s.Close()
		f := installFakeRuns(s)
		a, _ := s.Submit(simSpec("a", 2))
		waitStarted(t, f)
		s.Cancel("a")
		waitState(t, a, StateCancelled)
		if !errors.Is(a.Err(), pgas.ErrAborted) {
			t.Fatalf("cancelled running job err = %v, want ErrAborted", a.Err())
		}
		if st := s.Stats(); st.FreeWorkers != 2 {
			t.Fatalf("FreeWorkers = %d after cancel, want 2", st.FreeWorkers)
		}
		// The pool is not wedged: a fresh job still runs to completion.
		b, _ := s.Submit(simSpec("b", 2))
		waitStarted(t, f)
		f.release("b")
		waitState(t, b, StateDone)
	})

	t.Run("cancelling a terminal job is a no-op", func(t *testing.T) {
		s := New(Options{TotalWorkers: 1})
		defer s.Close()
		f := installFakeRuns(s)
		a, _ := s.Submit(simSpec("a", 1))
		waitStarted(t, f)
		f.release("a")
		waitState(t, a, StateDone)
		if j, err := s.Cancel("a"); err != nil || j.State() != StateDone {
			t.Fatalf("Cancel(done job) = state %s, err %v; want done, nil", j.State(), err)
		}
	})

	t.Run("unknown job id on cancel", func(t *testing.T) {
		s := New(Options{TotalWorkers: 1})
		defer s.Close()
		if _, err := s.Cancel("nope"); !errors.Is(err, ErrUnknownJob) {
			t.Fatalf("Cancel(unknown) error = %v, want ErrUnknownJob", err)
		}
	})

	t.Run("close cancels queued and running jobs and rejects new ones", func(t *testing.T) {
		s := New(Options{TotalWorkers: 1})
		f := installFakeRuns(s)
		a, _ := s.Submit(simSpec("a", 1))
		waitStarted(t, f)
		b, _ := s.Submit(simSpec("b", 1))
		s.Close()
		waitState(t, a, StateCancelled)
		waitState(t, b, StateCancelled)
		if _, err := s.Submit(simSpec("c", 1)); !errors.Is(err, ErrServerClosed) {
			t.Fatalf("submit after close error = %v, want ErrServerClosed", err)
		}
	})

	t.Run("generated ids are unique and sequential", func(t *testing.T) {
		s := New(Options{TotalWorkers: 16, MaxQueue: 16})
		defer s.Close()
		f := installFakeRuns(s)
		seen := map[string]bool{}
		var jobs []*Job
		for i := 0; i < 4; i++ {
			spec := simSpec("", 1)
			j, err := s.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			if j.ID() == "" || seen[j.ID()] {
				t.Fatalf("generated id %q empty or duplicated", j.ID())
			}
			seen[j.ID()] = true
			jobs = append(jobs, j)
		}
		for _, j := range jobs {
			waitStarted(t, f)
			f.release(j.ID())
		}
		for _, j := range jobs {
			waitState(t, j, StateDone)
		}
	})
}

// TestAdmissionEventStream checks that a job's event log records its full
// lifecycle with dense sequence numbers.
func TestAdmissionEventStream(t *testing.T) {
	s := New(Options{TotalWorkers: 1})
	defer s.Close()
	f := installFakeRuns(s)
	j, err := s.Submit(simSpec("a", 1))
	if err != nil {
		t.Fatal(err)
	}
	waitStarted(t, f)
	f.release("a")
	waitState(t, j, StateDone)
	evs, _, terminal := j.Events(0)
	if !terminal {
		t.Fatal("event stream not terminal after done")
	}
	var states []string
	for i, ev := range evs {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d: sequence numbers must be dense", i, ev.Seq)
		}
		if ev.Type == "state" {
			states = append(states, ev.State)
		}
	}
	want := fmt.Sprintf("%v", []string{StateQueued, StateRunning, StateDone})
	if got := fmt.Sprintf("%v", states); got != want {
		t.Fatalf("state transitions = %s, want %s", got, want)
	}
}
