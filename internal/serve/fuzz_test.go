package serve

import (
	"encoding/json"
	"errors"
	"testing"

	"mhmgo/internal/core"
)

// FuzzJobSpecDecode fuzzes the job-spec decoder: arbitrary bytes must never
// panic, invalid documents must fail with a structured *SpecError (the 400
// body), and every accepted spec must round-trip — re-encoding and
// re-decoding reproduces the normalized spec and its core.ConfigHash
// exactly, so a job resubmitted from a server echo runs the identical
// configuration.
func FuzzJobSpecDecode(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"sim": {}}`,
		`{"sim": {"genomes": 3, "genome_len": 5000, "coverage": 12, "seed": 42}}`,
		`{"id": "j1", "priority": "batch", "workers": 4, "ranks": 16, "ranks_per_node": 8, "sim": {"seed": 1}}`,
		`{"kmin": 21, "kmax": 63, "kstep": 22, "min_contig_len": 500, "no_scaffold": true, "sim": {}}`,
		`{"sim": {"libraries": [{"insert_size": 200, "insert_std": 20, "share": 0.5}, {"insert_size": 600, "share": 0.5}]}}`,
		`{"libraries": [{"name": "pe", "insert_size": 300, "reads": ">r0\nACGTACGTAC\n>r1\nGTACGTACGT\n"}]}`,
		`{"libraries": [{"reads": "@r0\nACGT\n+\nIIII\n@r1\nTTTT\n+\nIIII\n"}]}`,
		`{"workers": -1, "sim": {}}`,
		`{"ranks": 100000, "sim": {}}`,
		`{"priority": "urgent", "sim": {}}`,
		`{"sim": {}, "libraries": [{"reads": ">r\nA\n"}]}`,
		`{"sim": {"error_rate": 2}}`,
		`{"unknown_field": 1}`,
		`{"sim": {}} trailing`,
		`not json at all`,
		``,
		`null`,
		`[1,2,3]`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeSpec(data)
		if err != nil {
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("DecodeSpec error %v (%T) is not a *SpecError", err, err)
			}
			if se.Field == "" || se.Msg == "" {
				t.Fatalf("SpecError %+v has an empty field or message", se)
			}
			return
		}
		// Accepted: the spec is already normalized and must survive an
		// encode/decode round trip bit-for-bit.
		enc, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("re-encoding accepted spec: %v", err)
		}
		spec2, err := DecodeSpec(enc)
		if err != nil {
			t.Fatalf("re-decoding %s: %v", enc, err)
		}
		enc2, err := json.Marshal(spec2)
		if err != nil {
			t.Fatal(err)
		}
		if string(enc) != string(enc2) {
			t.Fatalf("spec round trip diverged:\n%s\n%s", enc, enc2)
		}
		cfg1, err1 := spec.Config()
		cfg2, err2 := spec2.Config()
		if err1 != nil || err2 != nil {
			t.Fatalf("Config() on accepted spec failed: %v / %v", err1, err2)
		}
		if h1, h2 := core.ConfigHash(cfg1), core.ConfigHash(cfg2); h1 != h2 {
			t.Fatalf("config hash diverged across round trip: %s vs %s", h1, h2)
		}
	})
}

// FuzzProgressEventDecode fuzzes the progress-event decoder clients use on
// the SSE/NDJSON stream: arbitrary bytes never panic, and every accepted
// event re-encodes to its canonical form and decodes back identically.
func FuzzProgressEventDecode(f *testing.F) {
	seeds := []string{
		`{"seq": 0, "type": "state", "state": "queued"}`,
		`{"seq": 3, "type": "state", "state": "failed", "error": "boom"}`,
		`{"seq": 1, "type": "stage", "stage": "kmer_analysis", "iteration": 0, "k": 21, "sim_seconds": 0.25, "resident_bytes": 4096}`,
		`{"seq": -1, "type": "state"}`,
		`{"seq": 0, "type": "bogus"}`,
		`{"seq": 0, "type": "stage", "k": -3}`,
		`{"seq": 0, "type": "state", "state": "queued"} extra`,
		`{"unknown": true}`,
		`{}`,
		`null`,
		`42`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ev, err := DecodeEvent(data)
		if err != nil {
			return
		}
		enc, err := json.Marshal(ev)
		if err != nil {
			t.Fatalf("re-encoding accepted event: %v", err)
		}
		ev2, err := DecodeEvent(enc)
		if err != nil {
			t.Fatalf("re-decoding %s: %v", enc, err)
		}
		if ev != ev2 {
			t.Fatalf("event round trip diverged: %+v vs %+v", ev, ev2)
		}
	})
}
