package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mhmgo/internal/core"
	"mhmgo/internal/fastx"
	"mhmgo/internal/pgas"
)

func postSpec(t *testing.T, ts *httptest.Server, spec JobSpec) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestHTTPAPI exercises the full HTTP surface against the runFn seam:
// status codes, error envelopes, the Retry-After backpressure header, event
// streaming, and the CSV export.
func TestHTTPAPI(t *testing.T) {
	s := New(Options{TotalWorkers: 1, MaxQueue: 1})
	defer s.Close()
	f := installFakeRuns(s)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Invalid spec: structured 400 naming the offending field.
	resp, body := postSpec(t, ts, JobSpec{ID: "bad", Ranks: -1, Sim: &SimSpec{}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec status = %d, want 400", resp.StatusCode)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Field != "ranks" {
		t.Fatalf("400 body = %s (err %v), want field \"ranks\"", body, err)
	}

	// Unknown JSON fields are a 400, not a silently dropped knob.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"sim": {}, "workerz": 3}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown-field spec status = %d, want 400", resp.StatusCode)
	}

	// Valid submission: 202 with the normalized spec echoed back.
	resp, body = postSpec(t, ts, simSpec("a", 1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202 (body %s)", resp.StatusCode, body)
	}
	var snap jobSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Spec.Priority != PriorityInteractive || snap.Metrics.ID != "a" {
		t.Fatalf("submit snapshot = %+v, want normalized spec for job a", snap)
	}

	// Duplicate ID: 409.
	if resp, _ = postSpec(t, ts, simSpec("a", 1)); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate submit status = %d, want 409", resp.StatusCode)
	}

	// Fill the queue, then overflow it: 429 + Retry-After.
	postSpec(t, ts, simSpec("b", 1))
	resp, _ = postSpec(t, ts, simSpec("c", 1))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("429 Retry-After = %q, want a positive integer", ra)
	}

	// FASTA before completion: 409.
	if resp, _ = get(t, ts, "/v1/jobs/a/fasta"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("fasta-while-running status = %d, want 409", resp.StatusCode)
	}

	// Unknown job: 404 on all per-job routes.
	if resp, _ = get(t, ts, "/v1/jobs/nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %d, want 404", resp.StatusCode)
	}

	// Cancel the queued job over HTTP.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/b", nil)
	cresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d, want 200", cresp.StatusCode)
	}
	jb, _ := s.Job("b")
	waitState(t, jb, StateCancelled)

	// Let the running job finish and stream its events as NDJSON.
	f.release("a")
	ja, _ := s.Job("a")
	waitState(t, ja, StateDone)
	resp, body = get(t, ts, "/v1/jobs/a/events?format=ndjson")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status = %d, want 200", resp.StatusCode)
	}
	var states []string
	sc := bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		ev, err := DecodeEvent(sc.Bytes())
		if err != nil {
			t.Fatalf("event line %q: %v", sc.Text(), err)
		}
		if ev.Type == "state" {
			states = append(states, ev.State)
		}
	}
	if want := []string{StateQueued, StateRunning, StateDone}; fmt.Sprint(states) != fmt.Sprint(want) {
		t.Fatalf("streamed states = %v, want %v", states, want)
	}

	// SSE framing on the default events route.
	resp, body = get(t, ts, "/v1/jobs/a/events")
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type = %q, want text/event-stream", ct)
	}
	if !bytes.Contains(body, []byte("data: {")) {
		t.Fatalf("SSE body %q lacks data: frames", body)
	}

	// Completed job: FASTA now downloads.
	if resp, _ = get(t, ts, "/v1/jobs/a/fasta"); resp.StatusCode != http.StatusOK {
		t.Fatalf("fasta-after-done status = %d, want 200", resp.StatusCode)
	}

	// Metrics CSV: header plus one row per job.
	resp, body = get(t, ts, "/v1/metrics.csv")
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if lines[0] != MetricsCSVHeader() {
		t.Fatalf("metrics.csv header = %q", lines[0])
	}
	if len(lines) != 1+len(s.Jobs()) {
		t.Fatalf("metrics.csv has %d rows, want %d", len(lines)-1, len(s.Jobs()))
	}

	// Healthz reflects the admission state.
	resp, body = get(t, ts, "/v1/healthz")
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.TotalWorkers != 1 || st.Done != 1 || st.Cancelled != 1 {
		t.Fatalf("healthz = %+v, want 1 worker, 1 done, 1 cancelled", st)
	}

	// Job listing covers every submission in order.
	resp, body = get(t, ts, "/v1/jobs")
	var list []jobSnapshot
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].Metrics.ID != "a" || list[1].Metrics.ID != "b" {
		t.Fatalf("job list = %+v, want [a b]", list)
	}
}

// raceSpecs are eight overlapping jobs with mixed machine sizes, worker
// grants, priorities and inputs (different seeds, community shapes, and
// multi-library recipes).
func raceSpecs() []JobSpec {
	specs := make([]JobSpec, 8)
	for i := range specs {
		spec := JobSpec{
			ID:      fmt.Sprintf("race-%d", i),
			Workers: 1 + i%2,
			Ranks:   4 + 4*(i%2),
			Sim: &SimSpec{
				Genomes:   2 + i%3,
				GenomeLen: 2000 + 500*(i%4),
				Coverage:  15,
				Seed:      int64(100 + i),
			},
		}
		if i%3 == 0 {
			spec.Priority = PriorityBatch
		}
		if i%4 == 3 {
			spec.Sim.Libraries = []SimLibrarySpec{
				{InsertSize: 200, InsertStd: 20, Share: 0.6},
				{InsertSize: 500, InsertStd: 40, Share: 0.4},
			}
		}
		specs[i] = spec.Normalized()
	}
	return specs
}

// TestServeConcurrentJobsRace runs eight overlapping assemblies through the
// HTTP API under the race detector and pins the multi-tenancy contract:
// every job's FASTA bytes and simulated seconds are bit-identical to a
// direct core.Assemble of the same spec — co-tenants never bleed into each
// other's results.
func TestServeConcurrentJobsRace(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-job assembly comparison is not short")
	}
	s := New(Options{TotalWorkers: 8, MaxQueue: 16})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	specs := raceSpecs()
	var wg sync.WaitGroup
	for _, spec := range specs {
		wg.Add(1)
		go func(spec JobSpec) {
			defer wg.Done()
			resp, body := postSpec(t, ts, spec)
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("submit %s: status %d (body %s)", spec.ID, resp.StatusCode, body)
			}
		}(spec)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for _, spec := range specs {
		j, err := s.Job(spec.ID)
		if err != nil {
			t.Fatal(err)
		}
		select {
		case <-j.Done():
		case <-time.After(5 * time.Minute):
			t.Fatalf("job %s stuck in state %s", spec.ID, j.State())
		}
		if got := j.State(); got != StateDone {
			t.Fatalf("job %s finished %s (err %v), want done", spec.ID, got, j.Err())
		}
	}

	// Replay each job directly (no server) and demand bit-identity.
	for _, spec := range specs {
		cfg, err := spec.Config()
		if err != nil {
			t.Fatal(err)
		}
		reads, err := spec.BuildReads()
		if err != nil {
			t.Fatal(err)
		}
		direct, err := core.Assemble(reads, cfg)
		if err != nil {
			t.Fatal(err)
		}
		seqs := direct.FinalSequences()
		names := make([]string, len(seqs))
		for i := range seqs {
			names[i] = fmt.Sprintf("scaffold_%06d", i)
		}
		wantFASTA := RenderFASTA(names, seqs)

		resp, gotFASTA := get(t, ts, "/v1/jobs/"+spec.ID+"/fasta")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fasta %s: status %d", spec.ID, resp.StatusCode)
		}
		if !bytes.Equal(gotFASTA, wantFASTA) {
			t.Errorf("job %s: served FASTA differs from direct assembly (%d vs %d bytes)",
				spec.ID, len(gotFASTA), len(wantFASTA))
		}
		recs, err := fastx.ReadAll(bytes.NewReader(gotFASTA))
		if err != nil {
			t.Fatalf("job %s: served FASTA does not parse: %v", spec.ID, err)
		}
		if len(recs) != len(seqs) {
			t.Errorf("job %s: served %d sequences, direct %d", spec.ID, len(recs), len(seqs))
		}

		// Simulated seconds round-trip through JSON exactly (float64), so
		// equality here is bit-equality.
		resp, body := get(t, ts, "/v1/jobs/"+spec.ID)
		var snap jobSnapshot
		if err := json.Unmarshal(body, &snap); err != nil {
			t.Fatal(err)
		}
		if snap.Metrics.SimSeconds != direct.SimSeconds {
			t.Errorf("job %s: served sim-seconds %v != direct %v",
				spec.ID, snap.Metrics.SimSeconds, direct.SimSeconds)
		}
		if snap.Metrics.PeakResidentBytes != direct.Stats.PeakResidentBytes {
			t.Errorf("job %s: served peak-resident %d != direct %d",
				spec.ID, snap.Metrics.PeakResidentBytes, direct.Stats.PeakResidentBytes)
		}

		// The stage stream is complete and its clock is monotone.
		j, _ := s.Job(spec.ID)
		evs, _, _ := j.Events(0)
		stages, lastClock := 0, -1.0
		for _, ev := range evs {
			if ev.Type != "stage" {
				continue
			}
			stages++
			if ev.SimSeconds < lastClock {
				t.Errorf("job %s: stage clock went backwards (%v after %v)", spec.ID, ev.SimSeconds, lastClock)
			}
			lastClock = ev.SimSeconds
		}
		if stages == 0 {
			t.Errorf("job %s: no stage events streamed", spec.ID)
		}
		// The final result gather runs after the last stage-end barrier, so
		// the last stage clock is a hair below the run's total.
		if lastClock > direct.SimSeconds {
			t.Errorf("job %s: final stage clock %v exceeds result sim-seconds %v", spec.ID, lastClock, direct.SimSeconds)
		}
	}
}

// TestCancelMidStage cancels a real assembly from inside its own progress
// stream: the first stage-end event triggers Cancel, the job's context
// aborts its pgas machine, every rank unwinds, the worker slots come back,
// and the pool is provably not wedged (a follow-up job runs to completion).
func TestCancelMidStage(t *testing.T) {
	s := New(Options{TotalWorkers: 4})
	defer s.Close()
	var once sync.Once
	s.onStage = func(j *Job, ev core.ProgressEvent) {
		if j.ID() != "victim" {
			return
		}
		once.Do(func() {
			if _, err := s.Cancel("victim"); err != nil {
				t.Errorf("mid-stage cancel: %v", err)
			}
		})
	}

	spec := JobSpec{
		ID:      "victim",
		Workers: 2,
		Ranks:   8,
		Sim:     &SimSpec{Genomes: 3, GenomeLen: 4000, Coverage: 15, Seed: 7},
	}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(2 * time.Minute):
		t.Fatalf("cancelled job stuck in state %s", j.State())
	}
	if got := j.State(); got != StateCancelled {
		t.Fatalf("job state = %s (err %v), want cancelled", got, j.Err())
	}
	if !errors.Is(j.Err(), pgas.ErrAborted) {
		t.Fatalf("cancelled job err = %v, want pgas.ErrAborted", j.Err())
	}
	if !errors.Is(j.Err(), ErrJobCancelled) {
		t.Fatalf("cancelled job err = %v, want the ErrJobCancelled cause", j.Err())
	}
	if st := s.Stats(); st.FreeWorkers != st.TotalWorkers {
		t.Fatalf("FreeWorkers = %d after abort, want %d", st.FreeWorkers, st.TotalWorkers)
	}

	// The pool survived the abort: a fresh real job completes.
	s.onStage = nil
	follow, err := s.Submit(JobSpec{
		ID:      "follow",
		Workers: 2,
		Ranks:   4,
		Sim:     &SimSpec{Genomes: 2, GenomeLen: 2000, Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-follow.Done():
	case <-time.After(2 * time.Minute):
		t.Fatalf("follow-up job stuck in state %s", follow.State())
	}
	if got := follow.State(); got != StateDone {
		t.Fatalf("follow-up job state = %s (err %v), want done", got, follow.Err())
	}
}
