// Package serve implements assembly-as-a-service: a long-running multi-tenant
// HTTP job server over the virtual PGAS machine.
//
// Each submitted job describes one assembly (a JSON JobSpec: machine shape,
// k schedule, and either inline reads or a simulated-community recipe), runs
// on its own pgas machine inside a server-wide worker-slot budget, and is
// observable end to end: a priority admission queue with backpressure (429 +
// Retry-After when the queue is full), streamed per-stage progress events,
// cancellation wired through context to pgas.Machine.Abort, and flat per-job
// metrics suitable for CSV export. Co-tenancy never changes results: a job's
// FASTA and simulated seconds are bit-identical to a direct core.Assemble
// with the same configuration, which TestServeConcurrentJobsRace pins.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"mhmgo/internal/core"
	"mhmgo/internal/fastx"
	"mhmgo/internal/seq"
	"mhmgo/internal/sim"
)

// Spec caps: admission control begins at the spec boundary. Every limit
// below bounds the resources a single job can claim before the worker
// budget is even consulted.
const (
	// MaxRanks caps the virtual machine size of one job.
	MaxRanks = 4096
	// MaxLibraries caps the paired-end libraries of one job.
	MaxLibraries = 16
	// MaxInlineReadBytes caps the total inline read text of one job.
	MaxInlineReadBytes = 16 << 20
	// MaxSimGenomes / MaxSimGenomeLen / MaxSimCoverage cap a simulated
	// community's shape; MaxSimBases caps the total sequenced bases
	// (genomes x genome length x coverage) so the three caps cannot be
	// combined into an unbounded job.
	MaxSimGenomes   = 64
	MaxSimGenomeLen = 1 << 20
	MaxSimCoverage  = 64
	MaxSimBases     = 1 << 28
)

// Priority classes. Interactive jobs dispatch before batch jobs regardless
// of arrival order; within a class the queue is FIFO.
const (
	PriorityInteractive = "interactive"
	PriorityBatch       = "batch"
)

// JobSpec is the JSON body of a job submission. Exactly one input source
// must be set: Libraries (inline read upload, one entry per paired-end
// library) or Sim (a server-side simulated community, the MGSim recipe).
type JobSpec struct {
	// ID names the job; the server generates "job-NNNNNN" when empty.
	// Submitting a duplicate ID is rejected with 409.
	ID string `json:"id,omitempty"`
	// Priority is "interactive" (the default) or "batch".
	Priority string `json:"priority,omitempty"`
	// Workers is the number of server worker slots the job requests — the
	// pgas worker-pool size its machine runs with (core.Config.Workers).
	// Defaults to 1; a request exceeding the server's total budget can
	// never be admitted and is rejected outright.
	Workers int `json:"workers,omitempty"`

	// Machine shape (core.Config.Ranks / RanksPerNode). Defaults: 8 / 4.
	Ranks        int `json:"ranks,omitempty"`
	RanksPerNode int `json:"ranks_per_node,omitempty"`

	// K schedule (core.Config.KMin/KMax/KStep); zero takes the core default.
	KMin  int `json:"kmin,omitempty"`
	KMax  int `json:"kmax,omitempty"`
	KStep int `json:"kstep,omitempty"`

	// MinContigLen drops contigs shorter than this from the final output.
	MinContigLen int `json:"min_contig_len,omitempty"`
	// NoScaffold stops after contig generation.
	NoScaffold bool `json:"no_scaffold,omitempty"`

	// QueueTimeoutMS overrides the server's queue-wait timeout for this job
	// (milliseconds; 0 means the server default).
	QueueTimeoutMS int `json:"queue_timeout_ms,omitempty"`

	// Libraries uploads reads inline: one entry per paired-end library, in
	// LibID order, each holding interleaved FASTQ/FASTA text.
	Libraries []LibrarySpec `json:"libraries,omitempty"`
	// Sim simulates the input server-side instead.
	Sim *SimSpec `json:"sim,omitempty"`
}

// LibrarySpec is one uploaded paired-end library.
type LibrarySpec struct {
	// Name labels the library (defaults to "libN").
	Name string `json:"name,omitempty"`
	// InsertSize and InsertStd describe the fragment geometry; zero takes
	// the assembler defaults.
	InsertSize int `json:"insert_size,omitempty"`
	InsertStd  int `json:"insert_std,omitempty"`
	// Reads is the library's interleaved paired-end FASTQ or FASTA text
	// (mates at record indices 2i and 2i+1). Every library must hold an
	// even number of reads: an odd count would misalign every later
	// library's pairs.
	Reads string `json:"reads"`
}

// SimSpec is a server-side simulated input: an MGSim community plus a
// WGSim-like read simulation, deterministic in Seed.
type SimSpec struct {
	Genomes   int     `json:"genomes,omitempty"`    // community size (default 8)
	GenomeLen int     `json:"genome_len,omitempty"` // mean genome length (default 20000)
	Coverage  float64 `json:"coverage,omitempty"`   // fold coverage (default 20)
	ReadLen   int     `json:"read_len,omitempty"`   // read length (default 100)
	// ErrorRate is the per-base substitution rate; zero means error-free.
	ErrorRate float64 `json:"error_rate,omitempty"`
	Seed      int64   `json:"seed,omitempty"`
	// Libraries optionally simulates multiple paired-end libraries (insert
	// geometry + coverage share each); empty means one default library.
	Libraries []SimLibrarySpec `json:"libraries,omitempty"`
}

// SimLibrarySpec is one simulated library's geometry and coverage share.
type SimLibrarySpec struct {
	InsertSize int     `json:"insert_size,omitempty"`
	InsertStd  int     `json:"insert_std,omitempty"`
	Share      float64 `json:"share,omitempty"`
}

// SpecError is a structured job-spec validation failure: Field names the
// offending spec field (JSON name), Msg says what is wrong with it. The
// HTTP layer serializes it into the 400 response body.
type SpecError struct {
	Field string `json:"field"`
	Msg   string `json:"msg"`
}

func (e *SpecError) Error() string { return fmt.Sprintf("spec field %q: %s", e.Field, e.Msg) }

// DecodeSpec parses and validates a job-spec JSON document. Unknown fields
// and trailing garbage are rejected, so a typo'd field name is a structured
// 400 instead of a silently ignored knob. The returned spec is normalized:
// DecodeSpec(marshal(spec)) reproduces spec (and its core.ConfigHash)
// exactly.
func DecodeSpec(data []byte) (JobSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s JobSpec
	if err := dec.Decode(&s); err != nil {
		return JobSpec{}, &SpecError{Field: "(json)", Msg: err.Error()}
	}
	if dec.More() {
		return JobSpec{}, &SpecError{Field: "(json)", Msg: "trailing data after the job spec"}
	}
	s = s.Normalized()
	if err := s.Validate(); err != nil {
		return JobSpec{}, err
	}
	return s, nil
}

// Normalized returns the spec with every default applied explicitly:
// priority, worker count, machine shape, and per-library names. Normalized
// is idempotent and is applied by DecodeSpec and Server.Submit, so the spec
// a job runs with is always the normalized one.
func (s JobSpec) Normalized() JobSpec {
	if s.Priority == "" {
		s.Priority = PriorityInteractive
	}
	if s.Workers == 0 {
		s.Workers = 1
	}
	if s.Ranks == 0 {
		s.Ranks = 8
	}
	if s.RanksPerNode == 0 {
		if s.Ranks > 0 && s.Ranks%4 == 0 {
			s.RanksPerNode = 4
		} else {
			s.RanksPerNode = s.Ranks
		}
	}
	if len(s.Libraries) > 0 {
		libs := append([]LibrarySpec(nil), s.Libraries...)
		for i := range libs {
			if libs[i].Name == "" {
				libs[i].Name = fmt.Sprintf("lib%d", i)
			}
		}
		s.Libraries = libs
	}
	return s
}

// Validate checks the (normalized) spec against the admission caps and
// structural rules. Every failure is a *SpecError naming the field, which
// the HTTP layer returns as a structured 400.
func (s JobSpec) Validate() error {
	if s.Priority != PriorityInteractive && s.Priority != PriorityBatch {
		return &SpecError{Field: "priority", Msg: fmt.Sprintf("must be %q or %q, got %q", PriorityInteractive, PriorityBatch, s.Priority)}
	}
	if s.Workers < 1 {
		return &SpecError{Field: "workers", Msg: fmt.Sprintf("must be >= 1, got %d", s.Workers)}
	}
	if s.Ranks < 1 || s.Ranks > MaxRanks {
		return &SpecError{Field: "ranks", Msg: fmt.Sprintf("must be in [1, %d], got %d", MaxRanks, s.Ranks)}
	}
	if s.RanksPerNode < 1 || s.Ranks%s.RanksPerNode != 0 {
		return &SpecError{Field: "ranks_per_node", Msg: fmt.Sprintf("%d must be >= 1 and divide ranks (%d)", s.RanksPerNode, s.Ranks)}
	}
	if s.KMin < 0 || s.KMax < 0 || s.KStep < 0 {
		return &SpecError{Field: "kmin", Msg: "k schedule values must be >= 0"}
	}
	if s.KMin > seq.MaxK {
		return &SpecError{Field: "kmin", Msg: fmt.Sprintf("must be <= %d, got %d", seq.MaxK, s.KMin)}
	}
	if s.MinContigLen < 0 {
		return &SpecError{Field: "min_contig_len", Msg: "must be >= 0"}
	}
	if s.QueueTimeoutMS < 0 {
		return &SpecError{Field: "queue_timeout_ms", Msg: "must be >= 0"}
	}
	// The k schedule must produce at least one k value (core would reject
	// the run anyway; catching it here makes it a 400 instead of a failed
	// job).
	cfg := core.Config{KMin: s.KMin, KMax: s.KMax, KStep: s.KStep}
	if len(cfg.KValues()) == 0 {
		return &SpecError{Field: "kmax", Msg: fmt.Sprintf("k schedule [%d, %d] step %d yields no valid odd k <= %d", s.KMin, s.KMax, s.KStep, seq.MaxK)}
	}
	switch {
	case s.Sim != nil && len(s.Libraries) > 0:
		return &SpecError{Field: "sim", Msg: "set either inline libraries or sim, not both"}
	case s.Sim == nil && len(s.Libraries) == 0:
		return &SpecError{Field: "libraries", Msg: "no input: set inline libraries or sim"}
	}
	if s.Sim != nil {
		return s.Sim.validate()
	}
	if len(s.Libraries) > MaxLibraries {
		return &SpecError{Field: "libraries", Msg: fmt.Sprintf("%d libraries exceed the cap of %d", len(s.Libraries), MaxLibraries)}
	}
	total := 0
	for i, lib := range s.Libraries {
		field := fmt.Sprintf("libraries[%d]", i)
		if lib.InsertSize < 0 || lib.InsertStd < 0 {
			return &SpecError{Field: field + ".insert_size", Msg: "insert geometry must be >= 0"}
		}
		if lib.Reads == "" {
			return &SpecError{Field: field + ".reads", Msg: "library holds no reads"}
		}
		total += len(lib.Reads)
		if total > MaxInlineReadBytes {
			return &SpecError{Field: field + ".reads", Msg: fmt.Sprintf("inline reads exceed the %d-byte cap", MaxInlineReadBytes)}
		}
		// Parse now so malformed read text is a structured 400 at submit,
		// not a failed job minutes later. The parsed records are discarded;
		// BuildReads re-parses at run time (the text is capped, and keeping
		// the queue free of decoded reads bounds queued-job memory).
		recs, err := fastx.ReadAll(strings.NewReader(lib.Reads))
		if err != nil {
			return &SpecError{Field: field + ".reads", Msg: err.Error()}
		}
		if len(recs) == 0 {
			return &SpecError{Field: field + ".reads", Msg: "library holds no reads"}
		}
		if len(recs)%2 != 0 {
			return &SpecError{Field: field + ".reads", Msg: fmt.Sprintf("%d reads (odd): libraries must hold whole interleaved pairs", len(recs))}
		}
	}
	return nil
}

func (s *SimSpec) validate() error {
	if s.Genomes < 0 || s.Genomes > MaxSimGenomes {
		return &SpecError{Field: "sim.genomes", Msg: fmt.Sprintf("must be in [0, %d], got %d", MaxSimGenomes, s.Genomes)}
	}
	if s.GenomeLen < 0 || s.GenomeLen > MaxSimGenomeLen {
		return &SpecError{Field: "sim.genome_len", Msg: fmt.Sprintf("must be in [0, %d], got %d", MaxSimGenomeLen, s.GenomeLen)}
	}
	if s.Coverage < 0 || s.Coverage > MaxSimCoverage {
		return &SpecError{Field: "sim.coverage", Msg: fmt.Sprintf("must be in [0, %d], got %g", MaxSimCoverage, s.Coverage)}
	}
	if s.ReadLen < 0 {
		return &SpecError{Field: "sim.read_len", Msg: "must be >= 0"}
	}
	if s.ErrorRate < 0 || s.ErrorRate > 0.5 {
		return &SpecError{Field: "sim.error_rate", Msg: fmt.Sprintf("must be in [0, 0.5], got %g", s.ErrorRate)}
	}
	if len(s.Libraries) > MaxLibraries {
		return &SpecError{Field: "sim.libraries", Msg: fmt.Sprintf("%d libraries exceed the cap of %d", len(s.Libraries), MaxLibraries)}
	}
	for i, lib := range s.Libraries {
		if lib.InsertSize < 0 || lib.InsertStd < 0 || lib.Share < 0 {
			return &SpecError{Field: fmt.Sprintf("sim.libraries[%d]", i), Msg: "insert geometry and share must be >= 0"}
		}
	}
	// The combined budget check uses the effective (defaulted) values, so
	// leaving fields unset cannot dodge the cap.
	g, l, cov := s.Genomes, s.GenomeLen, s.Coverage
	if g == 0 {
		g = sim.DefaultCommunityConfig().NumGenomes
	}
	if l == 0 {
		l = sim.DefaultCommunityConfig().MeanGenomeLen
	}
	if cov == 0 {
		cov = sim.DefaultReadConfig().Coverage
	}
	if bases := float64(g) * float64(l) * cov; bases > MaxSimBases {
		return &SpecError{Field: "sim", Msg: fmt.Sprintf("genomes x genome_len x coverage = %.0f sequenced bases exceeds the %d cap", bases, MaxSimBases)}
	}
	return nil
}

// readConfig translates the sim spec into the simulator's configuration.
func (s *SimSpec) readConfig() sim.ReadConfig {
	rc := sim.ReadConfig{
		ReadLen:   s.ReadLen,
		ErrorRate: s.ErrorRate,
		Coverage:  s.Coverage,
		Seed:      s.Seed,
	}
	for _, lib := range s.Libraries {
		rc.Libraries = append(rc.Libraries, sim.LibraryConfig{
			InsertSize:    lib.InsertSize,
			InsertStd:     lib.InsertStd,
			CoverageShare: lib.Share,
		})
	}
	return rc
}

// Config builds the assembly configuration the job will run with. It is a
// pure function of the (normalized, validated) spec — deterministic, cheap,
// and read-free — so two decodes of the same spec JSON always produce the
// same core.ConfigHash.
func (s JobSpec) Config() (core.Config, error) {
	if err := s.Validate(); err != nil {
		return core.Config{}, err
	}
	cfg := core.DefaultConfig(s.Ranks)
	cfg.RanksPerNode = s.RanksPerNode
	cfg.Workers = s.Workers
	if s.KMin > 0 {
		cfg.KMin = s.KMin
	}
	if s.KMax > 0 {
		cfg.KMax = s.KMax
	}
	if s.KStep > 0 {
		cfg.KStep = s.KStep
	}
	cfg.Scaffolding = !s.NoScaffold
	cfg.MinContigLen = s.MinContigLen

	var libs []seq.Library
	if s.Sim != nil {
		rc := s.Sim.readConfig().Normalized()
		if len(rc.Libraries) == 0 {
			libs = []seq.Library{{Name: "lib0", ReadLen: rc.ReadLen, InsertSize: rc.InsertSize, InsertStd: rc.InsertStd}}
		} else {
			for _, lc := range rc.Libraries {
				libs = append(libs, seq.Library{Name: lc.Name, ReadLen: lc.ReadLen, InsertSize: lc.InsertSize, InsertStd: lc.InsertStd})
			}
		}
	} else {
		for _, ls := range s.Libraries {
			libs = append(libs, seq.Library{Name: ls.Name, InsertSize: ls.InsertSize, InsertStd: ls.InsertStd})
		}
	}
	cfg.Libraries = libs
	cfg.InsertSize, cfg.InsertStd = libs[0].InsertSize, libs[0].InsertStd
	return cfg, nil
}

// BuildReads materializes the job's input reads: simulated (deterministic in
// the seed) or decoded from the inline library text. Called at dispatch
// time, not submit time, so queued jobs hold only their spec.
func (s JobSpec) BuildReads() ([]seq.Read, error) {
	if s.Sim != nil {
		cc := sim.DefaultCommunityConfig()
		if s.Sim.Genomes > 0 {
			cc.NumGenomes = s.Sim.Genomes
		}
		if s.Sim.GenomeLen > 0 {
			cc.MeanGenomeLen = s.Sim.GenomeLen
		}
		cc.Seed = s.Sim.Seed + 1
		community := sim.GenerateCommunity(cc)
		return sim.SimulateReads(community, s.Sim.readConfig()), nil
	}
	var reads []seq.Read
	for i, lib := range s.Libraries {
		recs, err := fastx.ReadAll(strings.NewReader(lib.Reads))
		if err != nil {
			return nil, &SpecError{Field: fmt.Sprintf("libraries[%d].reads", i), Msg: err.Error()}
		}
		for _, rec := range recs {
			r := rec.ToRead()
			r.LibID = uint8(i)
			reads = append(reads, r)
		}
	}
	if len(reads) == 0 {
		return nil, &SpecError{Field: "libraries", Msg: "no reads decoded"}
	}
	return reads, nil
}
