package serve

import (
	"fmt"
	"strings"
)

// JobMetrics is the flat per-job record the server reports: one row per
// job, scalar fields only, so a fleet of them concatenates straight into a
// CSV or a metrics pipeline. Timing is split along the job lifecycle
// (queue wait vs run) and the assembly's own meters (simulated seconds,
// communication totals, peak resident) are carried through from the result.
type JobMetrics struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Priority string `json:"priority"`
	Workers  int    `json:"workers"`
	Ranks    int    `json:"ranks"`

	// SubmitUnixMS stamps admission; QueueMS is the queued-to-started wait,
	// RunMS the started-to-finished execution, TotalMS submit-to-finish.
	// In-flight jobs report the elapsed time so far for the open interval.
	SubmitUnixMS int64   `json:"submit_unix_ms"`
	QueueMS      float64 `json:"queue_ms"`
	RunMS        float64 `json:"run_ms"`
	TotalMS      float64 `json:"total_ms"`

	// Assembly meters (zero until the job completes).
	SimSeconds        float64 `json:"sim_seconds"`
	TotalReads        int     `json:"total_reads"`
	Contigs           int     `json:"contigs"`
	Scaffolds         int     `json:"scaffolds"`
	ScaffoldN50       int     `json:"scaffold_n50"`
	PeakResidentBytes uint64  `json:"peak_resident_bytes"`
	BytesSent         uint64  `json:"bytes_sent"`
	BytesReceived     uint64  `json:"bytes_received"`

	// Error is the failure (or cancellation cause) of a terminal job.
	Error string `json:"error,omitempty"`
}

// MetricsCSVHeader returns the CSV header row matching JobMetrics.CSVRow.
func MetricsCSVHeader() string {
	return "id,state,priority,workers,ranks,submit_unix_ms,queue_ms,run_ms,total_ms," +
		"sim_seconds,total_reads,contigs,scaffolds,scaffold_n50," +
		"peak_resident_bytes,bytes_sent,bytes_received,error"
}

// CSVRow renders the metrics as one CSV row (fields in header order).
func (m JobMetrics) CSVRow() string {
	return fmt.Sprintf("%s,%s,%s,%d,%d,%d,%.3f,%.3f,%.3f,%.9f,%d,%d,%d,%d,%d,%d,%d,%s",
		csvEscape(m.ID), m.State, m.Priority, m.Workers, m.Ranks,
		m.SubmitUnixMS, m.QueueMS, m.RunMS, m.TotalMS,
		m.SimSeconds, m.TotalReads, m.Contigs, m.Scaffolds, m.ScaffoldN50,
		m.PeakResidentBytes, m.BytesSent, m.BytesReceived, csvEscape(m.Error))
}

// csvEscape quotes a field that contains CSV metacharacters.
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
